// Dual-engine differential suite: every program in the corpus (and in
// testdata/) runs under both the tree-walking interpreter and the
// register bytecode VM, and the two executions must be observably
// identical — stdout bytes, exit code, the full error string (which
// embeds the trap code and the source span), the budget-visible cell
// count, and rc-heap leak-freedom. The tree walker is the oracle; the
// VM is the engine under test.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/parser"
	"repro/internal/rc"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/vm"
)

// engineResult is everything one execution makes observable.
type engineResult struct {
	out   string
	code  int
	err   string
	cells int64
	live  int64
}

// runOne executes a checked program on the named engine. The VM path
// requires the bytecode compiler to accept the program (the corpus is
// curated to be fully compilable; a bail here is a test failure, not a
// silent fallback).
func runOne(t *testing.T, prog *parsedProg, engine string, opts interp.Options) engineResult {
	t.Helper()
	var out bytes.Buffer
	heap := rc.NewHeap()
	opts.Stdout = &out
	opts.Heap = heap
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 5_000_000
	}
	if opts.MaxCells == 0 {
		opts.MaxCells = 1 << 22
	}
	i := interp.New(prog.prog, prog.info, opts)
	defer i.Close()
	var code int
	var err error
	switch engine {
	case "vm":
		p, cerr := vm.Compile(prog.prog, prog.info)
		if cerr != nil {
			t.Fatalf("vm.Compile declined the program: %v", cerr)
		}
		code, err = vm.NewMachine(p, i).Run()
	default:
		code, err = i.Run()
	}
	res := engineResult{out: out.String(), code: code, cells: i.Budget().Used(), live: heap.Stats().Live}
	if err != nil {
		res.err = err.Error()
	}
	return res
}

type parsedProg struct {
	prog *ast.Program
	info *sem.Info
}

// parseAndCheck front-ends src, failing the test on diagnostics (the
// corpus must be fully checkable).
func parseAndCheck(t *testing.T, name, src string) *parsedProg {
	t.Helper()
	var d source.Diagnostics
	p := parser.ParseFile(name, src, parser.AllExtensions(), &d)
	if p == nil {
		t.Fatalf("%s: parse failed:\n%s", name, d.String())
	}
	info := sem.Check(p, &d)
	if d.HasErrors() {
		t.Fatalf("%s: check failed:\n%s", name, d.String())
	}
	return &parsedProg{prog: p, info: info}
}

// compare asserts two engine results are observably identical.
func compare(t *testing.T, label string, tree, vmr engineResult) {
	t.Helper()
	if tree.out != vmr.out {
		t.Errorf("%s: stdout diverged\n--- tree ---\n%s--- vm ---\n%s", label, tree.out, vmr.out)
	}
	if tree.code != vmr.code {
		t.Errorf("%s: exit code tree=%d vm=%d", label, tree.code, vmr.code)
	}
	if tree.err != vmr.err {
		t.Errorf("%s: error diverged\ntree: %s\nvm:   %s", label, tree.err, vmr.err)
	}
	if tree.cells != vmr.cells {
		t.Errorf("%s: cells charged tree=%d vm=%d", label, tree.cells, vmr.cells)
	}
	if tree.err == "" && (tree.live != 0 || vmr.live != 0) {
		t.Errorf("%s: rc leak on success: tree live=%d vm live=%d", label, tree.live, vmr.live)
	}
}

// vmCorpus is the table-driven dual-engine suite: one entry per
// language area, each exercising evaluation order, error texts and rc
// discipline. Every entry must compile on the VM (no fallback).
var vmCorpus = []struct {
	name string
	src  string
	opts interp.Options
}{
	{name: "scalar_loop", src: `
int main() {
	int s = 0;
	int i = 0;
	while (i < 1000) { s = s + i * 2 - 1; i = i + 1; }
	print(s);
	return 0;
}`},
	{name: "for_break_continue", src: `
int main() {
	int s = 0;
	for (int i = 0; i < 100; i++) {
		if (i % 3 == 0) { continue; }
		if (i > 80) { break; }
		s = s + i;
	}
	print(s);
	return s % 256;
}`},
	{name: "float_mix", src: `
int main() {
	float x = 1.5;
	int n = 7;
	float y = x * n + 2.0 / 4.0 - n;
	print(y);
	print((int)(y * 10.0));
	print(x < 2.0);
	print(n == 7);
	bool b = true;
	print((float)(int)b);
	print(0.0 - x);
	return 0;
}`},
	{name: "short_circuit_order", src: `
bool chk(int v, bool r) { print(v); return r; }
int main() {
	if (chk(1, false) && chk(2, true)) { print(100); }
	if (chk(3, true) || chk(4, false)) { print(200); }
	if (chk(5, true) && chk(6, true)) { print(300); }
	bool t = chk(7, false) || chk(8, false);
	print(t);
	print(!t && chk(9, true));
	return 0;
}`},
	{name: "shadowing_decl_order", src: `
int main() {
	int x = 10;
	{
		int x = x + 5;
		print(x);
	}
	print(x);
	return 0;
}`},
	{name: "globals", src: `
int ga = 5;
int gb = ga * 3;
Matrix int <1> gv = [0 :: 4];
int bump() { ga = ga + 1; return ga; }
int main() {
	print(gb);
	print(bump() + bump());
	print(ga);
	print(ga + bump());
	print(gv[2] + gv[end]);
	return 0;
}`},
	{name: "indexing_forms", src: `
int main() {
	Matrix int <1> v = [0 :: 9];
	print(v[end]);
	print(v[end - 4]);
	Matrix int <1> mid = v[2 : 5];
	print(dimSize(mid, 0));
	Matrix int <1> odds = v[v % 2 == 1];
	print(dimSize(odds, 0));
	Matrix int <2> m = init(Matrix int <2>, 3, 4);
	m[1, :] = [10 :: 13];
	print(m[1, 2]);
	m[:, 0] = v[0 : 2];
	print(m[2, 0]);
	m[0, 1] = 42;
	print(m[0, 1]);
	return 0;
}`},
	{name: "fused_rank1_load_store", src: `
int main() {
	Matrix float <1> a = init(Matrix float <1>, 64);
	for (int i = 0; i < 64; i++) { a[i] = (float)(i * i); }
	float s = 0.0;
	for (int i = 0; i < 64; i++) { s = s + a[i]; }
	print(s);
	a[0] = 7;
	print(a[0]);
	Matrix int <1> b = init(Matrix int <1>, 16);
	for (int i = 0; i < 16; i++) { b[i] = i * 3; }
	print(b[15]);
	Matrix bool <1> c = init(Matrix bool <1>, 4);
	c[2] = true;
	print(c[2]);
	print(c[0]);
	return 0;
}`},
	{name: "tuples_and_rc", src: `
(int, int, bool) divmod(int a, int b) {
	return (a / b, a % b, a % b == 0);
}
int main() {
	int q; int r; bool exact;
	(q, r, exact) = divmod(47, 5);
	print(q);
	print(r);
	print(exact);
	refcounted int * cell = rcnew(q * 10);
	rcset(cell, rcget(cell) + r);
	print(rcget(cell));
	rcrelease(cell);
	return 0;
}`},
	{name: "with_loops", src: `
int main() {
	Matrix int <2> sq;
	sq = with ([0, 0] <= [i, j] < [4, 5]) genarray([4, 5], i * 10 + j);
	print(sq[3, 4]);
	int s = with ([0] <= [k] < [10]) fold(+, 0, k * k);
	print(s);
	int mx = with ([0] <= [k] < [7]) fold(max, -100, k * (5 - k));
	print(mx);
	float p = with ([1] <= [k] < [6]) fold(*, 1.0, (float)k);
	print(p);
	int outer = 3;
	Matrix float <1> nested;
	nested = with ([0] <= [i] < [outer])
		genarray([outer], with ([0] <= [j] < [4]) fold(+, 0.0, (float)(i * j)));
	print(nested[2]);
	return 0;
}`},
	{name: "with_flat_kernels", src: `
int main() {
	int n = 8;
	int bias = 3;
	float scale = 0.25;
	Matrix int <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], i * n + j + bias);
	Matrix int <2> tr;
	tr = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], m[j, i]);
	print(tr[2, 5]);
	Matrix float <2> sm;
	sm = with ([1, 1] <= [i, j] < [7, 7])
		genarray([n, n], (float)(m[i - 1, j] + m[i + 1, j] + m[i, j - 1] + m[i, j + 1]) * scale);
	print(sm[0, 0]);
	print(sm[3, 3]);
	int s = with ([0, 0] <= [i, j] < [n, n]) fold(+, 0, m[i, j] - tr[j, i]);
	print(s);
	float w = with ([0] <= [k] < [6]) fold(max, -1.0, (float)(k * (4 - k)) * scale);
	print(w);
	return 0;
}`},
	{name: "err_with_flat_oom", opts: interp.Options{MaxCells: 40}, src: `
int main() {
	int n = 5;
	Matrix int <2> small;
	small = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], i - j);
	print(small[4, 4]);
	Matrix int <2> big;
	big = with ([0, 0] <= [i, j] < [9, 9]) genarray([9, 9], i * j);
	print(big[0, 0]);
	return 0;
}`},
	{name: "err_with_flat_out_of_bounds_load", src: `
int main() {
	int n = 4;
	Matrix int <1> v;
	v = with ([0] <= [i] < [n]) genarray([n], i * 2);
	Matrix int <1> shifted;
	shifted = with ([0] <= [i] < [n]) genarray([n], v[i + 1]);
	print(shifted[0]);
	return 0;
}`},
	{name: "with_flat_promoted_fold", src: `
int main() {
	int n = 6;
	Matrix int <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], i + 2 * j);
	float mean = with ([0, 0] <= [i, j] < [n, n]) fold(+, 0.0, (float)m[i, j]) / 36.0;
	print(mean);
	int prod = with ([1] <= [k] < [5]) fold(*, 1, m[k, k]);
	print(prod);
	return 0;
}`},
	{name: "matrix_map_both_forms", src: `
Matrix float <1> double(Matrix float <1> ts) {
	int n = dimSize(ts, 0);
	return with ([0] <= [i] < [n]) genarray([n], ts[i] * 2.0);
}
Matrix float <1> firstHalf(Matrix float <1> ts) {
	int n = dimSize(ts, 0);
	return ts[0 : n / 2 - 1];
}
int main() {
	Matrix float <2> d;
	d = with ([0, 0] <= [i, j] < [3, 8]) genarray([3, 8], (float)(i * 8 + j));
	Matrix float <2> out;
	out = matrixMap(double, d, [1]);
	print(out[2, 7]);
	Matrix float <2> half;
	half = matrixMapG(firstHalf, d, [1]);
	print(dimSize(half, 1));
	print(half[1, 3]);
	return 0;
}`},
	{name: "spawn_fib", src: `
int fib(int n) {
	if (n < 2) return n;
	int a = 0;
	int b = 0;
	spawn a = fib(n - 1);
	b = fib(n - 2);
	sync;
	return a + b;
}
int main() {
	print(fib(14));
	return 0;
}`},
	{name: "promotion_falloff_void", src: `
float half(int n) { return n / 2; }
int falloff(int n) { if (n > 100) { return n; } }
void shout(int n) { print(n * 2); }
int main() {
	print(half(7));
	print(falloff(3));
	shout(21);
	return 0;
}`},
	{name: "matrix_elementwise_ops", src: `
int main() {
	Matrix int <1> v = [1 :: 6];
	Matrix int <1> w = v + v - [0 :: 5];
	print(w[end]);
	Matrix float <1> f = [0 :: 3] * 0.5;
	print(f[3]);
	Matrix bool <1> m = v > 3;
	print(m[0]);
	print(m[end]);
	print(dimSize(v[m], 0));
	Matrix float <2> a;
	a = with ([0, 0] <= [i, j] < [2, 3]) genarray([2, 3], (float)(i + j));
	Matrix float <2> bm;
	bm = with ([0, 0] <= [i, j] < [3, 2]) genarray([3, 2], (float)(i * j));
	Matrix float <2> c = a * bm;
	print(c[1, 1]);
	return 0;
}`},

	{name: "fused_elementwise_chain", src: `
Matrix float <1> axpy(Matrix float <1> a, Matrix float <1> b, float k) {
	return a * k + a .* b - b / 2.0;
}
int main() {
	Matrix float <1> a = [0 :: 7] * 1.0;
	Matrix float <1> b = [1 :: 8] * 1.0;
	Matrix float <1> r = axpy(a, b, 3.0);
	print(r[0]);
	print(r[end]);
	Matrix int <1> u = [1 :: 6];
	Matrix int <1> w = u .* 2 + u - u .* u;
	print(w[0]);
	print(w[end]);
	Matrix float <1> mixed = a .* b + a * 2 - b;
	print(mixed[3]);
	print(mixed[end]);
	return 0;
}`},
	{name: "spawn_matrix_args", src: `
float total(Matrix float <1> m) {
	int n = dimSize(m, 0);
	return with ([0] <= [i] < [n]) fold(+, 0.0, m[i]);
}
int main() {
	Matrix float <1> a = [0 :: 9] * 1.0;
	Matrix float <1> b = [1 :: 10] * 1.0;
	float sa = 0.0;
	float sb = 0.0;
	spawn sa = total(a);
	spawn sb = total(b);
	sync;
	print(sa + sb);
	return 0;
}`},

	// Error paths: the full error string (span, trap code, text) must
	// match byte for byte.
	{name: "err_div_zero", src: `
int main() {
	int z = 0;
	return 1 / z;
}`},
	{name: "err_mod_zero", src: `
int main() {
	int z = 0;
	return 1 % z;
}`},
	{name: "err_index_oob", src: `
int main() {
	Matrix int <1> v = [0 :: 4];
	return (int)v[9];
}`},
	{name: "err_shape_negative_dim", src: `
int main() {
	int n = 0 - 3;
	Matrix float <1> m;
	m = with ([0] <= [i] < [n]) genarray([n], 1.0);
	return 0;
}`},
	{name: "err_trap_depth", src: `
int f(int x) { return f(x); }
int main() { return f(1); }`},
	{name: "err_trap_step", opts: interp.Options{MaxSteps: 10_000}, src: `
int main() {
	int i = 0;
	while (i >= 0) { i = i + 1; }
	return 0;
}`},
	{name: "err_trap_oom", opts: interp.Options{MaxCells: 5000}, src: `
int main() {
	for (int i = 0; i < 1000; i++) {
		Matrix float <1> m = [0 :: 99] * 1.0;
	}
	return 0;
}`},
	{name: "err_rcget_null", src: `
int main() {
	refcounted int * c;
	print(rcget(c));
	return 0;
}`},
	{name: "err_fused_unassigned", src: `
int main() {
	Matrix float <1> a = [0 :: 3] * 1.0;
	Matrix float <1> b;
	Matrix float <1> r = a + b - a;
	print(r[0]);
	return 0;
}`},
	{name: "err_fused_shape_mismatch", src: `
int main() {
	Matrix float <1> a = [0 :: 3] * 1.0;
	Matrix float <1> b = [0 :: 5] * 1.0;
	Matrix float <1> r = a .* a + b;
	print(r[0]);
	return 0;
}`},
	{name: "err_fused_oom_mid_chain", opts: interp.Options{MaxCells: 30}, src: `
int main() {
	Matrix float <1> a = [0 :: 7] * 1.0;
	Matrix float <1> r = a + a - a .* a;
	print(r[0]);
	return 0;
}`},
}

func TestVMDifferentialCorpus(t *testing.T) {
	for _, tc := range vmCorpus {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			prog := parseAndCheck(t, tc.name+".xc", tc.src)
			for _, threads := range []int{1, 4} {
				opts := tc.opts
				opts.Threads = threads
				tree := runOne(t, prog, "tree", opts)
				vmr := runOne(t, prog, "vm", opts)
				compare(t, fmt.Sprintf("%s/t=%d", tc.name, threads), tree, vmr)
			}
		})
	}
}

// TestVMDifferentialTestdata drives every on-disk program through the
// driver under both engines, with deterministic in-memory inputs.
func TestVMDifferentialTestdata(t *testing.T) {
	paths, err := filepath.Glob("testdata/*.xc")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	exts, err := driver.ParseExtensions("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			d := driver.New()
			run := func(engine string) (string, *driver.RunResult, error) {
				var out bytes.Buffer
				res, rerr := d.Run(context.Background(), driver.RunRequest{
					Name: path, Source: string(src), Exts: exts, Threads: 2,
					MaxSteps: 50_000_000, MaxCells: 1 << 24,
					Files:  map[string]*matrix.Matrix{"ssh.data": sshCube(4, 5, 6, 7)},
					Stdout: &out, Engine: engine,
				})
				return out.String(), res, rerr
			}
			outT, resT, errT := run("tree")
			outV, resV, errV := run("vm")
			if resV.Engine != "vm" {
				t.Errorf("engine fell back to %q (bytecode compiler declined)", resV.Engine)
			}
			if outT != outV {
				t.Errorf("stdout diverged\n--- tree ---\n%s--- vm ---\n%s", outT, outV)
			}
			es := func(e error) string {
				if e == nil {
					return ""
				}
				return e.Error()
			}
			if es(errT) != es(errV) {
				t.Errorf("error diverged\ntree: %v\nvm:   %v", errT, errV)
			}
			if resT.ExitCode != resV.ExitCode {
				t.Errorf("exit code tree=%d vm=%d", resT.ExitCode, resV.ExitCode)
			}
		})
	}
}

// TestVMStepParity sweeps the step budget over a fixed program: for
// every budget value the two engines must agree on success vs
// trap:step, i.e. they tick the budget at identical statement counts.
func TestVMStepParity(t *testing.T) {
	prog := parseAndCheck(t, "steps.xc", `
int twice(int n) { return n * 2; }
int main() {
	int s = 0;
	for (int i = 0; i < 3; i++) {
		s = s + twice(i);
		if (s > 100) { s = 0; }
	}
	print(s);
	return 0;
}`)
	for steps := int64(1); steps <= 40; steps++ {
		opts := interp.Options{MaxSteps: steps}
		tree := runOne(t, prog, "tree", opts)
		vmr := runOne(t, prog, "vm", opts)
		compare(t, fmt.Sprintf("maxsteps=%d", steps), tree, vmr)
	}
}

// FuzzVMDiff cross-checks the engines on arbitrary source text: any
// program the front end accepts must behave identically under both.
// Programs whose tree-walker behavior is itself nondeterministic
// (e.g. print interleavings across spawns) are skipped by running the
// oracle twice.
func FuzzVMDiff(f *testing.F) {
	for _, tc := range vmCorpus {
		f.Add(tc.src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		var d source.Diagnostics
		p := parser.ParseFile("fuzz.xc", src, parser.AllExtensions(), &d)
		if p == nil {
			return
		}
		info := sem.Check(p, &d)
		if d.HasErrors() {
			return
		}
		prog := &parsedProg{prog: p, info: info}
		vmp, cerr := vm.Compile(p, info)
		if cerr != nil {
			// A compiler bail is a legitimate fallback (the driver runs
			// the tree walker), not a divergence.
			return
		}
		opts := interp.Options{Threads: 1, MaxSteps: 200_000, MaxCells: 1 << 16}
		run := func(engine string) engineResult {
			var out bytes.Buffer
			heap := rc.NewHeap()
			o := opts
			o.Stdout = &out
			o.Heap = heap
			i := interp.New(p, info, o)
			defer i.Close()
			var code int
			var err error
			if engine == "vm" {
				code, err = vm.NewMachine(vmp, i).Run()
			} else {
				code, err = i.Run()
			}
			res := engineResult{out: out.String(), code: code, cells: i.Budget().Used()}
			if err != nil {
				res.err = err.Error()
			}
			return res
		}
		t1 := run("tree")
		t2 := run("tree")
		if t1 != t2 {
			return // nondeterministic program; no usable oracle
		}
		v := run("vm")
		if t1.out != v.out || t1.code != v.code || t1.err != v.err || t1.cells != v.cells {
			t.Errorf("engines diverged on:\n%s\ntree: %+v\nvm:   %+v", src, t1, v)
		}
		_ = prog
	})
}
