// Client-side overload contract: runRemote must retry 429 sheds with
// backoff (honoring the server's hint), map an exhausted budget to
// exit code 5, and keep the local exit-code taxonomy for everything
// the server reports.
package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestRunRemoteRetriesShedThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/run" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error": "run queue full", "retry_after_ms": 1}`)
			return
		}
		fmt.Fprint(w, `{"exit_code": 7, "stdout": ""}`)
	}))
	defer ts.Close()

	code := runRemote(context.Background(), ts.URL, "", remoteRunRequest{Source: "int main() { return 7; }"}, 2)
	if code != 7 {
		t.Fatalf("exit code %d, want the program's own 7", code)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want shed + retry", calls.Load())
	}
}

func TestRunRemoteExhaustedBudgetExitsFive(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error": "run queue full", "retry_after_ms": 1}`)
	}))
	defer ts.Close()

	if code := runRemote(context.Background(), ts.URL, "", remoteRunRequest{Source: "int main() { return 0; }"}, 2); code != 5 {
		t.Fatalf("exit code %d, want 5 after the retry budget", code)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 1 + 2 retries", calls.Load())
	}
	// The default budget is zero retries: one shed, straight to 5.
	calls.Store(0)
	if code := runRemote(context.Background(), ts.URL, "", remoteRunRequest{Source: "x"}, 0); code != 5 || calls.Load() != 1 {
		t.Fatalf("zero-retries: code=%d calls=%d", code, calls.Load())
	}
}

func TestRunRemoteCompileErrorExitsTwo(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error": "program does not compile", "diagnostics": ["t.xc:1:1: error: no"]}`)
	}))
	defer ts.Close()
	if code := runRemote(context.Background(), ts.URL, "", remoteRunRequest{Source: "zzz"}, 3); code != 2 {
		t.Fatalf("exit code %d, want 2 for a client error (no retries burned)", code)
	}
}

func TestRunRemoteTransportFailureRetriesThenExitsOne(t *testing.T) {
	ts := httptest.NewServer(nil)
	url := ts.URL
	ts.Close() // nothing listens: every attempt is a transport error
	if code := runRemote(context.Background(), url, "", remoteRunRequest{Source: "x"}, 1); code != 1 {
		t.Fatalf("exit code %d, want 1 for an unreachable server", code)
	}
}

func TestRunRemoteSendsBearerKeyAndNamesThrottledTenant(t *testing.T) {
	var gotAuth atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotAuth.Store(r.Header.Get("Authorization"))
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error": "tenant \"acme\" over rate limit", "retry_after_ms": 1, "tenant": "acme"}`)
	}))
	defer ts.Close()
	if code := runRemote(context.Background(), ts.URL, "k-acme", remoteRunRequest{Source: "x"}, 0); code != 5 {
		t.Fatalf("exit code %d, want 5 for a tenant throttle", code)
	}
	if gotAuth.Load() != "Bearer k-acme" {
		t.Fatalf("Authorization = %q, want the -key flag as a Bearer credential", gotAuth.Load())
	}
}
