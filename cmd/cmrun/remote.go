// Remote execution mode: with -server, cmrun ships the program to a
// cmserved instance (or a cmgate fleet front) over the PR 3 HTTP API
// instead of interpreting locally. The client half of the overload
// contract lives here: a 429 shed is retried -retries times with
// full-jitter exponential backoff floored at the server's Retry-After
// estimate, and only an exhausted budget surfaces as exit code 5.
// Transport failures (gate restarting, connection refused) share the
// same budget — both are "try again shortly", not "your program is
// broken".
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/fleet"
)

// remoteRunRequest mirrors the server's runRequest wire shape.
type remoteRunRequest struct {
	Name       string `json:"name,omitempty"`
	Source     string `json:"source"`
	Extensions string `json:"extensions,omitempty"`
	Threads    int    `json:"threads,omitempty"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
	MaxSteps   int64  `json:"max_steps,omitempty"`
	MaxCells   int64  `json:"max_cells,omitempty"`
	Engine     string `json:"engine,omitempty"`
}

// remoteRunResponse mirrors the server's runResponse wire shape.
type remoteRunResponse struct {
	ExitCode    int      `json:"exit_code"`
	Stdout      string   `json:"stdout"`
	Diagnostics []string `json:"diagnostics,omitempty"`
}

// remoteError mirrors the server's errorResponse wire shape. Tenant
// names whose rate limit or quota a 429 applied to.
type remoteError struct {
	Error        string   `json:"error"`
	Diagnostics  []string `json:"diagnostics,omitempty"`
	Trap         string   `json:"trap,omitempty"`
	RetryAfterMS int64    `json:"retry_after_ms,omitempty"`
	Tenant       string   `json:"tenant,omitempty"`
}

// runRemote posts the program to serverURL/v1/run and maps the
// response onto cmrun's local exit-code contract. apiKey, when
// non-empty, is sent as Authorization: Bearer — the multi-tenant
// credential for a keyed cmgate/cmserved. It returns the process exit
// code.
func runRemote(ctx context.Context, serverURL, apiKey string, req remoteRunRequest, retries int) int {
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmrun: %v\n", err)
		return 2
	}
	policy := fleet.RetryPolicy{Max: retries}
	client := &http.Client{}
	var lastErr string
	for attempt := 0; ; attempt++ {
		status, payload, err := postOnce(ctx, client, serverURL+"/v1/run", apiKey, body)
		if err == nil {
			switch {
			case status == http.StatusOK:
				var res remoteRunResponse
				if err := json.Unmarshal(payload, &res); err != nil {
					fmt.Fprintf(os.Stderr, "cmrun: malformed server response: %v\n", err)
					return 1
				}
				for _, diag := range res.Diagnostics {
					fmt.Fprintln(os.Stderr, diag)
				}
				os.Stdout.WriteString(res.Stdout)
				return res.ExitCode
			case status == http.StatusTooManyRequests:
				e := decodeRemoteError(payload)
				lastErr = "server overloaded: " + e.Error
				if e.Tenant != "" {
					lastErr = fmt.Sprintf("tenant %q throttled: %s", e.Tenant, e.Error)
				}
				if attempt < retries {
					wait := policy.Backoff(attempt, time.Duration(e.RetryAfterMS)*time.Millisecond)
					fmt.Fprintf(os.Stderr, "cmrun: %s; retrying in %v (%d/%d)\n", lastErr, wait.Round(time.Millisecond), attempt+1, retries)
					if fleet.SleepCtx(ctx, wait) != nil {
						fmt.Fprintln(os.Stderr, "cmrun: "+lastErr)
						return 5
					}
					continue
				}
				fmt.Fprintln(os.Stderr, "cmrun: "+lastErr)
				return 5
			default:
				e := decodeRemoteError(payload)
				for _, diag := range e.Diagnostics {
					fmt.Fprintln(os.Stderr, diag)
				}
				msg := e.Error
				if msg == "" {
					msg = fmt.Sprintf("server returned HTTP %d", status)
				}
				fmt.Fprintf(os.Stderr, "cmrun: %s\n", msg)
				if status >= 400 && status < 500 {
					// The program (or request) is at fault: same exit code
					// as a local compile/usage error.
					return 2
				}
				if e.Trap != "" {
					return 3
				}
				return 1
			}
		}
		// Transport-level failure: the fleet may be mid-restart, which
		// is exactly what the retry budget is for.
		lastErr = err.Error()
		if attempt < retries {
			wait := policy.Backoff(attempt, 0)
			fmt.Fprintf(os.Stderr, "cmrun: %s; retrying in %v (%d/%d)\n", lastErr, wait.Round(time.Millisecond), attempt+1, retries)
			if fleet.SleepCtx(ctx, wait) == nil {
				continue
			}
		}
		fmt.Fprintf(os.Stderr, "cmrun: %s\n", lastErr)
		return 1
	}
}

// postOnce issues a single POST and reads the full response body.
func postOnce(ctx context.Context, client *http.Client, url, apiKey string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, payload, nil
}

func decodeRemoteError(payload []byte) remoteError {
	var e remoteError
	json.Unmarshal(payload, &e)
	return e
}
