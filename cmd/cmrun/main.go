// cmrun parses, checks and executes an extended-CMINUS program with
// the parallel interpreter. The -t flag is the paper's command-line
// thread count (§III-C): worker threads are spawned once at startup
// and released per parallel construct.
//
// Usage:
//
//	cmrun [-t N] [-dir path] file.xc
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/interp"
)

func main() {
	threads := flag.Int("t", 1, "worker threads for parallel constructs")
	dir := flag.String("dir", "", "directory for readMatrix/writeMatrix (default: the source file's)")
	steps := flag.Int64("maxsteps", 0, "abort after N interpreter steps (0 = unlimited)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cmrun [-t N] [-dir path] file.xc")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmrun: %v\n", err)
		os.Exit(2)
	}
	d := *dir
	if d == "" {
		d = filepath.Dir(file)
	}
	code, res, err := core.Run(file, string(src), core.Config{}, interp.Options{
		Threads: *threads, Dir: d, MaxSteps: *steps,
	})
	for _, diag := range res.Diags.All() {
		fmt.Fprintln(os.Stderr, diag)
	}
	if err != nil && !res.Diags.HasErrors() {
		fmt.Fprintf(os.Stderr, "cmrun: %v\n", err)
		os.Exit(1)
	}
	if res.Diags.HasErrors() {
		os.Exit(1)
	}
	os.Exit(code)
}
