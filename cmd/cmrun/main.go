// cmrun parses, checks and executes an extended-CMINUS program with
// the parallel interpreter. The -t flag is the paper's command-line
// thread count (§III-C): worker threads are spawned once at startup
// and released per parallel construct; N <= 0 selects one worker per
// core (runtime.GOMAXPROCS).
//
// Usage:
//
//	cmrun [-t N] [-dir path] [-timeout d] [-engine vm|tree] file.xc
//	cmrun -server http://gate:8080 [-retries N] file.xc
//
// The default engine is the register bytecode VM; -engine tree selects
// the tree-walking interpreter (the VM's differential oracle). The two
// are observably identical — output, traps, exit codes, budgets.
//
// With -server, the program is shipped to a cmserved instance (or a
// cmgate fleet front) instead of running locally; -retries bounds
// client-side re-attempts after an overload shed or transport failure,
// with jittered exponential backoff honoring the server's Retry-After.
// -dir does not apply remotely (the server has no access to local
// matrix files).
//
// Exit codes: the program's own exit code on success; 1 for other
// execution failures (e.g. a busted -timeout deadline); 2 for usage or
// compile errors; 3 for a runtime trap (shape, rc, panic); 4 when a
// resource budget was exceeded (-maxsteps, -maxcells, call depth); 5
// when the compile server sheds the request under load and the
// -retries budget is exhausted (retry with backoff instead of
// hammering a shedding server).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/server"
)

func main() {
	threads := flag.Int("t", 1, "worker threads for parallel constructs (<= 0: one per core)")
	dir := flag.String("dir", "", "directory for readMatrix/writeMatrix (default: the source file's)")
	steps := flag.Int64("maxsteps", 0, "abort after N interpreter steps (0 = unlimited)")
	cells := flag.Int64("maxcells", 0, "abort after allocating N matrix cells (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort execution after this long (0 = no deadline)")
	extFlag := flag.String("ext", "all", "comma-separated extensions to compose (matrix, transform, rc, cilk, all, none)")
	engine := flag.String("engine", "vm", "execution engine: vm (register bytecode) or tree (AST walker)")
	serverURL := flag.String("server", "", "execute remotely via this cmserved/cmgate base URL instead of locally")
	retries := flag.Int("retries", 0, "remote mode: re-attempts after overload sheds or transport failures")
	apiKey := flag.String("key", os.Getenv("CM_API_KEY"), "remote mode: tenant API key sent as Authorization: Bearer (default $CM_API_KEY)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cmrun [-t N] [-dir path] [-server url [-retries N]] file.xc")
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmrun: %v\n", err)
		os.Exit(2)
	}
	exts, err := driver.ParseExtensions(*extFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmrun: %v\n", err)
		os.Exit(2)
	}
	d := *dir
	if d == "" {
		d = filepath.Dir(file)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *serverURL != "" {
		os.Exit(runRemote(ctx, strings.TrimRight(*serverURL, "/"), *apiKey, remoteRunRequest{
			Name: file, Source: string(src), Extensions: *extFlag,
			Threads: *threads, TimeoutMS: int64(*timeout / time.Millisecond),
			MaxSteps: *steps, MaxCells: *cells, Engine: *engine,
		}, *retries))
	}
	res, err := driver.New().Run(ctx, driver.RunRequest{
		Name: file, Source: string(src), Exts: exts,
		Threads: *threads, MaxSteps: *steps, MaxCells: *cells, Dir: d,
		Engine: *engine,
	})
	for _, diag := range res.Diagnostics {
		fmt.Fprintln(os.Stderr, diag)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmrun: %v\n", err)
		if errors.Is(err, server.ErrOverloaded) {
			// A shedding compile server: distinct exit code so scripts
			// can retry with backoff rather than treat it as a program
			// failure. Local runs never hit this; it is the mapping for
			// the future remote-execution client mode.
			os.Exit(5)
		}
		var rte *interp.RuntimeError
		if errors.As(err, &rte) && rte.Trap != interp.TrapNone {
			if rte.Trap.IsResource() {
				os.Exit(4)
			}
			os.Exit(3)
		}
		os.Exit(1)
	}
	if !res.OK {
		// Diagnostics were printed above; distinguish "your program does
		// not compile" from "your program failed at runtime".
		os.Exit(2)
	}
	os.Exit(res.ExitCode)
}
