// cmvet is the standalone static analyzer for extended CMINUS
// programs: it parses and checks each file with the composed
// extension grammars, then runs the internal/vet analyses — shape
// inference, RC misuse detection, liveness lints, and the
// interprocedural effect analysis behind the cilk determinacy-race
// detector (CM-RACE, CM-SYNC-MISSING, CM-SPAWN-DEAD) — and reports
// structured findings. See the README's diagnostic-code table for
// every code and its remediation.
//
// Usage:
//
//	cmvet [flags] file.xc [file2.xc ...]
//
//	-ext matrix,transform,rc,cilk   extensions to compose (also: all, none)
//	-json                      emit one JSON report per file instead of text
//
// Exit status: 0 when every file is clean (warnings allowed), 1 when
// any file has error-severity findings or fails to parse/check, 2 on
// usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/driver"
	"repro/internal/vet"
)

func main() {
	extFlag := flag.String("ext", "all", "comma-separated extensions to compose (matrix, transform, rc, cilk, all, none)")
	jsonOut := flag.Bool("json", false, "emit JSON reports instead of text diagnostics")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: cmvet [flags] file.xc [file2.xc ...]")
		flag.Usage()
		os.Exit(2)
	}
	exts, err := driver.ParseExtensions(*extFlag)
	if err != nil {
		fatal("%v", err)
	}

	d := driver.New()
	failed := false
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fatal("%v", err)
		}
		res := d.Vet(driver.VetRequest{Name: file, Source: string(src), Exts: exts})
		report := vet.NewFileReport(file, res.OK, res.Diagnostics, res.Findings)
		if *jsonOut {
			out, err := report.RenderJSON()
			if err != nil {
				fatal("%v", err)
			}
			fmt.Print(out)
		} else {
			fmt.Print(report.RenderText())
		}
		if !res.OK {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmvet: "+format+"\n", args...)
	os.Exit(2)
}
