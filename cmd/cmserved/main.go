// cmserved is the compile/run daemon: the extensible CMINUS translator
// behind an HTTP JSON API, amortizing grammar composition, analysis and
// parsing across requests through a shared content-addressed cache.
//
// Usage:
//
//	cmserved [-addr :8347] [-runs N] [-queue N] [-queue-wait d]
//	         [-timeout 10s] [-max-timeout 60s] [-cachedir path]
//	         [-cache-entries N] [-cache-bytes N]
//	         [-keys path] [-trust-gate] [-min-retry-after d]
//
// Overload behaviour: beyond -runs concurrent executions, up to -queue
// requests wait (each at most min(-queue-wait, its own timeout)); the
// rest are shed with 429 + Retry-After. -cachedir enables the durable
// artifact tier: a restarted daemon serves previously compiled
// programs from disk instead of recompiling them.
//
// Multi-tenancy: -keys loads an API-key registry (JSON) enabling
// per-tenant rate limits, max_cells clamps, and weighted-fair
// admission; SIGHUP reloads it in place without resetting anyone's
// rate-limit bucket. -trust-gate accepts the X-CM-Tenant identity
// stamp from a fronting cmgate instead of re-authenticating (never set
// it on a daemon reachable without the gate). Requests without
// credentials stay on the anonymous default tenant, so single-node use
// remains zero-config.
//
// Endpoints (see internal/server):
//
//	POST /v1/compile   {"source": "...", "extensions": "all", "par": "pthread"}
//	POST /v1/run       {"source": "...", "threads": 4, "timeout_ms": 2000}
//	GET  /v1/analyses  §VI analysis report as JSON
//	GET  /healthz      liveness
//	GET  /metrics      counters, cache ratios, stage latency histograms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/driver"
	"repro/internal/server"
	"repro/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	runs := flag.Int("runs", 0, "max concurrent interpreter runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max run requests queued for a slot before shedding (0 = 4x -runs)")
	queueWait := flag.Duration("queue-wait", 0, "max time a run may wait for admission (0 = -timeout)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-run execution deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on per-request timeout_ms")
	cacheDir := flag.String("cachedir", "", "directory for the durable artifact cache (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory cache cap, entries per cache (0 = default)")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory cache cap, approximate bytes per cache (0 = default)")
	warm := flag.Bool("warm", true, "pre-build the composed grammar table and §VI analyses at startup")
	engine := flag.String("engine", "vm", "default execution engine for /v1/run: vm or tree")
	shardID := flag.String("shard-id", "", "fleet identity stamped on responses as X-CM-Shard (empty = standalone)")
	keys := flag.String("keys", "", "tenant API-key file (JSON); empty = anonymous only, no limits")
	trustGate := flag.Bool("trust-gate", false, "trust the X-CM-Tenant stamp from a fronting cmgate (only behind the gate)")
	minRetryAfter := flag.Duration("min-retry-after", 0, "floor on the Retry-After estimate sent with 429 sheds (0 = 50ms)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: cmserved [-addr :8347] [-runs N] [-queue N] [-timeout d] [-max-timeout d] [-cachedir path] [-keys path]")
		os.Exit(2)
	}
	var reg *tenant.Registry
	if *keys != "" {
		var err error
		if reg, err = tenant.LoadFile(*keys); err != nil {
			log.Fatalf("cmserved: %v", err)
		}
		log.Printf("loaded tenant registry from %s (%d tenants)", *keys, len(reg.Names()))
	}

	s := server.New(server.Config{
		Driver: driver.NewWith(driver.Config{
			MaxCacheEntries: *cacheEntries,
			MaxCacheBytes:   *cacheBytes,
			CacheDir:        *cacheDir,
		}),
		MaxConcurrentRuns: *runs,
		RunQueueSize:      *queue,
		MaxQueueWait:      *queueWait,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		DefaultEngine:     *engine,
		ShardID:           *shardID,
		Tenants:           reg,
		TrustGateHeader:   *trustGate,
		MinRetryAfter:     *minRetryAfter,
	})
	if *warm {
		// Pay the one-time grammar-composition and analysis cost before
		// accepting traffic rather than on the first request.
		t0 := time.Now()
		driver.Analyses()
		log.Printf("warmed composed grammar + §VI analyses in %s", time.Since(t0))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("cmserved listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			log.Fatalf("cmserved: %v", err)
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				// Live key rotation: reload the tenant registry in place.
				// Buckets carry their fill across the swap; a bad file
				// keeps the previous generation serving.
				if reg == nil {
					log.Printf("cmserved: SIGHUP ignored, no -keys file configured")
					continue
				}
				if err := reg.Reload(); err != nil {
					log.Printf("cmserved: tenant reload failed, keeping generation %d: %v", reg.Generation(), err)
				} else {
					log.Printf("cmserved: tenant registry reloaded, generation %d (%d tenants)",
						reg.Generation(), len(reg.Names()))
				}
				continue
			}
			log.Printf("cmserved: %v, shutting down", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			// Drain first: queued runs are shed with structured 429s and
			// in-flight runs finish, then the listener closes.
			if err := s.Drain(ctx); err != nil {
				log.Printf("cmserved: drain: %v", err)
			}
			if err := httpSrv.Shutdown(ctx); err != nil {
				log.Fatalf("cmserved: shutdown: %v", err)
			}
			return
		}
	}
}
