// cmserved is the compile/run daemon: the extensible CMINUS translator
// behind an HTTP JSON API, amortizing grammar composition, analysis and
// parsing across requests through a shared content-addressed cache.
//
// Usage:
//
//	cmserved [-addr :8347] [-runs N] [-timeout 10s] [-max-timeout 60s]
//
// Endpoints (see internal/server):
//
//	POST /v1/compile   {"source": "...", "extensions": "all", "par": "pthread"}
//	POST /v1/run       {"source": "...", "threads": 4, "timeout_ms": 2000}
//	GET  /v1/analyses  §VI analysis report as JSON
//	GET  /healthz      liveness
//	GET  /metrics      counters, cache ratios, stage latency histograms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/driver"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	runs := flag.Int("runs", 0, "max concurrent interpreter runs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-run execution deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on per-request timeout_ms")
	warm := flag.Bool("warm", true, "pre-build the composed grammar table and §VI analyses at startup")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: cmserved [-addr :8347] [-runs N] [-timeout d] [-max-timeout d]")
		os.Exit(2)
	}

	s := server.New(server.Config{
		Driver:            driver.New(),
		MaxConcurrentRuns: *runs,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
	})
	if *warm {
		// Pay the one-time grammar-composition and analysis cost before
		// accepting traffic rather than on the first request.
		t0 := time.Now()
		driver.Analyses()
		log.Printf("warmed composed grammar + §VI analyses in %s", time.Since(t0))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("cmserved listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("cmserved: %v", err)
	case sig := <-sigc:
		log.Printf("cmserved: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Fatalf("cmserved: shutdown: %v", err)
		}
	}
}
