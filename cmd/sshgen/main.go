// sshgen writes a synthetic sea-surface-height matrix file (the
// substitute for the paper's proprietary satellite SSH product) in the
// CMXM format that readMatrix consumes. It also prints the ground-
// truth eddy tracks so downstream results can be validated.
//
// Usage:
//
//	sshgen [-lat N] [-lon N] [-time N] [-eddies N] [-seed N] -o ssh.data
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eddy"
	"repro/internal/matio"
)

func main() {
	lat := flag.Int("lat", 48, "latitude cells")
	lon := flag.Int("lon", 64, "longitude cells")
	tm := flag.Int("time", 40, "time steps")
	n := flag.Int("eddies", 6, "synthetic eddies")
	seed := flag.Int64("seed", 1, "random seed")
	noise := flag.Float64("noise", 0.05, "measurement noise amplitude")
	out := flag.String("o", "ssh.data", "output file")
	quiet := flag.Bool("q", false, "do not print ground-truth tracks")
	flag.Parse()

	o := eddy.SynthOptions{Lat: *lat, Lon: *lon, Time: *tm, NumEddies: *n,
		NoiseAmp: *noise, SwellAmp: 0.08, Seed: *seed}
	ssh, eddies := eddy.Synthesize(o)
	if err := matio.WriteFile(*out, ssh); err != nil {
		fmt.Fprintf(os.Stderr, "sshgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: Matrix float <3> %dx%dx%d (%d synthetic eddies)\n",
		*out, *lat, *lon, *tm, len(eddies))
	if !*quiet {
		for k, e := range eddies {
			fmt.Printf("  eddy %d: start (%.0f,%.0f) t=%d life=%d radius=%.1f depth=%.2f drift (%.2f,%.2f)\n",
				k, e.Lat0, e.Lon0, e.Start, e.Life, e.Radius, e.Depth, e.VLat, e.VLon)
		}
	}
}
