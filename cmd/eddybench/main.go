// eddybench runs the §IV ocean-eddy pipeline end to end on synthetic
// SSH data and reports timings: the Fig 8 trough-scoring program
// executed by the translator's interpreter (optionally sweeping thread
// counts — experiment E4's scaling shape), the native Go reference,
// and the Fig 4 threshold-sweep detection plus tracking.
//
// Usage:
//
//	eddybench [-lat N] [-lon N] [-time N] [-sweep 1,2,4,8] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eddy"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/par"
)

// fig8 is the paper's ocean-eddy scoring program (Fig 8), adapted to
// this translator's concrete syntax.
const fig8 = `
(Matrix float <1>, int, int) getTrough(Matrix float <1> ts, int i) {
	int beginning = i;
	int n = dimSize(ts, 0);
	while (i + 1 < n && ts[i] >= ts[i + 1])
		i = i + 1;
	while (i + 1 < n && ts[i] < ts[i + 1])
		i = i + 1;
	return (ts[beginning :: i], beginning, i);
}

Matrix float <1> computeArea(Matrix float <1> aoi) {
	float y1 = aoi[0];
	float y2 = aoi[end];
	int x1 = 0;
	int x2 = dimSize(aoi, 0) - 1;
	float m = (y1 - y2) / (float)(x1 - x2);
	float b = y1 - m * x1;
	Matrix float <1> Line = [x1 :: x2] * m + b;
	float area = with ([0] <= [i] < [dimSize(Line, 0)])
		fold(+, 0.0, Line[i] - aoi[i]);
	return with ([0] <= [i] < [dimSize(Line, 0)])
		genarray([dimSize(Line, 0)], area);
}

Matrix float <1> scoreTS(Matrix float <1> ts) {
	Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
	int i = 0;
	int n = dimSize(ts, 0);
	while (i + 1 < n && ts[i] < ts[i + 1])
		i = i + 1;
	int beginning = 0;
	Matrix float <1> trough;
	while (i < n - 1) {
		(trough, beginning, i) = getTrough(ts, i);
		scores[beginning : i] = computeArea(trough);
	}
	return scores;
}

int main() {
	Matrix float <3> data = readMatrix("ssh.data");
	Matrix float <3> scores;
	scores = matrixMap(scoreTS, data, [2]);
	writeMatrix("temporalScores.data", scores);
	return 0;
}
`

func main() {
	lat := flag.Int("lat", 48, "latitude cells")
	lon := flag.Int("lon", 64, "longitude cells")
	tm := flag.Int("time", 60, "time steps")
	eddies := flag.Int("eddies", 6, "synthetic eddies")
	seed := flag.Int64("seed", 1, "random seed")
	sweep := flag.String("sweep", "1,2,4", "thread counts to sweep")
	flag.Parse()

	o := eddy.SynthOptions{Lat: *lat, Lon: *lon, Time: *tm, NumEddies: *eddies,
		NoiseAmp: 0.05, SwellAmp: 0.08, Seed: *seed}
	fmt.Printf("synthesizing SSH %dx%dx%d with %d eddies (seed %d)\n",
		o.Lat, o.Lon, o.Time, o.NumEddies, o.Seed)
	ssh, truth := eddy.Synthesize(o)

	// --- Fig 8 scoring through the translator + interpreter ---
	fmt.Println("\n== Fig 8 trough scoring (extended-C program, interpreter) ==")
	var scored *matrix.Matrix
	for _, ts := range parseSweep(*sweep) {
		files := map[string]*matrix.Matrix{"ssh.data": ssh}
		start := time.Now()
		_, res, err := core.Run("fig8.xc", fig8, core.Config{},
			interp.Options{Files: files, Threads: ts})
		if err != nil {
			fmt.Fprintf(os.Stderr, "eddybench: %v\n%s", err, res.Diags.String())
			os.Exit(1)
		}
		el := time.Since(start)
		fmt.Printf("  threads=%-2d  %10.1f ms\n", ts, float64(el.Microseconds())/1000)
		scored = files["temporalScores.data"]
	}

	// --- Native Go reference ---
	fmt.Println("\n== Native Go reference (eddy.ScoreField) ==")
	start := time.Now()
	ref, err := eddy.ScoreField(ssh, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  sequential  %10.1f ms\n", float64(time.Since(start).Microseconds())/1000)
	pool := par.NewPool(4)
	start = time.Now()
	_, _ = eddy.ScoreField(ssh, pool)
	fmt.Printf("  pool(4)     %10.1f ms\n", float64(time.Since(start).Microseconds())/1000)
	pool.Shutdown()

	if scored != nil && matrix.AlmostEqual(scored, ref, 1e-6) {
		fmt.Println("  interpreter result matches the Go reference pointwise")
	} else if scored != nil {
		fmt.Println("  WARNING: interpreter result differs from the Go reference")
	}

	// --- ranking against ground truth ---
	fmt.Println("\n== Top-scored cells vs ground truth ==")
	top := eddy.TopScores(ref, 10)
	for _, c := range top {
		fmt.Printf("  cell (%2d,%2d) score %6.2f  nearest eddy %.1f cells away\n",
			c.Lat, c.Lon, c.Score, nearestEddy(c, truth))
	}

	// --- Fig 4 detection + tracking ---
	fmt.Println("\n== Fig 4 threshold-sweep detection + tracking ==")
	dets, err := eddy.Detect(ssh, eddy.DefaultDetect())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	total := 0
	for _, ds := range dets {
		total += len(ds)
	}
	tracks := eddy.Track(dets, 4)
	long := 0
	for _, tr := range tracks {
		if len(tr) >= 3 {
			long++
		}
	}
	fmt.Printf("  %d detections over %d time steps; %d tracks (%d lasting >= 3 steps; %d true eddies)\n",
		total, o.Time, len(tracks), long, len(truth))
}

func parseSweep(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		if n, err := strconv.Atoi(strings.TrimSpace(part)); err == nil && n > 0 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

func nearestEddy(c eddy.ScoredCell, truth []eddy.Eddy) float64 {
	best := 1e18
	for _, e := range truth {
		mid := float64(e.Life) / 2
		dla := float64(c.Lat) - (e.Lat0 + e.VLat*mid)
		dlo := float64(c.Lon) - (e.Lon0 + e.VLon*mid)
		d := dla*dla + dlo*dlo
		if d < best {
			best = d
		}
	}
	// sqrt
	x := best
	if x == 0 {
		return 0
	}
	for i := 0; i < 25; i++ {
		x = 0.5 * (x + best/x)
	}
	return x
}
