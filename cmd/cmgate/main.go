// cmgate is the fleet front for cmserved: one HTTP endpoint over N
// shards, routing each request by its content address on a consistent-
// hash ring so identical programs always land on the same shard's
// cache (fleet-wide compile dedup without shared state).
//
// Usage:
//
//	cmgate [-addr :8340] -shards http://h1:8347,http://h2:8347,...
//	       [-retries 2] [-probe-interval 1s] [-breaker-threshold 3]
//	       [-hedge-min 20ms] [-hedge-max 2s] [-no-hedge] [-no-replicate]
//	       [-keys path]
//
// Multi-tenancy: -keys loads an API-key registry (JSON). The gate
// authenticates Authorization: Bearer / X-CM-Key, charges each
// tenant's token bucket BEFORE routing (a flooding tenant is refused
// with a structured 429 + retry_after_ms without touching any shard),
// and stamps the authenticated identity on forwards as X-CM-Tenant for
// shards started with -trust-gate. SIGHUP reloads the key file in
// place without resetting bucket fill. Unauthenticated requests ride
// the anonymous default tenant.
//
// Robustness behaviour: per-shard health probes feed half-open circuit
// breakers; transport failures fail over along the ring; overload 429s
// are retried -retries times with jittered backoff honoring the
// shard's Retry-After; requests still unanswered after the fleet's p99
// are hedged to the next ring shard (first response wins); compile
// artifacts are copied to a demoted key's new owner before forwarding
// and replicated to the key's ring successor after compiling, so a
// shard loss costs cache affinity, not recompiles.
//
// Endpoints: /v1/compile, /v1/run, /v1/vet, /v1/analyses and
// /v1/artifact/{key} forward to the fleet; /healthz and /metrics
// report the gate's own view.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":8340", "listen address")
	shards := flag.String("shards", "", "comma-separated cmserved base URLs (required)")
	replicas := flag.Int("replicas", 0, "virtual nodes per shard on the hash ring (0 = default)")
	retries := flag.Int("retries", 2, "re-attempts after overload sheds or fleet-unreachable passes")
	retryBase := flag.Duration("retry-base", 0, "backoff base for re-attempts (0 = default 100ms)")
	probeInterval := flag.Duration("probe-interval", time.Second, "health probe period per shard")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe deadline (0 = half the interval)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive transport failures that open a shard's breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-state dwell before a half-open trial (0 = 2x probe interval)")
	hedgeMin := flag.Duration("hedge-min", 20*time.Millisecond, "lower clamp on the p99-derived hedge delay")
	hedgeMax := flag.Duration("hedge-max", 2*time.Second, "upper clamp on the p99-derived hedge delay")
	noHedge := flag.Bool("no-hedge", false, "disable tail-latency request hedging")
	noReplicate := flag.Bool("no-replicate", false, "disable artifact replication to the ring successor")
	keys := flag.String("keys", "", "tenant API-key file (JSON); empty = anonymous only, no limits")
	flag.Parse()
	if flag.NArg() != 0 || *shards == "" {
		fmt.Fprintln(os.Stderr, "usage: cmgate [-addr :8340] -shards http://h1:8347,http://h2:8347,...")
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			urls = append(urls, u)
		}
	}
	var reg *tenant.Registry
	if *keys != "" {
		var err error
		if reg, err = tenant.LoadFile(*keys); err != nil {
			log.Fatalf("cmgate: %v", err)
		}
		log.Printf("loaded tenant registry from %s (%d tenants)", *keys, len(reg.Names()))
	}

	rt, err := fleet.New(fleet.Config{
		Shards:             urls,
		Replicas:           *replicas,
		ProbeInterval:      *probeInterval,
		ProbeTimeout:       *probeTimeout,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		Retry:              fleet.RetryPolicy{Max: *retries, Base: *retryBase},
		HedgeAfterMin:      *hedgeMin,
		HedgeAfterMax:      *hedgeMax,
		HedgeDisabled:      *noHedge,
		DisableReplication: *noReplicate,
		Tenants:            reg,
	})
	if err != nil {
		log.Fatalf("cmgate: %v", err)
	}
	rt.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("cmgate listening on %s, fronting %d shard(s)", *addr, len(urls))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			log.Fatalf("cmgate: %v", err)
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				// Live key rotation; bucket fill survives, a bad file
				// keeps the previous generation serving.
				if reg == nil {
					log.Printf("cmgate: SIGHUP ignored, no -keys file configured")
					continue
				}
				if err := reg.Reload(); err != nil {
					log.Printf("cmgate: tenant reload failed, keeping generation %d: %v", reg.Generation(), err)
				} else {
					log.Printf("cmgate: tenant registry reloaded, generation %d (%d tenants)",
						reg.Generation(), len(reg.Names()))
				}
				continue
			}
			log.Printf("cmgate: %v, shutting down", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(ctx); err != nil {
				log.Printf("cmgate: shutdown: %v", err)
			}
			// After the listener drains, stop probers and wait out any
			// in-flight background replication.
			rt.Close()
			return
		}
	}
}
