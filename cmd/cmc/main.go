// cmc is the extensible CMINUS translator: it composes the host
// language with the selected language extensions, checks the program
// with the composed attribute-grammar semantics, and translates it to
// plain parallel C (§II: "The extended translator slips into the
// existing development process as just another step in the compilation
// process").
//
// Usage:
//
//	cmc [flags] file.xc
//
//	-ext matrix,transform,rc,cilk   extensions to compose (also: all, none)
//	-emit c|ast                output kind (default c)
//	-par pthread|omp|none      parallel code generation mode
//	-O                         §III-A.4 high-level optimizations (default on)
//	-o file                    output path (default stdout)
//	-vet                       run the cmvet static analyses before emitting —
//	                           shape/rc/liveness checks plus the cilk
//	                           determinacy-race detector (CM-RACE); error
//	                           findings reject the program (see cmd/cmvet
//	                           for the standalone tool and JSON output)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cgen"
	"repro/internal/driver"
)

func main() {
	extFlag := flag.String("ext", "matrix,transform,rc", "comma-separated extensions to compose (matrix, transform, rc, cilk, all, none)")
	emit := flag.String("emit", "c", "output: c or ast")
	par := flag.String("par", "pthread", "parallel codegen: pthread, omp or none")
	optimize := flag.Bool("O", true, "enable high-level optimizations (fusion, slice elimination)")
	out := flag.String("o", "", "output file (default stdout)")
	vetFlag := flag.Bool("vet", false, "run the cmvet static analyses; error findings reject the program")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cmc [flags] file.xc")
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal("%v", err)
	}

	exts, err := driver.ParseExtensions(*extFlag)
	if err != nil {
		fatal("%v", err)
	}
	parMode, err := driver.ParseParMode(*par)
	if err != nil {
		fatal("%v", err)
	}
	if *emit != "c" && *emit != "ast" {
		fatal("unknown -emit kind %q", *emit)
	}

	d := driver.New()
	if *vetFlag {
		vr := d.Vet(driver.VetRequest{Name: file, Source: string(src), Exts: exts})
		for _, f := range vr.Findings {
			fmt.Fprintln(os.Stderr, f.String())
		}
		if !vr.OK {
			// Frontend diagnostics print below via the compile path when
			// the frontend failed; error findings alone stop here.
			for _, diag := range vr.Diagnostics {
				fmt.Fprintln(os.Stderr, diag)
			}
			os.Exit(1)
		}
	}

	res := d.Compile(context.Background(), driver.CompileRequest{
		Name: file, Source: string(src), Exts: exts, Emit: *emit,
		Codegen: cgen.Options{Par: parMode, Optimize: *optimize},
	})
	for _, d := range res.Diagnostics {
		fmt.Fprintln(os.Stderr, d)
	}
	if !res.OK {
		os.Exit(1)
	}

	if *out == "" {
		fmt.Print(res.Output)
		return
	}
	if err := os.WriteFile(*out, []byte(res.Output), 0o644); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmc: "+format+"\n", args...)
	os.Exit(2)
}
