// cmc is the extensible CMINUS translator: it composes the host
// language with the selected language extensions, checks the program
// with the composed attribute-grammar semantics, and translates it to
// plain parallel C (§II: "The extended translator slips into the
// existing development process as just another step in the compilation
// process").
//
// Usage:
//
//	cmc [flags] file.xc
//
//	-ext matrix,transform,rc   extensions to compose (default all)
//	-emit c|ast                output kind (default c)
//	-par pthread|omp|none      parallel code generation mode
//	-O                         §III-A.4 high-level optimizations (default on)
//	-o file                    output path (default stdout)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ast"
	"repro/internal/cgen"
	"repro/internal/core"
	"repro/internal/parser"
)

func main() {
	extFlag := flag.String("ext", "matrix,transform,rc", "comma-separated extensions to compose")
	emit := flag.String("emit", "c", "output: c or ast")
	par := flag.String("par", "pthread", "parallel codegen: pthread, omp or none")
	optimize := flag.Bool("O", true, "enable high-level optimizations (fusion, slice elimination)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cmc [flags] file.xc")
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal("%v", err)
	}

	var exts parser.Options
	for _, e := range strings.Split(*extFlag, ",") {
		switch strings.TrimSpace(e) {
		case "matrix":
			exts.Matrix = true
		case "transform":
			exts.Transform = true
		case "rc":
			exts.Rc = true
		case "":
		default:
			fatal("unknown extension %q (have: matrix, transform, rc)", e)
		}
	}
	cg := cgen.Options{Par: cgen.ParMode(*par), Optimize: *optimize}
	switch cg.Par {
	case cgen.ParPthread, cgen.ParOMP, cgen.ParNone:
	default:
		fatal("unknown -par mode %q", *par)
	}
	cfg := core.Config{Extensions: &exts, Codegen: &cg}

	var text string
	switch *emit {
	case "ast":
		res := core.Check(file, string(src), cfg)
		report(res)
		text = ast.Print(res.Program)
	case "c":
		res := core.Compile(file, string(src), cfg)
		report(res)
		text = res.C
	default:
		fatal("unknown -emit kind %q", *emit)
	}

	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal("%v", err)
	}
}

func report(res *core.Result) {
	for _, d := range res.Diags.All() {
		fmt.Fprintln(os.Stderr, d)
	}
	if res.Diags.HasErrors() || res.Program == nil {
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cmc: "+format+"\n", args...)
	os.Exit(2)
}
