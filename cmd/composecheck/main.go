// composecheck runs the paper's two modular analyses on the real
// language specifications and prints the §VI results table:
//
//   - the modular determinism analysis (isComposable, §VI-A) on each
//     grammar extension against its host, reproducing the paper's
//     findings — the matrix and transform extensions pass; the tuple
//     extension fails on its host "(" initial terminal and is instead
//     packaged with the host; the "(|"-marker variant passes;
//
//   - the modular well-definedness analysis (MWDA, §VI-B) on each
//     semantic (attribute grammar) extension — all pass, as the paper
//     states.
//
// It then composes everything and verifies the guaranteed conclusion:
// a conflict-free LALR(1) parser and a complete attribute grammar.
//
// The analyses themselves live in internal/driver (Analyses), shared
// with the compile server's /v1/analyses endpoint; this command is the
// table renderer.
package main

import (
	"os"

	"repro/internal/driver"
)

func main() {
	rep := driver.Analyses()
	rep.Render(os.Stdout)
	if rep.Unexpected > 0 {
		os.Exit(1)
	}
}
