// composecheck runs the paper's two modular analyses on the real
// language specifications and prints the §VI results table:
//
//   - the modular determinism analysis (isComposable, §VI-A) on each
//     grammar extension against its host, reproducing the paper's
//     findings — the matrix and transform extensions pass; the tuple
//     extension fails on its host "(" initial terminal and is instead
//     packaged with the host; the "(|"-marker variant passes;
//
//   - the modular well-definedness analysis (MWDA, §VI-B) on each
//     semantic (attribute grammar) extension — all pass, as the paper
//     states.
//
// It then composes everything and verifies the guaranteed conclusion:
// a conflict-free LALR(1) parser and a complete attribute grammar.
package main

import (
	"fmt"
	"os"

	"repro/internal/attr"
	"repro/internal/grammar"
	"repro/internal/parser"
	"repro/internal/sem"
)

func main() {
	fail := 0
	fmt.Println("== Modular determinism analysis (Copper, §VI-A) ==")

	check := func(name string, r grammar.ComposeReport, expectPass bool) {
		status := "PASS"
		if !r.Passed {
			status = "FAIL"
		}
		note := ""
		if r.Passed != expectPass {
			note = "  << UNEXPECTED"
			fail++
		}
		fmt.Printf("  %-28s %s%s\n", name, status, note)
		if len(r.Markers) > 0 {
			fmt.Printf("      markers: %v\n", r.Markers)
		}
		for _, f := range r.Failures {
			fmt.Printf("      %s\n", f)
		}
	}

	check("matrix vs CMINUS",
		grammar.IsComposable(parser.StartSymbol, parser.HostSpec(), parser.MatrixSpec()), true)
	check("refcount vs CMINUS",
		grammar.IsComposable(parser.StartSymbol, parser.HostSpec(), parser.RcSpec()), true)
	check("transform vs CMINUS+matrix",
		grammar.IsComposable(parser.StartSymbol, mergedHostMatrix(), parser.TransformSpec()), true)
	check("cilk vs CMINUS",
		grammar.IsComposable(parser.StartSymbol, parser.HostSpec(), parser.CilkSpec()), true)
	check("tuple (standalone) vs CMINUS",
		grammar.IsComposable(parser.StartSymbol, parser.HostSpecCore(), parser.TupleSpec()), false)
	check("tuple with (| |) markers",
		grammar.IsComposable(parser.StartSymbol, parser.HostSpecCore(), parser.TupleFixedSpec()), true)

	fmt.Println("\n  (the standalone tuple extension fails on its host \"(\" initial")
	fmt.Println("   terminal, exactly as §VI-A reports; it is therefore packaged")
	fmt.Println("   with the host language in this translator)")

	fmt.Println("\n== Composition theorem check ==")
	tab, err := parser.BuildTable(parser.AllExtensions())
	if err != nil {
		fmt.Printf("  composed grammar FAILED: %v\n", err)
		fail++
	} else {
		fmt.Printf("  host + matrix + transform + refcount + cilk: LALR(1), %d states, 0 conflicts\n",
			tab.NumStates())
	}

	fmt.Println("\n== Modular well-definedness analysis (Silver, §VI-B) ==")
	info := sem.NewInfo()
	host := sem.HostAG(info, nil)
	mr := attr.CheckWellDefined(host, sem.MatrixAG(info))
	printMWDA("matrix semantics vs host", mr, &fail)
	tr := attr.CheckWellDefined(mergedSemHost(), sem.TransformAG(info))
	printMWDA("transform semantics vs host+matrix", tr, &fail)
	cr := attr.CheckWellDefined(sem.HostAG(sem.NewInfo(), nil), sem.CilkAG(sem.NewInfo()))
	printMWDA("cilk semantics vs host", cr, &fail)

	g, err := sem.ComposeAG(sem.NewInfo())
	if err != nil {
		fmt.Printf("  semantic composition FAILED: %v\n", err)
		fail++
	} else if missing := g.CheckComplete(); len(missing) > 0 {
		fmt.Printf("  composed attribute grammar incomplete: %d missing equations\n", len(missing))
		fail++
	} else {
		fmt.Println("  composed attribute grammar: complete (every attribute has a defining equation)")
	}

	if fail > 0 {
		fmt.Printf("\n%d unexpected result(s)\n", fail)
		os.Exit(1)
	}
	fmt.Println("\nall analyses match the paper's reported results")
}

func printMWDA(name string, r attr.MWDAReport, fail *int) {
	status := "PASS"
	if !r.Passed {
		status = "FAIL"
		*fail++
	}
	fmt.Printf("  %-38s %s\n", name, status)
	for _, f := range r.Failures {
		fmt.Printf("      %s\n", f)
	}
}

// mergedHostMatrix treats CMINUS ∪ matrix as the host for analyzing
// the transform extension, which extends the matrix extension.
func mergedHostMatrix() *grammar.Spec {
	h := parser.HostSpec()
	m := parser.MatrixSpec()
	for _, t := range m.Terminals {
		t.Owner = grammar.HostOwner
	}
	for _, p := range m.Productions {
		p.Owner = grammar.HostOwner
	}
	h.Terminals = append(h.Terminals, m.Terminals...)
	h.Nonterminals = append(h.Nonterminals, m.Nonterminals...)
	h.Productions = append(h.Productions, m.Productions...)
	return h
}

func mergedSemHost() *attr.AGSpec {
	info := sem.NewInfo()
	h := sem.HostAG(info, nil)
	m := sem.MatrixAG(info)
	h.NTs = append(h.NTs, m.NTs...)
	h.Attrs = append(h.Attrs, m.Attrs...)
	h.Occurs = append(h.Occurs, m.Occurs...)
	for i := range m.Prods {
		m.Prods[i].Owner = ""
	}
	h.Prods = append(h.Prods, m.Prods...)
	h.SynEqs = append(h.SynEqs, m.SynEqs...)
	h.InhEqs = append(h.InhEqs, m.InhEqs...)
	return h
}
