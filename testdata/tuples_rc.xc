// Tuples (§III-B) and reference-counting pointers.
(int, int, bool) divmod(int a, int b) {
	return (a / b, a % b, a % b == 0);
}
int main() {
	int q; int r; bool exact;
	(q, r, exact) = divmod(47, 5);
	print(q);                            // 9
	print(r);                            // 2
	print(exact);                        // false
	refcounted int * cell = rcnew(q * 10);
	rcset(cell, rcget(cell) + r);
	print(rcget(cell));                  // 92
	return 0;
}
