/* Race-free cilk task parallelism: every spawned call reads only
   shared data (base, a, b) and writes nothing but its own spawn
   target, and targets are only read after the joining sync — cmvet's
   determinacy-race detector proves this program clean (0 findings). */
Matrix float <1> scale(Matrix float <1> v, float f) {
	int n = dimSize(v, 0);
	return with ([0] <= [i] < [n]) genarray([n], v[i] * f);
}

float total(Matrix float <1> v) {
	int n = dimSize(v, 0);
	return with ([0] <= [i] < [n]) fold(+, 0.0, v[i]);
}

int main() {
	Matrix float <1> base = [1 :: 16] * 1.0;
	Matrix float <1> a;
	Matrix float <1> b;
	spawn a = scale(base, 2.0);
	spawn b = scale(base, 3.0);
	sync;

	float sa = 0.0;
	float sb = 0.0;
	spawn sa = total(a);
	spawn sb = total(b);
	sync;
	print(sa);
	print(sb);
	print(sa + sb);
	return 0;
}
