// Transpose as a with-loop: the m[j, i] genarray body pattern-matches
// the cache-blocked transpose kernel on the VM's flat engine. A double
// transpose must round-trip exactly; a rectangular transpose checks
// the shape swap.
int main() {
	int rows = 12;
	int cols = 7;
	Matrix int <2> m;
	m = with ([0, 0] <= [i, j] < [rows, cols]) genarray([rows, cols], i * 100 + j);
	Matrix int <2> t;
	t = with ([0, 0] <= [i, j] < [cols, rows]) genarray([cols, rows], m[j, i]);
	Matrix int <2> back;
	back = with ([0, 0] <= [i, j] < [rows, cols]) genarray([rows, cols], t[j, i]);
	print(t[3, 11]);
	print(back[11, 3]);
	int diff = with ([0, 0] <= [i, j] < [rows, cols]) fold(+, 0, back[i, j] - m[i, j]);
	print(diff);
	print(dimSize(t, 0));
	print(dimSize(t, 1));
	return 0;
}
