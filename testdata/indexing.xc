// §III-A.3: every indexing form.
int main() {
	Matrix int <1> v = [0 :: 9];
	print(v[end]);                       // 9
	print(v[end - 4]);                   // 5
	Matrix int <1> mid = v[2 : 5];
	print(dimSize(mid, 0));              // 4
	Matrix int <1> odds = v[v % 2 == 1];
	print(dimSize(odds, 0));             // 5
	Matrix int <2> m = init(Matrix int <2>, 3, 4);
	m[1, :] = [10 :: 13];
	print(m[1, 2]);                      // 12
	m[:, 0] = v[0 : 2];
	print(m[2, 0]);                      // 2
	return 0;
}
