// Fig 9: explicit transformations on the temporal mean.
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p)
		transform
			split j by 4, jin, jout.
			vectorize jin.
			parallelize i;
	writeMatrix("means.data", means);
	print(means[1, 1]);
	return 0;
}
