// Cilk extension (§VIII): spawned recursive fib.
int fib(int n) {
	if (n < 2) return n;
	int a = 0;
	int b = 0;
	spawn a = fib(n - 1);
	b = fib(n - 2);
	sync;
	return a + b;
}
int main() {
	print(fib(14));                      // 377
	return 0;
}
