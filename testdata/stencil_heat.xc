// Heat diffusion on a square plate: repeated five-point stencil
// steps written as genarray with-loops over the interior. The body is
// a pure index expression, so both stencil loops compile to the flat
// with-loop engine under the VM.
int main() {
	int n = 16;
	float alpha = 0.1;
	Matrix float <2> u;
	// Hot spot in the middle of a cold plate.
	u = with ([7, 7] <= [i, j] < [9, 9]) genarray([n, n], 100.0);
	int step = 0;
	while (step < 8) {
		Matrix float <2> next;
		next = with ([1, 1] <= [i, j] < [n - 1, n - 1])
			genarray([n, n],
				u[i, j] + alpha * (u[i - 1, j] + u[i + 1, j]
					+ u[i, j - 1] + u[i, j + 1] - 4.0 * u[i, j]));
		u = next;
		step = step + 1;
	}
	float total = with ([0, 0] <= [i, j] < [n, n]) fold(+, 0.0, u[i, j]);
	print(total);
	print(u[8, 8]);
	print(u[0, 0]);
	float hottest = with ([0, 0] <= [i, j] < [n, n]) fold(max, 0.0, u[i, j]);
	print(hottest);
	return 0;
}
