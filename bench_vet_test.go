// Vet facts + fusion benchmarks: the cost of proving fusion legality
// (vet.ComputeFacts) and the payoff of consuming it — the same
// chained-elementwise program executed by the VM with the facts-driven
// fused loop versus with fusion disabled (nil facts, every stage a
// full kernel pass with a materialized intermediate).
//
// Run with: go test -bench 'VetFacts|FusedChain' -benchmem
// Results are committed in BENCH_vet.json.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/interp"
	"repro/internal/vet"
	"repro/internal/vm"
)

// chainedSrc runs a three-stage elementwise chain over 64k floats
// repeatedly: the fusable shape the paper's §III-A.4 optimization
// targets. Unfused, every repetition materializes two full
// intermediates; fused, intermediates live in block-sized scratch.
const chainedSrc = `
int main() {
	Matrix float <1> a = [0 :: 65535] * 1.0;
	Matrix float <1> b = [1 :: 65536] * 1.0;
	float s = 0.0;
	for (int i = 0; i < 40; i++) {
		Matrix float <1> r = a .* b + a - b * 0.5;
		s = s + r[end];
	}
	print(s);
	return 0;
}
`

// BenchmarkVetFacts times the fusion-legality proof pass alone, on a
// program with provable chains — the cost a driver cache miss pays
// before bytecode compilation.
func BenchmarkVetFacts(b *testing.B) {
	bp := compileBench(b, chainedSrc)
	b.ReportAllocs()
	var chains int
	for i := 0; i < b.N; i++ {
		f := vet.ComputeFacts(bp.prog, bp.info)
		chains = f.ChainCount()
	}
	if chains != 1 {
		b.Fatalf("ChainCount = %d, want 1", chains)
	}
}

// BenchmarkFusedChain is the ablation pair: identical program and VM,
// fusion on (facts-driven opFused) vs off (nil facts, per-stage
// kernels). The contract elsewhere (vmdiff) holds the two observably
// identical; this measures the time and allocation difference.
func BenchmarkFusedChain(b *testing.B) {
	bp := compileBench(b, chainedSrc)
	if bp.vmp.FusedSites() != 1 {
		b.Fatalf("FusedSites = %d, want 1", bp.vmp.FusedSites())
	}
	unfused, err := vm.CompileWithFacts(bp.prog, bp.info, nil)
	if err != nil {
		b.Fatalf("CompileWithFacts(nil): %v", err)
	}
	if unfused.FusedSites() != 0 {
		b.Fatalf("unfused FusedSites = %d, want 0", unfused.FusedSites())
	}
	opts := interp.Options{Threads: 1, Stdout: io.Discard}
	run := func(b *testing.B, p *vm.Program) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			it := interp.New(bp.prog, bp.info, opts)
			_, err := vm.NewMachine(p, it).Run()
			it.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("FusionOn", func(b *testing.B) { run(b, bp.vmp) })
	b.Run("FusionOff", func(b *testing.B) { run(b, unfused) })
}
