// Command-level smoke tests: build the real binaries and exercise them
// the way the README shows — translate, execute, analyze, generate
// data — against the programs in testdata/.
package repro_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	cmdBuildOnce sync.Once
	cmdBinDir    string
	cmdBuildErr  error
)

// buildCommands compiles all cmd/ binaries once per test run.
func buildCommands(t *testing.T) string {
	t.Helper()
	cmdBuildOnce.Do(func() {
		cmdBinDir, cmdBuildErr = os.MkdirTemp("", "cmbin")
		if cmdBuildErr != nil {
			return
		}
		for _, name := range []string{"cmc", "cmrun", "cmvet", "composecheck", "sshgen", "cmserved"} {
			out, err := exec.Command("go", "build", "-o",
				filepath.Join(cmdBinDir, name), "./cmd/"+name).CombinedOutput()
			if err != nil {
				cmdBuildErr = err
				cmdBuildErr = &buildError{name: name, out: string(out), err: err}
				return
			}
		}
	})
	if cmdBuildErr != nil {
		t.Fatalf("building commands: %v", cmdBuildErr)
	}
	return cmdBinDir
}

type buildError struct {
	name string
	out  string
	err  error
}

func (e *buildError) Error() string {
	return "go build ./cmd/" + e.name + ": " + e.err.Error() + "\n" + e.out
}

func TestCmdCmrunExecutesTestdata(t *testing.T) {
	bin := buildCommands(t)
	out, err := exec.Command(filepath.Join(bin, "cmrun"), "-t", "2",
		"testdata/cilk_fib.xc").CombinedOutput()
	if err != nil {
		t.Fatalf("cmrun: %v\n%s", err, out)
	}
	if strings.TrimSpace(string(out)) != "377" {
		t.Fatalf("cmrun output = %q, want 377", out)
	}
}

func TestCmdCmcEmitsCAndAst(t *testing.T) {
	bin := buildCommands(t)
	c, err := exec.Command(filepath.Join(bin, "cmc"), "-par", "none",
		"testdata/fig1_temporalmean.xc").Output()
	if err != nil {
		t.Fatalf("cmc: %v", err)
	}
	for _, want := range []string{"cm_mat", "u_main", "for (long u_k"} {
		if !strings.Contains(string(c), want) {
			t.Errorf("cmc -emit c missing %q", want)
		}
	}
	a, err := exec.Command(filepath.Join(bin, "cmc"), "-emit", "ast",
		"testdata/fig1_temporalmean.xc").Output()
	if err != nil {
		t.Fatalf("cmc -emit ast: %v", err)
	}
	if !strings.Contains(string(a), "genarray") || !strings.Contains(string(a), "(func int main") {
		t.Errorf("ast output unexpected:\n%s", a)
	}
}

func TestCmdCmcRejectsBadProgram(t *testing.T) {
	bin := buildCommands(t)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.xc")
	if err := os.WriteFile(bad, []byte("int main() { return zzz; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(filepath.Join(bin, "cmc"), bad).CombinedOutput()
	if err == nil {
		t.Fatal("cmc should fail on a semantic error")
	}
	if !strings.Contains(string(out), "undeclared") {
		t.Fatalf("cmc error output = %q", out)
	}
}

func TestCmdComposecheck(t *testing.T) {
	bin := buildCommands(t)
	out, err := exec.Command(filepath.Join(bin, "composecheck")).CombinedOutput()
	if err != nil {
		t.Fatalf("composecheck: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"matrix vs CMINUS             PASS",
		"tuple (standalone) vs CMINUS FAIL",
		"0 conflicts",
		"all analyses match the paper's reported results",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("composecheck missing %q:\n%s", want, s)
		}
	}
}

// TestCmdComposecheckGolden pins composecheck's §VI pass/fail table
// byte for byte, so the CLI and the compile server's /v1/analyses
// endpoint (both rendered from driver.Analyses) cannot drift apart.
func TestCmdComposecheckGolden(t *testing.T) {
	bin := buildCommands(t)
	out, err := exec.Command(filepath.Join(bin, "composecheck")).CombinedOutput()
	if err != nil {
		t.Fatalf("composecheck: %v\n%s", err, out)
	}
	golden, err := os.ReadFile("testdata/composecheck_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(golden) {
		t.Fatalf("composecheck output drifted from testdata/composecheck_golden.txt\n--- got ---\n%s\n--- want ---\n%s",
			out, golden)
	}
}

// TestCmdCmrunValidatesThreadCount: -t 0 and negative counts must not
// silently fall back to sequential execution — they select one worker
// per core and the program still runs correctly.
func TestCmdCmrunValidatesThreadCount(t *testing.T) {
	bin := buildCommands(t)
	for _, n := range []string{"0", "-4"} {
		out, err := exec.Command(filepath.Join(bin, "cmrun"), "-t", n,
			"testdata/cilk_fib.xc").CombinedOutput()
		if err != nil {
			t.Fatalf("cmrun -t %s: %v\n%s", n, err, out)
		}
		if strings.TrimSpace(string(out)) != "377" {
			t.Fatalf("cmrun -t %s output = %q, want 377", n, out)
		}
	}
}

// TestCmdCmrunTrapExitCodes pins the failure contract of the CLI:
// compile errors exit 2, runtime traps exit 3, busted resource budgets
// exit 4, and trap-coded failures print the code and source span.
func TestCmdCmrunTrapExitCodes(t *testing.T) {
	bin := buildCommands(t)
	dir := t.TempDir()
	writeProg := func(name, src string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	shapeTrap := writeProg("shape.xc", `
int main() {
	int n = 0 - 3;
	Matrix float <1> m;
	m = with ([0] <= [i] < [n]) genarray([n], 1.0);
	return 0;
}`)
	spin := writeProg("spin.xc", `
int main() {
	int i = 0;
	while (i >= 0) { i = i + 1; }
	return 0;
}`)
	alloc := writeProg("alloc.xc", `
int main() {
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [100, 100]) genarray([100, 100], 1.0);
	return 0;
}`)
	bad := writeProg("bad.xc", `int main() { return zzz; }`)

	cases := []struct {
		name string
		args []string
		exit int
		want string
	}{
		{"shape trap", []string{shapeTrap}, 3, "trap:shape"},
		{"step budget", []string{"-maxsteps", "10000", spin}, 4, "trap:step"},
		{"cell budget", []string{"-maxcells", "1000", alloc}, 4, "trap:oom"},
		{"compile error", []string{bad}, 2, "undeclared"},
		{"deadline", []string{"-timeout", "150ms", spin}, 1, "deadline"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := exec.Command(filepath.Join(bin, "cmrun"), c.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("cmrun succeeded, want exit %d\n%s", c.exit, out)
			}
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("cmrun: %v", err)
			}
			if got := ee.ExitCode(); got != c.exit {
				t.Errorf("exit = %d, want %d\n%s", got, c.exit, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("output missing %q:\n%s", c.want, out)
			}
			// Trap-coded failures name the failing construct's position.
			if strings.HasPrefix(c.want, "trap:") && !strings.Contains(string(out), ".xc:") {
				t.Errorf("output carries no source span:\n%s", out)
			}
		})
	}
}

// TestCmdCmvet pins the analyzer CLI contract: clean programs exit 0,
// error findings exit 1 with the span-addressed finding on stdout, and
// -json emits the machine-readable report the editors consume. The
// same bad program still compiles with plain cmc (the mismatch is a
// runtime trap without -vet) and is rejected by cmc -vet.
func TestCmdCmvet(t *testing.T) {
	bin := buildCommands(t)
	dir := t.TempDir()
	mm := filepath.Join(dir, "mm.xc")
	if err := os.WriteFile(mm, []byte(`
int main() {
	Matrix float <2> a = init(Matrix float <2>, 3, 4);
	Matrix float <2> b = init(Matrix float <2>, 5, 6);
	Matrix float <2> c = a * b;
	print(c);
	return 0;
}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Clean program: silent, exit 0.
	out, err := exec.Command(filepath.Join(bin, "cmvet"), "testdata/indexing.xc").CombinedOutput()
	if err != nil || len(out) != 0 {
		t.Fatalf("cmvet on clean program: err=%v out=%q", err, out)
	}

	// Error finding: exit 1, span-addressed text diagnostic.
	out, err = exec.Command(filepath.Join(bin, "cmvet"), mm).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("cmvet on mismatch: err=%v, want exit 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "error[shape-mismatch]") ||
		!strings.Contains(string(out), "mm.xc:5:23") {
		t.Fatalf("cmvet output = %q", out)
	}

	// -json: one structured report.
	out, err = exec.Command(filepath.Join(bin, "cmvet"), "-json", mm).Output()
	if err == nil {
		t.Fatal("cmvet -json on mismatch should exit 1")
	}
	var report struct {
		OK       bool `json:"ok"`
		Errors   int  `json:"errors"`
		Findings []struct {
			Code string `json:"code"`
		} `json:"findings"`
	}
	if jerr := json.Unmarshal(out, &report); jerr != nil {
		t.Fatalf("cmvet -json output is not JSON: %v\n%s", jerr, out)
	}
	if report.OK || report.Errors != 1 || len(report.Findings) != 1 ||
		report.Findings[0].Code != "shape-mismatch" {
		t.Fatalf("cmvet -json report: %+v", report)
	}

	// Plain cmc still translates the program; cmc -vet rejects it.
	if out, err := exec.Command(filepath.Join(bin, "cmc"), "-par", "none", mm).CombinedOutput(); err != nil {
		t.Fatalf("plain cmc rejected the program: %v\n%s", err, out)
	}
	out, err = exec.Command(filepath.Join(bin, "cmc"), "-vet", "-par", "none", mm).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("cmc -vet: err=%v, want exit 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "shape-mismatch") {
		t.Fatalf("cmc -vet output = %q", out)
	}
}

func TestCmdSshgenPlusCmrunPipeline(t *testing.T) {
	bin := buildCommands(t)
	dir := t.TempDir()
	// generate synthetic SSH, then run the Fig 1 program against it
	out, err := exec.Command(filepath.Join(bin, "sshgen"), "-q",
		"-lat", "6", "-lon", "7", "-time", "8",
		"-o", filepath.Join(dir, "ssh.data")).CombinedOutput()
	if err != nil {
		t.Fatalf("sshgen: %v\n%s", err, out)
	}
	src, err := os.ReadFile("testdata/fig1_temporalmean.xc")
	if err != nil {
		t.Fatal(err)
	}
	prog := filepath.Join(dir, "mean.xc")
	if err := os.WriteFile(prog, src, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(filepath.Join(bin, "cmrun"), "-t", "3", prog).CombinedOutput()
	if err != nil {
		t.Fatalf("cmrun pipeline: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(dir, "means.data")); err != nil {
		t.Fatal("means.data was not written")
	}
}
