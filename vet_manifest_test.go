// Static-analysis regression gate: every shipped program — the
// testdata/ corpus, the vet golden programs, and the CMINUS sources
// embedded in the examples/ Go hosts — is vetted and the findings are
// compared line-for-line with the committed manifest. Any drift (a new
// false positive on a known-good program, a lost finding on a known-bad
// one) fails the build. Regenerate with:
//
//	go test -run TestVetManifest -update-vet-manifest
package repro_test

import (
	"flag"
	"fmt"
	"go/ast"
	goparser "go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/parser"
)

var updateManifest = flag.Bool("update-vet-manifest", false, "rewrite testdata/vet_manifest.txt")

const manifestPath = "testdata/vet_manifest.txt"

// corpusProgram is one CMINUS source the manifest covers.
type corpusProgram struct {
	name string // stable label used in the manifest and in spans
	src  string
}

// exampleSources extracts the backtick CMINUS program constants from an
// examples/*/main.go host. A program is any top-level raw string
// constant whose value contains "int main()"; printf-style %s holes
// (the transforms host splices an optional epilogue) are blanked.
func exampleSources(t *testing.T, goFile string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := goparser.ParseFile(fset, goFile, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", goFile, err)
	}
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || !strings.HasPrefix(lit.Value, "`") {
			return true
		}
		body := strings.Trim(lit.Value, "`")
		if strings.Contains(body, "int main()") {
			out = append(out, strings.ReplaceAll(body, "%s", ""))
		}
		return true
	})
	return out
}

// corpus gathers every program the manifest locks down, sorted by name.
func corpus(t *testing.T) []corpusProgram {
	t.Helper()
	var progs []corpusProgram
	for _, pat := range []string{"testdata/*.xc", "testdata/vet_golden/*.cm"} {
		files, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		for _, file := range files {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			progs = append(progs, corpusProgram{name: filepath.ToSlash(file), src: string(src)})
		}
	}
	hosts, err := filepath.Glob("examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, host := range hosts {
		for i, src := range exampleSources(t, host) {
			name := filepath.ToSlash(filepath.Dir(host))
			if i > 0 {
				name = fmt.Sprintf("%s#%d", name, i)
			}
			progs = append(progs, corpusProgram{name: name, src: src})
		}
	}
	sort.Slice(progs, func(i, j int) bool { return progs[i].name < progs[j].name })
	return progs
}

func TestVetManifest(t *testing.T) {
	progs := corpus(t)
	if len(progs) < 10 {
		t.Fatalf("corpus has only %d programs; expected testdata + goldens + examples", len(progs))
	}
	sawExample := false
	for _, p := range progs {
		if strings.HasPrefix(p.name, "examples/") {
			sawExample = true
		}
	}
	if !sawExample {
		t.Fatal("no examples/ programs extracted — the manifest would silently stop covering them")
	}

	d := driver.New()
	var b strings.Builder
	b.WriteString("# Vet findings manifest. Regenerate: go test -run TestVetManifest -update-vet-manifest\n")
	for _, p := range progs {
		res := d.Vet(driver.VetRequest{Name: p.name, Source: p.src, Exts: parser.AllExtensions()})
		status := "ok"
		if !res.OK {
			status = "rejected"
		}
		fmt.Fprintf(&b, "== %s: %s, %d findings\n", p.name, status, len(res.Findings))
		for _, diag := range res.Diagnostics {
			fmt.Fprintf(&b, "%s\n", diag)
		}
		for _, f := range res.Findings {
			fmt.Fprintf(&b, "%s\n", f.String())
		}
	}
	got := b.String()

	if *updateManifest {
		if err := os.WriteFile(manifestPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatalf("missing manifest (run with -update-vet-manifest): %v", err)
	}
	if got != string(want) {
		t.Errorf("vet findings drifted from %s.\nIf the change is intended, regenerate with -update-vet-manifest.\n--- got ---\n%s--- want ---\n%s", manifestPath, got, want)
	}
}
