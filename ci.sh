#!/usr/bin/env bash
# ci.sh — the repo's check gate: formatting, vet, build, full tests,
# and a one-shot benchmark smoke pass (E1 plus the compile-service
# cold/warm pair). Run locally before pushing; the GitHub Actions
# workflow runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== bench smoke =="
go test -run='^$' -bench='BenchmarkE1_' -benchtime=1x .
go test -run='^$' -bench='BenchmarkCompileService' -benchtime=1x ./internal/driver

echo "OK"
