#!/usr/bin/env bash
# ci.sh — the repo's check gate: formatting, vet, build, full tests, a
# race-detector pass over the crash-proofing layers (pool, matrix
# runtime, interpreter, server), and a one-shot benchmark smoke pass
# (E1 plus the compile-service cold/warm pair). Run locally before
# pushing; the GitHub Actions workflow runs this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (crash-proofing + overload layers) =="
go test -race ./internal/par ./internal/matrix ./internal/interp ./internal/server ./internal/driver

echo "== chaos suite (flood / drain / disk-cache recovery) =="
go test -race -run 'TestChaos|TestCrash' ./internal/server

echo "== fuzz smoke (frontend never panics) =="
go test -run='^$' -fuzz='^FuzzLex$' -fuzztime=10s ./internal/parser
go test -run='^$' -fuzz='^FuzzParse$' -fuzztime=10s ./internal/parser

echo "== bench smoke =="
go test -run='^$' -bench='BenchmarkE1_' -benchtime=1x .
go test -run='^$' -bench='BenchmarkCompileService' -benchtime=1x ./internal/driver

echo "OK"
