#!/usr/bin/env bash
# ci.sh — the repo's check gate: formatting, go vet, staticcheck
# (required; CM_SKIP_STATICCHECK=1 opts out offline), build, full
# tests, a race-detector pass over the
# crash-proofing layers (pool, matrix runtime, interpreter, server), a
# race-enabled dual-engine differential pass (bytecode VM vs the
# tree-walking oracle), a race pass over the with-loop flat engine
# (vet plans + VM flat execution), the race-enabled fleet chaos suite (cmgate
# routing under shard kill/restart/hang), the race-enabled tenant
# isolation suite (token buckets, noisy-neighbor chaos, key rotation),
# a fuzz smoke over the frontend, the cmvet analyzer, the VM
# differential fuzzer, the consistent-hash ring and the tenant key
# file parser, the vet findings manifest,
# and a one-shot benchmark smoke pass (E1 plus the compile-service
# cold/warm pair). Run locally before pushing; the GitHub Actions
# workflow runs this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
elif [ "${CM_SKIP_STATICCHECK:-}" = "1" ]; then
    echo "staticcheck not installed; skipped via CM_SKIP_STATICCHECK=1"
else
    echo "staticcheck is required and not installed." >&2
    echo "install: go install honnef.co/go/tools/cmd/staticcheck@latest" >&2
    echo "or set CM_SKIP_STATICCHECK=1 for environments without network access" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (crash-proofing + overload layers) =="
go test -race ./internal/par ./internal/matrix ./internal/interp ./internal/server ./internal/driver

echo "== go test -race (kernel differential + integration suites) =="
go test -race -run 'Kernel|Conv2D|FoldExec|Recycle|FreeList|SetOnFree' ./internal/matrix ./internal/interp ./internal/rc

echo "== with-loop flat engine (vet plans + VM flat execution, race) =="
go test -race -run 'TestWithPlan|TestWithFlat|TestCompileWith' ./internal/vet ./internal/vm

echo "== chaos suite (flood / drain / disk-cache recovery) =="
go test -race -run 'TestChaos|TestCrash' ./internal/server

echo "== fleet chaos suite (kill / restart / hang / slow shards under flood) =="
go test -race ./internal/fleet

echo "== tenant isolation (registry + buckets + noisy-neighbor chaos) =="
go test -race ./internal/tenant
go test -race -run 'TestChaosNoisyNeighborIsolation|TestChaosTenantKeyRotationLive|TestTenant|TestGateHeaderTrust' ./internal/fleet ./internal/server

echo "== vm differential (bytecode engine vs tree-walking oracle) =="
go test -race -run 'TestVMDifferential|TestVMStep' -count=1 .

echo "== fuzz smoke (frontend + analyzer never panic) =="
go test -run='^$' -fuzz='^FuzzLex$' -fuzztime=10s ./internal/parser
go test -run='^$' -fuzz='^FuzzParse$' -fuzztime=10s ./internal/parser
go test -run='^$' -fuzz='^FuzzVet$' -fuzztime=10s ./internal/vet
go test -run='^$' -fuzz='^FuzzKernelDiff$' -fuzztime=10s ./internal/matrix
go test -run='^$' -fuzz='^FuzzVMDiff$' -fuzztime=10s .
go test -run='^$' -fuzz='^FuzzRing$' -fuzztime=10s ./internal/fleet
go test -run='^$' -fuzz='^FuzzTenantKeyParse$' -fuzztime=10s ./internal/tenant

echo "== vet manifest (examples + testdata findings pinned) =="
go test -run='^TestVetManifest$' .

echo "== bench smoke =="
go test -run='^$' -bench='BenchmarkE1_' -benchtime=1x .
go test -run='^$' -bench='BenchmarkCompileService' -benchtime=1x ./internal/driver
go test -run='^$' -bench='Kernel' -benchtime=1x .
go test -run='^$' -bench='VetFacts|FusedChain' -benchtime=1x .

echo "OK"
