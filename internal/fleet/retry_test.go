package fleet

import (
	"context"
	"testing"
	"time"
)

func TestBackoffWithinExponentialWindow(t *testing.T) {
	p := RetryPolicy{Max: 5, Base: 100 * time.Millisecond, Cap: 5 * time.Second}
	for attempt := 0; attempt < 5; attempt++ {
		window := p.Base << uint(attempt)
		for i := 0; i < 50; i++ {
			d := p.Backoff(attempt, 0)
			if d < 0 || d > window {
				t.Fatalf("attempt %d: backoff %v outside [0, %v]", attempt, d, window)
			}
		}
	}
}

func TestBackoffHonorsRetryAfterAsFloor(t *testing.T) {
	p := RetryPolicy{Max: 1, Base: time.Millisecond, Cap: 5 * time.Second}
	hint := 200 * time.Millisecond
	for i := 0; i < 50; i++ {
		d := p.Backoff(0, hint)
		if d < hint {
			t.Fatalf("backoff %v below the server's Retry-After %v", d, hint)
		}
		if d > hint+hint/4 {
			t.Fatalf("backoff %v above the +25%% jitter band over %v", d, hint)
		}
	}
}

func TestBackoffCapClampsEverything(t *testing.T) {
	p := RetryPolicy{Max: 1, Base: time.Second, Cap: 50 * time.Millisecond}
	for i := 0; i < 20; i++ {
		if d := p.Backoff(8, 10*time.Second); d > p.Cap {
			t.Fatalf("backoff %v above cap %v", d, p.Cap)
		}
	}
	// Shift overflow on huge attempt numbers must not go negative.
	if d := p.Backoff(400, 0); d < 0 || d > p.Cap {
		t.Fatalf("overflowed backoff: %v", d)
	}
}

func TestSleepCtxHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepCtx(ctx, time.Minute); err == nil {
		t.Fatal("SleepCtx returned nil for a dead context")
	}
	if err := SleepCtx(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("SleepCtx: %v", err)
	}
}
