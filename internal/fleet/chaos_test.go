// Fleet chaos harness: three REAL cmserved instances (full driver,
// admission control, disk cache) behind a Router, with faults injected
// through the TestHookShardFault seam — kill (every call errors),
// hang (calls stall past the probe deadline, then error), slow (calls
// delay, then proceed), and restart (a fresh server+driver over the
// same durable cache directory, i.e. a process restart).
//
// The headline invariants, asserted under flood:
//   - no lost runs: every request the gate accepts gets a real answer;
//   - no duplicate compiles: fleet-wide CompileExecutions stays at the
//     number of distinct programs, modulo declared hedge overlap, even
//     across a kill and restart — routing affinity, peer cache-fill
//     and successor replication close every recompile hole;
//   - convergence: after recovery every artifact is servable and the
//     restarted shard answers from its disk tier.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/server"
)

// chaos shard fault modes.
const (
	modeOK   = "ok"
	modeDown = "down"
	modeHang = "hang"
	modeSlow = "slow"
)

// chaosShard is one real cmserved instance with a swappable core: a
// "restart" builds a fresh server and driver over the same cache
// directory, exactly what a daemon restart does to its state.
type chaosShard struct {
	idx     int
	dir     string       // durable artifact cache, survives restarts
	mode    atomic.Value // modeOK/modeDown/modeHang/modeSlow
	handler atomic.Value // http.Handler of the current incarnation
	ts      *httptest.Server
	srvOpts []func(*server.Config) // per-incarnation config hooks (tenancy)

	mu      sync.Mutex
	drivers []*driver.Driver // every incarnation's driver, for metric sums
}

func (c *chaosShard) boot(t *testing.T) {
	t.Helper()
	d := driver.NewWith(driver.Config{CacheDir: c.dir})
	cfg := server.Config{
		Driver:            d,
		MaxConcurrentRuns: 8,
		RunQueueSize:      64,
		DefaultTimeout:    5 * time.Second,
		ShardID:           fmt.Sprintf("s%d", c.idx),
	}
	for _, opt := range c.srvOpts {
		opt(&cfg)
	}
	s := server.New(cfg)
	c.handler.Store(s.Handler())
	c.mu.Lock()
	c.drivers = append(c.drivers, d)
	c.mu.Unlock()
}

// compileExecutions sums real compile-pipeline runs across every
// incarnation this shard ever had.
func (c *chaosShard) compileExecutions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, d := range c.drivers {
		n += d.Metrics().CompileExecutions.Load()
	}
	return n
}

// chaosFleet is the whole test rig: shards, router, gate listener.
type chaosFleet struct {
	shards []*chaosShard
	rt     *Router
	gate   *httptest.Server
}

func newChaosFleet(t *testing.T, n int, cfg Config, srvOpts ...func(*server.Config)) *chaosFleet {
	t.Helper()
	// Registered FIRST so it runs LAST (cleanups are LIFO): after the
	// gate, router, and every shard have shut down, the goroutine count
	// must settle back near the baseline. A leaked prober, hedge
	// reaper, or replication goroutine fails the suite here rather
	// than accumulating silently across chaos runs.
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base+8 {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutines: %d at fleet start, %d after teardown", base, runtime.NumGoroutine())
	})
	f := &chaosFleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		c := &chaosShard{idx: i, dir: t.TempDir(), srvOpts: srvOpts}
		c.mode.Store(modeOK)
		c.boot(t)
		c.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			c.handler.Load().(http.Handler).ServeHTTP(w, r)
		}))
		t.Cleanup(c.ts.Close)
		f.shards = append(f.shards, c)
		urls[i] = c.ts.URL
	}
	TestHookShardFault = func(shard int, op string) error {
		switch f.shards[shard].mode.Load() {
		case modeDown:
			return errors.New("injected: connection refused")
		case modeHang:
			time.Sleep(60 * time.Millisecond)
			return errors.New("injected: i/o timeout")
		case modeSlow:
			time.Sleep(120 * time.Millisecond)
		}
		return nil
	}
	t.Cleanup(func() { TestHookShardFault = nil })

	cfg.Shards = urls
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	rt.Start()
	f.gate = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.gate.Close()
		rt.Close()
	})
	return f
}

func (f *chaosFleet) compileExecutions() int64 {
	var n int64
	for _, c := range f.shards {
		n += c.compileExecutions()
	}
	return n
}

// post sends one JSON request through the gate and returns status and
// decoded body.
func (f *chaosFleet) post(t *testing.T, path string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(f.gate.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decoding: %v", path, err)
	}
	return resp.StatusCode, out
}

func (f *chaosFleet) gateMetrics(t *testing.T) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(f.gate.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// chaosProgram returns the i-th distinct source; each compiles to a
// distinct artifact.
func chaosProgram(i int) string {
	return fmt.Sprintf("int main() {\n\tint x = %d;\n\treturn x;\n}\n", i)
}

func chaosBody(t *testing.T, fields map[string]any) string {
	t.Helper()
	b, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func chaosRouterConfig() Config {
	return Config{
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     20 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		Retry:            RetryPolicy{Max: 4, Base: 5 * time.Millisecond, Cap: 100 * time.Millisecond},
		HedgeAfterMin:    150 * time.Millisecond,
		HedgeAfterMax:    400 * time.Millisecond,
	}
}

// TestChaosKillRestartNoLostRunsNoDuplicateCompiles is the headline:
// a three-shard fleet under concurrent flood, one shard killed
// mid-flood and restarted with a fresh process over its durable cache.
// Every request must be answered, and the fleet as a whole must not
// recompile anything it already compiled (beyond declared hedges).
func TestChaosKillRestartNoLostRunsNoDuplicateCompiles(t *testing.T) {
	f := newChaosFleet(t, 3, chaosRouterConfig())
	const programs = 9

	// Phase A — warm: compile every distinct program through the gate.
	keys := make([]string, programs)
	for i := 0; i < programs; i++ {
		body := chaosBody(t, map[string]any{"source": chaosProgram(i)})
		code, res := f.post(t, "/v1/compile", body)
		if code != http.StatusOK {
			t.Fatalf("warm compile %d: %d %v", i, code, res)
		}
		key, ok := server.CompileKeyForBody([]byte(body))
		if !ok {
			t.Fatalf("no compile key for program %d", i)
		}
		keys[i] = key
	}
	// Cold compiles pay one-time grammar composition and can outlast
	// the hedge delay, so the warm phase itself may hedge — that
	// overlap is declared in the metrics and allowed for here.
	warmHedges := f.gateMetrics(t).HedgesFired
	warmCompiles := f.compileExecutions()
	if warmCompiles > programs+warmHedges {
		t.Fatalf("fleet executed %d compiles for %d distinct programs (+%d hedges)",
			warmCompiles, programs, warmHedges)
	}
	// Replication makes the kill survivable: wait until every artifact
	// also lives on its ring successor.
	waitFor(t, 5*time.Second, "successor replication", func() bool {
		return f.gateMetrics(t).PeerReplicas >= programs
	})
	hedgesBefore := f.gateMetrics(t).HedgesFired

	// Phase B — flood, kill, restart. Workers hammer compile and run
	// for the same programs while shard 0 dies and comes back.
	var lost atomic.Int64
	var firstLoss atomic.Value
	var wg sync.WaitGroup
	stopFlood := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopFlood:
					return
				default:
				}
				p := (w + i) % programs
				var path, body string
				if i%2 == 0 {
					path = "/v1/compile"
					body = chaosBody(t, map[string]any{"source": chaosProgram(p)})
				} else {
					path = "/v1/run"
					body = chaosBody(t, map[string]any{"source": chaosProgram(p), "threads": 1})
				}
				resp, err := http.Post(f.gate.URL+path, "application/json", strings.NewReader(body))
				if err != nil {
					lost.Add(1)
					firstLoss.CompareAndSwap(nil, fmt.Sprintf("worker %d: %v", w, err))
					continue
				}
				payload, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					lost.Add(1)
					firstLoss.CompareAndSwap(nil, fmt.Sprintf("worker %d: %s -> %d %s", w, path, resp.StatusCode, payload))
				}
			}
		}(w)
	}

	time.Sleep(150 * time.Millisecond)
	f.shards[0].mode.Store(modeDown) // kill
	time.Sleep(300 * time.Millisecond)
	f.shards[0].boot(t) // restart: fresh process, same disk
	f.shards[0].mode.Store(modeOK)
	time.Sleep(400 * time.Millisecond)
	close(stopFlood)
	wg.Wait()

	if lost.Load() != 0 {
		t.Fatalf("%d lost runs under kill/restart; first: %v", lost.Load(), firstLoss.Load())
	}
	hedges := f.gateMetrics(t).HedgesFired - hedgesBefore
	if got := f.compileExecutions(); got > warmCompiles+hedges {
		t.Fatalf("duplicate compiles: %d executions after flood, %d at warm (+%d flood hedges)",
			got, warmCompiles, hedges)
	}

	// Convergence: the breaker closes again, every artifact is
	// servable through the gate, and the restarted shard itself holds
	// its keys on disk.
	waitFor(t, 3*time.Second, "shard 0 breaker to close", func() bool {
		return f.rt.ShardBreaker(0) == BreakerClosed
	})
	for i, key := range keys {
		resp, err := http.Get(f.gate.URL + "/v1/artifact/" + key)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact %d unreachable after recovery: %d", i, resp.StatusCode)
		}
	}
	restarted := f.shards[0].drivers[len(f.shards[0].drivers)-1]
	before := restarted.Metrics().CompileExecutions.Load()
	for i := 0; i < programs; i++ {
		code, _ := f.post(t, "/v1/compile", chaosBody(t, map[string]any{"source": chaosProgram(i)}))
		if code != http.StatusOK {
			t.Fatalf("post-recovery compile %d: %d", i, code)
		}
	}
	if after := restarted.Metrics().CompileExecutions.Load(); after != before {
		t.Fatalf("restarted shard recompiled %d artifacts its disk tier already had", after-before)
	}
}

// TestChaosHungShardBreakerOpensAndRecovers: a hung shard (probes and
// requests stall past their deadlines) must trip its breaker within a
// few probe intervals, traffic must keep flowing via the ring, and
// when the shard unhangs the half-open trial must close the breaker
// with no operator involved.
func TestChaosHungShardBreakerOpensAndRecovers(t *testing.T) {
	f := newChaosFleet(t, 3, chaosRouterConfig())

	f.shards[1].mode.Store(modeHang)
	// threshold 2, probe interval 25ms, hang 60ms: the breaker must
	// open within a few probe cycles.
	waitFor(t, 2*time.Second, "breaker to open on the hung shard", func() bool {
		return f.rt.ShardBreaker(1) == BreakerOpen
	})
	if f.gateMetrics(t).BreakerOpens == 0 {
		t.Fatal("breaker_open_total still zero")
	}

	// The fleet still answers everything while shard 1 hangs.
	for i := 0; i < 12; i++ {
		code, res := f.post(t, "/v1/compile", chaosBody(t, map[string]any{"source": chaosProgram(100 + i)}))
		if code != http.StatusOK {
			t.Fatalf("compile %d during hang: %d %v", i, code, res)
		}
	}

	f.shards[1].mode.Store(modeOK)
	waitFor(t, 3*time.Second, "breaker to close after recovery", func() bool {
		return f.rt.ShardBreaker(1) == BreakerClosed
	})
	if f.gateMetrics(t).ShardHealthy != 3 {
		waitFor(t, 2*time.Second, "all shards healthy", func() bool {
			return f.gateMetrics(t).ShardHealthy == 3
		})
	}
}

// TestChaosSlowShardHedgeWins: a shard that responds — slowly — never
// trips the breaker, so hedging is what saves its keys' tail latency:
// the duplicate fired after the hedge delay is answered by the next
// ring shard first.
func TestChaosSlowShardHedgeWins(t *testing.T) {
	cfg := chaosRouterConfig()
	cfg.HedgeAfterMin = 30 * time.Millisecond
	cfg.HedgeAfterMax = 60 * time.Millisecond
	f := newChaosFleet(t, 3, cfg)

	body := chaosBody(t, map[string]any{"source": chaosProgram(7777)})
	primary := f.rt.Primary(routeKeyFor([]byte(body)))
	f.shards[primary].mode.Store(modeSlow) // +120ms per call, then proceeds

	resp, err := http.Post(f.gate.URL+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged compile: %d %s", resp.StatusCode, payload)
	}
	if served := resp.Header.Get("X-CM-Routed"); served == fmt.Sprint(primary) {
		t.Fatalf("slow primary %d served the request; hedge should have won", primary)
	}
	m := f.gateMetrics(t)
	if m.HedgesFired == 0 || m.HedgesWon == 0 {
		t.Fatalf("hedges fired=%d won=%d, want both > 0", m.HedgesFired, m.HedgesWon)
	}
	// The slow shard answered eventually (reaped off-path); its breaker
	// must still be closed — slowness is not death.
	waitFor(t, 2*time.Second, "slow shard breaker to stay closed", func() bool {
		return f.rt.ShardBreaker(primary) == BreakerClosed
	})
}

// TestChaosClientDisconnectDoesNotPinFleet: a client that gives up
// while its request is stuck behind a down fleet must not keep the
// gate retrying on its behalf.
func TestChaosClientDisconnectDoesNotPinFleet(t *testing.T) {
	cfg := chaosRouterConfig()
	cfg.Retry = RetryPolicy{Max: 50, Base: 50 * time.Millisecond, Cap: time.Second}
	f := newChaosFleet(t, 3, cfg)
	for _, c := range f.shards {
		c.mode.Store(modeDown)
	}

	client := &http.Client{Timeout: 150 * time.Millisecond}
	body := chaosBody(t, map[string]any{"source": chaosProgram(1)})
	_, err := client.Post(f.gate.URL+"/v1/compile", "application/json", strings.NewReader(body))
	if err == nil {
		t.Fatal("expected the client's own timeout")
	}
	waitFor(t, 2*time.Second, "gate to drop the abandoned forward", func() bool {
		m := f.gateMetrics(t)
		return m.ClientGone > 0 && m.Inflight == 0
	})
}
