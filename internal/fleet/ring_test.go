package fleet

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"s0", "s1", "s2"}, 0)
	b := NewRing([]string{"s0", "s1", "s2"}, 0)
	for _, k := range keys(200) {
		if a.Primary(k) != b.Primary(k) {
			t.Fatalf("Primary(%q) differs between identical rings", k)
		}
	}
}

func TestRingOrderCoversEveryShardOnce(t *testing.T) {
	r := NewRing([]string{"s0", "s1", "s2", "s3", "s4"}, 0)
	for _, k := range keys(100) {
		order := r.Order(k)
		if len(order) != 5 {
			t.Fatalf("Order(%q) = %v, want 5 shards", k, order)
		}
		seen := map[int]bool{}
		for _, i := range order {
			if i < 0 || i >= 5 || seen[i] {
				t.Fatalf("Order(%q) = %v: out of range or repeated", k, order)
			}
			seen[i] = true
		}
		if order[0] != r.Primary(k) {
			t.Fatalf("Order(%q)[0] = %d, Primary = %d", k, order[0], r.Primary(k))
		}
	}
}

func TestRingBalance(t *testing.T) {
	const shards, n = 4, 8000
	r := NewRing([]string{"a", "b", "c", "d"}, 0)
	counts := make([]int, shards)
	for _, k := range keys(n) {
		counts[r.Primary(k)]++
	}
	for i, c := range counts {
		// Perfect balance is n/shards = 2000; vnode hashing should keep
		// every shard within a loose 2x band of it.
		if c < n/shards/2 || c > n/shards*2 {
			t.Fatalf("shard %d owns %d of %d keys: %v", i, c, n, counts)
		}
	}
}

// TestRingRemovalRemapsOnlyLostKeys is the property consistent hashing
// exists for: deleting one shard must not move keys between surviving
// shards.
func TestRingRemovalRemapsOnlyLostKeys(t *testing.T) {
	names := []string{"s0", "s1", "s2", "s3"}
	full := NewRing(names, 0)
	without := NewRing(names[:3], 0) // drop s3
	moved, owned := 0, 0
	for _, k := range keys(4000) {
		was := full.Primary(k)
		now := without.Primary(k)
		if was == 3 {
			owned++
			continue // lost shard's keys may land anywhere
		}
		if was != now {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving shards after removal", moved)
	}
	if owned == 0 {
		t.Fatal("removed shard owned no keys; test is vacuous")
	}
}

// FuzzRing asserts the structural invariants hold for arbitrary keys
// and shard counts: a full, duplicate-free Order with the primary
// first, identical across independently built rings.
func FuzzRing(f *testing.F) {
	f.Add("matrix.xc", uint8(3))
	f.Add("", uint8(1))
	f.Add("a#b#c", uint8(7))
	f.Fuzz(func(t *testing.T, key string, n uint8) {
		shards := int(n%16) + 1
		names := make([]string, shards)
		for i := range names {
			names[i] = fmt.Sprintf("shard-%d", i)
		}
		r := NewRing(names, 32)
		order := r.Order(key)
		if len(order) != shards {
			t.Fatalf("Order covers %d of %d shards", len(order), shards)
		}
		seen := map[int]bool{}
		for _, i := range order {
			if i < 0 || i >= shards || seen[i] {
				t.Fatalf("Order(%q) = %v: invalid", key, order)
			}
			seen[i] = true
		}
		if order[0] != r.Primary(key) {
			t.Fatalf("Order(%q)[0] != Primary", key)
		}
		if NewRing(names, 32).Primary(key) != order[0] {
			t.Fatalf("Primary(%q) not deterministic", key)
		}
	})
}
