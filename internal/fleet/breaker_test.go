package fleet

import (
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockedBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock, *atomic.Int64) {
	opens := new(atomic.Int64)
	b := newBreaker(threshold, cooldown, opens)
	c := &fakeClock{t: time.Unix(1000, 0)}
	b.now = c.now
	return b, c, opens
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _, opens := newClockedBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() || b.State() != BreakerClosed {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("state=%v after threshold failures", b.State())
	}
	if opens.Load() != 1 {
		t.Fatalf("opens counter = %d", opens.Load())
	}
}

func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	b, clk, _ := newClockedBreaker(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker allowed traffic inside cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open trial after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request admitted while the trial is in flight")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("trial success did not close the breaker")
	}
}

func TestBreakerTrialFailureReopens(t *testing.T) {
	b, clk, opens := newClockedBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no trial admitted")
	}
	b.Failure() // trial failed
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v after failed trial, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted traffic without a new cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no second trial after the restarted cooldown")
	}
	if opens.Load() != 2 {
		t.Fatalf("opens counter = %d, want 2", opens.Load())
	}
}

func TestBreakerSuccessResetsFailureBudget(t *testing.T) {
	b, _, _ := newClockedBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success() // shard talked: budget resets
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("three consecutive failures did not open the breaker")
	}
}

func TestBreakerLateFailureDoesNotExtendCooldown(t *testing.T) {
	b, clk, _ := newClockedBreaker(1, time.Second)
	b.Failure()
	clk.advance(900 * time.Millisecond)
	b.Failure() // straggler from an in-flight request
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("late failure extended the cooldown")
	}
}
