// Router observability, in the repo's established style: sync/atomic
// counters snapshotted into a plain struct that marshals directly to
// the /metrics JSON. The gauge/counter set is the fleet contract the
// chaos harness asserts against: shard_healthy, hedges_fired,
// hedges_won, retries_total, breaker_open_total, peer_cache_fills.
package fleet

import (
	"sync/atomic"
	"time"
)

// Metrics aggregates the router's counters; all fields are safe for
// concurrent use.
type Metrics struct {
	ForwardedTotal  atomic.Int64 // requests relayed to a shard (first attempts)
	RetriesTotal    atomic.Int64 // overload re-attempts after backoff
	FailoversTotal  atomic.Int64 // attempts moved to the next ring shard after a transport fault
	HedgesFired     atomic.Int64 // duplicate requests launched after the hedge delay
	HedgesWon       atomic.Int64 // hedges whose response beat the primary's
	BreakerOpens    atomic.Int64 // closed/half-open → open transitions, all shards
	PeerCacheFills  atomic.Int64 // artifacts copied to a key's new owner before forwarding
	PeerReplicas    atomic.Int64 // artifacts replicated to a key's ring successor after compile
	NoShardShed     atomic.Int64 // requests answered 503: every shard refused or unreachable
	InflightGauge   atomic.Int64 // forwards currently in flight through the router
	ProbesTotal     atomic.Int64 // health probes sent
	ProbeFails      atomic.Int64 // health probes failed (timeout or transport error)
	ClientGoneTotal atomic.Int64 // forwards abandoned because the client disconnected
	RateLimited     atomic.Int64 // requests refused 429 by a tenant's own token bucket
	AuthRefused     atomic.Int64 // requests refused 401/403 at the front door
}

// GateTenantRow is one tenant's gate-side ledger on /metrics.
type GateTenantRow struct {
	Tenant      string `json:"tenant"`
	Forwarded   int64  `json:"forwarded"`
	RateLimited int64  `json:"rate_limited"`
}

// ShardStatus is one shard's row in the /metrics document.
type ShardStatus struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Breaker   string `json:"breaker"`
	Forwarded int64  `json:"forwarded"`
	Failures  int64  `json:"transport_failures"`
}

// MetricsSnapshot is the JSON served on cmgate's /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64       `json:"uptime_seconds"`
	Shards        []ShardStatus `json:"shards"`
	ShardHealthy  int           `json:"shard_healthy"`
	ShardTotal    int           `json:"shard_total"`

	ForwardedTotal int64   `json:"forwarded_total"`
	RetriesTotal   int64   `json:"retries_total"`
	FailoversTotal int64   `json:"failovers_total"`
	HedgesFired    int64   `json:"hedges_fired"`
	HedgesWon      int64   `json:"hedges_won"`
	BreakerOpens   int64   `json:"breaker_open_total"`
	PeerCacheFills int64   `json:"peer_cache_fills"`
	PeerReplicas   int64   `json:"peer_replications"`
	NoShardShed    int64   `json:"no_shard_shed"`
	Inflight       int64   `json:"inflight"`
	ProbesTotal    int64   `json:"probes_total"`
	ProbeFails     int64   `json:"probe_failures"`
	ClientGone     int64   `json:"client_gone_total"`
	HedgeDelayMS   float64 `json:"hedge_delay_ms"`

	// Tenancy: front-door refusals, the live key-file generation
	// (0 = no registry), and per-tenant ledgers.
	RateLimited      int64           `json:"rate_limited"`
	AuthRefused      int64           `json:"auth_refused"`
	TenantGeneration int64           `json:"tenant_generation,omitempty"`
	Tenants          []GateTenantRow `json:"tenants,omitempty"`
}

// snapshot captures the counters; the router fills in the per-shard
// rows and gauges it alone can see.
func (m *Metrics) snapshot(started time.Time) MetricsSnapshot {
	return MetricsSnapshot{
		UptimeSeconds:  time.Since(started).Seconds(),
		ForwardedTotal: m.ForwardedTotal.Load(),
		RetriesTotal:   m.RetriesTotal.Load(),
		FailoversTotal: m.FailoversTotal.Load(),
		HedgesFired:    m.HedgesFired.Load(),
		HedgesWon:      m.HedgesWon.Load(),
		BreakerOpens:   m.BreakerOpens.Load(),
		PeerCacheFills: m.PeerCacheFills.Load(),
		PeerReplicas:   m.PeerReplicas.Load(),
		NoShardShed:    m.NoShardShed.Load(),
		Inflight:       m.InflightGauge.Load(),
		ProbesTotal:    m.ProbesTotal.Load(),
		ProbeFails:     m.ProbeFails.Load(),
		ClientGone:     m.ClientGoneTotal.Load(),
		RateLimited:    m.RateLimited.Load(),
		AuthRefused:    m.AuthRefused.Load(),
	}
}
