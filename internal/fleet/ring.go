// Package fleet turns N independent cmserved daemons into one
// fault-tolerant compile service. The cmgate router (cmd/cmgate) is a
// thin HTTP front that consistent-hashes each request's content
// address onto a shard ring — identical programs land on the same
// shard, so the driver's singleflight and artifact caches become
// fleet-wide for free — and wraps every forward in the robustness
// toolkit: per-shard health probes feeding half-open circuit breakers,
// bounded retries with jittered exponential backoff that honor
// Retry-After, hedged requests after a p99-derived delay for tail
// latency, and peer cache-fill so a key rerouted by shard loss starts
// warm instead of recompiling.
//
// This file is the hash ring. Each shard owns `replicas` virtual
// points on a 64-bit circle; a key routes to the shard owning the
// first point clockwise of the key's hash, and its failover order is
// the sequence of *distinct* shards continuing clockwise. The classic
// consistent-hashing property is what makes failure cheap: adding or
// removing one shard only remaps the keys that shard owned — every
// other key keeps its shard, its cache, and its singleflight slot.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ringPoint is one virtual node: a position on the hash circle and the
// index of the shard that owns it.
type ringPoint struct {
	pos   uint64
	shard int
}

// Ring is an immutable consistent-hash ring over a fixed shard set.
// Build a new Ring to change membership; liveness is the breaker's
// job, not the ring's — a dead shard keeps its arcs so its keys come
// back to it (and its caches) on recovery.
type Ring struct {
	points []ringPoint // sorted by pos
	shards int
}

// DefaultReplicas is the virtual-node count per shard when the caller
// passes none: enough points that a 3-shard fleet balances within a
// few percent, cheap enough that ring construction is microseconds.
const DefaultReplicas = 128

// NewRing builds a ring over shards [0, n). Shard identity is the
// caller's name list (URLs for cmgate); hashing names rather than
// indices keeps placement stable when the list is reordered or
// extended.
func NewRing(names []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{shards: len(names)}
	r.points = make([]ringPoint, 0, len(names)*replicas)
	for i, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{pos: ringHash(fmt.Sprintf("%s#%d", name, v)), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		// Hash collisions between virtual nodes are vanishingly rare but
		// must still order deterministically.
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// ringHash maps a string to a point on the circle. SHA-256 truncated
// to 64 bits: overkill strength, but it is the hash the repo already
// leans on everywhere content is addressed, and uniformity is what
// balances the ring.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Shards reports the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// Primary returns the shard owning key: the owner of the first virtual
// point at or clockwise of the key's hash.
func (r *Ring) Primary(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	return r.points[r.search(ringHash(key))].shard
}

// Order returns every shard exactly once, primary first, then the
// distinct shards met continuing clockwise — the key's failover
// preference. The tail of the order is what "graceful degradation to
// any-healthy-shard" walks when the ring thins: a request never fails
// while any shard will take it.
func (r *Ring) Order(key string) []int {
	order := make([]int, 0, r.shards)
	if len(r.points) == 0 {
		return order
	}
	seen := make([]bool, r.shards)
	start := r.search(ringHash(key))
	for i := 0; i < len(r.points) && len(order) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			order = append(order, p.shard)
		}
	}
	return order
}

// search finds the index of the first point at or clockwise of pos,
// wrapping past the top of the circle.
func (r *Ring) search(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		return 0
	}
	return i
}
