// Router behavior against scripted fake shards: placement stability,
// failover, 429 backoff, hedging, and the 503 of last resort. The
// full-stack kill/restart exercise lives in chaos_test.go.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeShard is a scriptable stand-in for cmserved.
type fakeShard struct {
	ts       *httptest.Server
	requests atomic.Int64
	delay    atomic.Int64 // ns to sleep before answering
	handler  atomic.Value // func(w http.ResponseWriter, r *http.Request)
}

func newFakeFleet(t *testing.T, n int, cfg Config) (*Router, []*fakeShard) {
	t.Helper()
	shards := make([]*fakeShard, n)
	urls := make([]string, n)
	for i := range shards {
		fs := &fakeShard{}
		idx := i
		fs.handler.Store(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"shard": %d}`, idx)
		})
		fs.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fs.requests.Add(1)
			if d := fs.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			fs.handler.Load().(func(http.ResponseWriter, *http.Request))(w, r)
		}))
		t.Cleanup(fs.ts.Close)
		shards[i] = fs
		urls[i] = fs.ts.URL
	}
	cfg.Shards = urls
	// Replication would add background artifact traffic to these
	// scripted shards; the real-server chaos harness covers it.
	cfg.DisableReplication = true
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, shards
}

func compileBody(src string) string {
	b, _ := json.Marshal(map[string]string{"source": src})
	return string(b)
}

func gatePost(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func setFault(t *testing.T, hook func(shard int, op string) error) {
	t.Helper()
	TestHookShardFault = hook
	t.Cleanup(func() { TestHookShardFault = nil })
}

func TestRoutingIsStableByContent(t *testing.T) {
	rt, shards := newFakeFleet(t, 3, Config{HedgeDisabled: true})
	h := rt.Handler()
	body := compileBody("int main() { return 7; }")
	var servedBy int
	for i := 0; i < 8; i++ {
		w := gatePost(t, h, "/v1/compile", body)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, w.Code, w.Body)
		}
		var res struct {
			Shard int `json:"shard"`
		}
		json.Unmarshal(w.Body.Bytes(), &res)
		if i == 0 {
			servedBy = res.Shard
		} else if res.Shard != servedBy {
			t.Fatalf("identical program bounced from shard %d to %d", servedBy, res.Shard)
		}
	}
	total := int64(0)
	for _, fs := range shards {
		total += fs.requests.Load()
	}
	if total != 8 {
		t.Fatalf("fleet saw %d requests, want 8", total)
	}
}

func TestDistinctProgramsSpreadAcrossShards(t *testing.T) {
	rt, shards := newFakeFleet(t, 3, Config{HedgeDisabled: true})
	h := rt.Handler()
	for i := 0; i < 60; i++ {
		body := compileBody(fmt.Sprintf("int main() { return %d; }", i))
		if w := gatePost(t, h, "/v1/compile", body); w.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, w.Code)
		}
	}
	for i, fs := range shards {
		if fs.requests.Load() == 0 {
			t.Fatalf("shard %d saw no traffic across 60 distinct programs", i)
		}
	}
}

func TestFailoverOnTransportFault(t *testing.T) {
	rt, _ := newFakeFleet(t, 3, Config{HedgeDisabled: true})
	h := rt.Handler()
	body := compileBody("int main() { return 1; }")
	key := routeKeyFor([]byte(body))
	primary := rt.Primary(key)
	setFault(t, func(shard int, op string) error {
		if shard == primary {
			return errors.New("connection refused")
		}
		return nil
	})
	w := gatePost(t, h, "/v1/compile", body)
	if w.Code != http.StatusOK {
		t.Fatalf("failover request: %d %s", w.Code, w.Body)
	}
	var res struct {
		Shard int `json:"shard"`
	}
	json.Unmarshal(w.Body.Bytes(), &res)
	if res.Shard == primary {
		t.Fatalf("request served by the faulted primary %d", primary)
	}
	if rt.Metrics().FailoversTotal.Load() == 0 {
		t.Fatal("failovers_total not incremented")
	}
}

func TestRetryOn429SameShard(t *testing.T) {
	rt, shards := newFakeFleet(t, 3, Config{
		HedgeDisabled: true,
		Retry:         RetryPolicy{Max: 2, Base: time.Millisecond, Cap: 5 * time.Millisecond},
	})
	h := rt.Handler()
	body := compileBody("int main() { return 2; }")
	primary := rt.Primary(routeKeyFor([]byte(body)))
	var sheds atomic.Int64
	shards[primary].handler.Store(func(w http.ResponseWriter, r *http.Request) {
		if sheds.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error": "run queue full", "retry_after_ms": 2}`)
			return
		}
		fmt.Fprintf(w, `{"shard": %d}`, primary)
	})

	w := gatePost(t, h, "/v1/compile", body)
	if w.Code != http.StatusOK {
		t.Fatalf("after retry: %d %s", w.Code, w.Body)
	}
	var res struct {
		Shard int `json:"shard"`
	}
	json.Unmarshal(w.Body.Bytes(), &res)
	if res.Shard != primary {
		t.Fatalf("429 retry moved to shard %d; overload must not fail over (duplicate compiles)", res.Shard)
	}
	if got := rt.Metrics().RetriesTotal.Load(); got != 1 {
		t.Fatalf("retries_total = %d, want 1", got)
	}
}

func TestRetryBudgetExhaustedRelays429(t *testing.T) {
	rt, shards := newFakeFleet(t, 1, Config{
		HedgeDisabled: true,
		Retry:         RetryPolicy{Max: 1, Base: time.Millisecond, Cap: 2 * time.Millisecond},
	})
	shards[0].handler.Store(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error": "run queue full", "retry_after_ms": 1}`)
	})
	w := gatePost(t, rt.Handler(), "/v1/run", compileBody("int main() { return 0; }"))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429 relay", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("Retry-After header not relayed")
	}
	var e struct {
		Error string `json:"error"`
	}
	json.Unmarshal(w.Body.Bytes(), &e)
	if e.Error != "run queue full" {
		t.Fatalf("shard's structured error not relayed: %s", w.Body)
	}
}

func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	rt, shards := newFakeFleet(t, 3, Config{
		HedgeAfterMin: 10 * time.Millisecond,
		HedgeAfterMax: 20 * time.Millisecond,
	})
	h := rt.Handler()
	body := compileBody("int main() { return 3; }")
	primary := rt.Primary(routeKeyFor([]byte(body)))
	shards[primary].delay.Store(int64(400 * time.Millisecond))

	w := gatePost(t, h, "/v1/compile", body)
	if w.Code != http.StatusOK {
		t.Fatalf("hedged request: %d %s", w.Code, w.Body)
	}
	var res struct {
		Shard int `json:"shard"`
	}
	json.Unmarshal(w.Body.Bytes(), &res)
	if res.Shard == primary {
		t.Fatalf("response came from the slow primary %d; hedge did not win", primary)
	}
	m := rt.Metrics()
	if m.HedgesFired.Load() != 1 || m.HedgesWon.Load() != 1 {
		t.Fatalf("hedges fired=%d won=%d, want 1/1", m.HedgesFired.Load(), m.HedgesWon.Load())
	}
}

func TestAllShardsUnreachableSheds503(t *testing.T) {
	rt, _ := newFakeFleet(t, 2, Config{
		HedgeDisabled: true,
		Retry:         RetryPolicy{Max: 1, Base: time.Millisecond, Cap: 2 * time.Millisecond},
	})
	setFault(t, func(int, string) error { return errors.New("down") })
	w := gatePost(t, rt.Handler(), "/v1/compile", compileBody("int main() { return 0; }"))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", w.Code)
	}
	var e struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	json.Unmarshal(w.Body.Bytes(), &e)
	if e.Error == "" {
		t.Fatalf("no structured error: %s", w.Body)
	}
	if rt.Metrics().NoShardShed.Load() != 1 {
		t.Fatalf("no_shard_shed = %d", rt.Metrics().NoShardShed.Load())
	}
}

func TestGateMetricsEndpoint(t *testing.T) {
	rt, _ := newFakeFleet(t, 2, Config{HedgeDisabled: true})
	h := rt.Handler()
	gatePost(t, h, "/v1/compile", compileBody("int main() { return 9; }"))

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	if m.ShardTotal != 2 || m.ShardHealthy != 2 {
		t.Fatalf("shard counts: healthy=%d total=%d", m.ShardHealthy, m.ShardTotal)
	}
	if m.ForwardedTotal != 1 || len(m.Shards) != 2 {
		t.Fatalf("snapshot: %+v", m)
	}
	for _, s := range m.Shards {
		if s.Breaker != "closed" {
			t.Fatalf("shard breaker %q at rest", s.Breaker)
		}
	}
}

func TestGateHealthzDegraded(t *testing.T) {
	rt, _ := newFakeFleet(t, 2, Config{
		HedgeDisabled: true,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  5 * time.Millisecond,
	})
	setFault(t, func(shard int, op string) error {
		if shard == 0 {
			return errors.New("down")
		}
		return nil
	})
	rt.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, req)
		var h struct {
			Status  string `json:"status"`
			Healthy int    `json:"shard_healthy"`
		}
		json.Unmarshal(w.Body.Bytes(), &h)
		if h.Status == "degraded" && h.Healthy == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("gate never reported degraded with one shard down")
}

// TestProbeTimeoutValidation: a probe timeout at or above the probe
// interval would stack in-flight probes against a hung shard; New must
// refuse the config at startup rather than misbehave during an outage.
func TestProbeTimeoutValidation(t *testing.T) {
	bad := Config{
		Shards:        []string{"http://127.0.0.1:1"},
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond, // == interval: refused
	}
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "probe timeout") {
		t.Fatalf("New accepted probe timeout >= interval (err=%v)", err)
	}
	bad.ProbeTimeout = 80 * time.Millisecond // > interval: refused
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted probe timeout above the probe interval")
	}
	// Unset timeout defaults to interval/2 and passes validation.
	bad.ProbeTimeout = 0
	rt, err := New(bad)
	if err != nil {
		t.Fatalf("defaulted probe timeout refused: %v", err)
	}
	rt.Close()
}
