// Hedging support: the router keeps a sliding window of observed
// forward latencies and fires a second copy of a request to the next
// shard on the ring once the first has been outstanding longer than
// the window's p99. The first response wins; the loser is cancelled.
// This converts a stuck or GC-pausing shard's tail into one extra
// (declared, counted) request instead of a slow client — the classic
// "tied requests" tail-tolerance move, tuned so only the slowest ~1%
// of requests ever hedge.
package fleet

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is a fixed-size ring of recent request latencies with
// a quantile view. Writers are request goroutines; the occasional
// reader sorts a copy, so observation stays O(1) and lock-cheap.
type latencyWindow struct {
	mu      sync.Mutex
	samples []time.Duration // ring storage
	next    int
	full    bool
}

const latencyWindowSize = 256

func newLatencyWindow() *latencyWindow {
	return &latencyWindow{samples: make([]time.Duration, latencyWindowSize)}
}

// Observe records one successful forward's latency.
func (w *latencyWindow) Observe(d time.Duration) {
	w.mu.Lock()
	w.samples[w.next] = d
	w.next = (w.next + 1) % len(w.samples)
	if w.next == 0 {
		w.full = true
	}
	w.mu.Unlock()
}

// Quantile returns the q-quantile (0 < q <= 1) of the window, or 0
// when the window is empty (caller falls back to its floor).
func (w *latencyWindow) Quantile(q float64) time.Duration {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.samples)
	}
	if n == 0 {
		w.mu.Unlock()
		return 0
	}
	cp := make([]time.Duration, n)
	copy(cp, w.samples[:n])
	w.mu.Unlock()
	sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
	i := int(q*float64(n)) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return cp[i]
}

// hedgeDelay derives the router's current hedge trigger: the p99 of
// recent forwards, clamped to [min, max]. Before any traffic exists
// the window is empty and min applies — conservative, so a cold
// router does not hedge everything it sees.
func hedgeDelay(w *latencyWindow, min, max time.Duration) time.Duration {
	d := w.Quantile(0.99)
	if d < min {
		d = min
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}
