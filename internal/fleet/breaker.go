// Per-shard circuit breaker with the classic three states. Closed:
// traffic flows, consecutive transport failures are counted. Open: the
// shard is presumed down; no traffic is sent until a cooldown elapses.
// Half-open: one trial request (or health probe) is allowed through —
// success closes the breaker, failure reopens it and restarts the
// cooldown. The point is asymmetry: failure detection must be fast
// (a hung shard eats its failure budget within one probe interval),
// but recovery must be probing, not a thundering herd of retries into
// a shard that just came back.
package fleet

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the observable condition of one shard's breaker.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is one shard's circuit breaker. The zero value is not
// usable; call newBreaker.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int           // consecutive failures while closed
	threshold int           // failures that open the breaker
	cooldown  time.Duration // open → half-open delay
	openedAt  time.Time
	trial     bool // a half-open trial is in flight

	opens *atomic.Int64 // fleet-wide breaker_open_total, shared
	now   func() time.Time
}

func newBreaker(threshold int, cooldown time.Duration, opens *atomic.Int64) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if opens == nil {
		opens = new(atomic.Int64)
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, opens: opens, now: time.Now}
}

// Allow reports whether a request may be sent to this shard now.
// Closed always allows. Open allows nothing until the cooldown
// elapses, then transitions to half-open and admits exactly one trial;
// further calls are refused until that trial reports Success or
// Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Success reports a request (or probe) completed against the shard:
// any HTTP response counts — a 4xx/5xx status is the shard talking,
// which is all the breaker measures. Resets to closed from any state.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.trial = false
	b.mu.Unlock()
}

// Failure reports a transport-level failure (connect refused/reset,
// client timeout): while closed it burns one unit of the failure
// budget and opens at the threshold; while half-open the trial failed
// and the breaker reopens, restarting the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.open()
	case BreakerOpen:
		// Already open (e.g. a probe raced a late in-flight failure);
		// do not extend the cooldown — recovery latency matters.
	}
}

func (b *Breaker) open() {
	b.state = BreakerOpen
	b.failures = 0
	b.trial = false
	b.openedAt = b.now()
	b.opens.Add(1)
}

// State reports the current state (half-open is reported while a
// cooldown has expired but no trial has fired yet only after Allow
// observes it — the transition is lazy).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
