// Retry policy: bounded attempts with full-jitter exponential backoff
// that honors a server-provided Retry-After hint. Shared by the cmgate
// router (429s from a shard's admission rings) and cmrun's -retries
// client mode (exit-code-5 overload). Jitter is the load-shedding
// contract's other half: PR 3's servers estimate when capacity frees
// up, and a client that sleeps exactly that long — like every other
// shed client — re-arrives in the same stampede it was shed from.
package fleet

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds and paces re-attempts after overload responses.
// The zero value retries nothing.
type RetryPolicy struct {
	// Max is the number of re-attempts after the first try.
	Max int
	// Base seeds the exponential backoff (attempt n waits in
	// [0, Base*2^n), full jitter); default 100ms.
	Base time.Duration
	// Cap clamps any single wait; default 5s.
	Cap time.Duration
}

func (p RetryPolicy) base() time.Duration {
	if p.Base <= 0 {
		return 100 * time.Millisecond
	}
	return p.Base
}

func (p RetryPolicy) cap() time.Duration {
	if p.Cap <= 0 {
		return 5 * time.Second
	}
	return p.Cap
}

// jitterRand is process-shared; rand.Rand is not concurrency-safe and
// the global rand source locks internally anyway, but keeping our own
// keeps tests free to seed it.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func randFloat() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRand.Float64()
}

// Backoff computes the wait before re-attempt number attempt (0-based)
// given the server's Retry-After hint (0 = none). Full jitter over the
// exponential window, floored at the hint — the server knows its queue
// better than the client does — and clamped at Cap with a ±25% spread
// so even hint-floored clients do not re-arrive in phase.
func (p RetryPolicy) Backoff(attempt int, retryAfter time.Duration) time.Duration {
	window := p.base() << uint(attempt)
	if window > p.cap() || window <= 0 { // <<-overflow guard
		window = p.cap()
	}
	d := time.Duration(randFloat() * float64(window))
	if retryAfter > 0 {
		// Honor the hint as a floor, jittered upward by up to 25% to
		// de-synchronize the shed cohort.
		hinted := retryAfter + time.Duration(randFloat()*0.25*float64(retryAfter))
		if hinted > d {
			d = hinted
		}
	}
	if d > p.cap() {
		d = p.cap()
	}
	return d
}

// SleepCtx waits d or until ctx dies, whichever is first; the ctx
// error is returned so callers stop retrying for clients that are
// gone (a disconnected client must not keep a retry loop warm).
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
