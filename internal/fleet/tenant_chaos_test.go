// Noisy-neighbor chaos: one tenant floods the gate at well over 10×
// its configured rate limit while a well-behaved tenant keeps its
// steady cadence. The isolation contract, asserted under race:
//
//   - the flood is stopped at the front door: the noisy tenant
//     receives structured 429s naming itself, with a non-zero
//     per-tenant retry_after_ms, before any shard sees the excess;
//   - the quiet tenant suffers ZERO quota-induced sheds, gate or
//     shard side, and its tail latency stays within 2× its solo
//     baseline (plus a small absolute floor for CI timer noise);
//   - breakers are a transport-health mechanism and tenant 429s are
//     not transport failures: no breaker opens during the flood.
package fleet

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/tenant"
)

const chaosKeys = `{
  "tenants": [
    {"name": "noisy", "keys": ["k-noisy"], "rate_per_sec": 100, "burst": 10,
     "max_concurrent_runs": 2, "queue_share": 4},
    {"name": "quiet", "keys": ["k-quiet"]}
  ]
}`

// tenantPost sends one keyed run request through the gate.
func (f *chaosFleet) tenantPost(t *testing.T, key, body string) (int, map[string]any, time.Duration) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, f.gate.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+key)
	t0 := time.Now()
	resp, err := http.DefaultClient.Do(req)
	el := time.Since(t0)
	if err != nil {
		t.Fatalf("tenant POST: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("tenant POST: decoding: %v", err)
	}
	return resp.StatusCode, out, el
}

// quietCadence sends n sequential quiet-tenant runs and returns the
// observed latencies.
func (f *chaosFleet) quietCadence(t *testing.T, n int, body string) []time.Duration {
	t.Helper()
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		code, res, el := f.tenantPost(t, "k-quiet", body)
		if code != http.StatusOK {
			t.Fatalf("quiet run %d: %d %v — the well-behaved tenant must never be refused", i, code, res)
		}
		lats = append(lats, el)
		time.Sleep(10 * time.Millisecond)
	}
	return lats
}

func p99(lats []time.Duration) time.Duration {
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*99/100]
}

func TestChaosNoisyNeighborIsolation(t *testing.T) {
	reg, err := tenant.NewRegistry([]byte(chaosKeys))
	if err != nil {
		t.Fatal(err)
	}
	shardReg, err := tenant.NewRegistry([]byte(chaosKeys))
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosRouterConfig()
	// The flood saturates CPU under the race detector; the aggressive
	// 20ms probe deadline the fault-injection tests want would read
	// scheduler stalls as shard death. Tenancy, not probe sensitivity,
	// is under test here — so probe on a human timescale.
	cfg.ProbeInterval = 100 * time.Millisecond
	cfg.ProbeTimeout = 80 * time.Millisecond
	cfg.Tenants = reg
	f := newChaosFleet(t, 3, cfg, func(sc *server.Config) {
		// Shards trust the gate's identity stamp and partition their
		// admission rings by it — the second enforcement layer behind
		// the gate's token buckets.
		sc.Tenants = shardReg
		sc.TrustGateHeader = true
	})
	body := chaosBody(t, map[string]any{"source": "int main() {\n\treturn 0;\n}\n"})

	// Warm the fleet: the first request pays one-time grammar
	// composition; measuring it into the solo baseline would inflate
	// the 2× isolation bound into meaninglessness.
	if code, res, _ := f.tenantPost(t, "k-quiet", body); code != http.StatusOK {
		t.Fatalf("warm-up run: %d %v", code, res)
	}

	// Phase 1 — solo baseline: the quiet tenant alone on the fleet.
	solo := p99(f.quietCadence(t, 40, body))

	// Phase 2 — flood: four noisy workers, each pacing ~500 req/s, for
	// ~2000/s against a 100/s limit — 20× over — so the overwhelming
	// majority must come back as structured per-tenant 429s.
	var (
		wg           sync.WaitGroup
		noisyOK      atomic.Int64
		noisySheds   atomic.Int64
		badShedBody  atomic.Int64
		floodingDone = time.Now().Add(1500 * time.Millisecond)
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(floodingDone) {
				code, res, _ := f.tenantPost(t, "k-noisy", body)
				switch code {
				case http.StatusOK:
					noisyOK.Add(1)
				case http.StatusTooManyRequests:
					noisySheds.Add(1)
					retry, _ := res["retry_after_ms"].(float64)
					if res["tenant"] != "noisy" || retry <= 0 {
						badShedBody.Add(1)
					}
				default:
					t.Errorf("noisy request: unexpected status %d %v", code, res)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	// The quiet tenant keeps its cadence through the flood.
	flooded := p99(f.quietCadence(t, 40, body))
	wg.Wait()

	if noisySheds.Load() == 0 {
		t.Fatal("a 10×-rate flood produced zero 429s — the rate limit did not bite")
	}
	if badShedBody.Load() > 0 {
		t.Fatalf("%d noisy 429s lacked tenant=%q or a positive retry_after_ms", badShedBody.Load(), "noisy")
	}
	if noisyOK.Load() == 0 {
		t.Fatal("the noisy tenant was starved outright — rate limiting must throttle, not blackhole")
	}

	// Tail-latency isolation: the quiet tenant's p99 under flood stays
	// within 2× its solo baseline plus a small absolute floor (CI
	// schedulers make sub-millisecond baselines noisy).
	if limit := 2*solo + 150*time.Millisecond; flooded > limit {
		t.Fatalf("quiet p99 under flood = %s, solo = %s — noisy neighbor leaked through (limit %s)",
			flooded, solo, limit)
	}
	t.Logf("quiet p99: solo %s, under flood %s; noisy: %d ok, %d shed",
		solo, flooded, noisyOK.Load(), noisySheds.Load())

	// The quiet tenant must show zero quota sheds everywhere: on the
	// gate's ledger and on every shard's admission rings.
	gm := f.gateMetrics(t)
	for _, row := range gm.Tenants {
		if row.Tenant == "quiet" && row.RateLimited != 0 {
			t.Fatalf("gate rate-limited the quiet tenant %d times", row.RateLimited)
		}
		if row.Tenant == "noisy" && row.RateLimited == 0 {
			t.Fatal("gate ledger shows no noisy rate-limiting despite 429s")
		}
	}
	for _, c := range f.shards {
		var m struct {
			Tenants []server.TenantAdmissionRow `json:"tenants"`
		}
		resp, err := http.Get(c.ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range m.Tenants {
			if row.Tenant == "quiet" && (row.QuotaSheds != 0 || row.Sheds != 0) {
				t.Fatalf("shard %d shed the quiet tenant: %+v", c.idx, row)
			}
		}
	}

	// Tenant 429s are not transport failures: no breaker may have
	// opened, and every shard must still be closed and healthy.
	if gm.BreakerOpens != 0 {
		t.Fatalf("%d breaker opens during a pure-overload flood", gm.BreakerOpens)
	}
	for i := range f.shards {
		if st := f.rt.ShardBreaker(i); st != BreakerClosed {
			t.Fatalf("shard %d breaker %v after flood, want closed", i, st)
		}
	}
}

// TestChaosTenantKeyRotationLive: a SIGHUP-style registry reload swaps
// a tenant's key on the running gate; requests on the old key start
// failing 401, the new key works immediately, and the generation
// counter on /metrics records the reload.
func TestChaosTenantKeyRotationLive(t *testing.T) {
	keyPath := filepath.Join(t.TempDir(), "keys.json")
	if err := os.WriteFile(keyPath, []byte(chaosKeys), 0o600); err != nil {
		t.Fatal(err)
	}
	reg, err := tenant.LoadFile(keyPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosRouterConfig()
	cfg.Tenants = reg
	f := newChaosFleet(t, 2, cfg)
	body := chaosBody(t, map[string]any{"source": "int main() {\n\treturn 7;\n}\n"})

	if code, res, _ := f.tenantPost(t, "k-quiet", body); code != http.StatusOK {
		t.Fatalf("pre-rotation run: %d %v", code, res)
	}
	rotated := strings.ReplaceAll(chaosKeys, "k-quiet", "k-quiet-2")
	if err := os.WriteFile(keyPath, []byte(rotated), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil { // what the daemons do on SIGHUP
		t.Fatal(err)
	}
	if code, _, _ := f.tenantPost(t, "k-quiet", body); code != http.StatusUnauthorized {
		t.Fatalf("rotated-out key: %d, want 401", code)
	}
	if code, res, _ := f.tenantPost(t, "k-quiet-2", body); code != http.StatusOK {
		t.Fatalf("rotated-in key: %d %v", code, res)
	}
	if gen := f.gateMetrics(t).TenantGeneration; gen != 2 {
		t.Fatalf("tenant generation = %d after one reload, want 2", gen)
	}
}
