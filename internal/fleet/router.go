// The cmgate router: one HTTP front over N cmserved shards. Every
// request is placed on the consistent-hash ring by its content
// address, then forwarded under the full robustness toolkit —
// breaker-gated shard selection, transport-failure failover along the
// ring, bounded jittered retries honoring Retry-After, p99-delay
// hedging, and peer cache-fill/replication of compile artifacts.
//
// Failure semantics, in one paragraph: a request is only ever answered
// with (a) a shard's own response, relayed verbatim; (b) a structured
// 429 relay after the retry budget is spent against an overloaded
// fleet; (c) a 503 when every shard is unreachable even after retries,
// or when the client itself disappeared. The router never invents a
// success and never drops an accepted request on the floor — "no lost
// runs" is the chaos suite's core assertion.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/driver"
	"repro/internal/server"
	"repro/internal/tenant"
)

// TestHookShardFault, when non-nil, is consulted before every HTTP
// call the router makes to shard i (op is "forward", "probe",
// "artifact"); a non-nil error is treated exactly like a transport
// failure (connection refused/reset) without touching the network.
// The chaos harness uses it to kill, hang, and flap shards
// deterministically; nil in production.
var TestHookShardFault func(shard int, op string) error

// errShardFault wraps a TestHookShardFault injection so it flows
// through the same paths a real transport error does.
type errShardFault struct{ err error }

func (e errShardFault) Error() string { return "injected shard fault: " + e.err.Error() }

// Config parameterizes a Router. Zero values select the defaults.
type Config struct {
	// Shards lists the cmserved base URLs (e.g. "http://10.0.0.1:8347").
	// Required, at least one.
	Shards []string
	// Replicas is the virtual-node count per shard on the hash ring
	// (default DefaultReplicas).
	Replicas int

	// ProbeInterval paces the per-shard health probes (default 1s);
	// ProbeTimeout bounds each probe (default ProbeInterval/2).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// BreakerThreshold is the consecutive transport failures that open
	// a shard's breaker (default 3); BreakerCooldown how long it stays
	// open before a half-open trial (default 2×ProbeInterval).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Retry bounds and paces re-attempts after overload (429) and
	// fleet-unreachable outcomes.
	Retry RetryPolicy

	// HedgeAfterMin/Max clamp the p99-derived hedge delay (defaults
	// 20ms / 2s). HedgeDisabled turns tail hedging off entirely.
	HedgeAfterMin time.Duration
	HedgeAfterMax time.Duration
	HedgeDisabled bool

	// ReplicateArtifacts copies each freshly compiled artifact to the
	// key's ring successor in the background, so losing one shard
	// never loses the only copy (default true; set DisableReplication
	// to turn off).
	DisableReplication bool

	// MaxBodyBytes bounds request bodies (default 1 MiB, matching
	// cmserved's MaxSourceBytes).
	MaxBodyBytes int64

	// Tenants is the API-key registry. When set, the gate authenticates
	// every routed request, charges the tenant's token bucket before
	// any shard sees the request, and stamps the authenticated identity
	// onto the forward as X-CM-Tenant (shards run with -trust-gate).
	// Nil routes everything as before — anonymous, unmetered.
	Tenants *tenant.Registry

	// Transport overrides the forwarding transport (tests).
	Transport http.RoundTripper
}

// shardState is the router's per-shard bookkeeping.
type shardState struct {
	url       string
	breaker   *Breaker
	healthy   atomic.Bool
	forwarded atomic.Int64
	failures  atomic.Int64
}

// Router is the fleet front. Build with New, start probes with Start,
// serve Handler, stop with Close.
type Router struct {
	cfg     Config
	ring    *Ring
	shards  []*shardState
	metrics Metrics
	client  *http.Client
	lat     *latencyWindow
	started time.Time

	rr   atomic.Uint64 // round-robin cursor for keyless requests
	stop chan struct{}
	wg   sync.WaitGroup

	replMu   sync.Mutex
	replSeen map[string]bool // artifact keys already replicated

	tenMu   sync.Mutex
	tenants map[string]*tenantCounts // per-tenant gate accounting
}

// tenantCounts is one tenant's gate-side ledger.
type tenantCounts struct {
	forwarded   atomic.Int64
	rateLimited atomic.Int64
}

// tenantCounts returns (creating if needed) a tenant's ledger; the map
// is bounded by the registry's tenant list.
func (rt *Router) tenantCounts(name string) *tenantCounts {
	rt.tenMu.Lock()
	defer rt.tenMu.Unlock()
	c, ok := rt.tenants[name]
	if !ok {
		c = &tenantCounts{}
		rt.tenants[name] = c
	}
	return c
}

// New builds a router over cfg.Shards; it does not probe until Start.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval / 2
	}
	if cfg.ProbeTimeout >= cfg.ProbeInterval {
		// A probe still in flight when the next fires would stack
		// goroutines against a hung shard; refuse the config instead of
		// silently misbehaving under exactly the outage probes exist for.
		return nil, fmt.Errorf("fleet: probe timeout %s must be shorter than probe interval %s",
			cfg.ProbeTimeout, cfg.ProbeInterval)
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * cfg.ProbeInterval
	}
	if cfg.HedgeAfterMin <= 0 {
		cfg.HedgeAfterMin = 20 * time.Millisecond
	}
	if cfg.HedgeAfterMax <= 0 {
		cfg.HedgeAfterMax = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.Shards, cfg.Replicas),
		client:   &http.Client{Transport: cfg.Transport},
		lat:      newLatencyWindow(),
		started:  time.Now(),
		stop:     make(chan struct{}),
		replSeen: map[string]bool{},
		tenants:  map[string]*tenantCounts{},
	}
	for _, u := range cfg.Shards {
		s := &shardState{
			url:     u,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, &rt.metrics.BreakerOpens),
		}
		s.healthy.Store(true) // optimistic until the first probe says otherwise
		rt.shards = append(rt.shards, s)
	}
	return rt, nil
}

// Start launches the per-shard health probers.
func (rt *Router) Start() {
	for i := range rt.shards {
		rt.wg.Add(1)
		go rt.probeLoop(i)
	}
}

// Close stops probers and waits for background work (probe loops,
// hedge reapers, replications) to finish.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	rt.wg.Wait()
	rt.client.CloseIdleConnections()
}

// probeLoop probes one shard's /healthz every ProbeInterval, feeding
// the breaker in both directions: failures open it within
// threshold×interval, and a success closes it again — recovery needs
// no traffic and no operator.
func (rt *Router) probeLoop(i int) {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		rt.probe(i)
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
	}
}

func (rt *Router) probe(i int) {
	rt.metrics.ProbesTotal.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	resp, err := rt.doShard(ctx, i, http.MethodGet, "/healthz", nil, "", nil, "probe")
	if err != nil {
		rt.metrics.ProbeFails.Add(1)
		rt.shards[i].healthy.Store(false)
		rt.shards[i].breaker.Failure()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// Any answer is liveness — /healthz stays 200 even degraded, and a
	// talking shard is a routable shard.
	rt.shards[i].healthy.Store(true)
	rt.shards[i].breaker.Success()
}

// doShard issues one HTTP call to shard i. Body and hdr may be nil;
// hdr carries gate-asserted headers (the X-CM-Tenant identity stamp)
// onto the outbound request; op labels the call for the
// fault-injection seam.
func (rt *Router) doShard(ctx context.Context, i int, method, uri string, body []byte, contentType string, hdr http.Header, op string) (*http.Response, error) {
	if hook := TestHookShardFault; hook != nil {
		if err := hook(i, op); err != nil {
			return nil, errShardFault{err}
		}
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rt.shards[i].url+uri, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	return rt.client.Do(req)
}

// Handler returns the gate's route mux.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", rt.handleRouted("compile"))
	mux.HandleFunc("/v1/run", rt.handleRouted("run"))
	mux.HandleFunc("/v1/vet", rt.handleRouted("vet"))
	mux.HandleFunc("/v1/analyses", rt.handleAnalyses)
	mux.HandleFunc("/v1/artifact/", rt.handleArtifact)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

// gateError is the router's own structured error body, shaped like the
// shards' so clients parse one format.
type gateError struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	Tenant       string `json:"tenant,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// routeHead is the minimal request prefix shared by compile, run and
// vet bodies — all the router needs to place a request on the ring.
type routeHead struct {
	Name       string `json:"name"`
	Source     string `json:"source"`
	Extensions string `json:"extensions"`
}

// routeKeyFor derives the ring placement key for a request body, or ""
// when the body does not parse (the shard will reject it with a proper
// 400 — the router routes garbage anywhere, it does not judge it).
func routeKeyFor(body []byte) string {
	var head routeHead
	if err := json.Unmarshal(body, &head); err != nil || head.Source == "" {
		return ""
	}
	name := head.Name
	if name == "" {
		name = "request.xc"
	}
	exts, err := driver.ParseRouteExtensions(head.Extensions)
	if err != nil {
		return ""
	}
	return driver.RouteKey(name, head.Source, exts)
}

// handleRouted forwards one content-addressed verb (compile/run/vet):
// authenticate and rate-limit at the front door, then place the
// request on the ring. A tenant refused here never touches a shard —
// the noisy neighbor is stopped before it can queue behind anyone.
func (rt *Router) handleRouted(verb string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, gateError{Error: "method not allowed"})
			return
		}
		// Inbound identity stamps are forgeries by definition — only
		// this gate may assert X-CM-Tenant to the shards behind it.
		r.Header.Del(tenant.HeaderTenant)
		tn, _, err := rt.cfg.Tenants.Resolve(r, false)
		if err != nil {
			rt.metrics.AuthRefused.Add(1)
			status := http.StatusUnauthorized
			var ae *tenant.AuthError
			if errors.As(err, &ae) {
				status = ae.Status
			}
			writeJSON(w, status, gateError{Error: err.Error()})
			return
		}
		var hdr http.Header
		if tn != nil {
			if allow, retry := tn.Take(); !allow {
				// A per-tenant refusal: structured 429 with the tenant's
				// own backoff hint. No shard saw this request, no breaker
				// or fleet metric moves — this is the tenant's problem,
				// not the fleet's.
				rt.metrics.RateLimited.Add(1)
				rt.tenantCounts(tn.Name()).rateLimited.Add(1)
				w.Header().Set("Retry-After", fmt.Sprint(int64((retry+time.Second-1)/time.Second)))
				writeJSON(w, http.StatusTooManyRequests, gateError{
					Error:        fmt.Sprintf("tenant %q over rate limit", tn.Name()),
					Tenant:       tn.Name(),
					RetryAfterMS: int64(retry / time.Millisecond),
				})
				return
			}
			rt.tenantCounts(tn.Name()).forwarded.Add(1)
			hdr = http.Header{}
			hdr.Set(tenant.HeaderTenant, tn.Name())
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, gateError{Error: "request body: " + err.Error()})
			return
		}
		key := routeKeyFor(body)
		var artifactKey string
		if verb == "compile" {
			artifactKey, _ = server.CompileKeyForBody(body)
		}
		rt.forward(w, r, forwardSpec{
			verb: verb, uri: r.URL.RequestURI(), method: http.MethodPost,
			body: body, contentType: "application/json", hdr: hdr,
			routeKey: key, artifactKey: artifactKey,
		})
	}
}

// handleAnalyses forwards the memoized §VI report from any shard.
func (rt *Router) handleAnalyses(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, forwardSpec{verb: "analyses", uri: r.URL.RequestURI(), method: http.MethodGet})
}

// handleArtifact serves an artifact from whichever shard has it,
// walking the key's ring order (owner first).
func (rt *Router) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, gateError{Error: "method not allowed"})
		return
	}
	key := r.URL.Path[len("/v1/artifact/"):]
	for _, i := range rt.orderFor(key) {
		resp, err := rt.doShard(r.Context(), i, http.MethodGet, r.URL.RequestURI(), nil, "", nil, "artifact")
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			rt.relay(w, resp, i)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	writeJSON(w, http.StatusNotFound, gateError{Error: "no shard has the artifact"})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := rt.healthyCount()
	status, code := "ok", http.StatusOK
	switch {
	case healthy == 0:
		status, code = "down", http.StatusServiceUnavailable
	case healthy < len(rt.shards):
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status": status, "shard_healthy": healthy, "shard_total": len(rt.shards),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s := rt.metrics.snapshot(rt.started)
	for _, sh := range rt.shards {
		s.Shards = append(s.Shards, ShardStatus{
			URL: sh.url, Healthy: sh.healthy.Load(), Breaker: sh.breaker.State().String(),
			Forwarded: sh.forwarded.Load(), Failures: sh.failures.Load(),
		})
	}
	s.ShardHealthy = rt.healthyCount()
	s.ShardTotal = len(rt.shards)
	s.HedgeDelayMS = float64(hedgeDelay(rt.lat, rt.cfg.HedgeAfterMin, rt.cfg.HedgeAfterMax)) / float64(time.Millisecond)
	s.TenantGeneration = rt.cfg.Tenants.Generation()
	rt.tenMu.Lock()
	for name, c := range rt.tenants {
		s.Tenants = append(s.Tenants, GateTenantRow{
			Tenant: name, Forwarded: c.forwarded.Load(), RateLimited: c.rateLimited.Load(),
		})
	}
	rt.tenMu.Unlock()
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Tenant < s.Tenants[j].Tenant })
	writeJSON(w, http.StatusOK, s)
}

func (rt *Router) healthyCount() int {
	n := 0
	for _, s := range rt.shards {
		if s.healthy.Load() {
			n++
		}
	}
	return n
}

// orderFor is the shard preference for a key: ring order when the key
// is known, round-robin over all shards otherwise.
func (rt *Router) orderFor(key string) []int {
	if key != "" {
		return rt.ring.Order(key)
	}
	n := len(rt.shards)
	start := int(rt.rr.Add(1)) % n
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		order = append(order, (start+i)%n)
	}
	return order
}

// forwardSpec describes one request the router must deliver.
type forwardSpec struct {
	verb        string
	method      string
	uri         string
	body        []byte
	contentType string
	hdr         http.Header // gate-asserted headers (tenant stamp)
	routeKey    string      // ring placement ("" = round-robin)
	artifactKey string      // compile artifact address (peer fill/replication)
}

// shedInfo captures a 429 for backoff pacing and, if the budget runs
// out, verbatim relay.
type shedInfo struct {
	header     http.Header
	body       []byte
	shard      int
	retryAfter time.Duration
}

// forward delivers spec to the fleet: walk the ring with breaker
// gating and failover, hedge the tail, back off on overload, and
// relay exactly one response to the client.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, spec forwardSpec) {
	ctx := r.Context()
	rt.metrics.ForwardedTotal.Add(1)
	rt.metrics.InflightGauge.Add(1)
	defer rt.metrics.InflightGauge.Add(-1)
	order := rt.orderFor(spec.routeKey)

	for attempt := 0; ; attempt++ {
		resp, cancel, shard, shed := rt.tryOnce(ctx, spec, order)
		if resp != nil {
			rt.relay(w, resp, shard)
			cancel()
			rt.maybeReplicate(spec, shard, order)
			return
		}
		if ctx.Err() != nil {
			// The client disappeared; nothing useful can be written and
			// retrying would serve nobody.
			rt.metrics.ClientGoneTotal.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, gateError{Error: "client went away"})
			return
		}
		if attempt >= rt.cfg.Retry.Max {
			if shed != nil {
				// Out of budget against a live but overloaded fleet: relay
				// the shard's own structured 429 so the client sees the
				// authoritative Retry-After.
				for k, vs := range shed.header {
					for _, v := range vs {
						w.Header().Add(k, v)
					}
				}
				w.WriteHeader(http.StatusTooManyRequests)
				w.Write(shed.body)
				return
			}
			rt.metrics.NoShardShed.Add(1)
			writeJSON(w, http.StatusServiceUnavailable,
				gateError{Error: "no shard reachable", RetryAfterMS: int64(rt.cfg.Retry.Backoff(0, 0) / time.Millisecond)})
			return
		}
		var hint time.Duration
		if shed != nil {
			hint = shed.retryAfter
		}
		rt.metrics.RetriesTotal.Add(1)
		if SleepCtx(ctx, rt.cfg.Retry.Backoff(attempt, hint)) != nil {
			rt.metrics.ClientGoneTotal.Add(1)
			writeJSON(w, http.StatusServiceUnavailable, gateError{Error: "client went away"})
			return
		}
	}
}

// tryOnce walks the shard order once. It returns either a relayable
// response (with its cancel), a shedInfo for a 429, or neither when
// every shard was unreachable. Breaker accounting lives entirely in
// doHedged/feed — tryOnce only decides where to go next.
func (rt *Router) tryOnce(ctx context.Context, spec forwardSpec, order []int) (resp *http.Response, cancel func(), shard int, shed *shedInfo) {
	for pos, i := range order {
		if ctx.Err() != nil {
			return nil, nil, 0, nil
		}
		if !rt.shards[i].breaker.Allow() {
			// Breaker refused; if every shard refuses (fleet-wide outage
			// mid-cooldown) the retry loop backs off and re-walks, by
			// which time a cooldown has usually elapsed and a half-open
			// trial is permitted.
			continue
		}
		if pos > 0 {
			rt.metrics.FailoversTotal.Add(1)
			// The key's primary was demoted: give its new home the
			// artifact before it recompiles.
			rt.peerFill(ctx, spec, i, order)
		}
		t0 := time.Now()
		r2, c2, won, err := rt.doHedged(ctx, i, order, spec)
		if err != nil {
			continue
		}
		served := i
		if won {
			// The hedge's shard produced the response being relayed.
			served = r2shard(r2, i, order)
		}
		rt.shards[served].forwarded.Add(1)
		rt.lat.Observe(time.Since(t0))
		if r2.StatusCode == http.StatusTooManyRequests {
			shed = rt.captureShed(r2, served)
			c2()
			return nil, nil, 0, shed
		}
		return r2, c2, served, nil
	}
	return nil, nil, 0, nil
}

// feed routes one attempt's outcome into its shard's breaker: a
// response (any status) is liveness, a transport error while the
// parent context is still alive is a real fault. Errors after the
// parent died count for nothing — a client disconnect must not open
// breakers.
func (rt *Router) feed(ctx context.Context, a attemptResult) {
	if a.err == nil {
		rt.shards[a.shard].breaker.Success()
		return
	}
	if ctx.Err() == nil {
		rt.shards[a.shard].failures.Add(1)
		rt.shards[a.shard].breaker.Failure()
	}
}

// r2shard resolves which shard actually served a hedged response via
// the X-CM-Routed header the router stamps before relaying; falls back
// to the hedge candidate.
func r2shard(resp *http.Response, primary int, order []int) int {
	if v := resp.Header.Get("X-CM-Routed"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			return n
		}
	}
	if i := hedgeIndexAfter(order, primary); i >= 0 {
		return i
	}
	return primary
}

// captureShed drains a 429 into a relayable snapshot, extracting the
// server's retry hint (precise retry_after_ms from the body, falling
// back to the whole-second Retry-After header).
func (rt *Router) captureShed(resp *http.Response, shard int) *shedInfo {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	sh := &shedInfo{header: resp.Header, body: body, shard: shard}
	var parsed struct {
		RetryAfterMS int64 `json:"retry_after_ms"`
	}
	if json.Unmarshal(body, &parsed) == nil && parsed.RetryAfterMS > 0 {
		sh.retryAfter = time.Duration(parsed.RetryAfterMS) * time.Millisecond
	} else if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil {
			sh.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return sh
}

// hedgeIndexAfter finds the hedge candidate: the next shard in order
// after primary whose breaker is closed (half-open shards are not
// hedged into — trial tokens are for recovery, not tail-shaving).
func hedgeIndexAfter(order []int, primary int) int {
	pos := -1
	for p, i := range order {
		if i == primary {
			pos = p
			break
		}
	}
	if pos < 0 {
		return -1
	}
	for p := pos + 1; p < len(order); p++ {
		return order[p]
	}
	return -1
}

// hedgeCandidate applies the breaker/health gate to hedgeIndexAfter.
func (rt *Router) hedgeCandidate(order []int, primary int) int {
	pos := -1
	for p, i := range order {
		if i == primary {
			pos = p
			break
		}
	}
	if pos < 0 {
		return -1
	}
	for p := pos + 1; p < len(order); p++ {
		i := order[p]
		if rt.shards[i].healthy.Load() && rt.shards[i].breaker.State() == BreakerClosed {
			return i
		}
	}
	return -1
}

// attemptResult is one in-flight copy of a hedged request.
type attemptResult struct {
	resp   *http.Response
	err    error
	shard  int
	cancel context.CancelFunc
}

// doHedged sends spec to the target shard, firing one hedged copy to
// the next closed-breaker shard on the ring if the target is still
// silent after the p99-derived delay. The first usable response wins;
// the loser is cancelled and reaped off the request path. won reports
// the hedge produced the returned response.
func (rt *Router) doHedged(ctx context.Context, target int, order []int, spec forwardSpec) (*http.Response, func(), bool, error) {
	launch := func(i int) chan attemptResult {
		ch := make(chan attemptResult, 1)
		actx, cancel := context.WithCancel(ctx)
		go func() {
			resp, err := rt.doShard(actx, i, spec.method, spec.uri, spec.body, spec.contentType, spec.hdr, "forward")
			if resp != nil {
				// Stamp the serving shard so hedge accounting stays exact
				// even though two copies share one response path.
				resp.Header.Set("X-CM-Routed", strconv.Itoa(i))
			}
			ch <- attemptResult{resp: resp, err: err, shard: i, cancel: cancel}
		}()
		return ch
	}

	primaryCh := launch(target)
	hedgeTo := -1
	if !rt.cfg.HedgeDisabled {
		hedgeTo = rt.hedgeCandidate(order, target)
	}
	if hedgeTo < 0 {
		a := <-primaryCh
		rt.feed(ctx, a)
		if a.err != nil {
			// No response will ever be relayed: release the attempt
			// context now instead of leaking it until the parent dies.
			a.cancel()
		}
		return a.resp, wrapCancel(a), false, a.err
	}

	delay := hedgeDelay(rt.lat, rt.cfg.HedgeAfterMin, rt.cfg.HedgeAfterMax)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case a := <-primaryCh:
		rt.feed(ctx, a)
		if a.err != nil {
			a.cancel()
		}
		return a.resp, wrapCancel(a), false, a.err
	case <-timer.C:
	}

	rt.metrics.HedgesFired.Add(1)
	hedgeCh := launch(hedgeTo)
	var first attemptResult
	var fromHedge bool
	select {
	case first = <-primaryCh:
	case first = <-hedgeCh:
		fromHedge = true
	}
	other := primaryCh
	if !fromHedge {
		other = hedgeCh
	}
	if first.err == nil {
		// Winner. Reap the loser off-path: cancel its context, then wait
		// for its goroutine and close any response it managed to get.
		// A cancellation-induced error is not a shard failure, so the
		// reaper feeds no breaker.
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			b := <-other
			b.cancel()
			if b.resp != nil {
				io.Copy(io.Discard, b.resp.Body)
				b.resp.Body.Close()
				rt.shards[b.shard].breaker.Success()
			}
		}()
		if fromHedge {
			rt.metrics.HedgesWon.Add(1)
		}
		rt.feed(ctx, first)
		return first.resp, wrapCancel(first), fromHedge, nil
	}
	// The first finisher failed at the transport; if it was a real
	// fault (not our own cancellation) it feeds the breaker, and the
	// surviving copy decides the outcome.
	first.cancel()
	rt.feed(ctx, first)
	second := <-other
	rt.feed(ctx, second)
	if second.err == nil {
		if second.shard == hedgeTo {
			rt.metrics.HedgesWon.Add(1)
		}
		return second.resp, wrapCancel(second), second.shard == hedgeTo, nil
	}
	second.cancel()
	return nil, nil, false, first.err
}

// wrapCancel defers an attempt's context release until the response
// body has been relayed (cancelling earlier would sever the stream).
func wrapCancel(a attemptResult) func() {
	return func() {
		if a.cancel != nil {
			a.cancel()
		}
	}
}

// relay copies a shard response to the client: status, safe headers,
// body, plus the router's own X-CM-Routed shard index.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, shard int) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", "X-CM-Shard"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-CM-Routed", strconv.Itoa(shard))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// peerFill copies spec's compile artifact to a demoted key's new home
// before the forward, so the new owner serves a cache hit instead of
// recompiling. Misses are fine — the target just compiles — so every
// step is best-effort under the client's context.
func (rt *Router) peerFill(ctx context.Context, spec forwardSpec, target int, order []int) {
	if spec.artifactKey == "" || len(rt.shards) < 2 {
		return
	}
	uri := "/v1/artifact/" + spec.artifactKey
	// Already there? (A prior fill, replication, or its own compile.)
	if resp, err := rt.doShard(ctx, target, http.MethodGet, uri, nil, "", nil, "artifact"); err == nil {
		had := resp.StatusCode == http.StatusOK
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if had {
			return
		}
	}
	for _, i := range order {
		if i == target || !rt.shards[i].healthy.Load() || rt.shards[i].breaker.State() != BreakerClosed {
			continue
		}
		resp, err := rt.doShard(ctx, i, http.MethodGet, uri, nil, "", nil, "artifact")
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes*4))
		resp.Body.Close()
		if err != nil {
			continue
		}
		put, err := rt.doShard(ctx, target, http.MethodPut, uri, raw, "application/octet-stream", nil, "artifact")
		if err != nil {
			return
		}
		ok := put.StatusCode == http.StatusNoContent
		io.Copy(io.Discard, put.Body)
		put.Body.Close()
		if ok {
			rt.metrics.PeerCacheFills.Add(1)
		}
		return
	}
}

// maybeReplicate copies a freshly served compile artifact to the key's
// ring successor in the background: once two shards hold it, killing
// any one shard cannot force a recompile. Each key replicates once per
// router lifetime (the seen-set is capped and resets when full — worst
// case is a redundant, idempotent PUT).
func (rt *Router) maybeReplicate(spec forwardSpec, served int, order []int) {
	if rt.cfg.DisableReplication || spec.verb != "compile" || spec.artifactKey == "" || len(rt.shards) < 2 {
		return
	}
	succ := -1
	for _, i := range order {
		if i != served {
			succ = i
			break
		}
	}
	if succ < 0 {
		return
	}
	rt.replMu.Lock()
	if rt.replSeen[spec.artifactKey] {
		rt.replMu.Unlock()
		return
	}
	if len(rt.replSeen) >= 4096 {
		rt.replSeen = map[string]bool{}
	}
	rt.replSeen[spec.artifactKey] = true
	rt.replMu.Unlock()

	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		uri := "/v1/artifact/" + spec.artifactKey
		resp, err := rt.doShard(ctx, served, http.MethodGet, uri, nil, "", nil, "artifact")
		if err != nil {
			rt.unsee(spec.artifactKey)
			return
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rt.unsee(spec.artifactKey)
			return
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes*4))
		resp.Body.Close()
		if err != nil {
			rt.unsee(spec.artifactKey)
			return
		}
		put, err := rt.doShard(ctx, succ, http.MethodPut, uri, raw, "application/octet-stream", nil, "artifact")
		if err != nil {
			rt.unsee(spec.artifactKey)
			return
		}
		ok := put.StatusCode == http.StatusNoContent
		io.Copy(io.Discard, put.Body)
		put.Body.Close()
		if ok {
			rt.metrics.PeerReplicas.Add(1)
		} else {
			rt.unsee(spec.artifactKey)
		}
	}()
}

// unsee forgets a failed replication so a later request retries it.
func (rt *Router) unsee(key string) {
	rt.replMu.Lock()
	delete(rt.replSeen, key)
	rt.replMu.Unlock()
}

// Metrics exposes the router's live counters (tests).
func (rt *Router) Metrics() *Metrics { return &rt.metrics }

// ShardBreaker exposes shard i's breaker state (tests, /metrics).
func (rt *Router) ShardBreaker(i int) BreakerState { return rt.shards[i].breaker.State() }

// Primary exposes the ring's owner for a route key (tests).
func (rt *Router) Primary(routeKey string) int { return rt.ring.Primary(routeKey) }

// Ring exposes the router's ring (tests, cmgate startup logging).
func (rt *Router) Ring() *Ring { return rt.ring }
