// Connected-component labelling for threshold-based eddy detection
// (§IV, Fig 4): "One can identify ocean eddies algorithmically by
// iteratively thresholding the SSH data and searching for connected
// components that satisfy certain criteria".
package eddy

import (
	"fmt"

	"repro/internal/matrix"
)

// unionFind is a standard weighted quick-union structure.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// ConnComp labels the 4-connected components of a rank-2 bool matrix.
// Background cells get label 0; components are numbered from 1 in
// row-major order of their first cell. The result is a rank-2 int
// matrix of the same shape.
func ConnComp(binary *matrix.Matrix) (*matrix.Matrix, error) {
	if binary.Elem() != matrix.Bool || binary.Rank() != 2 {
		return nil, fmt.Errorf("eddy: ConnComp requires a rank-2 bool matrix, got %s", binary)
	}
	sh := binary.Shape()
	rows, cols := sh[0], sh[1]
	bits := binary.Bools()
	uf := newUnionFind(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			k := r*cols + c
			if !bits[k] {
				continue
			}
			if c+1 < cols && bits[k+1] {
				uf.union(k, k+1)
			}
			if r+1 < rows && bits[k+cols] {
				uf.union(k, k+cols)
			}
		}
	}
	out := matrix.New(matrix.Int, rows, cols)
	labels := out.Ints()
	next := int64(1)
	byRoot := map[int]int64{}
	for k := range bits {
		if !bits[k] {
			continue
		}
		root := uf.find(k)
		l, ok := byRoot[root]
		if !ok {
			l = next
			next++
			byRoot[root] = l
		}
		labels[k] = l
	}
	return out, nil
}

// ComponentSizes returns the cell count of each label (index 0 is the
// background count).
func ComponentSizes(labels *matrix.Matrix) []int {
	max := int64(0)
	for _, l := range labels.Ints() {
		if l > max {
			max = l
		}
	}
	sizes := make([]int, max+1)
	for _, l := range labels.Ints() {
		sizes[l]++
	}
	return sizes
}

// DetectOptions configures threshold-sweep eddy detection.
type DetectOptions struct {
	// Thresholds to sweep, lowest (deepest depression) first — the
	// Fig 4 for-loop over i.
	Thresholds []float64
	// MinSize, MaxSize: component cell-count criteria "typical of
	// ocean eddies".
	MinSize, MaxSize int
}

// DefaultDetect sweeps a small threshold ladder.
func DefaultDetect() DetectOptions {
	ths := []float64{-0.6, -0.45, -0.3, -0.2}
	return DetectOptions{Thresholds: ths, MinSize: 4, MaxSize: 500}
}

// Detection is one detected eddy candidate at one time step.
type Detection struct {
	Time       int
	Label      int64
	Size       int
	CLat, CLon float64 // centroid
	Threshold  float64
}

// DetectAtTime runs the threshold sweep on one rank-2 SSH slice,
// returning candidate components. A cell claimed at a deeper threshold
// is not re-reported at shallower ones.
func DetectAtTime(slice *matrix.Matrix, ti int, o DetectOptions) ([]Detection, error) {
	if slice.Rank() != 2 || slice.Elem() != matrix.Float {
		return nil, fmt.Errorf("eddy: DetectAtTime requires a rank-2 float matrix")
	}
	sh := slice.Shape()
	rows, cols := sh[0], sh[1]
	claimed := make([]bool, rows*cols)
	var out []Detection
	for _, th := range o.Thresholds {
		bin := matrix.New(matrix.Bool, rows, cols)
		bits := bin.Bools()
		data := slice.Floats()
		for k := range bits {
			bits[k] = data[k] < th && !claimed[k]
		}
		labels, err := ConnComp(bin)
		if err != nil {
			return nil, err
		}
		sizes := ComponentSizes(labels)
		// centroids
		type acc struct {
			n          int
			sLat, sLon float64
		}
		cents := map[int64]*acc{}
		for k, l := range labels.Ints() {
			if l == 0 {
				continue
			}
			a := cents[l]
			if a == nil {
				a = &acc{}
				cents[l] = a
			}
			a.n++
			a.sLat += float64(k / cols)
			a.sLon += float64(k % cols)
		}
		for l := int64(1); l < int64(len(sizes)); l++ {
			if sizes[l] < o.MinSize || sizes[l] > o.MaxSize {
				continue
			}
			a := cents[l]
			out = append(out, Detection{
				Time: ti, Label: l, Size: sizes[l],
				CLat: a.sLat / float64(a.n), CLon: a.sLon / float64(a.n),
				Threshold: th,
			})
			// claim the component's cells
			for k, lab := range labels.Ints() {
				if lab == l {
					claimed[k] = true
				}
			}
		}
	}
	return out, nil
}

// Detect runs DetectAtTime over every time slice of a rank-3 SSH
// matrix (lat x lon x time), as Fig 4 does via matrixMap.
func Detect(ssh *matrix.Matrix, o DetectOptions) ([][]Detection, error) {
	if ssh.Rank() != 3 {
		return nil, fmt.Errorf("eddy: Detect requires a rank-3 SSH matrix")
	}
	tDim := ssh.Shape()[2]
	out := make([][]Detection, tDim)
	for ti := 0; ti < tDim; ti++ {
		sliceAny, err := ssh.Index(matrix.All(), matrix.All(), matrix.Scalar(ti))
		if err != nil {
			return nil, err
		}
		dets, err := DetectAtTime(sliceAny.(*matrix.Matrix), ti, o)
		if err != nil {
			return nil, err
		}
		out[ti] = dets
	}
	return out, nil
}

// Track links detections across consecutive time steps by nearest
// centroid within maxDist, producing eddy tracks (§IV's tracking).
func Track(dets [][]Detection, maxDist float64) [][]Detection {
	var tracks [][]Detection
	active := map[int]int{} // detection index in previous step -> track id
	for ti := 0; ti < len(dets); ti++ {
		nextActive := map[int]int{}
		for di, d := range dets[ti] {
			best, bestDist := -1, maxDist
			if ti > 0 {
				for pi, p := range dets[ti-1] {
					if _, used := active[pi]; !used {
						continue
					}
					dist := hyp(d.CLat-p.CLat, d.CLon-p.CLon)
					if dist < bestDist {
						best, bestDist = pi, dist
					}
				}
			}
			if best >= 0 {
				id := active[best]
				tracks[id] = append(tracks[id], d)
				nextActive[di] = id
				delete(active, best)
			} else {
				tracks = append(tracks, []Detection{d})
				nextActive[di] = len(tracks) - 1
			}
		}
		active = nextActive
	}
	return tracks
}

func hyp(a, b float64) float64 {
	s := a*a + b*b
	// cheap sqrt via Newton (avoids importing math here)
	if s == 0 {
		return 0
	}
	x := s
	for i := 0; i < 20; i++ {
		x = 0.5 * (x + s/x)
	}
	return x
}
