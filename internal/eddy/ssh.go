// Package eddy implements the spatio-temporal data-mining application
// of §IV: identifying and tracking mesoscale ocean eddies in sea
// surface height (SSH) data. Because the AVISO satellite product the
// paper uses (721 x 1440 x 954 weekly fields) is not redistributable,
// the package includes a synthetic SSH generator that produces moving
// Gaussian depressions (eddies are "rotating pools of water ... the
// center of the eddy to be lower in height compared to its perimeter")
// over a noisy restless ocean — exercising the same code paths with
// known ground truth.
//
// Native Go reference implementations of the paper's algorithms live
// here: connected-component labelling for threshold-based detection
// (Fig 4) and the trough-scoring time-series method of Figs 7–8
// (getTrough, computeArea, scoreTS). The extended-C programs in
// examples/ compute the same results through the translator.
package eddy

import (
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// Eddy describes one synthetic eddy track.
type Eddy struct {
	// Lat0, Lon0: position (grid cells) at time 0.
	Lat0, Lon0 float64
	// VLat, VLon: drift per time step (cells).
	VLat, VLon float64
	// Radius: spatial extent (cells).
	Radius float64
	// Depth: SSH depression at the center (positive number; the
	// surface is lowered by this much).
	Depth float64
	// Start, Life: first time step and duration.
	Start, Life int
}

// SynthOptions configures the synthetic SSH field.
type SynthOptions struct {
	Lat, Lon, Time int
	NumEddies      int
	NoiseAmp       float64 // white measurement noise amplitude
	SwellAmp       float64 // low-frequency "restlessness of the ocean"
	Seed           int64
}

// DefaultSynth returns a small but representative configuration.
func DefaultSynth() SynthOptions {
	return SynthOptions{Lat: 48, Lon: 64, Time: 40, NumEddies: 6,
		NoiseAmp: 0.05, SwellAmp: 0.08, Seed: 1}
}

// Synthesize builds the SSH field and returns it with the ground-truth
// eddy tracks.
func Synthesize(o SynthOptions) (*matrix.Matrix, []Eddy) {
	r := rand.New(rand.NewSource(o.Seed))
	// Position/time ranges degrade gracefully on tiny grids.
	span := func(n, margin int) (base, width int) {
		base = margin
		if base > n/3 {
			base = n / 3
		}
		width = n - 2*base
		if width < 1 {
			width = 1
		}
		return base, width
	}
	latBase, latW := span(o.Lat, 4)
	lonBase, lonW := span(o.Lon, 4)
	halfT := o.Time / 2
	if halfT < 1 {
		halfT = 1
	}
	eddies := make([]Eddy, o.NumEddies)
	for k := range eddies {
		eddies[k] = Eddy{
			Lat0:   float64(latBase + r.Intn(latW)),
			Lon0:   float64(lonBase + r.Intn(lonW)),
			VLat:   (r.Float64() - 0.5) * 0.4,
			VLon:   (r.Float64() - 0.5) * 0.8,
			Radius: 2 + r.Float64()*3,
			Depth:  0.5 + r.Float64()*1.0,
			Start:  r.Intn(halfT),
			Life:   o.Time/3 + r.Intn(halfT) + 1,
		}
	}
	ssh := matrix.New(matrix.Float, o.Lat, o.Lon, o.Time)
	data := ssh.Floats()
	// Low-frequency swell phases.
	ph1 := r.Float64() * 2 * math.Pi
	ph2 := r.Float64() * 2 * math.Pi
	for la := 0; la < o.Lat; la++ {
		for lo := 0; lo < o.Lon; lo++ {
			for ti := 0; ti < o.Time; ti++ {
				h := o.SwellAmp * (math.Sin(float64(ti)*0.21+ph1+float64(la)*0.05) +
					math.Cos(float64(ti)*0.13+ph2+float64(lo)*0.07))
				h += o.NoiseAmp * (r.Float64()*2 - 1)
				data[(la*o.Lon+lo)*o.Time+ti] = float32ify(h)
			}
		}
	}
	// Superimpose the eddy depressions.
	for _, e := range eddies {
		for ti := e.Start; ti < e.Start+e.Life && ti < o.Time; ti++ {
			age := float64(ti - e.Start)
			clat := e.Lat0 + e.VLat*age
			clon := e.Lon0 + e.VLon*age
			// eddies spin up and decay
			amp := e.Depth * math.Sin(math.Pi*age/float64(e.Life))
			r2 := e.Radius * e.Radius
			for la := int(clat - 3*e.Radius); la <= int(clat+3*e.Radius); la++ {
				if la < 0 || la >= o.Lat {
					continue
				}
				for lo := int(clon - 3*e.Radius); lo <= int(clon+3*e.Radius); lo++ {
					if lo < 0 || lo >= o.Lon {
						continue
					}
					d2 := (float64(la)-clat)*(float64(la)-clat) + (float64(lo)-clon)*(float64(lo)-clon)
					idx := (la*o.Lon+lo)*o.Time + ti
					data[idx] -= float32ify(amp * math.Exp(-d2/(2*r2)))
				}
			}
		}
	}
	return ssh, eddies
}

// float32ify keeps synthetic values reproducible across the Go and C
// pipelines (the generated C uses 32-bit floats).
func float32ify(v float64) float64 { return float64(float32(v)) }
