// The temporal trough-scoring method of §IV (Figs 7–8), as native Go
// reference implementations mirroring the extended-C code of Fig 8:
// GetTrough walks from a local maximum down and back up; ComputeArea
// measures the area between the trough and the peak-to-peak line;
// ScoreTS assigns each trough its area; ScoreField maps ScoreTS over
// the time dimension of an SSH cube (Fig 8's matrixMap(scoreTS, data,
// [2])).
package eddy

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/par"
)

// GetTrough is Fig 8's getTrough: starting at index i (a local
// maximum), walk downwards while values fall, then upwards while they
// rise, returning the trough slice ts[beginning..i] (inclusive), its
// start index and its end index.
func GetTrough(ts []float64, i int) (trough []float64, beginning, end int) {
	beginning = i
	n := len(ts)
	for i+1 < n && ts[i] >= ts[i+1] {
		i++
	}
	for i+1 < n && ts[i] < ts[i+1] {
		i++
	}
	out := make([]float64, i-beginning+1)
	copy(out, ts[beginning:i+1])
	return out, beginning, i
}

// ComputeArea is Fig 8's computeArea: the area between the trough and
// the line connecting its two end points ("computing the 'area'
// between that trough and an imaginary line going from peak to peak").
// Each point of the result carries the total area.
func ComputeArea(areaOfInterest []float64) []float64 {
	n := len(areaOfInterest)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	y1 := areaOfInterest[0]
	y2 := areaOfInterest[n-1]
	x1, x2 := 0, n-1
	var m float64
	if x1 != x2 {
		m = (y1 - y2) / float64(x1-x2)
	}
	b := y1 - m*float64(x1)
	area := 0.0
	for i := 0; i < n; i++ {
		line := float64(i)*m + b
		area += line - areaOfInterest[i]
	}
	for i := range out {
		out[i] = area
	}
	return out
}

// ScoreTS is Fig 8's scoreTS: trim to the first local maximum, then
// repeatedly cut out troughs and assign each point the trough's area.
func ScoreTS(ts []float64) []float64 {
	scores := make([]float64, len(ts))
	n := len(ts)
	i := 0
	for i+1 < n && ts[i] < ts[i+1] { // trimming
		i++
	}
	for i < n-1 {
		trough, beginning, end := GetTrough(ts, i)
		area := ComputeArea(trough)
		copy(scores[beginning:end+1], area)
		if end == i { // no progress possible (flat tail)
			break
		}
		i = end
	}
	return scores
}

// ScoreField applies ScoreTS along the time dimension (dim 2) of a
// lat x lon x time SSH matrix, optionally in parallel on a pool —
// the reference for Fig 8's matrixMap(scoreTS, data, [2]).
func ScoreField(ssh *matrix.Matrix, pool *par.Pool) (*matrix.Matrix, error) {
	if ssh.Rank() != 3 || ssh.Elem() != matrix.Float {
		return nil, fmt.Errorf("eddy: ScoreField requires a rank-3 float matrix")
	}
	sh := ssh.Shape()
	lat, lon, tn := sh[0], sh[1], sh[2]
	out := matrix.New(matrix.Float, lat, lon, tn)
	src := ssh.Floats()
	dst := out.Floats()
	scoreOne := func(cell int) {
		base := cell * tn
		ts := make([]float64, tn)
		copy(ts, src[base:base+tn])
		copy(dst[base:base+tn], ScoreTS(ts))
	}
	if pool == nil {
		for cell := 0; cell < lat*lon; cell++ {
			scoreOne(cell)
		}
		return out, nil
	}
	pool.ParallelFor(0, lat*lon, scoreOne)
	return out, nil
}

// TopScores returns the k highest per-cell peak scores with their
// locations, for ranking candidate eddy sites ("ranking locations on
// the map by how likely it is that what is being detected is actually
// an eddy").
type ScoredCell struct {
	Lat, Lon int
	Score    float64
}

// TopScores scans a scored field for each cell's maximum score over
// time and returns the k best cells, ordered best first.
func TopScores(scores *matrix.Matrix, k int) []ScoredCell {
	sh := scores.Shape()
	lat, lon, tn := sh[0], sh[1], sh[2]
	data := scores.Floats()
	cells := make([]ScoredCell, 0, lat*lon)
	for la := 0; la < lat; la++ {
		for lo := 0; lo < lon; lo++ {
			best := 0.0
			base := (la*lon + lo) * tn
			for t := 0; t < tn; t++ {
				if data[base+t] > best {
					best = data[base+t]
				}
			}
			cells = append(cells, ScoredCell{la, lo, best})
		}
	}
	// partial selection sort for the top k
	if k > len(cells) {
		k = len(cells)
	}
	for i := 0; i < k; i++ {
		maxJ := i
		for j := i + 1; j < len(cells); j++ {
			if cells[j].Score > cells[maxJ].Score {
				maxJ = j
			}
		}
		cells[i], cells[maxJ] = cells[maxJ], cells[i]
	}
	return cells[:k]
}
