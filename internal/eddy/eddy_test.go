package eddy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/par"
)

func TestConnCompBasic(t *testing.T) {
	// two components: an L-shape and a lone cell
	bin := matrix.FromBools([]bool{
		true, true, false, false,
		true, false, false, true,
		false, false, false, false,
	}, 3, 4)
	labels, err := ConnComp(bin)
	if err != nil {
		t.Fatal(err)
	}
	l := labels.Ints()
	if l[0] != l[1] || l[0] != l[4] {
		t.Errorf("L-shape not connected: %v", l)
	}
	if l[7] == 0 || l[7] == l[0] {
		t.Errorf("lone cell mislabeled: %v", l)
	}
	if l[2] != 0 || l[11] != 0 {
		t.Errorf("background labeled: %v", l)
	}
	sizes := ComponentSizes(labels)
	if len(sizes) != 3 || sizes[l[0]] != 3 || sizes[l[7]] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestConnCompDiagonalNotConnected(t *testing.T) {
	bin := matrix.FromBools([]bool{
		true, false,
		false, true,
	}, 2, 2)
	labels, _ := ConnComp(bin)
	l := labels.Ints()
	if l[0] == l[3] {
		t.Error("4-connectivity must not join diagonals")
	}
}

func TestConnCompErrors(t *testing.T) {
	if _, err := ConnComp(matrix.New(matrix.Float, 2, 2)); err == nil {
		t.Error("float matrix should be rejected")
	}
	if _, err := ConnComp(matrix.New(matrix.Bool, 2, 2, 2)); err == nil {
		t.Error("rank-3 matrix should be rejected")
	}
}

// Property: labels partition exactly the true cells, and any two
// 4-adjacent true cells share a label.
func TestQuickConnCompInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 2+r.Intn(8), 2+r.Intn(8)
		bits := make([]bool, rows*cols)
		for i := range bits {
			bits[i] = r.Intn(3) == 0
		}
		labels, err := ConnComp(matrix.FromBools(bits, rows, cols))
		if err != nil {
			return false
		}
		l := labels.Ints()
		for i := range bits {
			if bits[i] != (l[i] != 0) {
				return false
			}
		}
		for rr := 0; rr < rows; rr++ {
			for cc := 0; cc < cols; cc++ {
				k := rr*cols + cc
				if !bits[k] {
					continue
				}
				if cc+1 < cols && bits[k+1] && l[k] != l[k+1] {
					return false
				}
				if rr+1 < rows && bits[k+cols] && l[k] != l[k+cols] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGetTrough(t *testing.T) {
	// the Fig 7 signature: fall then rise
	ts := []float64{2, 1.5, 1, 1.2, 1.8, 2.2, 2.0}
	trough, b, e := GetTrough(ts, 0)
	if b != 0 || e != 5 {
		t.Fatalf("trough bounds = %d..%d, want 0..5", b, e)
	}
	if len(trough) != 6 || trough[0] != 2 || trough[5] != 2.2 {
		t.Errorf("trough = %v", trough)
	}
}

func TestComputeAreaTriangle(t *testing.T) {
	// symmetric V: line from 2 to 2; areas 0+1+2+1+0 = 4
	area := ComputeArea([]float64{2, 1, 0, 1, 2})
	if len(area) != 5 {
		t.Fatal("area length")
	}
	for _, v := range area {
		if v < 3.999 || v > 4.001 {
			t.Fatalf("area = %v, want 4", v)
		}
	}
	if out := ComputeArea(nil); len(out) != 0 {
		t.Error("empty input should give empty output")
	}
	one := ComputeArea([]float64{5})
	if len(one) != 1 || one[0] != 0 {
		t.Errorf("singleton area = %v", one)
	}
}

func TestScoreTSDeepVsShallow(t *testing.T) {
	// A deep trough must score higher than a shallow noise bump
	// ("Large areas will then correspond to segments ... that underwent
	// substantial drops and rises, and those that are shallow ... can
	// be associated with noise").
	ts := []float64{1, 1.1, 1.0, 1.1, 1.1, 1.05, 1.1, // shallow bumps
		1.2, 0.2, 0.1, 0.3, 1.2, // deep eddy trough
		1.1, 1.0, 1.1}
	scores := ScoreTS(ts)
	deep := scores[9]
	shallow := scores[2]
	if deep <= shallow {
		t.Fatalf("deep trough score %v should exceed shallow %v", deep, shallow)
	}
	if deep <= 0 {
		t.Fatalf("deep trough should have positive area, got %v", deep)
	}
}

func TestScoreTSMonotoneSeries(t *testing.T) {
	// strictly rising series: trimmed entirely, all scores zero
	scores := ScoreTS([]float64{1, 2, 3, 4, 5})
	for _, s := range scores {
		if s != 0 {
			t.Fatalf("monotone series should score 0, got %v", scores)
		}
	}
}

func TestScoreFieldParallelMatchesSequential(t *testing.T) {
	ssh, _ := Synthesize(SynthOptions{Lat: 10, Lon: 12, Time: 30, NumEddies: 3,
		NoiseAmp: 0.03, SwellAmp: 0.05, Seed: 9})
	seq, err := ScoreField(ssh, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := par.NewPool(4)
	defer pool.Shutdown()
	parl, err := ScoreField(ssh, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(seq, parl) {
		t.Fatal("parallel scoring differs from sequential")
	}
}

// The synthetic ground truth must be recoverable: cells under real
// eddy tracks should rank above random ocean (the paper's premise that
// area scores separate eddies from noise).
func TestScoresFindSyntheticEddies(t *testing.T) {
	o := SynthOptions{Lat: 24, Lon: 32, Time: 40, NumEddies: 4,
		NoiseAmp: 0.03, SwellAmp: 0.05, Seed: 4}
	ssh, eddies := Synthesize(o)
	scores, err := ScoreField(ssh, nil)
	if err != nil {
		t.Fatal(err)
	}
	top := TopScores(scores, 40)
	near := func(c ScoredCell) bool {
		for _, e := range eddies {
			// compare against the eddy mid-life position
			mid := float64(e.Life) / 2
			clat := e.Lat0 + e.VLat*mid
			clon := e.Lon0 + e.VLon*mid
			d := (float64(c.Lat)-clat)*(float64(c.Lat)-clat) +
				(float64(c.Lon)-clon)*(float64(c.Lon)-clon)
			if d < (3*e.Radius)*(3*e.Radius) {
				return true
			}
		}
		return false
	}
	hits := 0
	for _, c := range top[:10] {
		if near(c) {
			hits++
		}
	}
	if hits < 6 {
		t.Fatalf("only %d/10 top-scored cells near true eddies", hits)
	}
}

func TestDetectFindsComponents(t *testing.T) {
	o := SynthOptions{Lat: 24, Lon: 32, Time: 16, NumEddies: 3,
		NoiseAmp: 0.02, SwellAmp: 0.03, Seed: 6}
	ssh, _ := Synthesize(o)
	dets, err := Detect(ssh, DefaultDetect())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ds := range dets {
		total += len(ds)
	}
	if total == 0 {
		t.Fatal("threshold sweep found no components over synthetic eddies")
	}
}

func TestTrackLinksDetections(t *testing.T) {
	// two synthetic detections drifting right by 1 cell per step
	dets := [][]Detection{
		{{Time: 0, CLat: 5, CLon: 5}},
		{{Time: 1, CLat: 5, CLon: 6}},
		{{Time: 2, CLat: 5, CLon: 7}},
		{{Time: 3, CLat: 20, CLon: 20}}, // far away: a new track
	}
	tracks := Track(dets, 3)
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d, want 2", len(tracks))
	}
	if len(tracks[0]) != 3 {
		t.Fatalf("first track length = %d, want 3", len(tracks[0]))
	}
}

func TestSynthesizeShapeAndDepressions(t *testing.T) {
	o := DefaultSynth()
	ssh, eddies := Synthesize(o)
	if got := ssh.Shape(); got[0] != o.Lat || got[1] != o.Lon || got[2] != o.Time {
		t.Fatalf("shape = %v", got)
	}
	if len(eddies) != o.NumEddies {
		t.Fatalf("eddies = %d", len(eddies))
	}
	// at mid-life, the eddy center must be measurably lower than the
	// field average (it is a depression)
	e := eddies[0]
	mid := e.Start + e.Life/2
	if mid >= o.Time {
		mid = o.Time - 1
	}
	clat := int(e.Lat0 + e.VLat*float64(mid-e.Start))
	clon := int(e.Lon0 + e.VLon*float64(mid-e.Start))
	if clat < 0 || clat >= o.Lat || clon < 0 || clon >= o.Lon {
		t.Skip("eddy drifted off-grid for this seed")
	}
	v, err := ssh.At(clat, clon, mid)
	if err != nil {
		t.Fatal(err)
	}
	if v.(float64) > -0.2 {
		t.Fatalf("eddy center SSH = %v, expected a depression", v)
	}
}

// Regression: tiny grids must not panic the synthesizer (cmd/sshgen
// accepts arbitrary sizes).
func TestSynthesizeTinyGrids(t *testing.T) {
	for _, o := range []SynthOptions{
		{Lat: 6, Lon: 7, Time: 8, NumEddies: 6, NoiseAmp: 0.05, SwellAmp: 0.08, Seed: 1},
		{Lat: 1, Lon: 1, Time: 1, NumEddies: 2, Seed: 2},
		{Lat: 3, Lon: 30, Time: 2, NumEddies: 1, Seed: 3},
	} {
		ssh, eddies := Synthesize(o)
		if ssh.Size() != o.Lat*o.Lon*o.Time || len(eddies) != o.NumEddies {
			t.Fatalf("synthesize %+v produced wrong shape", o)
		}
	}
}
