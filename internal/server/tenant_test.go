// HTTP-level tenancy tests: API-key authentication on the expensive
// endpoints, per-tenant token-bucket 429s with structured retry
// hints, the per-tenant max_cells clamp, the trusted gate identity
// header, and per-tenant attribution on /metrics.
package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
	"repro/internal/tenant"
)

const testKeys = `{
  "tenants": [
    {"name": "acme", "keys": ["k-acme"], "rate_per_sec": 1000, "burst": 1000,
     "max_cells": 10, "max_concurrent_runs": 2, "queue_share": 2},
    {"name": "drip", "keys": ["k-drip"], "rate_per_sec": 1, "burst": 1},
    {"name": "mallory", "keys": ["k-mal"], "disabled": true}
  ]
}`

func tenantServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	reg, err := tenant.NewRegistry([]byte(testKeys))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tenants = reg
	ts, _ := newTestServer(t, cfg)
	return ts
}

// postWithKey posts a JSON body with an optional bearer key and extra
// headers, returning status, decoded body, and the raw response.
func postWithKey(t *testing.T, url, key string, hdr map[string]string, body any) (int, map[string]any, *http.Response) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out, resp
}

func TestTenantAuthPaths(t *testing.T) {
	ts := tenantServer(t, server.Config{})
	run := map[string]any{"source": okSrc}

	// No credentials: the anonymous default tenant — zero-config use
	// stays open even with a key file loaded.
	if code, body, _ := postWithKey(t, ts.URL+"/v1/run", "", nil, run); code != http.StatusOK {
		t.Fatalf("anonymous run: %d %v", code, body)
	}
	// A valid key authenticates.
	if code, body, _ := postWithKey(t, ts.URL+"/v1/run", "k-drip", nil, run); code != http.StatusOK {
		t.Fatalf("keyed run: %d %v", code, body)
	}
	// Unknown key: 401. Disabled tenant: 403.
	if code, _, _ := postWithKey(t, ts.URL+"/v1/run", "k-bogus", nil, run); code != http.StatusUnauthorized {
		t.Fatalf("unknown key: %d, want 401", code)
	}
	if code, _, _ := postWithKey(t, ts.URL+"/v1/vet", "k-mal", nil, map[string]any{"source": okSrc}); code != http.StatusForbidden {
		t.Fatalf("disabled tenant vet: %d, want 403", code)
	}
	if code, _, _ := postWithKey(t, ts.URL+"/v1/compile", "k-bogus", nil, map[string]any{"source": okSrc}); code != http.StatusUnauthorized {
		t.Fatalf("unknown key compile: %d, want 401", code)
	}
}

func TestTenantRateLimit(t *testing.T) {
	ts := tenantServer(t, server.Config{})
	req := map[string]any{"source": okSrc, "par": "none"}

	// drip has burst 1: the first request spends it, the second must
	// be refused with a structured 429 naming the tenant.
	if code, body, _ := postWithKey(t, ts.URL+"/v1/compile", "k-drip", nil, req); code != http.StatusOK {
		t.Fatalf("first drip request: %d %v", code, body)
	}
	code, body, resp := postWithKey(t, ts.URL+"/v1/compile", "k-drip", nil, req)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second drip request: %d %v, want 429", code, body)
	}
	if body["tenant"] != "drip" {
		t.Fatalf("429 body tenant = %v", body["tenant"])
	}
	if retry, ok := body["retry_after_ms"].(float64); !ok || retry <= 0 {
		t.Fatalf("retry_after_ms = %v, want > 0", body["retry_after_ms"])
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("Retry-After") == "0" {
		t.Fatalf("Retry-After header = %q", resp.Header.Get("Retry-After"))
	}

	// The refusal is per-tenant: acme and anonymous are unaffected.
	if code, body, _ := postWithKey(t, ts.URL+"/v1/compile", "k-acme", nil, req); code != http.StatusOK {
		t.Fatalf("acme after drip 429: %d %v", code, body)
	}
	if code, body, _ := postWithKey(t, ts.URL+"/v1/compile", "", nil, req); code != http.StatusOK {
		t.Fatalf("anonymous after drip 429: %d %v", code, body)
	}

	var m struct {
		RateLimited int64 `json:"rate_limited"`
		AuthRefused int64 `json:"auth_refused"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK || m.RateLimited != 1 {
		t.Fatalf("metrics rate_limited = %d (status %d), want 1", m.RateLimited, code)
	}
}

func TestTenantMaxCellsClamp(t *testing.T) {
	ts := tenantServer(t, server.Config{})
	// okSrc allocates an 8×8 matrix = 64 cells; acme's quota caps it
	// at 10. The request asks for the server default (much larger) —
	// the tenant clamp must win and trip the oom trap.
	code, body, _ := postWithKey(t, ts.URL+"/v1/run", "k-acme", nil, map[string]any{"source": okSrc})
	if code != http.StatusUnprocessableEntity || body["trap"] != "oom" {
		t.Fatalf("over-quota allocation: %d trap=%v, want 422/oom", code, body["trap"])
	}
	// The same run as anonymous (no tenant cap) succeeds.
	if code, body, _ := postWithKey(t, ts.URL+"/v1/run", "", nil, map[string]any{"source": okSrc}); code != http.StatusOK {
		t.Fatalf("anonymous run: %d %v", code, body)
	}
}

func TestGateHeaderTrust(t *testing.T) {
	// Untrusted by default: a client-forged X-CM-Tenant header must
	// not buy acme's identity (or anyone's quota).
	ts := tenantServer(t, server.Config{})
	hdr := map[string]string{tenant.HeaderTenant: "acme"}
	code, body, _ := postWithKey(t, ts.URL+"/v1/run", "", hdr, map[string]any{"source": okSrc})
	if code != http.StatusOK {
		t.Fatalf("forged-header run: %d %v", code, body)
	}
	var m struct {
		Tenants []server.TenantAdmissionRow `json:"tenants"`
	}
	getJSON(t, ts.URL+"/metrics", &m)
	for _, row := range m.Tenants {
		if row.Tenant == "acme" {
			t.Fatalf("forged header produced an acme admission row: %+v", row)
		}
	}

	// With TrustGateHeader (the daemon behind cmgate), the stamp is
	// the identity — and the tenant's clamps apply to it.
	ts2 := tenantServer(t, server.Config{TrustGateHeader: true})
	code, body, _ = postWithKey(t, ts2.URL+"/v1/run", "", hdr, map[string]any{"source": okSrc})
	if code != http.StatusUnprocessableEntity || body["trap"] != "oom" {
		t.Fatalf("gate-stamped run: %d trap=%v, want acme's max_cells clamp", code, body["trap"])
	}
	var m2 struct {
		Tenants []server.TenantAdmissionRow `json:"tenants"`
		Driver  struct {
			RunsByTenant map[string]int64 `json:"runs_by_tenant"`
		} `json:"driver"`
	}
	getJSON(t, ts2.URL+"/metrics", &m2)
	found := false
	for _, row := range m2.Tenants {
		if row.Tenant == "acme" && row.Admitted == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no acme admission row after gate-stamped run: %+v", m2.Tenants)
	}
	if m2.Driver.RunsByTenant["acme"] != 1 {
		t.Fatalf("runs_by_tenant = %v, want acme: 1", m2.Driver.RunsByTenant)
	}
}
