// White-box test of the recover middleware: a panic escaping a handler
// must be absorbed, counted, and answered with a 500.
package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWithRecoverMiddleware(t *testing.T) {
	s := New(Config{})
	h := s.withRecover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/run", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "handler bug") {
		t.Errorf("body = %q, want the panic value in it", rec.Body.String())
	}
	if got := s.panicsCaught.Load(); got != 1 {
		t.Errorf("panicsCaught = %d, want 1", got)
	}

	// Healthy handlers pass through untouched.
	h = s.withRecover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusTeapot || s.panicsCaught.Load() != 1 {
		t.Errorf("pass-through: status %d, panicsCaught %d", rec.Code, s.panicsCaught.Load())
	}
}
