// HTTP tests for POST /v1/vet: the static-analysis endpoint must
// return structured findings with exact spans, reject programs with
// error findings via 422, serve warm results from the vet cache, and
// account for itself on /metrics.
package server_test

import (
	"net/http"
	"testing"

	"repro/internal/driver"
	"repro/internal/server"
	"repro/internal/vet"
)

const vetMismatchSrc = `
int main() {
	Matrix float <2> a = init(Matrix float <2>, 3, 4);
	Matrix float <2> b = init(Matrix float <2>, 5, 6);
	Matrix float <2> c = a * b;
	print(c);
	return 0;
}
`

func TestVetRejectsShapeMismatchWithStructuredFinding(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	req := map[string]any{"name": "mm.xc", "source": vetMismatchSrc}

	code, body := postJSON(t, ts.URL+"/v1/vet", req)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("vet of mismatched matmul: %d %v, want 422", code, body)
	}
	if body["ok"] != false || body["errors"] != float64(1) {
		t.Fatalf("response: ok=%v errors=%v", body["ok"], body["errors"])
	}
	findings, ok := body["findings"].([]any)
	if !ok || len(findings) != 1 {
		t.Fatalf("findings: %v", body["findings"])
	}
	f := findings[0].(map[string]any)
	if f["code"] != vet.CodeShapeMismatch || f["severity"] != "error" {
		t.Fatalf("finding: code=%v severity=%v", f["code"], f["severity"])
	}
	span := f["span"].(map[string]any)
	start := span["start"].(map[string]any)
	// The `a * b` expression sits on line 5 column 23 of the request
	// source; clients rely on these spans to mark the editor buffer.
	if span["file"] != "mm.xc" || start["line"] != float64(5) {
		t.Fatalf("finding span: %v", span)
	}

	// Same program again: served from the vet cache, same verdict.
	code, warm := postJSON(t, ts.URL+"/v1/vet", req)
	if code != http.StatusUnprocessableEntity || warm["cached"] != true {
		t.Fatalf("warm vet: %d cached=%v", code, warm["cached"])
	}
	if warm["key"] != body["key"] {
		t.Fatal("warm vet returned a different content address")
	}

	var m struct {
		VetRequests  int64                  `json:"vet_requests"`
		ClientErrors int64                  `json:"client_errors"`
		Driver       driver.MetricsSnapshot `json:"driver"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if m.VetRequests != 2 || m.ClientErrors != 2 {
		t.Fatalf("vet_requests=%d client_errors=%d, want 2 and 2", m.VetRequests, m.ClientErrors)
	}
	if m.Driver.VetRuns != 2 || m.Driver.VetHits != 1 || m.Driver.VetMisses != 1 {
		t.Fatalf("driver vet metrics: runs=%d hits=%d misses=%d",
			m.Driver.VetRuns, m.Driver.VetHits, m.Driver.VetMisses)
	}
	if m.Driver.VetFindings != 1 {
		t.Fatalf("vet_findings_total = %d, want 1", m.Driver.VetFindings)
	}
	if m.Driver.VetLatency.Count != 2 || m.Driver.VetAnalysis.Count != 1 {
		t.Fatalf("vet latency counts: whole=%d analysis=%d",
			m.Driver.VetLatency.Count, m.Driver.VetAnalysis.Count)
	}
}

func TestVetCleanProgramIsOK(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	code, body := postJSON(t, ts.URL+"/v1/vet", map[string]any{"source": okSrc})
	if code != http.StatusOK {
		t.Fatalf("vet of clean program: %d %v", code, body)
	}
	if body["ok"] != true || body["errors"] != float64(0) {
		t.Fatalf("response: ok=%v errors=%v", body["ok"], body["errors"])
	}
	if findings, ok := body["findings"].([]any); !ok || len(findings) != 0 {
		t.Fatalf("findings must be a present empty array, got %v", body["findings"])
	}
}

func TestVetWarningsDoNotReject(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	src := `
int main() {
	int dead = 3;
	return 0;
}
`
	code, body := postJSON(t, ts.URL+"/v1/vet", map[string]any{"source": src})
	if code != http.StatusOK {
		t.Fatalf("warnings-only program: %d %v, want 200", code, body)
	}
	findings := body["findings"].([]any)
	if len(findings) != 1 {
		t.Fatalf("findings: %v", findings)
	}
	f := findings[0].(map[string]any)
	if f["code"] != vet.CodeUnusedVar || f["severity"] != "warning" {
		t.Fatalf("finding: %v", f)
	}
}

func TestVetValidation(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})

	if code, body := postJSON(t, ts.URL+"/v1/vet", map[string]any{}); code != http.StatusBadRequest {
		t.Fatalf("missing source: %d %v", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/vet", map[string]any{
		"source": okSrc, "extensions": "bogus",
	}); code != http.StatusBadRequest {
		t.Fatalf("bad extensions: %d %v", code, body)
	}
	resp, err := http.Get(ts.URL + "/v1/vet")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/vet: %d, want 405", resp.StatusCode)
	}

	// Frontend failures surface the parse/check diagnostics.
	code, body := postJSON(t, ts.URL+"/v1/vet", map[string]any{"source": "int main() { return 0 0; }"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("unparsable program: %d %v, want 422", code, body)
	}
	if diags, ok := body["diagnostics"].([]any); !ok || len(diags) == 0 {
		t.Fatalf("diagnostics: %v", body["diagnostics"])
	}
}
