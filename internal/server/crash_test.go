// The crash-only suite: every crash class — a panic injected into a
// pool worker, an allocation over the cell budget, an rc double free, a
// deadline busted inside a parallel with-loop — is thrown at a live
// server, which must answer each with a structured trap/error response
// while /healthz stays 200 and no goroutines leak.
package server_test

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/par"
	"repro/internal/rc"
	"repro/internal/server"
)

// parallelSrc runs a with-loop big enough to be released on the pool.
const parallelSrc = `
int main() {
	int n = 64;
	Matrix float <1> m;
	m = with ([0] <= [i] < [n]) genarray([n], (float)i);
	return 0;
}
`

// bigParallelSrc is a large parallel with-loop: interpreted, it takes
// far longer than the tight deadlines the tests set, so cancellation
// must be observed mid-construct.
const bigParallelSrc = `
int main() {
	int n = 2000;
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], (float)i * 2.0 + j);
	return 0;
}
`

// mustHealthz asserts the liveness probe still answers 200.
func mustHealthz(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d after a crash-class request", resp.StatusCode)
	}
}

func TestCrashWorkerPanicIsTrapped(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	par.TestHookInjectPanic = func(worker int) {
		if worker == 1 {
			panic("injected worker crash")
		}
	}
	defer func() { par.TestHookInjectPanic = nil }()

	code, body := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"source": parallelSrc, "threads": 4})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d body %v, want 422", code, body)
	}
	if body["trap"] != "panic" {
		t.Fatalf("trap = %v, want panic (body %v)", body["trap"], body)
	}
	if span, _ := body["span"].(string); span == "" {
		t.Errorf("trap response carries no source span: %v", body)
	}
	mustHealthz(t, ts.URL)

	// The same pool-backed path works once the fault is gone.
	par.TestHookInjectPanic = nil
	code, body = postJSON(t, ts.URL+"/v1/run",
		map[string]any{"source": parallelSrc, "threads": 4})
	if code != http.StatusOK {
		t.Fatalf("run after injected panic: %d %v", code, body)
	}
}

func TestCrashOversizedAllocationIsTrapped(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{MaxCells: 1000})
	code, body := postJSON(t, ts.URL+"/v1/run", map[string]any{"source": `
int main() {
	int n = 100;
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], 1.0);
	return 0;
}`})
	if code != http.StatusUnprocessableEntity || body["trap"] != "oom" {
		t.Fatalf("oversized genarray: %d %v, want 422 trap oom", code, body)
	}
	if !strings.Contains(body["error"].(string), "budget") {
		t.Errorf("error = %v, want the budget in it", body["error"])
	}
	mustHealthz(t, ts.URL)

	// A request cannot raise its own cap above the server's: asking for
	// 2^40 cells is clamped back to the configured 1000.
	code, body = postJSON(t, ts.URL+"/v1/run", map[string]any{"source": `
int main() {
	int n = 100;
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], 1.0);
	return 0;
}`, "max_cells": int64(1) << 40})
	if code != http.StatusUnprocessableEntity || body["trap"] != "oom" {
		t.Fatalf("max_cells clamp: %d %v, want 422 trap oom", code, body)
	}
	// But a request may lower the cap below the server's.
	ts2, _ := newTestServer(t, server.Config{})
	code, body = postJSON(t, ts2.URL+"/v1/run",
		map[string]any{"source": parallelSrc, "max_cells": 10})
	if code != http.StatusUnprocessableEntity || body["trap"] != "oom" {
		t.Fatalf("per-request budget: %d %v, want 422 trap oom", code, body)
	}
}

func TestCrashRCDoubleFreeIsTrapped(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	// The hook commits a real double free inside a pool worker; the
	// typed rc panic must come back as the rc trap.
	par.TestHookInjectPanic = func(worker int) {
		if worker == 0 {
			h := rc.NewHeap().Alloc(8)
			h.DecRef()
			h.DecRef()
		}
	}
	defer func() { par.TestHookInjectPanic = nil }()

	code, body := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"source": parallelSrc, "threads": 4})
	if code != http.StatusUnprocessableEntity || body["trap"] != "rc" {
		t.Fatalf("double free: %d %v, want 422 trap rc", code, body)
	}
	if !strings.Contains(body["error"].(string), "double free") {
		t.Errorf("error = %v, want the violation in it", body["error"])
	}
	mustHealthz(t, ts.URL)
}

func TestCrashDeadlineInsideParallelConstruct(t *testing.T) {
	ts, d := newTestServer(t, server.Config{})
	start := time.Now()
	code, body := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"source": bigParallelSrc, "threads": 4, "timeout_ms": 30})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d %v, want 504", code, body)
	}
	// The deadline is polled between rows of the with-loop, so the
	// response arrives promptly instead of after the full 4M-cell loop.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("mid-construct cancellation took %s", elapsed)
	}
	mustHealthz(t, ts.URL)
	if m := d.Metrics().Snapshot(); m.RunsCancelled != 1 {
		t.Fatalf("RunsCancelled = %d", m.RunsCancelled)
	}
	var ms struct {
		RunTimeouts int64 `json:"run_timeouts"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &ms); code != http.StatusOK || ms.RunTimeouts != 1 {
		t.Fatalf("run_timeouts = %d (status %d), want 1", ms.RunTimeouts, code)
	}
}

func TestCrashTrapsCountedOnMetrics(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{MaxCells: 100})
	oversized := map[string]any{"source": `
int main() {
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [50, 50]) genarray([50, 50], 1.0);
	return 0;
}`}
	for k := 0; k < 3; k++ {
		if code, body := postJSON(t, ts.URL+"/v1/run", oversized); code != http.StatusUnprocessableEntity {
			t.Fatalf("request %d: %d %v", k, code, body)
		}
	}
	var m struct {
		RunTraps        int64            `json:"run_traps"`
		Traps           map[string]int64 `json:"traps"`
		PanicsRecovered int64            `json:"panics_recovered"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if m.RunTraps != 3 || m.Traps["oom"] != 3 {
		t.Fatalf("trap counters: %+v", m)
	}
	if m.PanicsRecovered != 0 {
		t.Errorf("panics_recovered = %d with no handler panics", m.PanicsRecovered)
	}
	mustHealthz(t, ts.URL)
}

// Graceful shutdown: Drain lets the in-flight run finish, sheds every
// queued run with a structured 429, refuses new arrivals, and leaves
// no goroutines behind — the daemon's SIGTERM path in miniature.
func TestCrashShutdownDrainsInflightShedsQueued(t *testing.T) {
	release := barrierHook(t)
	ts, srv, _ := newChaosServer(t, server.Config{
		MaxConcurrentRuns: 1, RunQueueSize: 4,
		DefaultTimeout: 30 * time.Second, MaxQueueWait: 30 * time.Second,
	})
	base := runtime.NumGoroutine()

	// One admitted run pinned at the barrier, two runs queued behind it.
	inflight := make(chan int, 1)
	go func() {
		code, _ := rawPost(ts.URL+"/v1/run", map[string]any{"source": parallelSrc, "threads": 2})
		inflight <- code
	}()
	waitMetrics(t, ts.URL, func(m queueMetrics) bool { return m.InflightRuns == 1 }, "slot held")
	queued := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _ := rawPost(ts.URL+"/v1/run", map[string]any{"source": trivialSrc})
			queued <- code
		}()
	}
	waitMetrics(t, ts.URL, func(m queueMetrics) bool { return m.RunQueueDepth == 2 }, "queue filled")

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// The queued runs are shed immediately — Drain does not wait for
	// them — and a fresh arrival is refused the same way.
	for i := 0; i < 2; i++ {
		select {
		case code := <-queued:
			if code != http.StatusTooManyRequests {
				t.Fatalf("queued run on drain: %d, want 429", code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued runs not shed by Drain")
		}
	}
	if code, err := rawPost(ts.URL+"/v1/run", map[string]any{"source": trivialSrc}); err != nil || code != http.StatusTooManyRequests {
		t.Fatalf("post-drain arrival: %d %v, want 429", code, err)
	}
	// Non-run endpoints still serve during the drain window.
	mustHealthz(t, ts.URL)

	// The in-flight run completes normally and Drain returns.
	release()
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight run finished %d during drain, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Idle keep-alive conns from the flood settle once closed; pool
	// workers exit cooperatively after each run.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+6 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at start, %d after drain", base, runtime.NumGoroutine())
}

// A storm of crash-class requests must not leak goroutines: every
// interpreter (and its worker pool) is torn down when its request ends.
func TestCrashRequestsDoNotLeakGoroutines(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{MaxCells: 1000})
	base := runtime.NumGoroutine()
	for k := 0; k < 10; k++ {
		postJSON(t, ts.URL+"/v1/run", map[string]any{"source": `
int main() {
	int n = 100;
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], 1.0);
	return 0;
}`, "threads": 8})
		postJSON(t, ts.URL+"/v1/run",
			map[string]any{"source": bigParallelSrc, "threads": 8, "timeout_ms": 20})
	}
	// Pool workers exit cooperatively after Close; idle HTTP conns also
	// settle. Allow slack for both.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+6 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at start, %d after the crash storm", base, runtime.NumGoroutine())
}
