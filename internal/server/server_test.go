// End-to-end HTTP tests: the full compile service over httptest —
// cache hits reflected in /metrics, run timeouts honored via context
// cancellation, malformed source rejected with diagnostics, and
// concurrent identical requests coalesced into one compilation.
package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/server"
)

const okSrc = `
int main() {
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [8, 8]) genarray([8, 8], 1.0 * i + j);
	float s = with ([0] <= [k] < [8]) fold(+, 0.0, m[k, k]);
	print(s);
	return 0;
}
`

const spinSrc = `
int main() {
	int i = 0;
	while (i < 2000000000)
		i = i + 1;
	return 0;
}
`

func newTestServer(t *testing.T, cfg server.Config) (*httptest.Server, *driver.Driver) {
	t.Helper()
	if cfg.Driver == nil {
		cfg.Driver = driver.New()
	}
	ts := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, cfg.Driver
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestCompileMissThenHitReflectedInMetrics(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	req := map[string]any{"source": okSrc, "par": "none"}

	code, first := postJSON(t, ts.URL+"/v1/compile", req)
	if code != http.StatusOK {
		t.Fatalf("first compile: %d %v", code, first)
	}
	if first["cached"] != false || !strings.Contains(first["output"].(string), "u_main") {
		t.Fatalf("first compile response: %v", first["cached"])
	}

	code, second := postJSON(t, ts.URL+"/v1/compile", req)
	if code != http.StatusOK || second["cached"] != true {
		t.Fatalf("second compile: %d cached=%v", code, second["cached"])
	}
	if second["output"] != first["output"] || second["key"] != first["key"] {
		t.Fatal("cached artifact differs")
	}

	var m struct {
		CompileRequests int64                  `json:"compile_requests"`
		Driver          driver.MetricsSnapshot `json:"driver"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if m.CompileRequests != 2 || m.Driver.CompileHits != 1 || m.Driver.CompileMisses != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	// The warm request skipped every pipeline stage: stage histograms
	// saw exactly one parse/check/emit, while the whole-compile
	// histogram saw both requests.
	if m.Driver.ParseLatency.Count != 1 || m.Driver.EmitLatency.Count != 1 ||
		m.Driver.CompileLatency.Count != 2 {
		t.Fatalf("stage counts: parse=%d emit=%d compile=%d",
			m.Driver.ParseLatency.Count, m.Driver.EmitLatency.Count, m.Driver.CompileLatency.Count)
	}
}

func TestConcurrentIdenticalRequestsCompileOnce(t *testing.T) {
	ts, d := newTestServer(t, server.Config{})
	const n = 12
	raw, _ := json.Marshal(map[string]any{"source": okSrc})
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := d.Metrics().Snapshot()
	if m.CompileExecutions != 1 {
		t.Fatalf("pipeline executed %d times for %d identical concurrent requests", m.CompileExecutions, n)
	}
	if m.CompileMisses != 1 || m.CompileHits+m.CompileCoalesced != n-1 {
		t.Fatalf("cache accounting: %+v", m)
	}
}

func TestRunTimeoutKeepsServerHealthy(t *testing.T) {
	ts, d := newTestServer(t, server.Config{DefaultTimeout: 30 * time.Second})
	start := time.Now()
	code, body := postJSON(t, ts.URL+"/v1/run",
		map[string]any{"source": spinSrc, "timeout_ms": 150})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("runaway run: status %d body %v", code, body)
	}
	if !strings.Contains(body["error"].(string), "timed out") {
		t.Fatalf("error = %v", body["error"])
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout response took %s", elapsed)
	}

	// The server stays healthy and can still run programs.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after timeout: %v %v", err, resp)
	}
	resp.Body.Close()
	code, ok := postJSON(t, ts.URL+"/v1/run", map[string]any{"source": okSrc, "threads": 2})
	if code != http.StatusOK || ok["exit_code"] != float64(0) {
		t.Fatalf("run after timeout: %d %v", code, ok)
	}
	if got := strings.TrimSpace(ok["stdout"].(string)); got != "56" {
		t.Fatalf("stdout = %q, want 56", got)
	}
	if m := d.Metrics().Snapshot(); m.RunsCancelled != 1 {
		t.Fatalf("RunsCancelled = %d", m.RunsCancelled)
	}
}

func TestMalformedSourceIs4xxWithDiagnostics(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	// A scan-level parse error: the context-aware scanner reports the
	// position and offending text.
	code, body := postJSON(t, ts.URL+"/v1/compile",
		map[string]any{"name": "oops.xc", "source": "int main() { return 0 0; }"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("parse error: status %d", code)
	}
	diags, _ := body["diagnostics"].([]any)
	if len(diags) == 0 || !strings.Contains(diags[0].(string), "oops.xc:1:") {
		t.Fatalf("diagnostics = %v", body["diagnostics"])
	}

	// A semantic error carries the checker's diagnostics.
	code, body = postJSON(t, ts.URL+"/v1/compile",
		map[string]any{"source": "int main() { return zzz; }"})
	if code != http.StatusUnprocessableEntity || !strings.Contains(fmt.Sprint(body["diagnostics"]), "undeclared") {
		t.Fatalf("semantic error: %d %v", code, body)
	}

	// Unparseable JSON is a plain 400.
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", resp.StatusCode)
	}

	// The run endpoint rejects bad source the same way.
	code, _ = postJSON(t, ts.URL+"/v1/run", map[string]any{"source": "int main() { return zzz; }"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("run of bad source: status %d", code)
	}
}

func TestAnalysesEndpointMatchesDriverReport(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	var rep driver.AnalysisReport
	if code := getJSON(t, ts.URL+"/v1/analyses", &rep); code != http.StatusOK {
		t.Fatalf("/v1/analyses: %d", code)
	}
	if rep.Unexpected != 0 || !rep.CompositionOK || !rep.SemCompositionOK {
		t.Fatalf("served report: %+v", rep)
	}
	if len(rep.MDA) != 6 || len(rep.MWDA) != 3 {
		t.Fatalf("served report shape: %d MDA, %d MWDA", len(rep.MDA), len(rep.MWDA))
	}
	want := driver.Analyses()
	got, _ := json.Marshal(rep)
	exp, _ := json.Marshal(want)
	if !bytes.Equal(got, exp) {
		t.Fatal("served analyses differ from driver.Analyses()")
	}
}

func TestMethodAndValidationErrors(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	resp, err := http.Get(ts.URL + "/v1/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/compile: %d", resp.StatusCode)
	}
	code, body := postJSON(t, ts.URL+"/v1/compile", map[string]any{"source": okSrc, "extensions": "bogus"})
	if code != http.StatusBadRequest || !strings.Contains(body["error"].(string), "unknown extension") {
		t.Fatalf("bad extensions: %d %v", code, body)
	}
	code, _ = postJSON(t, ts.URL+"/v1/compile", map[string]any{"source": okSrc, "par": "bogus"})
	if code != http.StatusBadRequest {
		t.Fatalf("bad par: %d", code)
	}
	code, _ = postJSON(t, ts.URL+"/v1/compile", map[string]any{"par": "none"})
	if code != http.StatusBadRequest {
		t.Fatalf("missing source: %d", code)
	}
}
