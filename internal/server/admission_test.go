// White-box tests of the bounded run queue: slot/queue accounting,
// deadline sheds, drain semantics, the degraded-health window, and the
// retry estimate.
package server

import (
	"context"
	"testing"
	"time"
)

func TestAdmitFastPathAndQueueFull(t *testing.T) {
	a := newAdmitter(1, 2, time.Second)
	release, res := a.admit(context.Background(), time.Second)
	if res != admitted {
		t.Fatalf("first admit = %v", res)
	}

	// Two waiters fill the queue.
	type got struct {
		release func()
		res     admitResult
	}
	waiters := make(chan got, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, v := a.admit(context.Background(), time.Second)
			waiters <- got{r, v}
		}()
	}
	// Wait for both to be queued before overflowing.
	deadline := time.Now().Add(2 * time.Second)
	for a.queued.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 2", a.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if _, res := a.admit(context.Background(), time.Second); res != shedQueueFull {
		t.Fatalf("overflow admit = %v, want shedQueueFull", res)
	}
	if a.shed.Load() != 1 || a.recentSheds() != 1 {
		t.Fatalf("shed counters = %d / %d", a.shed.Load(), a.recentSheds())
	}

	// Releasing the slot admits the queued waiters in turn.
	release()
	w1 := <-waiters
	if w1.res != admitted {
		t.Fatalf("queued waiter = %v", w1.res)
	}
	w1.release()
	w2 := <-waiters
	if w2.res != admitted {
		t.Fatalf("second queued waiter = %v", w2.res)
	}
	w2.release()
	if a.queued.Load() != 0 {
		t.Fatalf("queued = %d after drain of waiters", a.queued.Load())
	}
}

func TestAdmitShedsAtRequestDeadline(t *testing.T) {
	a := newAdmitter(1, 4, time.Minute)
	release, _ := a.admit(context.Background(), time.Second)
	defer release()
	start := time.Now()
	// The wait budget is min(maxWait, the request's own timeout): a run
	// that cannot start before its deadline is pointless to queue.
	_, res := a.admit(context.Background(), 50*time.Millisecond)
	if res != shedDeadline {
		t.Fatalf("res = %v, want shedDeadline", res)
	}
	if el := time.Since(start); el < 40*time.Millisecond || el > 2*time.Second {
		t.Fatalf("deadline shed after %s", el)
	}
	if a.queued.Load() != 0 {
		t.Fatalf("queued = %d after deadline shed", a.queued.Load())
	}
}

func TestAdmitClientGoneIsNotAShed(t *testing.T) {
	a := newAdmitter(1, 4, time.Minute)
	release, _ := a.admit(context.Background(), time.Second)
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan admitResult, 1)
	go func() {
		_, res := a.admit(ctx, time.Minute)
		done <- res
	}()
	for a.queued.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if res := <-done; res != clientGone {
		t.Fatalf("res = %v, want clientGone", res)
	}
	if a.shed.Load() != 0 {
		t.Fatal("a disconnected client must not count as a shed")
	}
}

func TestDrainShedsQueuedAndRefusesNew(t *testing.T) {
	a := newAdmitter(1, 4, time.Minute)
	release, _ := a.admit(context.Background(), time.Second)
	done := make(chan admitResult, 1)
	go func() {
		_, res := a.admit(context.Background(), time.Minute)
		done <- res
	}()
	for a.queued.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	a.drain()
	a.drain() // idempotent
	if res := <-done; res != shedDraining {
		t.Fatalf("queued waiter on drain = %v, want shedDraining", res)
	}
	if _, res := a.admit(context.Background(), time.Second); res != shedDraining {
		t.Fatalf("post-drain admit = %v, want shedDraining", res)
	}
	// The in-flight slot is untouched; releasing it is still safe.
	release()
}

func TestRetryAfterScalesAndClamps(t *testing.T) {
	a := newAdmitter(1, 100, time.Minute)
	if got := a.retryAfter(0); got != 100*time.Millisecond {
		t.Fatalf("empty-queue default = %s", got)
	}
	a.queued.Store(10)
	if got := a.retryAfter(200); got != 2200*time.Millisecond {
		t.Fatalf("10 queued × 200ms = %s, want 2.2s", got)
	}
	a.queued.Store(1_000_000)
	if got := a.retryAfter(200); got != 10*time.Second {
		t.Fatalf("upper clamp = %s", got)
	}
	a.queued.Store(0)
	if got := a.retryAfter(0.001); got != 50*time.Millisecond {
		t.Fatalf("lower clamp = %s", got)
	}
}

func TestRecentShedsWindowExpires(t *testing.T) {
	a := newAdmitter(1, 1, time.Minute)
	a.recordShed()
	if a.recentSheds() != 1 {
		t.Fatalf("recentSheds = %d", a.recentSheds())
	}
	// Age the bucket artificially past the window instead of sleeping.
	a.shedMu.Lock()
	for i := range a.secs {
		if a.secs[i] != 0 {
			a.secs[i] -= shedWindowSeconds + 1
		}
	}
	a.shedMu.Unlock()
	if a.recentSheds() != 0 {
		t.Fatalf("recentSheds = %d after window expiry", a.recentSheds())
	}
	if a.shed.Load() != 1 {
		t.Fatal("cumulative shed counter must not expire")
	}
}
