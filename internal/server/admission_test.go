// White-box tests of the tenant-partitioned run queue: slot/queue
// accounting, deadline sheds, drain semantics, the degraded-health
// window, the retry estimate and its configurable floor, per-tenant
// caps and queue shares, weighted-fair dequeue, and the exactly-once
// slot release under drain/deadline/grant races.
package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/tenant"
)

func TestAdmitFastPathAndQueueFull(t *testing.T) {
	a := newAdmitter(1, 2, time.Second, 0)
	release, res := a.admit(context.Background(), time.Second)
	if res != admitted {
		t.Fatalf("first admit = %v", res)
	}

	// Two waiters fill the queue.
	type got struct {
		release func()
		res     admitResult
	}
	waiters := make(chan got, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, v := a.admit(context.Background(), time.Second)
			waiters <- got{r, v}
		}()
	}
	// Wait for both to be queued before overflowing.
	deadline := time.Now().Add(2 * time.Second)
	for a.queued.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 2", a.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if _, res := a.admit(context.Background(), time.Second); res != shedQueueFull {
		t.Fatalf("overflow admit = %v, want shedQueueFull", res)
	}
	if a.shed.Load() != 1 || a.recentSheds() != 1 {
		t.Fatalf("shed counters = %d / %d", a.shed.Load(), a.recentSheds())
	}

	// Releasing the slot admits the queued waiters in turn.
	release()
	w1 := <-waiters
	if w1.res != admitted {
		t.Fatalf("queued waiter = %v", w1.res)
	}
	w1.release()
	w2 := <-waiters
	if w2.res != admitted {
		t.Fatalf("second queued waiter = %v", w2.res)
	}
	w2.release()
	if a.queued.Load() != 0 {
		t.Fatalf("queued = %d after drain of waiters", a.queued.Load())
	}
}

func TestAdmitShedsAtRequestDeadline(t *testing.T) {
	a := newAdmitter(1, 4, time.Minute, 0)
	release, _ := a.admit(context.Background(), time.Second)
	defer release()
	start := time.Now()
	// The wait budget is min(maxWait, the request's own timeout): a run
	// that cannot start before its deadline is pointless to queue.
	_, res := a.admit(context.Background(), 50*time.Millisecond)
	if res != shedDeadline {
		t.Fatalf("res = %v, want shedDeadline", res)
	}
	if el := time.Since(start); el < 40*time.Millisecond || el > 2*time.Second {
		t.Fatalf("deadline shed after %s", el)
	}
	if a.queued.Load() != 0 {
		t.Fatalf("queued = %d after deadline shed", a.queued.Load())
	}
}

func TestAdmitClientGoneIsNotAShed(t *testing.T) {
	a := newAdmitter(1, 4, time.Minute, 0)
	release, _ := a.admit(context.Background(), time.Second)
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan admitResult, 1)
	go func() {
		_, res := a.admit(ctx, time.Minute)
		done <- res
	}()
	for a.queued.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if res := <-done; res != clientGone {
		t.Fatalf("res = %v, want clientGone", res)
	}
	if a.shed.Load() != 0 {
		t.Fatal("a disconnected client must not count as a shed")
	}
}

func TestDrainShedsQueuedAndRefusesNew(t *testing.T) {
	a := newAdmitter(1, 4, time.Minute, 0)
	release, _ := a.admit(context.Background(), time.Second)
	done := make(chan admitResult, 1)
	go func() {
		_, res := a.admit(context.Background(), time.Minute)
		done <- res
	}()
	for a.queued.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	a.drain()
	a.drain() // idempotent
	if res := <-done; res != shedDraining {
		t.Fatalf("queued waiter on drain = %v, want shedDraining", res)
	}
	if _, res := a.admit(context.Background(), time.Second); res != shedDraining {
		t.Fatalf("post-drain admit = %v, want shedDraining", res)
	}
	// The in-flight slot is untouched; releasing it is still safe.
	release()
}

func TestRetryAfterScalesAndClamps(t *testing.T) {
	a := newAdmitter(1, 100, time.Minute, 0)
	// No completed run yet (mean 0) must still yield a non-zero
	// estimate — a zero invites an immediate thundering-herd retry.
	if got := a.retryAfter(0); got != defaultMinRetryAfter {
		t.Fatalf("empty-queue zero-mean estimate = %s, want the %s floor", got, defaultMinRetryAfter)
	}
	a.queued.Store(10)
	if got := a.retryAfter(200); got != 2200*time.Millisecond {
		t.Fatalf("10 queued × 200ms = %s, want 2.2s", got)
	}
	a.queued.Store(1_000_000)
	if got := a.retryAfter(200); got != 10*time.Second {
		t.Fatalf("upper clamp = %s", got)
	}
	a.queued.Store(0)
	if got := a.retryAfter(0.001); got != defaultMinRetryAfter {
		t.Fatalf("lower clamp = %s", got)
	}
}

func TestRetryAfterFloorIsConfigurable(t *testing.T) {
	a := newAdmitter(1, 100, time.Minute, 250*time.Millisecond)
	if got := a.retryAfter(0); got != 250*time.Millisecond {
		t.Fatalf("configured floor: %s, want 250ms", got)
	}
	// With queue depth the floored mean scales: (4+1) × 250ms.
	a.queued.Store(4)
	if got := a.retryAfter(0); got != 1250*time.Millisecond {
		t.Fatalf("floored mean × depth = %s, want 1.25s", got)
	}
	// A real observed mean above the floor is used unchanged.
	if got := a.retryAfter(400); got != 2*time.Second {
		t.Fatalf("observed mean × depth = %s, want 2s", got)
	}
}

func TestRecentShedsWindowExpires(t *testing.T) {
	a := newAdmitter(1, 1, time.Minute, 0)
	a.recordShed(nil)
	if a.recentSheds() != 1 {
		t.Fatalf("recentSheds = %d", a.recentSheds())
	}
	// Age the bucket artificially past the window instead of sleeping.
	a.shedMu.Lock()
	for i := range a.secs {
		if a.secs[i] != 0 {
			a.secs[i] -= shedWindowSeconds + 1
		}
	}
	a.shedMu.Unlock()
	if a.recentSheds() != 0 {
		t.Fatalf("recentSheds = %d after window expiry", a.recentSheds())
	}
	if a.shed.Load() != 1 {
		t.Fatal("cumulative shed counter must not expire")
	}
}

// --- tenancy ---

// TestTenantRunCapAndQueueShare: a tenant at its own run cap with its
// queue share full is refused with a quota shed even though the
// server has free capacity, and another tenant still admits.
func TestTenantRunCapAndQueueShare(t *testing.T) {
	a := newAdmitter(4, 8, time.Minute, 0)
	capped := tenant.Quota{MaxConcurrentRuns: 1, QueueShare: 1}

	relA, res := a.admitTenant(context.Background(), "a", capped, time.Minute)
	if res != admitted {
		t.Fatalf("first a admit = %v", res)
	}
	// Second request queues (cap 1 reached), despite 3 free slots.
	queued := make(chan admitResult, 1)
	go func() {
		r, v := a.admitTenant(context.Background(), "a", capped, time.Minute)
		if v == admitted {
			defer r()
		}
		queued <- v
	}()
	waitQueued(t, a, 1)
	// Third request overflows a's share of 1: quota shed, not global.
	if _, res := a.admitTenant(context.Background(), "a", capped, time.Minute); res != shedTenantQuota {
		t.Fatalf("over-share admit = %v, want shedTenantQuota", res)
	}
	if got := a.quotaShedsFor("a"); got != 1 {
		t.Fatalf("quota sheds for a = %d", got)
	}
	// A different tenant sails through the free capacity.
	relB, res := a.admitTenant(context.Background(), "b", tenant.Quota{}, time.Minute)
	if res != admitted {
		t.Fatalf("b admit = %v, want admitted", res)
	}
	relB()
	// Releasing a's slot grants its queued waiter.
	relA()
	if res := <-queued; res != admitted {
		t.Fatalf("queued a waiter = %v", res)
	}
}

// TestWeightedFairDequeue: with one tenant holding slots and flooding
// the queue, a second tenant's single waiter — enqueued LAST — must be
// granted first when a slot frees: fair dequeue, not FIFO.
func TestWeightedFairDequeue(t *testing.T) {
	a := newAdmitter(2, 16, time.Minute, 0)
	h1, res := a.admitTenant(context.Background(), "noisy", tenant.Quota{}, time.Minute)
	if res != admitted {
		t.Fatalf("holder 1 = %v", res)
	}
	h2, res := a.admitTenant(context.Background(), "noisy", tenant.Quota{}, time.Minute)
	if res != admitted {
		t.Fatalf("holder 2 = %v", res)
	}

	grants := make(chan string, 8)
	var wg sync.WaitGroup
	enqueue := func(name string) {
		before := a.queued.Load()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, v := a.admitTenant(context.Background(), name, tenant.Quota{}, time.Minute)
			if v != admitted {
				grants <- "shed:" + name
				return
			}
			grants <- name
			// Hold the grant so running counts stay observable.
			<-a.drainCh
			r()
		}()
		waitQueuedAbove(t, a, before)
	}
	// Three noisy waiters first, then one quiet waiter — strictly
	// younger than the whole noisy backlog.
	for i := 0; i < 3; i++ {
		enqueue("noisy")
	}
	enqueue("quiet")

	// Free one slot. Noisy still holds a slot, quiet holds none:
	// quiet's score (0+1)/1 beats noisy's (1+1)/1, so the youngest
	// waiter in the queue wins the slot. Global FIFO would have run
	// noisy's entire backlog first.
	h1()
	if first := <-grants; first != "quiet" {
		t.Fatalf("first grant after release = %q, want quiet", first)
	}
	a.drain() // sheds the remaining noisy backlog, releases holders
	h2()
	wg.Wait()
}

// TestWeightBiasesDispatch: a weight-2 tenant drains its backlog at
// twice the rate of a weight-1 tenant under a one-slot server.
func TestWeightBiasesDispatch(t *testing.T) {
	a := newAdmitter(1, 16, time.Minute, 0)
	hold, _ := a.admitTenant(context.Background(), "seed", tenant.Quota{}, time.Minute)

	heavy := tenant.Quota{Weight: 2}
	light := tenant.Quota{Weight: 1}
	order := make(chan string, 6)
	var wg sync.WaitGroup
	enqueue := func(name string, q tenant.Quota) {
		before := a.queued.Load()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, v := a.admitTenant(context.Background(), name, q, time.Minute)
			if v != admitted {
				order <- "shed"
				return
			}
			order <- name
			// Hold all grants until the end so running counts
			// accumulate and the weighted scores diverge.
			<-a.drainCh
			r()
		}()
		waitQueuedAbove(t, a, before)
	}
	enqueue("heavy", heavy)
	enqueue("heavy", heavy)
	enqueue("heavy", heavy)
	enqueue("light", light)
	enqueue("light", light)

	// Free the seed slot, then keep raising capacity one slot at a
	// time by bumping the limit — each bump dispatches exactly one
	// grant in weighted-fair order.
	hold()
	grantOrder := []string{<-order}
	for i := 0; i < 4; i++ {
		a.mu.Lock()
		a.slots++
		a.dispatchLocked()
		a.mu.Unlock()
		grantOrder = append(grantOrder, <-order)
	}
	a.drain() // releases the holders
	wg.Wait()

	// Scores: heavy starts (0+1)/2 = 0.5 vs light 1.0 → heavy;
	// then heavy (1+1)/2 = 1.0 ties light 1.0 → FIFO → heavy;
	// then heavy 1.5 vs light 1.0 → light;
	// then heavy 1.5 vs light 2.0 → heavy;
	// then light.
	want := []string{"heavy", "heavy", "light", "heavy", "light"}
	for i := range want {
		if grantOrder[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", grantOrder, want)
		}
	}
}

// TestDrainRacesQueueDeadline (satellite): Drain() firing at the same
// instant a queued waiter's deadline expires must resolve the waiter
// exactly once — one shed recorded, the queue emptied, no slot leaked
// and no double release — whichever path wins.
func TestDrainRacesQueueDeadline(t *testing.T) {
	for i := 0; i < 50; i++ {
		a := newAdmitter(1, 4, time.Minute, 0)
		release, _ := a.admit(context.Background(), time.Second)
		done := make(chan admitResult, 1)
		go func() {
			_, res := a.admit(context.Background(), time.Millisecond)
			done <- res
		}()
		waitQueuedOrShed(t, a)
		// Race the two resolution paths.
		go a.drain()
		res := <-done
		if res != shedDeadline && res != shedDraining {
			t.Fatalf("iter %d: res = %v, want a shed", i, res)
		}
		if got := a.shed.Load(); got != 1 {
			t.Fatalf("iter %d: shed = %d, want exactly 1", i, got)
		}
		if a.queued.Load() != 0 {
			t.Fatalf("iter %d: queued = %d after shed", i, a.queued.Load())
		}
		release()
		release() // release stays idempotent
		a.mu.Lock()
		if a.running != 0 {
			t.Fatalf("iter %d: running = %d after release", i, a.running)
		}
		a.mu.Unlock()
	}
}

// TestGrantRacesQueueDeadline: a release dispatching a grant at the
// same instant the waiter's deadline fires must not leak the slot —
// whichever way the race lands, capacity returns to exactly one free
// slot and at most one shed is recorded.
func TestGrantRacesQueueDeadline(t *testing.T) {
	for i := 0; i < 200; i++ {
		a := newAdmitter(1, 4, time.Minute, 0)
		release, _ := a.admit(context.Background(), time.Second)
		done := make(chan admitResult, 1)
		go func() {
			r, res := a.admit(context.Background(), time.Millisecond)
			if res == admitted {
				r()
			}
			done <- res
		}()
		waitQueuedOrShed(t, a)
		// Release right around the waiter's deadline: the dispatch may
		// grant it just as its timer fires.
		release()
		res := <-done
		if res != admitted && res != shedDeadline {
			t.Fatalf("iter %d: res = %v", i, res)
		}
		// Whatever happened, the slot must be whole again.
		a.mu.Lock()
		running, queued := a.running, a.queued.Load()
		a.mu.Unlock()
		if running != 0 || queued != 0 {
			t.Fatalf("iter %d: res=%v running=%d queued=%d, slot leaked", i, res, running, queued)
		}
		if shed := a.shed.Load(); shed > 1 {
			t.Fatalf("iter %d: %d sheds for one waiter", i, shed)
		}
	}
}

func waitQueued(t *testing.T, a *admitter, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want %d", a.queued.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitQueuedAbove waits for the queue to grow past a prior depth;
// enqueue helpers use it to make arrival (seq) order deterministic.
func waitQueuedAbove(t *testing.T, a *admitter, before int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued.Load() <= before {
		if time.Now().After(deadline) {
			t.Fatalf("queued stuck at %d", a.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// waitQueuedOrShed waits until a lone waiter is either queued or has
// already resolved itself as a shed — race tests use millisecond
// deadlines the poll loop can legitimately miss.
func waitQueuedOrShed(t *testing.T, a *admitter) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued.Load() == 0 && a.shed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter neither queued nor shed")
		}
		time.Sleep(time.Millisecond)
	}
}
