// HTTP surface of the peer cache-fill protocol: GET serves the
// digest-framed artifact, PUT imports one (verifying the digest), and
// the shard identity header rides on every response.
package server_test

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/server"
)

func TestArtifactRoundTripBetweenShards(t *testing.T) {
	a, _ := newTestServer(t, server.Config{ShardID: "s0"})
	b, bd := newTestServer(t, server.Config{ShardID: "s1"})

	body := []byte(`{"source": ` + jsonString(okSrc) + `}`)
	key, ok := server.CompileKeyForBody(body)
	if !ok {
		t.Fatal("no compile key for a valid body")
	}

	code, res := postJSON(t, a.URL+"/v1/compile", map[string]any{"source": okSrc})
	if code != http.StatusOK {
		t.Fatalf("compile on A: %d %v", code, res)
	}
	if res["key"] != key {
		t.Fatalf("CompileKeyForBody=%s, server key=%v — peer fill would miss", key, res["key"])
	}

	resp, err := http.Get(a.URL + "/v1/artifact/" + key)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET artifact on A: %d %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("artifact content type: %q", resp.Header.Get("Content-Type"))
	}
	if resp.Header.Get("X-CM-Shard") != "s0" {
		t.Fatalf("shard header: %q", resp.Header.Get("X-CM-Shard"))
	}

	req, _ := http.NewRequest(http.MethodPut, b.URL+"/v1/artifact/"+key, bytes.NewReader(raw))
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT artifact on B: %d", putResp.StatusCode)
	}

	// B now serves the compile from its imported artifact: cached, no
	// pipeline execution.
	code, res = postJSON(t, b.URL+"/v1/compile", map[string]any{"source": okSrc})
	if code != http.StatusOK || res["cached"] != true {
		t.Fatalf("compile on B after fill: %d cached=%v", code, res["cached"])
	}
	if n := bd.Metrics().CompileExecutions.Load(); n != 0 {
		t.Fatalf("B executed %d compiles despite the peer fill", n)
	}
}

func TestArtifactRejectsBadKeysAndBodies(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})

	resp, err := http.Get(ts.URL + "/v1/artifact/not-hex")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: %d, want 400", resp.StatusCode)
	}

	missing := strings.Repeat("ab", 32)
	resp, err = http.Get(ts.URL + "/v1/artifact/" + missing)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: %d, want 404", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/artifact/"+missing,
		strings.NewReader("deadbeef\nnot an artifact"))
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT: %d, want 400", putResp.StatusCode)
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/artifact/"+missing, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, delResp.Body)
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusMethodNotAllowed || delResp.Header.Get("Allow") == "" {
		t.Fatalf("DELETE: %d Allow=%q, want 405 with Allow", delResp.StatusCode, delResp.Header.Get("Allow"))
	}
}

// jsonString marshals a Go string as a JSON string literal.
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteRune(r)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
