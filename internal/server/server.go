// Package server turns the driver pipeline into
// compilation-as-a-service: an HTTP JSON API serving concurrent
// compile and run requests over one shared content-addressed cache.
//
// Endpoints:
//
//	POST /v1/compile   translate extended-C to parallel C (or AST)
//	POST /v1/run       execute a program on the parallel interpreter
//	POST /v1/vet       cmvet static analysis: structured findings
//	GET  /v1/analyses  the §VI modular analysis report (memoized)
//	GET  /v1/artifact/{key}  export a compile artifact to a fleet peer
//	PUT  /v1/artifact/{key}  import a digest-verified peer artifact
//	GET  /healthz      liveness probe (also the cmgate shard probe)
//	GET  /metrics      request counters, cache ratios, stage latencies
//
// Interpreter executions go through admission control (admission.go):
// MaxConcurrentRuns execute, a bounded deadline-aware queue waits, and
// everything beyond that is shed with 429 + Retry-After instead of
// pinning a goroutine — aggregate overload degrades service, never
// availability. Admitted runs execute under a per-request deadline
// threaded into the interpreter's eval loop via context.Context, so a
// runaway program times out without taking the server down. Run
// requests touch no server filesystem: readMatrix and writeMatrix are
// confined to an in-memory, per-request file map.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cgen"
	"repro/internal/driver"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/source"
	"repro/internal/tenant"
)

// Config parameterizes a Server. Zero values select the defaults.
type Config struct {
	// Driver is the shared pipeline + cache (required; New fills in a
	// fresh one if nil).
	Driver *driver.Driver
	// MaxConcurrentRuns bounds simultaneous interpreter executions;
	// defaults to runtime.GOMAXPROCS(0), the internal/par pool's own
	// default worker count.
	MaxConcurrentRuns int
	// DefaultTimeout applies to run requests that specify none;
	// MaxTimeout clamps what a request may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSourceBytes bounds request bodies (default 1 MiB).
	MaxSourceBytes int64
	// MaxCells caps the matrix cells one run may allocate; requests
	// asking for more (or for nothing) are clamped to it. Defaults to
	// 1<<26 cells (512 MiB of float64), so one adversarial genarray
	// cannot OOM the daemon.
	MaxCells int64
	// RunQueueSize bounds how many run requests may wait for a slot
	// beyond the MaxConcurrentRuns executing; arrivals past it are shed
	// with 429. Defaults to 4×MaxConcurrentRuns.
	RunQueueSize int
	// MaxQueueWait caps how long a request may wait for admission
	// (each request actually waits min(MaxQueueWait, its own execution
	// timeout) — a run that cannot start before its deadline is shed,
	// not left to occupy the queue). Defaults to DefaultTimeout.
	MaxQueueWait time.Duration
	// DefaultEngine selects the execution engine for run requests that
	// specify none: "vm" (the default) or "tree".
	DefaultEngine string
	// ShardID, when set, labels this instance in an X-CM-Shard response
	// header on every reply. The cmgate router and the chaos harness use
	// it to attribute responses to fleet members.
	ShardID string
	// Tenants is the API-key registry (tenant.LoadFile). Nil keeps the
	// pre-tenancy zero-config behavior: every request is the anonymous
	// tenant, nothing is authenticated or rate-limited.
	Tenants *tenant.Registry
	// TrustGateHeader accepts the cmgate-stamped X-CM-Tenant identity
	// header instead of requiring a key on every routed request. Enable
	// only when the daemon is reachable exclusively through the gate —
	// the header is trivially forgeable on an open port.
	TrustGateHeader bool
	// MinRetryAfter floors the Retry-After estimate on shed responses
	// (default 50ms) so a server with no latency history never invites
	// an immediate retry storm.
	MinRetryAfter time.Duration
}

// TestHookRunBarrier, when non-nil, is called by handleRun while its
// admission slot is held, before execution. Chaos tests use it to pin
// runs at a barrier so queue occupancy is exact and observable; nil in
// production.
var TestHookRunBarrier func()

// Server handles the HTTP API over a shared driver.
type Server struct {
	cfg   Config
	d     *driver.Driver
	admit *admitter

	compileReqs  atomic.Int64
	runReqs      atomic.Int64
	vetReqs      atomic.Int64
	analysesReqs atomic.Int64
	clientErrors atomic.Int64
	runTimeouts  atomic.Int64
	inflightRuns atomic.Int64
	runTraps     atomic.Int64
	panicsCaught atomic.Int64
	rateLimited  atomic.Int64
	authRefused  atomic.Int64
	startedAt    time.Time

	trapMu sync.Mutex
	traps  map[string]int64 // per-TrapCode counts
}

// New builds a server; see Config for defaults.
func New(cfg Config) *Server {
	if cfg.Driver == nil {
		cfg.Driver = driver.New()
	}
	if cfg.MaxConcurrentRuns <= 0 {
		cfg.MaxConcurrentRuns = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.MaxSourceBytes <= 0 {
		cfg.MaxSourceBytes = 1 << 20
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = 1 << 26
	}
	if cfg.RunQueueSize <= 0 {
		cfg.RunQueueSize = 4 * cfg.MaxConcurrentRuns
	}
	if cfg.MaxQueueWait <= 0 {
		cfg.MaxQueueWait = cfg.DefaultTimeout
	}
	if cfg.DefaultEngine == "" {
		cfg.DefaultEngine = "vm"
	}
	return &Server{
		cfg:       cfg,
		d:         cfg.Driver,
		admit:     newAdmitter(cfg.MaxConcurrentRuns, cfg.RunQueueSize, cfg.MaxQueueWait, cfg.MinRetryAfter),
		startedAt: time.Now(),
		traps:     map[string]int64{},
	}
}

// Drain puts the server into graceful-shutdown mode: in-flight runs
// finish, queued runs are shed immediately with 429, and new run
// requests are shed on arrival. It returns when no runs remain in
// flight or ctx expires, whichever is first. Call before closing the
// HTTP listener so clients get structured sheds instead of connection
// resets.
func (s *Server) Drain(ctx context.Context) error {
	s.admit.drain()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for s.inflightRuns.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	return nil
}

// Handler returns the route mux wrapped in the recover middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", s.handleCompile)
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/vet", s.handleVet)
	mux.HandleFunc("/v1/analyses", s.handleAnalyses)
	mux.HandleFunc("/v1/artifact/", s.handleArtifact)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	var h http.Handler = mux
	if s.cfg.ShardID != "" {
		h = s.withShardID(h)
	}
	return s.withRecover(h)
}

// withShardID stamps every response with this instance's fleet
// identity, before the handler writes the status line.
func (s *Server) withShardID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-CM-Shard", s.cfg.ShardID)
		next.ServeHTTP(w, r)
	})
}

// withRecover is the last-resort backstop: the interpreter's trap
// layer should convert every program failure into an error, but if a
// panic ever escapes a handler anyway it is counted and answered with
// a 500 instead of killing the daemon's connection goroutine
// unhandled.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panicsCaught.Add(1)
				// Best effort — if the handler already wrote a status
				// this only appends to the body.
				writeJSON(w, http.StatusInternalServerError,
					errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// countTrap records a trap-coded run failure for /metrics.
func (s *Server) countTrap(code interp.TrapCode) {
	s.runTraps.Add(1)
	s.trapMu.Lock()
	s.traps[string(code)]++
	s.trapMu.Unlock()
}

func (s *Server) trapSnapshot() map[string]int64 {
	s.trapMu.Lock()
	defer s.trapMu.Unlock()
	if len(s.traps) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.traps))
	for k, v := range s.traps {
		out[k] = v
	}
	return out
}

// --- request/response shapes ---

type compileRequest struct {
	// Name labels diagnostics (default "request.xc").
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`
	// Extensions is the -ext syntax: "matrix,transform,rc,cilk", "all",
	// "none" (default "all").
	Extensions string `json:"extensions,omitempty"`
	// Emit is "c" (default) or "ast".
	Emit string `json:"emit,omitempty"`
	// Par is "pthread" (default), "omp" or "none".
	Par string `json:"par,omitempty"`
	// Optimize enables the §III-A.4 optimizations (default true).
	Optimize *bool `json:"optimize,omitempty"`
}

type compileResponse struct {
	Key         string              `json:"key"`
	Cached      bool                `json:"cached"`
	Output      string              `json:"output"`
	Diagnostics []string            `json:"diagnostics,omitempty"`
	Stages      driver.StageTimings `json:"stages"`
}

type runRequest struct {
	Name       string `json:"name,omitempty"`
	Source     string `json:"source"`
	Extensions string `json:"extensions,omitempty"`
	// Threads sizes the worker pool; <= 0 selects GOMAXPROCS.
	Threads int `json:"threads,omitempty"`
	// TimeoutMS is the execution deadline (default/clamped by server
	// config).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxSteps bounds interpreter steps (0 = unlimited).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// MaxCells bounds matrix cells the run may allocate; 0 or a value
	// above the server's cap selects the cap.
	MaxCells int64 `json:"max_cells,omitempty"`
	// Engine selects the execution engine: "vm" (default) or "tree";
	// empty selects the server's configured default.
	Engine string `json:"engine,omitempty"`
}

type runResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	// Engine is the engine that executed: "vm" or "tree" (the latter
	// also when the bytecode compiler fell back).
	Engine      string              `json:"engine"`
	ExitCode    int                 `json:"exit_code"`
	Stdout      string              `json:"stdout"`
	Diagnostics []string            `json:"diagnostics,omitempty"`
	Stages      driver.StageTimings `json:"stages"`
	DurationMS  float64             `json:"duration_ms"`
}

type vetRequest struct {
	Name       string `json:"name,omitempty"`
	Source     string `json:"source"`
	Extensions string `json:"extensions,omitempty"`
}

// vetResponse is the /v1/vet document, returned with 200 when the
// program passes (no error-severity findings) and 422 when it is
// rejected — the structured findings ride along either way. Findings
// carry stable codes (CM-SHAPE-*, CM-RC-*, CM-RACE, CM-SYNC-MISSING,
// CM-SPAWN-DEAD, ...; see the README's diagnostic table); race
// findings include a related span marking the outstanding spawn.
type vetResponse struct {
	Key         string              `json:"key"`
	Cached      bool                `json:"cached"`
	OK          bool                `json:"ok"`
	Findings    []source.Diagnostic `json:"findings"`
	Errors      int                 `json:"errors"`
	Diagnostics []string            `json:"diagnostics,omitempty"`
	Stages      driver.StageTimings `json:"stages"`
}

type errorResponse struct {
	Error       string   `json:"error"`
	Diagnostics []string `json:"diagnostics,omitempty"`
	// Trap is the stable trap code ("shape", "rc", "oom", "step",
	// "depth", "panic") when execution hit the crash-proofing layer;
	// Span is the source position of the failing construct.
	Trap string `json:"trap,omitempty"`
	Span string `json:"span,omitempty"`
	// RetryAfterMS accompanies a 429 shed: the server's estimate of
	// when capacity will free up (also sent as a Retry-After header,
	// in whole seconds). Tenant names the authenticated tenant the
	// refusal applies to.
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	Tenant       string `json:"tenant,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *Server) clientError(w http.ResponseWriter, code int, resp errorResponse) {
	s.clientErrors.Add(1)
	writeJSON(w, code, resp)
}

// shedResponse answers a load-shed run request: 429, a Retry-After
// header, and retry_after_ms in the body. The retry estimate scales
// with queue depth × observed mean run latency; quota sheds name the
// tenant so a noisy client's logs say whose limit was hit.
func (s *Server) shedResponse(w http.ResponseWriter, res admitResult, tenantName string) {
	retry := s.admit.retryAfter(s.d.Metrics().RunLatency.Snapshot().MeanUS / 1e3)
	reason := "run queue full"
	switch res {
	case shedDeadline:
		reason = "not admitted before the request deadline"
	case shedDraining:
		reason = "server draining for shutdown"
	case shedTenantQuota:
		reason = fmt.Sprintf("tenant %q concurrency quota exhausted", tenantName)
	}
	writeRetryAfter(w, retry)
	writeJSON(w, http.StatusTooManyRequests, errorResponse{
		Error:        fmt.Sprintf("%v: %s", ErrOverloaded, reason),
		Tenant:       tenantName,
		RetryAfterMS: int64(retry / time.Millisecond),
	})
}

// writeRetryAfter sets the header form of a backoff estimate (whole
// seconds, rounded up so it is never 0).
func writeRetryAfter(w http.ResponseWriter, retry time.Duration) {
	w.Header().Set("Retry-After", fmt.Sprint(int64((retry+time.Second-1)/time.Second)))
}

// resolveTenant authenticates a request against the key registry and
// charges the tenant's token bucket. With no registry configured it is
// a no-op returning a nil tenant (anonymous, unlimited). Requests that
// arrived through a trusted gate are identified by the X-CM-Tenant
// stamp and NOT charged again — the gate already spent a token. On a
// refusal (401 unknown key, 403 disabled tenant, 429 over rate) the
// structured response has been written and ok is false.
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) (tn *tenant.Tenant, ok bool) {
	tn, viaGate, err := s.cfg.Tenants.Resolve(r, s.cfg.TrustGateHeader)
	if err != nil {
		s.authRefused.Add(1)
		status := http.StatusUnauthorized
		var ae *tenant.AuthError
		if errors.As(err, &ae) {
			status = ae.Status
		}
		s.clientError(w, status, errorResponse{Error: err.Error()})
		return nil, false
	}
	if tn == nil || viaGate {
		return tn, true
	}
	if allow, retry := tn.Take(); !allow {
		s.rateLimited.Add(1)
		writeRetryAfter(w, retry)
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error:        fmt.Sprintf("tenant %q over rate limit", tn.Name()),
			Tenant:       tn.Name(),
			RetryAfterMS: int64(retry / time.Millisecond),
		})
		return nil, false
	}
	return tn, true
}

// decode parses a JSON body into v, enforcing the size limit.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.clientError(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorResponse{Error: fmt.Sprintf("method %s not allowed", r.Method)})
		return false
	}
	return true
}

// --- handlers ---

// buildCompileRequest maps the wire-format compile body (already
// decoded JSON) to the driver request, applying the handler's
// defaults. CompileKeyForBody builds on it so the cmgate router
// derives the same content-addressed cache key the shard will store
// the artifact under — the address peer cache-fill moves objects by.
func buildCompileRequest(req compileRequest) (driver.CompileRequest, error) {
	if req.Source == "" {
		return driver.CompileRequest{}, errors.New(`missing "source"`)
	}
	name := req.Name
	if name == "" {
		name = "request.xc"
	}
	if req.Extensions == "" {
		req.Extensions = "all"
	}
	exts, err := driver.ParseExtensions(req.Extensions)
	if err != nil {
		return driver.CompileRequest{}, err
	}
	if req.Par == "" {
		req.Par = "pthread"
	}
	par, err := driver.ParseParMode(req.Par)
	if err != nil {
		return driver.CompileRequest{}, err
	}
	if req.Emit != "" && req.Emit != "c" && req.Emit != "ast" {
		return driver.CompileRequest{}, fmt.Errorf("unknown emit kind %q (have: c, ast)", req.Emit)
	}
	optimize := req.Optimize == nil || *req.Optimize
	return driver.CompileRequest{
		Name: name, Source: req.Source, Exts: exts, Emit: req.Emit,
		Codegen: cgen.Options{Par: par, Optimize: optimize},
	}, nil
}

// CompileKeyForBody derives the artifact cache key for a raw compile
// request body, without compiling anything. The router uses it for
// peer cache-fill; ok is false when the body does not decode to a
// valid compile request (the shard will reject it with a 400 anyway).
func CompileKeyForBody(raw []byte) (key string, ok bool) {
	var req compileRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return "", false
	}
	dreq, err := buildCompileRequest(req)
	if err != nil {
		return "", false
	}
	return driver.CompileCacheKey(dreq), true
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.compileReqs.Add(1)
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if _, ok := s.resolveTenant(w, r); !ok {
		return
	}
	var req compileRequest
	if !s.decode(w, r, &req) {
		return
	}
	dreq, err := buildCompileRequest(req)
	if err != nil {
		s.clientError(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	// The request context rides into the driver: a client that is
	// already gone costs nothing, and one that disappears mid-request
	// cannot pin its slot behind a hung disk read.
	res := s.d.Compile(r.Context(), dreq)
	if res.Canceled {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "client went away"})
		return
	}
	if !res.OK {
		// Source the pipeline rejected: the parser's error-recovery
		// diagnostics (and any semantic errors) ride in the body.
		s.clientError(w, http.StatusUnprocessableEntity, errorResponse{
			Error: "compilation failed", Diagnostics: res.Diagnostics,
		})
		return
	}
	writeJSON(w, http.StatusOK, compileResponse{
		Key: res.Key, Cached: res.Cached, Output: res.Output,
		Diagnostics: res.Diagnostics, Stages: res.Stages,
	})
}

// handleArtifact is the fleet transfer endpoint:
//
//	GET /v1/artifact/{key}  digest-framed artifact bytes, or 404
//	PUT /v1/artifact/{key}  install a verified peer artifact, 204
//
// GET serves from the memory tier first, then the disk tier; PUT
// re-verifies the embedded digest before anything is installed, so a
// corrupted or hostile peer object can never poison the cache. Both
// directions exist for cmgate's peer cache-fill: after a shard loss
// the router copies artifacts to a key's new owner instead of letting
// it recompile.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/artifact/")
	if !driver.ValidArtifactKey(key) {
		s.clientError(w, http.StatusBadRequest,
			errorResponse{Error: "malformed artifact key (want 64 hex bytes)"})
		return
	}
	switch r.Method {
	case http.MethodGet:
		raw, ok := s.d.ExportArtifact(r.Context(), key)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "no artifact under key"})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
	case http.MethodPut:
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes*4))
		if err != nil {
			s.clientError(w, http.StatusBadRequest, errorResponse{Error: "artifact body: " + err.Error()})
			return
		}
		if err := s.d.ImportArtifact(key, raw); err != nil {
			s.clientError(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, PUT")
		writeJSON(w, http.StatusMethodNotAllowed,
			errorResponse{Error: fmt.Sprintf("method %s not allowed", r.Method)})
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.runReqs.Add(1)
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	var req runRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		s.clientError(w, http.StatusBadRequest, errorResponse{Error: `missing "source"`})
		return
	}
	name := req.Name
	if name == "" {
		name = "request.xc"
	}
	if req.Extensions == "" {
		req.Extensions = "all"
	}
	exts, err := driver.ParseExtensions(req.Extensions)
	if err != nil {
		s.clientError(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	maxCells := req.MaxCells
	if maxCells <= 0 || maxCells > s.cfg.MaxCells {
		maxCells = s.cfg.MaxCells
	}
	// The tenant's own cell cap clamps below the server-wide cap: a
	// request asking for more is clamped, not refused, mirroring how
	// the server cap has always behaved.
	tenantName, quota := tenant.Anonymous, tenant.Quota{}
	if tn != nil {
		tenantName, quota = tn.Name(), tn.Quota()
	}
	if quota.MaxCells > 0 && maxCells > quota.MaxCells {
		maxCells = quota.MaxCells
	}
	engine := req.Engine
	if engine == "" {
		engine = s.cfg.DefaultEngine
	}
	switch engine {
	case "vm", "tree":
	default:
		s.clientError(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("unknown engine %q (have: vm, tree)", req.Engine),
		})
		return
	}

	// Admission control: acquire an execution slot through the bounded,
	// deadline-aware, tenant-partitioned run queue, or shed now with a
	// structured backpressure signal (see admission.go).
	release, admit := s.admit.admitTenant(r.Context(), tenantName, quota, timeout)
	switch admit {
	case admitted:
		defer release()
	case clientGone:
		// The caller disconnected while queued; nothing useful can be
		// written, and it is not a shed — the server did not refuse work.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "client went away while queued"})
		return
	default:
		s.shedResponse(w, admit, tenantName)
		return
	}
	s.inflightRuns.Add(1)
	defer s.inflightRuns.Add(-1)
	if hook := TestHookRunBarrier; hook != nil {
		hook()
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var stdout bytes.Buffer
	t0 := time.Now()
	res, err := s.d.Run(ctx, driver.RunRequest{
		Name: name, Source: req.Source, Exts: exts,
		Threads: req.Threads, MaxSteps: req.MaxSteps, MaxCells: maxCells,
		Engine: engine, Tenant: tenantName,
		// No Dir + non-nil Files: file I/O stays in this request-local
		// in-memory map, never the server's filesystem.
		Files:  map[string]*matrix.Matrix{},
		Stdout: &stdout,
	})
	dur := time.Since(t0)
	if err != nil {
		if ctx.Err() != nil {
			s.runTimeouts.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{
				Error: fmt.Sprintf("execution timed out after %s: %v", timeout, err),
			})
			return
		}
		// Trap-coded failures get a structured response: the stable
		// code plus the failing construct's source span, so clients
		// can dispatch without parsing the message.
		var rte *interp.RuntimeError
		if errors.As(err, &rte) && rte.Trap != interp.TrapNone {
			s.countTrap(rte.Trap)
			s.clientError(w, http.StatusUnprocessableEntity, errorResponse{
				Error:       fmt.Sprintf("execution trapped: %v", err),
				Diagnostics: res.Diagnostics,
				Trap:        string(rte.Trap),
				Span:        rte.SpanString(),
			})
			return
		}
		s.clientError(w, http.StatusUnprocessableEntity, errorResponse{
			Error: fmt.Sprintf("execution failed: %v", err), Diagnostics: res.Diagnostics,
		})
		return
	}
	if !res.OK {
		s.clientError(w, http.StatusUnprocessableEntity, errorResponse{
			Error: "compilation failed", Diagnostics: res.Diagnostics,
		})
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		Key: res.Key, Cached: res.Cached, Engine: res.Engine, ExitCode: res.ExitCode,
		Stdout: stdout.String(), Diagnostics: res.Diagnostics,
		Stages: res.Stages, DurationMS: float64(dur) / float64(time.Millisecond),
	})
}

func (s *Server) handleVet(w http.ResponseWriter, r *http.Request) {
	s.vetReqs.Add(1)
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if _, ok := s.resolveTenant(w, r); !ok {
		return
	}
	var req vetRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		s.clientError(w, http.StatusBadRequest, errorResponse{Error: `missing "source"`})
		return
	}
	name := req.Name
	if name == "" {
		name = "request.xc"
	}
	if req.Extensions == "" {
		req.Extensions = "all"
	}
	exts, err := driver.ParseExtensions(req.Extensions)
	if err != nil {
		s.clientError(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	res := s.d.Vet(driver.VetRequest{Name: name, Source: req.Source, Exts: exts})
	resp := vetResponse{
		Key: res.Key, Cached: res.Cached, OK: res.OK,
		Findings: res.Findings, Errors: res.Errors,
		Diagnostics: res.Diagnostics, Stages: res.Stages,
	}
	if resp.Findings == nil {
		resp.Findings = []source.Diagnostic{}
	}
	if !res.OK {
		// Rejected program — frontend errors or error-severity findings.
		// The structured findings still ride in the body so clients can
		// show spans and codes.
		s.clientErrors.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnalyses(w http.ResponseWriter, r *http.Request) {
	s.analysesReqs.Add(1)
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, driver.Analyses())
}

// healthzResponse is the liveness document. Status is "ok" or
// "degraded": degraded means the daemon is alive and serving (still
// 200) but has shed runs within the last shedWindowSeconds — a signal
// for load balancers to prefer other replicas and for operators to
// look at queue sizing.
type healthzResponse struct {
	Status       string `json:"status"`
	QueueDepth   int64  `json:"run_queue_depth"`
	RecentSheds  int64  `json:"recent_sheds"`
	InflightRuns int64  `json:"inflight_runs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	recent := s.admit.recentSheds()
	status := "ok"
	if recent > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:       status,
		QueueDepth:   s.admit.queued.Load(),
		RecentSheds:  recent,
		InflightRuns: s.inflightRuns.Load(),
	})
}

// metricsSnapshot is the /metrics JSON document.
type metricsSnapshot struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	CompileRequests int64   `json:"compile_requests"`
	RunRequests     int64   `json:"run_requests"`
	VetRequests     int64   `json:"vet_requests"`
	AnalysisReqs    int64   `json:"analyses_requests"`
	ClientErrors    int64   `json:"client_errors"`
	RunTimeouts     int64   `json:"run_timeouts"`
	InflightRuns    int64   `json:"inflight_runs"`
	MaxRuns         int     `json:"max_concurrent_runs"`

	// Admission control: current waiters, the queue's capacity, and
	// requests refused with 429 (cumulative).
	RunQueueDepth int64 `json:"run_queue_depth"`
	RunQueueMax   int   `json:"run_queue_max"`
	RunsShed      int64 `json:"runs_shed"`

	// Tenancy: refusals at the front door, the live key-file
	// generation (0 = no registry), and per-tenant admission rows.
	RateLimited      int64                `json:"rate_limited"`
	AuthRefused      int64                `json:"auth_refused"`
	TenantGeneration int64                `json:"tenant_generation,omitempty"`
	Tenants          []TenantAdmissionRow `json:"tenants,omitempty"`

	// Crash-proofing counters: trap-coded run failures (total and by
	// code) and handler panics absorbed by the recover middleware.
	RunTraps        int64            `json:"run_traps"`
	Traps           map[string]int64 `json:"traps,omitempty"`
	PanicsRecovered int64            `json:"panics_recovered"`

	Driver driver.MetricsSnapshot `json:"driver"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, metricsSnapshot{
		UptimeSeconds:    time.Since(s.startedAt).Seconds(),
		CompileRequests:  s.compileReqs.Load(),
		RunRequests:      s.runReqs.Load(),
		VetRequests:      s.vetReqs.Load(),
		AnalysisReqs:     s.analysesReqs.Load(),
		ClientErrors:     s.clientErrors.Load(),
		RunTimeouts:      s.runTimeouts.Load(),
		InflightRuns:     s.inflightRuns.Load(),
		MaxRuns:          s.cfg.MaxConcurrentRuns,
		RunQueueDepth:    s.admit.queued.Load(),
		RunQueueMax:      s.cfg.RunQueueSize,
		RunsShed:         s.admit.shed.Load(),
		RateLimited:      s.rateLimited.Load(),
		AuthRefused:      s.authRefused.Load(),
		TenantGeneration: s.cfg.Tenants.Generation(),
		Tenants:          s.admit.tenantRows(),
		RunTraps:         s.runTraps.Load(),
		Traps:            s.trapSnapshot(),
		PanicsRecovered:  s.panicsCaught.Load(),
		Driver:           s.d.MetricsSnapshot(),
	})
}
