// Admission control for interpreter runs — since the tenancy PR,
// partitioned by tenant. The original server bounded *execution* with
// a bare semaphore but not *waiting*; PR 3 replaced that with a
// bounded, deadline-aware run queue. This revision splits that queue
// into per-tenant rings so one hostile or buggy tenant cannot occupy
// the whole thing:
//
//   - up to MaxConcurrentRuns requests execute fleet-wide, but a
//     tenant never holds more than its quota's MaxConcurrentRuns
//     execution slots;
//   - up to RunQueueSize more wait for a slot, but a tenant never
//     occupies more than its QueueShare waiter slots, each waiting at
//     most min(its own execution deadline, MaxQueueWait);
//   - freed slots are handed out by weighted-fair dequeue across the
//     tenants with waiters (fewest held slots per unit weight first,
//     FIFO within a tenant) instead of global FIFO, so a flood from
//     one tenant delays a well-behaved tenant by at most one run;
//   - everything else is shed immediately with 429, a Retry-After
//     header, and retry_after_ms in the body.
//
// The anonymous default tenant has a zero quota (every axis
// unlimited), so a server with no key file behaves exactly like the
// PR 3 single-ring admitter — zero-config use stays zero-config.
//
// Draining (graceful shutdown) sheds the queue and admits nothing new
// while in-flight runs finish. A sliding window over recent sheds
// feeds /healthz's "degraded" flag: still 200 — the daemon is serving
// — but load balancers and operators can see it is refusing work.
package server

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tenant"
)

// ErrOverloaded is the sentinel for a shed request: the run queue was
// full, the queue wait exceeded the request's deadline, or the server
// was draining. HTTP maps it to 429; clients (and cmrun's client
// mode, exit code 5) can match it with errors.Is.
var ErrOverloaded = errors.New("server overloaded")

// shedWindowSeconds is the sliding window over which sheds mark the
// server degraded on /healthz.
const shedWindowSeconds = 10

// defaultMinRetryAfter floors the Retry-After estimate handed to shed
// clients when nothing better is known (no completed run yet, empty
// queue). A zero floor would tell the first flood's victims to retry
// immediately — a thundering herd against a server that just proved
// it has no capacity.
const defaultMinRetryAfter = 50 * time.Millisecond

// admitResult explains a non-admission.
type admitResult int

const (
	admitted admitResult = iota
	shedQueueFull
	shedDeadline // could not be admitted before the request's deadline
	shedDraining
	// shedTenantQuota is a per-tenant refusal: the tenant is at its
	// MaxConcurrentRuns cap with its QueueShare already full. The
	// server as a whole may be idle — this shed must not push global
	// backpressure signals, only the tenant's own.
	shedTenantQuota
	clientGone // caller disconnected while queued; not counted as a shed
)

// waiterState is the exactly-once handoff protocol between a queued
// waiter and the paths that may resolve it (grant, deadline, drain,
// disconnect). Transitions happen under the admitter mutex only.
type waiterState int

const (
	waiting waiterState = iota
	granted
	abandoned
)

// waiter is one queued admission request.
type waiter struct {
	ring  *tenantRing
	seq   uint64 // arrival order, the FIFO key within a ring
	state waiterState
	grant chan struct{} // closed when a slot is assigned (state=granted)
}

// tenantRing is one tenant's partition of the admission rings: its
// held execution slots, its queued waiters, and its counters. Rings
// are created on first use and retained for /metrics — tenant names
// only come from the registry (plus anonymous), so the map is small
// and bounded.
type tenantRing struct {
	name    string
	maxRuns int // 0 = no per-tenant cap
	share   int // 0 = whole queue
	weight  int // >= 1

	running int
	queue   []*waiter

	admitted   atomic.Int64
	quotaSheds atomic.Int64 // sheds caused by this tenant's own quota
	sheds      atomic.Int64 // all sheds of this tenant's requests
}

// admitter is the tenant-partitioned bounded run queue.
type admitter struct {
	mu       sync.Mutex
	slots    int // MaxConcurrentRuns
	queueCap int
	maxWait  time.Duration
	minRetry time.Duration

	running  int
	rings    map[string]*tenantRing
	seq      uint64
	draining bool
	drainCh  chan struct{}

	queued atomic.Int64 // mirror of total queued, for gauges
	shed   atomic.Int64

	// Per-second shed buckets for the degraded flag: bucket[i] counts
	// sheds in the second stamped secs[i], a ring keyed by unix time.
	shedMu sync.Mutex
	secs   [shedWindowSeconds]int64
	counts [shedWindowSeconds]int64
}

func newAdmitter(slots, queueCap int, maxWait, minRetry time.Duration) *admitter {
	if minRetry <= 0 {
		minRetry = defaultMinRetryAfter
	}
	return &admitter{
		slots:    slots,
		queueCap: queueCap,
		maxWait:  maxWait,
		minRetry: minRetry,
		rings:    map[string]*tenantRing{},
		drainCh:  make(chan struct{}),
	}
}

// ring returns (creating if needed) the partition for a tenant,
// refreshing its quota — a registry reload changes caps for requests
// from then on without disturbing slots already held.
func (a *admitter) ring(name string, q tenant.Quota) *tenantRing {
	if name == "" {
		name = tenant.Anonymous
	}
	r, ok := a.rings[name]
	if !ok {
		r = &tenantRing{name: name}
		a.rings[name] = r
	}
	r.maxRuns = q.MaxConcurrentRuns
	r.share = q.QueueShare
	r.weight = q.FairWeight()
	return r
}

// admit tries to acquire a run slot for the anonymous tenant —
// the zero-config path and the compatibility surface for the PR 3
// behavior contract.
func (a *admitter) admit(ctx context.Context, timeout time.Duration) (release func(), res admitResult) {
	return a.admitTenant(ctx, tenant.Anonymous, tenant.Quota{}, timeout)
}

// admitTenant tries to acquire a run slot before the request becomes
// pointless. timeout is the request's execution budget: a request
// that cannot start before min(timeout, maxWait) elapses is shed
// rather than left to win a slot it can no longer use. release must
// be called exactly once iff the result is admitted.
func (a *admitter) admitTenant(ctx context.Context, name string, q tenant.Quota, timeout time.Duration) (release func(), res admitResult) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		a.recordShed(nil)
		return nil, shedDraining
	}
	r := a.ring(name, q)

	// Fast path: free global capacity and the tenant below its cap.
	if a.running < a.slots && (r.maxRuns <= 0 || r.running < r.maxRuns) {
		a.grantLocked(r)
		a.mu.Unlock()
		return a.releaseFunc(r), admitted
	}

	// No slot now — queue, or shed. A tenant at its own run cap AND
	// its own queue share is a quota shed (the server may be idle);
	// a full global queue is the classic overload shed.
	if r.share > 0 && len(r.queue) >= r.share {
		a.mu.Unlock()
		a.recordShed(r)
		r.quotaSheds.Add(1)
		return nil, shedTenantQuota
	}
	if int(a.queued.Load()) >= a.queueCap {
		a.mu.Unlock()
		a.recordShed(r)
		return nil, shedQueueFull
	}
	a.seq++
	w := &waiter{ring: r, seq: a.seq, grant: make(chan struct{})}
	r.queue = append(r.queue, w)
	a.queued.Add(1)
	a.mu.Unlock()

	wait := a.maxWait
	if timeout < wait {
		wait = timeout
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.grant:
		return a.releaseFunc(r), admitted
	case <-timer.C:
		if a.resolve(w, true) {
			// Grant raced the deadline: the slot was assigned between
			// the timer firing and us taking the lock. The request is
			// past its useful wait either way — hand the slot straight
			// back so the next waiter gets it, and report the shed.
			a.releaseFunc(r)()
			return nil, shedDeadline
		}
		return nil, shedDeadline
	case <-a.drainCh:
		if a.resolve(w, true) {
			a.releaseFunc(r)()
			return nil, shedDraining
		}
		return nil, shedDraining
	case <-ctx.Done():
		if a.resolve(w, false) {
			a.releaseFunc(r)()
		}
		return nil, clientGone
	}
}

// grantLocked assigns one slot to ring r. Caller holds a.mu.
func (a *admitter) grantLocked(r *tenantRing) {
	a.running++
	r.running++
	r.admitted.Add(1)
}

// resolve finalizes a waiter that lost its select race (deadline,
// drain, disconnect): removes it from its ring's queue if still
// waiting, or reports that a grant slipped in first (the caller then
// owns a slot it must release). isShed selects whether the outcome
// counts toward shed metrics.
func (a *admitter) resolve(w *waiter, isShed bool) (wasGranted bool) {
	a.mu.Lock()
	if w.state == granted {
		a.mu.Unlock()
		if isShed {
			a.recordShed(w.ring)
		}
		return true
	}
	w.state = abandoned
	q := w.ring.queue
	for i, other := range q {
		if other == w {
			w.ring.queue = append(q[:i], q[i+1:]...)
			break
		}
	}
	a.queued.Add(-1)
	a.mu.Unlock()
	if isShed {
		a.recordShed(w.ring)
	}
	return false
}

// releaseFunc hands back one slot held by ring r, then dispatches the
// freed capacity to the fairest waiter. Exactly-once by construction.
func (a *admitter) releaseFunc(r *tenantRing) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.running--
			r.running--
			a.dispatchLocked()
			a.mu.Unlock()
		})
	}
}

// dispatchLocked hands free slots to queued waiters, weighted-fair
// across tenants: among rings with waiters and headroom under their
// own cap, pick the one holding the fewest slots per unit weight
// (ties to the oldest head waiter), grant its head, repeat. Caller
// holds a.mu.
func (a *admitter) dispatchLocked() {
	for a.running < a.slots {
		var best *tenantRing
		for _, r := range a.rings {
			if len(r.queue) == 0 {
				continue
			}
			if r.maxRuns > 0 && r.running >= r.maxRuns {
				continue
			}
			if best == nil || fairerThan(r, best) {
				best = r
			}
		}
		if best == nil {
			return
		}
		w := best.queue[0]
		best.queue = best.queue[1:]
		w.state = granted
		a.queued.Add(-1)
		a.grantLocked(best)
		close(w.grant)
	}
}

// fairerThan orders rings for dispatch: lower (running+1)/weight
// first — the tenant that would still hold the least capacity per
// unit weight after the grant — with ties broken by the oldest
// waiting request, so equal-weight tenants degrade to global FIFO.
func fairerThan(x, y *tenantRing) bool {
	xs := float64(x.running+1) / float64(x.weight)
	ys := float64(y.running+1) / float64(y.weight)
	if xs != ys {
		return xs < ys
	}
	return x.queue[0].seq < y.queue[0].seq
}

// drain flips the admitter into shutdown mode: queued waiters are
// shed now, future requests are shed on arrival, in-flight runs keep
// their slots. Idempotent.
func (a *admitter) drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return
	}
	a.draining = true
	close(a.drainCh)
}

func (a *admitter) recordShed(r *tenantRing) {
	a.shed.Add(1)
	if r != nil {
		r.sheds.Add(1)
	}
	now := time.Now().Unix()
	i := now % shedWindowSeconds
	a.shedMu.Lock()
	if a.secs[i] != now {
		a.secs[i] = now
		a.counts[i] = 0
	}
	a.counts[i]++
	a.shedMu.Unlock()
}

// recentSheds counts sheds within the sliding window.
func (a *admitter) recentSheds() int64 {
	cutoff := time.Now().Unix() - shedWindowSeconds
	var n int64
	a.shedMu.Lock()
	for i, sec := range a.secs {
		if sec > cutoff {
			n += a.counts[i]
		}
	}
	a.shedMu.Unlock()
	return n
}

// retryAfter suggests how long a shed client should back off: the
// queue's current depth times the observed mean run latency (how long
// it should take for that much work to clear), clamped to a sane
// range. meanRunMS may be zero when no run has completed yet — the
// estimate is then one queue-drain at the configured floor per slot,
// never zero (see minRetry).
func (a *admitter) retryAfter(meanRunMS float64) time.Duration {
	floorMS := float64(a.minRetry) / float64(time.Millisecond)
	if meanRunMS < floorMS {
		meanRunMS = floorMS
	}
	est := time.Duration((float64(a.queued.Load())+1)*meanRunMS) * time.Millisecond
	if est < a.minRetry {
		est = a.minRetry
	}
	if est > 10*time.Second {
		est = 10 * time.Second
	}
	return est
}

// TenantAdmissionRow is one tenant's live admission state for
// /metrics.
type TenantAdmissionRow struct {
	Tenant     string `json:"tenant"`
	Running    int    `json:"running"`
	Queued     int    `json:"queued"`
	Admitted   int64  `json:"admitted"`
	Sheds      int64  `json:"sheds"`
	QuotaSheds int64  `json:"quota_sheds"`
}

// tenantRows snapshots per-tenant admission state, sorted by name for
// stable /metrics output.
func (a *admitter) tenantRows() []TenantAdmissionRow {
	a.mu.Lock()
	rows := make([]TenantAdmissionRow, 0, len(a.rings))
	for _, r := range a.rings {
		rows = append(rows, TenantAdmissionRow{
			Tenant:     r.name,
			Running:    r.running,
			Queued:     len(r.queue),
			Admitted:   r.admitted.Load(),
			Sheds:      r.sheds.Load(),
			QuotaSheds: r.quotaSheds.Load(),
		})
	}
	a.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Tenant < rows[j].Tenant })
	return rows
}

// quotaShedsFor reports one tenant's quota-induced sheds (tests).
func (a *admitter) quotaShedsFor(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r, ok := a.rings[name]; ok {
		return r.quotaSheds.Load()
	}
	return 0
}
