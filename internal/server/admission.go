// Admission control for interpreter runs. The original server bounded
// *execution* with a bare semaphore but not *waiting*: every request
// beyond the semaphore pinned a goroutine in a channel send with no
// backpressure signal, so a flood queued without limit until the
// process died. This file replaces that with a bounded, deadline-aware
// run queue:
//
//   - up to MaxConcurrentRuns requests execute;
//   - up to RunQueueSize more wait for a slot, each for at most
//     min(its own execution deadline, MaxQueueWait);
//   - everything else is shed immediately with 429, a Retry-After
//     header, and retry_after_ms in the body, so clients get a
//     structured backpressure signal instead of a hung connection.
//
// Draining (graceful shutdown) sheds the queue and admits nothing new
// while in-flight runs finish. A sliding window over recent sheds
// feeds /healthz's "degraded" flag: still 200 — the daemon is serving
// — but load balancers and operators can see it is refusing work.
package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is the sentinel for a shed request: the run queue was
// full, the queue wait exceeded the request's deadline, or the server
// was draining. HTTP maps it to 429; clients (and cmrun's future
// client mode, exit code 5) can match it with errors.Is.
var ErrOverloaded = errors.New("server overloaded")

// shedWindowSeconds is the sliding window over which sheds mark the
// server degraded on /healthz.
const shedWindowSeconds = 10

// admitter is the bounded run queue.
type admitter struct {
	slots    chan struct{} // capacity = MaxConcurrentRuns
	queueCap int64
	maxWait  time.Duration

	queued   atomic.Int64
	shed     atomic.Int64
	draining chan struct{}
	drainOne sync.Once

	// Per-second shed buckets for the degraded flag: bucket[i] counts
	// sheds in the second stamped secs[i], a ring keyed by unix time.
	shedMu sync.Mutex
	secs   [shedWindowSeconds]int64
	counts [shedWindowSeconds]int64
}

func newAdmitter(slots int, queueCap int, maxWait time.Duration) *admitter {
	return &admitter{
		slots:    make(chan struct{}, slots),
		queueCap: int64(queueCap),
		maxWait:  maxWait,
		draining: make(chan struct{}),
	}
}

// admitResult explains a non-admission.
type admitResult int

const (
	admitted admitResult = iota
	shedQueueFull
	shedDeadline // could not be admitted before the request's deadline
	shedDraining
	clientGone // caller disconnected while queued; not counted as a shed
)

// admit tries to acquire a run slot before the request becomes
// pointless. timeout is the request's execution budget: a request that
// cannot start before min(timeout, maxWait) elapses is shed rather
// than left to win a slot it can no longer use. release must be called
// exactly once iff the result is admitted.
func (a *admitter) admit(ctx context.Context, timeout time.Duration) (release func(), res admitResult) {
	select {
	case <-a.draining:
		a.recordShed()
		return nil, shedDraining
	default:
	}
	// Fast path: a free slot admits without queueing.
	select {
	case a.slots <- struct{}{}:
		return a.releaseFunc(), admitted
	default:
	}
	if a.queued.Add(1) > a.queueCap {
		a.queued.Add(-1)
		a.recordShed()
		return nil, shedQueueFull
	}
	defer a.queued.Add(-1)

	wait := a.maxWait
	if timeout < wait {
		wait = timeout
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.releaseFunc(), admitted
	case <-timer.C:
		a.recordShed()
		return nil, shedDeadline
	case <-a.draining:
		a.recordShed()
		return nil, shedDraining
	case <-ctx.Done():
		return nil, clientGone
	}
}

func (a *admitter) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-a.slots }) }
}

// drain flips the admitter into shutdown mode: queued waiters are shed
// now, future requests are shed on arrival, in-flight runs keep their
// slots. Idempotent.
func (a *admitter) drain() {
	a.drainOne.Do(func() { close(a.draining) })
}

func (a *admitter) recordShed() {
	a.shed.Add(1)
	now := time.Now().Unix()
	i := now % shedWindowSeconds
	a.shedMu.Lock()
	if a.secs[i] != now {
		a.secs[i] = now
		a.counts[i] = 0
	}
	a.counts[i]++
	a.shedMu.Unlock()
}

// recentSheds counts sheds within the sliding window.
func (a *admitter) recentSheds() int64 {
	cutoff := time.Now().Unix() - shedWindowSeconds
	var n int64
	a.shedMu.Lock()
	for i, sec := range a.secs {
		if sec > cutoff {
			n += a.counts[i]
		}
	}
	a.shedMu.Unlock()
	return n
}

// retryAfter suggests how long a shed client should back off: the
// queue's current depth times the observed mean run latency (how long
// it should take for that much work to clear), clamped to a sane
// range. meanRunMS may be zero when no run has completed yet.
func (a *admitter) retryAfter(meanRunMS float64) time.Duration {
	if meanRunMS <= 0 {
		meanRunMS = 100
	}
	est := time.Duration((float64(a.queued.Load())+1)*meanRunMS) * time.Millisecond
	if est < 50*time.Millisecond {
		est = 50 * time.Millisecond
	}
	if est > 10*time.Second {
		est = 10 * time.Second
	}
	return est
}
