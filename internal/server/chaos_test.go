// The chaos harness: aggregate-load failure modes thrown at a live
// server. Where crash_test.go proves one request cannot crash the
// daemon, this suite proves a *crowd* of requests cannot: floods shed
// exactly the overflow with structured 429s, disconnecting queued
// clients release their queue slots, panics injected mid-flood stay
// contained, a restarted daemon comes back warm from the disk tier,
// and a corrupted cache object is quarantined — all while /healthz
// answers 200 and goroutines do not leak.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/par"
	"repro/internal/server"
)

const trivialSrc = `int main() { return 0; }`

// newChaosServer is newTestServer plus the *server.Server handle the
// drain and admission assertions need.
func newChaosServer(t *testing.T, cfg server.Config) (*httptest.Server, *server.Server, *driver.Driver) {
	t.Helper()
	if cfg.Driver == nil {
		cfg.Driver = driver.New()
	}
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s, cfg.Driver
}

// rawPost is postJSON without test plumbing, safe to call from helper
// goroutines (no t.Fatal off the test goroutine).
func rawPost(url string, body any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// queueMetrics is the /metrics subset the chaos assertions read.
type queueMetrics struct {
	InflightRuns  int64 `json:"inflight_runs"`
	RunQueueDepth int64 `json:"run_queue_depth"`
	RunQueueMax   int   `json:"run_queue_max"`
	RunsShed      int64 `json:"runs_shed"`
}

// waitMetrics polls /metrics until ok returns true or the deadline
// passes (then fails the test with the last snapshot).
func waitMetrics(t *testing.T, url string, ok func(queueMetrics) bool, what string) queueMetrics {
	t.Helper()
	var m queueMetrics
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if code := getJSON(t, url+"/metrics", &m); code == http.StatusOK && ok(m) {
			return m
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last metrics %+v", what, m)
	return m
}

// healthz fetches the liveness document, asserting 200.
func healthz(t *testing.T, url string) (status string) {
	t.Helper()
	var h struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, url+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	return h.Status
}

// barrierHook installs a TestHookRunBarrier that blocks every admitted
// run until release is called (idempotent); the hook is removed on
// cleanup.
func barrierHook(t *testing.T) (release func()) {
	t.Helper()
	barrier := make(chan struct{})
	server.TestHookRunBarrier = func() { <-barrier }
	var once sync.Once
	release = func() { once.Do(func() { close(barrier) }) }
	t.Cleanup(func() {
		release()
		server.TestHookRunBarrier = nil
	})
	return release
}

// TestChaosFloodShedsExactlyTheOverflow is the acceptance flood: with
// one run slot and queue capacity K, N concurrent runs must yield
// exactly 1+K completions and N-1-K structured sheds — no hung
// connections, no unbounded waiters — while /healthz stays 200.
func TestChaosFloodShedsExactlyTheOverflow(t *testing.T) {
	const K, N = 3, 24
	release := barrierHook(t)
	ts, _, _ := newChaosServer(t, server.Config{
		MaxConcurrentRuns: 1,
		RunQueueSize:      K,
		DefaultTimeout:    30 * time.Second,
		MaxQueueWait:      30 * time.Second,
	})

	type result struct {
		code       int
		retryHdr   string
		retryMS    float64
		bodyStatus string
	}
	raw, _ := json.Marshal(map[string]any{"source": trivialSrc})
	results := make(chan result, N)
	for i := 0; i < N; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(raw))
			if err != nil {
				results <- result{code: -1}
				return
			}
			defer resp.Body.Close()
			var body struct {
				RetryAfterMS float64 `json:"retry_after_ms"`
			}
			json.NewDecoder(resp.Body).Decode(&body)
			results <- result{code: resp.StatusCode, retryHdr: resp.Header.Get("Retry-After"), retryMS: body.RetryAfterMS}
		}()
	}

	// While the barrier pins the slot-holder, exactly N-1-K arrivals
	// must be shed; the rest (1 running + K queued) stay admitted.
	var shed int
	collect := time.After(10 * time.Second)
	for shed < N-1-K {
		select {
		case r := <-results:
			if r.code != http.StatusTooManyRequests {
				t.Fatalf("pre-release response %d, want only 429s while the slot is pinned", r.code)
			}
			if r.retryHdr == "" || r.retryMS <= 0 {
				t.Fatalf("shed without backpressure signal: Retry-After=%q retry_after_ms=%v", r.retryHdr, r.retryMS)
			}
			shed++
		case <-collect:
			t.Fatalf("only %d/%d sheds arrived", shed, N-1-K)
		}
	}
	m := waitMetrics(t, ts.URL, func(m queueMetrics) bool {
		return m.RunQueueDepth == K && m.InflightRuns == 1
	}, "full queue")
	if m.RunsShed != N-1-K || m.RunQueueMax != K {
		t.Fatalf("runs_shed=%d run_queue_max=%d, want %d and %d", m.RunsShed, m.RunQueueMax, N-1-K, K)
	}
	// Degraded, not down: the daemon flags the elevated shed rate but
	// keeps serving (200).
	if status := healthz(t, ts.URL); status != "degraded" {
		t.Fatalf("healthz status = %q during a shedding flood, want degraded", status)
	}

	// Release: every admitted request completes successfully.
	release()
	for done := 0; done < 1+K; done++ {
		select {
		case r := <-results:
			if r.code != http.StatusOK {
				t.Fatalf("admitted run finished %d, want 200", r.code)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("admitted runs stalled after release (%d/%d done)", done, 1+K)
		}
	}
	waitMetrics(t, ts.URL, func(m queueMetrics) bool {
		return m.InflightRuns == 0 && m.RunQueueDepth == 0
	}, "quiesce")
}

// A slow consumer that gives up while queued must release its queue
// slot without being counted as a shed (the server refused nothing).
func TestChaosQueuedClientDisconnectReleasesSlot(t *testing.T) {
	release := barrierHook(t)
	ts, _, _ := newChaosServer(t, server.Config{
		MaxConcurrentRuns: 1, RunQueueSize: 4,
		DefaultTimeout: 30 * time.Second, MaxQueueWait: 30 * time.Second,
	})
	raw, _ := json.Marshal(map[string]any{"source": trivialSrc})

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(raw))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	waitMetrics(t, ts.URL, func(m queueMetrics) bool { return m.InflightRuns == 1 }, "slot held")

	ctx, cancel := context.WithCancel(context.Background())
	gone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(raw))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		gone <- err
	}()
	waitMetrics(t, ts.URL, func(m queueMetrics) bool { return m.RunQueueDepth == 1 }, "client queued")
	cancel()
	if err := <-gone; err == nil {
		t.Fatal("cancelled client got a response")
	}
	m := waitMetrics(t, ts.URL, func(m queueMetrics) bool { return m.RunQueueDepth == 0 }, "queue slot released")
	if m.RunsShed != 0 {
		t.Fatalf("runs_shed = %d after a client disconnect, want 0", m.RunsShed)
	}
	if status := healthz(t, ts.URL); status != "ok" {
		t.Fatalf("healthz = %q with no sheds, want ok", status)
	}
	release()
	if code := <-first; code != http.StatusOK {
		t.Fatalf("pinned run finished %d", code)
	}
}

// Worker panics injected into a concurrent flood: every response is
// structured (422 trap or 200), the panic never escapes a request, and
// the goroutine count settles back.
func TestChaosPanicsUnderConcurrentLoad(t *testing.T) {
	ts, _, _ := newChaosServer(t, server.Config{
		MaxConcurrentRuns: 2, RunQueueSize: 32,
		DefaultTimeout: 30 * time.Second, MaxQueueWait: 30 * time.Second,
	})
	base := runtime.NumGoroutine()
	par.TestHookInjectPanic = func(worker int) {
		if worker == 1 {
			panic("chaos: injected worker crash")
		}
	}
	defer func() { par.TestHookInjectPanic = nil }()

	const n = 12
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// threads=4 exercises the pool (and the injected panic);
			// trivialSrc has no parallel construct and stays clean.
			src, threads := trivialSrc, 1
			if i%2 == 0 {
				src, threads = parallelSrc, 4
			}
			code, err := rawPost(ts.URL+"/v1/run", map[string]any{"source": src, "threads": threads})
			if err != nil {
				code = -1
			}
			codes[i] = code
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Hammer the liveness probe while the flood is in flight.
	for {
		select {
		case <-done:
			goto settled
		default:
			mustHealthz(t, ts.URL)
			time.Sleep(5 * time.Millisecond)
		}
	}
settled:
	for i, code := range codes {
		want := http.StatusOK
		if i%2 == 0 {
			want = http.StatusUnprocessableEntity // the injected panic, trapped
		}
		if code != want {
			t.Fatalf("request %d: code %d, want %d", i, code, want)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+8 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at start, %d after the panic flood", base, runtime.NumGoroutine())
}

// diskObjectPath mirrors the driver's disk layout (objects/<k[:2]>/<k>).
func diskObjectPath(dir, key string) string {
	return filepath.Join(dir, "objects", key[:2], key)
}

// A "restarted daemon" (new server + new driver, same -cachedir) must
// serve a previously compiled program from the disk tier; a corrupted
// object must be quarantined and recompiled, never served.
func TestChaosRestartServesFromDiskAndQuarantinesCorruption(t *testing.T) {
	dir := t.TempDir()
	req := map[string]any{"source": okSrc, "par": "none"}

	ts1, _ := newTestServer(t, server.Config{Driver: driver.NewWith(driver.Config{CacheDir: dir})})
	code, first := postJSON(t, ts1.URL+"/v1/compile", req)
	if code != http.StatusOK || first["cached"] != false {
		t.Fatalf("cold compile: %d %v", code, first["cached"])
	}
	key := first["key"].(string)

	// Restart 1: warm from disk.
	ts2, d2 := newTestServer(t, server.Config{Driver: driver.NewWith(driver.Config{CacheDir: dir})})
	code, warm := postJSON(t, ts2.URL+"/v1/compile", req)
	if code != http.StatusOK || warm["cached"] != true || warm["output"] != first["output"] {
		t.Fatalf("restart compile: %d cached=%v", code, warm["cached"])
	}
	if m := d2.MetricsSnapshot(); m.DiskHits != 1 || m.CompileExecutions != 0 {
		t.Fatalf("restart metrics: hits=%d execs=%d", m.DiskHits, m.CompileExecutions)
	}

	// Corrupt the object, restart again: quarantined + recompiled.
	path := diskObjectPath(dir, key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ts3, d3 := newTestServer(t, server.Config{Driver: driver.NewWith(driver.Config{CacheDir: dir})})
	code, rec := postJSON(t, ts3.URL+"/v1/compile", req)
	if code != http.StatusOK || rec["cached"] != false || rec["output"] != first["output"] {
		t.Fatalf("post-corruption compile: %d cached=%v (must recompile, same artifact)", code, rec["cached"])
	}
	if m := d3.MetricsSnapshot(); m.DiskCorrupt != 1 || m.CompileExecutions != 1 {
		t.Fatalf("corruption metrics: corrupt=%d execs=%d", m.DiskCorrupt, m.CompileExecutions)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt object not quarantined: %v", err)
	}
	mustHealthz(t, ts3.URL)
}
