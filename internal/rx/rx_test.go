package rx

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestLiteralMatch(t *testing.T) {
	n := Literal("with")
	if !n.Matches("with") {
		t.Fatal("Literal(with) should match with")
	}
	if n.Matches("withx") || n.Matches("wit") {
		t.Fatal("Literal(with) should only match exactly")
	}
}

func TestLiteralMetachars(t *testing.T) {
	for _, s := range []string{"(", ")", "[", "]", "**", "a+b", "c?", "a|b", ".", "\\"} {
		n := Literal(s)
		if !n.Matches(s) {
			t.Errorf("Literal(%q) should match itself", s)
		}
	}
}

func TestIdentifierPattern(t *testing.T) {
	id := MustCompile("[a-zA-Z_][a-zA-Z0-9_]*")
	cases := map[string]bool{
		"x":       true,
		"_foo":    true,
		"a1B2_c3": true,
		"1abc":    false,
		"":        false,
		"a-b":     false,
	}
	for s, want := range cases {
		if got := id.Matches(s); got != want {
			t.Errorf("id.Matches(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestNumberPatterns(t *testing.T) {
	intLit := MustCompile("[0-9]+")
	floatLit := MustCompile("[0-9]+\\.[0-9]+")
	if !intLit.Matches("007") || intLit.Matches("1.5") {
		t.Error("int literal pattern wrong")
	}
	if !floatLit.Matches("3.14") || floatLit.Matches("3") || floatLit.Matches(".5") {
		t.Error("float literal pattern wrong")
	}
}

func TestAlternationAndGroups(t *testing.T) {
	n := MustCompile("(ab|cd)+e?")
	for s, want := range map[string]bool{
		"ab": true, "cd": true, "abcd": true, "abcde": true,
		"e": false, "abc": false, "": false,
	} {
		if got := n.Matches(s); got != want {
			t.Errorf("Matches(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestNegatedClass(t *testing.T) {
	// C-style string literal: " ( [^"\n] )* "
	str := MustCompile("\"[^\"\n]*\"")
	if !str.Matches(`"hello world"`) {
		t.Error("string literal should match")
	}
	if str.Matches(`"unterminated`) || str.Matches("\"two\nlines\"") {
		t.Error("string literal should not match unterminated/multiline")
	}
}

func TestMatchPrefixLongest(t *testing.T) {
	n := MustCompile("a+")
	if got := n.MatchPrefix("aaab", 0); got != 3 {
		t.Errorf("MatchPrefix = %d, want 3", got)
	}
	if got := n.MatchPrefix("baaa", 0); got != -1 {
		t.Errorf("MatchPrefix on non-match = %d, want -1", got)
	}
	if got := n.MatchPrefix("baaa", 1); got != 3 {
		t.Errorf("MatchPrefix at offset = %d, want 3", got)
	}
}

func TestBlockComment(t *testing.T) {
	// /* ... */ without nesting: /\*([^*]|\*+[^*/])*\*+/
	n := MustCompile("/\\*([^*]|\\*+[^*/])*\\*+/")
	if !n.Matches("/* hello */") || !n.Matches("/**/") || !n.Matches("/* a * b */") {
		t.Error("block comment should match")
	}
	if n.Matches("/* unterminated") {
		t.Error("unterminated comment should not match")
	}
	// longest prefix should stop at first close
	if got := n.MatchPrefix("/* a */ x = 1; /* b */", 0); got != 7 {
		t.Errorf("comment prefix = %d, want 7", got)
	}
}

func TestAcceptsEmpty(t *testing.T) {
	if MustCompile("a*").AcceptsEmpty() != true {
		t.Error("a* accepts empty")
	}
	if MustCompile("a+").AcceptsEmpty() != false {
		t.Error("a+ does not accept empty")
	}
}

func TestFirstBytes(t *testing.T) {
	fb := MustCompile("(with|when)").FirstBytes()
	if !fb['w'] {
		t.Error("first byte should include w")
	}
	for b := 0; b < 256; b++ {
		if b != 'w' && fb[b] {
			t.Errorf("unexpected first byte %q", byte(b))
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{"(", "[", "a)", "*a", "[z-a]", "a\\", "[]"}
	for _, p := range bad {
		if _, err := Compile(p); err == nil {
			t.Errorf("Compile(%q) should fail", p)
		}
	}
}

// TestQuickAgainstStdRegexp cross-checks our engine against the
// standard library on randomly generated inputs over a small alphabet.
func TestQuickAgainstStdRegexp(t *testing.T) {
	patterns := []string{
		"a(b|c)*d",
		"[ab]+c?",
		"(ab)+",
		"a*b*c*",
		"[^a]b+",
		"(a|b)(a|b)(a|b)",
	}
	for _, p := range patterns {
		mine := MustCompile(p)
		std := regexp.MustCompile("^(" + p + ")$")
		f := func(seed int64, n uint8) bool {
			r := rand.New(rand.NewSource(seed))
			var b strings.Builder
			for i := 0; i < int(n%12); i++ {
				b.WriteByte("abcd"[r.Intn(4)])
			}
			s := b.String()
			return mine.Matches(s) == std.MatchString(s)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("pattern %q disagrees with std regexp: %v", p, err)
		}
	}
}

// TestQuickPrefixConsistency: MatchPrefix result, when >= 0, must be a
// length whose prefix Matches, and no longer prefix may match.
func TestQuickPrefixConsistency(t *testing.T) {
	n := MustCompile("(ab|a)*b?")
	f := func(seed int64, ln uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < int(ln%10); i++ {
			b.WriteByte("ab"[r.Intn(2)])
		}
		s := b.String()
		k := n.MatchPrefix(s, 0)
		if k < 0 {
			return !n.Matches("")
		}
		if !n.Matches(s[:k]) {
			return false
		}
		for j := k + 1; j <= len(s); j++ {
			if n.Matches(s[:j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
