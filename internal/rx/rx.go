// Package rx is a small regular-expression engine used by the
// context-aware scanner. It supports the subset of regex syntax needed
// to specify lexical terminals: literal characters, escapes, character
// classes ([a-z], [^...]), '.', grouping, alternation, and the
// *, +, ? repetition operators.
//
// Patterns compile to Thompson NFAs; matching is done by parallel NFA
// simulation with longest-match semantics, which is what a generated
// scanner (like Copper's) implements.
package rx

import (
	"fmt"
	"strings"
)

// node is a parsed regex AST node.
type node interface{ isNode() }

type litNode struct{ ch byte } // single byte
type classNode struct {        // character class
	negate bool
	ranges []byteRange
}
type anyNode struct{}                   // '.'
type seqNode struct{ parts []node }     // concatenation
type altNode struct{ left, right node } // a|b
type starNode struct{ sub node }        // a*
type plusNode struct{ sub node }        // a+
type optNode struct{ sub node }         // a?
type emptyNode struct{}                 // matches empty string

func (litNode) isNode()   {}
func (classNode) isNode() {}
func (anyNode) isNode()   {}
func (seqNode) isNode()   {}
func (altNode) isNode()   {}
func (starNode) isNode()  {}
func (plusNode) isNode()  {}
func (optNode) isNode()   {}
func (emptyNode) isNode() {}

type byteRange struct{ lo, hi byte }

func (c classNode) matches(b byte) bool {
	in := false
	for _, r := range c.ranges {
		if b >= r.lo && b <= r.hi {
			in = true
			break
		}
	}
	if c.negate {
		return !in
	}
	return in
}

// parser for the regex syntax.
type reParser struct {
	src string
	pos int
}

func (p *reParser) errf(format string, args ...any) error {
	return fmt.Errorf("rx: %q at %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

func (p *reParser) peek() (byte, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *reParser) next() (byte, bool) {
	b, ok := p.peek()
	if ok {
		p.pos++
	}
	return b, ok
}

// alternation := concat ('|' concat)*
func (p *reParser) parseAlt() (node, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		b, ok := p.peek()
		if !ok || b != '|' {
			return left, nil
		}
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = altNode{left, right}
	}
}

// concat := repeat*
func (p *reParser) parseConcat() (node, error) {
	var parts []node
	for {
		b, ok := p.peek()
		if !ok || b == '|' || b == ')' {
			break
		}
		n, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	switch len(parts) {
	case 0:
		return emptyNode{}, nil
	case 1:
		return parts[0], nil
	}
	return seqNode{parts}, nil
}

// repeat := atom ('*' | '+' | '?')*
func (p *reParser) parseRepeat() (node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		b, ok := p.peek()
		if !ok {
			return n, nil
		}
		switch b {
		case '*':
			p.pos++
			n = starNode{n}
		case '+':
			p.pos++
			n = plusNode{n}
		case '?':
			p.pos++
			n = optNode{n}
		default:
			return n, nil
		}
	}
}

func (p *reParser) parseAtom() (node, error) {
	b, ok := p.next()
	if !ok {
		return nil, p.errf("unexpected end of pattern")
	}
	switch b {
	case '(':
		n, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if c, ok := p.next(); !ok || c != ')' {
			return nil, p.errf("missing ')'")
		}
		return n, nil
	case '[':
		return p.parseClass()
	case '.':
		return anyNode{}, nil
	case '\\':
		e, ok := p.next()
		if !ok {
			return nil, p.errf("trailing backslash")
		}
		return litNode{unescape(e)}, nil
	case '*', '+', '?', ')', '|':
		return nil, p.errf("unexpected %q", string(b))
	default:
		return litNode{b}, nil
	}
}

func unescape(e byte) byte {
	switch e {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	default:
		return e // \., \\, \[, \*, etc.
	}
}

func (p *reParser) parseClass() (node, error) {
	c := classNode{}
	if b, ok := p.peek(); ok && b == '^' {
		c.negate = true
		p.pos++
	}
	first := true
	for {
		b, ok := p.next()
		if !ok {
			return nil, p.errf("missing ']'")
		}
		if b == ']' && !first {
			if len(c.ranges) == 0 {
				return nil, p.errf("empty character class")
			}
			return c, nil
		}
		first = false
		if b == '\\' {
			e, ok := p.next()
			if !ok {
				return nil, p.errf("trailing backslash in class")
			}
			b = unescape(e)
		}
		lo := b
		hi := b
		// range a-z (a trailing '-' is a literal)
		if n, ok := p.peek(); ok && n == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // consume '-'
			h, _ := p.next()
			if h == '\\' {
				e, ok := p.next()
				if !ok {
					return nil, p.errf("trailing backslash in class")
				}
				h = unescape(e)
			}
			if h < lo {
				return nil, p.errf("inverted range %c-%c", lo, h)
			}
			hi = h
		}
		c.ranges = append(c.ranges, byteRange{lo, hi})
	}
}

// --- NFA construction (Thompson) ---

// edge is a transition. If eps is true it consumes no input;
// otherwise it consumes one byte matched by test.
type edge struct {
	eps bool
	lit bool // single byte transition (fast path)
	ch  byte
	cls *classNode // nil for eps/lit; anyNode encoded as negated empty class
	to  int
}

// NFA is a compiled pattern.
type NFA struct {
	Pattern string
	states  [][]edge
	start   int
	accept  int
}

type nfaBuilder struct{ states [][]edge }

func (b *nfaBuilder) newState() int {
	b.states = append(b.states, nil)
	return len(b.states) - 1
}

func (b *nfaBuilder) addEps(from, to int) {
	b.states[from] = append(b.states[from], edge{eps: true, to: to})
}

func (b *nfaBuilder) addLit(from int, ch byte, to int) {
	b.states[from] = append(b.states[from], edge{lit: true, ch: ch, to: to})
}

func (b *nfaBuilder) addClass(from int, c classNode, to int) {
	cc := c
	b.states[from] = append(b.states[from], edge{cls: &cc, to: to})
}

// build returns (start, accept) fragment for n.
func (b *nfaBuilder) build(n node) (int, int) {
	switch t := n.(type) {
	case emptyNode:
		s := b.newState()
		a := b.newState()
		b.addEps(s, a)
		return s, a
	case litNode:
		s := b.newState()
		a := b.newState()
		b.addLit(s, t.ch, a)
		return s, a
	case anyNode:
		s := b.newState()
		a := b.newState()
		// any byte except newline, like conventional '.'
		b.addClass(s, classNode{negate: true, ranges: []byteRange{{'\n', '\n'}}}, a)
		return s, a
	case classNode:
		s := b.newState()
		a := b.newState()
		b.addClass(s, t, a)
		return s, a
	case seqNode:
		s, a := b.build(t.parts[0])
		for _, part := range t.parts[1:] {
			s2, a2 := b.build(part)
			b.addEps(a, s2)
			a = a2
		}
		return s, a
	case altNode:
		s := b.newState()
		a := b.newState()
		ls, la := b.build(t.left)
		rs, ra := b.build(t.right)
		b.addEps(s, ls)
		b.addEps(s, rs)
		b.addEps(la, a)
		b.addEps(ra, a)
		return s, a
	case starNode:
		s := b.newState()
		a := b.newState()
		is, ia := b.build(t.sub)
		b.addEps(s, is)
		b.addEps(s, a)
		b.addEps(ia, is)
		b.addEps(ia, a)
		return s, a
	case plusNode:
		is, ia := b.build(t.sub)
		a := b.newState()
		b.addEps(ia, is)
		b.addEps(ia, a)
		return is, a
	case optNode:
		s := b.newState()
		a := b.newState()
		is, ia := b.build(t.sub)
		b.addEps(s, is)
		b.addEps(s, a)
		b.addEps(ia, a)
		return s, a
	}
	panic("rx: unknown node type")
}

// Compile parses and compiles pattern into an NFA.
func Compile(pattern string) (*NFA, error) {
	p := &reParser{src: pattern}
	ast, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.errf("unexpected %q", string(p.src[p.pos]))
	}
	b := &nfaBuilder{}
	s, a := b.build(ast)
	return &NFA{Pattern: pattern, states: b.states, start: s, accept: a}, nil
}

// MustCompile is Compile but panics on error; for static patterns.
func MustCompile(pattern string) *NFA {
	n, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return n
}

// Literal builds an NFA matching exactly the given string, with all
// metacharacters treated literally. Used for keyword/operator terminals.
func Literal(s string) *NFA {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', ')', '[', ']', '*', '+', '?', '|', '.', '\\':
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	return MustCompile(b.String())
}

// closure expands set (a sorted state list encoded as a map) with
// epsilon transitions.
func (n *NFA) closure(set map[int]bool) {
	stack := make([]int, 0, len(set))
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.states[s] {
			if e.eps && !set[e.to] {
				set[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
}

// MatchPrefix returns the length of the longest prefix of input
// starting at offset that matches the pattern, or -1 if none
// (note: a pattern that accepts the empty string yields 0).
func (n *NFA) MatchPrefix(input string, offset int) int {
	cur := map[int]bool{n.start: true}
	n.closure(cur)
	best := -1
	if cur[n.accept] {
		best = 0
	}
	for i := offset; i < len(input) && len(cur) > 0; i++ {
		b := input[i]
		next := make(map[int]bool, len(cur))
		for s := range cur {
			for _, e := range n.states[s] {
				if e.eps {
					continue
				}
				if e.lit {
					if e.ch == b {
						next[e.to] = true
					}
				} else if e.cls.matches(b) {
					next[e.to] = true
				}
			}
		}
		n.closure(next)
		cur = next
		if cur[n.accept] {
			best = i - offset + 1
		}
	}
	return best
}

// Matches reports whether the whole string matches the pattern.
func (n *NFA) Matches(s string) bool {
	return n.MatchPrefix(s, 0) == len(s)
}

// FirstBytes returns the set of bytes that can begin a match, as a
// 256-entry bitmap. Used by the composability analysis to compute the
// "initial terminal" condition and by the scanner as a fast filter.
func (n *NFA) FirstBytes() [256]bool {
	var out [256]bool
	set := map[int]bool{n.start: true}
	n.closure(set)
	for s := range set {
		for _, e := range n.states[s] {
			if e.eps {
				continue
			}
			if e.lit {
				out[e.ch] = true
			} else {
				for b := 0; b < 256; b++ {
					if e.cls.matches(byte(b)) {
						out[b] = true
					}
				}
			}
		}
	}
	return out
}

// AcceptsEmpty reports whether the pattern matches the empty string.
// Terminal patterns must not accept empty; the grammar layer checks this.
func (n *NFA) AcceptsEmpty() bool {
	set := map[int]bool{n.start: true}
	n.closure(set)
	return set[n.accept]
}
