// Differential tests pinning the specialized kernels (kernels.go)
// against the retained boxed reference path (*Ref in ops.go), plus
// kernel-specific behavior: validate-before-allocate, cancellation,
// parallel/serial counters, and backing-slice reuse.
//
// Error-parity rule: when the reference errors on a non-empty input the
// kernel must error too (texts are pinned separately in
// TestKernelErrorTexts); on EMPTY inputs the kernel is deliberately
// stricter — the reference discovers type errors per element, so an
// invalid (op, elem) combination "succeeds" on zero elements, while the
// kernels validate the combination up front regardless of size.
package matrix

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/par"
)

var kernelOps = []Op{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr}

// randKernelMat fills a matrix with values that exercise the kernels:
// ints include zeros (division/modulo error parity), floats never hit
// exact zero (no NaN/Inf, so exact equality against the reference is
// meaningful).
func randKernelMat(r *rand.Rand, elem Elem, shape ...int) *Matrix {
	m := New(elem, shape...)
	switch elem {
	case Float:
		for k := range m.f {
			v := 0.25 + 3*r.Float64()
			if r.Intn(2) == 0 {
				v = -v
			}
			m.f[k] = v
		}
	case Int:
		for k := range m.i {
			m.i[k] = int64(r.Intn(9) - 4)
		}
	case Bool:
		for k := range m.b {
			m.b[k] = r.Intn(2) == 0
		}
	}
	return m
}

// checkKernelDiff applies the error-parity rule and compares values.
// matmulEps > 0 compares floats with a tolerance (the blocked kernel
// sums in a different order than the reference).
func checkKernelDiff(t *testing.T, label string, got *Matrix, gerr error, want *Matrix, werr error, size int, matmulEps float64) {
	t.Helper()
	if gerr != nil {
		if werr == nil && size > 0 {
			t.Fatalf("%s: kernel error %v, reference succeeded", label, gerr)
		}
		return
	}
	if werr != nil {
		t.Fatalf("%s: kernel succeeded, reference failed: %v", label, werr)
	}
	if got.Elem() != want.Elem() {
		t.Fatalf("%s: kernel elem %v, reference elem %v", label, got.Elem(), want.Elem())
	}
	if matmulEps > 0 {
		if !AlmostEqual(got, want, matmulEps) {
			t.Fatalf("%s: kernel result differs from reference:\n  got  %v\n  want %v", label, got, want)
		}
		return
	}
	if !Equal(got, want) {
		t.Fatalf("%s: kernel result differs from reference:\n  got  %v\n  want %v", label, got, want)
	}
}

// kernelExecs returns the serial and pool-parallel environments the
// differential suites run every case under. The returned cleanup
// restores ParallelGrain and shuts the pool down.
func kernelExecs(t *testing.T) map[string]Exec {
	t.Helper()
	oldGrain := ParallelGrain
	ParallelGrain = 64 // force the parallel path on small test matrices
	pool := par.NewPool(4)
	t.Cleanup(func() {
		ParallelGrain = oldGrain
		pool.Shutdown()
	})
	return map[string]Exec{
		"serial":   {},
		"parallel": {Pool: pool, Ctx: context.Background()},
	}
}

func TestKernelDiffElementwise(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	execs := kernelExecs(t)
	elems := []Elem{Float, Int, Bool}
	shapes := [][]int{{0}, {1}, {7}, {3, 5}, {257}, {2, 3, 4}}
	for _, shape := range shapes {
		for _, ae := range elems {
			for _, be := range elems {
				a := randKernelMat(r, ae, shape...)
				b := randKernelMat(r, be, shape...)
				for _, op := range kernelOps {
					want, werr := ElementwiseRef(op, a, b)
					for mode, x := range execs {
						got, gerr := ElementwiseExec(op, a, b, x)
						label := mode + " " + op.String() + " " + a.String() + " " + b.String()
						checkKernelDiff(t, label, got, gerr, want, werr, a.Size(), 0)
					}
				}
			}
		}
	}
	// Shape mismatch stays an error on both paths.
	a := randKernelMat(r, Float, 2, 3)
	b := randKernelMat(r, Float, 3, 2)
	if _, err := ElementwiseExec(OpAdd, a, b, Exec{}); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}

func TestKernelDiffBroadcast(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	execs := kernelExecs(t)
	elems := []Elem{Float, Int, Bool}
	scalars := []any{2.5, -0.75, int64(3), int64(0), int64(-2), 4, true, false, "bad"}
	shapes := [][]int{{0}, {1}, {6}, {4, 5}, {259}}
	for _, shape := range shapes {
		for _, me := range elems {
			m := randKernelMat(r, me, shape...)
			for _, s := range scalars {
				for _, matLeft := range []bool{true, false} {
					for _, op := range kernelOps {
						want, werr := BroadcastRef(op, m, s, matLeft)
						for mode, x := range execs {
							got, gerr := BroadcastExec(op, m, s, matLeft, x)
							label := mode + " " + op.String() + " " + m.String()
							checkKernelDiff(t, label, got, gerr, want, werr, m.Size(), 0)
						}
					}
				}
			}
		}
	}
}

func TestKernelDiffUnary(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	execs := kernelExecs(t)
	for _, elem := range []Elem{Float, Int, Bool} {
		for _, shape := range [][]int{{0}, {1}, {5, 3}, {300}} {
			m := randKernelMat(r, elem, shape...)
			for _, neg := range []bool{true, false} {
				want, werr := UnaryRef(neg, m)
				for mode, x := range execs {
					got, gerr := UnaryExec(neg, m, x)
					checkKernelDiff(t, mode+" unary "+m.String(), got, gerr, want, werr, m.Size(), 0)
				}
			}
		}
	}
}

func TestKernelDiffMatMul(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	execs := kernelExecs(t)
	elems := []Elem{Float, Int}
	dims := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 1, 5}, {17, 33, 9}, {31, 200, 7}, {0, 3, 4}, {3, 0, 4}}
	for _, d := range dims {
		for _, ae := range elems {
			for _, be := range elems {
				a := randKernelMat(r, ae, d[0], d[1])
				b := randKernelMat(r, be, d[1], d[2])
				want, werr := MatMulRef(a, b)
				for mode, x := range execs {
					got, gerr := MatMulExec(a, b, x)
					eps := 1e-9
					if ae == Int && be == Int {
						eps = 0
					}
					checkKernelDiff(t, mode+" matmul "+a.String()+" "+b.String(), got, gerr, want, werr, d[0]*d[2], eps)
				}
			}
		}
	}
	// Error cases: rank, inner-dimension mismatch, bool operands.
	bad := [][2]*Matrix{
		{New(Float, 4), New(Float, 4, 4)},
		{New(Float, 2, 3), New(Float, 4, 2)},
		{New(Bool, 2, 2), New(Float, 2, 2)},
	}
	for _, pair := range bad {
		_, werr := MatMulRef(pair[0], pair[1])
		_, gerr := MatMulExec(pair[0], pair[1], Exec{})
		if werr == nil || gerr == nil || gerr.Error() != werr.Error() {
			t.Fatalf("matmul error parity: kernel %v, reference %v", gerr, werr)
		}
	}
}

// FuzzKernelDiff drives random (op, shape, elem, scalar, mode)
// combinations through every kernel and the boxed reference.
func FuzzKernelDiff(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	pool := par.NewPool(4)
	defer pool.Shutdown()
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		elems := []Elem{Float, Int, Bool}
		// Random shape, sometimes large enough for the parallel path at
		// the default grain.
		var shape []int
		for d, rank := 0, 1+r.Intn(3); d < rank; d++ {
			shape = append(shape, r.Intn(8))
		}
		if r.Intn(4) == 0 {
			shape = []int{2*ParallelGrain + r.Intn(100)}
		}
		x := Exec{}
		if r.Intn(2) == 0 {
			x = Exec{Pool: pool, Ctx: context.Background()}
		}
		op := kernelOps[r.Intn(len(kernelOps))]
		size := 1
		for _, d := range shape {
			size *= d
		}
		switch r.Intn(7) {
		case 0:
			a := randKernelMat(r, elems[r.Intn(3)], shape...)
			b := randKernelMat(r, elems[r.Intn(3)], shape...)
			want, werr := ElementwiseRef(op, a, b)
			got, gerr := ElementwiseExec(op, a, b, x)
			checkKernelDiff(t, "fuzz ew "+op.String(), got, gerr, want, werr, size, 0)
		case 1:
			m := randKernelMat(r, elems[r.Intn(3)], shape...)
			scalars := []any{1.5, int64(r.Intn(5) - 2), true}
			s := scalars[r.Intn(len(scalars))]
			matLeft := r.Intn(2) == 0
			want, werr := BroadcastRef(op, m, s, matLeft)
			got, gerr := BroadcastExec(op, m, s, matLeft, x)
			checkKernelDiff(t, "fuzz bc "+op.String(), got, gerr, want, werr, size, 0)
		case 2:
			m := randKernelMat(r, elems[r.Intn(3)], shape...)
			neg := r.Intn(2) == 0
			want, werr := UnaryRef(neg, m)
			got, gerr := UnaryExec(neg, m, x)
			checkKernelDiff(t, "fuzz unary", got, gerr, want, werr, size, 0)
		case 3:
			mi, k, n := r.Intn(6), r.Intn(6), r.Intn(6)
			a := randKernelMat(r, elems[r.Intn(2)], mi, k)
			b := randKernelMat(r, elems[r.Intn(2)], k, n)
			want, werr := MatMulRef(a, b)
			got, gerr := MatMulExec(a, b, x)
			eps := 0.0
			if a.Elem() == Float || b.Elem() == Float {
				eps = 1e-9
			}
			checkKernelDiff(t, "fuzz matmul", got, gerr, want, werr, mi*n, eps)
		case 4:
			m := randKernelMat(r, elems[r.Intn(3)], r.Intn(40), r.Intn(40))
			want, werr := TransposeRef(m)
			got, gerr := TransposeExec(m, x)
			checkKernelDiff(t, "fuzz transpose", got, gerr, want, werr, m.Size(), 0)
		case 5:
			src := randKernelMat(r, elems[r.Intn(2)], 1+r.Intn(20), 1+r.Intn(20))
			kern := randKernelMat(r, elems[r.Intn(2)], 1+2*r.Intn(3), 1+2*r.Intn(3))
			want, werr := Conv2DRef(src, kern)
			got, gerr := Conv2DExec(src, kern, x)
			checkKernelDiff(t, "fuzz conv", got, gerr, want, werr, src.Size(), 0)
		case 6:
			var rshape []int
			for d, rank := 0, 1+r.Intn(3); d < rank; d++ {
				rshape = append(rshape, r.Intn(9))
			}
			m := randKernelMat(r, elems[r.Intn(2)], rshape...)
			kind := foldKinds[r.Intn(len(foldKinds))]
			axis := r.Intn(len(rshape))
			want, werr := ReduceAxisRef(kind, m, axis)
			got, gerr := ReduceAxisExec(kind, m, axis, x)
			checkKernelDiff(t, "fuzz reduce", got, gerr, want, werr, m.Size(), 0)
		}
	})
}

// TestKernelErrorTexts pins the kernel-path error messages (the texts
// the interpreter's trap classifier and users see).
func TestKernelErrorTexts(t *testing.T) {
	f := New(Float, 2)
	i2 := FromInts([]int64{4, 6}, 2)
	iz := FromInts([]int64{1, 0}, 2)
	bl := FromBools([]bool{true, false}, 2)
	cases := []struct {
		err  error
		want string
	}{
		{errOf(ElementwiseExec(OpAdd, f, New(Float, 3), Exec{})), "matrix: + requires equal shapes, got [2] and [3]"},
		{errOf(ElementwiseExec(OpDiv, i2, iz, Exec{})), "matrix: integer division by zero"},
		{errOf(ElementwiseExec(OpMod, i2, iz, Exec{})), "matrix: integer modulo by zero"},
		{errOf(ElementwiseExec(OpMod, f, i2, Exec{})), "matrix: % is not a float operator"},
		{errOf(ElementwiseExec(OpAnd, f, f, Exec{})), "matrix: && requires bool operands"},
		{errOf(ElementwiseExec(OpLt, bl, bl, Exec{})), "matrix: < cannot compare bool values"},
		{errOf(ElementwiseExec(OpAdd, bl, i2, Exec{})), "matrix: + cannot compare bool values"},
		{errOf(BroadcastExec(OpDiv, i2, 0, true, Exec{})), "matrix: integer division by zero"},
		{errOf(BroadcastExec(OpMod, i2, 0, true, Exec{})), "matrix: integer modulo by zero"},
		{errOf(BroadcastExec(OpDiv, iz, int64(7), false, Exec{})), "matrix: integer division by zero"},
		{errOf(BroadcastExec(OpAdd, f, "nope", true, Exec{})), "matrix: + cannot be applied to a string operand"},
		{errOf(MatMulExec(New(Float, 4), New(Float, 4, 4), Exec{})), "matrix: matmul requires rank-2 matrices, got ranks 1 and 2"},
		{errOf(MatMulExec(New(Float, 2, 3), New(Float, 4, 2), Exec{})), "matrix: matmul dimension mismatch: [2 3] x [4 2]"},
		{errOf(MatMulExec(New(Bool, 2, 2), New(Float, 2, 2), Exec{})), "matrix: matmul requires numeric matrices"},
		{errOf(UnaryExec(true, bl, Exec{})), "matrix: cannot negate a bool matrix"},
		{errOf(UnaryExec(false, f, Exec{})), "matrix: logical not requires a bool matrix"},
	}
	for _, c := range cases {
		if c.err == nil || c.err.Error() != c.want {
			t.Errorf("error text: got %v, want %q", c.err, c.want)
		}
	}
}

func errOf(_ *Matrix, err error) error { return err }

// TestKernelValidateBeforeAllocate: an invalid (op, elem) combination
// must not charge the budget — validation happens before any
// allocation (the satellite fix for the old allocate-then-fail order).
func TestKernelValidateBeforeAllocate(t *testing.T) {
	f := New(Float, 8)
	bl := New(Bool, 8)
	iz := New(Int, 8) // zeros
	cases := []func(x Exec) error{
		func(x Exec) error { return errOf(ElementwiseExec(OpAnd, f, f, x)) },
		func(x Exec) error { return errOf(ElementwiseExec(OpLt, bl, bl, x)) },
		func(x Exec) error { return errOf(ElementwiseExec(OpMod, f, f, x)) },
		func(x Exec) error { return errOf(BroadcastExec(OpDiv, iz, 0, true, x)) },
		func(x Exec) error { return errOf(BroadcastExec(OpAdd, f, "nope", true, x)) },
		func(x Exec) error { return errOf(UnaryExec(true, bl, x)) },
		func(x Exec) error { return errOf(MatMulExec(bl, bl, x)) },
	}
	for k, run := range cases {
		budget := NewBudget(1 << 20)
		if err := run(Exec{Budget: budget}); err == nil {
			t.Fatalf("case %d: invalid combination did not error", k)
		}
		if used := budget.Used(); used != 0 {
			t.Fatalf("case %d: invalid combination charged %d cells before failing", k, used)
		}
	}
}

// TestKernelBudgetError: a denied charge surfaces as *BudgetError and
// nothing is retained.
func TestKernelBudgetError(t *testing.T) {
	a := New(Float, 100)
	budget := NewBudget(10)
	_, err := ElementwiseExec(OpAdd, a, a, Exec{Budget: budget})
	var be *BudgetError
	if err == nil || !asBudgetError(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
}

func asBudgetError(err error, out **BudgetError) bool {
	be, ok := err.(*BudgetError)
	if ok {
		*out = be
	}
	return ok
}

// TestKernelCancellation: a cancelled context aborts both the serial
// and the pool path mid-kernel.
func TestKernelCancellation(t *testing.T) {
	oldGrain := ParallelGrain
	ParallelGrain = 64
	pool := par.NewPool(2)
	defer func() {
		ParallelGrain = oldGrain
		pool.Shutdown()
	}()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := New(Float, 10000)
	for _, x := range []Exec{{Ctx: ctx}, {Pool: pool, Ctx: ctx}} {
		if _, err := ElementwiseExec(OpAdd, a, a, x); err == nil || !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("cancelled kernel returned %v", err)
		}
	}
}

// TestKernelCounters: large pooled kernels count as parallel, small or
// poolless ones as serial.
func TestKernelCounters(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Shutdown()
	ResetKernelStats()
	big := New(Float, 4*ParallelGrain)
	if _, err := ElementwiseExec(OpAdd, big, big, Exec{Pool: pool}); err != nil {
		t.Fatal(err)
	}
	small := New(Float, 8)
	if _, err := ElementwiseExec(OpAdd, small, small, Exec{Pool: pool}); err != nil {
		t.Fatal(err)
	}
	if _, err := ElementwiseExec(OpAdd, big, big, Exec{}); err != nil {
		t.Fatal(err)
	}
	par, ser, _ := KernelStats()
	if par != 1 || ser != 2 {
		t.Fatalf("counters: parallel=%d serial=%d, want 1 and 2", par, ser)
	}
}

// TestKernelBufferReuse: recycling a kernel output feeds the next
// same-size output from the free list, and the reused buffer's stale
// contents are fully overwritten.
func TestKernelBufferReuse(t *testing.T) {
	DrainFreeLists()
	ResetKernelStats()
	a := randKernelMat(rand.New(rand.NewSource(5)), Float, 1024)
	out1, err := ElementwiseExec(OpAdd, a, a, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	want := out1.Copy()
	out1.Recycle()
	out2, err := ElementwiseExec(OpAdd, a, a, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, reused := KernelStats(); reused != 1 {
		t.Fatalf("buffers reused = %d, want 1", reused)
	}
	if !Equal(out2, want) {
		t.Fatal("reused buffer produced a different result")
	}
	// Budget accounting stays exact: reuse still charges.
	DrainFreeLists()
	budget := NewBudget(4096)
	out3, err := ElementwiseExec(OpAdd, a, a, Exec{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	out3.Recycle()
	if _, err := ElementwiseExec(OpAdd, a, a, Exec{Budget: budget}); err != nil {
		t.Fatal(err)
	}
	if used := budget.Used(); used != 2048 {
		t.Fatalf("budget.Used() = %d after two 1024-cell outputs, want 2048", used)
	}
	DrainFreeLists()
}

// TestRecycleDetachesStorage: after Recycle the matrix no longer owns
// storage — element access panics instead of silently reading a buffer
// that may belong to someone else. Recycle is idempotent.
func TestRecycleDetachesStorage(t *testing.T) {
	DrainFreeLists()
	m := New(Float, 512)
	m.Recycle()
	m.Recycle() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("access after Recycle did not panic")
		}
		DrainFreeLists()
	}()
	_ = m.Get(0)
}

// TestNewBudgetedClearsReusedBuffer: NewBudgeted promises zeroed
// storage even when the slice comes from the free list.
func TestNewBudgetedClearsReusedBuffer(t *testing.T) {
	DrainFreeLists()
	m := New(Float, 512)
	for k := range m.f {
		m.f[k] = 7
	}
	m.Recycle()
	m2 := New(Float, 512)
	for k, v := range m2.f {
		if v != 0 {
			t.Fatalf("reused NewBudgeted slice not cleared at %d: %v", k, v)
		}
	}
	DrainFreeLists()
}

// TestFreeListBounds: tiny buffers are not retained, and class/byte
// caps bound retention.
func TestFreeListBounds(t *testing.T) {
	DrainFreeLists()
	ResetKernelStats()
	small := New(Float, 8) // below minReuseCells
	small.Recycle()
	if got := freeListBytes.Load(); got != 0 {
		t.Fatalf("free list retained a tiny buffer: %d bytes", got)
	}
	// Allocate first, then recycle — recycling one at a time would just
	// hand the same buffer back through NewBudgeted's free-list path.
	var ms []*Matrix
	for k := 0; k < 2*maxPerClass; k++ {
		ms = append(ms, New(Float, 512))
	}
	for _, m := range ms {
		m.Recycle()
	}
	floatFree.mu.Lock()
	n := len(floatFree.classes[9]) // 512 cells → class 9
	floatFree.mu.Unlock()
	if n != maxPerClass {
		t.Fatalf("class retention = %d, want %d", n, maxPerClass)
	}
	DrainFreeLists()
	if got := freeListBytes.Load(); got != 0 {
		t.Fatalf("drain left %d bytes accounted", got)
	}
}
