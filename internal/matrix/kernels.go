// Type-specialized, pool-parallel arithmetic kernels — the hot half of
// the runtime the paper's fork-join model (§III-C) exists for. The
// generic paths in ops.go box every element through `any` and a
// per-element scalarOp call; these kernels validate the (op, elem)
// combination once up front, then run tight loops directly over the
// backing []float64/[]int64/[]bool slices, with the iteration space
// chunked over the persistent worker pool when the matrix is large
// enough to amortize the dispatch (see ParallelGrain).
//
// Mixed int/float operands are promoted once into a free-list-backed
// float64 scratch buffer (one conversion pass) instead of converting
// per element per operator; the scratch goes straight back to the free
// list. Outputs come from newKernelOut, which skips zeroing because
// every kernel writes each cell of its range exactly once (MatMulExec
// clears its own rows before accumulating).
//
// The kernels keep PR 2's crash contract: errors (integer division by
// zero, budget, cancellation) return through the Exec machinery, pool
// workers are panic-isolated by par.Pool, and cooperative abort / ctx
// polls run between chunks so a cancelled request stops mid-kernel.
package matrix

import (
	"fmt"
	"sync/atomic"
)

// ParallelGrain is the minimum number of elements a parallel chunk must
// hold for a kernel to be distributed over the pool; anything smaller
// runs serially (pool dispatch costs roughly a microsecond — it only
// pays for itself when each worker gets thousands of cells). For
// MatMulExec the grain is interpreted in fused multiply-adds, so even a
// single large row can be a chunk. Set it before creating traffic;
// mutating it concurrently with running kernels is a race.
var ParallelGrain = 8192

// Process-wide kernel execution counters, surfaced on driver /metrics
// as kernel_parallel_total / kernel_serial_total / kernel_buffers_reused.
var (
	kernelParallelCount atomic.Int64
	kernelSerialCount   atomic.Int64
	kernelBuffersReused atomic.Int64
)

// KernelStats returns the process-wide kernel counters: constructs run
// on the pool, constructs run serially, and outputs or scratch buffers
// served from the backing-slice free list.
func KernelStats() (parallel, serial, buffersReused int64) {
	return kernelParallelCount.Load(), kernelSerialCount.Load(), kernelBuffersReused.Load()
}

// ResetKernelStats zeroes the kernel counters (tests only).
func ResetKernelStats() {
	kernelParallelCount.Store(0)
	kernelSerialCount.Store(0)
	kernelBuffersReused.Store(0)
}

// newKernelOut allocates a kernel output like NewBudgeted — shape
// validated and the cell count charged before any storage exists — but
// serves the backing slice from the free list when possible and skips
// zeroing, because the kernel writes every cell of its range.
func newKernelOut(b *Budget, elem Elem, shape []int) (*Matrix, error) {
	n, err := checkedSize(shape)
	if err != nil {
		return nil, err
	}
	if hook := TestHookAllocFail; hook != nil {
		if err := hook(n); err != nil {
			return nil, err
		}
	}
	if err := b.Charge(n); err != nil {
		return nil, err
	}
	m := &Matrix{elem: elem, shape: append([]int(nil), shape...)}
	m.strides = stridesFor(m.shape)
	switch elem {
	case Float:
		if s, ok := floatFree.get(n); ok {
			m.f = s
		} else {
			m.f = make([]float64, n)
		}
	case Int:
		if s, ok := intFree.get(n); ok {
			m.i = s
		} else {
			m.i = make([]int64, n)
		}
	case Bool:
		if s, ok := boolFree.get(n); ok {
			m.b = s
		} else {
			m.b = make([]bool, n)
		}
	}
	return m, nil
}

// runKernel executes body over [0, n) in chunks of at least grain
// elements. With no pool (or too little work for two chunks) it runs
// serially, polling the context between chunks; otherwise the chunks
// are distributed over the pool via ParallelForCtx, which carries the
// cooperative abort flag, per-worker panic isolation, and deadline
// polls between chunks.
func runKernel(x Exec, n, grain int, body func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	if x.Pool == nil || n < 2*grain {
		kernelSerialCount.Add(1)
		for lo := 0; lo < n; lo += grain {
			if err := x.cancelled(); err != nil {
				return err
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			if err := body(lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	kernelParallelCount.Add(1)
	chunks := (n + grain - 1) / grain
	if maxChunks := x.Pool.Workers() * 4; chunks > maxChunks {
		chunks = maxChunks
	}
	span := (n + chunks - 1) / chunks
	return x.Pool.ParallelForCtx(x.Ctx, 0, chunks, func(c int) error {
		lo := c * span
		hi := lo + span
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return nil
		}
		return body(lo, hi)
	})
}

// validateBinary checks an (op, elem, elem) combination and returns the
// result element type — the single up-front validation the kernels rely
// on so no allocation happens for a combination that cannot execute.
// Int division/modulo by zero remains a runtime error (data-dependent).
func validateBinary(op Op, a, b Elem) (Elem, error) {
	if op.isLogical() {
		if a != Bool || b != Bool {
			return 0, fmt.Errorf("matrix: %s requires bool operands", op)
		}
		return Bool, nil
	}
	if a == Bool || b == Bool {
		if a == Bool && b == Bool && (op == OpEq || op == OpNe) {
			return Bool, nil
		}
		return 0, fmt.Errorf("matrix: %s cannot compare bool values", op)
	}
	if op == OpMod && (a == Float || b == Float) {
		return 0, fmt.Errorf("matrix: %s is not a float operator", op)
	}
	if op.isComparison() {
		return Bool, nil
	}
	if a == Float || b == Float {
		return Float, nil
	}
	return Int, nil
}

// floatScratch returns m's storage as []float64. Float matrices alias
// their own storage (scratch=false); int matrices are converted once
// into a free-list-backed, budget-charged scratch buffer the caller
// must release with releaseFloatScratch.
func floatScratch(x Exec, m *Matrix) (view []float64, scratch bool, err error) {
	if m.elem == Float {
		return m.f, false, nil
	}
	n := len(m.i)
	if err := x.Budget.Charge(n); err != nil {
		return nil, false, err
	}
	s, ok := floatFree.get(n)
	if !ok {
		s = make([]float64, n)
	}
	for k, v := range m.i {
		s[k] = float64(v)
	}
	return s, true, nil
}

func releaseFloatScratch(s []float64, scratch bool) {
	if scratch {
		floatFree.put(s)
	}
}

// ElementwiseExec applies op pointwise over two matrices of equal shape
// through the specialized kernels, on x's pool/budget/context. The
// result is always freshly allocated (never an alias of an operand).
func ElementwiseExec(op Op, a, b *Matrix, x Exec) (*Matrix, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("matrix: %s requires equal shapes, got %v and %v", op, a.shape, b.shape)
	}
	oe, err := validateBinary(op, a.elem, b.elem)
	if err != nil {
		return nil, err
	}
	out, err := newKernelOut(x.Budget, oe, a.shape)
	if err != nil {
		return nil, err
	}
	n := out.Size()
	if n == 0 {
		return out, nil
	}

	var body func(lo, hi int) error
	var cleanup func()
	switch {
	case a.elem == Bool: // validated: b is Bool too
		ab, bb, db := a.b, b.b, out.b
		body = func(lo, hi int) error { ewBool(op, db, ab, bb, lo, hi); return nil }
	case a.elem == Int && b.elem == Int:
		if oe == Bool {
			ai, bi, db := a.i, b.i, out.b
			body = func(lo, hi int) error { ewCmp(op, db, ai, bi, lo, hi); return nil }
		} else {
			ai, bi, di := a.i, b.i, out.i
			body = func(lo, hi int) error { return ewArithInt(op, di, ai, bi, lo, hi) }
		}
	default: // at least one Float operand; promote the int side once
		av, aScr, err := floatScratch(x, a)
		if err != nil {
			out.Recycle()
			return nil, err
		}
		bv, bScr, err := floatScratch(x, b)
		if err != nil {
			releaseFloatScratch(av, aScr)
			out.Recycle()
			return nil, err
		}
		cleanup = func() {
			releaseFloatScratch(av, aScr)
			releaseFloatScratch(bv, bScr)
		}
		if oe == Bool {
			db := out.b
			body = func(lo, hi int) error { ewCmp(op, db, av, bv, lo, hi); return nil }
		} else {
			df := out.f
			body = func(lo, hi int) error { ewArithFloat(op, df, av, bv, lo, hi); return nil }
		}
	}
	err = runKernel(x, n, ParallelGrain, body)
	if cleanup != nil {
		cleanup()
	}
	if err != nil {
		out.Recycle()
		return nil, err
	}
	return out, nil
}

// flipCmp mirrors a comparison so `s op a[i]` can run as `a[i] op' s`,
// collapsing the scalar-on-the-left broadcast loops into the
// matrix-on-the-left ones.
func flipCmp(op Op) Op {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op // Eq, Ne are symmetric
}

// BroadcastExec applies op between a matrix and a scalar (matLeft
// selects m op s vs s op m) through the specialized kernels.
func BroadcastExec(op Op, m *Matrix, s any, matLeft bool, x Exec) (*Matrix, error) {
	var sElem Elem
	var sf float64
	var si int64
	var sb bool
	switch v := s.(type) {
	case float64:
		sElem, sf = Float, v
	case int64:
		sElem, si, sf = Int, v, float64(v)
	case int:
		sElem, si, sf = Int, int64(v), float64(v)
	case bool:
		sElem, sb = Bool, v
	default:
		return nil, fmt.Errorf("matrix: %s cannot be applied to a %T operand", op, s)
	}
	oe, err := validateBinary(op, m.elem, sElem)
	if err != nil {
		return nil, err
	}
	// A zero int divisor that is the scalar fails for every element —
	// catch it before allocating anything.
	if m.elem == Int && sElem == Int && matLeft && si == 0 {
		if op == OpDiv {
			return nil, fmt.Errorf("matrix: integer division by zero")
		}
		if op == OpMod {
			return nil, fmt.Errorf("matrix: integer modulo by zero")
		}
	}
	out, err := newKernelOut(x.Budget, oe, m.shape)
	if err != nil {
		return nil, err
	}
	n := out.Size()
	if n == 0 {
		return out, nil
	}

	var body func(lo, hi int) error
	var cleanup func()
	switch {
	case m.elem == Bool: // validated: scalar is Bool too
		mb, db := m.b, out.b
		body = func(lo, hi int) error { ewBoolScalar(op, db, mb, sb, lo, hi); return nil }
	case m.elem == Int && sElem == Int:
		if oe == Bool {
			cop := op
			if !matLeft {
				cop = flipCmp(op)
			}
			mi, db := m.i, out.b
			body = func(lo, hi int) error { bcCmp(cop, db, mi, si, lo, hi); return nil }
		} else {
			mi, di := m.i, out.i
			body = func(lo, hi int) error { return bcArithInt(op, di, mi, si, matLeft, lo, hi) }
		}
	default: // at least one Float side; promote the int side once
		mv, mScr, err := floatScratch(x, m)
		if err != nil {
			out.Recycle()
			return nil, err
		}
		cleanup = func() { releaseFloatScratch(mv, mScr) }
		if oe == Bool {
			cop := op
			if !matLeft {
				cop = flipCmp(op)
			}
			db := out.b
			body = func(lo, hi int) error { bcCmp(cop, db, mv, sf, lo, hi); return nil }
		} else {
			df := out.f
			body = func(lo, hi int) error { bcArithFloat(op, df, mv, sf, matLeft, lo, hi); return nil }
		}
	}
	err = runKernel(x, n, ParallelGrain, body)
	if cleanup != nil {
		cleanup()
	}
	if err != nil {
		out.Recycle()
		return nil, err
	}
	return out, nil
}

// UnaryExec applies negation or logical not through the specialized
// kernels.
func UnaryExec(neg bool, m *Matrix, x Exec) (*Matrix, error) {
	if neg && m.elem == Bool {
		return nil, fmt.Errorf("matrix: cannot negate a bool matrix")
	}
	if !neg && m.elem != Bool {
		return nil, fmt.Errorf("matrix: logical not requires a bool matrix")
	}
	out, err := newKernelOut(x.Budget, m.elem, m.shape)
	if err != nil {
		return nil, err
	}
	n := out.Size()
	if n == 0 {
		return out, nil
	}
	var body func(lo, hi int) error
	switch m.elem {
	case Float:
		src, dst := m.f, out.f
		body = func(lo, hi int) error {
			d, s := dst[lo:hi], src[lo:hi]
			for i, v := range s {
				d[i] = -v
			}
			return nil
		}
	case Int:
		src, dst := m.i, out.i
		body = func(lo, hi int) error {
			d, s := dst[lo:hi], src[lo:hi]
			for i, v := range s {
				d[i] = -v
			}
			return nil
		}
	default:
		src, dst := m.b, out.b
		body = func(lo, hi int) error {
			d, s := dst[lo:hi], src[lo:hi]
			for i, v := range s {
				d[i] = !v
			}
			return nil
		}
	}
	if err := runKernel(x, n, ParallelGrain, body); err != nil {
		out.Recycle()
		return nil, err
	}
	return out, nil
}

// MatMulExec computes the linear-algebra product of two rank-2 matrices
// with a cache-blocked i-k-j kernel, distributing row blocks over the
// pool. Int x Int stays exact in int64; any Float operand promotes the
// int side once and runs the float kernel. Note the i-k-j order sums
// float products in a different order than the naive i-j-k reference —
// equal up to rounding, which is why the differential tests compare
// MatMul results with a tolerance.
func MatMulExec(a, b *Matrix, x Exec) (*Matrix, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("matrix: matmul requires rank-2 matrices, got ranks %d and %d", a.Rank(), b.Rank())
	}
	if a.shape[1] != b.shape[0] {
		return nil, fmt.Errorf("matrix: matmul dimension mismatch: %v x %v", a.shape, b.shape)
	}
	if a.elem == Bool || b.elem == Bool {
		return nil, fmt.Errorf("matrix: matmul requires numeric matrices")
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	// Rows per parallel chunk: ParallelGrain counts fused multiply-adds
	// here, so small products stay serial and a single wide row can
	// still be its own chunk.
	rowWork := k * n
	grainRows := 1
	if rowWork > 0 {
		grainRows = (ParallelGrain + rowWork - 1) / rowWork
	}
	if a.elem == Int && b.elem == Int {
		out, err := newKernelOut(x.Budget, Int, []int{m, n})
		if err != nil {
			return nil, err
		}
		ai, bi, di := a.i, b.i, out.i
		err = runKernel(x, m, grainRows, func(rlo, rhi int) error {
			if k > mmRecCutoff && n > mmRecCutoff {
				mmRecRows(di, ai, bi, rlo, rhi, k, n)
			} else {
				mmInt(di, ai, bi, rlo, rhi, k, n)
			}
			return nil
		})
		if err != nil {
			out.Recycle()
			return nil, err
		}
		return out, nil
	}
	av, aScr, err := floatScratch(x, a)
	if err != nil {
		return nil, err
	}
	bv, bScr, err := floatScratch(x, b)
	if err != nil {
		releaseFloatScratch(av, aScr)
		return nil, err
	}
	out, err := newKernelOut(x.Budget, Float, []int{m, n})
	if err != nil {
		releaseFloatScratch(av, aScr)
		releaseFloatScratch(bv, bScr)
		return nil, err
	}
	df := out.f
	err = runKernel(x, m, grainRows, func(rlo, rhi int) error {
		if k > mmRecCutoff && n > mmRecCutoff {
			mmRecRows(df, av, bv, rlo, rhi, k, n)
		} else {
			mmFloat(df, av, bv, rlo, rhi, k, n)
		}
		return nil
	})
	releaseFloatScratch(av, aScr)
	releaseFloatScratch(bv, bScr)
	if err != nil {
		out.Recycle()
		return nil, err
	}
	return out, nil
}

// mmBlockK is the k-dimension block size of the matmul kernels: one
// block of b's rows (mmBlockK x n cells) is streamed repeatedly against
// a block of output rows while it is still cache-resident.
const mmBlockK = 128

// mmFloat computes rows [rlo, rhi) of dst = a x b in i-k-j order:
// the inner loop walks one row of b and one row of dst sequentially,
// so stores stream and the loop vectorizes — unlike i-j-k, which
// strides down b's columns. Rows are cleared here (outputs are not
// pre-zeroed) and accumulated block by block over k.
func mmFloat(dst, a, b []float64, rlo, rhi, kk, n int) {
	for i := rlo; i < rhi; i++ {
		clear(dst[i*n : (i+1)*n])
	}
	for k0 := 0; k0 < kk; k0 += mmBlockK {
		k1 := k0 + mmBlockK
		if k1 > kk {
			k1 = kk
		}
		for i := rlo; i < rhi; i++ {
			row := dst[i*n : (i+1)*n]
			arow := a[i*kk+k0 : i*kk+k1]
			for kx, av := range arow {
				brow := b[(k0+kx)*n : (k0+kx+1)*n]
				for j, bv := range brow {
					row[j] += av * bv
				}
			}
		}
	}
}

// mmInt is mmFloat for exact int64 products.
func mmInt(dst, a, b []int64, rlo, rhi, kk, n int) {
	for i := rlo; i < rhi; i++ {
		clear(dst[i*n : (i+1)*n])
	}
	for k0 := 0; k0 < kk; k0 += mmBlockK {
		k1 := k0 + mmBlockK
		if k1 > kk {
			k1 = kk
		}
		for i := rlo; i < rhi; i++ {
			row := dst[i*n : (i+1)*n]
			arow := a[i*kk+k0 : i*kk+k1]
			for kx, av := range arow {
				brow := b[(k0+kx)*n : (k0+kx+1)*n]
				for j, bv := range brow {
					row[j] += av * bv
				}
			}
		}
	}
}

// --- elementwise inner loops ---
//
// Every loop re-slices its operands to [lo:hi) first so the compiler
// can hoist bounds checks, then ranges over one operand. The operator
// switch sits outside the loop: one validated dispatch, then a tight
// loop per (op, elem-pair) combination.

// ewArithFloat: float arithmetic, no data-dependent failure (float
// division follows IEEE, as the generic path always has).
func ewArithFloat(op Op, dst, a, b []float64, lo, hi int) {
	d, x, y := dst[lo:hi], a[lo:hi], b[lo:hi]
	switch op {
	case OpAdd:
		for i, v := range x {
			d[i] = v + y[i]
		}
	case OpSub:
		for i, v := range x {
			d[i] = v - y[i]
		}
	case OpMul:
		for i, v := range x {
			d[i] = v * y[i]
		}
	case OpDiv:
		for i, v := range x {
			d[i] = v / y[i]
		}
	}
}

// ewArithInt: int arithmetic; division and modulo keep their
// data-dependent zero check — the only mid-loop error path left.
func ewArithInt(op Op, dst, a, b []int64, lo, hi int) error {
	d, x, y := dst[lo:hi], a[lo:hi], b[lo:hi]
	switch op {
	case OpAdd:
		for i, v := range x {
			d[i] = v + y[i]
		}
	case OpSub:
		for i, v := range x {
			d[i] = v - y[i]
		}
	case OpMul:
		for i, v := range x {
			d[i] = v * y[i]
		}
	case OpDiv:
		for i, v := range x {
			if y[i] == 0 {
				return fmt.Errorf("matrix: integer division by zero")
			}
			d[i] = v / y[i]
		}
	case OpMod:
		for i, v := range x {
			if y[i] == 0 {
				return fmt.Errorf("matrix: integer modulo by zero")
			}
			d[i] = v % y[i]
		}
	}
	return nil
}

// ewCmp: comparisons over same-typed numeric slices (one generic body,
// instantiated for int64 and float64).
func ewCmp[T int64 | float64](op Op, dst []bool, a, b []T, lo, hi int) {
	d, x, y := dst[lo:hi], a[lo:hi], b[lo:hi]
	switch op {
	case OpEq:
		for i, v := range x {
			d[i] = v == y[i]
		}
	case OpNe:
		for i, v := range x {
			d[i] = v != y[i]
		}
	case OpLt:
		for i, v := range x {
			d[i] = v < y[i]
		}
	case OpLe:
		for i, v := range x {
			d[i] = v <= y[i]
		}
	case OpGt:
		for i, v := range x {
			d[i] = v > y[i]
		}
	case OpGe:
		for i, v := range x {
			d[i] = v >= y[i]
		}
	}
}

// ewBool: bool-bool operators (&&, ||, ==, !=).
func ewBool(op Op, dst, a, b []bool, lo, hi int) {
	d, x, y := dst[lo:hi], a[lo:hi], b[lo:hi]
	switch op {
	case OpAnd:
		for i, v := range x {
			d[i] = v && y[i]
		}
	case OpOr:
		for i, v := range x {
			d[i] = v || y[i]
		}
	case OpEq:
		for i, v := range x {
			d[i] = v == y[i]
		}
	case OpNe:
		for i, v := range x {
			d[i] = v != y[i]
		}
	}
}

// --- broadcast inner loops ---

// bcArithFloat: float arithmetic against a scalar; matLeft resolves the
// operand order for the non-commutative operators outside the loop.
func bcArithFloat(op Op, dst, a []float64, s float64, matLeft bool, lo, hi int) {
	d, x := dst[lo:hi], a[lo:hi]
	switch op {
	case OpAdd:
		for i, v := range x {
			d[i] = v + s
		}
	case OpMul:
		for i, v := range x {
			d[i] = v * s
		}
	case OpSub:
		if matLeft {
			for i, v := range x {
				d[i] = v - s
			}
		} else {
			for i, v := range x {
				d[i] = s - v
			}
		}
	case OpDiv:
		if matLeft {
			for i, v := range x {
				d[i] = v / s
			}
		} else {
			for i, v := range x {
				d[i] = s / v
			}
		}
	}
}

// bcArithInt: int arithmetic against a scalar. A scalar divisor of zero
// was rejected before allocation; a scalar dividend dividing by matrix
// elements keeps the per-element zero check.
func bcArithInt(op Op, dst, a []int64, s int64, matLeft bool, lo, hi int) error {
	d, x := dst[lo:hi], a[lo:hi]
	switch op {
	case OpAdd:
		for i, v := range x {
			d[i] = v + s
		}
	case OpMul:
		for i, v := range x {
			d[i] = v * s
		}
	case OpSub:
		if matLeft {
			for i, v := range x {
				d[i] = v - s
			}
		} else {
			for i, v := range x {
				d[i] = s - v
			}
		}
	case OpDiv:
		if matLeft {
			for i, v := range x {
				d[i] = v / s
			}
		} else {
			for i, v := range x {
				if v == 0 {
					return fmt.Errorf("matrix: integer division by zero")
				}
				d[i] = s / v
			}
		}
	case OpMod:
		if matLeft {
			for i, v := range x {
				d[i] = v % s
			}
		} else {
			for i, v := range x {
				if v == 0 {
					return fmt.Errorf("matrix: integer modulo by zero")
				}
				d[i] = s % v
			}
		}
	}
	return nil
}

// bcCmp: comparisons against a scalar; callers pre-flip the operator
// when the scalar is on the left, so the loop is always a[i] op s.
func bcCmp[T int64 | float64](op Op, dst []bool, a []T, s T, lo, hi int) {
	d, x := dst[lo:hi], a[lo:hi]
	switch op {
	case OpEq:
		for i, v := range x {
			d[i] = v == s
		}
	case OpNe:
		for i, v := range x {
			d[i] = v != s
		}
	case OpLt:
		for i, v := range x {
			d[i] = v < s
		}
	case OpLe:
		for i, v := range x {
			d[i] = v <= s
		}
	case OpGt:
		for i, v := range x {
			d[i] = v > s
		}
	case OpGe:
		for i, v := range x {
			d[i] = v >= s
		}
	}
}

// ewBoolScalar: bool-scalar operators (all commutative).
func ewBoolScalar(op Op, dst, a []bool, s bool, lo, hi int) {
	d, x := dst[lo:hi], a[lo:hi]
	switch op {
	case OpAnd:
		for i, v := range x {
			d[i] = v && s
		}
	case OpOr:
		for i, v := range x {
			d[i] = v || s
		}
	case OpEq:
		for i, v := range x {
			d[i] = v == s
		}
	case OpNe:
		for i, v := range x {
			d[i] = v != s
		}
	}
}
