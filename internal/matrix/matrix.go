// Package matrix is the runtime the matrix language extension
// compiles against: dense N-dimensional matrices of int, float or
// bool with MATLAB-style indexing (§III-A.3), elementwise overloaded
// arithmetic with matrix–scalar broadcasting and linear-algebra
// multiplication (§III-A.2), and parallel execution of with-loops and
// matrixMap on the enhanced fork-join pool (§III-C).
//
// Allocation is accounted through internal/rc so the reference-
// counting discipline of §III-B is checkable in tests.
package matrix

import (
	"fmt"

	"repro/internal/rc"
)

// Elem is the element type of a matrix.
type Elem int

// Element types.
const (
	Float Elem = iota
	Int
	Bool
)

func (e Elem) String() string {
	switch e {
	case Float:
		return "float"
	case Int:
		return "int"
	case Bool:
		return "bool"
	}
	return "?"
}

// size in bytes per element, for rc accounting.
func (e Elem) size() int {
	if e == Bool {
		return 1
	}
	return 8
}

// Matrix is a dense N-dimensional array in row-major order.
type Matrix struct {
	elem    Elem
	shape   []int
	strides []int
	f       []float64
	i       []int64
	b       []bool
	// Hdr is the reference-count header when the matrix is tracked
	// (§III-B); nil for untracked matrices.
	Hdr *rc.Header
}

// New allocates a zeroed matrix. It panics on an impossible shape
// (negative dimension, size overflow); execution layers that must not
// crash use NewBudgeted and get an error instead.
func New(elem Elem, shape ...int) *Matrix {
	m, err := NewBudgeted(nil, elem, shape...)
	if err != nil {
		panic(err)
	}
	return m
}

// checkedSize validates a shape and returns its element count,
// rejecting negative dimensions and products whose byte size cannot
// exist in the address space (which would otherwise alias a huge
// request onto a small make, or panic inside make itself).
func checkedSize(shape []int) (int, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return 0, &ShapeError{msg: fmt.Sprintf("matrix: negative dimension %d", d)}
		}
		if d > 0 && n > maxCells/d {
			return 0, &ShapeError{msg: fmt.Sprintf("matrix: shape %v overflows the address space", shape)}
		}
		n *= d
	}
	return n, nil
}

const (
	maxInt = int(^uint(0) >> 1)
	// maxCells bounds a single matrix's element count so that its byte
	// size (widest element: 8 bytes) still fits in int; beyond this,
	// make would panic "len out of range" instead of returning an error.
	maxCells = maxInt / 8
)

// NewBudgeted allocates a zeroed matrix after validating the shape and
// charging the cell count against b (nil = unlimited). The charge
// happens before the storage is made, so an oversized request fails as
// a *BudgetError rather than an OOM kill.
func NewBudgeted(b *Budget, elem Elem, shape ...int) (*Matrix, error) {
	n, err := checkedSize(shape)
	if err != nil {
		return nil, err
	}
	if hook := TestHookAllocFail; hook != nil {
		if err := hook(n); err != nil {
			return nil, err
		}
	}
	if err := b.Charge(n); err != nil {
		return nil, err
	}
	m := &Matrix{elem: elem, shape: append([]int(nil), shape...)}
	m.strides = stridesFor(m.shape)
	// Serve the backing slice from the kernel free list when a released
	// buffer fits; NewBudgeted promises zeroed storage, so clear it.
	switch elem {
	case Float:
		if s, ok := floatFree.get(n); ok {
			clear(s)
			m.f = s
			return m, nil
		}
		m.f = make([]float64, n)
	case Int:
		if s, ok := intFree.get(n); ok {
			clear(s)
			m.i = s
			return m, nil
		}
		m.i = make([]int64, n)
	case Bool:
		if s, ok := boolFree.get(n); ok {
			clear(s)
			m.b = s
			return m, nil
		}
		m.b = make([]bool, n)
	}
	return m, nil
}

// NewTracked is New plus reference-count tracking on heap.
func NewTracked(heap *rc.Heap, elem Elem, shape ...int) *Matrix {
	m := New(elem, shape...)
	m.Hdr = heap.Alloc(m.Size() * elem.size())
	return m
}

func stridesFor(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for d := len(shape) - 1; d >= 0; d-- {
		s[d] = acc
		acc *= shape[d]
	}
	return s
}

// FromFloats builds a float matrix from row-major data.
func FromFloats(data []float64, shape ...int) *Matrix {
	m := New(Float, shape...)
	if len(data) != m.Size() {
		panic(&ShapeError{msg: fmt.Sprintf("matrix: %d values for shape %v", len(data), shape)})
	}
	copy(m.f, data)
	return m
}

// FromInts builds an int matrix from row-major data.
func FromInts(data []int64, shape ...int) *Matrix {
	m := New(Int, shape...)
	if len(data) != m.Size() {
		panic(&ShapeError{msg: fmt.Sprintf("matrix: %d values for shape %v", len(data), shape)})
	}
	copy(m.i, data)
	return m
}

// FromBools builds a bool matrix from row-major data.
func FromBools(data []bool, shape ...int) *Matrix {
	m := New(Bool, shape...)
	if len(data) != m.Size() {
		panic(&ShapeError{msg: fmt.Sprintf("matrix: %d values for shape %v", len(data), shape)})
	}
	copy(m.b, data)
	return m
}

// Range returns the rank-1 int matrix [lo, lo+1, ..., hi] (the
// inclusive vector-building range of Fig 8 line 27).
func Range(lo, hi int64) *Matrix {
	if hi < lo {
		return New(Int, 0)
	}
	m := New(Int, int(hi-lo+1))
	for k := range m.i {
		m.i[k] = lo + int64(k)
	}
	return m
}

// Elem returns the element type.
func (m *Matrix) Elem() Elem { return m.elem }

// Rank returns the number of dimensions.
func (m *Matrix) Rank() int { return len(m.shape) }

// Shape returns the dimension sizes (not aliased).
func (m *Matrix) Shape() []int { return append([]int(nil), m.shape...) }

// DimSize returns the size of dimension d (§III-A.3's dimSize).
func (m *Matrix) DimSize(d int) (int, error) {
	if d < 0 || d >= len(m.shape) {
		return 0, fmt.Errorf("matrix: dimSize dimension %d out of range for rank %d", d, len(m.shape))
	}
	return m.shape[d], nil
}

// Size returns the total element count.
func (m *Matrix) Size() int {
	n := 1
	for _, d := range m.shape {
		n *= d
	}
	return n
}

// SameShape reports whether m and o have identical shapes.
func (m *Matrix) SameShape(o *Matrix) bool {
	if len(m.shape) != len(o.shape) {
		return false
	}
	for d := range m.shape {
		if m.shape[d] != o.shape[d] {
			return false
		}
	}
	return true
}

// Offset converts a multi-index to a linear offset (bounds checked).
func (m *Matrix) Offset(idx []int) (int, error) {
	if len(idx) != len(m.shape) {
		return 0, fmt.Errorf("matrix: %d indices for rank %d", len(idx), len(m.shape))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= m.shape[d] {
			return 0, fmt.Errorf("matrix: index %d out of range [0,%d) in dimension %d", i, m.shape[d], d)
		}
		off += i * m.strides[d]
	}
	return off, nil
}

// Get returns the element at linear offset as int64, float64 or bool.
func (m *Matrix) Get(off int) any {
	switch m.elem {
	case Float:
		return m.f[off]
	case Int:
		return m.i[off]
	default:
		return m.b[off]
	}
}

// GetFloat returns the element at off as a float64 (ints convert).
func (m *Matrix) GetFloat(off int) float64 {
	switch m.elem {
	case Float:
		return m.f[off]
	case Int:
		return float64(m.i[off])
	default:
		if m.b[off] {
			return 1
		}
		return 0
	}
}

// Set stores v (int64, float64, bool or int) at linear offset,
// promoting int to float where needed.
func (m *Matrix) Set(off int, v any) error {
	switch m.elem {
	case Float:
		switch x := v.(type) {
		case float64:
			m.f[off] = x
		case int64:
			m.f[off] = float64(x)
		case int:
			m.f[off] = float64(x)
		default:
			return fmt.Errorf("matrix: cannot store %T in float matrix", v)
		}
	case Int:
		switch x := v.(type) {
		case int64:
			m.i[off] = x
		case int:
			m.i[off] = int64(x)
		default:
			return fmt.Errorf("matrix: cannot store %T in int matrix", v)
		}
	case Bool:
		x, ok := v.(bool)
		if !ok {
			return fmt.Errorf("matrix: cannot store %T in bool matrix", v)
		}
		m.b[off] = x
	}
	return nil
}

// At returns the element at a multi-index.
func (m *Matrix) At(idx ...int) (any, error) {
	off, err := m.Offset(idx)
	if err != nil {
		return nil, err
	}
	return m.Get(off), nil
}

// SetAt stores at a multi-index.
func (m *Matrix) SetAt(v any, idx ...int) error {
	off, err := m.Offset(idx)
	if err != nil {
		return err
	}
	return m.Set(off, v)
}

// Copy returns a deep copy (untracked).
func (m *Matrix) Copy() *Matrix {
	out := New(m.elem, m.shape...)
	copy(out.f, m.f)
	copy(out.i, m.i)
	copy(out.b, m.b)
	return out
}

// Floats exposes the raw float storage (nil unless elem is Float).
func (m *Matrix) Floats() []float64 { return m.f }

// Ints exposes the raw int storage (nil unless elem is Int).
func (m *Matrix) Ints() []int64 { return m.i }

// Bools exposes the raw bool storage (nil unless elem is Bool).
func (m *Matrix) Bools() []bool { return m.b }

// Equal reports elementwise equality of shape, type and contents.
func Equal(a, b *Matrix) bool {
	if a.elem != b.elem || !a.SameShape(b) {
		return false
	}
	for k, n := 0, a.Size(); k < n; k++ {
		if a.Get(k) != b.Get(k) {
			return false
		}
	}
	return true
}

// AlmostEqual compares float matrices within eps (other types exact).
func AlmostEqual(a, b *Matrix, eps float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for k, n := 0, a.Size(); k < n; k++ {
		da := a.GetFloat(k) - b.GetFloat(k)
		if da < -eps || da > eps {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Size() > 64 {
		return fmt.Sprintf("Matrix %s %v (%d elements)", m.elem, m.shape, m.Size())
	}
	return fmt.Sprintf("Matrix %s %v %v", m.elem, m.shape, m.rawSlice())
}

func (m *Matrix) rawSlice() any {
	switch m.elem {
	case Float:
		return m.f
	case Int:
		return m.i
	default:
		return m.b
	}
}

// indexSpace iterates the multi-indices of a box [lower, upper) in
// row-major order, calling f with a reused index slice.
func indexSpace(lower, upper []int, f func(idx []int)) {
	n := len(lower)
	if n == 0 {
		return
	}
	idx := make([]int, n)
	copy(idx, lower)
	for d := 0; d < n; d++ {
		if lower[d] >= upper[d] {
			return
		}
	}
	for {
		f(idx)
		d := n - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < upper[d] {
				break
			}
			idx[d] = lower[d]
		}
		if d < 0 {
			return
		}
	}
}
