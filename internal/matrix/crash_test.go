// Crash-proofing tests: allocation budgets, shape validation at the
// allocator, early abort of poisoned parallel constructs, context
// cancellation mid-construct, and the alloc-failure injection seam.
package matrix

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/par"
)

func TestBudgetCharge(t *testing.T) {
	b := NewBudget(100)
	if err := b.Charge(60); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	if err := b.Charge(40); err != nil {
		t.Fatalf("second charge (exactly at limit): %v", err)
	}
	err := b.Charge(1)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("over-limit charge = %v, want *BudgetError", err)
	}
	if be.Requested != 1 || be.Used != 100 || be.Limit != 100 {
		t.Errorf("BudgetError = %+v, want {1 100 100}", *be)
	}
	// The failed charge was rolled back; a zero-cell charge still fits.
	if got := b.Used(); got != 100 {
		t.Errorf("Used = %d after rollback, want 100", got)
	}
	if b.Limit() != 100 {
		t.Errorf("Limit = %d", b.Limit())
	}
}

func TestBudgetNilUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Charge(1 << 40); err != nil {
		t.Errorf("nil budget must never fail: %v", err)
	}
	if b.Used() != 0 || b.Limit() != 0 {
		t.Error("nil budget accessors must return 0")
	}
	if NewBudget(0) != nil || NewBudget(-5) != nil {
		t.Error("NewBudget(<=0) must return nil (unlimited)")
	}
}

func TestNewBudgetedDeniesOversized(t *testing.T) {
	b := NewBudget(1000)
	m, err := NewBudgeted(b, Float, 100, 100)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if m != nil {
		t.Error("denied allocation must return a nil matrix")
	}
	// Nothing was charged; a fitting allocation still succeeds.
	if _, err := NewBudgeted(b, Float, 10, 10); err != nil {
		t.Errorf("in-budget allocation after denial: %v", err)
	}
}

func TestCheckedSizeOverflowAndNegative(t *testing.T) {
	// ~2^62 cells: the product overflows a 64-bit int. This must fail
	// as a *ShapeError before any storage is touched.
	_, err := NewBudgeted(nil, Float, 1<<31, 1<<31)
	var se *ShapeError
	if !errors.As(err, &se) {
		t.Fatalf("overflow shape err = %v, want *ShapeError", err)
	}
	_, err = NewBudgeted(nil, Float, 3, -2)
	if !errors.As(err, &se) {
		t.Fatalf("negative dim err = %v, want *ShapeError", err)
	}
}

func TestNewPanicsWithShapeError(t *testing.T) {
	defer func() {
		r := recover()
		var se *ShapeError
		if err, ok := r.(error); !ok || !errors.As(err, &se) {
			t.Fatalf("New panicked with %v, want *ShapeError", r)
		}
	}()
	New(Float, -1)
}

func TestAllocFailInjection(t *testing.T) {
	injected := errors.New("allocator fault")
	TestHookAllocFail = func(cells int) error {
		if cells >= 50 {
			return injected
		}
		return nil
	}
	defer func() { TestHookAllocFail = nil }()
	if _, err := NewBudgeted(nil, Float, 10, 10); !errors.Is(err, injected) {
		t.Errorf("hook not consulted: err = %v", err)
	}
	if _, err := NewBudgeted(nil, Float, 7); err != nil {
		t.Errorf("small allocation should pass the hook: %v", err)
	}
}

func TestGenArrayExecBudget(t *testing.T) {
	body := func(idx []int) (any, error) { return float64(idx[0]), nil }
	x := Exec{Budget: NewBudget(10)}
	_, err := GenArrayExec(Float, []int{0, 0}, []int{100, 100}, []int{100, 100}, body, x)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if m, err := GenArrayExec(Float, []int{0}, []int{5}, []int{5}, body, x); err != nil || m == nil {
		t.Errorf("in-budget genarray failed: %v", err)
	}
}

// Regression: a poisoned row must abort the construct. Before the
// early-abort wiring, GenArray kept evaluating every remaining row
// after the first error; with one worker the order is deterministic, so
// exactly one body call may happen.
func TestGenArrayAbortsAfterFirstError(t *testing.T) {
	pool := par.NewPool(1)
	defer pool.Shutdown()
	bad := errors.New("poisoned row")
	var calls atomic.Int64
	_, err := GenArray(Float, []int{0}, []int{1000}, []int{1000},
		func(idx []int) (any, error) {
			calls.Add(1)
			return nil, bad
		}, pool)
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want poisoned row", err)
	}
	if calls.Load() != 1 {
		t.Errorf("body ran %d times after the poisoned row, want 1", calls.Load())
	}
}

func TestFoldAbortsAfterFirstError(t *testing.T) {
	pool := par.NewPool(1)
	defer pool.Shutdown()
	bad := errors.New("poisoned element")
	var calls atomic.Int64
	_, err := Fold(FoldAdd, float64(0), []int{0}, []int{1000},
		func(idx []int) (any, error) {
			calls.Add(1)
			return nil, bad
		}, pool)
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want poisoned element", err)
	}
	if calls.Load() != 1 {
		t.Errorf("body ran %d times after the poisoned element, want 1", calls.Load())
	}
}

func TestMatrixMapAbortsAfterFirstError(t *testing.T) {
	pool := par.NewPool(1)
	defer pool.Shutdown()
	bad := errors.New("poisoned sub-matrix")
	var calls atomic.Int64
	m := New(Float, 1000, 4)
	_, err := MatrixMap(m, []int{1}, Float,
		func(sub *Matrix) (*Matrix, error) {
			calls.Add(1)
			return nil, bad
		}, pool)
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want poisoned sub-matrix", err)
	}
	if calls.Load() != 1 {
		t.Errorf("map function ran %d times after the poisoned call, want 1", calls.Load())
	}
}

func TestGenArrayExecCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	// Sequential path (nil pool) must also observe the context.
	_, err := GenArrayExec(Float, []int{0}, []int{1000}, []int{1000},
		func(idx []int) (any, error) {
			calls.Add(1)
			return float64(0), nil
		}, Exec{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Errorf("%d rows ran under a cancelled context", calls.Load())
	}

	pool := par.NewPool(2)
	defer pool.Shutdown()
	_, err = GenArrayExec(Float, []int{0}, []int{1000}, []int{1000},
		func(idx []int) (any, error) { return float64(0), nil },
		Exec{Pool: pool, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pooled err = %v, want context.Canceled", err)
	}
}

// A panic inside a with-loop body under a pool must surface as an
// error (wrapping *par.PanicError), not crash the test process.
func TestGenArrayBodyPanicSurfacesAsError(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Shutdown()
	_, err := GenArray(Float, []int{0}, []int{100}, []int{100},
		func(idx []int) (any, error) {
			if idx[0] == 37 {
				panic("body crash")
			}
			return float64(idx[0]), nil
		}, pool)
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *par.PanicError", err)
	}
	// The pool stays usable.
	m, err := GenArray(Float, []int{0}, []int{10}, []int{10},
		func(idx []int) (any, error) { return float64(idx[0]), nil }, pool)
	if err != nil || m == nil {
		t.Errorf("pool unusable after body panic: %v", err)
	}
}
