package matrix

import (
	"fmt"
	"testing"

	"repro/internal/par"
)

func TestMatrixMapGShrink(t *testing.T) {
	m := seqFloat(3, 8)
	half := func(sub *Matrix) (*Matrix, error) {
		out, err := sub.Index(Span(0, sub.Size()/2-1))
		if err != nil {
			return nil, err
		}
		return out.(*Matrix), nil
	}
	got, err := MatrixMapG(m, []int{1}, Float, half, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sh := got.Shape(); sh[0] != 3 || sh[1] != 4 {
		t.Fatalf("shape = %v, want [3 4]", sh)
	}
	v, _ := got.At(2, 3)
	w, _ := m.At(2, 3)
	if v != w {
		t.Fatalf("got[2,3] = %v, want %v", v, w)
	}
}

func TestMatrixMapGGrow(t *testing.T) {
	m := seqFloat(2, 3)
	double := func(sub *Matrix) (*Matrix, error) {
		out := New(Float, sub.Size()*2)
		for k := 0; k < sub.Size(); k++ {
			out.Floats()[k] = sub.GetFloat(k)
			out.Floats()[k+sub.Size()] = sub.GetFloat(k)
		}
		return out, nil
	}
	got, err := MatrixMapG(m, []int{1}, Float, double, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sh := got.Shape(); sh[1] != 6 {
		t.Fatalf("shape = %v, want [2 6]", sh)
	}
}

func TestMatrixMapGParallelMatchesSequential(t *testing.T) {
	m := seqFloat(6, 5, 10)
	half := func(sub *Matrix) (*Matrix, error) {
		out, err := sub.Index(Span(0, 4))
		if err != nil {
			return nil, err
		}
		return out.(*Matrix), nil
	}
	seq, err := MatrixMapG(m, []int{2}, Float, half, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := par.NewPool(4)
	defer pool.Shutdown()
	parl, err := MatrixMapG(m, []int{2}, Float, half, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(seq, parl) {
		t.Fatal("parallel MatrixMapG differs from sequential")
	}
}

func TestMatrixMapGInconsistent(t *testing.T) {
	m := seqFloat(4, 6)
	i := 0
	varying := func(sub *Matrix) (*Matrix, error) {
		i++
		out, err := sub.Index(Span(0, i))
		if err != nil {
			return nil, err
		}
		return out.(*Matrix), nil
	}
	if _, err := MatrixMapG(m, []int{1}, Float, varying, nil); err == nil {
		t.Fatal("inconsistent result sizes must error")
	}
}

func TestMatrixMapGErrors(t *testing.T) {
	m := seqFloat(3, 4)
	id := func(sub *Matrix) (*Matrix, error) { return sub, nil }
	if _, err := MatrixMapG(m, []int{0, 1}, Float, id, nil); err == nil {
		t.Error("mapping all dims should error")
	}
	if _, err := MatrixMapG(m, nil, Float, id, nil); err == nil {
		t.Error("no dims should error")
	}
	if _, err := MatrixMapG(m, []int{7}, Float, id, nil); err == nil {
		t.Error("bad dim should error")
	}
	if _, err := MatrixMapG(m, []int{1, 1}, Float, id, nil); err == nil {
		t.Error("duplicate dim should error")
	}
	bad := func(sub *Matrix) (*Matrix, error) { return New(Float, 2, 2), nil }
	if _, err := MatrixMapG(m, []int{1}, Float, bad, nil); err == nil {
		t.Error("wrong-rank result should error")
	}
	wrongElem := func(sub *Matrix) (*Matrix, error) { return New(Int, 4), nil }
	if _, err := MatrixMapG(m, []int{1}, Float, wrongElem, nil); err == nil {
		t.Error("wrong-elem result should error")
	}
	failing := func(sub *Matrix) (*Matrix, error) { return nil, fmt.Errorf("boom") }
	if _, err := MatrixMapG(m, []int{1}, Float, failing, nil); err == nil {
		t.Error("f's error should propagate")
	}
}

func TestFoldMulIdentityAndFloat(t *testing.T) {
	// exercise the float multiplicative identity path
	pool := par.NewPool(3)
	defer pool.Shutdown()
	prod, err := Fold(FoldMul, 1.0, []int{0}, []int{6},
		func(idx []int) (any, error) { return 1.0 + float64(idx[0])*0.0, nil }, pool)
	if err != nil || prod.(float64) != 1.0 {
		t.Fatalf("prod = %v (%v)", prod, err)
	}
	mn, err := Fold(FoldMin, 100.0, []int{0}, []int{8},
		func(idx []int) (any, error) { return float64(10 - idx[0]), nil }, pool)
	if err != nil || mn.(float64) != 3.0 {
		t.Fatalf("min = %v (%v)", mn, err)
	}
}
