// Differential tests for the breadth kernels (kernels2.go) against
// their retained boxed reference paths, plus kernel-specific behavior:
// per-kernel counters, validate-before-allocate, cancellation, the
// recursive matmul crossover, and the typed fold accumulator's
// allocation profile.
package matrix

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/par"
)

var foldKinds = []FoldKind{FoldAdd, FoldMul, FoldMin, FoldMax}

func TestKernelDiffTranspose(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	execs := kernelExecs(t)
	for _, elem := range []Elem{Float, Int, Bool} {
		for _, shape := range [][]int{{1, 1}, {1, 7}, {7, 1}, {3, 5}, {33, 65}, {70, 40}} {
			m := randKernelMat(r, elem, shape...)
			want, werr := TransposeRef(m)
			for mode, x := range execs {
				got, gerr := TransposeExec(m, x)
				checkKernelDiff(t, mode+" transpose "+m.String(), got, gerr, want, werr, m.Size(), 0)
			}
		}
	}
	// Rank errors on both paths, and a zero-extent matrix round-trips.
	for _, bad := range []*Matrix{New(Float, 4), New(Int, 2, 3, 4)} {
		if _, err := TransposeExec(bad, Exec{}); err == nil {
			t.Fatalf("rank %d accepted by transpose", bad.Rank())
		}
		if _, err := TransposeRef(bad); err == nil {
			t.Fatalf("rank %d accepted by reference transpose", bad.Rank())
		}
	}
	z, err := TransposeExec(New(Float, 0, 5), Exec{})
	if err != nil || z.shape[0] != 5 || z.shape[1] != 0 {
		t.Fatalf("transpose of 0x5: %v %v", z, err)
	}
}

func TestKernelDiffConv2D(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	execs := kernelExecs(t)
	kernels := [][]int{{1, 1}, {3, 3}, {1, 5}, {5, 1}, {3, 5}}
	for _, elem := range []Elem{Float, Int} {
		for _, shape := range [][]int{{1, 1}, {4, 4}, {9, 17}, {20, 6}} {
			src := randKernelMat(r, elem, shape...)
			for _, ks := range kernels {
				kern := randKernelMat(r, elem, ks...)
				want, werr := Conv2DRef(src, kern)
				for mode, x := range execs {
					got, gerr := Conv2DExec(src, kern, x)
					label := mode + " conv " + src.String() + " * " + kern.String()
					checkKernelDiff(t, label, got, gerr, want, werr, src.Size(), 0)
				}
			}
		}
	}
	// Mixed int/float operands promote identically on both paths.
	src := randKernelMat(r, Int, 6, 6)
	kern := randKernelMat(r, Float, 3, 3)
	want, werr := Conv2DRef(src, kern)
	got, gerr := Conv2DExec(src, kern, Exec{})
	checkKernelDiff(t, "conv int*float", got, gerr, want, werr, src.Size(), 0)
}

func TestConv2DErrors(t *testing.T) {
	f33 := New(Float, 3, 3)
	for _, tc := range []struct {
		name      string
		src, kern *Matrix
		want      string
	}{
		{"rank", New(Float, 4), f33, "conv2d requires rank-2 matrices, got ranks 1 and 2"},
		{"bool", New(Bool, 3, 3), f33, "conv2d requires numeric matrices"},
		{"even_kernel", f33, New(Float, 2, 3), "kernel dimensions must be odd"},
	} {
		_, err := Conv2DExec(tc.src, tc.kern, Exec{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
		_, rerr := Conv2DRef(tc.src, tc.kern)
		if rerr == nil || rerr.Error() != err.Error() {
			t.Errorf("%s: reference err = %v, kernel err = %v", tc.name, rerr, err)
		}
	}
}

func TestKernelDiffReduceAxis(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	execs := kernelExecs(t)
	for _, elem := range []Elem{Float, Int} {
		for _, shape := range [][]int{{5}, {4, 7}, {3, 4, 5}, {65, 3}, {2, 130}} {
			m := randKernelMat(r, elem, shape...)
			for axis := 0; axis < len(shape); axis++ {
				for _, kind := range foldKinds {
					want, werr := ReduceAxisRef(kind, m, axis)
					for mode, x := range execs {
						got, gerr := ReduceAxisExec(kind, m, axis, x)
						label := mode + " reduce " + m.String()
						checkKernelDiff(t, label, got, gerr, want, werr, m.Size(), 0)
					}
				}
			}
		}
	}
	// Errors: bool input, axis out of range, min/max over an empty axis
	// — same text on both paths.
	for _, tc := range []struct {
		name string
		kind FoldKind
		m    *Matrix
		axis int
	}{
		{"bool", FoldAdd, New(Bool, 3), 0},
		{"axis_range", FoldAdd, New(Int, 3, 4), 2},
		{"empty_min", FoldMin, New(Float, 0, 4), 0},
		{"empty_max", FoldMax, New(Int, 4, 0), 1},
	} {
		_, gerr := ReduceAxisExec(tc.kind, tc.m, tc.axis, Exec{})
		_, werr := ReduceAxisRef(tc.kind, tc.m, tc.axis)
		if gerr == nil || werr == nil || gerr.Error() != werr.Error() {
			t.Errorf("%s: kernel err %v, reference err %v", tc.name, gerr, werr)
		}
	}
	// Sum/prod over an empty axis yield identities.
	sum, err := ReduceAxisExec(FoldAdd, New(Int, 0, 3), 0, Exec{})
	if err != nil || sum.i[0] != 0 || sum.i[1] != 0 || sum.i[2] != 0 {
		t.Fatalf("empty-axis sum: %v %v", sum, err)
	}
	prod, err := ReduceAxisExec(FoldMul, New(Float, 2, 0), 1, Exec{})
	if err != nil || prod.f[0] != 1 || prod.f[1] != 1 {
		t.Fatalf("empty-axis prod: %v %v", prod, err)
	}
}

// TestKernelDiffRecursiveMatMul crosses the mmRecCutoff so both the
// base i-k-j kernel and the blocked-recursive path run, with shapes
// that are not powers of two.
func TestKernelDiffRecursiveMatMul(t *testing.T) {
	old := ParallelGrain
	ParallelGrain = 4096
	pool := par.NewPool(4)
	t.Cleanup(func() { ParallelGrain = old; pool.Shutdown() })
	r := rand.New(rand.NewSource(14))
	par4 := Exec{Pool: pool, Ctx: context.Background()}

	// k and n just above the cutoff trigger recursion; m stays small so
	// the test is fast. Also pin the below-cutoff path for parity.
	k, n := mmRecCutoff+3, mmRecCutoff+1
	for _, elem := range []Elem{Float, Int} {
		a := randKernelMat(r, elem, 5, k)
		b := randKernelMat(r, elem, k, n)
		want, werr := MatMulRef(a, b)
		for mode, x := range map[string]Exec{"serial": {}, "parallel": par4} {
			got, gerr := MatMulExec(a, b, x)
			eps := 0.0
			if elem == Float {
				eps = 1e-9
			}
			checkKernelDiff(t, mode+" recursive matmul", got, gerr, want, werr, a.Size(), eps)
		}
		small1 := randKernelMat(r, elem, 5, 17)
		small2 := randKernelMat(r, elem, 17, 9)
		want, werr = MatMulRef(small1, small2)
		got, gerr := MatMulExec(small1, small2, Exec{})
		checkKernelDiff(t, "small matmul", got, gerr, want, werr, small1.Size(), 1e-12)
	}
}

func TestKernelOpCounters(t *testing.T) {
	t0, c0, r0 := KernelOpStats()
	if _, err := TransposeExec(New(Float, 4, 4), Exec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Conv2DExec(New(Float, 4, 4), New(Float, 3, 3), Exec{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReduceAxisExec(FoldAdd, New(Int, 4, 4), 0, Exec{}); err != nil {
		t.Fatal(err)
	}
	t1, c1, r1 := KernelOpStats()
	if t1-t0 < 1 || c1-c0 < 1 || r1-r0 < 1 {
		t.Fatalf("counters did not advance: transpose %d conv %d reduce %d", t1-t0, c1-c0, r1-r0)
	}
}

// TestKernels2ValidateBeforeAllocate: invalid inputs must error before
// charging the budget or firing the alloc hook.
func TestKernels2ValidateBeforeAllocate(t *testing.T) {
	rank1 := New(Float, 4)
	src := New(Float, 3, 3)
	evenKern := New(Float, 2, 2)
	emptyAxis := New(Float, 0, 3)
	calls := 0
	TestHookAllocFail = func(cells int) error { calls++; return nil }
	defer func() { TestHookAllocFail = nil }()
	if _, err := TransposeExec(rank1, Exec{}); err == nil {
		t.Fatal("rank-1 transpose accepted")
	}
	if _, err := Conv2DExec(src, evenKern, Exec{}); err == nil {
		t.Fatal("even conv kernel accepted")
	}
	if _, err := ReduceAxisExec(FoldMin, emptyAxis, 0, Exec{}); err == nil {
		t.Fatal("empty min axis accepted")
	}
	if calls != 0 {
		t.Fatalf("alloc hook fired %d times before validation errors", calls)
	}
}

func TestKernels2Cancellation(t *testing.T) {
	pool := par.NewPool(2)
	defer pool.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := Exec{Pool: pool, Ctx: ctx}
	m := New(Float, 64, 64)
	if _, err := TransposeExec(m, x); err == nil {
		t.Error("cancelled transpose succeeded")
	}
	if _, err := Conv2DExec(m, New(Float, 3, 3), x); err == nil {
		t.Error("cancelled conv succeeded")
	}
	if _, err := ReduceAxisExec(FoldAdd, m, 0, x); err == nil {
		t.Error("cancelled reduce succeeded")
	}
}

// TestFoldExecTypedAccumulator pins the typed fast path: a serial fold
// over int64 values must not allocate per element.
func TestFoldExecTypedAccumulator(t *testing.T) {
	// Body values stay under 256 so boxing them into `any` hits the
	// runtime's static cache: every allocation left is FoldExec's own.
	body := func(idx []int) (any, error) { return int64(idx[0] + idx[1]), nil }
	lower, upper := []int{0, 0}, []int{16, 64}
	got, err := FoldExec(FoldAdd, int64(0), lower, upper, body, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < 16; i++ {
		for j := 0; j < 64; j++ {
			want += int64(i + j)
		}
	}
	if got.(int64) != want {
		t.Fatalf("fold sum = %v, want %d", got, want)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := FoldExec(FoldAdd, int64(0), lower, upper, body, Exec{}); err != nil {
			t.Fatal(err)
		}
	})
	// The accumulator combines unboxed; only fixed per-call setup (the
	// index slice, the final boxed result) may allocate — never one
	// object per element as the boxed foldCombine path did.
	if allocs > 16 {
		t.Errorf("FoldExec allocated %.0f objects for a 1024-element typed fold", allocs)
	}
	// Mixed int/float min must still match the boxed oracle: the int
	// lane -3 loses to the float lane's -9.5 and the winner keeps its
	// dynamic type.
	mix := func(idx []int) (any, error) {
		if idx[0]%2 == 0 {
			return int64(idx[0] - 3), nil
		}
		return float64(idx[0]) - 10.5, nil
	}
	got, err = FoldExec(FoldMin, int64(100), []int{0}, []int{9}, mix, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.(float64); !ok || v != -9.5 {
		t.Fatalf("mixed min = %#v, want float64 -9.5", got)
	}
	gotInt, err := FoldExec(FoldMin, int64(100), []int{0}, []int{9},
		func(idx []int) (any, error) { return int64(idx[0] - 3), nil }, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := gotInt.(int64); !ok || v != -3 {
		t.Fatalf("int min = %#v, want int64 -3", gotInt)
	}
}
