// Overloaded arithmetic and comparison (§III-A.2): every operator is
// elementwise over matrices (with matrix–scalar broadcasting and
// int→float promotion) except '*' applied to two matrices, which is
// linear-algebra matrix multiplication; '.*' is the extension's
// explicit elementwise multiplication.
package matrix

import "fmt"

// Op is a runtime binary operator.
type Op int

// Runtime operators (Mul here is elementwise; use MatMul for the
// linear-algebra product).
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||",
}

func (o Op) String() string { return opNames[o] }

func (o Op) isComparison() bool { return o >= OpEq && o <= OpGe }
func (o Op) isLogical() bool    { return o == OpAnd || o == OpOr }

// scalarOp applies op to two scalar values (int64/float64/bool),
// promoting ints to floats when mixed.
func scalarOp(op Op, a, b any) (any, error) {
	if op.isLogical() {
		ab, aok := a.(bool)
		bb, bok := b.(bool)
		if !aok || !bok {
			return nil, fmt.Errorf("matrix: %s requires bool operands", op)
		}
		if op == OpAnd {
			return ab && bb, nil
		}
		return ab || bb, nil
	}
	if ab, aok := a.(bool); aok {
		bb, bok := b.(bool)
		if !bok || (op != OpEq && op != OpNe) {
			return nil, fmt.Errorf("matrix: %s cannot compare bool values", op)
		}
		if op == OpEq {
			return ab == bb, nil
		}
		return ab != bb, nil
	}
	ai, aIsInt := toInt(a)
	bi, bIsInt := toInt(b)
	if aIsInt && bIsInt {
		return intOp(op, ai, bi)
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if !aok || !bok {
		return nil, fmt.Errorf("matrix: %s cannot be applied to %T and %T", op, a, b)
	}
	return floatOp(op, af, bf)
}

func toInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	}
	return 0, false
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	}
	return 0, false
}

func intOp(op Op, a, b int64) (any, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return nil, fmt.Errorf("matrix: integer division by zero")
		}
		return a / b, nil
	case OpMod:
		if b == 0 {
			return nil, fmt.Errorf("matrix: integer modulo by zero")
		}
		return a % b, nil
	case OpEq:
		return a == b, nil
	case OpNe:
		return a != b, nil
	case OpLt:
		return a < b, nil
	case OpLe:
		return a <= b, nil
	case OpGt:
		return a > b, nil
	case OpGe:
		return a >= b, nil
	}
	return nil, fmt.Errorf("matrix: %s is not an int operator", op)
}

func floatOp(op Op, a, b float64) (any, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		return a / b, nil
	case OpEq:
		return a == b, nil
	case OpNe:
		return a != b, nil
	case OpLt:
		return a < b, nil
	case OpLe:
		return a <= b, nil
	case OpGt:
		return a > b, nil
	case OpGe:
		return a >= b, nil
	}
	return nil, fmt.Errorf("matrix: %s is not a float operator", op)
}

// resultElem determines the element type of an elementwise result.
func resultElem(op Op, a, b Elem) Elem {
	if op.isComparison() || op.isLogical() {
		return Bool
	}
	if a == Float || b == Float {
		return Float
	}
	if a == Bool && b == Bool {
		return Bool
	}
	return Int
}

// Elementwise applies op pointwise over two matrices of equal shape.
// It runs the specialized kernels of kernels.go serially; callers with
// a worker pool use ElementwiseExec directly.
func Elementwise(op Op, a, b *Matrix) (*Matrix, error) {
	return ElementwiseExec(op, a, b, Exec{})
}

// Broadcast applies op between a matrix and a scalar; matLeft selects
// which side the matrix is on (m op s vs s op m). It runs the
// specialized kernels serially; callers with a pool use BroadcastExec.
func Broadcast(op Op, m *Matrix, s any, matLeft bool) (*Matrix, error) {
	return BroadcastExec(op, m, s, matLeft, Exec{})
}

// MatMul computes the linear-algebra product of two rank-2 matrices.
// It runs the blocked kernel serially; callers with a pool use
// MatMulExec.
func MatMul(a, b *Matrix) (*Matrix, error) {
	return MatMulExec(a, b, Exec{})
}

// Unary applies negation or logical not elementwise, serially; callers
// with a pool use UnaryExec.
func Unary(neg bool, m *Matrix) (*Matrix, error) {
	return UnaryExec(neg, m, Exec{})
}

// Transpose returns the transpose of a rank-2 matrix, serially;
// callers with a pool use TransposeExec.
func Transpose(m *Matrix) (*Matrix, error) {
	return TransposeExec(m, Exec{})
}

// Conv2D computes the same-size constant-boundary 2-D convolution of
// src with kern, serially; callers with a pool use Conv2DExec.
func Conv2D(src, kern *Matrix) (*Matrix, error) {
	return Conv2DExec(src, kern, Exec{})
}

// ReduceAxis reduces m along one axis, serially; callers with a pool
// use ReduceAxisExec.
func ReduceAxis(kind FoldKind, m *Matrix, axis int) (*Matrix, error) {
	return ReduceAxisExec(kind, m, axis, Exec{})
}

// --- reference oracles ---
//
// The original boxed implementations are retained verbatim below as
// reference oracles: they define the semantics the specialized kernels
// must reproduce, and the differential tests (kernels_test.go,
// FuzzKernelDiff) pin every kernel against them. They are slow by
// design — one scalarOp interface round-trip per element — and are not
// called on any production path.

// ElementwiseRef is the boxed per-element reference for Elementwise.
func ElementwiseRef(op Op, a, b *Matrix) (*Matrix, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("matrix: %s requires equal shapes, got %v and %v", op, a.shape, b.shape)
	}
	out := New(resultElem(op, a.elem, b.elem), a.shape...)
	for k, n := 0, a.Size(); k < n; k++ {
		v, err := scalarOp(op, a.Get(k), b.Get(k))
		if err != nil {
			return nil, err
		}
		if err := out.Set(k, v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BroadcastRef is the boxed per-element reference for Broadcast.
func BroadcastRef(op Op, m *Matrix, s any, matLeft bool) (*Matrix, error) {
	sElem := Float
	switch s.(type) {
	case int64, int:
		sElem = Int
	case bool:
		sElem = Bool
	}
	out := New(resultElem(op, m.elem, sElem), m.shape...)
	for k, n := 0, m.Size(); k < n; k++ {
		var v any
		var err error
		if matLeft {
			v, err = scalarOp(op, m.Get(k), s)
		} else {
			v, err = scalarOp(op, s, m.Get(k))
		}
		if err != nil {
			return nil, err
		}
		if err := out.Set(k, v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MatMulRef is the naive i-j-k reference for MatMul. Float results may
// differ from the blocked i-k-j kernel in the last bits (different
// summation order); differential tests compare with a tolerance.
func MatMulRef(a, b *Matrix) (*Matrix, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("matrix: matmul requires rank-2 matrices, got ranks %d and %d", a.Rank(), b.Rank())
	}
	if a.shape[1] != b.shape[0] {
		return nil, fmt.Errorf("matrix: matmul dimension mismatch: %v x %v", a.shape, b.shape)
	}
	if a.elem == Bool || b.elem == Bool {
		return nil, fmt.Errorf("matrix: matmul requires numeric matrices")
	}
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	if a.elem == Int && b.elem == Int {
		out := New(Int, m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var acc int64
				for x := 0; x < k; x++ {
					acc += a.i[i*k+x] * b.i[x*n+j]
				}
				out.i[i*n+j] = acc
			}
		}
		return out, nil
	}
	out := New(Float, m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for x := 0; x < k; x++ {
				acc += a.GetFloat(i*k+x) * b.GetFloat(x*n+j)
			}
			out.f[i*n+j] = acc
		}
	}
	return out, nil
}

// UnaryRef is the reference for Unary.
func UnaryRef(neg bool, m *Matrix) (*Matrix, error) {
	if neg {
		switch m.elem {
		case Float:
			out := New(Float, m.shape...)
			for k, v := range m.f {
				out.f[k] = -v
			}
			return out, nil
		case Int:
			out := New(Int, m.shape...)
			for k, v := range m.i {
				out.i[k] = -v
			}
			return out, nil
		}
		return nil, fmt.Errorf("matrix: cannot negate a bool matrix")
	}
	if m.elem != Bool {
		return nil, fmt.Errorf("matrix: logical not requires a bool matrix")
	}
	out := New(Bool, m.shape...)
	for k, v := range m.b {
		out.b[k] = !v
	}
	return out, nil
}

// TransposeRef is the boxed per-element reference for Transpose.
func TransposeRef(m *Matrix) (*Matrix, error) {
	if m.Rank() != 2 {
		return nil, fmt.Errorf("matrix: transpose requires a rank-2 matrix, got rank %d", m.Rank())
	}
	rows, cols := m.shape[0], m.shape[1]
	out := New(m.elem, cols, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if err := out.Set(j*rows+i, m.Get(i*cols+j)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Conv2DRef is the boxed per-element reference for Conv2D: one
// scalarOp multiply-add per in-range kernel tap, taps in (u, v) order.
// The specialized kernel accumulates in the same order, so even float
// results are compared exactly.
func Conv2DRef(src, kern *Matrix) (*Matrix, error) {
	if src.Rank() != 2 || kern.Rank() != 2 {
		return nil, fmt.Errorf("matrix: conv2d requires rank-2 matrices, got ranks %d and %d", src.Rank(), kern.Rank())
	}
	if src.elem == Bool || kern.elem == Bool {
		return nil, fmt.Errorf("matrix: conv2d requires numeric matrices")
	}
	kh, kw := kern.shape[0], kern.shape[1]
	if kh%2 == 0 || kw%2 == 0 {
		return nil, fmt.Errorf("matrix: conv2d kernel dimensions must be odd, got %v", kern.shape)
	}
	oe := Int
	if src.elem == Float || kern.elem == Float {
		oe = Float
	}
	rows, cols := src.shape[0], src.shape[1]
	out := New(oe, rows, cols)
	cy, cx := kh/2, kw/2
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var acc any
			if oe == Int {
				acc = int64(0)
			} else {
				acc = float64(0)
			}
			for u := 0; u < kh; u++ {
				for v := 0; v < kw; v++ {
					si, sj := i+u-cy, j+v-cx
					if si < 0 || si >= rows || sj < 0 || sj >= cols {
						continue
					}
					p, err := scalarOp(OpMul, src.Get(si*cols+sj), kern.Get(u*kw+v))
					if err != nil {
						return nil, err
					}
					acc, err = scalarOp(OpAdd, acc, p)
					if err != nil {
						return nil, err
					}
				}
			}
			if err := out.Set(i*cols+j, acc); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ReduceAxisRef is the boxed per-element reference for ReduceAxis:
// foldCombine over the axis in ascending order — the same order the
// specialized kernel uses, so float sums compare exactly.
func ReduceAxisRef(kind FoldKind, m *Matrix, axis int) (*Matrix, error) {
	if m.elem == Bool {
		return nil, fmt.Errorf("matrix: reduce requires a numeric matrix")
	}
	if axis < 0 || axis >= m.Rank() {
		return nil, fmt.Errorf("matrix: reduce axis %d out of range for rank %d", axis, m.Rank())
	}
	axisN := m.shape[axis]
	if axisN == 0 && (kind == FoldMin || kind == FoldMax) {
		return nil, fmt.Errorf("matrix: reduce %s along an empty dimension", kind)
	}
	outShape := make([]int, 0, m.Rank()-1)
	outer, inner := 1, 1
	for d, n := range m.shape {
		switch {
		case d < axis:
			outer *= n
			outShape = append(outShape, n)
		case d > axis:
			inner *= n
			outShape = append(outShape, n)
		}
	}
	out := New(m.elem, outShape...)
	for o := 0; o < outer; o++ {
		for j := 0; j < inner; j++ {
			var acc any
			if axisN == 0 {
				if m.elem == Int {
					acc = reduceIdentInt(kind)
				} else {
					acc = reduceIdentFloat(kind)
				}
			} else {
				acc = m.Get(o*axisN*inner + j)
				for a := 1; a < axisN; a++ {
					var err error
					acc, err = foldCombine(kind, acc, m.Get(o*axisN*inner+a*inner+j))
					if err != nil {
						return nil, err
					}
				}
			}
			if err := out.Set(o*inner+j, acc); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// ScalarBinary exposes scalarOp for the interpreter.
func ScalarBinary(op Op, a, b any) (any, error) { return scalarOp(op, a, b) }
