// A size-classed free list for matrix backing slices. Chained
// expressions like (a+b).*c allocate one output per operator; without
// reuse every operator pays the allocator (and, under concurrency, the
// contention §III-C warns about). Released buffers — expression
// temporaries recycled by the interpreter, and rc-tracked matrices
// whose last reference is dropped (rc.Header.SetOnFree) — come back
// here and are handed to the next kernel output of a compatible size.
//
// Classing is by power-of-two capacity: a slice is stored under
// floor(log2(cap)), and a request for n cells scans from class
// floor(log2(n)) (where equal-size buffers land — the chained-
// expression case) up to ceil(log2(n))+1, so a reused buffer wastes at
// most ~4x its requested size and a lookup touches at most three
// classes.
// Retention is bounded (per-class slice count and a global byte cap),
// so the free list is a small working set, not a leak.
//
// Budget accounting stays exact: reuse does not skip the Budget charge
// — the budget bounds total allocation *work* (cells requested), and a
// reused buffer satisfies a request all the same.
package matrix

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minReuseCells is the smallest slice the free list retains; tiny
	// buffers are cheaper to allocate fresh than to serialize on the
	// free-list lock.
	minReuseCells = 256
	// maxSizeClass bounds the classes (2^47 cells is far beyond maxCells).
	maxSizeClass = 48
	// maxPerClass bounds retained slices per class per element type.
	maxPerClass = 8
)

// freeListMaxBytes caps the total bytes retained across all element
// types (atomic so tests can shrink it without a race).
var freeListMaxBytes atomic.Int64

// freeListBytes is the current retained total.
var freeListBytes atomic.Int64

func init() { freeListMaxBytes.Store(64 << 20) }

// bufFreeList holds released backing slices of one element type.
type bufFreeList[T any] struct {
	mu       sync.Mutex
	classes  [maxSizeClass][][]T
	elemSize int64
}

var (
	floatFree = &bufFreeList[float64]{elemSize: 8}
	intFree   = &bufFreeList[int64]{elemSize: 8}
	boolFree  = &bufFreeList[bool]{elemSize: 1}
)

// get returns a retained slice re-sliced to n cells, or false when none
// fits. The contents are NOT zeroed — callers either overwrite every
// cell (kernels) or clear explicitly (NewBudgeted).
func (p *bufFreeList[T]) get(n int) ([]T, bool) {
	if n < minReuseCells {
		return nil, false
	}
	// Start at floor(log2(n)): that class holds same-size buffers when n
	// is not a power of two (the common chained-expression case), so it
	// is scanned with a per-candidate cap check. Members of every later
	// class are guaranteed cap >= n.
	c0 := bits.Len(uint(n)) - 1
	c1 := bits.Len(uint(n-1)) + 2
	if c1 > maxSizeClass {
		c1 = maxSizeClass
	}
	p.mu.Lock()
	for c := c0; c < c1; c++ {
		cl := p.classes[c]
		for i := len(cl) - 1; i >= 0; i-- {
			s := cl[i]
			if cap(s) < n {
				continue
			}
			cl[i] = cl[len(cl)-1]
			cl[len(cl)-1] = nil
			p.classes[c] = cl[:len(cl)-1]
			p.mu.Unlock()
			freeListBytes.Add(-int64(cap(s)) * p.elemSize)
			kernelBuffersReused.Add(1)
			return s[:n], true
		}
	}
	p.mu.Unlock()
	return nil, false
}

// put retains s for reuse, dropping it when it is too small, its class
// is full, or the global byte cap is reached.
func (p *bufFreeList[T]) put(s []T) {
	c := cap(s)
	if c < minReuseCells {
		return
	}
	bytes := int64(c) * p.elemSize
	if freeListBytes.Load()+bytes > freeListMaxBytes.Load() {
		return
	}
	cls := bits.Len(uint(c)) - 1 // floor(log2(cap)): every member has cap >= 2^cls
	if cls >= maxSizeClass {
		return
	}
	p.mu.Lock()
	if len(p.classes[cls]) >= maxPerClass {
		p.mu.Unlock()
		return
	}
	p.classes[cls] = append(p.classes[cls], s[:0])
	p.mu.Unlock()
	freeListBytes.Add(bytes)
}

func (p *bufFreeList[T]) drain() {
	p.mu.Lock()
	for c := range p.classes {
		for _, s := range p.classes[c] {
			freeListBytes.Add(-int64(cap(s)) * p.elemSize)
		}
		p.classes[c] = nil
	}
	p.mu.Unlock()
}

// DrainFreeLists empties the backing-slice free lists (tests use it to
// make reuse counters deterministic).
func DrainFreeLists() {
	floatFree.drain()
	intFree.drain()
	boolFree.drain()
}

// Recycle returns m's backing storage to the kernel free list and
// detaches it from m. It must only be called when the caller owns the
// last live reference (the interpreter calls it for spent expression
// temporaries and, via rc.Header.SetOnFree, when a tracked matrix's
// reference count reaches zero). After Recycle any element access on m
// panics — a loud failure instead of silently reading a buffer that
// now belongs to someone else. Recycle is idempotent.
func (m *Matrix) Recycle() {
	if m == nil {
		return
	}
	switch m.elem {
	case Float:
		if m.f != nil {
			floatFree.put(m.f)
			m.f = nil
		}
	case Int:
		if m.i != nil {
			intFree.put(m.i)
			m.i = nil
		}
	case Bool:
		if m.b != nil {
			boolFree.put(m.b)
			m.b = nil
		}
	}
}
