// Fused elementwise chain execution — the paper's §III-A.4 "no
// extraneous copy" optimization. A chain of elementwise/broadcast
// stages that vet.Facts proved fusable executes as ONE pass over the
// data: intermediates live in small block-sized free-list scratch
// buffers that stay cache-resident instead of full budget-backed
// matrices, and only the root result is materialized.
//
// Observable behavior must match running the stages through
// ElementwiseExec/BroadcastExec one at a time, because the bytecode
// VM that calls this is differentially fuzzed against the tree
// walker, which *does* run them one at a time:
//
//   - the allocation budget is charged per stage, in tree evaluation
//     (post-)order, exactly like the unfused engine — the unfused
//     engine recycles intermediate buffers but never refunds their
//     budget, so a fused run must consume identical budget;
//   - TestHookAllocFail fires once per stage with the stage's cell
//     count, in the same order;
//   - a nil (unassigned) matrix leaf, a shape mismatch or a budget
//     failure surfaces at the same stage — FusedExec reports the
//     failing stage index so the VM can anchor the error at that
//     stage's AST node, matching the tree walker's span;
//   - stage operators are restricted by the legality rules in
//     vet/facts.go to ones that cannot fail per element, so after
//     admission the single loop is total (only cooperative
//     cancellation can interrupt it).
package matrix

import (
	"errors"
	"fmt"
)

// ErrUnassignedOperand reports a nil matrix leaf; the VM maps it to
// the tree walker's "use of unassigned matrix" error at the failing
// stage's node.
var ErrUnassignedOperand = errors.New("matrix: unassigned operand in fused chain")

// fusedBlock is the number of cells of intermediate result kept live
// per stage while fusing: small enough that a several-stage chain's
// working set stays in L1/L2, large enough to amortize the per-block
// dispatch.
const fusedBlock = 4096

// FusedArgKind classifies one operand of a fused stage.
type FusedArgKind int

const (
	// FusedStageArg: the block-scratch result of an earlier stage.
	FusedStageArg FusedArgKind = iota
	// FusedMatrixArg: a full input matrix (nil if unassigned).
	FusedMatrixArg
	// FusedScalarArg: a scalar broadcast operand, pre-converted to the
	// chain's element type (F for float chains, I for int chains).
	FusedScalarArg
)

// FusedArg is one resolved operand of a fused stage.
type FusedArg struct {
	Kind  FusedArgKind
	Stage int
	Mat   *Matrix
	F     float64
	I     int64
}

// FusedStage is one elementwise operation of a resolved chain, in tree
// evaluation (post-)order: operands of stage i always have index < i.
type FusedStage struct {
	Op   Op
	L, R FusedArg
}

// FusedExec runs a proven-legal elementwise chain in a single pass.
// elem is the chain's element type (Float or Int). On error the
// returned stage index identifies which stage's admission or execution
// failed, so the caller can anchor the error at that stage's source
// span; it is -1 only for malformed chains.
func FusedExec(stages []FusedStage, elem Elem, x Exec) (*Matrix, int, error) {
	if len(stages) == 0 {
		return nil, -1, errors.New("matrix: empty fused chain")
	}

	// Admission replay: per stage, in order — nil checks, the
	// elementwise shape check, then hook + budget charge, exactly as
	// ElementwiseExec/BroadcastExec admit one stage at a time.
	shapes := make([][]int, len(stages))
	for idx := range stages {
		st := &stages[idx]
		lShape, lIsM, err := fusedOperandShape(st.L, shapes)
		if err != nil {
			return nil, idx, err
		}
		rShape, rIsM, err := fusedOperandShape(st.R, shapes)
		if err != nil {
			return nil, idx, err
		}
		var shape []int
		switch {
		case lIsM && rIsM:
			if !shapeEq(lShape, rShape) {
				return nil, idx, fmt.Errorf("matrix: %s requires equal shapes, got %v and %v", st.Op, lShape, rShape)
			}
			shape = lShape
		case lIsM:
			shape = lShape
		case rIsM:
			shape = rShape
		default:
			return nil, idx, errors.New("matrix: fused stage with two scalar operands")
		}
		n, err := checkedSize(shape)
		if err != nil {
			return nil, idx, err
		}
		if hook := TestHookAllocFail; hook != nil {
			if err := hook(n); err != nil {
				return nil, idx, err
			}
		}
		if err := x.Budget.Charge(n); err != nil {
			return nil, idx, err
		}
		shapes[idx] = shape
	}

	// Elementwise checks force every stage to one common shape, so the
	// root's shape drives the single loop. The root was charged above
	// (last, like the unfused engine); allocate its storage now.
	root := len(stages) - 1
	out := &Matrix{elem: elem, shape: append([]int(nil), shapes[root]...)}
	out.strides = stridesFor(out.shape)
	n, _ := checkedSize(out.shape)
	switch elem {
	case Float:
		if s, ok := floatFree.get(n); ok {
			out.f = s
		} else {
			out.f = make([]float64, n)
		}
	case Int:
		if s, ok := intFree.get(n); ok {
			out.i = s
		} else {
			out.i = make([]int64, n)
		}
	default:
		return nil, root, fmt.Errorf("matrix: fused chain over %s elements", elem)
	}
	if n == 0 {
		return out, -1, nil
	}

	var body func(lo, hi int) error
	if elem == Float {
		body = func(lo, hi int) error { return fusedFloatRange(stages, out.f, lo, hi) }
	} else {
		body = func(lo, hi int) error { return fusedIntRange(stages, out.i, lo, hi) }
	}
	if err := runKernel(x, n, ParallelGrain, body); err != nil {
		out.Recycle()
		return nil, root, err
	}
	return out, -1, nil
}

// fusedOperandShape resolves an operand's shape (matrix-ish operands
// only), checking nil leaves.
func fusedOperandShape(a FusedArg, shapes [][]int) (shape []int, isMat bool, err error) {
	switch a.Kind {
	case FusedStageArg:
		return shapes[a.Stage], true, nil
	case FusedMatrixArg:
		if a.Mat == nil {
			return nil, true, ErrUnassignedOperand
		}
		return a.Mat.shape, true, nil
	}
	return nil, false, nil
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fusedFloatRange evaluates every stage over [lo, hi) in cache-sized
// blocks, reusing the arithmetic inner loops of the unfused kernels.
// Non-root stage results live in per-call scratch so concurrent chunks
// never share buffers.
func fusedFloatRange(stages []FusedStage, dst []float64, lo, hi int) error {
	root := len(stages) - 1
	blen := hi - lo
	if blen > fusedBlock {
		blen = fusedBlock
	}
	scratch := make([][]float64, root)
	for i := range scratch {
		if s, ok := floatFree.get(blen); ok {
			scratch[i] = s
		} else {
			scratch[i] = make([]float64, blen)
		}
	}
	defer func() {
		for _, s := range scratch {
			floatFree.put(s)
		}
	}()

	view := func(a FusedArg, blo, bhi int) []float64 {
		if a.Kind == FusedStageArg {
			return scratch[a.Stage][:bhi-blo]
		}
		return a.Mat.f[blo:bhi]
	}
	for blo := lo; blo < hi; blo += fusedBlock {
		bhi := blo + fusedBlock
		if bhi > hi {
			bhi = hi
		}
		bl := bhi - blo
		for idx := range stages {
			st := &stages[idx]
			d := dst[blo:bhi]
			if idx != root {
				d = scratch[idx][:bl]
			}
			switch {
			case st.L.Kind != FusedScalarArg && st.R.Kind != FusedScalarArg:
				ewArithFloat(st.Op, d, view(st.L, blo, bhi), view(st.R, blo, bhi), 0, bl)
			case st.R.Kind == FusedScalarArg:
				bcArithFloat(st.Op, d, view(st.L, blo, bhi), st.R.F, true, 0, bl)
			default:
				bcArithFloat(st.Op, d, view(st.R, blo, bhi), st.L.F, false, 0, bl)
			}
		}
	}
	return nil
}

// fusedIntRange is fusedFloatRange for int chains. The legality rules
// exclude the operators with per-element failure (/ %), so the inner
// loops cannot error; the error returns stay wired through regardless.
func fusedIntRange(stages []FusedStage, dst []int64, lo, hi int) error {
	root := len(stages) - 1
	blen := hi - lo
	if blen > fusedBlock {
		blen = fusedBlock
	}
	scratch := make([][]int64, root)
	for i := range scratch {
		if s, ok := intFree.get(blen); ok {
			scratch[i] = s
		} else {
			scratch[i] = make([]int64, blen)
		}
	}
	defer func() {
		for _, s := range scratch {
			intFree.put(s)
		}
	}()

	view := func(a FusedArg, blo, bhi int) []int64 {
		if a.Kind == FusedStageArg {
			return scratch[a.Stage][:bhi-blo]
		}
		return a.Mat.i[blo:bhi]
	}
	for blo := lo; blo < hi; blo += fusedBlock {
		bhi := blo + fusedBlock
		if bhi > hi {
			bhi = hi
		}
		bl := bhi - blo
		for idx := range stages {
			st := &stages[idx]
			d := dst[blo:bhi]
			if idx != root {
				d = scratch[idx][:bl]
			}
			var err error
			switch {
			case st.L.Kind != FusedScalarArg && st.R.Kind != FusedScalarArg:
				err = ewArithInt(st.Op, d, view(st.L, blo, bhi), view(st.R, blo, bhi), 0, bl)
			case st.R.Kind == FusedScalarArg:
				err = bcArithInt(st.Op, d, view(st.L, blo, bhi), st.R.I, true, 0, bl)
			default:
				err = bcArithInt(st.Op, d, view(st.R, blo, bhi), st.L.I, false, 0, bl)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
