package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rc"
)

func seqFloat(shape ...int) *Matrix {
	m := New(Float, shape...)
	for k := range m.f {
		m.f[k] = float64(k)
	}
	return m
}

func TestShapeAndAccess(t *testing.T) {
	m := New(Float, 2, 3, 4)
	if m.Rank() != 3 || m.Size() != 24 {
		t.Fatalf("rank/size = %d/%d", m.Rank(), m.Size())
	}
	if d, _ := m.DimSize(1); d != 3 {
		t.Errorf("dimSize(1) = %d", d)
	}
	if _, err := m.DimSize(3); err == nil {
		t.Error("dimSize out of range should error")
	}
	if err := m.SetAt(2.5, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	v, err := m.At(1, 2, 3)
	if err != nil || v.(float64) != 2.5 {
		t.Errorf("At = %v, %v", v, err)
	}
	if _, err := m.At(2, 0, 0); err == nil {
		t.Error("out of range At should error")
	}
	if _, err := m.At(0, 0); err == nil {
		t.Error("wrong arity At should error")
	}
}

func TestSetPromotion(t *testing.T) {
	m := New(Float, 1)
	if err := m.Set(0, int64(3)); err != nil || m.f[0] != 3.0 {
		t.Error("int should promote into float matrix")
	}
	mi := New(Int, 1)
	if err := mi.Set(0, 1.5); err == nil {
		t.Error("float into int matrix should error")
	}
	mb := New(Bool, 1)
	if err := mb.Set(0, int64(1)); err == nil {
		t.Error("int into bool matrix should error")
	}
}

func TestRangeVector(t *testing.T) {
	r := Range(3, 7)
	if r.Rank() != 1 || r.Size() != 5 || r.i[0] != 3 || r.i[4] != 7 {
		t.Errorf("Range(3,7) = %v", r)
	}
	if Range(5, 4).Size() != 0 {
		t.Error("inverted range should be empty")
	}
}

// §III-A.3(a): standard indexing extracts a single element.
func TestScalarIndexing(t *testing.T) {
	m := seqFloat(7, 5, 3)
	v, err := m.Index(Scalar(6), Scalar(4), Scalar(1))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.At(6, 4, 1)
	if v != want {
		t.Errorf("m[6,4,1] = %v, want %v", v, want)
	}
}

// §III-A.3(b): data[0:4, end-4:end, 0:4] returns a 5x5x5 matrix.
func TestRangeIndexing(t *testing.T) {
	m := seqFloat(10, 10, 10)
	end := 9
	v, err := m.Index(Span(0, 4), Span(end-4, end), Span(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	sub := v.(*Matrix)
	if sub.Rank() != 3 || sub.shape[0] != 5 || sub.shape[1] != 5 || sub.shape[2] != 5 {
		t.Fatalf("shape = %v, want 5x5x5 (paper §III-A.3(b))", sub.shape)
	}
	got, _ := sub.At(0, 0, 0)
	want, _ := m.At(0, 5, 0)
	if got != want {
		t.Errorf("corner = %v, want %v", got, want)
	}
}

// §III-A.3(c): data[0, end, :] returns a vector of size dimSize(data,2).
func TestWholeDimIndexing(t *testing.T) {
	m := seqFloat(4, 5, 6)
	v, err := m.Index(Scalar(0), Scalar(4), All())
	if err != nil {
		t.Fatal(err)
	}
	vec := v.(*Matrix)
	if vec.Rank() != 1 || vec.Size() != 6 {
		t.Fatalf("shape = %v, want [6]", vec.shape)
	}
	for k := 0; k < 6; k++ {
		want, _ := m.At(0, 4, k)
		if vec.f[k] != want.(float64) {
			t.Errorf("vec[%d] = %v, want %v", k, vec.f[k], want)
		}
	}
}

// §III-A.3(d): logical indexing with v % 2 == 1 over dimension 0.
func TestLogicalIndexing(t *testing.T) {
	m := seqFloat(6, 4)
	mask := FromBools([]bool{false, true, false, true, false, true}, 6)
	v, err := m.Index(Mask(mask), All())
	if err != nil {
		t.Fatal(err)
	}
	sub := v.(*Matrix)
	if sub.shape[0] != 3 || sub.shape[1] != 4 {
		t.Fatalf("shape = %v, want [3 4]", sub.shape)
	}
	got, _ := sub.At(1, 2)
	want, _ := m.At(3, 2)
	if got != want {
		t.Errorf("sub[1,2] = %v, want %v", got, want)
	}
	// empty mask selection
	none := New(Bool, 6)
	v, err = m.Index(Mask(none), All())
	if err != nil {
		t.Fatal(err)
	}
	if v.(*Matrix).shape[0] != 0 {
		t.Error("all-false mask should select 0 rows")
	}
}

func TestIndexErrors(t *testing.T) {
	m := seqFloat(3, 3)
	cases := [][]IndexSpec{
		{Scalar(3), Scalar(0)},                    // out of range
		{Scalar(-1), Scalar(0)},                   // negative
		{Span(2, 1), All()},                       // inverted range
		{Span(0, 3), All()},                       // range beyond end
		{Scalar(0)},                               // wrong arity
		{Mask(FromBools([]bool{true}, 1)), All()}, // mask length mismatch
		{Mask(seqFloat(3)), All()},                // mask not bool
	}
	for i, specs := range cases {
		if _, err := m.Index(specs...); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

// Indexing works on the left-hand side of assignment too (§III-A.3).
func TestSetIndex(t *testing.T) {
	m := seqFloat(4, 4)
	// scalar store
	if err := m.SetIndex(99.0, Scalar(1), Scalar(1)); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.At(1, 1); v.(float64) != 99.0 {
		t.Error("scalar store failed")
	}
	// slice store from a matrix: scores[beginning:i] = computeArea(trough)
	row := FromFloats([]float64{-1, -2, -3}, 3)
	if err := m.SetIndex(row, Scalar(2), Span(1, 3)); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if v, _ := m.At(2, 1+k); v.(float64) != row.f[k] {
			t.Errorf("slice store [2,%d] = %v", 1+k, v)
		}
	}
	// broadcast scalar into selection
	if err := m.SetIndex(7.0, All(), Scalar(0)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if v, _ := m.At(r, 0); v.(float64) != 7.0 {
			t.Errorf("broadcast store [%d,0] = %v", r, v)
		}
	}
	// size mismatch
	if err := m.SetIndex(row, All(), Scalar(0)); err == nil {
		t.Error("store size mismatch should error")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromFloats([]float64{1, 2, 3, 4}, 2, 2)
	b := FromFloats([]float64{10, 20, 30, 40}, 2, 2)
	sum, err := Elementwise(OpAdd, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.f[3] != 44 {
		t.Errorf("sum[3] = %v", sum.f[3])
	}
	cmp, err := Elementwise(OpLt, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.elem != Bool || !cmp.b[0] {
		t.Error("comparison should give bool matrix")
	}
	if _, err := Elementwise(OpAdd, a, seqFloat(3, 3)); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestBroadcast(t *testing.T) {
	a := FromInts([]int64{1, 2, 3}, 3)
	out, err := Broadcast(OpMul, a, int64(2), true)
	if err != nil {
		t.Fatal(err)
	}
	if out.elem != Int || out.i[2] != 6 {
		t.Errorf("broadcast = %v", out)
	}
	// int matrix * float scalar promotes
	outf, err := Broadcast(OpMul, a, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if outf.elem != Float || outf.f[1] != 1.0 {
		t.Errorf("promoted broadcast = %v", outf)
	}
	// scalar on the left: 10 - a
	outl, err := Broadcast(OpSub, a, int64(10), false)
	if err != nil {
		t.Fatal(err)
	}
	if outl.i[0] != 9 {
		t.Errorf("left broadcast = %v", outl)
	}
	// comparison: ssh < i (Fig 4)
	cmp, err := Broadcast(OpLt, a, int64(3), true)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.elem != Bool || !cmp.b[0] || cmp.b[2] {
		t.Errorf("compare broadcast = %v", cmp)
	}
}

func TestMatMul(t *testing.T) {
	a := FromFloats([]float64{1, 2, 3, 4}, 2, 2)
	id := FromFloats([]float64{1, 0, 0, 1}, 2, 2)
	out, err := MatMul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(out, a) {
		t.Errorf("a * I = %v", out)
	}
	b := FromFloats([]float64{5, 6, 7, 8}, 2, 2)
	out, _ = MatMul(a, b)
	want := FromFloats([]float64{19, 22, 43, 50}, 2, 2)
	if !Equal(out, want) {
		t.Errorf("a*b = %v, want %v", out, want)
	}
	ai := FromInts([]int64{1, 2, 3, 4}, 2, 2)
	outi, err := MatMul(ai, ai)
	if err != nil || outi.elem != Int || outi.i[0] != 7 {
		t.Errorf("int matmul = %v (%v)", outi, err)
	}
	if _, err := MatMul(a, seqFloat(3, 2)); err == nil {
		t.Error("inner dimension mismatch should error")
	}
	if _, err := MatMul(seqFloat(2), a); err == nil {
		t.Error("rank-1 matmul should error")
	}
}

func TestUnary(t *testing.T) {
	a := FromInts([]int64{1, -2}, 2)
	n, err := Unary(true, a)
	if err != nil || n.i[0] != -1 || n.i[1] != 2 {
		t.Errorf("neg = %v (%v)", n, err)
	}
	b := FromBools([]bool{true, false}, 2)
	nb, err := Unary(false, b)
	if err != nil || nb.b[0] || !nb.b[1] {
		t.Errorf("not = %v (%v)", nb, err)
	}
	if _, err := Unary(true, b); err == nil {
		t.Error("negating bool matrix should error")
	}
	if _, err := Unary(false, a); err == nil {
		t.Error("logical not of int matrix should error")
	}
}

func TestGenArraySequential(t *testing.T) {
	// with ([0,0] <= [i,j] < [2,3]) genarray([2,3], i*10+j)
	out, err := GenArray(Int, []int{0, 0}, []int{2, 3}, []int{2, 3},
		func(idx []int) (any, error) { return int64(idx[0]*10 + idx[1]), nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := FromInts([]int64{0, 1, 2, 10, 11, 12}, 2, 3)
	if !Equal(out, want) {
		t.Errorf("genarray = %v, want %v", out, want)
	}
}

func TestGenArraySubsetZeroFill(t *testing.T) {
	// generator covers a subset; the rest is 0 (§III-A.4).
	out, err := GenArray(Int, []int{1, 1}, []int{3, 3}, []int{4, 4},
		func(idx []int) (any, error) { return int64(1), nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, v := range out.i {
		if v == 1 {
			ones++
		} else if v != 0 {
			t.Fatalf("unexpected value %d", v)
		}
	}
	if ones != 4 {
		t.Errorf("ones = %d, want 4", ones)
	}
}

func TestGenArraySupersetCheck(t *testing.T) {
	// "the shape in the operation must be a superset of the indexes in
	// the generator, which is something that can be checked at runtime"
	_, err := GenArray(Int, []int{0}, []int{10}, []int{5},
		func(idx []int) (any, error) { return int64(0), nil }, nil)
	if err == nil {
		t.Fatal("generator exceeding shape must be a runtime error")
	}
}

func TestFoldKinds(t *testing.T) {
	body := func(idx []int) (any, error) { return int64(idx[0]), nil }
	sum, err := Fold(FoldAdd, int64(0), []int{0}, []int{10}, body, nil)
	if err != nil || sum.(int64) != 45 {
		t.Errorf("fold + = %v (%v)", sum, err)
	}
	prod, err := Fold(FoldMul, int64(1), []int{1}, []int{5}, body, nil)
	if err != nil || prod.(int64) != 24 {
		t.Errorf("fold * = %v (%v)", prod, err)
	}
	mn, err := Fold(FoldMin, int64(100), []int{3}, []int{9}, body, nil)
	if err != nil || mn.(int64) != 3 {
		t.Errorf("fold min = %v (%v)", mn, err)
	}
	mx, err := Fold(FoldMax, int64(-100), []int{3}, []int{9}, body, nil)
	if err != nil || mx.(int64) != 8 {
		t.Errorf("fold max = %v (%v)", mx, err)
	}
	// float fold (Fig 1's temporal mean numerator)
	fsum, err := Fold(FoldAdd, 0.0, []int{0}, []int{4},
		func(idx []int) (any, error) { return float64(idx[0]) + 0.5, nil }, nil)
	if err != nil || fsum.(float64) != 8.0 {
		t.Errorf("float fold = %v (%v)", fsum, err)
	}
	// empty generator returns base
	e, err := Fold(FoldAdd, int64(7), []int{5}, []int{5}, body, nil)
	if err != nil || e.(int64) != 7 {
		t.Errorf("empty fold = %v (%v)", e, err)
	}
}

func TestMatrixMapSequential(t *testing.T) {
	// double every element of each row vector (dims = [1])
	m := seqFloat(3, 4)
	out, err := MatrixMap(m, []int{1}, Float, func(sub *Matrix) (*Matrix, error) {
		return Broadcast(OpMul, sub, 2.0, true)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.SameShape(m) {
		t.Fatalf("matrixMap changed shape: %v", out.shape)
	}
	for k := range m.f {
		if out.f[k] != 2*m.f[k] {
			t.Fatalf("out[%d] = %v", k, out.f[k])
		}
	}
}

func TestMatrixMapEquivalentToExplicitLoop(t *testing.T) {
	// Fig 5: matrixMap(f, ssh, [0,1]) ≡ loop over dim 2 applying f.
	ssh := seqFloat(4, 5, 6)
	f := func(sub *Matrix) (*Matrix, error) { return Broadcast(OpAdd, sub, 1.0, true) }
	got, err := MatrixMap(ssh, []int{0, 1}, Float, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := New(Float, 4, 5, 6)
	for k := 0; k < 6; k++ {
		subAny, _ := ssh.Index(All(), All(), Scalar(k))
		res, _ := f(subAny.(*Matrix))
		if err := want.SetIndex(res, All(), All(), Scalar(k)); err != nil {
			t.Fatal(err)
		}
	}
	if !Equal(got, want) {
		t.Fatal("matrixMap result differs from explicit dim-2 loop (Fig 5 equivalence)")
	}
}

func TestMatrixMapErrors(t *testing.T) {
	m := seqFloat(3, 4)
	double := func(sub *Matrix) (*Matrix, error) { return sub.Copy(), nil }
	if _, err := MatrixMap(m, []int{0, 1}, Float, double, nil); err == nil {
		t.Error("mapping all dims should error")
	}
	if _, err := MatrixMap(m, nil, Float, double, nil); err == nil {
		t.Error("mapping no dims should error")
	}
	if _, err := MatrixMap(m, []int{5}, Float, double, nil); err == nil {
		t.Error("out-of-range dim should error")
	}
	if _, err := MatrixMap(m, []int{1, 1}, Float, double, nil); err == nil {
		t.Error("duplicate dim should error")
	}
	bad := func(sub *Matrix) (*Matrix, error) { return New(Float, 2), nil }
	if _, err := MatrixMap(m, []int{1}, Float, bad, nil); err == nil {
		t.Error("size-changing function should error")
	}
}

func TestTrackedAllocation(t *testing.T) {
	h := rc.NewHeap()
	m := NewTracked(h, Float, 10, 10)
	if m.Hdr == nil || m.Hdr.Size() != 800 {
		t.Fatalf("tracked header = %+v", m.Hdr)
	}
	m.Hdr.DecRef()
	if err := h.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestEqualAndAlmostEqual(t *testing.T) {
	a := FromFloats([]float64{1, 2}, 2)
	b := FromFloats([]float64{1, 2.0000001}, 2)
	if Equal(a, b) {
		t.Error("Equal should be exact")
	}
	if !AlmostEqual(a, b, 1e-5) {
		t.Error("AlmostEqual should tolerate eps")
	}
	if Equal(a, FromInts([]int64{1, 2}, 2)) {
		t.Error("different elem types are not equal")
	}
}

// Property: slice composition — indexing twice equals composed range.
func TestQuickRangeComposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(20)
		m := seqFloat(n)
		lo1 := r.Intn(n - 2)
		hi1 := lo1 + 1 + r.Intn(n-lo1-1)
		subAny, err := m.Index(Span(lo1, hi1))
		if err != nil {
			return false
		}
		sub := subAny.(*Matrix)
		k := sub.Size()
		lo2 := r.Intn(k)
		hi2 := lo2 + r.Intn(k-lo2)
		inner, err := sub.Index(Span(lo2, hi2))
		if err != nil {
			return false
		}
		direct, err := m.Index(Span(lo1+lo2, lo1+hi2))
		if err != nil {
			return false
		}
		return Equal(inner.(*Matrix), direct.(*Matrix))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: get after set returns the stored value.
func TestQuickGetSet(t *testing.T) {
	m := New(Float, 5, 5, 5)
	f := func(i, j, k uint8, v float64) bool {
		idx := []int{int(i) % 5, int(j) % 5, int(k) % 5}
		if err := m.SetAt(v, idx...); err != nil {
			return false
		}
		got, err := m.At(idx...)
		return err == nil && got.(float64) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: logical indexing keeps exactly the masked rows in order.
func TestQuickLogicalIndexLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		m := seqFloat(n, 3)
		bits := make([]bool, n)
		count := 0
		for i := range bits {
			bits[i] = r.Intn(2) == 0
			if bits[i] {
				count++
			}
		}
		outAny, err := m.Index(Mask(FromBools(bits, n)), All())
		if err != nil {
			return false
		}
		out := outAny.(*Matrix)
		if out.shape[0] != count {
			return false
		}
		row := 0
		for i := 0; i < n; i++ {
			if !bits[i] {
				continue
			}
			for c := 0; c < 3; c++ {
				want, _ := m.At(i, c)
				got, _ := out.At(row, c)
				if want != got {
					return false
				}
			}
			row++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
