package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/par"
)

// Property: parallel with-loop execution is bit-identical to
// sequential execution (the §III-C fork-join model preserves the
// construct's semantics).
func TestQuickParallelGenArrayMatchesSequential(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Shutdown()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(16)
		cols := 1 + r.Intn(16)
		body := func(idx []int) (any, error) {
			return float64(idx[0]*31+idx[1]*7) * 0.5, nil
		}
		seq, err := GenArray(Float, []int{0, 0}, []int{rows, cols}, []int{rows, cols}, body, nil)
		if err != nil {
			return false
		}
		parl, err := GenArray(Float, []int{0, 0}, []int{rows, cols}, []int{rows, cols}, body, pool)
		if err != nil {
			return false
		}
		return Equal(seq, parl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickParallelFoldMatchesSequential(t *testing.T) {
	pool := par.NewPool(3)
	defer pool.Shutdown()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		body := func(idx []int) (any, error) { return int64(idx[0] % 17), nil }
		for _, kind := range []FoldKind{FoldAdd, FoldMin, FoldMax} {
			seq, err := Fold(kind, int64(5), []int{0}, []int{n}, body, nil)
			if err != nil {
				return false
			}
			parl, err := Fold(kind, int64(5), []int{0}, []int{n}, body, pool)
			if err != nil {
				return false
			}
			if seq != parl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParallelMatrixMapMatchesSequential(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Shutdown()
	m := seqFloat(6, 5, 7)
	f := func(sub *Matrix) (*Matrix, error) { return Broadcast(OpMul, sub, 3.0, true) }
	seq, err := MatrixMap(m, []int{0, 1}, Float, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	parl, err := MatrixMap(m, []int{0, 1}, Float, f, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(seq, parl) {
		t.Fatal("parallel matrixMap differs from sequential")
	}
}

// The temporal mean of Fig 1/Fig 3, computed with nested with-loop
// primitives, must equal a direct two-loop computation.
func TestTemporalMeanWithLoops(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Shutdown()
	const m, n, p = 8, 9, 10
	mat := New(Float, m, n, p)
	r := rand.New(rand.NewSource(42))
	for k := range mat.f {
		mat.f[k] = r.Float64() * 10
	}
	means, err := GenArray(Float, []int{0, 0}, []int{m, n}, []int{m, n},
		func(idx []int) (any, error) {
			i, j := idx[0], idx[1]
			sum, err := Fold(FoldAdd, 0.0, []int{0}, []int{p},
				func(kidx []int) (any, error) {
					v, err := mat.At(i, j, kidx[0])
					if err != nil {
						return nil, err
					}
					return v, nil
				}, nil) // inner construct runs sequentially, as in the generated C
			if err != nil {
				return nil, err
			}
			return sum.(float64) / p, nil
		}, pool)
	if err != nil {
		t.Fatal(err)
	}
	// Direct reference (the expanded loops of Fig 3).
	want := New(Float, m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for k := 0; k < p; k++ {
				acc += mat.f[i*n*p+j*p+k]
			}
			want.f[i*n+j] = acc / p
		}
	}
	if !AlmostEqual(means, want, 1e-9) {
		t.Fatal("with-loop temporal mean differs from Fig 3 reference loops")
	}
}

func TestGenArrayErrorPropagatesFromPool(t *testing.T) {
	pool := par.NewPool(2)
	defer pool.Shutdown()
	_, err := GenArray(Float, []int{0}, []int{100}, []int{100},
		func(idx []int) (any, error) {
			if idx[0] == 63 {
				return nil, errBody
			}
			return 0.0, nil
		}, pool)
	if err != errBody {
		t.Fatalf("err = %v, want body error", err)
	}
}

var errBody = &bodyErr{}

type bodyErr struct{}

func (*bodyErr) Error() string { return "body failure" }
