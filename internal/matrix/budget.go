// Allocation budgets: a per-execution cap on the total cells the
// matrix runtime may allocate, so an adversarial genarray (or an
// allocation loop) fails as a structured error instead of OOM-killing
// the process. The budget is charged before the backing storage is
// made, which is what keeps a `genarray([1000000, 1000000], ...)`
// request from ever touching the Go heap.
package matrix

import (
	"fmt"
	"sync/atomic"
)

// Budget caps the cells one execution may allocate, cumulatively.
// A nil *Budget means unlimited. Safe for concurrent charging (pool
// workers allocate result rows concurrently in future layouts).
type Budget struct {
	limit int64
	used  atomic.Int64
}

// NewBudget returns a budget of maxCells total cells; maxCells <= 0
// returns nil (unlimited), so callers can pass a config value through.
func NewBudget(maxCells int64) *Budget {
	if maxCells <= 0 {
		return nil
	}
	return &Budget{limit: maxCells}
}

// Used returns the cells charged so far.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Limit returns the configured cap (0 for a nil budget).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Charge reserves cells against the budget, failing with a
// *BudgetError when the cap would be exceeded. Charging is permanent
// for the execution — the budget bounds total allocation work, not
// live memory, so allocation loops are caught too.
func (b *Budget) Charge(cells int) error {
	if b == nil {
		return nil
	}
	if cells < 0 {
		return &ShapeError{msg: fmt.Sprintf("matrix: negative allocation of %d cells", cells)}
	}
	used := b.used.Add(int64(cells))
	if used > b.limit {
		b.used.Add(-int64(cells))
		return &BudgetError{Requested: int64(cells), Used: used - int64(cells), Limit: b.limit}
	}
	return nil
}

// BudgetError reports an allocation denied by a Budget; the
// interpreter maps it to the "oom" trap.
type BudgetError struct {
	Requested, Used, Limit int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("matrix: allocation of %d cells exceeds the budget (%d of %d cells already used)",
		e.Requested, e.Used, e.Limit)
}

// ShapeError reports a structurally impossible allocation request — a
// negative dimension or a size overflow; the interpreter maps it to
// the "shape" trap.
type ShapeError struct{ msg string }

func (e *ShapeError) Error() string { return e.msg }

// TestHookAllocFail, when non-nil, is consulted on every budgeted
// allocation with the requested cell count; returning a non-nil error
// makes the allocation fail with it. It is the build-tag-free fault
// injection seam the crash-only suite uses to simulate allocator
// failure. Must be nil in production.
var TestHookAllocFail func(cells int) error
