// Parallel execution of the with-loop (genarray and fold) and
// matrixMap constructs (§III-A.4, §III-A.5, §III-C). The outermost
// generated dimension is distributed over the fork-join pool; a nil
// pool runs sequentially, which the interpreter uses for nested
// parallel constructs (matching the generated C, which parallelizes
// the outermost construct only).
//
// Every construct takes an Exec describing its execution environment:
// pool, allocation budget and cancellation context. The first body
// error, recovered worker panic, or deadline expiry aborts the
// remaining iteration space cooperatively (per-row abort-flag and
// context polls), so a poisoned row cannot keep the pool grinding
// through millions of doomed iterations.
package matrix

import (
	"context"
	"fmt"

	"repro/internal/par"
)

// Exec is the execution environment threaded through the parallel
// constructs: Pool distributes the outermost dimension (nil =
// sequential), Budget caps allocations (nil = unlimited), and Ctx is
// polled between rows so a deadline is observed mid-construct (nil =
// never cancelled). The zero Exec is sequential and unbounded.
type Exec struct {
	Pool   *par.Pool
	Budget *Budget
	Ctx    context.Context
}

// cancelled polls the context without blocking.
func (x Exec) cancelled() error {
	if x.Ctx == nil {
		return nil
	}
	select {
	case <-x.Ctx.Done():
		return x.Ctx.Err()
	default:
		return nil
	}
}

// BodyFunc computes a with-loop body value at one generator index.
// The idx slice must not be retained.
type BodyFunc func(idx []int) (any, error)

// GenArray implements
//
//	with ([lower] <= [ids] < [upper]) genarray([shape], body)
//
// on a bare pool with no budget or deadline; see GenArrayExec.
func GenArray(elem Elem, lower, upper, shape []int, body BodyFunc, pool *par.Pool) (*Matrix, error) {
	return GenArrayExec(elem, lower, upper, shape, body, Exec{Pool: pool})
}

// GenArrayExec produces a matrix of the given element type and shape
// whose cells inside the generator box hold body(idx) and 0 elsewhere.
// As §III-A.4 requires, the shape must be a superset of the generator
// box — a runtime check. The output allocation is charged against
// x.Budget before any storage is made.
func GenArrayExec(elem Elem, lower, upper, shape []int, body BodyFunc, x Exec) (*Matrix, error) {
	if len(lower) != len(shape) || len(upper) != len(shape) {
		return nil, fmt.Errorf("matrix: genarray shape rank %d does not match generator rank %d",
			len(shape), len(lower))
	}
	if _, err := checkedSize(shape); err != nil {
		return nil, err
	}
	for d := range shape {
		if lower[d] < 0 || upper[d] > shape[d] {
			return nil, fmt.Errorf(
				"matrix: genarray shape %v is not a superset of the generator box [%v, %v) in dimension %d",
				shape, lower, upper, d)
		}
	}
	out, err := NewBudgeted(x.Budget, elem, shape...)
	if err != nil {
		return nil, err
	}
	if out.Size() == 0 {
		return out, nil
	}
	n0 := upper[0] - lower[0]
	runRow := func(i0 int) error {
		lo := append([]int{i0}, lower[1:]...)
		hi := append([]int{i0 + 1}, upper[1:]...)
		var ierr error
		indexSpace(lo, hi, func(idx []int) {
			if ierr != nil {
				return
			}
			v, err := body(idx)
			if err != nil {
				ierr = err
				return
			}
			off, err := out.Offset(idx)
			if err != nil {
				ierr = err
				return
			}
			if err := out.Set(off, v); err != nil {
				ierr = err
			}
		})
		return ierr
	}
	if x.Pool == nil || n0 < 2 {
		for i0 := lower[0]; i0 < upper[0]; i0++ {
			if err := x.cancelled(); err != nil {
				return nil, err
			}
			if err := runRow(i0); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if err := x.Pool.ParallelForCtx(x.Ctx, lower[0], upper[0], runRow); err != nil {
		return nil, err
	}
	return out, nil
}

// FoldKind is the fold operator of §III-A.4.
type FoldKind int

// Fold operators.
const (
	FoldAdd FoldKind = iota
	FoldMul
	FoldMin
	FoldMax
)

func (k FoldKind) String() string {
	switch k {
	case FoldAdd:
		return "+"
	case FoldMul:
		return "*"
	case FoldMin:
		return "min"
	case FoldMax:
		return "max"
	}
	return "?"
}

// combineInt and combineFloat are the typed fold steps; their min/max
// forms reproduce foldCombine's OpLt tie-breaking exactly (min of
// equal values keeps the right operand, max keeps the left; a NaN
// comparison is false, so min picks the right operand and max the
// left — identical to the boxed path).
func combineInt(kind FoldKind, a, b int64) int64 {
	switch kind {
	case FoldAdd:
		return a + b
	case FoldMul:
		return a * b
	case FoldMin:
		if a < b {
			return a
		}
		return b
	default:
		if a < b {
			return b
		}
		return a
	}
}

func combineFloat(kind FoldKind, a, b float64) float64 {
	switch kind {
	case FoldAdd:
		return a + b
	case FoldMul:
		return a * b
	case FoldMin:
		if a < b {
			return a
		}
		return b
	default:
		if a < b {
			return b
		}
		return a
	}
}

// foldAcc is FoldExec's accumulator: typed int/float lanes so the
// common folds never re-box the accumulator through interface{} per
// element, plus a boxed lane that reproduces foldCombine verbatim for
// anything else (including its error texts). Lane switches follow
// scalarOp promotion for add/mul; min/max keep the winning operand's
// own type, exactly as the boxed OpLt path does.
type foldAcc struct {
	kind FoldKind
	mode uint8 // faInt | faFloat | faBoxed
	i    int64
	f    float64
	v    any
}

const (
	faInt uint8 = iota
	faFloat
	faBoxed
)

func newFoldAcc(kind FoldKind, init any) foldAcc {
	switch x := init.(type) {
	case int64:
		return foldAcc{kind: kind, mode: faInt, i: x}
	case float64:
		return foldAcc{kind: kind, mode: faFloat, f: x}
	}
	return foldAcc{kind: kind, mode: faBoxed, v: init}
}

// value boxes the accumulator back to the interface form callers see.
func (a *foldAcc) value() any {
	switch a.mode {
	case faInt:
		return a.i
	case faFloat:
		return a.f
	}
	return a.v
}

func (a *foldAcc) combine(v any) error {
	switch a.mode {
	case faInt:
		switch x := v.(type) {
		case int64:
			a.i = combineInt(a.kind, a.i, x)
			return nil
		case float64:
			if a.kind == FoldMin || a.kind == FoldMax {
				// The winner keeps its own type, like foldCombine's
				// OpLt path returning a or b unconverted.
				if (float64(a.i) < x) == (a.kind == FoldMax) {
					a.mode, a.f = faFloat, x
				}
				return nil
			}
			a.mode, a.f = faFloat, combineFloat(a.kind, float64(a.i), x)
			return nil
		}
	case faFloat:
		switch x := v.(type) {
		case float64:
			a.f = combineFloat(a.kind, a.f, x)
			return nil
		case int64:
			if a.kind == FoldMin || a.kind == FoldMax {
				if (a.f < float64(x)) == (a.kind == FoldMax) {
					a.mode, a.i = faInt, x
				}
				return nil
			}
			a.f = combineFloat(a.kind, a.f, float64(x))
			return nil
		}
	}
	// Anything else goes through the boxed reference path.
	nv, err := foldCombine(a.kind, a.value(), v)
	if err != nil {
		return err
	}
	*a = newFoldAcc(a.kind, nv)
	return nil
}

func foldCombine(kind FoldKind, a, b any) (any, error) {
	switch kind {
	case FoldAdd:
		return scalarOp(OpAdd, a, b)
	case FoldMul:
		return scalarOp(OpMul, a, b)
	case FoldMin, FoldMax:
		lt, err := scalarOp(OpLt, a, b)
		if err != nil {
			return nil, err
		}
		if lt.(bool) == (kind == FoldMin) {
			return a, nil
		}
		return b, nil
	}
	return nil, fmt.Errorf("matrix: unknown fold kind %d", kind)
}

// Fold implements
//
//	with ([lower] <= [ids] < [upper]) fold(op, base, body)
//
// on a bare pool with no budget or deadline; see FoldExec.
func Fold(kind FoldKind, base any, lower, upper []int, body BodyFunc, pool *par.Pool) (any, error) {
	return FoldExec(kind, base, lower, upper, body, Exec{Pool: pool})
}

// FoldExec reduces body over the generator box with the associative
// operator, starting from base. When a pool is supplied the outermost
// dimension is folded in per-worker partials combined after the stop
// barrier — valid because the fold operators are associative and
// commutative. The first row error aborts the other workers' remaining
// rows through the pool's abort flag.
func FoldExec(kind FoldKind, base any, lower, upper []int, body BodyFunc, x Exec) (any, error) {
	if len(lower) != len(upper) {
		return nil, fmt.Errorf("matrix: fold generator rank mismatch")
	}
	if len(lower) == 0 {
		return base, nil
	}
	// Each goroutine folds rows through its own folder so the index
	// buffer is allocated once, not per row (bodies receive idx for the
	// duration of one call only, exactly like indexSpace).
	rank := len(lower)
	newRowFolder := func() func(i0 int, acc *foldAcc) error {
		idx := make([]int, rank)
		return func(i0 int, acc *foldAcc) error {
			copy(idx, lower)
			idx[0] = i0
			for d := 1; d < rank; d++ {
				if lower[d] >= upper[d] {
					return nil
				}
			}
			for {
				v, err := body(idx)
				if err != nil {
					return err
				}
				if err := acc.combine(v); err != nil {
					return err
				}
				d := rank - 1
				for ; d >= 1; d-- {
					idx[d]++
					if idx[d] < upper[d] {
						break
					}
					idx[d] = lower[d]
				}
				if d < 1 {
					return nil
				}
			}
		}
	}
	n0 := upper[0] - lower[0]
	if x.Pool == nil || n0 < 2 {
		acc := newFoldAcc(kind, base)
		foldRow := newRowFolder()
		for i0 := lower[0]; i0 < upper[0]; i0++ {
			if err := x.cancelled(); err != nil {
				return nil, err
			}
			if err := foldRow(i0, &acc); err != nil {
				return nil, err
			}
		}
		return acc.value(), nil
	}
	// Parallel: per-worker partials seeded with the identity; base is
	// combined exactly once at the end.
	ident, err := foldIdentity(kind, base)
	if err != nil {
		return nil, err
	}
	pool := x.Pool
	partials := make([]any, pool.Workers())
	err = pool.RunErr(func(worker, workers int) error {
		chunk := (n0 + workers - 1) / workers
		start := lower[0] + worker*chunk
		end := start + chunk
		if end > upper[0] {
			end = upper[0]
		}
		acc := newFoldAcc(kind, ident)
		foldRow := newRowFolder()
		for i0 := start; i0 < end; i0++ {
			if pool.Aborted() {
				return nil
			}
			if err := x.cancelled(); err != nil {
				return err
			}
			if err := foldRow(i0, &acc); err != nil {
				return err
			}
		}
		partials[worker] = acc.value()
		return nil
	})
	if err != nil {
		return nil, err
	}
	acc := newFoldAcc(kind, base)
	for _, pv := range partials {
		if pv == nil {
			continue
		}
		if err := acc.combine(pv); err != nil {
			return nil, err
		}
	}
	return acc.value(), nil
}

// foldIdentity returns the identity element of kind in the numeric
// type of base.
func foldIdentity(kind FoldKind, base any) (any, error) {
	_, isInt := toInt(base)
	switch kind {
	case FoldAdd:
		if isInt {
			return int64(0), nil
		}
		return float64(0), nil
	case FoldMul:
		if isInt {
			return int64(1), nil
		}
		return float64(1), nil
	case FoldMin:
		if isInt {
			return int64(1) << 62, nil
		}
		return float64(1e308), nil
	case FoldMax:
		if isInt {
			return int64(-1) << 62, nil
		}
		return float64(-1e308), nil
	}
	return nil, fmt.Errorf("matrix: unknown fold kind %d", kind)
}

// MapFunc applies a user function to one sub-matrix in matrixMap.
type MapFunc func(sub *Matrix) (*Matrix, error)

// MatrixMap implements matrixMap(f, m, dims) on a bare pool with no
// budget or deadline; see MatrixMapExec.
func MatrixMap(m *Matrix, dims []int, outElem Elem, f MapFunc, pool *par.Pool) (*Matrix, error) {
	return MatrixMapExec(m, dims, outElem, f, Exec{Pool: pool})
}

// MatrixMapExec implements matrixMap(f, m, dims) (§III-A.5): f is
// applied to the sub-matrix spanned by dims at every combination of
// the remaining dimensions, which are iterated — in parallel on the
// pool — and the results are reassembled into a matrix of m's shape
// ("the result is always the same size and rank as the matrix getting
// mapped over"). outElem is the element type of f's results.
func MatrixMapExec(m *Matrix, dims []int, outElem Elem, f MapFunc, x Exec) (*Matrix, error) {
	rank := m.Rank()
	isMapped := make([]bool, rank)
	for _, d := range dims {
		if d < 0 || d >= rank {
			return nil, fmt.Errorf("matrix: matrixMap dimension %d out of range for rank %d", d, rank)
		}
		if isMapped[d] {
			return nil, fmt.Errorf("matrix: duplicate matrixMap dimension %d", d)
		}
		isMapped[d] = true
	}
	var iterDims []int
	for d := 0; d < rank; d++ {
		if !isMapped[d] {
			iterDims = append(iterDims, d)
		}
	}
	if len(iterDims) == 0 || len(dims) == 0 {
		return nil, fmt.Errorf("matrix: matrixMap must keep between 1 and rank-1 dimensions")
	}
	out, err := NewBudgeted(x.Budget, outElem, m.shape...)
	if err != nil {
		return nil, err
	}
	// Enumerate the iteration space linearly so the pool can split it.
	iterSize := 1
	for _, d := range iterDims {
		iterSize *= m.shape[d]
	}
	var wantShape []int
	for _, d := range dims {
		wantShape = append(wantShape, m.shape[d])
	}
	runOne := func(it int) error {
		// decode iteration index -> positions of the iterated dims
		specs := make([]IndexSpec, rank)
		rem := it
		for k := len(iterDims) - 1; k >= 0; k-- {
			d := iterDims[k]
			specs[d] = Scalar(rem % m.shape[d])
			rem /= m.shape[d]
		}
		for _, d := range dims {
			specs[d] = All()
		}
		subAny, err := m.Index(specs...)
		if err != nil {
			return err
		}
		sub := subAny.(*Matrix)
		res, err := f(sub)
		if err != nil {
			return err
		}
		if res.Rank() != len(dims) {
			return fmt.Errorf("matrix: matrixMap function returned rank %d, want %d", res.Rank(), len(dims))
		}
		for k, d := range dims {
			if res.shape[k] != m.shape[d] {
				return fmt.Errorf("matrix: matrixMap function changed dimension size %v -> %v (result must have the mapped dimensions' sizes %v)",
					m.shape[d], res.shape[k], wantShape)
			}
		}
		if res.elem != outElem {
			return fmt.Errorf("matrix: matrixMap function returned %s elements, want %s", res.elem, outElem)
		}
		return out.SetIndex(res, specs...)
	}
	if x.Pool == nil || iterSize < 2 {
		for it := 0; it < iterSize; it++ {
			if err := x.cancelled(); err != nil {
				return nil, err
			}
			if err := runOne(it); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if err := x.Pool.ParallelForCtx(x.Ctx, 0, iterSize, runOne); err != nil {
		return nil, err
	}
	return out, nil
}

// MatrixMapG is MatrixMapGExec on a bare pool; see MatrixMapGExec.
func MatrixMapG(m *Matrix, dims []int, outElem Elem, f MapFunc, pool *par.Pool) (*Matrix, error) {
	return MatrixMapGExec(m, dims, outElem, f, Exec{Pool: pool})
}

// MatrixMapGExec is the generalized matrixMap the paper describes as
// in development ("a generalization of this extension that removes
// this restriction is being developed", §III-A.5): the mapped function
// may return sub-matrices of a different size than it was given. The
// output's mapped-dimension sizes are discovered from the first
// application; every application must agree (checked at runtime).
func MatrixMapGExec(m *Matrix, dims []int, outElem Elem, f MapFunc, x Exec) (*Matrix, error) {
	rank := m.Rank()
	isMapped := make([]bool, rank)
	for _, d := range dims {
		if d < 0 || d >= rank {
			return nil, fmt.Errorf("matrix: matrixMapG dimension %d out of range for rank %d", d, rank)
		}
		if isMapped[d] {
			return nil, fmt.Errorf("matrix: duplicate matrixMapG dimension %d", d)
		}
		isMapped[d] = true
	}
	var iterDims []int
	for d := 0; d < rank; d++ {
		if !isMapped[d] {
			iterDims = append(iterDims, d)
		}
	}
	if len(iterDims) == 0 || len(dims) == 0 {
		return nil, fmt.Errorf("matrix: matrixMapG must keep between 1 and rank-1 dimensions")
	}
	iterSize := 1
	for _, d := range iterDims {
		iterSize *= m.shape[d]
	}
	specsFor := func(it int) []IndexSpec {
		specs := make([]IndexSpec, rank)
		rem := it
		for k := len(iterDims) - 1; k >= 0; k-- {
			d := iterDims[k]
			specs[d] = Scalar(rem % m.shape[d])
			rem /= m.shape[d]
		}
		for _, d := range dims {
			specs[d] = All()
		}
		return specs
	}
	apply := func(it int) (*Matrix, error) {
		subAny, err := m.Index(specsFor(it)...)
		if err != nil {
			return nil, err
		}
		res, err := f(subAny.(*Matrix))
		if err != nil {
			return nil, err
		}
		if res.Rank() != len(dims) {
			return nil, fmt.Errorf("matrix: matrixMapG function returned rank %d, want %d", res.Rank(), len(dims))
		}
		if res.elem != outElem {
			return nil, fmt.Errorf("matrix: matrixMapG function returned %s elements, want %s", res.elem, outElem)
		}
		return res, nil
	}
	if iterSize == 0 {
		return NewBudgeted(x.Budget, outElem, m.shape...)
	}
	// Discover the output's mapped-dimension sizes from application 0.
	first, err := apply(0)
	if err != nil {
		return nil, err
	}
	outShape := m.Shape()
	for k, d := range dims {
		outShape[d] = first.shape[k]
	}
	out, err := NewBudgeted(x.Budget, outElem, outShape...)
	if err != nil {
		return nil, err
	}
	store := func(it int, res *Matrix) error {
		for k, d := range dims {
			if res.shape[k] != out.shape[d] {
				return fmt.Errorf("matrix: matrixMapG applications disagree on result size (%v vs %v along dimension %d)",
					res.shape[k], out.shape[d], d)
			}
		}
		// The iterated positions are valid in out (same sizes there);
		// the All() specs resolve against out's own mapped sizes.
		return out.SetIndex(res, specsFor(it)...)
	}
	if err := store(0, first); err != nil {
		return nil, err
	}
	runOne := func(it int) error {
		res, err := apply(it)
		if err != nil {
			return err
		}
		return store(it, res)
	}
	if x.Pool == nil || iterSize < 3 {
		for it := 1; it < iterSize; it++ {
			if err := x.cancelled(); err != nil {
				return nil, err
			}
			if err := runOne(it); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if err := x.Pool.ParallelForCtx(x.Ctx, 1, iterSize, runOne); err != nil {
		return nil, err
	}
	return out, nil
}
