// Flat with-loop execution — the kernel half of compiled with-loops.
// vet proves a genarray/fold body is an effect-free index expression
// and compiles it to the tiny postfix instruction set below; the VM
// resolves the leaf slots and calls GenArrayFlat/FoldFlat, which
// evaluate the body directly over the backing slices instead of
// calling back into tree evaluation per element.
//
// The contract with the closure path is byte-exactness: both flat
// entry points replay GenArrayExec/FoldExec's admission sequence
// (validation before the allocation hook and budget charge, identical
// free-list behavior, identical combine order for float folds) and
// refuse — returning handled=false, never an error of their own — any
// case where the closure path would produce an observable the flat
// path cannot reproduce. An up-front interval analysis over the
// generator box proves every matrix load in bounds before the first
// element is touched; anything it cannot bound falls back.
package matrix

// WithOp is one opcode of the flat with-loop body language: a postfix
// expression machine with separate int and float stacks, no branches
// and no failure paths (loads are proven in bounds, int division is
// not in the language).
type WithOp uint8

// Flat body opcodes. *I opcodes work the int stack, *F the float
// stack; WI2F/WF2I move a value between them (WF2I truncates like the
// (int) cast). WLoadI/WLoadF pop B int indices and push the element of
// matrix slot A.
const (
	WPushID      WithOp = iota // push generator id A
	WPushInt                   // push constant K
	WPushFloat                 // push constant F
	WPushScalarI               // push int scalar slot A
	WPushScalarF               // push float scalar slot A
	WAddI
	WSubI
	WMulI
	WNegI
	WAddF
	WSubF
	WMulF
	WDivF
	WNegF
	WI2F
	WF2I
	WLoadI
	WLoadF
)

// WithInstr is one flat body instruction.
type WithInstr struct {
	Op WithOp
	A  int32   // id index / scalar slot / matrix slot
	B  int32   // load arity
	K  int64   // int constant
	F  float64 // float constant
}

// WithEnv is a flat body bound to its runtime leaves: the code from
// vet's proof, the matrices and scalar values the VM resolved from
// registers, and whether the body's static type is float.
type WithEnv struct {
	Code    []WithInstr
	Mats    []*Matrix
	ScalarI []int64
	ScalarF []float64
	Float   bool
}

// Verify re-checks the env against the runtime leaves; exported so the
// prover's tests can assert every proven plan round-trips through the
// engine's own admission.
func (env *WithEnv) Verify(rank int) bool { return env.verify(rank) }

// verify re-checks the env against the runtime leaves: stack shape,
// slot ranges, matrix rank and element types, and the final value's
// type. vet proved all of this statically, but the matrices only exist
// now — a nil or mistyped leaf makes the flat path decline rather than
// misbehave.
func (env *WithEnv) verify(rank int) bool {
	var ints, floats int
	for i := range env.Code {
		in := &env.Code[i]
		switch in.Op {
		case WPushID:
			if in.A < 0 || int(in.A) >= rank {
				return false
			}
			ints++
		case WPushInt:
			ints++
		case WPushFloat:
			floats++
		case WPushScalarI:
			if in.A < 0 || int(in.A) >= len(env.ScalarI) {
				return false
			}
			ints++
		case WPushScalarF:
			if in.A < 0 || int(in.A) >= len(env.ScalarF) {
				return false
			}
			floats++
		case WAddI, WSubI, WMulI:
			if ints < 2 {
				return false
			}
			ints--
		case WNegI:
			if ints < 1 {
				return false
			}
		case WAddF, WSubF, WMulF, WDivF:
			if floats < 2 {
				return false
			}
			floats--
		case WNegF:
			if floats < 1 {
				return false
			}
		case WI2F:
			if ints < 1 {
				return false
			}
			ints--
			floats++
		case WF2I:
			if floats < 1 {
				return false
			}
			floats--
			ints++
		case WLoadI, WLoadF:
			if in.A < 0 || int(in.A) >= len(env.Mats) {
				return false
			}
			m := env.Mats[in.A]
			ar := int(in.B)
			if m == nil || m.Rank() != ar || ints < ar {
				return false
			}
			ints -= ar
			if in.Op == WLoadI {
				if m.elem != Int {
					return false
				}
				ints++
			} else {
				if m.elem != Float {
					return false
				}
				floats++
			}
		default:
			return false
		}
	}
	if env.Float {
		return floats == 1 && ints == 0
	}
	return ints == 1 && floats == 0
}

// withIvalMax bounds the interval analysis: a value whose magnitude
// may exceed it becomes unknown, and unknown values cannot feed a
// load. Loop ids and affine offsets stay far below it.
const withIvalMax = int64(1) << 40

type wival struct {
	lo, hi int64
	known  bool
}

func wivalConst(v int64) wival {
	if v > withIvalMax || v < -withIvalMax {
		return wival{}
	}
	return wival{lo: v, hi: v, known: true}
}

func wivalClamp(w wival) wival {
	if !w.known || w.lo > withIvalMax || w.lo < -withIvalMax || w.hi > withIvalMax || w.hi < -withIvalMax {
		return wival{}
	}
	return w
}

// feasible runs the body once over intervals — each id spanning its
// generator range — and proves every load index lands inside its
// matrix for every index in the box. Sound over-approximation: an
// interval it cannot bound (scalar too large, truncated float,
// non-monotone product growth) makes the load infeasible and the whole
// loop falls back to the closure path. The box must be non-empty.
func (env *WithEnv) feasible(lower, upper []int) bool {
	is := make([]wival, 0, len(env.Code))
	floats := 0
	for i := range env.Code {
		in := &env.Code[i]
		switch in.Op {
		case WPushID:
			is = append(is, wivalClamp(wival{lo: int64(lower[in.A]), hi: int64(upper[in.A] - 1), known: true}))
		case WPushInt:
			is = append(is, wivalConst(in.K))
		case WPushScalarI:
			is = append(is, wivalConst(env.ScalarI[in.A]))
		case WPushFloat:
			floats++
		case WPushScalarF:
			floats++
		case WAddI, WSubI:
			n := len(is)
			a, b := is[n-2], is[n-1]
			var r wival
			if a.known && b.known {
				if in.Op == WAddI {
					r = wival{lo: a.lo + b.lo, hi: a.hi + b.hi, known: true}
				} else {
					r = wival{lo: a.lo - b.hi, hi: a.hi - b.lo, known: true}
				}
			}
			is = append(is[:n-2], wivalClamp(r))
		case WMulI:
			n := len(is)
			a, b := is[n-2], is[n-1]
			var r wival
			const mulMax = int64(1) << 31
			if a.known && b.known &&
				a.lo >= -mulMax && a.hi <= mulMax && b.lo >= -mulMax && b.hi <= mulMax {
				p1, p2, p3, p4 := a.lo*b.lo, a.lo*b.hi, a.hi*b.lo, a.hi*b.hi
				r = wival{lo: min(min(p1, p2), min(p3, p4)), hi: max(max(p1, p2), max(p3, p4)), known: true}
			}
			is = append(is[:n-2], wivalClamp(r))
		case WNegI:
			n := len(is)
			a := is[n-1]
			if a.known {
				is[n-1] = wival{lo: -a.hi, hi: -a.lo, known: true}
			} else {
				is[n-1] = wival{}
			}
		case WAddF, WSubF, WMulF, WDivF:
			floats--
		case WNegF:
			// float stack depth unchanged
		case WI2F:
			is = is[:len(is)-1]
			floats++
		case WF2I:
			floats--
			is = append(is, wival{})
		case WLoadI, WLoadF:
			m := env.Mats[in.A]
			ar := int(in.B)
			base := len(is) - ar
			for d := 0; d < ar; d++ {
				w := is[base+d]
				if !w.known || w.lo < 0 || w.hi >= int64(m.shape[d]) {
					return false
				}
			}
			is = is[:base]
			if in.Op == WLoadI {
				is = append(is, wival{})
			} else {
				floats++
			}
		}
	}
	return true
}

// withEval evaluates a verified body; one per worker chunk (the stacks
// are scratch state). No checks remain at this level.
type withEval struct {
	env *WithEnv
	is  []int64
	fs  []float64
}

func newWithEval(env *WithEnv) *withEval {
	n := len(env.Code) + 1
	return &withEval{env: env, is: make([]int64, 0, n), fs: make([]float64, 0, n)}
}

func (e *withEval) run(idx []int) {
	is, fs := e.is[:0], e.fs[:0]
	code := e.env.Code
	for pc := range code {
		in := &code[pc]
		switch in.Op {
		case WPushID:
			is = append(is, int64(idx[in.A]))
		case WPushInt:
			is = append(is, in.K)
		case WPushFloat:
			fs = append(fs, in.F)
		case WPushScalarI:
			is = append(is, e.env.ScalarI[in.A])
		case WPushScalarF:
			fs = append(fs, e.env.ScalarF[in.A])
		case WAddI:
			n := len(is)
			is[n-2] += is[n-1]
			is = is[:n-1]
		case WSubI:
			n := len(is)
			is[n-2] -= is[n-1]
			is = is[:n-1]
		case WMulI:
			n := len(is)
			is[n-2] *= is[n-1]
			is = is[:n-1]
		case WNegI:
			is[len(is)-1] = -is[len(is)-1]
		case WAddF:
			n := len(fs)
			fs[n-2] += fs[n-1]
			fs = fs[:n-1]
		case WSubF:
			n := len(fs)
			fs[n-2] -= fs[n-1]
			fs = fs[:n-1]
		case WMulF:
			n := len(fs)
			fs[n-2] *= fs[n-1]
			fs = fs[:n-1]
		case WDivF:
			n := len(fs)
			fs[n-2] /= fs[n-1]
			fs = fs[:n-1]
		case WNegF:
			fs[len(fs)-1] = -fs[len(fs)-1]
		case WI2F:
			fs = append(fs, float64(is[len(is)-1]))
			is = is[:len(is)-1]
		case WF2I:
			is = append(is, int64(fs[len(fs)-1]))
			fs = fs[:len(fs)-1]
		case WLoadI:
			m := e.env.Mats[in.A]
			ar := int(in.B)
			base := len(is) - ar
			off := 0
			for d := 0; d < ar; d++ {
				off += int(is[base+d]) * m.strides[d]
			}
			is = append(is[:base], m.i[off])
		case WLoadF:
			m := e.env.Mats[in.A]
			ar := int(in.B)
			base := len(is) - ar
			off := 0
			for d := 0; d < ar; d++ {
				off += int(is[base+d]) * m.strides[d]
			}
			is = is[:base]
			fs = append(fs, m.f[off])
		}
	}
	e.is, e.fs = is, fs
}

func (e *withEval) evalI(idx []int) int64 {
	e.run(idx)
	return e.is[0]
}

func (e *withEval) evalF(idx []int) float64 {
	e.run(idx)
	return e.fs[0]
}

// matchSingleLoad recognizes a body that is exactly one matrix load
// whose d-th index is id perm[d] plus a constant offset (id, id+c,
// id-c, c+id), with an optional trailing WI2F. Returns nil when the
// body has any other shape.
type withLoadPlan struct {
	mat  int
	perm []int
	off  []int64
	i2f  bool
}

func matchSingleLoad(code []WithInstr) *withLoadPlan {
	p := &withLoadPlan{}
	pc := 0
	for pc < len(code) {
		in := code[pc]
		if in.Op == WLoadI || in.Op == WLoadF {
			break
		}
		// one index expression: id [const (add|sub)] or const id add
		switch in.Op {
		case WPushID:
			if pc+2 < len(code) && code[pc+1].Op == WPushInt &&
				(code[pc+2].Op == WAddI || code[pc+2].Op == WSubI) {
				off := code[pc+1].K
				if code[pc+2].Op == WSubI {
					off = -off
				}
				p.perm = append(p.perm, int(in.A))
				p.off = append(p.off, off)
				pc += 3
			} else {
				p.perm = append(p.perm, int(in.A))
				p.off = append(p.off, 0)
				pc++
			}
		case WPushInt:
			if pc+2 < len(code) && code[pc+1].Op == WPushID && code[pc+2].Op == WAddI {
				p.perm = append(p.perm, int(code[pc+1].A))
				p.off = append(p.off, in.K)
				pc += 3
			} else {
				return nil
			}
		default:
			return nil
		}
	}
	if pc >= len(code) {
		return nil
	}
	load := code[pc]
	if int(load.B) != len(p.perm) {
		return nil
	}
	p.mat = int(load.A)
	pc++
	if pc < len(code) {
		if code[pc].Op != WI2F || load.Op != WLoadI || pc != len(code)-1 {
			return nil
		}
		p.i2f = true
		pc++
	}
	if pc != len(code) {
		return nil
	}
	return p
}

// GenArrayFlat is the flat engine for a proven genarray body. It
// returns handled=false — having allocated nothing and fired no hooks
// — whenever the closure path must run instead, either to reproduce an
// admission error exactly or because the body/leaves fall outside what
// the flat engine handles. When handled, the result (matrix, budget
// charges, alloc-hook firings, error) is observably identical to
// GenArrayExec with a closure of the same body.
func GenArrayFlat(elem Elem, lower, upper, shape []int, env *WithEnv, x Exec) (*Matrix, bool, error) {
	// Replay the admission checks; a failure falls back so the closure
	// path raises the exact error text.
	if len(lower) != len(shape) || len(upper) != len(shape) {
		return nil, false, nil
	}
	n, err := checkedSize(shape)
	if err != nil {
		return nil, false, nil
	}
	for d := range shape {
		if lower[d] < 0 || upper[d] > shape[d] {
			return nil, false, nil
		}
	}
	rank := len(shape)
	if rank == 0 || !env.verify(rank) {
		return nil, false, nil
	}
	if env.Float && elem != Float {
		return nil, false, nil
	}
	if !env.Float && elem == Bool {
		return nil, false, nil
	}
	empty := false
	full := true
	for d := range shape {
		if upper[d] <= lower[d] {
			empty = true
		}
		if lower[d] != 0 || upper[d] != shape[d] {
			full = false
		}
	}
	if !empty && !env.feasible(lower, upper) {
		return nil, false, nil
	}
	// Allocation: same hook/charge sequence as the closure path's
	// NewBudgeted. Cells outside the generator box must read zero, so
	// only a box covering the whole shape may take the non-zeroing
	// free-list allocator.
	var out *Matrix
	if full && !empty {
		out, err = newKernelOut(x.Budget, elem, shape)
	} else {
		out, err = NewBudgeted(x.Budget, elem, shape...)
	}
	if err != nil {
		return nil, true, err
	}
	if n == 0 || empty {
		return out, true, nil
	}

	// Transpose pattern: out[i,j] = m[j,i] over the whole matrix runs
	// the cache-blocked transpose kernel.
	if lp := matchSingleLoad(env.Code); lp != nil && full && !lp.i2f && rank == 2 &&
		lp.perm[0] == 1 && lp.perm[1] == 0 && lp.off[0] == 0 && lp.off[1] == 0 {
		m := env.Mats[lp.mat]
		if m.elem == elem && m.shape[0] == shape[1] && m.shape[1] == shape[0] {
			kernelTransposeCount.Add(1)
			srcRows, srcCols := m.shape[0], m.shape[1]
			grainRows := 1
			if srcCols > 0 {
				grainRows = (ParallelGrain + srcCols - 1) / srcCols
			}
			grainRows = (grainRows + transposeBlock - 1) / transposeBlock * transposeBlock
			var body func(lo, hi int) error
			if elem == Float {
				src, dst := m.f, out.f
				body = func(lo, hi int) error { transposeTiles(dst, src, lo, hi, srcRows, srcCols); return nil }
			} else {
				src, dst := m.i, out.i
				body = func(lo, hi int) error { transposeTiles(dst, src, lo, hi, srcRows, srcCols); return nil }
			}
			if err := runWithKernel(x, srcRows, grainRows, body); err != nil {
				out.Recycle()
				return nil, true, err
			}
			return out, true, nil
		}
	}

	// General path: evaluate the postfix body per cell, one odometer
	// walk per row band, rows distributed over the pool.
	n0 := upper[0] - lower[0]
	perRow := 1
	for d := 1; d < rank; d++ {
		perRow *= upper[d] - lower[d]
	}
	cost := perRow * len(env.Code)
	grainRows := 1
	if cost > 0 {
		grainRows = (ParallelGrain + cost - 1) / cost
	}
	err = runWithKernel(x, n0, grainRows, func(lo, hi int) error {
		genFillRows(out, env, elem, lower, upper, lower[0]+lo, lower[0]+hi)
		return nil
	})
	if err != nil {
		out.Recycle()
		return nil, true, err
	}
	return out, true, nil
}

// runWithKernel distributes genarray rows like runKernel, except the
// pool engages whenever GenArrayExec's would (Pool non-nil, two or
// more rows): pool-worker observables — injected test panics, traps
// attributed to workers — must be identical across engines, and the
// closure path parallelizes every pool-backed loop regardless of size.
func runWithKernel(x Exec, n, grain int, body func(lo, hi int) error) error {
	if x.Pool != nil && n >= 2 && n < 2*grain {
		grain = n / 2 // force runKernel's parallel branch
	}
	return runKernel(x, n, grain, body)
}

// genFillRows fills output rows [r0, r1) of the generator box by
// direct postfix evaluation, walking the box odometer with an
// incrementally-maintained output offset.
func genFillRows(out *Matrix, env *WithEnv, elem Elem, lower, upper []int, r0, r1 int) {
	rank := len(lower)
	e := newWithEval(env)
	idx := make([]int, rank)
	// 0 = int body into int cells, 1 = float body, 2 = int body
	// store-promoted into float cells.
	store := 0
	if env.Float {
		store = 1
	} else if elem == Float {
		store = 2
	}
	for i0 := r0; i0 < r1; i0++ {
		idx[0] = i0
		off := i0 * out.strides[0]
		for d := 1; d < rank; d++ {
			idx[d] = lower[d]
			off += lower[d] * out.strides[d]
		}
		for {
			switch store {
			case 0:
				out.i[off] = e.evalI(idx)
			case 1:
				out.f[off] = e.evalF(idx)
			default:
				out.f[off] = float64(e.evalI(idx))
			}
			d := rank - 1
			for ; d >= 1; d-- {
				idx[d]++
				off += out.strides[d]
				if idx[d] < upper[d] {
					break
				}
				off -= (upper[d] - lower[d]) * out.strides[d]
				idx[d] = lower[d]
			}
			if d < 1 {
				break
			}
		}
	}
}

// FoldFlat is the flat engine for a proven fold body. The parallel
// split mirrors FoldExec exactly — same per-worker row chunks, same
// identity seeds, same base-first combine order — so float results are
// bit-identical to the closure path. handled=false defers to the
// closure path (mixed int/float min-max folds, unverifiable leaves).
func FoldFlat(kind FoldKind, base any, lower, upper []int, env *WithEnv, x Exec) (any, bool, error) {
	if len(lower) != len(upper) {
		return nil, false, nil
	}
	if len(lower) == 0 {
		return base, true, nil
	}
	rank := len(lower)
	if !env.verify(rank) {
		return nil, false, nil
	}
	floatAcc := false
	switch base.(type) {
	case int64:
		if env.Float {
			// int base with a float body would promote mid-fold; the VM
			// pre-promotes the base when the static type is float, so
			// this only happens in corners the closure path owns.
			return nil, false, nil
		}
	case float64:
		floatAcc = true
		if !env.Float && (kind == FoldMin || kind == FoldMax) {
			// Boxed min/max keep the winning operand's dynamic type; a
			// typed float accumulator cannot.
			return nil, false, nil
		}
	default:
		return nil, false, nil
	}
	empty := false
	for d := range lower {
		if upper[d] <= lower[d] {
			empty = true
		}
	}
	if !empty && !env.feasible(lower, upper) {
		return nil, false, nil
	}
	if empty {
		return base, true, nil
	}
	switch kind {
	case FoldAdd, FoldMul, FoldMin, FoldMax:
	default:
		return nil, false, nil
	}

	// Whole-matrix single-load folds reduce contiguous row slices; any
	// other body evaluates per cell through the box odometer. Both
	// combine in ascending element order within a row chunk.
	var whole *Matrix
	if lp := matchSingleLoad(env.Code); lp != nil && !lp.i2f {
		m := env.Mats[lp.mat]
		match := m.Rank() == rank
		for d := 0; match && d < rank; d++ {
			if lp.perm[d] != d || lp.off[d] != 0 || lower[d] != 0 || upper[d] != m.shape[d] {
				match = false
			}
		}
		if match {
			whole = m
		}
	}
	rowLen := 1
	for d := 1; d < rank; d++ {
		rowLen *= upper[d] - lower[d]
	}

	foldRowsF := func(e *withEval, r0, r1 int, acc float64) float64 {
		if whole != nil {
			if whole.elem == Int {
				for _, v := range whole.i[r0*rowLen : r1*rowLen] {
					acc = combineFloat(kind, acc, float64(v))
				}
				return acc
			}
			for _, v := range whole.f[r0*rowLen : r1*rowLen] {
				acc = combineFloat(kind, acc, v)
			}
			return acc
		}
		idx := make([]int, rank)
		intBody := !env.Float
		for i0 := r0; i0 < r1; i0++ {
			idx[0] = i0
			for d := 1; d < rank; d++ {
				idx[d] = lower[d]
			}
			for {
				if intBody {
					acc = combineFloat(kind, acc, float64(e.evalI(idx)))
				} else {
					acc = combineFloat(kind, acc, e.evalF(idx))
				}
				d := rank - 1
				for ; d >= 1; d-- {
					idx[d]++
					if idx[d] < upper[d] {
						break
					}
					idx[d] = lower[d]
				}
				if d < 1 {
					break
				}
			}
		}
		return acc
	}
	foldRowsI := func(e *withEval, r0, r1 int, acc int64) int64 {
		if whole != nil {
			for _, v := range whole.i[r0*rowLen : r1*rowLen] {
				acc = combineInt(kind, acc, v)
			}
			return acc
		}
		idx := make([]int, rank)
		for i0 := r0; i0 < r1; i0++ {
			idx[0] = i0
			for d := 1; d < rank; d++ {
				idx[d] = lower[d]
			}
			for {
				acc = combineInt(kind, acc, e.evalI(idx))
				d := rank - 1
				for ; d >= 1; d-- {
					idx[d]++
					if idx[d] < upper[d] {
						break
					}
					idx[d] = lower[d]
				}
				if d < 1 {
					break
				}
			}
		}
		return acc
	}
	n0 := upper[0] - lower[0]
	if x.Pool == nil || n0 < 2 {
		// Serial: same per-row cancellation polls as FoldExec.
		e := newWithEval(env)
		accI, accF := int64(0), float64(0)
		if floatAcc {
			accF = base.(float64)
		} else {
			accI = base.(int64)
		}
		for i0 := lower[0]; i0 < upper[0]; i0++ {
			if err := x.cancelled(); err != nil {
				return nil, true, err
			}
			if floatAcc {
				accF = foldRowsF(e, i0, i0+1, accF)
			} else {
				accI = foldRowsI(e, i0, i0+1, accI)
			}
		}
		if floatAcc {
			return accF, true, nil
		}
		return accI, true, nil
	}
	// Parallel: FoldExec's exact worker split — ceil chunks over the
	// outermost dimension, identity-seeded partials, per-row abort and
	// ctx polls, base-first combine in worker order.
	identF, identI := foldIdentFloat(kind), foldIdentInt(kind)
	pool := x.Pool
	type partial struct {
		f   float64
		i   int64
		set bool
	}
	partials := make([]partial, pool.Workers())
	err := pool.RunErr(func(worker, workers int) error {
		chunk := (n0 + workers - 1) / workers
		start := lower[0] + worker*chunk
		end := start + chunk
		if end > upper[0] {
			end = upper[0]
		}
		e := newWithEval(env)
		accF, accI := identF, identI
		for i0 := start; i0 < end; i0++ {
			if pool.Aborted() {
				return nil
			}
			if err := x.cancelled(); err != nil {
				return err
			}
			if floatAcc {
				accF = foldRowsF(e, i0, i0+1, accF)
			} else {
				accI = foldRowsI(e, i0, i0+1, accI)
			}
		}
		partials[worker] = partial{f: accF, i: accI, set: true}
		return nil
	})
	if err != nil {
		return nil, true, err
	}
	if floatAcc {
		acc := base.(float64)
		for _, p := range partials {
			if p.set {
				acc = combineFloat(kind, acc, p.f)
			}
		}
		return acc, true, nil
	}
	acc := base.(int64)
	for _, p := range partials {
		if p.set {
			acc = combineInt(kind, acc, p.i)
		}
	}
	return acc, true, nil
}

// foldIdentInt / foldIdentFloat are foldIdentity's typed values.
func foldIdentInt(kind FoldKind) int64 {
	switch kind {
	case FoldMul:
		return 1
	case FoldMin:
		return int64(1) << 62
	case FoldMax:
		return int64(-1) << 62
	}
	return 0
}

func foldIdentFloat(kind FoldKind) float64 {
	switch kind {
	case FoldMul:
		return 1
	case FoldMin:
		return 1e308
	case FoldMax:
		return -1e308
	}
	return 0
}
