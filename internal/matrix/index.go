// MATLAB-style indexing (§III-A.3): standard single-element indexing,
// inclusive range indexing, whole-dimension ':' indexing, and logical
// (bool mask) indexing, usable in any combination and on both sides of
// assignment.
package matrix

import "fmt"

// SpecKind discriminates IndexSpec.
type SpecKind int

// Index specification kinds.
const (
	SpecScalar SpecKind = iota // one position; dimension is dropped
	SpecRange                  // inclusive [Lo, Hi]; dimension kept
	SpecAll                    // ':'; dimension kept
	SpecMask                   // rank-1 bool matrix; dimension kept
)

// IndexSpec describes the index applied to one dimension.
type IndexSpec struct {
	Kind   SpecKind
	I      int     // SpecScalar
	Lo, Hi int     // SpecRange (inclusive, like data[0:4] → 5 cells)
	Mask   *Matrix // SpecMask
}

// Scalar builds a single-position spec.
func Scalar(i int) IndexSpec { return IndexSpec{Kind: SpecScalar, I: i} }

// Span builds an inclusive range spec.
func Span(lo, hi int) IndexSpec { return IndexSpec{Kind: SpecRange, Lo: lo, Hi: hi} }

// All builds a whole-dimension spec.
func All() IndexSpec { return IndexSpec{Kind: SpecAll} }

// Mask builds a logical-index spec from a rank-1 bool matrix.
func Mask(m *Matrix) IndexSpec { return IndexSpec{Kind: SpecMask, Mask: m} }

// dimSelection resolves one spec against a dimension size, returning
// the selected positions (nil means the single scalar position).
func dimSelection(spec IndexSpec, size, dim int) (scalar int, list []int, err error) {
	switch spec.Kind {
	case SpecScalar:
		if spec.I < 0 || spec.I >= size {
			return 0, nil, fmt.Errorf("matrix: index %d out of range [0,%d) in dimension %d", spec.I, size, dim)
		}
		return spec.I, nil, nil
	case SpecRange:
		if spec.Lo < 0 || spec.Hi >= size || spec.Lo > spec.Hi {
			return 0, nil, fmt.Errorf("matrix: range %d:%d invalid for dimension %d of size %d", spec.Lo, spec.Hi, dim, size)
		}
		list = make([]int, spec.Hi-spec.Lo+1)
		for k := range list {
			list[k] = spec.Lo + k
		}
		return 0, list, nil
	case SpecAll:
		list = make([]int, size)
		for k := range list {
			list[k] = k
		}
		return 0, list, nil
	case SpecMask:
		mk := spec.Mask
		if mk.elem != Bool || mk.Rank() != 1 {
			return 0, nil, fmt.Errorf("matrix: logical index for dimension %d must be a rank-1 bool matrix", dim)
		}
		if mk.Size() != size {
			return 0, nil, fmt.Errorf("matrix: logical index length %d does not match dimension %d of size %d", mk.Size(), dim, size)
		}
		for k, v := range mk.b {
			if v {
				list = append(list, k)
			}
		}
		if list == nil {
			list = []int{}
		}
		return 0, list, nil
	}
	return 0, nil, fmt.Errorf("matrix: unknown index spec kind %d", spec.Kind)
}

// selection is the resolved cross-product of per-dimension choices.
type selection struct {
	scalarOnly bool
	scalars    []int   // fixed position per dimension (scalar dims)
	lists      [][]int // selected positions for kept dims, nil for scalar dims
	outShape   []int
}

func (m *Matrix) resolve(specs []IndexSpec) (*selection, error) {
	if len(specs) != len(m.shape) {
		return nil, fmt.Errorf("matrix: rank-%d matrix requires %d index expression(s), got %d",
			len(m.shape), len(m.shape), len(specs))
	}
	sel := &selection{scalarOnly: true,
		scalars: make([]int, len(specs)), lists: make([][]int, len(specs))}
	for d, spec := range specs {
		sc, list, err := dimSelection(spec, m.shape[d], d)
		if err != nil {
			return nil, err
		}
		if list == nil {
			sel.scalars[d] = sc
		} else {
			sel.scalarOnly = false
			sel.lists[d] = list
			sel.outShape = append(sel.outShape, len(list))
		}
	}
	return sel, nil
}

// forEach visits every selected cell, giving the source offset and the
// destination linear offset in the selection's output shape.
func (sel *selection) forEach(m *Matrix, f func(srcOff, dstOff int) error) error {
	// counters over the kept dimensions
	var keptDims []int
	for d, l := range sel.lists {
		if l != nil {
			if len(l) == 0 {
				return nil // empty selection (e.g. all-false mask)
			}
			keptDims = append(keptDims, d)
		}
	}
	idx := make([]int, len(m.shape))
	copy(idx, sel.scalars)
	counters := make([]int, len(keptDims))
	for {
		srcOff := 0
		for d := range idx {
			v := idx[d]
			if sel.lists[d] != nil {
				v = sel.lists[d][counters[indexOf(keptDims, d)]]
			}
			srcOff += v * m.strides[d]
		}
		dstOff := 0
		for k := range keptDims {
			dstOff = dstOff*len(sel.lists[keptDims[k]]) + counters[k]
		}
		if err := f(srcOff, dstOff); err != nil {
			return err
		}
		// advance counters
		k := len(counters) - 1
		for ; k >= 0; k-- {
			counters[k]++
			if counters[k] < len(sel.lists[keptDims[k]]) {
				break
			}
			counters[k] = 0
		}
		if k < 0 {
			return nil
		}
		if len(counters) == 0 {
			return nil
		}
	}
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// Index evaluates m[specs...]. All-scalar indexing returns the element
// value (int64/float64/bool); otherwise a fresh matrix whose rank is
// the number of kept dimensions.
func (m *Matrix) Index(specs ...IndexSpec) (any, error) {
	sel, err := m.resolve(specs)
	if err != nil {
		return nil, err
	}
	if sel.scalarOnly {
		off, err := m.Offset(sel.scalars)
		if err != nil {
			return nil, err
		}
		return m.Get(off), nil
	}
	out := New(m.elem, sel.outShape...)
	if out.Size() == 0 {
		return out, nil
	}
	err = sel.forEach(m, func(srcOff, dstOff int) error {
		return out.Set(dstOff, m.Get(srcOff))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SetIndex assigns into m[specs...]. For an all-scalar selection v
// must be a scalar; otherwise v may be a scalar (broadcast into the
// selection) or a matrix whose size matches the selection.
func (m *Matrix) SetIndex(v any, specs ...IndexSpec) error {
	sel, err := m.resolve(specs)
	if err != nil {
		return err
	}
	if sel.scalarOnly {
		off, err := m.Offset(sel.scalars)
		if err != nil {
			return err
		}
		return m.Set(off, v)
	}
	if src, ok := v.(*Matrix); ok {
		want := 1
		for _, d := range sel.outShape {
			want *= d
		}
		if src.Size() != want {
			return fmt.Errorf("matrix: cannot store %d element(s) into a selection of %d", src.Size(), want)
		}
		return sel.forEach(m, func(srcOff, dstOff int) error {
			return m.Set(srcOff, src.Get(dstOff))
		})
	}
	return sel.forEach(m, func(srcOff, dstOff int) error {
		return m.Set(srcOff, v)
	})
}
