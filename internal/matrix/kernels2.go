// The second kernel wave (ROADMAP item 2): cache-blocked transpose,
// 2-D convolution/stencil with constant (zero) boundary, axis
// reductions with stride-1 inner loops, and the blocked-recursive
// matmul split used above the size cutoff. All follow the kernels.go
// contract — validate before allocating, newKernelOut for outputs,
// runKernel for pool distribution with cooperative cancellation, boxed
// reference oracles in ops.go pinned by differential tests.
package matrix

import (
	"fmt"
	"sync/atomic"
)

// Process-wide per-kernel-family counters, surfaced on driver /metrics
// as kernel_transpose_total / kernel_conv_total / kernel_reduce_total.
var (
	kernelTransposeCount atomic.Int64
	kernelConvCount      atomic.Int64
	kernelReduceCount    atomic.Int64
)

// KernelOpStats returns the per-family kernel invocation counters:
// transposes (including with-loops compiled to the transpose kernel),
// 2-D convolutions, and axis reductions.
func KernelOpStats() (transpose, conv, reduce int64) {
	return kernelTransposeCount.Load(), kernelConvCount.Load(), kernelReduceCount.Load()
}

// transposeBlock is the tile edge of the transpose kernels: a
// transposeBlock² tile of each operand (8 KB at float64) stays
// cache-resident while it is read row-wise and written column-wise.
const transposeBlock = 32

// TransposeExec returns the transpose of a rank-2 matrix through a
// cache-blocked kernel: the iteration space is cut into
// transposeBlock² tiles so both the row-major reads and the
// column-major writes stay within a cache-resident tile, and row
// bands are distributed over the pool.
func TransposeExec(m *Matrix, x Exec) (*Matrix, error) {
	if m.Rank() != 2 {
		return nil, fmt.Errorf("matrix: transpose requires a rank-2 matrix, got rank %d", m.Rank())
	}
	rows, cols := m.shape[0], m.shape[1]
	out, err := newKernelOut(x.Budget, m.elem, []int{cols, rows})
	if err != nil {
		return nil, err
	}
	kernelTransposeCount.Add(1)
	if out.Size() == 0 {
		return out, nil
	}
	// Rows per parallel chunk, in whole tiles so chunks never share an
	// output cache line along the tile boundary.
	grainRows := 1
	if cols > 0 {
		grainRows = (ParallelGrain + cols - 1) / cols
	}
	grainRows = (grainRows + transposeBlock - 1) / transposeBlock * transposeBlock
	var body func(lo, hi int) error
	switch m.elem {
	case Float:
		src, dst := m.f, out.f
		body = func(lo, hi int) error { transposeTiles(dst, src, lo, hi, rows, cols); return nil }
	case Int:
		src, dst := m.i, out.i
		body = func(lo, hi int) error { transposeTiles(dst, src, lo, hi, rows, cols); return nil }
	default:
		src, dst := m.b, out.b
		body = func(lo, hi int) error { transposeTiles(dst, src, lo, hi, rows, cols); return nil }
	}
	if err := runKernel(x, rows, grainRows, body); err != nil {
		out.Recycle()
		return nil, err
	}
	return out, nil
}

// transposeTiles writes dst[j*rows+i] = src[i*cols+j] for the row band
// [rlo, rhi), tile by tile.
func transposeTiles[T int64 | float64 | bool](dst, src []T, rlo, rhi, rows, cols int) {
	for i0 := rlo; i0 < rhi; i0 += transposeBlock {
		i1 := i0 + transposeBlock
		if i1 > rhi {
			i1 = rhi
		}
		for j0 := 0; j0 < cols; j0 += transposeBlock {
			j1 := j0 + transposeBlock
			if j1 > cols {
				j1 = cols
			}
			for i := i0; i < i1; i++ {
				srow := src[i*cols+j0 : i*cols+j1]
				for jx, v := range srow {
					dst[(j0+jx)*rows+i] = v
				}
			}
		}
	}
}

// Conv2DExec computes the 2-D cross-correlation of src with an
// odd-dimension kernel, same-size output, constant (zero) boundary:
// out[i,j] = Σ_{u,v} src[i+u-kh/2, j+v-kw/2] * kern[u,v], with
// out-of-range source cells contributing zero. Int×Int stays exact in
// int64; any Float operand promotes the int side once and runs the
// float kernel. Rows of the interior run an unchecked inner loop; the
// boundary rows and columns take the checked path.
func Conv2DExec(src, kern *Matrix, x Exec) (*Matrix, error) {
	if src.Rank() != 2 || kern.Rank() != 2 {
		return nil, fmt.Errorf("matrix: conv2d requires rank-2 matrices, got ranks %d and %d", src.Rank(), kern.Rank())
	}
	if src.elem == Bool || kern.elem == Bool {
		return nil, fmt.Errorf("matrix: conv2d requires numeric matrices")
	}
	kh, kw := kern.shape[0], kern.shape[1]
	if kh%2 == 0 || kw%2 == 0 {
		return nil, fmt.Errorf("matrix: conv2d kernel dimensions must be odd, got %v", kern.shape)
	}
	rows, cols := src.shape[0], src.shape[1]
	// Fused multiply-adds per output row; sizes the parallel chunks.
	rowWork := cols * kh * kw
	grainRows := 1
	if rowWork > 0 {
		grainRows = (ParallelGrain + rowWork - 1) / rowWork
	}
	if src.elem == Int && kern.elem == Int {
		out, err := newKernelOut(x.Budget, Int, []int{rows, cols})
		if err != nil {
			return nil, err
		}
		kernelConvCount.Add(1)
		si, ki, di := src.i, kern.i, out.i
		err = runKernel(x, rows, grainRows, func(rlo, rhi int) error {
			convRows(di, si, ki, rlo, rhi, rows, cols, kh, kw)
			return nil
		})
		if err != nil {
			out.Recycle()
			return nil, err
		}
		return out, nil
	}
	sv, sScr, err := floatScratch(x, src)
	if err != nil {
		return nil, err
	}
	kv, kScr, err := floatScratch(x, kern)
	if err != nil {
		releaseFloatScratch(sv, sScr)
		return nil, err
	}
	out, err := newKernelOut(x.Budget, Float, []int{rows, cols})
	if err != nil {
		releaseFloatScratch(sv, sScr)
		releaseFloatScratch(kv, kScr)
		return nil, err
	}
	kernelConvCount.Add(1)
	df := out.f
	err = runKernel(x, rows, grainRows, func(rlo, rhi int) error {
		convRows(df, sv, kv, rlo, rhi, rows, cols, kh, kw)
		return nil
	})
	releaseFloatScratch(sv, sScr)
	releaseFloatScratch(kv, kScr)
	if err != nil {
		out.Recycle()
		return nil, err
	}
	return out, nil
}

// convRows fills output rows [rlo, rhi). The kernel taps accumulate in
// (u, v) order — the same order as Conv2DRef — so float results are
// bit-identical to the oracle. Interior columns of in-range source
// rows run without per-tap bounds checks.
func convRows[T int64 | float64](dst, src, kern []T, rlo, rhi, rows, cols, kh, kw int) {
	cy, cx := kh/2, kw/2
	for i := rlo; i < rhi; i++ {
		row := dst[i*cols : (i+1)*cols]
		// Columns [jin0, jin1) have every horizontal tap in range.
		jin0, jin1 := cx, cols-(kw-1-cx)
		if jin0 > jin1 {
			jin0, jin1 = 0, 0
		}
		for j := 0; j < cols; j++ {
			var acc T
			if j >= jin0 && j < jin1 {
				for u := 0; u < kh; u++ {
					si := i + u - cy
					if si < 0 || si >= rows {
						continue
					}
					srow := src[si*cols+j-cx : si*cols+j-cx+kw]
					krow := kern[u*kw : (u+1)*kw]
					for v, kval := range krow {
						acc += srow[v] * kval
					}
				}
			} else {
				for u := 0; u < kh; u++ {
					si := i + u - cy
					if si < 0 || si >= rows {
						continue
					}
					for v := 0; v < kw; v++ {
						sj := j + v - cx
						if sj < 0 || sj >= cols {
							continue
						}
						acc += src[si*cols+sj] * kern[u*kw+v]
					}
				}
			}
			row[j] = acc
		}
	}
}

// ReduceAxisExec reduces m along one axis with a fold operator, producing
// a matrix of m's shape with that axis removed. The loop order keeps
// the inner stride 1 in both layouts: a last-axis reduction
// accumulates over contiguous runs, any other axis combines contiguous
// inner blocks into the output slice. Sum and product of an empty axis
// yield the identity; min and max of an empty axis are an error.
func ReduceAxisExec(kind FoldKind, m *Matrix, axis int, x Exec) (*Matrix, error) {
	if m.elem == Bool {
		return nil, fmt.Errorf("matrix: reduce requires a numeric matrix")
	}
	if axis < 0 || axis >= m.Rank() {
		return nil, fmt.Errorf("matrix: reduce axis %d out of range for rank %d", axis, m.Rank())
	}
	axisN := m.shape[axis]
	if axisN == 0 && (kind == FoldMin || kind == FoldMax) {
		return nil, fmt.Errorf("matrix: reduce %s along an empty dimension", kind)
	}
	outShape := make([]int, 0, m.Rank()-1)
	outer, inner := 1, 1
	for d, n := range m.shape {
		switch {
		case d < axis:
			outer *= n
			outShape = append(outShape, n)
		case d > axis:
			inner *= n
			outShape = append(outShape, n)
		}
	}
	out, err := newKernelOut(x.Budget, m.elem, outShape)
	if err != nil {
		return nil, err
	}
	kernelReduceCount.Add(1)
	if out.Size() == 0 {
		return out, nil
	}
	blockWork := axisN * inner
	grainOuter := 1
	if blockWork > 0 {
		grainOuter = (ParallelGrain + blockWork - 1) / blockWork
	}
	var body func(olo, ohi int) error
	if m.elem == Int {
		src, dst := m.i, out.i
		body = func(olo, ohi int) error {
			reduceBlocks(kind, dst, src, olo, ohi, axisN, inner, reduceIdentInt(kind))
			return nil
		}
	} else {
		src, dst := m.f, out.f
		body = func(olo, ohi int) error {
			reduceBlocks(kind, dst, src, olo, ohi, axisN, inner, reduceIdentFloat(kind))
			return nil
		}
	}
	if err := runKernel(x, outer, grainOuter, body); err != nil {
		out.Recycle()
		return nil, err
	}
	return out, nil
}

// reduceIdentInt / reduceIdentFloat are the empty-axis results for the
// total fold operators (min/max of an empty axis were rejected before
// allocation).
func reduceIdentInt(kind FoldKind) int64 {
	if kind == FoldMul {
		return 1
	}
	return 0
}

func reduceIdentFloat(kind FoldKind) float64 {
	if kind == FoldMul {
		return 1
	}
	return 0
}

// reduceBlocks reduces outer blocks [olo, ohi): block o covers source
// cells [o*axisN*inner, (o+1)*axisN*inner) and output cells
// [o*inner, (o+1)*inner). Axis elements combine in ascending order —
// the same order as ReduceAxisRef — so float sums are bit-identical to
// the oracle.
func reduceBlocks[T int64 | float64](kind FoldKind, dst, src []T, olo, ohi, axisN, inner int, ident T) {
	for o := olo; o < ohi; o++ {
		d := dst[o*inner : (o+1)*inner]
		if axisN == 0 {
			for j := range d {
				d[j] = ident
			}
			continue
		}
		base := o * axisN * inner
		if inner == 1 {
			// Last-axis reduction: one contiguous run per output cell.
			run := src[base : base+axisN]
			acc := run[0]
			switch kind {
			case FoldAdd:
				for _, v := range run[1:] {
					acc += v
				}
			case FoldMul:
				for _, v := range run[1:] {
					acc *= v
				}
			case FoldMin:
				for _, v := range run[1:] {
					if !(acc < v) {
						acc = v
					}
				}
			default:
				for _, v := range run[1:] {
					if acc < v {
						acc = v
					}
				}
			}
			d[0] = acc
			continue
		}
		// Interior axis: combine contiguous inner blocks into d.
		copy(d, src[base:base+inner])
		for a := 1; a < axisN; a++ {
			s := src[base+a*inner : base+(a+1)*inner]
			switch kind {
			case FoldAdd:
				for j, v := range s {
					d[j] += v
				}
			case FoldMul:
				for j, v := range s {
					d[j] *= v
				}
			case FoldMin:
				for j, v := range s {
					if !(d[j] < v) {
						d[j] = v
					}
				}
			default:
				for j, v := range s {
					if d[j] < v {
						d[j] = v
					}
				}
			}
		}
	}
}

// mmRecCutoff: a matmul whose k and n dimensions both exceed this
// enters the blocked-recursive split; below it the flat i-k-j kernel's
// k-blocking is already cache-sufficient.
const mmRecCutoff = 512

// mmRecBase is the sub-block edge at which recursion bottoms out into
// the leading-dimension i-k-j base kernel (a 256² float tile of each
// operand is 512 KB — L2-resident on current cores).
const mmRecBase = 256

// mmRec multiplies the sub-block dst[i0:i1, j0:j1] += a[i0:i1, k0:k1]
// × b[k0:k1, j0:j1] by halving the largest extent until every extent
// fits mmRecBase (cache-oblivious: every level's working set halves).
// dst rows must be cleared by the caller. k splits run sequentially —
// both halves accumulate into the same dst cells.
func mmRec[T int64 | float64](dst, a, b []T, i0, i1, k0, k1, j0, j1, lda, ldb, ldd int) {
	di, dk, dj := i1-i0, k1-k0, j1-j0
	if di <= mmRecBase && dk <= mmRecBase && dj <= mmRecBase {
		mmBase(dst, a, b, i0, i1, k0, k1, j0, j1, lda, ldb, ldd)
		return
	}
	switch {
	case di >= dk && di >= dj:
		mid := i0 + di/2
		mmRec(dst, a, b, i0, mid, k0, k1, j0, j1, lda, ldb, ldd)
		mmRec(dst, a, b, mid, i1, k0, k1, j0, j1, lda, ldb, ldd)
	case dj >= dk:
		mid := j0 + dj/2
		mmRec(dst, a, b, i0, i1, k0, k1, j0, mid, lda, ldb, ldd)
		mmRec(dst, a, b, i0, i1, k0, k1, mid, j1, lda, ldb, ldd)
	default:
		mid := k0 + dk/2
		mmRec(dst, a, b, i0, i1, k0, mid, j0, j1, lda, ldb, ldd)
		mmRec(dst, a, b, i0, i1, mid, k1, j0, j1, lda, ldb, ldd)
	}
}

// mmBase is the leading-dimension-aware i-k-j accumulation kernel the
// recursion bottoms out in (same loop order as mmFloat/mmInt, but over
// a sub-block and without clearing).
func mmBase[T int64 | float64](dst, a, b []T, i0, i1, k0, k1, j0, j1, lda, ldb, ldd int) {
	for kb := k0; kb < k1; kb += mmBlockK {
		ke := kb + mmBlockK
		if ke > k1 {
			ke = k1
		}
		for i := i0; i < i1; i++ {
			row := dst[i*ldd+j0 : i*ldd+j1]
			arow := a[i*lda+kb : i*lda+ke]
			for kx, av := range arow {
				brow := b[(kb+kx)*ldb+j0 : (kb+kx)*ldb+j1]
				for j, bv := range brow {
					row[j] += av * bv
				}
			}
		}
	}
}

// mmRecRows clears and computes output rows [rlo, rhi) through the
// recursive split; the entry point the row-parallel driver calls when
// k and n exceed mmRecCutoff.
func mmRecRows[T int64 | float64](dst, a, b []T, rlo, rhi, kk, n int) {
	for i := rlo; i < rhi; i++ {
		clear(dst[i*n : (i+1)*n])
	}
	mmRec(dst, a, b, rlo, rhi, 0, kk, 0, n, kk, n, n)
}
