// FuzzTenantKeyParse: the key-file parser must never panic, and when
// it does accept a document the resulting snapshot must be coherent —
// no duplicate or empty keys, no duplicate or reserved names, every
// key resolving back to its tenant.
package tenant

import "testing"

func FuzzTenantKeyParse(f *testing.F) {
	f.Add([]byte(exampleKeyFile))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"tenants":[]}`))
	f.Add([]byte(`{"default":{"rate_per_sec":5}}`))
	f.Add([]byte(`{"tenants":[{"name":"a","keys":["k"]},{"name":"b","keys":["k"]}]}`))
	f.Add([]byte(`{"tenants":[{"name":"anonymous","keys":["k"]}]}`))
	f.Add([]byte(`{"tenants":[{"name":"a","keys":[""]}]}`))
	f.Add([]byte(`{"tenants":[{"name":"a","keys":["k"],"rate_per_sec":-1e308}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		snap, err := Parse(raw)
		if err != nil {
			return
		}
		if snap.anon == nil || snap.anon.name != Anonymous {
			t.Fatal("accepted document without an anonymous tenant")
		}
		for key, tn := range snap.byKey {
			if key == "" {
				t.Fatal("accepted an empty key")
			}
			if got := snap.byName[tn.name]; got != tn {
				t.Fatalf("key %q resolves to tenant %q not in the name table", key, tn.name)
			}
		}
		for name, tn := range snap.byName {
			if name == "" || name == Anonymous {
				t.Fatalf("accepted reserved/empty tenant name %q", name)
			}
			if tn.quota.RatePerSec < 0 || tn.quota.MaxCells < 0 ||
				tn.quota.MaxConcurrentRuns < 0 || tn.quota.QueueShare < 0 {
				t.Fatalf("accepted negative quota for %q: %+v", name, tn.quota)
			}
		}
	})
}
