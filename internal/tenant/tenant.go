// Package tenant is the multi-tenant isolation layer: an API-key
// registry with per-tenant quotas and token-bucket rate limits.
//
// Both enforcement points share it. The cmgate router authenticates
// Authorization: Bearer / X-CM-Key, rate-limits before routing, and
// stamps X-CM-Tenant on forwarded requests; cmserved either trusts
// that header (fleet deployments, -trust-gate) or authenticates
// directly (standalone), then clamps the request's max_cells to the
// tenant's cap and partitions the admission rings by the tenant's
// quota share. Requests without credentials resolve to an anonymous
// default tenant with whatever quota the key file grants it (by
// default: none — single-node use stays zero-config and unlimited).
//
// The registry loads from a JSON key file and reloads in place on
// SIGHUP: tenants keep their token-bucket fill level across reloads,
// so re-reading the file is not a rate-limit reset.
package tenant

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// Anonymous is the reserved tenant name for unauthenticated requests
// (and the tenant label when no registry is configured at all).
const Anonymous = "anonymous"

// HeaderTenant carries the gate-authenticated tenant name to shards;
// HeaderKey is the non-standard key header accepted alongside
// Authorization: Bearer.
const (
	HeaderTenant = "X-CM-Tenant"
	HeaderKey    = "X-CM-Key"
)

// Quota is one tenant's resource envelope. The zero value means
// "unlimited" on every axis — quotas only ever restrict.
type Quota struct {
	// RatePerSec is the sustained request rate through the token
	// bucket; 0 disables rate limiting for the tenant.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket depth (requests that may arrive at once with
	// a full bucket); 0 selects max(1, RatePerSec).
	Burst float64 `json:"burst,omitempty"`
	// MaxCells caps the matrix cells one run may allocate; requests
	// asking for more are clamped, not rejected. 0 = the server's cap.
	MaxCells int64 `json:"max_cells,omitempty"`
	// MaxConcurrentRuns caps the execution slots the tenant may hold
	// at once; 0 = bounded only by the server's global slot count.
	MaxConcurrentRuns int `json:"max_concurrent_runs,omitempty"`
	// QueueShare caps the admission-queue slots the tenant may occupy;
	// 0 = the whole queue.
	QueueShare int `json:"queue_share,omitempty"`
	// Weight biases the weighted-fair dequeue (higher = more slots
	// under contention); 0 selects 1.
	Weight int `json:"weight,omitempty"`
}

// FairWeight is Weight with the zero-value default applied.
func (q Quota) FairWeight() int {
	if q.Weight <= 0 {
		return 1
	}
	return q.Weight
}

// Tenant is one identity plus its quota and live rate-limiter state.
// The bucket survives registry reloads (carried over by name), so a
// SIGHUP never resets anyone's rate limit.
type Tenant struct {
	name     string
	disabled bool
	quota    Quota
	bucket   *Bucket
}

func (t *Tenant) Name() string { return t.name }
func (t *Tenant) Quota() Quota { return t.quota }
func (t *Tenant) Disabled() bool {
	return t != nil && t.disabled
}

// Take consumes one rate-limit token. ok is always true for tenants
// without a rate limit; when false, retryAfter is this tenant's own
// estimate of when a token will be available (never zero — a zero
// estimate invites an immediate thundering-herd retry).
func (t *Tenant) Take() (ok bool, retryAfter time.Duration) {
	if t == nil || t.bucket == nil {
		return true, 0
	}
	return t.bucket.Take()
}

// --- key file wire format ---

// fileTenant is one entry in the key file.
type fileTenant struct {
	Name     string   `json:"name"`
	Keys     []string `json:"keys"`
	Disabled bool     `json:"disabled,omitempty"`
	Quota             // quota fields inline
}

// keyFile is the on-disk JSON document:
//
//	{
//	  "default": {"rate_per_sec": 100},          // optional: anonymous quota
//	  "tenants": [
//	    {"name": "acme", "keys": ["k1"], "rate_per_sec": 50, "burst": 100,
//	     "max_cells": 1000000, "max_concurrent_runs": 2, "queue_share": 4}
//	  ]
//	}
type keyFile struct {
	Default *Quota       `json:"default,omitempty"`
	Tenants []fileTenant `json:"tenants"`
}

// snapshot is one immutable parsed generation of the key file.
type snapshot struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	anon   *Tenant
}

// Parse validates a key file. It never panics on any input; it rejects
// empty/duplicate keys, empty/duplicate/reserved names, and negative
// quota values, because a typo in the key file must fail loudly at
// load time, not misroute quota at request time.
func Parse(raw []byte) (*snapshot, error) {
	var kf keyFile
	if err := json.Unmarshal(raw, &kf); err != nil {
		return nil, fmt.Errorf("tenant key file: %w", err)
	}
	snap := &snapshot{
		byKey:  make(map[string]*Tenant),
		byName: make(map[string]*Tenant),
	}
	anonQuota := Quota{}
	if kf.Default != nil {
		anonQuota = *kf.Default
	}
	if err := checkQuota(Anonymous, anonQuota); err != nil {
		return nil, err
	}
	snap.anon = newTenant(Anonymous, false, anonQuota)
	for i, ft := range kf.Tenants {
		name := strings.TrimSpace(ft.Name)
		if name == "" {
			return nil, fmt.Errorf("tenant key file: tenant %d has no name", i)
		}
		if name == Anonymous {
			return nil, fmt.Errorf("tenant key file: %q is reserved (use \"default\" for the anonymous quota)", Anonymous)
		}
		if _, dup := snap.byName[name]; dup {
			return nil, fmt.Errorf("tenant key file: duplicate tenant name %q", name)
		}
		if len(ft.Keys) == 0 {
			return nil, fmt.Errorf("tenant key file: tenant %q has no keys", name)
		}
		if err := checkQuota(name, ft.Quota); err != nil {
			return nil, err
		}
		t := newTenant(name, ft.Disabled, ft.Quota)
		snap.byName[name] = t
		for _, k := range ft.Keys {
			if strings.TrimSpace(k) == "" {
				return nil, fmt.Errorf("tenant key file: tenant %q has an empty key", name)
			}
			if prev, dup := snap.byKey[k]; dup {
				return nil, fmt.Errorf("tenant key file: key reused by tenants %q and %q", prev.name, name)
			}
			snap.byKey[k] = t
		}
	}
	return snap, nil
}

func checkQuota(name string, q Quota) error {
	switch {
	case q.RatePerSec < 0, q.Burst < 0:
		return fmt.Errorf("tenant key file: tenant %q has a negative rate", name)
	case q.MaxCells < 0, q.MaxConcurrentRuns < 0, q.QueueShare < 0, q.Weight < 0:
		return fmt.Errorf("tenant key file: tenant %q has a negative quota", name)
	}
	return nil
}

func newTenant(name string, disabled bool, q Quota) *Tenant {
	t := &Tenant{name: name, disabled: disabled, quota: q}
	if q.RatePerSec > 0 {
		burst := q.Burst
		if burst <= 0 {
			burst = q.RatePerSec
			if burst < 1 {
				burst = 1
			}
		}
		t.bucket = NewBucket(q.RatePerSec, burst)
	}
	return t
}

// Registry is the live tenant table: an immutable snapshot behind a
// lock, swapped whole on reload so lookups never observe a half-read
// file.
type Registry struct {
	mu   sync.RWMutex
	path string
	snap *snapshot
	gen  int64 // reload generation, for /metrics and tests
}

// LoadFile reads and validates a key file into a fresh registry.
func LoadFile(path string) (*Registry, error) {
	r := &Registry{path: path}
	if err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// NewRegistry builds a registry directly from key file bytes (tests,
// embedded configs).
func NewRegistry(raw []byte) (*Registry, error) {
	snap, err := Parse(raw)
	if err != nil {
		return nil, err
	}
	return &Registry{snap: snap, gen: 1}, nil
}

// Reload re-reads the registry's key file in place. Tenants that
// survive the reload keep their token-bucket fill (carried over by
// name), so operators can rotate keys or adjust quotas without
// resetting anyone's rate limit. On any error the previous generation
// stays live — a bad reload never takes authentication down.
func (r *Registry) Reload() error {
	if r.path == "" {
		return fmt.Errorf("tenant registry has no backing file")
	}
	raw, err := os.ReadFile(r.path)
	if err != nil {
		return fmt.Errorf("tenant key file: %w", err)
	}
	snap, err := Parse(raw)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.snap != nil {
		for name, t := range snap.byName {
			if prev, ok := r.snap.byName[name]; ok && prev.bucket != nil && t.bucket != nil {
				t.bucket.adoptFill(prev.bucket)
			}
		}
		if r.snap.anon.bucket != nil && snap.anon.bucket != nil {
			snap.anon.bucket.adoptFill(r.snap.anon.bucket)
		}
	}
	r.snap = snap
	r.gen++
	return nil
}

// Generation reports how many times the registry has (re)loaded.
func (r *Registry) Generation() int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Anonymous returns the default tenant for unauthenticated requests.
// Safe on a nil registry (no key file configured): returns nil, which
// every enforcement point treats as "no limits".
func (r *Registry) Anonymous() *Tenant {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.snap.anon
}

// Authenticate resolves an API key.
func (r *Registry) Authenticate(key string) (*Tenant, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.snap.byKey[key]
	return t, ok
}

// ByName resolves a tenant name (the gate-stamped header path).
func (r *Registry) ByName(name string) (*Tenant, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == Anonymous {
		return r.snap.anon, true
	}
	t, ok := r.snap.byName[name]
	return t, ok
}

// Names lists the registered tenant names (metrics, tests).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.snap.byName))
	for n := range r.snap.byName {
		names = append(names, n)
	}
	return names
}

// KeyFromRequest extracts the client credential: Authorization:
// Bearer <key> first, then the X-CM-Key header. Empty when the
// request carries neither.
func KeyFromRequest(req *http.Request) string {
	auth := req.Header.Get("Authorization")
	if strings.HasPrefix(auth, "Bearer ") {
		if k := strings.TrimSpace(strings.TrimPrefix(auth, "Bearer ")); k != "" {
			return k
		}
	}
	return strings.TrimSpace(req.Header.Get(HeaderKey))
}

// AuthError is a structured authentication failure: Status is the
// HTTP code the enforcement point should answer with (401 unknown
// key, 403 disabled tenant).
type AuthError struct {
	Status int
	Msg    string
}

func (e *AuthError) Error() string { return e.Msg }

// Resolve authenticates one HTTP request against the registry.
//
//   - With trustHeader set and an X-CM-Tenant header present (the
//     gate already authenticated and rate-limited), the name resolves
//     directly; unknown names degrade to the anonymous tenant rather
//     than failing, so a registry drift between gate and shard during
//     a rolling reload costs quota precision, not availability.
//   - A Bearer/X-CM-Key credential must match a registered key (401
//     otherwise) and the tenant must not be disabled (403).
//   - No credential resolves to the anonymous default tenant.
//
// viaGate reports the trusted-header path was taken — the caller must
// then skip its own rate limiting (the gate already charged the
// bucket; double-charging would halve every tenant's real rate).
func (r *Registry) Resolve(req *http.Request, trustHeader bool) (t *Tenant, viaGate bool, err error) {
	if r == nil {
		return nil, false, nil
	}
	if trustHeader {
		if name := req.Header.Get(HeaderTenant); name != "" {
			if t, ok := r.ByName(name); ok {
				if t.Disabled() {
					return nil, true, &AuthError{Status: http.StatusForbidden, Msg: fmt.Sprintf("tenant %q is disabled", name)}
				}
				return t, true, nil
			}
			return r.Anonymous(), true, nil
		}
	}
	if key := KeyFromRequest(req); key != "" {
		t, ok := r.Authenticate(key)
		if !ok {
			return nil, false, &AuthError{Status: http.StatusUnauthorized, Msg: "unknown API key"}
		}
		if t.Disabled() {
			return nil, false, &AuthError{Status: http.StatusForbidden, Msg: fmt.Sprintf("tenant %q is disabled", t.Name())}
		}
		return t, false, nil
	}
	return r.Anonymous(), false, nil
}
