// The token bucket: sustained rate plus burst headroom, the classic
// shape for API rate limiting — a tenant that has been quiet can send
// Burst requests at once, then refills at RatePerSec. Implemented
// with a lazily-refilled float token count (no ticker goroutine, no
// per-tenant timers) and an injectable clock so tests need no sleeps.
package tenant

import (
	"sync"
	"time"
)

// minRetryAfter floors the backoff estimate a depleted bucket hands
// out. A zero or near-zero estimate invites an immediate retry storm
// from every shed client at once — the opposite of backpressure.
const minRetryAfter = 50 * time.Millisecond

// Bucket is a token-bucket rate limiter safe for concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time

	// now is the clock; tests swap it. Guarded by mu.
	now func() time.Time
}

// NewBucket builds a full bucket refilling at rate tokens/second with
// the given capacity.
func NewBucket(rate, burst float64) *Bucket {
	return &Bucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
}

// SetClock replaces the bucket's time source (tests).
func (b *Bucket) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
	b.last = time.Time{}
}

// refillLocked advances the bucket to the current instant.
func (b *Bucket) refillLocked() {
	t := b.now()
	if !b.last.IsZero() {
		b.tokens += t.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
}

// Take consumes one token if available. When the bucket is empty it
// reports how long until one token refills, floored so a shed client
// never gets told "retry now".
func (b *Bucket) Take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < minRetryAfter {
		wait = minRetryAfter
	}
	return false, wait
}

// Tokens reports the current fill level (tests, metrics).
func (b *Bucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}

// adoptFill carries a previous generation's fill level into this
// bucket (registry reload): the fill transfers proportionally capped
// at the new burst, so neither a reload-reset free-for-all nor a
// permanently-starved bucket after a quota increase.
func (b *Bucket) adoptFill(prev *Bucket) {
	prev.mu.Lock()
	prev.refillLocked()
	tokens := prev.tokens
	prev.mu.Unlock()

	b.mu.Lock()
	defer b.mu.Unlock()
	if tokens < b.burst {
		b.tokens = tokens
	}
	b.last = time.Time{}
}
