package tenant

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

const exampleKeyFile = `{
  "default": {"rate_per_sec": 0},
  "tenants": [
    {"name": "acme", "keys": ["k-acme-1", "k-acme-2"], "rate_per_sec": 50,
     "burst": 10, "max_cells": 1000, "max_concurrent_runs": 2,
     "queue_share": 4, "weight": 2},
    {"name": "mallory", "keys": ["k-mal"], "disabled": true},
    {"name": "free", "keys": ["k-free"]}
  ]
}`

func mustRegistry(t *testing.T, raw string) *Registry {
	t.Helper()
	r, err := NewRegistry([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseRejectsBadKeyFiles(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"unnamed":       `{"tenants":[{"keys":["k"]}]}`,
		"blank name":    `{"tenants":[{"name":"  ","keys":["k"]}]}`,
		"reserved name": `{"tenants":[{"name":"anonymous","keys":["k"]}]}`,
		"dup name":      `{"tenants":[{"name":"a","keys":["k1"]},{"name":"a","keys":["k2"]}]}`,
		"no keys":       `{"tenants":[{"name":"a"}]}`,
		"empty key":     `{"tenants":[{"name":"a","keys":[""]}]}`,
		"dup key":       `{"tenants":[{"name":"a","keys":["k"]},{"name":"b","keys":["k"]}]}`,
		"negative rate": `{"tenants":[{"name":"a","keys":["k"],"rate_per_sec":-1}]}`,
		"negative runs": `{"tenants":[{"name":"a","keys":["k"],"max_concurrent_runs":-2}]}`,
		"negative anon": `{"default":{"max_cells":-1},"tenants":[]}`,
	}
	for label, raw := range cases {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("%s: parsed without error", label)
		}
	}
}

func TestAuthenticateAndQuota(t *testing.T) {
	r := mustRegistry(t, exampleKeyFile)
	acme, ok := r.Authenticate("k-acme-2")
	if !ok || acme.Name() != "acme" {
		t.Fatalf("k-acme-2 -> %v, %v", acme, ok)
	}
	q := acme.Quota()
	if q.MaxCells != 1000 || q.MaxConcurrentRuns != 2 || q.QueueShare != 4 || q.FairWeight() != 2 {
		t.Fatalf("acme quota = %+v", q)
	}
	if _, ok := r.Authenticate("nope"); ok {
		t.Fatal("unknown key authenticated")
	}
	if anon := r.Anonymous(); anon.Name() != Anonymous || anon.Quota() != (Quota{}) {
		t.Fatalf("anonymous = %q %+v", anon.Name(), anon.Quota())
	}
	if free, _ := r.ByName("free"); free.Quota().FairWeight() != 1 {
		t.Fatal("zero weight must default to 1")
	}
}

func TestResolvePaths(t *testing.T) {
	r := mustRegistry(t, exampleKeyFile)
	req := func(h map[string]string) *http.Request {
		rq, _ := http.NewRequest(http.MethodPost, "/v1/run", nil)
		for k, v := range h {
			rq.Header.Set(k, v)
		}
		return rq
	}

	// Bearer and X-CM-Key both authenticate.
	for _, h := range []map[string]string{
		{"Authorization": "Bearer k-acme-1"},
		{HeaderKey: "k-acme-1"},
	} {
		tn, via, err := r.Resolve(req(h), false)
		if err != nil || via || tn.Name() != "acme" {
			t.Fatalf("resolve %v = %v %v %v", h, tn, via, err)
		}
	}
	// Unknown key: 401. Disabled tenant: 403.
	if _, _, err := r.Resolve(req(map[string]string{HeaderKey: "bogus"}), false); err == nil || err.(*AuthError).Status != http.StatusUnauthorized {
		t.Fatalf("unknown key err = %v", err)
	}
	if _, _, err := r.Resolve(req(map[string]string{HeaderKey: "k-mal"}), false); err == nil || err.(*AuthError).Status != http.StatusForbidden {
		t.Fatalf("disabled tenant err = %v", err)
	}
	// No credentials: anonymous.
	if tn, _, err := r.Resolve(req(nil), false); err != nil || tn.Name() != Anonymous {
		t.Fatalf("anonymous resolve = %v %v", tn, err)
	}
	// Trusted gate header wins over key auth and marks viaGate.
	tn, via, err := r.Resolve(req(map[string]string{HeaderTenant: "acme"}), true)
	if err != nil || !via || tn.Name() != "acme" {
		t.Fatalf("gate header resolve = %v %v %v", tn, via, err)
	}
	// Untrusted header is ignored (a client cannot self-assign quota).
	if tn, _, _ := r.Resolve(req(map[string]string{HeaderTenant: "acme"}), false); tn.Name() != Anonymous {
		t.Fatalf("untrusted header resolved to %q", tn.Name())
	}
	// Unknown gate-stamped name degrades to anonymous, not an error.
	if tn, _, err := r.Resolve(req(map[string]string{HeaderTenant: "ghost"}), true); err != nil || tn.Name() != Anonymous {
		t.Fatalf("unknown gate name = %v %v", tn, err)
	}
	// Nil registry: everything passes with no tenant.
	var nilReg *Registry
	if tn, _, err := nilReg.Resolve(req(map[string]string{HeaderKey: "whatever"}), false); tn != nil || err != nil {
		t.Fatalf("nil registry = %v %v", tn, err)
	}
}

func TestBucketRateAndRetryAfter(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewBucket(10, 2) // 10/s sustained, burst of 2
	b.SetClock(func() time.Time { return clock })

	for i := 0; i < 2; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, retry := b.Take()
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	// 10/s = 100ms per token; the estimate must be positive and at
	// least the anti-thundering-herd floor.
	if retry < minRetryAfter {
		t.Fatalf("retryAfter = %v, want >= %v", retry, minRetryAfter)
	}
	// 150ms later exactly one token has refilled.
	clock = clock.Add(150 * time.Millisecond)
	if ok, _ := b.Take(); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := b.Take(); ok {
		t.Fatal("second token granted after one refill interval")
	}
}

func TestReloadKeepsBucketFill(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.json")
	write := func(raw string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(raw), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"tenants":[{"name":"a","keys":["k1"],"rate_per_sec":1,"burst":5}]}`)
	r, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Generation() != 1 {
		t.Fatalf("generation = %d", r.Generation())
	}
	a, _ := r.Authenticate("k1")
	for i := 0; i < 5; i++ {
		a.Take() // drain the burst
	}

	// Rotate the key; the drained bucket must carry over, not refill.
	write(`{"tenants":[{"name":"a","keys":["k2"],"rate_per_sec":1,"burst":5}]}`)
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Authenticate("k1"); ok {
		t.Fatal("rotated-out key still valid")
	}
	a2, ok := r.Authenticate("k2")
	if !ok {
		t.Fatal("rotated-in key invalid")
	}
	if ok, retry := a2.Take(); ok || retry <= 0 {
		t.Fatalf("reload refilled the bucket (ok=%v retry=%v)", ok, retry)
	}

	// A broken rewrite must keep the previous generation live.
	write(`{"tenants":[{"name":"a"}]}`)
	if err := r.Reload(); err == nil {
		t.Fatal("reload accepted a tenant with no keys")
	}
	if _, ok := r.Authenticate("k2"); !ok {
		t.Fatal("failed reload dropped the live generation")
	}
	if r.Generation() != 2 {
		t.Fatalf("generation advanced on failed reload: %d", r.Generation())
	}
}

func TestKeyFromRequest(t *testing.T) {
	rq, _ := http.NewRequest(http.MethodPost, "/", nil)
	if k := KeyFromRequest(rq); k != "" {
		t.Fatalf("bare request key = %q", k)
	}
	rq.Header.Set("Authorization", "Bearer  abc ")
	if k := KeyFromRequest(rq); k != "abc" {
		t.Fatalf("bearer key = %q", k)
	}
	rq.Header.Del("Authorization")
	rq.Header.Set(HeaderKey, " xyz ")
	if k := KeyFromRequest(rq); k != "xyz" {
		t.Fatalf("header key = %q", k)
	}
	// Non-bearer Authorization schemes fall through to X-CM-Key.
	rq.Header.Set("Authorization", "Basic dXNlcjpwdw==")
	if k := KeyFromRequest(rq); k != "xyz" {
		t.Fatalf("basic-auth fallthrough key = %q", k)
	}
}
