// Package par implements the paper's enhanced fork-join execution
// model (§III-C, adopted from SAC): worker threads are spawned once at
// program start and sent "straight into a spin lock where they sit
// idle until some parallel work is to be done". When the main thread
// encounters a parallel construct it releases all workers at once;
// each worker passes through a stop barrier when done and returns to
// the spin lock, while the main thread waits in the stop barrier until
// all workers have finished.
//
// Workers are goroutines pinned conceptually to cores; the spin uses
// atomic generation counters with a Gosched backoff so a pool larger
// than GOMAXPROCS still makes progress.
//
// The pool is panic-isolated: a panic inside a worker body is
// recovered into a *PanicError, the stop barrier is still reached (the
// pool never hangs and never leaks workers), and the remaining
// iteration space of the current construct is abandoned through a
// cooperative abort flag. Long-lived services rely on this to turn a
// crashing request body into an error return instead of a process
// death.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from a pool worker (or from the
// inline fast path of the ParallelFor family), carrying the worker id,
// the original panic value and the stack at the panic site.
type PanicError struct {
	Worker int
	Value  any
	Stack  []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: panic in worker %d: %v", e.Worker, e.Value)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.As can classify what crashed (rc violations, shape errors).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// TestHookInjectPanic, when non-nil, is invoked by every worker at the
// start of each released work item, before the body runs. Fault-
// injection tests point it at a function that panics for a chosen
// worker id to exercise the recovery and abort paths; it must be nil
// in production. It is a plain package variable (no build tag) so the
// crash-only suite can flip it around a live server.
var TestHookInjectPanic func(worker int)

// Pool is a spawn-once worker pool.
type Pool struct {
	nWorkers int
	gen      atomic.Uint64 // work generation; bumped to release workers
	done     atomic.Int64  // stop barrier: workers done with current gen
	stop     atomic.Bool

	body func(worker, n int) // current work item

	// Per-construct failure state, reset by RunErr. abort is the
	// cooperative early-abort flag the chunk loops poll; firstErr is
	// the first body error or recovered panic.
	abort    atomic.Bool
	errMu    sync.Mutex
	firstErr error
}

// NewPool spawns n workers (n < 1 means GOMAXPROCS). The workers spin
// until work arrives or the pool is shut down.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{nWorkers: n}
	for w := 0; w < n; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.nWorkers }

// worker is the spin-lock loop of §III-C.
func (p *Pool) worker(id int) {
	lastGen := uint64(0)
	for {
		// Spin lock: wait for the generation counter to advance.
		spins := 0
		for {
			if p.stop.Load() {
				return
			}
			g := p.gen.Load()
			if g != lastGen {
				lastGen = g
				break
			}
			spins++
			if spins%64 == 0 {
				// Backoff so oversubscribed pools still progress.
				runtime.Gosched()
			}
		}
		// Execute this worker's share of the released work.
		p.runBody(id)
	}
}

// runBody executes the current work item for one worker. The stop
// barrier is reached unconditionally — a deferred done.Add — so a
// panicking body can never leave the main thread (or the pool) hung.
func (p *Pool) runBody(id int) {
	defer p.done.Add(1)
	defer func() {
		if r := recover(); r != nil {
			p.fail(&PanicError{Worker: id, Value: r, Stack: debug.Stack()})
		}
	}()
	if hook := TestHookInjectPanic; hook != nil {
		hook(id)
	}
	p.body(id, p.nWorkers)
}

// fail records the construct's first error and raises the abort flag
// so other workers skip their remaining iteration space.
func (p *Pool) fail(err error) {
	p.abort.Store(true)
	p.errMu.Lock()
	if p.firstErr == nil {
		p.firstErr = err
	}
	p.errMu.Unlock()
}

// Aborted reports whether the current construct has failed (or been
// cancelled); bodies partitioning their own iteration space poll it to
// abandon remaining work early.
func (p *Pool) Aborted() bool { return p.abort.Load() }

// RunErr releases the workers on body and waits in the stop barrier
// until all have completed, even if some bodies panic. It returns the
// first body error or recovered *PanicError. body(worker, nWorkers)
// must partition its own iteration space by worker id (see
// ParallelForErr for the common case) and should poll Aborted to honor
// early abort. RunErr is not reentrant: with-loop nests parallelize
// the outermost construct, inner constructs run sequentially inside a
// worker (the generated C of §III-C behaves the same way).
func (p *Pool) RunErr(body func(worker, n int) error) error {
	p.abort.Store(false)
	p.errMu.Lock()
	p.firstErr = nil
	p.errMu.Unlock()
	p.body = func(worker, n int) {
		if err := body(worker, n); err != nil {
			p.fail(err)
		}
	}
	p.done.Store(0)
	p.gen.Add(1) // release the spin lock
	// Main thread waits in the stop barrier.
	spins := 0
	for p.done.Load() < int64(p.nWorkers) {
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
	}
	p.errMu.Lock()
	err := p.firstErr
	p.errMu.Unlock()
	return err
}

// Run is RunErr for infallible bodies. A body panic still reaches the
// stop barrier (the pool stays healthy) and is then re-raised in the
// caller as a *PanicError, preserving crash semantics for direct
// users; the interpreter uses the error-returning variants instead.
func (p *Pool) Run(body func(worker, n int)) {
	err := p.RunErr(func(worker, n int) error {
		body(worker, n)
		return nil
	})
	if err != nil {
		panic(err)
	}
}

// Shutdown terminates the workers. It is idempotent and safe to call
// at any time outside a Run: workers finish the current work item
// (bounded because bodies honor abort/panic recovery) and exit.
func (p *Pool) Shutdown() { p.stop.Store(true) }

// protect runs f, converting a panic into a *PanicError attributed to
// worker id. Used on the inline (single-element) fast paths so they
// fail the same way pool workers do.
func protect(id int, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Worker: id, Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}

// pollCancel reports ctx cancellation without blocking; a nil done
// channel (no context) never cancels.
func pollCancel(ctx context.Context, done <-chan struct{}) error {
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return ctx.Err()
	default:
		return nil
	}
}

// ParallelFor executes f(i) for i in [lo, hi) across the pool using a
// block distribution, matching the static scheduling of the generated
// pthread code. A panicking f re-panics in the caller as *PanicError.
func (p *Pool) ParallelFor(lo, hi int, f func(i int)) {
	if err := p.ParallelForErr(lo, hi, func(i int) error {
		f(i)
		return nil
	}); err != nil {
		panic(err)
	}
}

// ParallelForErr is ParallelFor with an error-returning body: the
// first error (or recovered worker panic) aborts the construct — every
// worker skips its remaining iterations via the abort flag — and is
// returned after the stop barrier.
func (p *Pool) ParallelForErr(lo, hi int, f func(i int) error) error {
	return p.parallelFor(nil, lo, hi, f)
}

// ParallelForCtx is ParallelForErr that additionally observes ctx
// inside the construct: workers poll the deadline between iterations,
// so a long parallel loop aborts mid-construct, not only at its next
// sequential statement. A nil ctx never cancels.
func (p *Pool) ParallelForCtx(ctx context.Context, lo, hi int, f func(i int) error) error {
	return p.parallelFor(ctx, lo, hi, f)
}

func (p *Pool) parallelFor(ctx context.Context, lo, hi int, f func(i int) error) error {
	if hi <= lo {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	n := hi - lo
	if n == 1 {
		if err := pollCancel(ctx, done); err != nil {
			return err
		}
		return protect(0, func() error { return f(lo) })
	}
	return p.RunErr(func(worker, workers int) error {
		chunk := (n + workers - 1) / workers
		start := lo + worker*chunk
		end := start + chunk
		if end > hi {
			end = hi
		}
		for i := start; i < end; i++ {
			if p.abort.Load() {
				return nil
			}
			if err := pollCancel(ctx, done); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	})
}

// ParallelReduce folds f(i) for i in [lo, hi) with the associative
// combiner, computing per-worker partials in the released workers and
// combining them in the main thread after the stop barrier. A
// panicking f re-panics in the caller as *PanicError.
func (p *Pool) ParallelReduce(lo, hi int, identity float64,
	f func(i int) float64, combine func(a, b float64) float64) float64 {
	v, err := p.ParallelReduceErr(lo, hi, identity,
		func(i int) (float64, error) { return f(i), nil }, combine)
	if err != nil {
		panic(err)
	}
	return v
}

// ParallelReduceErr is ParallelReduce with an error-returning body and
// early abort: after the first error the remaining iteration space is
// skipped and the error is returned.
func (p *Pool) ParallelReduceErr(lo, hi int, identity float64,
	f func(i int) (float64, error), combine func(a, b float64) float64) (float64, error) {
	if hi <= lo {
		return identity, nil
	}
	n := hi - lo
	partials := make([]float64, p.nWorkers)
	err := p.RunErr(func(worker, workers int) error {
		chunk := (n + workers - 1) / workers
		start := lo + worker*chunk
		end := start + chunk
		if end > hi {
			end = hi
		}
		acc := identity
		for i := start; i < end; i++ {
			if p.abort.Load() {
				return nil
			}
			v, err := f(i)
			if err != nil {
				return err
			}
			acc = combine(acc, v)
		}
		partials[worker] = acc
		return nil
	})
	if err != nil {
		return identity, err
	}
	acc := identity
	for _, v := range partials {
		acc = combine(acc, v)
	}
	return acc, nil
}

// NaiveSpawn is the fork-join model the paper contrasts against:
// spawn fresh goroutines for each parallel region and join them.
// Kept for benchmark E8 (pool vs naive overhead).
func NaiveSpawn(workers, lo, hi int, f func(i int)) {
	if hi <= lo {
		return
	}
	n := hi - lo
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	ch := make(chan struct{}, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(w int) {
			start := lo + w*chunk
			end := start + chunk
			if end > hi {
				end = hi
			}
			for i := start; i < end; i++ {
				f(i)
			}
			ch <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-ch
	}
}
