// Package par implements the paper's enhanced fork-join execution
// model (§III-C, adopted from SAC): worker threads are spawned once at
// program start and sent "straight into a spin lock where they sit
// idle until some parallel work is to be done". When the main thread
// encounters a parallel construct it releases all workers at once;
// each worker passes through a stop barrier when done and returns to
// the spin lock, while the main thread waits in the stop barrier until
// all workers have finished.
//
// Workers are goroutines pinned conceptually to cores; the spin uses
// atomic generation counters with a Gosched backoff so a pool larger
// than GOMAXPROCS still makes progress.
package par

import (
	"runtime"
	"sync/atomic"
)

// Pool is a spawn-once worker pool.
type Pool struct {
	nWorkers int
	gen      atomic.Uint64 // work generation; bumped to release workers
	done     atomic.Int64  // stop barrier: workers done with current gen
	stop     atomic.Bool

	body func(worker, n int) // current work item
}

// NewPool spawns n workers (n < 1 means GOMAXPROCS). The workers spin
// until work arrives or the pool is shut down.
func NewPool(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{nWorkers: n}
	for w := 0; w < n; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.nWorkers }

// worker is the spin-lock loop of §III-C.
func (p *Pool) worker(id int) {
	lastGen := uint64(0)
	for {
		// Spin lock: wait for the generation counter to advance.
		spins := 0
		for {
			if p.stop.Load() {
				return
			}
			g := p.gen.Load()
			if g != lastGen {
				lastGen = g
				break
			}
			spins++
			if spins%64 == 0 {
				// Backoff so oversubscribed pools still progress.
				runtime.Gosched()
			}
		}
		// Execute this worker's share of the released work.
		p.body(id, p.nWorkers)
		// Stop barrier: last worker out signals the main thread.
		p.done.Add(1)
	}
}

// Run releases the workers on body and waits in the stop barrier until
// all have completed. body(worker, nWorkers) must partition its own
// iteration space by worker id (see ParallelFor for the common case).
// Run is not reentrant: with-loop nests parallelize the outermost
// construct, inner constructs run sequentially inside a worker (the
// generated C of §III-C behaves the same way).
func (p *Pool) Run(body func(worker, n int)) {
	p.body = body
	p.done.Store(0)
	p.gen.Add(1) // release the spin lock
	// Main thread waits in the stop barrier.
	spins := 0
	for p.done.Load() < int64(p.nWorkers) {
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
	}
}

// Shutdown terminates the workers. The pool must be idle.
func (p *Pool) Shutdown() { p.stop.Store(true) }

// ParallelFor executes f(i) for i in [lo, hi) across the pool using a
// block distribution, matching the static scheduling of the generated
// pthread code.
func (p *Pool) ParallelFor(lo, hi int, f func(i int)) {
	if hi <= lo {
		return
	}
	n := hi - lo
	if n == 1 {
		f(lo)
		return
	}
	p.Run(func(worker, workers int) {
		chunk := (n + workers - 1) / workers
		start := lo + worker*chunk
		end := start + chunk
		if end > hi {
			end = hi
		}
		for i := start; i < end; i++ {
			f(i)
		}
	})
}

// ParallelReduce folds f(i) for i in [lo, hi) with the associative
// combiner, computing per-worker partials in the released workers and
// combining them in the main thread after the stop barrier.
func (p *Pool) ParallelReduce(lo, hi int, identity float64,
	f func(i int) float64, combine func(a, b float64) float64) float64 {
	if hi <= lo {
		return identity
	}
	n := hi - lo
	partials := make([]float64, p.nWorkers)
	p.Run(func(worker, workers int) {
		chunk := (n + workers - 1) / workers
		start := lo + worker*chunk
		end := start + chunk
		if end > hi {
			end = hi
		}
		acc := identity
		for i := start; i < end; i++ {
			acc = combine(acc, f(i))
		}
		partials[worker] = acc
	})
	acc := identity
	for _, v := range partials {
		acc = combine(acc, v)
	}
	return acc
}

// NaiveSpawn is the fork-join model the paper contrasts against:
// spawn fresh goroutines for each parallel region and join them.
// Kept for benchmark E8 (pool vs naive overhead).
func NaiveSpawn(workers, lo, hi int, f func(i int)) {
	if hi <= lo {
		return
	}
	n := hi - lo
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	ch := make(chan struct{}, workers)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(w int) {
			start := lo + w*chunk
			end := start + chunk
			if end > hi {
				end = hi
			}
			for i := start; i < end; i++ {
				f(i)
			}
			ch <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-ch
	}
}
