package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelForCoversRange(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	const n = 1000
	var hits [n]atomic.Int32
	p.ParallelFor(0, n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d executed %d times", i, hits[i].Load())
		}
	}
}

func TestParallelForEmptyAndSingle(t *testing.T) {
	p := NewPool(3)
	defer p.Shutdown()
	ran := 0
	p.ParallelFor(5, 5, func(i int) { ran++ })
	if ran != 0 {
		t.Error("empty range should not run")
	}
	p.ParallelFor(7, 8, func(i int) {
		if i != 7 {
			t.Errorf("i = %d", i)
		}
		ran++
	})
	if ran != 1 {
		t.Error("single-element range should run once inline")
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.ParallelFor(0, 100, func(i int) { total.Add(1) })
	}
	if total.Load() != 5000 {
		t.Errorf("total = %d, want 5000", total.Load())
	}
}

func TestParallelReduce(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	sum := p.ParallelReduce(0, 1000, 0,
		func(i int) float64 { return float64(i) },
		func(a, b float64) float64 { return a + b })
	if sum != 499500 {
		t.Errorf("sum = %v, want 499500", sum)
	}
	mx := p.ParallelReduce(0, 257, -1e18,
		func(i int) float64 { return float64((i * 7919) % 257) },
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		})
	if mx != 256 {
		t.Errorf("max = %v, want 256", mx)
	}
}

func TestReduceEmpty(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	got := p.ParallelReduce(3, 3, 42, func(i int) float64 { return 0 },
		func(a, b float64) float64 { return a + b })
	if got != 42 {
		t.Errorf("empty reduce = %v, want identity", got)
	}
}

func TestWorkersCount(t *testing.T) {
	p := NewPool(6)
	defer p.Shutdown()
	if p.Workers() != 6 {
		t.Errorf("Workers = %d", p.Workers())
	}
	q := NewPool(0)
	defer q.Shutdown()
	if q.Workers() < 1 {
		t.Error("default pool must have at least one worker")
	}
	// Negative counts must not construct an empty (deadlocking) pool.
	r := NewPool(-4)
	defer r.Shutdown()
	if r.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("NewPool(-4).Workers() = %d, want GOMAXPROCS", r.Workers())
	}
}

func TestNaiveSpawnCoversRange(t *testing.T) {
	const n = 500
	var hits [n]atomic.Int32
	NaiveSpawn(4, 0, n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d executed %d times", i, hits[i].Load())
		}
	}
}

// Property: pool reduction equals sequential reduction for random
// ranges and worker counts.
func TestQuickReduceMatchesSequential(t *testing.T) {
	p := NewPool(3)
	defer p.Shutdown()
	f := func(seed int64, nU uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nU % 500)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(r.Intn(100))
		}
		want := 0.0
		for _, v := range vals {
			want += v
		}
		got := p.ParallelReduce(0, n, 0,
			func(i int) float64 { return vals[i] },
			func(a, b float64) float64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
