// Crash-proofing tests: panic isolation, the guaranteed stop barrier,
// cooperative early abort, context cancellation and the fault-injection
// hook. All must pass under -race.
package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunErrRecoversPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	err := p.RunErr(func(worker, n int) error {
		if worker == 2 {
			panic("boom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunErr = %v, want *PanicError", err)
	}
	if pe.Worker != 2 {
		t.Errorf("Worker = %d, want 2", pe.Worker)
	}
	if pe.Value != "boom" {
		t.Errorf("Value = %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Errorf("Error() = %q, want the panic value in it", pe.Error())
	}

	// The pool must stay healthy: the same workers serve the next
	// construct (a hung or dead worker would deadlock the barrier here).
	var total atomic.Int64
	p.ParallelFor(0, 100, func(i int) { total.Add(1) })
	if total.Load() != 100 {
		t.Errorf("after panic, ParallelFor ran %d iterations, want 100", total.Load())
	}
}

func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("typed failure")
	p := NewPool(2)
	defer p.Shutdown()
	err := p.RunErr(func(worker, n int) error {
		if worker == 0 {
			panic(sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is(err, sentinel) = false; err = %v", err)
	}
	var pe *PanicError
	if errors.As(err, &pe) && pe.Unwrap() != sentinel {
		t.Errorf("Unwrap = %v, want sentinel", pe.Unwrap())
	}
	// Non-error panic values unwrap to nil.
	if (&PanicError{Value: 42}).Unwrap() != nil {
		t.Error("Unwrap of a non-error panic value must be nil")
	}
}

func TestRunRepanicsPanicError(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-panic")
		}
		if _, ok := r.(*PanicError); !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
	}()
	p.Run(func(worker, n int) {
		if worker == 1 {
			panic("direct user crash")
		}
	})
}

// A failing iteration must abort the construct: with one worker the
// iteration order is deterministic, so nothing after the poisoned index
// may run.
func TestParallelForErrEarlyAbort(t *testing.T) {
	p := NewPool(1)
	defer p.Shutdown()
	bad := errors.New("poisoned row")
	var calls atomic.Int64
	err := p.ParallelForErr(0, 100, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return bad
		}
		return nil
	})
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want poisoned row", err)
	}
	if calls.Load() != 1 {
		t.Errorf("body ran %d times after the first error, want 1", calls.Load())
	}
}

// With many workers the abort is cooperative, not exact: assert only
// that a large remainder of the iteration space was skipped.
func TestParallelForErrAbortSkipsWork(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	bad := errors.New("fail fast")
	var calls atomic.Int64
	const n = 1 << 20
	err := p.ParallelForErr(0, n, func(i int) error {
		calls.Add(1)
		return bad
	})
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v", err)
	}
	if c := calls.Load(); c > n/2 {
		t.Errorf("abort skipped too little: %d of %d iterations ran", c, n)
	}
}

func TestParallelForCtxPreCancelled(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	err := p.ParallelForCtx(ctx, 0, 1000, func(i int) error {
		calls.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker may complete at most the iteration it had already
	// started; the bulk of the range must be skipped.
	if c := calls.Load(); c > 8 {
		t.Errorf("%d iterations ran after pre-cancel", c)
	}
}

func TestParallelForCtxCancelMidRun(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var once atomic.Bool
	err := p.ParallelForCtx(ctx, 0, 1<<20, func(i int) error {
		if once.CompareAndSwap(false, true) {
			cancel()
			close(release)
		}
		<-release
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled observed mid-construct", err)
	}
}

func TestParallelForCtxDeadline(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := p.ParallelForCtx(ctx, 0, 1<<30, func(i int) error {
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestParallelForSingleElementPanicIsProtected(t *testing.T) {
	p := NewPool(3)
	defer p.Shutdown()
	// n == 1 takes the inline fast path; it must fail identically to
	// the pooled path.
	err := p.ParallelForErr(7, 8, func(i int) error { panic("inline") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("inline path err = %v, want *PanicError", err)
	}
}

func TestParallelReduceErr(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	bad := errors.New("bad element")
	_, err := p.ParallelReduceErr(0, 1000, 0,
		func(i int) (float64, error) {
			if i == 500 {
				return 0, bad
			}
			return float64(i), nil
		},
		func(a, b float64) float64 { return a + b })
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want bad element", err)
	}
	// And a clean reduce still works on the same pool afterwards.
	sum, err := p.ParallelReduceErr(0, 100, 0,
		func(i int) (float64, error) { return 1, nil },
		func(a, b float64) float64 { return a + b })
	if err != nil || sum != 100 {
		t.Errorf("clean reduce after failure = (%v, %v), want (100, nil)", sum, err)
	}
}

func TestInjectPanicHook(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	TestHookInjectPanic = func(worker int) {
		if worker == 1 {
			panic(fmt.Sprintf("injected into worker %d", worker))
		}
	}
	defer func() { TestHookInjectPanic = nil }()
	err := p.RunErr(func(worker, n int) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic not surfaced: err = %v", err)
	}
	if pe.Worker != 1 {
		t.Errorf("Worker = %d, want 1", pe.Worker)
	}
	TestHookInjectPanic = nil
	if err := p.RunErr(func(worker, n int) error { return nil }); err != nil {
		t.Errorf("pool unhealthy after injected panic: %v", err)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Shutdown()
	p.Shutdown() // must not panic or hang
}
