// Artifact transfer suite: the digest-framed export/import path that
// lets fleet peers fill each other's caches, and its interaction with
// the corruption quarantine — a poisoned disk object must never be
// exported, and an import from a healthy peer must transparently
// re-fill the quarantined slot.
package driver_test

import (
	"context"
	"os"
	"testing"

	"repro/internal/cgen"
	"repro/internal/driver"
	"repro/internal/parser"
)

func artifactKeyFor(src string) string {
	req := driver.CompileRequest{
		Name: "t.xc", Source: src, Exts: parser.AllExtensions(),
		Codegen: cgen.Options{Par: cgen.ParNone, Optimize: true},
	}
	return driver.CompileCacheKey(req)
}

func TestArtifactExportImportRoundTrip(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a := driver.NewWith(driver.Config{CacheDir: dirA})
	first := compileOnce(t, a, okSrc)
	if !first.OK {
		t.Fatalf("compile: %v", first.Diagnostics)
	}

	raw, ok := a.ExportArtifact(context.Background(), first.Key)
	if !ok || len(raw) == 0 {
		t.Fatal("compiled artifact not exportable")
	}
	if a.MetricsSnapshot().ArtifactExports != 1 {
		t.Fatal("artifact_exports not counted")
	}

	b := driver.NewWith(driver.Config{CacheDir: dirB})
	if err := b.ImportArtifact(first.Key, raw); err != nil {
		t.Fatalf("import: %v", err)
	}
	res := compileOnce(t, b, okSrc)
	if !res.OK || !res.Cached || res.Output != first.Output {
		t.Fatalf("imported artifact not served: OK=%v Cached=%v", res.OK, res.Cached)
	}
	m := b.MetricsSnapshot()
	if m.CompileExecutions != 0 || m.ArtifactImports != 1 {
		t.Fatalf("import metrics: executions=%d imports=%d", m.CompileExecutions, m.ArtifactImports)
	}
	// The import also landed on B's disk: a restarted B stays warm.
	b2 := driver.NewWith(driver.Config{CacheDir: dirB})
	if res := compileOnce(t, b2, okSrc); !res.Cached {
		t.Fatal("imported artifact not durable across restart")
	}
}

func TestImportArtifactRejectsTamperedPayload(t *testing.T) {
	a := driver.NewWith(driver.Config{CacheDir: t.TempDir()})
	first := compileOnce(t, a, okSrc)
	raw, _ := a.ExportArtifact(context.Background(), first.Key)

	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)/2] ^= 0x20
	b := driver.NewWith(driver.Config{CacheDir: t.TempDir()})
	if err := b.ImportArtifact(first.Key, tampered); err == nil {
		t.Fatal("tampered artifact accepted")
	}
	if res := compileOnce(t, b, okSrc); res.Cached {
		t.Fatal("tampered artifact was cached anyway")
	}
}

func TestImportArtifactRejectsMalformedKey(t *testing.T) {
	d := driver.New()
	if err := d.ImportArtifact("not-a-key", []byte("x")); err == nil {
		t.Fatal("malformed key accepted")
	}
	if err := d.ImportArtifact("../../etc/passwd", []byte("x")); err == nil {
		t.Fatal("traversal key accepted")
	}
}

// TestExportRefusesCorruptDiskObject: a bit-flipped object must fail
// its digest check on the way out — a fleet peer asking for a cache
// fill must never receive poison.
func TestExportRefusesCorruptDiskObject(t *testing.T) {
	dir := t.TempDir()
	first := compileOnce(t, driver.NewWith(driver.Config{CacheDir: dir}), okSrc)
	path := objectPath(dir, first.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := driver.NewWith(driver.Config{CacheDir: dir}) // no memory copy
	if _, ok := d2.ExportArtifact(context.Background(), first.Key); ok {
		t.Fatal("corrupt disk object exported")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt object not quarantined on export: %v", err)
	}
}

// TestImportRefillsQuarantinedObject is the peer-assisted half of the
// quarantine story: after local corruption, an import from a healthy
// peer rewrites the object in place and the next restart serves it
// from disk with zero recompiles.
func TestImportRefillsQuarantinedObject(t *testing.T) {
	dir := t.TempDir()
	healthy := driver.NewWith(driver.Config{CacheDir: t.TempDir()})
	first := compileOnce(t, healthy, okSrc)
	good, ok := healthy.ExportArtifact(context.Background(), first.Key)
	if !ok {
		t.Fatal("healthy peer cannot export")
	}

	victim := driver.NewWith(driver.Config{CacheDir: dir})
	compileOnce(t, victim, okSrc)
	path := objectPath(dir, first.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Fresh incarnation discovers the corruption, quarantines, then is
	// re-filled over the artifact path instead of recompiling.
	d2 := driver.NewWith(driver.Config{CacheDir: dir})
	if _, ok := d2.ExportArtifact(context.Background(), first.Key); ok {
		t.Fatal("corrupt object exported")
	}
	if err := d2.ImportArtifact(first.Key, good); err != nil {
		t.Fatalf("re-fill import: %v", err)
	}
	if res := compileOnce(t, d2, okSrc); !res.Cached {
		t.Fatal("re-filled artifact not served")
	}
	if m := d2.MetricsSnapshot(); m.CompileExecutions != 0 {
		t.Fatalf("re-fill recompiled: executions=%d", m.CompileExecutions)
	}
	d3 := driver.NewWith(driver.Config{CacheDir: dir})
	if res := compileOnce(t, d3, okSrc); !res.Cached {
		t.Fatal("re-filled object not durable")
	}
	if m := d3.MetricsSnapshot(); m.DiskHits != 1 || m.DiskCorrupt != 0 || m.CompileExecutions != 0 {
		t.Fatalf("post-refill restart metrics: %+v", m)
	}
}

func TestCompileCanceledContextNothingCached(t *testing.T) {
	d := driver.New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := d.Compile(ctx, driver.CompileRequest{
		Name: "t.xc", Source: okSrc, Exts: parser.AllExtensions(),
		Codegen: cgen.Options{Par: cgen.ParNone, Optimize: true},
	})
	if !res.Canceled || res.OK {
		t.Fatalf("dead-context compile: Canceled=%v OK=%v", res.Canceled, res.OK)
	}
	if m := d.MetricsSnapshot(); m.CompileExecutions != 0 {
		t.Fatal("dead-context compile still executed the pipeline")
	}
	// The abandoned request poisoned nothing: a live one compiles fresh.
	if res := compileOnce(t, d, okSrc); !res.OK || res.Cached {
		t.Fatalf("post-cancel compile: OK=%v Cached=%v", res.OK, res.Cached)
	}
}

func TestRouteKeyStableAndFlagInsensitive(t *testing.T) {
	exts, err := driver.ParseRouteExtensions("all")
	if err != nil {
		t.Fatal(err)
	}
	k1 := driver.RouteKey("a.xc", okSrc, exts)
	k2 := driver.RouteKey("a.xc", okSrc, exts)
	if k1 != k2 || k1 == "" {
		t.Fatal("route key not deterministic")
	}
	if driver.RouteKey("b.xc", okSrc, exts) == k1 {
		t.Fatal("route key ignores the program name")
	}
	if driver.RouteKey("a.xc", okSrc+" ", exts) == k1 {
		t.Fatal("route key ignores the source")
	}
	if !driver.ValidArtifactKey(artifactKeyFor(okSrc)) {
		t.Fatal("compile cache key is not a valid artifact key")
	}
}
