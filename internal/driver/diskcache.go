// Crash-safe on-disk artifact tier. Compiled artifacts are strings
// (emitted C or printed AST), so they survive a process restart —
// unlike frontend results, which hold live AST pointers and stay
// memory-only. A daemon restarted with the same cache directory comes
// back warm: repeated compiles are served from disk instead of
// re-running the pipeline.
//
// Format: one file per artifact under <dir>/objects/<key[:2]>/<key>,
// where key is the request's SHA-256 content address. The file is a
// 64-byte hex SHA-256 of the payload, a newline, then the payload
// (the JSON-encoded artifact). Writes go to a temp file in the same
// directory followed by os.Rename, so a concurrent reader sees either
// the old object or the complete new one, never a torn write. Reads
// re-hash the payload and compare against the embedded digest; a
// mismatch (torn write that still renamed somehow, bit-flip, manual
// tampering) quarantines the file — renamed to <key>.corrupt, counted,
// and treated as a miss — so a bad object can never poison a compile.
package driver

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// diskArtifact is the persisted form of an emitResult. Only successful
// compiles are persisted: diagnostics of failed compiles are cheap to
// recompute and negative-caching across restarts risks pinning stale
// rejections if the toolchain changes.
type diskArtifact struct {
	Output string   `json:"output"`
	Diags  []string `json:"diags,omitempty"`
}

// diskCache is the optional second tier under the in-memory LRU.
type diskCache struct {
	dir string
	m   *Metrics
}

// newDiskCache prepares dir (creating it if needed) and returns the
// tier, or an error if the directory cannot be used.
func newDiskCache(dir string, m *Metrics) (*diskCache, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("driver: cache dir: %w", err)
	}
	return &diskCache{dir: dir, m: m}, nil
}

func (dc *diskCache) objectPath(key string) string {
	// Two-level fan-out keeps any one directory small under millions of
	// artifacts.
	return filepath.Join(dc.dir, "objects", key[:2], key)
}

// get loads the artifact stored under key. It returns (nil, false) on
// any miss: absent file, unreadable file, a payload whose digest does
// not match (which is quarantined and counted as corrupt), or a ctx
// that expires while the read is outstanding — a disconnected client
// must not stay pinned behind a hung disk.
func (dc *diskCache) get(ctx context.Context, key string) (*diskArtifact, bool) {
	raw, ok := dc.getRaw(ctx, key)
	if !ok {
		return nil, false
	}
	payload, _ := verifyObject(raw) // getRaw already verified
	var art diskArtifact
	if err := json.Unmarshal(payload, &art); err != nil {
		// Digest matched but the payload does not decode: written by an
		// incompatible version. Quarantine it the same way.
		dc.quarantine(dc.objectPath(key))
		dc.m.DiskCorrupt.Add(1)
		dc.m.DiskMisses.Add(1)
		return nil, false
	}
	dc.m.DiskHits.Add(1)
	return &art, true
}

// getRaw loads the digest-framed object bytes stored under key — the
// exact on-disk (and peer-transfer) representation — verifying the
// embedded digest but not decoding the payload. The read itself runs
// on a helper goroutine raced against ctx: a blocked disk (NFS stall,
// dying device) degrades to a miss at the caller's deadline instead of
// pinning its slot. The helper drains into a buffered channel, so no
// goroutine leaks even when abandoned.
func (dc *diskCache) getRaw(ctx context.Context, key string) ([]byte, bool) {
	path := dc.objectPath(key)
	if ctx != nil && ctx.Err() != nil {
		dc.m.DiskMisses.Add(1)
		return nil, false
	}
	var raw []byte
	var err error
	if ctx == nil {
		raw, err = os.ReadFile(path)
	} else {
		type readResult struct {
			raw []byte
			err error
		}
		ch := make(chan readResult, 1)
		go func() {
			r, e := os.ReadFile(path)
			ch <- readResult{r, e}
		}()
		select {
		case <-ctx.Done():
			dc.m.DiskMisses.Add(1)
			dc.m.DiskAbandoned.Add(1)
			return nil, false
		case res := <-ch:
			raw, err = res.raw, res.err
		}
	}
	if err != nil {
		dc.m.DiskMisses.Add(1)
		return nil, false
	}
	if _, ok := verifyObject(raw); !ok {
		dc.quarantine(path)
		dc.m.DiskCorrupt.Add(1)
		dc.m.DiskMisses.Add(1)
		return nil, false
	}
	return raw, true
}

// put persists an artifact under key: temp file in the destination
// directory, then an atomic rename. Errors are recorded but not
// returned — the disk tier is an accelerator, never a correctness
// dependency, so a full disk degrades to memory-only caching.
func (dc *diskCache) put(key string, art *diskArtifact) {
	payload, err := json.Marshal(art)
	if err != nil {
		dc.m.DiskWriteErrors.Add(1)
		return
	}
	dc.putRaw(key, encodeObject(payload))
}

// putRaw persists already digest-framed object bytes (as produced by
// encodeObject, or received verified from a peer) under key.
func (dc *diskCache) putRaw(key string, raw []byte) {
	path := dc.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		dc.m.DiskWriteErrors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		dc.m.DiskWriteErrors.Add(1)
		return
	}
	_, werr := tmp.Write(raw)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		dc.m.DiskWriteErrors.Add(1)
		return
	}
	dc.m.DiskWrites.Add(1)
}

// quarantine moves a bad object aside so it is inspectable but never
// served; the slot becomes writable again for the recompiled artifact.
func (dc *diskCache) quarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		// Rename failed (e.g. read-only fs): delete as a fallback; if
		// that fails too the digest check still protects every read.
		os.Remove(path)
	}
}

// encodeObject frames a payload in the disk-object format: a 64-byte
// hex SHA-256 of the payload, a newline, then the payload. The same
// framing travels over /v1/artifact between shards, so a peer transfer
// is verified by exactly the code path that guards disk reads.
func encodeObject(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	raw := make([]byte, 0, hex.EncodedLen(sha256.Size)+1+len(payload))
	raw = append(raw, hex.EncodeToString(sum[:])...)
	raw = append(raw, '\n')
	return append(raw, payload...)
}

// verifyObject splits a stored object into digest line + payload and
// checks the digest. It returns the payload and whether it verified.
func verifyObject(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl != hex.EncodedLen(sha256.Size) {
		return nil, false
	}
	want := string(raw[:nl])
	payload := raw[nl+1:]
	sum := sha256.Sum256(payload)
	return payload, hex.EncodeToString(sum[:]) == want
}
