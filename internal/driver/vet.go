// The vet stage: cmvet static analysis as a cached pipeline stage
// between check and emit. Results are content-addressed like compile
// artifacts — repeated requests for identical (name, source,
// extension set) return the memoized findings without re-analyzing —
// and concurrent identical requests coalesce through the same
// singleflight cache as the other stages.
package driver

import (
	"time"

	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/vet"
)

// VetRequest describes one static-analysis request.
type VetRequest struct {
	Name   string
	Source string
	Exts   parser.Options
}

// VetResult is the outcome of a Vet. OK is false when the frontend
// rejected the program (Diagnostics holds its errors) or when vet
// produced error-severity findings.
type VetResult struct {
	// Key is the content address of the vet result.
	Key string
	// Cached reports the findings came from the vet cache (or an
	// identical in-flight analysis).
	Cached      bool
	OK          bool
	Diagnostics []string
	Findings    []source.Diagnostic
	// Errors counts error-severity findings.
	Errors int
	Stages StageTimings
}

// vetEntry is a cached vet outcome. Findings are immutable after
// Check and are shared by concurrent consumers.
type vetEntry struct {
	ok       bool
	diags    []string
	findings []source.Diagnostic
	errors   int
	stages   StageTimings
}

func vetKey(req *VetRequest) string {
	return hashKey("vet", req.Name, req.Source, FormatExtensions(req.Exts))
}

// findingBytes is the retained-size contribution of a findings list.
func findingBytes(findings []source.Diagnostic) int64 {
	var n int64
	for _, f := range findings {
		n += int64(len(f.Message) + len(f.Code) + 64)
	}
	return n
}

// Vet parses and checks req.Source through the frontend cache, then
// runs the cmvet analyses over the checked AST, serving repeated
// identical requests from the vet cache.
func (d *Driver) Vet(req VetRequest) *VetResult {
	t0 := time.Now()
	d.metrics.VetRuns.Add(1)
	defer func() { d.metrics.VetLatency.Observe(time.Since(t0)) }()
	key := vetKey(&req)
	out := &VetResult{Key: key}

	c, owner, hit := d.vets.lookup(key)
	if !owner {
		if hit {
			d.metrics.VetHits.Add(1)
		} else {
			d.metrics.VetCoalesced.Add(1)
		}
		<-c.done
		res := c.res.(*vetEntry)
		out.Cached = true
		out.OK, out.Diagnostics, out.Findings = res.ok, res.diags, res.findings
		out.Errors, out.Stages = res.errors, res.stages
		return out
	}
	d.metrics.VetMisses.Add(1)

	res := &vetEntry{}
	fr, _ := d.frontend(req.Name, req.Source, req.Exts)
	res.diags = fr.diags
	res.stages = fr.stages
	if fr.prog != nil {
		t1 := time.Now()
		res.findings = vet.Check(fr.prog, fr.info)
		vetD := time.Since(t1)
		d.metrics.VetAnalysisLatency.Observe(vetD)
		res.stages.VetNS = int64(vetD)
	}
	res.errors = vet.ErrorCount(res.findings)
	res.ok = fr.ok && res.errors == 0
	d.metrics.VetFindings.Add(int64(len(res.findings)))
	for _, f := range res.findings {
		if f.Code == vet.CodeRace {
			d.metrics.VetRacesFound.Add(1)
		}
	}

	c.res = res
	close(c.done)
	d.vets.complete(key, diagBytes(res.diags)+findingBytes(res.findings), true)

	out.OK, out.Diagnostics, out.Findings = res.ok, res.diags, res.findings
	out.Errors, out.Stages = res.errors, res.stages
	return out
}
