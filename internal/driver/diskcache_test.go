// The durable-tier suite: a driver restarted onto the same cache
// directory serves prior artifacts from disk, a corrupted object is
// quarantined and recompiled (never served), and failed compiles are
// never persisted.
package driver_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cgen"
	"repro/internal/driver"
	"repro/internal/parser"
)

func compileOnce(t *testing.T, d *driver.Driver, src string) *driver.CompileResult {
	t.Helper()
	res := d.Compile(context.Background(), driver.CompileRequest{
		Name: "t.xc", Source: src, Exts: parser.AllExtensions(),
		Codegen: cgen.Options{Par: cgen.ParNone, Optimize: true},
	})
	return res
}

// objectPath mirrors the disk layout: objects/<key[:2]>/<key>.
func objectPath(dir, key string) string {
	return filepath.Join(dir, "objects", key[:2], key)
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d1 := driver.NewWith(driver.Config{CacheDir: dir})
	first := compileOnce(t, d1, okSrc)
	if !first.OK || first.Cached {
		t.Fatalf("cold compile: OK=%v Cached=%v", first.OK, first.Cached)
	}
	if m := d1.MetricsSnapshot(); m.DiskWrites != 1 || m.DiskMisses != 1 {
		t.Fatalf("writer metrics: writes=%d misses=%d", m.DiskWrites, m.DiskMisses)
	}
	if _, err := os.Stat(objectPath(dir, first.Key)); err != nil {
		t.Fatalf("artifact not on disk: %v", err)
	}

	// "Restart": a fresh driver (empty memory cache) on the same dir.
	d2 := driver.NewWith(driver.Config{CacheDir: dir})
	second := compileOnce(t, d2, okSrc)
	if !second.OK || !second.Cached {
		t.Fatalf("warm-from-disk compile: OK=%v Cached=%v", second.OK, second.Cached)
	}
	if second.Output != first.Output || second.Key != first.Key {
		t.Fatal("disk-served artifact differs from the original")
	}
	m := d2.MetricsSnapshot()
	if m.DiskHits != 1 || m.CompileExecutions != 0 {
		t.Fatalf("restart metrics: hits=%d executions=%d, want 1 and 0", m.DiskHits, m.CompileExecutions)
	}
	// The disk hit was promoted into memory: a third request is a pure
	// memory hit, no disk read.
	third := compileOnce(t, d2, okSrc)
	if !third.Cached || d2.MetricsSnapshot().DiskHits != 1 {
		t.Fatal("disk hit was not promoted into the memory tier")
	}
}

func TestDiskCacheCorruptObjectQuarantinedAndRecompiled(t *testing.T) {
	dir := t.TempDir()
	first := compileOnce(t, driver.NewWith(driver.Config{CacheDir: dir}), okSrc)
	path := objectPath(dir, first.Key)

	// Flip a byte inside the payload: the embedded digest no longer
	// matches, as after a torn write or storage bit-flip.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := driver.NewWith(driver.Config{CacheDir: dir})
	second := compileOnce(t, d2, okSrc)
	if !second.OK || second.Cached {
		t.Fatalf("compile over corrupt object: OK=%v Cached=%v (must recompile)", second.OK, second.Cached)
	}
	if second.Output != first.Output {
		t.Fatal("recompiled artifact differs")
	}
	m := d2.MetricsSnapshot()
	if m.DiskCorrupt != 1 || m.DiskHits != 0 || m.CompileExecutions != 1 {
		t.Fatalf("corruption metrics: %+v", m)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt object not quarantined: %v", err)
	}
	// The recompile rewrote a good object: the next restart is warm again.
	d3 := driver.NewWith(driver.Config{CacheDir: dir})
	if third := compileOnce(t, d3, okSrc); !third.Cached {
		t.Fatal("object not rewritten after quarantine")
	}
	if m := d3.MetricsSnapshot(); m.DiskHits != 1 || m.DiskCorrupt != 0 {
		t.Fatalf("post-recovery metrics: %+v", m)
	}
}

func TestDiskCacheTruncatedObjectIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	first := compileOnce(t, driver.NewWith(driver.Config{CacheDir: dir}), okSrc)
	path := objectPath(dir, first.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write a non-atomic writer would leave behind.
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := driver.NewWith(driver.Config{CacheDir: dir})
	if res := compileOnce(t, d2, okSrc); !res.OK || res.Cached {
		t.Fatalf("truncated object served: %+v", res)
	}
	if m := d2.MetricsSnapshot(); m.DiskCorrupt != 1 {
		t.Fatalf("DiskCorrupt = %d, want 1", m.DiskCorrupt)
	}
}

func TestDiskCacheNeverPersistsFailedCompiles(t *testing.T) {
	dir := t.TempDir()
	d1 := driver.NewWith(driver.Config{CacheDir: dir})
	bad := compileOnce(t, d1, badSrc)
	if bad.OK {
		t.Fatal("bad source compiled")
	}
	if _, err := os.Stat(objectPath(dir, bad.Key)); !os.IsNotExist(err) {
		t.Fatalf("failed compile persisted to disk: %v", err)
	}
	if m := d1.MetricsSnapshot(); m.DiskWrites != 0 {
		t.Fatalf("DiskWrites = %d for a failed compile", m.DiskWrites)
	}
	// A fresh process re-diagnoses rather than serving stale rejections.
	d2 := driver.NewWith(driver.Config{CacheDir: dir})
	bad2 := compileOnce(t, d2, badSrc)
	if bad2.OK || bad2.Cached {
		t.Fatalf("restart served a failed compile from disk: %+v", bad2)
	}
	if strings.Join(bad2.Diagnostics, "\n") != strings.Join(bad.Diagnostics, "\n") {
		t.Fatal("re-diagnosis differs")
	}
}

func TestDriverCacheBoundedUnderUniqueTraffic(t *testing.T) {
	// The regression the LRU exists for: unbounded unique sources must
	// not grow the cache without limit (the old maps retained every
	// request forever, failed ones included).
	d := driver.NewWith(driver.Config{MaxCacheEntries: 8, MaxCacheBytes: 1 << 20})
	for i := 0; i < 40; i++ {
		src := strings.Replace(okSrc, "print(s);", strings.Repeat("print(s);", i+1), 1)
		if res := compileOnce(t, d, src); !res.OK {
			t.Fatalf("unique source %d failed: %v", i, res.Diagnostics)
		}
	}
	m := d.MetricsSnapshot()
	if m.CacheEntries > 16 { // 8 per cache, frontend + compile
		t.Fatalf("cache_entries = %d over the configured bound", m.CacheEntries)
	}
	if m.CacheEvictions == 0 {
		t.Fatal("no evictions recorded under unique-source traffic")
	}
	if m.CacheBytes <= 0 {
		t.Fatalf("cache_bytes gauge = %d", m.CacheBytes)
	}
}
