package driver_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/parser"
)

// Engine selection, the vm program cache, and the vm_* observability
// counters. Semantic equivalence between engines lives in the
// dual-engine differential suite at the repository root; here we only
// care that the driver routes, caches, and counts correctly.

func TestRunEngineSelectionAndVMCache(t *testing.T) {
	d := driver.New()
	src := `int main() { int s = 0; for (int i = 0; i < 10; i++) { s = s + i; } print(s); return 0; }`

	run := func(engine string) *driver.RunResult {
		t.Helper()
		var out bytes.Buffer
		res, err := d.Run(context.Background(), driver.RunRequest{
			Name: "eng.xc", Source: src, Exts: parser.AllExtensions(),
			Engine: engine, Stdout: &out,
		})
		if err != nil || !res.OK {
			t.Fatalf("Run(engine=%q): ok=%v err=%v diags=%v", engine, res.OK, err, res.Diagnostics)
		}
		if out.String() != "45\n" {
			t.Fatalf("Run(engine=%q): stdout=%q, want \"45\\n\"", engine, out.String())
		}
		return res
	}

	// Default ("") and explicit "vm" both take the bytecode engine; the
	// second vm run must hit the compiled-program cache.
	if res := run(""); res.Engine != "vm" {
		t.Errorf("default engine = %q, want vm", res.Engine)
	}
	if res := run("vm"); res.Engine != "vm" {
		t.Errorf("engine vm ran as %q", res.Engine)
	}
	if res := run("tree"); res.Engine != "tree" {
		t.Errorf("engine tree ran as %q", res.Engine)
	}

	m := d.MetricsSnapshot()
	if m.VMCompileTotal != 1 {
		t.Errorf("vm_compile_total = %d, want 1 (one source, compiled once)", m.VMCompileTotal)
	}
	if m.VMCacheMisses != 1 || m.VMCacheHits != 1 {
		t.Errorf("vm cache hits/misses = %d/%d, want 1/1", m.VMCacheHits, m.VMCacheMisses)
	}
	if m.VMExecTotal != 2 {
		t.Errorf("vm_exec_total = %d, want 2 (tree run must not count)", m.VMExecTotal)
	}
	if m.VMDispatchNS <= 0 {
		t.Errorf("vm_dispatch_ns = %d, want > 0", m.VMDispatchNS)
	}
}

func TestRunUnknownEngineRejected(t *testing.T) {
	d := driver.New()
	_, err := d.Run(context.Background(), driver.RunRequest{
		Name: "eng.xc", Source: "int main() { return 0; }",
		Exts: parser.AllExtensions(), Engine: "jit",
	})
	if err == nil || !strings.Contains(err.Error(), `unknown engine "jit"`) {
		t.Fatalf("err = %v, want unknown-engine error", err)
	}
}

func TestRunVMPreservesTraps(t *testing.T) {
	// A trapping program must report the identical error string and a
	// non-OK exit through the vm engine (exercised exhaustively by the
	// root differential suite; this is the driver-level smoke).
	d := driver.New()
	src := `int main() { int z = 0; return 1 / z; }`
	resV, errV := d.Run(context.Background(), driver.RunRequest{
		Name: "trap.xc", Source: src, Exts: parser.AllExtensions(), Engine: "vm",
	})
	resT, errT := d.Run(context.Background(), driver.RunRequest{
		Name: "trap.xc", Source: src, Exts: parser.AllExtensions(), Engine: "tree",
	})
	if errV == nil || errT == nil {
		t.Fatalf("expected traps, got vm=%v tree=%v", errV, errT)
	}
	if errV.Error() != errT.Error() {
		t.Errorf("trap text diverged:\n  vm:   %s\n  tree: %s", errV, errT)
	}
	if resV.Engine != "vm" || resT.Engine != "tree" {
		t.Errorf("engines = %q/%q, want vm/tree", resV.Engine, resT.Engine)
	}
}
