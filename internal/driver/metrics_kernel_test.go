package driver

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/matrix"
)

// TestSnapshotKernelCounters: the matrix kernel counters ride along on
// every metrics snapshot under the /metrics JSON keys the dashboards
// scrape.
func TestSnapshotKernelCounters(t *testing.T) {
	matrix.ResetKernelStats()
	a := matrix.New(matrix.Float, 512)
	if _, err := matrix.Elementwise(matrix.OpAdd, a, a); err != nil {
		t.Fatal(err)
	}
	var m Metrics
	s := m.Snapshot()
	if s.KernelSerial == 0 {
		t.Error("kernel_serial_total not populated from matrix.KernelStats")
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"kernel_parallel_total", "kernel_serial_total", "kernel_buffers_reused"} {
		if !strings.Contains(string(raw), `"`+key+`"`) {
			t.Errorf("metrics JSON missing %q", key)
		}
	}
}
