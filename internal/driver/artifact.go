// Fleet-facing artifact transfer. A cmserved shard exposes its
// content-addressed compile artifacts to peers (and to the cmgate
// router) over GET/PUT /v1/artifact/{key}; this file is the driver
// half of that wire: exporting an artifact in the digest-framed disk
// object format, and importing a peer's object after re-verifying the
// digest locally — a shard never trusts bytes it did not hash itself.
//
// Peer cache-fill is what makes shard loss cheap: when the hash ring
// reroutes a key to a new shard, the router first copies the artifact
// from any shard that still has it, so the new owner starts warm
// instead of recompiling. Import is strictly additive: an existing
// local entry (complete or in flight) always wins over a peer's copy.
package driver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
)

// ErrNoArtifact reports an export miss: the key is not in the memory
// tier and (when enabled) not on disk either.
var ErrNoArtifact = errors.New("driver: no artifact under key")

// keyPattern is the shape of every driver cache key: 64 hex bytes of
// SHA-256. Import rejects anything else before touching the caches, so
// a hostile key cannot become a path component.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidArtifactKey reports whether key has the exact shape of a driver
// content address.
func ValidArtifactKey(key string) bool { return keyPattern.MatchString(key) }

// RouteKey is the stable content address the fleet router hashes onto
// the shard ring: identical (name, source, extension-set) triples land
// on the same shard, making the driver's singleflight fleet-wide. It
// deliberately ignores codegen flags — all artifacts of one program
// share a shard, maximizing peer-fill and cache locality. exts must be
// the canonical FormatExtensions form so spelled-out and "all" requests
// agree.
func RouteKey(name, src, exts string) string {
	return hashKey("route", name, src, exts)
}

// CanonicalExtensions normalizes an extension spec ("all", "none",
// "cilk,matrix", ...) to the canonical comma-joined form used in cache
// keys, or an error for an unknown extension name.
func CanonicalExtensions(spec string) (string, error) {
	opts, err := ParseExtensions(spec)
	if err != nil {
		return "", err
	}
	return FormatExtensions(opts), nil
}

// CompileCacheKey returns the content address Compile stores req
// under, applying the same defaulting Compile itself applies. The
// router uses it to name artifacts for peer cache-fill without
// executing anything.
func CompileCacheKey(req CompileRequest) string {
	if req.Emit == "" {
		req.Emit = "c"
	}
	return compileKey(&req)
}

// ExportArtifact returns the digest-framed object bytes stored under
// key — memory tier first, then the disk tier — exactly as
// /v1/artifact serves them. The bool reports whether the artifact
// exists; only successful compiles are ever exportable (failures are
// never cached as artifacts).
func (d *Driver) ExportArtifact(ctx context.Context, key string) ([]byte, bool) {
	if !ValidArtifactKey(key) {
		return nil, false
	}
	if res, ok := d.emits.peek(key); ok {
		er := res.(*emitResult)
		if !er.ok {
			return nil, false
		}
		payload, err := json.Marshal(&diskArtifact{Output: er.output, Diags: er.diags})
		if err != nil {
			return nil, false
		}
		d.metrics.ArtifactExports.Add(1)
		return encodeObject(payload), true
	}
	if d.disk != nil {
		if raw, ok := d.disk.getRaw(ctx, key); ok {
			d.metrics.ArtifactExports.Add(1)
			return raw, true
		}
	}
	return nil, false
}

// ImportArtifact verifies a digest-framed object received from a peer
// and installs it under key in the memory tier (and the disk tier when
// enabled). A key already present — complete or compiling right now —
// is left alone; import never overwrites local work. The error reports
// a malformed key or an object whose digest or encoding does not
// verify; a valid duplicate import is a nil-error no-op.
func (d *Driver) ImportArtifact(key string, raw []byte) error {
	if !ValidArtifactKey(key) {
		return fmt.Errorf("driver: import: malformed artifact key %q", key)
	}
	payload, ok := verifyObject(raw)
	if !ok {
		return errors.New("driver: import: artifact digest mismatch")
	}
	var art diskArtifact
	if err := json.Unmarshal(payload, &art); err != nil {
		return fmt.Errorf("driver: import: artifact payload: %w", err)
	}
	res := &emitResult{output: art.Output, diags: art.Diags, ok: true}
	if d.emits.install(key, res, int64(len(res.output))+diagBytes(res.diags)) {
		d.metrics.ArtifactImports.Add(1)
		if d.disk != nil {
			d.disk.putRaw(key, raw)
		}
	}
	return nil
}

// ParseRouteExtensions is CanonicalExtensions with the wire default: an
// empty spec means "all", matching the server's request defaulting.
func ParseRouteExtensions(spec string) (string, error) {
	if spec == "" {
		spec = "all"
	}
	return CanonicalExtensions(spec)
}
