// Observability primitives for the compile service: lock-free counters
// and fixed-bucket latency histograms built on sync/atomic only (the
// module is dependency-free by design). Snapshots are plain structs
// that marshal directly to the /metrics JSON.
package driver

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/matrix"
	"repro/internal/vm"
)

// histBoundsUS are the upper bounds (inclusive, in microseconds) of the
// latency histogram buckets; a final implicit +Inf bucket catches the
// rest. The range spans a warm cache hit (~µs) to a cold full
// compile (~ms) to a long interpreter run (~s).
var histBoundsUS = [...]int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 5_000_000, 30_000_000,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation.
type Histogram struct {
	buckets [len(histBoundsUS) + 1]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for i < len(histBoundsUS) && us > histBoundsUS[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// HistogramSnapshot is a point-in-time JSON-friendly view.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	MeanUS  float64          `json:"mean_us"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one non-empty histogram bucket; LeUS is the bucket's
// inclusive upper bound in microseconds (0 marks the +Inf bucket).
type BucketSnapshot struct {
	LeUS  int64 `json:"le_us,omitempty"`
	Count int64 `json:"count"`
}

// Snapshot captures the histogram's current state. Empty buckets are
// elided to keep /metrics output small.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	if s.Count > 0 {
		s.MeanUS = float64(h.sumNS.Load()) / float64(s.Count) / 1e3
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := BucketSnapshot{Count: n}
		if i < len(histBoundsUS) {
			b.LeUS = histBoundsUS[i]
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// Metrics aggregates the driver's counters: cache behavior plus
// per-stage latency. All fields are safe for concurrent use.
type Metrics struct {
	// Cache outcome counters. A miss executes the pipeline; a hit
	// returns a previously stored artifact; a coalesced request joined
	// an identical in-flight execution (singleflight) and shared its
	// result without executing.
	CompileHits      atomic.Int64
	CompileMisses    atomic.Int64
	CompileCoalesced atomic.Int64
	FrontendHits     atomic.Int64
	FrontendMisses   atomic.Int64

	// Pipeline executions actually performed (kept separate so tests
	// can assert "compiled exactly once" directly; a disk-tier hit is a
	// memory miss that still skips execution).
	CompileExecutions  atomic.Int64
	FrontendExecutions atomic.Int64

	// LRU evictions per cache (the caches are bounded; see Config).
	FrontendEvictions atomic.Int64
	CompileEvictions  atomic.Int64

	// Disk-tier outcomes. A corrupt read (digest mismatch) quarantines
	// the object and also counts as a miss; write errors degrade the
	// driver to memory-only caching, never fail a compile.
	DiskHits        atomic.Int64
	DiskMisses      atomic.Int64
	DiskCorrupt     atomic.Int64
	DiskWrites      atomic.Int64
	DiskWriteErrors atomic.Int64
	// DiskAbandoned counts reads abandoned because the requester's
	// context expired while the read was outstanding (hung or slow
	// disk); each also counts as a miss.
	DiskAbandoned atomic.Int64

	// Fleet artifact transfer: objects served to peers/the router over
	// /v1/artifact, and verified peer objects installed locally.
	ArtifactExports atomic.Int64
	ArtifactImports atomic.Int64

	RunsStarted   atomic.Int64
	RunsCancelled atomic.Int64
	// RunsTrapped counts executions that ended in a trap-coded
	// RuntimeError (shape/rc/oom/step/depth/panic).
	RunsTrapped atomic.Int64

	// Bytecode engine counters: actual bytecode compilations, VM
	// executions, compiled-program cache outcomes, evictions, and the
	// total nanoseconds spent inside the VM dispatch loop (the whole
	// Machine.Run, which is pure dispatch — parse/check time is
	// accounted separately).
	VMCompileTotal atomic.Int64
	VMExecTotal    atomic.Int64
	VMCacheHits    atomic.Int64
	VMCacheMisses  atomic.Int64
	VMEvictions    atomic.Int64
	VMDispatchNS   atomic.Int64
	// VMFusedSites totals the facts-proven fused chain sites emitted by
	// actual bytecode compilations (cache hits don't re-count).
	VMFusedSites atomic.Int64
	// VMWithSites totals the facts-proven with-loop sites compiled to
	// the flat engine by actual bytecode compilations.
	VMWithSites atomic.Int64

	// Facts side-table cache outcomes (the vet.Facts fusion-legality
	// oracle the bytecode compiler consumes).
	FactsHits      atomic.Int64
	FactsMisses    atomic.Int64
	FactsEvictions atomic.Int64

	// Vet stage counters: requests, cache outcomes, evictions and the
	// total findings produced by actual analysis executions.
	VetRuns      atomic.Int64
	VetHits      atomic.Int64
	VetMisses    atomic.Int64
	VetCoalesced atomic.Int64
	VetEvictions atomic.Int64
	VetFindings  atomic.Int64
	// VetRacesFound totals CM-RACE findings produced by actual analysis
	// executions (the determinacy-race detector).
	VetRacesFound atomic.Int64

	// Per-tenant run attribution (tenancy PR): executions keyed by the
	// tenant label on the RunRequest. A small map under its own mutex —
	// one entry per tenant name the registry knows, not per request.
	tenantMu     sync.Mutex
	runsByTenant map[string]int64

	// Per-stage latency histograms.
	ParseLatency       Histogram
	CheckLatency       Histogram
	EmitLatency        Histogram
	RunLatency         Histogram
	CompileLatency     Histogram // whole Compile call, hits included
	VetLatency         Histogram // whole Vet call, hits included
	VetAnalysisLatency Histogram // the analysis pass alone (misses only)
}

// MetricsSnapshot is the JSON shape served on /metrics.
type MetricsSnapshot struct {
	CompileHits        int64 `json:"compile_cache_hits"`
	CompileMisses      int64 `json:"compile_cache_misses"`
	CompileCoalesced   int64 `json:"compile_coalesced"`
	FrontendHits       int64 `json:"frontend_cache_hits"`
	FrontendMisses     int64 `json:"frontend_cache_misses"`
	CompileExecutions  int64 `json:"compile_executions"`
	FrontendExecutions int64 `json:"frontend_executions"`
	RunsStarted        int64 `json:"runs_started"`
	RunsCancelled      int64 `json:"runs_cancelled"`
	RunsTrapped        int64 `json:"runs_trapped"`

	VMCompileTotal int64 `json:"vm_compile_total"`
	VMExecTotal    int64 `json:"vm_exec_total"`
	VMCacheHits    int64 `json:"vm_cache_hits"`
	VMCacheMisses  int64 `json:"vm_cache_misses"`
	VMDispatchNS   int64 `json:"vm_dispatch_ns"`
	// Fusion: chain sites emitted by bytecode compilations, and fused
	// loops actually executed (process-wide, from vm.FusedLoopsRun).
	VMFusedSites int64 `json:"vm_fused_sites"`
	VMFusedLoops int64 `json:"vm_fused_loops"`
	// With-loop compilation: sites lowered to the flat engine by
	// bytecode compilations, and with-loops actually executed flat
	// (process-wide, from vm.WithFlatLoopsRun).
	VMWithSites    int64 `json:"with_loops_compiled"`
	VMWithFlatRuns int64 `json:"with_loops_flat_runs"`

	VetRuns      int64 `json:"vet_runs"`
	VetHits      int64 `json:"vet_cache_hits"`
	VetMisses    int64 `json:"vet_cache_misses"`
	VetCoalesced int64 `json:"vet_coalesced"`
	VetFindings  int64 `json:"vet_findings_total"`
	// CM-RACE findings from the determinacy-race detector.
	VetRacesFound int64 `json:"vet_races_found"`

	FactsHits   int64 `json:"facts_cache_hits"`
	FactsMisses int64 `json:"facts_cache_misses"`

	// Interpreter executions by tenant label (empty until a labeled
	// run arrives; anonymous runs count under "anonymous").
	RunsByTenant map[string]int64 `json:"runs_by_tenant,omitempty"`

	// In-memory cache gauges (filled by Driver.MetricsSnapshot, which
	// can see the caches; zero through Metrics.Snapshot alone) and the
	// eviction counter summed over both caches.
	CacheEntries   int64 `json:"cache_entries"`
	CacheBytes     int64 `json:"cache_bytes"`
	CacheEvictions int64 `json:"cache_evictions"`

	// Disk artifact tier (all zero when the tier is disabled).
	DiskHits        int64 `json:"disk_cache_hits"`
	DiskMisses      int64 `json:"disk_cache_misses"`
	DiskCorrupt     int64 `json:"disk_cache_corrupt"`
	DiskWrites      int64 `json:"disk_cache_writes"`
	DiskWriteErrors int64 `json:"disk_cache_write_errors"`
	DiskAbandoned   int64 `json:"disk_cache_abandoned"`

	// Fleet artifact transfer (peer cache-fill).
	ArtifactExports int64 `json:"artifact_exports"`
	ArtifactImports int64 `json:"artifact_imports"`

	CompileHitRatio float64 `json:"compile_hit_ratio"`

	// Matrix kernel execution counters (process-wide, from
	// matrix.KernelStats): constructs distributed over the worker pool,
	// constructs run serially, and backing buffers served from the
	// kernel free list instead of the allocator.
	KernelParallel int64 `json:"kernel_parallel_total"`
	KernelSerial   int64 `json:"kernel_serial_total"`
	KernelReused   int64 `json:"kernel_buffers_reused"`

	// Per-kernel execution counters (process-wide, from
	// matrix.KernelOpStats).
	KernelTranspose int64 `json:"kernel_transpose_total"`
	KernelConv      int64 `json:"kernel_conv_total"`
	KernelReduce    int64 `json:"kernel_reduce_total"`

	ParseLatency   HistogramSnapshot `json:"parse_latency"`
	CheckLatency   HistogramSnapshot `json:"check_latency"`
	EmitLatency    HistogramSnapshot `json:"emit_latency"`
	RunLatency     HistogramSnapshot `json:"run_latency"`
	CompileLatency HistogramSnapshot `json:"compile_latency"`
	VetLatency     HistogramSnapshot `json:"vet_latency"`
	VetAnalysis    HistogramSnapshot `json:"vet_analysis_latency"`
}

// countTenantRun attributes one interpreter execution to a tenant
// label ("" counts as "anonymous").
func (m *Metrics) countTenantRun(name string) {
	if name == "" {
		name = "anonymous"
	}
	m.tenantMu.Lock()
	if m.runsByTenant == nil {
		m.runsByTenant = map[string]int64{}
	}
	m.runsByTenant[name]++
	m.tenantMu.Unlock()
}

// Snapshot captures all counters at one instant (best-effort
// consistency; counters advance independently).
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		CompileHits:        m.CompileHits.Load(),
		CompileMisses:      m.CompileMisses.Load(),
		CompileCoalesced:   m.CompileCoalesced.Load(),
		FrontendHits:       m.FrontendHits.Load(),
		FrontendMisses:     m.FrontendMisses.Load(),
		CompileExecutions:  m.CompileExecutions.Load(),
		FrontendExecutions: m.FrontendExecutions.Load(),
		RunsStarted:        m.RunsStarted.Load(),
		RunsCancelled:      m.RunsCancelled.Load(),
		RunsTrapped:        m.RunsTrapped.Load(),
		VMCompileTotal:     m.VMCompileTotal.Load(),
		VMExecTotal:        m.VMExecTotal.Load(),
		VMCacheHits:        m.VMCacheHits.Load(),
		VMCacheMisses:      m.VMCacheMisses.Load(),
		VMDispatchNS:       m.VMDispatchNS.Load(),
		VMFusedSites:       m.VMFusedSites.Load(),
		VMFusedLoops:       vm.FusedLoopsRun(),
		VMWithSites:        m.VMWithSites.Load(),
		VMWithFlatRuns:     vm.WithFlatLoopsRun(),
		VetRuns:            m.VetRuns.Load(),
		VetHits:            m.VetHits.Load(),
		VetMisses:          m.VetMisses.Load(),
		VetCoalesced:       m.VetCoalesced.Load(),
		VetFindings:        m.VetFindings.Load(),
		VetRacesFound:      m.VetRacesFound.Load(),
		FactsHits:          m.FactsHits.Load(),
		FactsMisses:        m.FactsMisses.Load(),
		CacheEvictions:     m.FrontendEvictions.Load() + m.CompileEvictions.Load() + m.VetEvictions.Load() + m.VMEvictions.Load() + m.FactsEvictions.Load(),
		DiskHits:           m.DiskHits.Load(),
		DiskMisses:         m.DiskMisses.Load(),
		DiskCorrupt:        m.DiskCorrupt.Load(),
		DiskWrites:         m.DiskWrites.Load(),
		DiskWriteErrors:    m.DiskWriteErrors.Load(),
		DiskAbandoned:      m.DiskAbandoned.Load(),
		ArtifactExports:    m.ArtifactExports.Load(),
		ArtifactImports:    m.ArtifactImports.Load(),
		ParseLatency:       m.ParseLatency.Snapshot(),
		CheckLatency:       m.CheckLatency.Snapshot(),
		EmitLatency:        m.EmitLatency.Snapshot(),
		RunLatency:         m.RunLatency.Snapshot(),
		CompileLatency:     m.CompileLatency.Snapshot(),
		VetLatency:         m.VetLatency.Snapshot(),
		VetAnalysis:        m.VetAnalysisLatency.Snapshot(),
	}
	if total := s.CompileHits + s.CompileCoalesced + s.CompileMisses; total > 0 {
		s.CompileHitRatio = float64(s.CompileHits+s.CompileCoalesced) / float64(total)
	}
	m.tenantMu.Lock()
	if len(m.runsByTenant) > 0 {
		s.RunsByTenant = make(map[string]int64, len(m.runsByTenant))
		for k, v := range m.runsByTenant {
			s.RunsByTenant[k] = v
		}
	}
	m.tenantMu.Unlock()
	s.KernelParallel, s.KernelSerial, s.KernelReused = matrix.KernelStats()
	s.KernelTranspose, s.KernelConv, s.KernelReduce = matrix.KernelOpStats()
	return s
}
