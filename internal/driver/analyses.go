// The paper's §VI modular analyses (MDA / MWDA) as a memoized,
// structured report. cmd/composecheck renders it as the pass/fail
// table; the compile server serves it as JSON on /v1/analyses. Both go
// through Analyses(), so the CLI table and the endpoint cannot drift
// apart — and a long-lived service pays the analysis cost once per
// process, not per request.
package driver

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/attr"
	"repro/internal/grammar"
	"repro/internal/parser"
	"repro/internal/sem"
)

// AnalysisRow is one extension's verdict under a modular analysis.
type AnalysisRow struct {
	Name string `json:"name"`
	// Kind is "mda" (modular determinism analysis, §VI-A) or "mwda"
	// (modular well-definedness analysis, §VI-B).
	Kind   string `json:"kind"`
	Passed bool   `json:"passed"`
	// Expected is the paper's reported outcome; Passed != Expected
	// marks a reproduction regression.
	Expected bool     `json:"expected"`
	Markers  []string `json:"markers,omitempty"`
	Failures []string `json:"failures,omitempty"`
}

// AnalysisReport is the full §VI results table plus the composition
// theorem checks.
type AnalysisReport struct {
	MDA  []AnalysisRow `json:"mda"`
	MWDA []AnalysisRow `json:"mwda"`

	// CompositionOK reports that host + all passing extensions builds
	// a conflict-free LALR(1) table with CompositionStates states.
	CompositionOK     bool   `json:"composition_ok"`
	CompositionStates int    `json:"composition_states,omitempty"`
	CompositionErr    string `json:"composition_err,omitempty"`

	// SemCompositionOK reports that the composed attribute grammar is
	// complete (every attribute has a defining equation).
	SemCompositionOK  bool   `json:"sem_composition_ok"`
	SemCompositionErr string `json:"sem_composition_err,omitempty"`

	// Unexpected counts results that differ from the paper's.
	Unexpected int `json:"unexpected"`
}

var (
	analysesOnce sync.Once
	analysesRep  *AnalysisReport
)

// Analyses runs the modular analyses on the real language
// specifications once per process and returns the memoized report.
func Analyses() *AnalysisReport {
	analysesOnce.Do(func() { analysesRep = runAnalyses() })
	return analysesRep
}

func runAnalyses() *AnalysisReport {
	rep := &AnalysisReport{}
	mda := func(name string, r grammar.ComposeReport, expectPass bool) {
		row := AnalysisRow{Name: name, Kind: "mda", Passed: r.Passed, Expected: expectPass,
			Markers: r.Markers, Failures: r.Failures}
		if row.Passed != row.Expected {
			rep.Unexpected++
		}
		rep.MDA = append(rep.MDA, row)
	}

	mda("matrix vs CMINUS",
		grammar.IsComposable(parser.StartSymbol, parser.HostSpec(), parser.MatrixSpec()), true)
	mda("refcount vs CMINUS",
		grammar.IsComposable(parser.StartSymbol, parser.HostSpec(), parser.RcSpec()), true)
	mda("transform vs CMINUS+matrix",
		grammar.IsComposable(parser.StartSymbol, mergedHostMatrix(), parser.TransformSpec()), true)
	mda("cilk vs CMINUS",
		grammar.IsComposable(parser.StartSymbol, parser.HostSpec(), parser.CilkSpec()), true)
	mda("tuple (standalone) vs CMINUS",
		grammar.IsComposable(parser.StartSymbol, parser.HostSpecCore(), parser.TupleSpec()), false)
	mda("tuple with (| |) markers",
		grammar.IsComposable(parser.StartSymbol, parser.HostSpecCore(), parser.TupleFixedSpec()), true)

	tab, err := parser.BuildTable(parser.AllExtensions())
	if err != nil {
		rep.CompositionErr = err.Error()
		rep.Unexpected++
	} else {
		rep.CompositionOK = true
		rep.CompositionStates = tab.NumStates()
	}

	mwda := func(name string, r attr.MWDAReport) {
		row := AnalysisRow{Name: name, Kind: "mwda", Passed: r.Passed, Expected: true,
			Failures: r.Failures}
		if !row.Passed {
			rep.Unexpected++
		}
		rep.MWDA = append(rep.MWDA, row)
	}
	info := sem.NewInfo()
	mwda("matrix semantics vs host", attr.CheckWellDefined(sem.HostAG(info, nil), sem.MatrixAG(info)))
	mwda("transform semantics vs host+matrix", attr.CheckWellDefined(mergedSemHost(), sem.TransformAG(info)))
	mwda("cilk semantics vs host", attr.CheckWellDefined(sem.HostAG(sem.NewInfo(), nil), sem.CilkAG(sem.NewInfo())))

	g, err := sem.ComposeAG(sem.NewInfo())
	if err != nil {
		rep.SemCompositionErr = fmt.Sprintf("semantic composition FAILED: %v", err)
		rep.Unexpected++
	} else if missing := g.CheckComplete(); len(missing) > 0 {
		rep.SemCompositionErr = fmt.Sprintf("composed attribute grammar incomplete: %d missing equations", len(missing))
		rep.Unexpected++
	} else {
		rep.SemCompositionOK = true
	}
	return rep
}

// Render writes the report as cmd/composecheck's §VI pass/fail table
// (the format the golden test pins down).
func (rep *AnalysisReport) Render(w io.Writer) {
	fmt.Fprintln(w, "== Modular determinism analysis (Copper, §VI-A) ==")
	for _, row := range rep.MDA {
		status := "PASS"
		if !row.Passed {
			status = "FAIL"
		}
		note := ""
		if row.Passed != row.Expected {
			note = "  << UNEXPECTED"
		}
		fmt.Fprintf(w, "  %-28s %s%s\n", row.Name, status, note)
		if len(row.Markers) > 0 {
			fmt.Fprintf(w, "      markers: %v\n", row.Markers)
		}
		for _, f := range row.Failures {
			fmt.Fprintf(w, "      %s\n", f)
		}
	}

	fmt.Fprintln(w, "\n  (the standalone tuple extension fails on its host \"(\" initial")
	fmt.Fprintln(w, "   terminal, exactly as §VI-A reports; it is therefore packaged")
	fmt.Fprintln(w, "   with the host language in this translator)")

	fmt.Fprintln(w, "\n== Composition theorem check ==")
	if !rep.CompositionOK {
		fmt.Fprintf(w, "  composed grammar FAILED: %s\n", rep.CompositionErr)
	} else {
		fmt.Fprintf(w, "  host + matrix + transform + refcount + cilk: LALR(1), %d states, 0 conflicts\n",
			rep.CompositionStates)
	}

	fmt.Fprintln(w, "\n== Modular well-definedness analysis (Silver, §VI-B) ==")
	for _, row := range rep.MWDA {
		status := "PASS"
		if !row.Passed {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  %-38s %s\n", row.Name, status)
		for _, f := range row.Failures {
			fmt.Fprintf(w, "      %s\n", f)
		}
	}
	if !rep.SemCompositionOK {
		fmt.Fprintf(w, "  %s\n", rep.SemCompositionErr)
	} else {
		fmt.Fprintln(w, "  composed attribute grammar: complete (every attribute has a defining equation)")
	}

	if rep.Unexpected > 0 {
		fmt.Fprintf(w, "\n%d unexpected result(s)\n", rep.Unexpected)
	} else {
		fmt.Fprintln(w, "\nall analyses match the paper's reported results")
	}
}

// mergedHostMatrix treats CMINUS ∪ matrix as the host for analyzing
// the transform extension, which extends the matrix extension.
func mergedHostMatrix() *grammar.Spec {
	h := parser.HostSpec()
	m := parser.MatrixSpec()
	for _, t := range m.Terminals {
		t.Owner = grammar.HostOwner
	}
	for _, p := range m.Productions {
		p.Owner = grammar.HostOwner
	}
	h.Terminals = append(h.Terminals, m.Terminals...)
	h.Nonterminals = append(h.Nonterminals, m.Nonterminals...)
	h.Productions = append(h.Productions, m.Productions...)
	return h
}

// mergedSemHost merges the matrix attribute grammar into the host's for
// analyzing the transform semantics against host+matrix.
func mergedSemHost() *attr.AGSpec {
	info := sem.NewInfo()
	h := sem.HostAG(info, nil)
	m := sem.MatrixAG(info)
	h.NTs = append(h.NTs, m.NTs...)
	h.Attrs = append(h.Attrs, m.Attrs...)
	h.Occurs = append(h.Occurs, m.Occurs...)
	for i := range m.Prods {
		m.Prods[i].Owner = ""
	}
	h.Prods = append(h.Prods, m.Prods...)
	h.SynEqs = append(h.SynEqs, m.SynEqs...)
	h.InhEqs = append(h.InhEqs, m.InhEqs...)
	return h
}
