package driver_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cgen"
	"repro/internal/driver"
	"repro/internal/parser"
)

const okSrc = `
int main() {
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [8, 8]) genarray([8, 8], 1.0 * i + j);
	float s = with ([0] <= [k] < [8]) fold(+, 0.0, m[k, k]);
	print(s);
	return 0;
}
`

const badSrc = `int main() { return 0 0; }`

const spinSrc = `
int main() {
	int i = 0;
	while (i < 2000000000)
		i = i + 1;
	return 0;
}
`

func TestParseExtensions(t *testing.T) {
	cases := []struct {
		in   string
		want parser.Options
		err  bool
	}{
		{"matrix,transform,rc", parser.Options{Matrix: true, Transform: true, Rc: true}, false},
		{"matrix, cilk", parser.Options{Matrix: true, Cilk: true}, false},
		{"all", parser.AllExtensions(), false},
		{"", parser.Options{}, false},
		{"none", parser.Options{}, false},
		{"matrix,bogus", parser.Options{}, true},
	}
	for _, c := range cases {
		got, err := driver.ParseExtensions(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseExtensions(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseExtensions(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("ParseExtensions(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	// Round trip through the canonical form.
	if s := driver.FormatExtensions(parser.AllExtensions()); s != "matrix,transform,rc,cilk" {
		t.Errorf("FormatExtensions(all) = %q", s)
	}
	if s := driver.FormatExtensions(parser.Options{}); s != "none" {
		t.Errorf("FormatExtensions(none) = %q", s)
	}
}

func TestCompileCacheHitAndKeying(t *testing.T) {
	d := driver.New()
	req := driver.CompileRequest{
		Name: "t.xc", Source: okSrc, Exts: parser.AllExtensions(),
		Codegen: cgen.Options{Par: cgen.ParNone, Optimize: true},
	}
	first := d.Compile(context.Background(), req)
	if !first.OK || first.Cached {
		t.Fatalf("first compile: OK=%v Cached=%v diags=%v", first.OK, first.Cached, first.Diagnostics)
	}
	second := d.Compile(context.Background(), req)
	if !second.OK || !second.Cached {
		t.Fatalf("second compile: OK=%v Cached=%v", second.OK, second.Cached)
	}
	if second.Output != first.Output || second.Key != first.Key {
		t.Fatal("cached artifact differs from original")
	}
	m := d.Metrics().Snapshot()
	if m.CompileHits != 1 || m.CompileMisses != 1 || m.CompileExecutions != 1 {
		t.Fatalf("metrics after hit: %+v", m)
	}

	// A flag change is a different content address...
	req.Codegen.Par = cgen.ParOMP
	third := d.Compile(context.Background(), req)
	if third.Cached || third.Key == first.Key {
		t.Fatalf("flag change reused cache: Cached=%v", third.Cached)
	}
	// ...but shares the cached frontend (parse+check) result.
	if got := d.Metrics().Snapshot(); got.FrontendExecutions != 1 {
		t.Fatalf("frontend ran %d times, want 1", got.FrontendExecutions)
	}
}

func TestCompileErrorsAreCachedWithDiagnostics(t *testing.T) {
	d := driver.New()
	req := driver.CompileRequest{Name: "bad.xc", Source: badSrc, Exts: parser.AllExtensions()}
	first := d.Compile(context.Background(), req)
	if first.OK {
		t.Fatal("bad source compiled")
	}
	// The context-aware scanner reports the offending position and the
	// token it could not accept (the front end's error recovery).
	joined := strings.Join(first.Diagnostics, "\n")
	if len(first.Diagnostics) == 0 ||
		!strings.Contains(joined, "bad.xc:1:") || !strings.Contains(joined, "error") {
		t.Fatalf("diagnostics = %v, want a positioned parse error", first.Diagnostics)
	}
	second := d.Compile(context.Background(), req)
	if second.OK || !second.Cached {
		t.Fatalf("second compile of bad source: OK=%v Cached=%v", second.OK, second.Cached)
	}
	if strings.Join(second.Diagnostics, "\n") != strings.Join(first.Diagnostics, "\n") {
		t.Fatal("cached diagnostics differ")
	}
}

func TestConcurrentIdenticalCompilesExecuteOnce(t *testing.T) {
	d := driver.New()
	req := driver.CompileRequest{
		Name: "t.xc", Source: okSrc, Exts: parser.AllExtensions(),
		Codegen: cgen.Options{Par: cgen.ParPthread, Optimize: true},
	}
	const n = 16
	var wg sync.WaitGroup
	results := make([]*driver.CompileResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = d.Compile(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !r.OK || r.Output != results[0].Output {
			t.Fatalf("request %d: OK=%v or output mismatch", i, r.OK)
		}
	}
	m := d.Metrics().Snapshot()
	if m.CompileExecutions != 1 {
		t.Fatalf("pipeline executed %d times for %d identical requests", m.CompileExecutions, n)
	}
	if m.CompileHits+m.CompileCoalesced != n-1 || m.CompileMisses != 1 {
		t.Fatalf("hit accounting: %+v", m)
	}
}

func TestRunExecutesAndReusesFrontend(t *testing.T) {
	d := driver.New()
	var out bytes.Buffer
	req := driver.RunRequest{Name: "t.xc", Source: okSrc, Exts: parser.AllExtensions(),
		Threads: 2, Stdout: &out}
	res, err := d.Run(context.Background(), req)
	if err != nil || !res.OK || res.ExitCode != 0 {
		t.Fatalf("run: err=%v res=%+v", err, res)
	}
	if strings.TrimSpace(out.String()) != "56" { // sum of the 8x8 diagonal values 2k
		t.Fatalf("stdout = %q, want 56", out.String())
	}
	if res.Cached {
		t.Fatal("first run claims a frontend cache hit")
	}
	out.Reset()
	res2, err := d.Run(context.Background(), driver.RunRequest{
		Name: "t.xc", Source: okSrc, Exts: parser.AllExtensions(), Threads: -3, Stdout: &out})
	if err != nil || !res2.OK {
		t.Fatalf("second run: err=%v OK=%v", err, res2.OK)
	}
	if !res2.Cached {
		t.Fatal("second run did not reuse the cached frontend")
	}
}

func TestRunHonorsContextDeadline(t *testing.T) {
	d := driver.New()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := d.Run(ctx, driver.RunRequest{
		Name: "spin.xc", Source: spinSrc, Exts: parser.AllExtensions(), Threads: 1})
	if err == nil {
		t.Fatal("runaway program completed without a deadline error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
	if got := d.Metrics().Snapshot(); got.RunsCancelled != 1 {
		t.Fatalf("RunsCancelled = %d, want 1", got.RunsCancelled)
	}
}

func TestAnalysesMemoizedAndMatchPaper(t *testing.T) {
	a := driver.Analyses()
	if a != driver.Analyses() {
		t.Fatal("Analyses is not memoized")
	}
	if a.Unexpected != 0 {
		t.Fatalf("analyses report %d unexpected results", a.Unexpected)
	}
	if len(a.MDA) != 6 || len(a.MWDA) != 3 {
		t.Fatalf("report shape: %d MDA rows, %d MWDA rows", len(a.MDA), len(a.MWDA))
	}
	if !a.CompositionOK || !a.SemCompositionOK {
		t.Fatalf("composition checks failed: %+v", a)
	}
	var buf bytes.Buffer
	a.Render(&buf)
	for _, want := range []string{
		"matrix vs CMINUS             PASS",
		"tuple (standalone) vs CMINUS FAIL",
		"0 conflicts",
		"all analyses match the paper's reported results",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

// quickstartSrc is the Fig 1 temporal-mean program from
// examples/quickstart — the acceptance workload for warm-vs-cold
// compile latency. Compare with:
//
//	go test ./internal/driver -bench=BenchmarkCompileService -benchtime=100x | benchstat -
func BenchmarkCompileService(b *testing.B) {
	const quickstartSrc = `
int main() {
	Matrix float <3> mat = readMatrix("ssh.data");
	int m = dimSize(mat, 0);
	int n = dimSize(mat, 1);
	int p = dimSize(mat, 2);
	Matrix float <2> means;
	means = with ([0, 0] <= [i, j] < [m, n])
		genarray([m, n],
			with ([0] <= [k] < [p])
				fold(+, 0.0, mat[i, j, k]) / p);
	writeMatrix("means.data", means);
	return 0;
}
`
	req := driver.CompileRequest{
		Name: "quickstart.xc", Source: quickstartSrc, Exts: parser.AllExtensions(),
		Codegen: cgen.Options{Par: cgen.ParPthread, Optimize: true},
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := driver.New().Compile(context.Background(), req); !res.OK {
				b.Fatal(res.Diagnostics)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		d := driver.New()
		if res := d.Compile(context.Background(), req); !res.OK {
			b.Fatal(res.Diagnostics)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := d.Compile(context.Background(), req); !res.OK || !res.Cached {
				b.Fatal("warm request missed the cache")
			}
		}
	})
}
