// Bounded in-memory cache for the driver: an LRU over singleflight
// slots with caps on both entry count and approximate bytes. The
// original driver kept plain maps that grew without bound — every
// distinct source text ever compiled (including failed compiles) was
// retained for the life of the process. Under sustained traffic from
// many users that is an OOM with extra steps; the LRU makes the
// memory ceiling a configuration knob instead.
//
// Concurrency contract: an in-flight slot (whose pipeline execution
// has not completed) is pinned — it is never evicted, so waiters
// blocked on call.done always observe the result. Only completed
// entries participate in eviction.
package driver

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheEntry is one LRU node: a singleflight slot plus its accounting.
type cacheEntry struct {
	key   string
	c     *call
	bytes int64
	done  bool // completed entries are evictable; in-flight ones are pinned
}

// lruCache bounds a singleflight map by entry count and approximate
// bytes. The zero value is not usable; call newLRUCache.
type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	index      map[string]*list.Element
	bytes      int64
	completed  int           // done entries; in-flight slots are not counted
	evictions  *atomic.Int64 // shared eviction counter (driver metrics)
}

func newLRUCache(maxEntries int, maxBytes int64, evictions *atomic.Int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		index:      map[string]*list.Element{},
		evictions:  evictions,
	}
}

// lookup finds or installs the singleflight slot for key. It returns
// the slot and whether the caller must execute the pipeline (owner).
// For non-owners, hit reports the result was already complete at
// lookup time (a pure cache hit) as opposed to joining an in-flight
// execution. A hit promotes the entry to most-recently-used.
func (l *lruCache) lookup(key string) (c *call, owner, hit bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.index[key]; ok {
		e := el.Value.(*cacheEntry)
		l.ll.MoveToFront(el)
		return e.c, false, e.done
	}
	c = &call{done: make(chan struct{})}
	el := l.ll.PushFront(&cacheEntry{key: key, c: c})
	l.index[key] = el
	return c, true, false
}

// complete marks the owner's execution finished: the entry becomes
// evictable, is charged bytes, and the cache is trimmed back under its
// caps. If retain is false the entry is dropped immediately (the
// result is still delivered to any waiters already holding the call).
func (l *lruCache) complete(key string, bytes int64, retain bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.index[key]
	if !ok {
		return
	}
	if !retain {
		l.removeLocked(el)
		return
	}
	e := el.Value.(*cacheEntry)
	e.done = true
	e.bytes = bytes
	l.bytes += bytes
	l.completed++
	l.trimLocked()
}

// trimLocked evicts completed entries, least recently used first,
// until both caps hold. In-flight entries are skipped: they hold no
// accounted bytes and must stay reachable for their waiters.
func (l *lruCache) trimLocked() {
	over := func() bool {
		return l.completed > l.maxEntries || l.bytes > l.maxBytes
	}
	el := l.ll.Back()
	for el != nil && over() {
		prev := el.Prev()
		if e := el.Value.(*cacheEntry); e.done {
			l.removeLocked(el)
			l.evictions.Add(1)
		}
		el = prev
	}
}

func (l *lruCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	if e.done {
		l.bytes -= e.bytes
		l.completed--
	}
	l.ll.Remove(el)
	delete(l.index, e.key)
}

// peek returns the completed result stored under key without
// installing a slot, promoting the entry, or blocking on an in-flight
// execution. Fleet artifact export uses it: a peer asking "do you have
// this?" must never create a slot it will not fill.
func (l *lruCache) peek(key string) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.index[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.done {
		return nil, false
	}
	return e.c.res, true
}

// install puts an already-completed result under key if no slot exists
// yet, reporting whether it was installed. An existing entry — complete
// or in flight — wins: a peer-imported artifact never replaces a local
// result or races an execution already under way.
func (l *lruCache) install(key string, res any, bytes int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.index[key]; ok {
		return false
	}
	c := &call{done: make(chan struct{}), res: res}
	close(c.done)
	el := l.ll.PushFront(&cacheEntry{key: key, c: c, bytes: bytes, done: true})
	l.index[key] = el
	l.bytes += bytes
	l.completed++
	l.trimLocked()
	return true
}

// stats reports the completed-entry count and accounted bytes.
func (l *lruCache) stats() (entries int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.completed, l.bytes
}
