package driver_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/driver"
	"repro/internal/parser"
	"repro/internal/vet"
)

const mismatchSrc = `
int main() {
	Matrix float <2> a = init(Matrix float <2>, 3, 4);
	Matrix float <2> b = init(Matrix float <2>, 5, 6);
	Matrix float <2> c = a * b;
	print(c);
	return 0;
}
`

func TestVetCachesResults(t *testing.T) {
	d := driver.New()
	req := driver.VetRequest{Name: "t.xc", Source: okSrc, Exts: parser.AllExtensions()}

	first := d.Vet(req)
	if !first.OK || first.Cached {
		t.Fatalf("first vet: OK=%v Cached=%v diags=%v findings=%v",
			first.OK, first.Cached, first.Diagnostics, first.Findings)
	}
	if first.Stages.VetNS <= 0 {
		t.Errorf("cold vet reported no analysis time: %+v", first.Stages)
	}

	second := d.Vet(req)
	if !second.OK || !second.Cached {
		t.Fatalf("second vet: OK=%v Cached=%v", second.OK, second.Cached)
	}
	if second.Key != first.Key || second.Errors != first.Errors ||
		len(second.Findings) != len(first.Findings) {
		t.Fatalf("cached vet result differs: first=%+v second=%+v", first, second)
	}

	m := d.Metrics().Snapshot()
	if m.VetRuns != 2 || m.VetHits != 1 || m.VetMisses != 1 {
		t.Fatalf("vet metrics: runs=%d hits=%d misses=%d", m.VetRuns, m.VetHits, m.VetMisses)
	}
	if m.VetLatency.Count != 2 || m.VetAnalysis.Count != 1 {
		t.Fatalf("vet latency observed %d times (want 2), analysis %d (want 1)",
			m.VetLatency.Count, m.VetAnalysis.Count)
	}

	// The vet key is a distinct content address from the compile key for
	// the same source (different artifact kinds must not collide).
	comp := d.Compile(context.Background(), driver.CompileRequest{Name: "t.xc", Source: okSrc, Exts: parser.AllExtensions()})
	if comp.Key == first.Key {
		t.Fatal("vet and compile share a cache key")
	}
}

func TestVetFindingsSurviveTheCache(t *testing.T) {
	d := driver.New()
	req := driver.VetRequest{Name: "mm.xc", Source: mismatchSrc, Exts: parser.AllExtensions()}

	first := d.Vet(req)
	if first.OK || first.Errors != 1 || len(first.Findings) != 1 {
		t.Fatalf("first vet: OK=%v Errors=%d Findings=%v", first.OK, first.Errors, first.Findings)
	}
	f := first.Findings[0]
	if f.Code != vet.CodeShapeMismatch {
		t.Fatalf("finding code = %q, want %q", f.Code, vet.CodeShapeMismatch)
	}
	if f.Span.File != "mm.xc" || f.Span.Start.Line != 5 {
		t.Fatalf("finding span = %v, want mm.xc line 5", f.Span)
	}

	second := d.Vet(req)
	if !second.Cached || second.OK {
		t.Fatalf("second vet: Cached=%v OK=%v", second.Cached, second.OK)
	}
	if len(second.Findings) != 1 || second.Findings[0].String() != f.String() {
		t.Fatalf("cached findings differ: %v vs %v", second.Findings, first.Findings)
	}

	m := d.Metrics().Snapshot()
	if m.VetFindings != 1 {
		t.Fatalf("vet_findings_total = %d, want 1 (hits must not re-count)", m.VetFindings)
	}
}

func TestVetReusesCachedFrontend(t *testing.T) {
	d := driver.New()
	// Compile first: parse+check results land in the frontend cache.
	if res := d.Compile(context.Background(), driver.CompileRequest{Name: "t.xc", Source: okSrc, Exts: parser.AllExtensions()}); !res.OK {
		t.Fatalf("compile failed: %v", res.Diagnostics)
	}
	if res := d.Vet(driver.VetRequest{Name: "t.xc", Source: okSrc, Exts: parser.AllExtensions()}); !res.OK {
		t.Fatalf("vet failed: %v", res.Diagnostics)
	}
	m := d.Metrics().Snapshot()
	if m.FrontendExecutions != 1 {
		t.Fatalf("frontend ran %d times, want 1 (vet should reuse the compile's parse+check)", m.FrontendExecutions)
	}
}

func TestVetOnFrontendErrorsReportsDiagnostics(t *testing.T) {
	d := driver.New()
	res := d.Vet(driver.VetRequest{Name: "bad.xc", Source: badSrc, Exts: parser.AllExtensions()})
	if res.OK || len(res.Diagnostics) == 0 {
		t.Fatalf("vet of unparsable source: OK=%v diags=%v", res.OK, res.Diagnostics)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("no analysis should run on a failed parse, got findings %v", res.Findings)
	}
}

func TestConcurrentIdenticalVetsAnalyzeOnce(t *testing.T) {
	d := driver.New()
	req := driver.VetRequest{Name: "mm.xc", Source: mismatchSrc, Exts: parser.AllExtensions()}
	const n = 16
	var wg sync.WaitGroup
	results := make([]*driver.VetResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = d.Vet(req)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.OK || len(r.Findings) != 1 {
			t.Fatalf("result %d: OK=%v findings=%v", i, r.OK, r.Findings)
		}
	}
	m := d.Metrics().Snapshot()
	if m.VetMisses != 1 {
		t.Fatalf("analysis executed %d times, want 1 (coalesced: %d, hits: %d)",
			m.VetMisses, m.VetCoalesced, m.VetHits)
	}
	if m.VetHits+m.VetCoalesced != n-1 {
		t.Fatalf("hits %d + coalesced %d != %d", m.VetHits, m.VetCoalesced, n-1)
	}
}
