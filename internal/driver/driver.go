// Package driver is the staged compile/run pipeline behind every entry
// point (cmc, cmrun, cmserved): parse with the composed extension
// grammars → check with the composed attribute-grammar semantics →
// {emit C / print AST, interpret}. It factors the glue formerly
// duplicated across cmd/ mains into one place and adds what a
// long-lived compile service needs on top of the one-shot internal/core
// facade:
//
//   - a content-addressed artifact cache — SHA-256 of (source ⊕
//     extension set ⊕ codegen flags) keys parsed+checked programs and
//     emitted artifacts, so repeated requests skip the pipeline;
//   - singleflight request coalescing — concurrent identical requests
//     execute the pipeline exactly once and share the result;
//   - per-stage latency histograms and cache hit/miss counters
//     (see Metrics) for the service's /metrics endpoint;
//   - memoized §VI analysis results (see Analyses) so the analyses are
//     run once per process, not once per request.
//
// The composed grammar tables themselves are memoized per extension
// set inside internal/parser; the driver's frontend cache sits above
// that and memoizes whole parse+check results per source text.
package driver

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/cgen"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// Driver is a concurrency-safe compile/run pipeline with a
// content-addressed cache. The zero value is not usable; call New.
type Driver struct {
	metrics Metrics

	mu    sync.Mutex
	front map[string]*call // frontend (parse+check) results by content key
	emits map[string]*call // emitted artifacts by content key
}

// New returns an empty driver.
func New() *Driver {
	return &Driver{
		front: map[string]*call{},
		emits: map[string]*call{},
	}
}

// Metrics exposes the driver's counters (live; use Snapshot for a
// consistent view).
func (d *Driver) Metrics() *Metrics { return &d.metrics }

// call is one singleflight cache slot: the first requester executes and
// closes done; later requesters block on done and share res.
type call struct {
	done chan struct{}
	res  any
}

// StageTimings records where a request's time went, in nanoseconds.
// Cached requests carry the stage times of the original execution.
type StageTimings struct {
	ParseNS int64 `json:"parse_ns"`
	CheckNS int64 `json:"check_ns"`
	EmitNS  int64 `json:"emit_ns,omitempty"`
	RunNS   int64 `json:"run_ns,omitempty"`
}

// frontResult is a cached parse+check outcome. prog and info are
// immutable after Check and are shared by concurrent consumers.
type frontResult struct {
	prog   *ast.Program
	info   *sem.Info
	diags  []string
	ok     bool
	stages StageTimings
}

// emitResult is a cached back-end artifact (C text or printed AST).
type emitResult struct {
	output string
	diags  []string
	ok     bool
	stages StageTimings
}

// CompileRequest describes one translation.
type CompileRequest struct {
	// Name labels diagnostics (it participates in the cache key, since
	// diagnostics embed it).
	Name   string
	Source string
	Exts   parser.Options
	// Emit selects the artifact: "c" (default) or "ast".
	Emit    string
	Codegen cgen.Options
}

// CompileResult is the outcome of a Compile.
type CompileResult struct {
	// Key is the content address of the artifact.
	Key string
	// Cached reports that the pipeline did not execute for this
	// request: the artifact was already stored, or an identical
	// in-flight request produced it.
	Cached      bool
	OK          bool
	Output      string
	Diagnostics []string
	Stages      StageTimings
}

// RunRequest describes one interpreter execution.
type RunRequest struct {
	Name   string
	Source string
	Exts   parser.Options
	// Threads is the worker-pool size; <= 0 selects
	// runtime.GOMAXPROCS(0), never a silent sequential fallback.
	Threads  int
	MaxSteps int64
	// MaxCells bounds the cells the program may allocate (0 =
	// unlimited); exceeding it fails with the "oom" trap.
	MaxCells int64
	// Dir is the base directory for readMatrix/writeMatrix; empty with
	// non-nil Files confines file I/O to the in-memory map.
	Dir    string
	Files  map[string]*matrix.Matrix
	Stdout io.Writer
}

// RunResult is the outcome of a Run.
type RunResult struct {
	Key string
	// Cached reports the parse+check half came from the frontend cache.
	Cached      bool
	OK          bool
	Diagnostics []string
	ExitCode    int
	Stages      StageTimings
}

// hashKey content-addresses a request: a SHA-256 over length-prefixed
// fields, so no field boundary ambiguity.
func hashKey(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func frontKey(name, src string, exts parser.Options) string {
	return hashKey("front", name, src, FormatExtensions(exts))
}

func compileKey(req *CompileRequest) string {
	return hashKey("compile", req.Name, req.Source, FormatExtensions(req.Exts),
		req.Emit, string(req.Codegen.Par), fmt.Sprint(req.Codegen.Optimize))
}

// lookup finds or installs the singleflight slot for key in m. It
// returns the slot and whether the caller must execute (owner). For
// non-owners, hit reports the result was already complete at lookup
// time (a pure cache hit) as opposed to joining an in-flight execution.
func (d *Driver) lookup(m map[string]*call, key string) (c *call, owner, hit bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := m[key]; ok {
		select {
		case <-c.done:
			return c, false, true
		default:
			return c, false, false
		}
	}
	c = &call{done: make(chan struct{})}
	m[key] = c
	return c, true, false
}

// frontend returns the parse+check result for (name, src, exts),
// executing at most once per content key.
func (d *Driver) frontend(name, src string, exts parser.Options) (*frontResult, bool) {
	key := frontKey(name, src, exts)
	c, owner, hit := d.lookup(d.front, key)
	if !owner {
		if hit {
			d.metrics.FrontendHits.Add(1)
		}
		<-c.done
		return c.res.(*frontResult), true
	}
	d.metrics.FrontendMisses.Add(1)
	d.metrics.FrontendExecutions.Add(1)
	res := &frontResult{}
	var diags source.Diagnostics

	t0 := time.Now()
	res.prog = parser.ParseFile(name, src, exts, &diags)
	parseD := time.Since(t0)
	d.metrics.ParseLatency.Observe(parseD)
	res.stages.ParseNS = int64(parseD)

	if res.prog != nil {
		t1 := time.Now()
		res.info = sem.Check(res.prog, &diags)
		checkD := time.Since(t1)
		d.metrics.CheckLatency.Observe(checkD)
		res.stages.CheckNS = int64(checkD)
	}
	for _, diag := range diags.All() {
		res.diags = append(res.diags, diag.String())
	}
	res.ok = res.prog != nil && !diags.HasErrors()

	c.res = res
	close(c.done)
	return res, false
}

// Compile translates req.Source, serving repeated identical requests
// from the artifact cache and coalescing concurrent identical requests
// into one pipeline execution.
func (d *Driver) Compile(req CompileRequest) *CompileResult {
	t0 := time.Now()
	defer func() { d.metrics.CompileLatency.Observe(time.Since(t0)) }()
	if req.Emit == "" {
		req.Emit = "c"
	}
	key := compileKey(&req)
	out := &CompileResult{Key: key}

	c, owner, hit := d.lookup(d.emits, key)
	if !owner {
		if hit {
			d.metrics.CompileHits.Add(1)
		} else {
			d.metrics.CompileCoalesced.Add(1)
		}
		<-c.done
		res := c.res.(*emitResult)
		out.Cached = true
		out.OK, out.Output, out.Diagnostics, out.Stages = res.ok, res.output, res.diags, res.stages
		return out
	}
	d.metrics.CompileMisses.Add(1)
	d.metrics.CompileExecutions.Add(1)

	res := &emitResult{}
	fr, _ := d.frontend(req.Name, req.Source, req.Exts)
	res.diags = fr.diags
	res.stages = fr.stages
	if fr.ok {
		t1 := time.Now()
		output, err := emit(fr, &req)
		emitD := time.Since(t1)
		d.metrics.EmitLatency.Observe(emitD)
		res.stages.EmitNS = int64(emitD)
		if err != nil {
			res.diags = append(res.diags,
				fmt.Sprintf("%s: error: code generation: %v", fr.prog.Span(), err))
		} else {
			res.output, res.ok = output, true
		}
	}
	c.res = res
	close(c.done)

	out.OK, out.Output, out.Diagnostics, out.Stages = res.ok, res.output, res.diags, res.stages
	return out
}

// emit produces the requested artifact from a checked program.
func emit(fr *frontResult, req *CompileRequest) (string, error) {
	switch req.Emit {
	case "ast":
		return ast.Print(fr.prog), nil
	case "c":
		return cgen.Generate(fr.prog, fr.info, req.Codegen)
	default:
		return "", fmt.Errorf("unknown emit kind %q (have: c, ast)", req.Emit)
	}
}

// Run parses and checks req.Source through the frontend cache, then
// executes it on the parallel interpreter. The returned error is nil
// unless execution itself failed (including ctx cancellation); frontend
// failures are reported through RunResult.OK and Diagnostics.
func (d *Driver) Run(ctx context.Context, req RunRequest) (*RunResult, error) {
	out := &RunResult{Key: frontKey(req.Name, req.Source, req.Exts)}
	fr, cached := d.frontend(req.Name, req.Source, req.Exts)
	out.Cached = cached
	out.Diagnostics = fr.diags
	out.Stages = fr.stages
	if !fr.ok {
		return out, nil
	}
	threads := req.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	d.metrics.RunsStarted.Add(1)
	i := interp.New(fr.prog, fr.info, interp.Options{
		Threads:  threads,
		Stdout:   req.Stdout,
		Dir:      req.Dir,
		MaxSteps: req.MaxSteps,
		MaxCells: req.MaxCells,
		Files:    req.Files,
		Context:  ctx,
	})
	defer i.Close()
	t0 := time.Now()
	code, err := i.Run()
	runD := time.Since(t0)
	d.metrics.RunLatency.Observe(runD)
	out.Stages.RunNS = int64(runD)
	if err != nil {
		if ctx != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			d.metrics.RunsCancelled.Add(1)
		}
		var rte *interp.RuntimeError
		if errors.As(err, &rte) && rte.Trap != interp.TrapNone {
			d.metrics.RunsTrapped.Add(1)
		}
		return out, err
	}
	out.OK = true
	out.ExitCode = code
	return out, nil
}
