// Package driver is the staged compile/run pipeline behind every entry
// point (cmc, cmrun, cmserved): parse with the composed extension
// grammars → check with the composed attribute-grammar semantics →
// {emit C / print AST, interpret}. It factors the glue formerly
// duplicated across cmd/ mains into one place and adds what a
// long-lived compile service needs on top of the one-shot internal/core
// facade:
//
//   - a content-addressed artifact cache — SHA-256 of (source ⊕
//     extension set ⊕ codegen flags) keys parsed+checked programs and
//     emitted artifacts, so repeated requests skip the pipeline; both
//     caches are LRU-bounded (entries and approximate bytes, see
//     Config) so the daemon's memory ceiling is a knob, not traffic;
//   - an optional crash-safe on-disk artifact tier (Config.CacheDir):
//     compile artifacts persist across restarts, written atomically
//     and digest-verified on read (see diskcache.go);
//   - singleflight request coalescing — concurrent identical requests
//     execute the pipeline exactly once and share the result;
//   - per-stage latency histograms and cache hit/miss counters
//     (see Metrics) for the service's /metrics endpoint;
//   - memoized §VI analysis results (see Analyses) so the analyses are
//     run once per process, not once per request.
//
// The composed grammar tables themselves are memoized per extension
// set inside internal/parser; the driver's frontend cache sits above
// that and memoizes whole parse+check results per source text.
package driver

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/ast"
	"repro/internal/cgen"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/vet"
	"repro/internal/vm"
)

// Config bounds a Driver's caches. Zero values select the defaults;
// the caches are always bounded (there is deliberately no "unlimited"
// setting — an unbounded cache under sustained unique traffic is an
// OOM scheduled for later).
type Config struct {
	// MaxCacheEntries caps completed entries per cache (frontend and
	// compile each); default 4096.
	MaxCacheEntries int
	// MaxCacheBytes caps the approximate bytes retained per cache;
	// default 256 MiB. Frontend entries are charged the source length
	// (a proxy for AST size); compile entries the artifact + diagnostic
	// lengths.
	MaxCacheBytes int64
	// CacheDir enables the on-disk artifact tier (see diskcache.go):
	// successful compile artifacts are persisted content-addressed and
	// survive restarts. Empty disables the tier. If the directory is
	// unusable the driver runs memory-only (recorded in
	// DiskWriteErrors).
	CacheDir string
}

// Driver is a concurrency-safe compile/run pipeline with a bounded
// content-addressed cache and an optional on-disk artifact tier. The
// zero value is not usable; call New or NewWith.
type Driver struct {
	metrics Metrics

	front *lruCache // frontend (parse+check) results by content key
	emits *lruCache // emitted artifacts by content key
	vets  *lruCache // vet findings by content key
	vms   *lruCache // compiled bytecode programs by content key
	facts *lruCache // vet.Facts side tables by content key
	disk  *diskCache
}

// New returns a driver with the default cache bounds and no disk tier.
func New() *Driver { return NewWith(Config{}) }

// NewWith returns a driver configured by cfg; see Config for defaults.
func NewWith(cfg Config) *Driver {
	if cfg.MaxCacheEntries <= 0 {
		cfg.MaxCacheEntries = 4096
	}
	if cfg.MaxCacheBytes <= 0 {
		cfg.MaxCacheBytes = 256 << 20
	}
	d := &Driver{}
	d.front = newLRUCache(cfg.MaxCacheEntries, cfg.MaxCacheBytes, &d.metrics.FrontendEvictions)
	d.emits = newLRUCache(cfg.MaxCacheEntries, cfg.MaxCacheBytes, &d.metrics.CompileEvictions)
	d.vets = newLRUCache(cfg.MaxCacheEntries, cfg.MaxCacheBytes, &d.metrics.VetEvictions)
	d.vms = newLRUCache(cfg.MaxCacheEntries, cfg.MaxCacheBytes, &d.metrics.VMEvictions)
	d.facts = newLRUCache(cfg.MaxCacheEntries, cfg.MaxCacheBytes, &d.metrics.FactsEvictions)
	if cfg.CacheDir != "" {
		disk, err := newDiskCache(cfg.CacheDir, &d.metrics)
		if err != nil {
			d.metrics.DiskWriteErrors.Add(1)
		} else {
			d.disk = disk
		}
	}
	return d
}

// Metrics exposes the driver's counters (live; use Snapshot for a
// consistent view).
func (d *Driver) Metrics() *Metrics { return &d.metrics }

// MetricsSnapshot captures the counters plus the cache gauges
// (entries, bytes) that only the driver itself can read.
func (d *Driver) MetricsSnapshot() MetricsSnapshot {
	s := d.metrics.Snapshot()
	fe, fb := d.front.stats()
	ee, eb := d.emits.stats()
	ve, vb := d.vets.stats()
	me, mb := d.vms.stats()
	ke, kb := d.facts.stats()
	s.CacheEntries = int64(fe + ee + ve + me + ke)
	s.CacheBytes = fb + eb + vb + mb + kb
	return s
}

// call is one singleflight cache slot: the first requester executes and
// closes done; later requesters block on done and share res.
type call struct {
	done chan struct{}
	res  any
}

// StageTimings records where a request's time went, in nanoseconds.
// Cached requests carry the stage times of the original execution.
type StageTimings struct {
	ParseNS int64 `json:"parse_ns"`
	CheckNS int64 `json:"check_ns"`
	VetNS   int64 `json:"vet_ns,omitempty"`
	EmitNS  int64 `json:"emit_ns,omitempty"`
	RunNS   int64 `json:"run_ns,omitempty"`
}

// frontResult is a cached parse+check outcome. prog and info are
// immutable after Check and are shared by concurrent consumers.
type frontResult struct {
	prog   *ast.Program
	info   *sem.Info
	diags  []string
	ok     bool
	stages StageTimings
}

// emitResult is a cached back-end artifact (C text or printed AST).
type emitResult struct {
	output string
	diags  []string
	ok     bool
	stages StageTimings
}

// CompileRequest describes one translation.
type CompileRequest struct {
	// Name labels diagnostics (it participates in the cache key, since
	// diagnostics embed it).
	Name   string
	Source string
	Exts   parser.Options
	// Emit selects the artifact: "c" (default) or "ast".
	Emit    string
	Codegen cgen.Options
}

// CompileResult is the outcome of a Compile.
type CompileResult struct {
	// Key is the content address of the artifact.
	Key string
	// Cached reports that the pipeline did not execute for this
	// request: the artifact was already stored, or an identical
	// in-flight request produced it.
	Cached      bool
	OK          bool
	Output      string
	Diagnostics []string
	Stages      StageTimings
	// Canceled reports the request's context was already dead on
	// arrival: no pipeline work was started and nothing was cached.
	// A disconnected client costs nothing.
	Canceled bool
}

// RunRequest describes one interpreter execution.
type RunRequest struct {
	Name   string
	Source string
	Exts   parser.Options
	// Threads is the worker-pool size; <= 0 selects
	// runtime.GOMAXPROCS(0), never a silent sequential fallback.
	Threads  int
	MaxSteps int64
	// MaxCells bounds the cells the program may allocate (0 =
	// unlimited); exceeding it fails with the "oom" trap.
	MaxCells int64
	// Dir is the base directory for readMatrix/writeMatrix; empty with
	// non-nil Files confines file I/O to the in-memory map.
	Dir    string
	Files  map[string]*matrix.Matrix
	Stdout io.Writer
	// Engine selects the execution engine: "vm" (the default, also
	// selected by "") runs the register bytecode machine; "tree" runs
	// the tree-walking interpreter. A program the bytecode compiler
	// declines falls back to the tree walker transparently — the two
	// engines are observably identical by contract.
	Engine string
	// Tenant labels the execution for per-tenant metrics attribution;
	// empty counts as anonymous. It does not participate in cache keys
	// — the artifact a program compiles to is tenant-independent.
	Tenant string
}

// RunResult is the outcome of a Run.
type RunResult struct {
	Key string
	// Cached reports the parse+check half came from the frontend cache.
	Cached      bool
	OK          bool
	Diagnostics []string
	ExitCode    int
	Stages      StageTimings
	// Engine is the engine that actually executed: "vm" or "tree"
	// (the latter also when the bytecode compiler fell back).
	Engine string
}

// hashKey content-addresses a request: a SHA-256 over length-prefixed
// fields, so no field boundary ambiguity.
func hashKey(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func frontKey(name, src string, exts parser.Options) string {
	return hashKey("front", name, src, FormatExtensions(exts))
}

func compileKey(req *CompileRequest) string {
	return hashKey("compile", req.Name, req.Source, FormatExtensions(req.Exts),
		req.Emit, string(req.Codegen.Par), fmt.Sprint(req.Codegen.Optimize))
}

// diagBytes is the retained-size contribution of a diagnostic list.
func diagBytes(diags []string) int64 {
	var n int64
	for _, d := range diags {
		n += int64(len(d))
	}
	return n
}

// frontend returns the parse+check result for (name, src, exts),
// executing at most once per content key. Entries are charged the
// source length as an approximation of the retained AST size.
func (d *Driver) frontend(name, src string, exts parser.Options) (*frontResult, bool) {
	key := frontKey(name, src, exts)
	c, owner, hit := d.front.lookup(key)
	if !owner {
		if hit {
			d.metrics.FrontendHits.Add(1)
		}
		<-c.done
		return c.res.(*frontResult), true
	}
	d.metrics.FrontendMisses.Add(1)
	d.metrics.FrontendExecutions.Add(1)
	res := &frontResult{}
	var diags source.Diagnostics

	t0 := time.Now()
	res.prog = parser.ParseFile(name, src, exts, &diags)
	parseD := time.Since(t0)
	d.metrics.ParseLatency.Observe(parseD)
	res.stages.ParseNS = int64(parseD)

	if res.prog != nil {
		t1 := time.Now()
		res.info = sem.Check(res.prog, &diags)
		checkD := time.Since(t1)
		d.metrics.CheckLatency.Observe(checkD)
		res.stages.CheckNS = int64(checkD)
	}
	for _, diag := range diags.All() {
		res.diags = append(res.diags, diag.String())
	}
	res.ok = res.prog != nil && !diags.HasErrors()

	c.res = res
	close(c.done)
	d.front.complete(key, int64(len(src))+diagBytes(res.diags), true)
	return res, false
}

// Compile translates req.Source, serving repeated identical requests
// from the artifact cache and coalescing concurrent identical requests
// into one pipeline execution. ctx (nil means background) covers the
// caller's interest in the result: a context already dead on arrival
// returns immediately with Canceled set, and a context that dies while
// the disk tier is being read degrades the read to a miss rather than
// pinning the caller behind a hung disk. The pipeline itself, once
// started, always runs to completion — concurrent identical requests
// share the slot, and one caller's disconnect must not fail the
// others.
func (d *Driver) Compile(ctx context.Context, req CompileRequest) *CompileResult {
	t0 := time.Now()
	defer func() { d.metrics.CompileLatency.Observe(time.Since(t0)) }()
	if req.Emit == "" {
		req.Emit = "c"
	}
	key := compileKey(&req)
	out := &CompileResult{Key: key}
	if ctx != nil && ctx.Err() != nil {
		out.Canceled = true
		out.Diagnostics = []string{fmt.Sprintf("%s: error: compile canceled: %v", req.Name, ctx.Err())}
		return out
	}

	c, owner, hit := d.emits.lookup(key)
	if !owner {
		if hit {
			d.metrics.CompileHits.Add(1)
		} else {
			d.metrics.CompileCoalesced.Add(1)
		}
		<-c.done
		res := c.res.(*emitResult)
		out.Cached = true
		out.OK, out.Output, out.Diagnostics, out.Stages = res.ok, res.output, res.diags, res.stages
		return out
	}
	d.metrics.CompileMisses.Add(1)

	// Second tier: a prior process may have left the artifact on disk.
	// A verified disk object skips the whole pipeline; the result is
	// promoted into the in-memory LRU like any other completed entry.
	if d.disk != nil {
		if art, ok := d.disk.get(ctx, key); ok {
			res := &emitResult{output: art.Output, diags: art.Diags, ok: true}
			c.res = res
			close(c.done)
			d.emits.complete(key, int64(len(res.output))+diagBytes(res.diags), true)
			out.Cached = true
			out.OK, out.Output, out.Diagnostics = res.ok, res.output, res.diags
			return out
		}
	}
	d.metrics.CompileExecutions.Add(1)

	res := &emitResult{}
	fr, _ := d.frontend(req.Name, req.Source, req.Exts)
	res.diags = fr.diags
	res.stages = fr.stages
	if fr.ok {
		t1 := time.Now()
		output, err := emit(fr, &req)
		emitD := time.Since(t1)
		d.metrics.EmitLatency.Observe(emitD)
		res.stages.EmitNS = int64(emitD)
		if err != nil {
			res.diags = append(res.diags,
				fmt.Sprintf("%s: error: code generation: %v", fr.prog.Span(), err))
		} else {
			res.output, res.ok = output, true
		}
	}
	c.res = res
	close(c.done)
	d.emits.complete(key, int64(len(res.output))+diagBytes(res.diags), true)
	if d.disk != nil && res.ok {
		d.disk.put(key, &diskArtifact{Output: res.output, Diags: res.diags})
	}

	out.OK, out.Output, out.Diagnostics, out.Stages = res.ok, res.output, res.diags, res.stages
	return out
}

// emit produces the requested artifact from a checked program.
func emit(fr *frontResult, req *CompileRequest) (string, error) {
	switch req.Emit {
	case "ast":
		return ast.Print(fr.prog), nil
	case "c":
		return cgen.Generate(fr.prog, fr.info, req.Codegen)
	default:
		return "", fmt.Errorf("unknown emit kind %q (have: c, ast)", req.Emit)
	}
}

// vmEntry is a cached bytecode compilation outcome. err records a
// compiler bail (a construct the bytecode engine declines), which is
// cached too so the fallback decision is made once per content key.
type vmEntry struct {
	p   *vm.Program
	err error
}

// factsFor returns the vet.Facts side table for an already-checked
// frontend result, computing it at most once per content key. The key
// includes the extension set: the same source parsed under a different
// grammar is a different AST, so its proven facts must not be shared.
func (d *Driver) factsFor(fr *frontResult, name, src string, exts parser.Options) *vet.Facts {
	key := hashKey("facts", name, src, FormatExtensions(exts))
	c, owner, _ := d.facts.lookup(key)
	if !owner {
		d.metrics.FactsHits.Add(1)
		<-c.done
		return c.res.(*vet.Facts)
	}
	d.metrics.FactsMisses.Add(1)
	f := vet.ComputeFacts(fr.prog, fr.info)
	c.res = f
	close(c.done)
	// Charged the source length, like the vm cache: the table holds
	// pointers into the cached AST, so its marginal size is small.
	d.facts.complete(key, int64(len(src)), true)
	return f
}

// vmProgram returns the compiled bytecode for an already-checked
// frontend result, executing the bytecode compiler at most once per
// content key (singleflight + LRU, like every other driver artifact).
// The compiler consumes the cached vet.Facts side table as its
// fusion-legality oracle.
func (d *Driver) vmProgram(fr *frontResult, name, src string, exts parser.Options) (*vm.Program, error) {
	key := hashKey("vm", name, src, FormatExtensions(exts))
	c, owner, _ := d.vms.lookup(key)
	if !owner {
		d.metrics.VMCacheHits.Add(1)
		<-c.done
		e := c.res.(*vmEntry)
		return e.p, e.err
	}
	d.metrics.VMCacheMisses.Add(1)
	d.metrics.VMCompileTotal.Add(1)
	p, err := vm.CompileWithFacts(fr.prog, fr.info, d.factsFor(fr, name, src, exts))
	if err == nil {
		d.metrics.VMFusedSites.Add(int64(p.FusedSites()))
		d.metrics.VMWithSites.Add(int64(p.WithCompiled()))
	}
	c.res = &vmEntry{p: p, err: err}
	close(c.done)
	// Charged the source length: a proxy for code size, consistent
	// with the frontend cache's accounting.
	d.vms.complete(key, int64(len(src)), true)
	return p, err
}

// Run parses and checks req.Source through the frontend cache, then
// executes it — on the register bytecode machine by default, or on the
// tree-walking interpreter when req.Engine says so or the bytecode
// compiler declines the program. The returned error is nil unless
// execution itself failed (including ctx cancellation); frontend
// failures are reported through RunResult.OK and Diagnostics.
func (d *Driver) Run(ctx context.Context, req RunRequest) (*RunResult, error) {
	out := &RunResult{Key: frontKey(req.Name, req.Source, req.Exts)}
	engine := req.Engine
	switch engine {
	case "", "vm":
		engine = "vm"
	case "tree":
	default:
		return out, fmt.Errorf("unknown engine %q (have: vm, tree)", req.Engine)
	}
	fr, cached := d.frontend(req.Name, req.Source, req.Exts)
	out.Cached = cached
	out.Diagnostics = fr.diags
	out.Stages = fr.stages
	if !fr.ok {
		return out, nil
	}
	var prog *vm.Program
	if engine == "vm" {
		p, err := d.vmProgram(fr, req.Name, req.Source, req.Exts)
		if err != nil {
			engine = "tree" // transparent fallback, same observable semantics
		} else {
			prog = p
		}
	}
	out.Engine = engine
	threads := req.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	d.metrics.RunsStarted.Add(1)
	d.metrics.countTenantRun(req.Tenant)
	i := interp.New(fr.prog, fr.info, interp.Options{
		Threads:  threads,
		Stdout:   req.Stdout,
		Dir:      req.Dir,
		MaxSteps: req.MaxSteps,
		MaxCells: req.MaxCells,
		Files:    req.Files,
		Context:  ctx,
	})
	defer i.Close()
	t0 := time.Now()
	var code int
	var err error
	if prog != nil {
		d.metrics.VMExecTotal.Add(1)
		code, err = vm.NewMachine(prog, i).Run()
		d.metrics.VMDispatchNS.Add(int64(time.Since(t0)))
	} else {
		code, err = i.Run()
	}
	runD := time.Since(t0)
	d.metrics.RunLatency.Observe(runD)
	out.Stages.RunNS = int64(runD)
	if err != nil {
		if ctx != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			d.metrics.RunsCancelled.Add(1)
		}
		var rte *interp.RuntimeError
		if errors.As(err, &rte) && rte.Trap != interp.TrapNone {
			d.metrics.RunsTrapped.Add(1)
		}
		return out, err
	}
	out.OK = true
	out.ExitCode = code
	return out, nil
}
