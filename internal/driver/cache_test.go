// White-box tests of the bounded LRU singleflight cache: both caps
// enforced, least-recently-used evicted first, in-flight slots pinned,
// and eviction counters accurate.
package driver

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// fill inserts n completed entries key0..key{n-1} of size bytes each.
func fill(t *testing.T, l *lruCache, n int, bytes int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%d", i)
		c, owner, _ := l.lookup(key)
		if !owner {
			t.Fatalf("%s already present", key)
		}
		c.res = i
		close(c.done)
		l.complete(key, bytes, true)
	}
}

// present reports whether key is cached (without installing a slot the
// way lookup would).
func present(l *lruCache, key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.index[key]
	return ok
}

func TestLRUEntryCapEvictsOldestFirst(t *testing.T) {
	var ev atomic.Int64
	l := newLRUCache(3, 1<<20, &ev)
	fill(t, l, 3, 10)

	// Touch key0 so key1 becomes the LRU victim.
	if _, owner, hit := l.lookup("key0"); owner || !hit {
		t.Fatal("key0 should be a completed hit")
	}
	c, owner, _ := l.lookup("key3")
	if !owner {
		t.Fatal("key3 should be new")
	}
	close(c.done)
	l.complete("key3", 10, true)

	if ev.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", ev.Load())
	}
	if present(l, "key1") {
		t.Fatal("key1 (LRU) survived past the entry cap")
	}
	for _, k := range []string{"key0", "key2", "key3"} {
		if !present(l, k) {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	if n, b := l.stats(); n != 3 || b != 30 {
		t.Fatalf("stats = (%d, %d), want (3, 30)", n, b)
	}
}

func TestLRUByteCapEvicts(t *testing.T) {
	var ev atomic.Int64
	l := newLRUCache(1000, 100, &ev)
	fill(t, l, 5, 30) // 150 bytes demanded, 100 allowed
	if _, b := l.stats(); b > 100 {
		t.Fatalf("bytes = %d over the 100-byte cap", b)
	}
	if ev.Load() != 2 {
		t.Fatalf("evictions = %d, want 2", ev.Load())
	}
	if present(l, "key0") || present(l, "key1") {
		t.Fatal("oldest entries survived the byte cap")
	}
}

func TestLRUInFlightSlotIsPinned(t *testing.T) {
	var ev atomic.Int64
	l := newLRUCache(2, 1<<20, &ev)
	inflight, owner, _ := l.lookup("inflight")
	if !owner {
		t.Fatal("fresh key not owned")
	}
	// Storm past the cap while the slot is still executing.
	fill(t, l, 10, 1)
	if !present(l, "inflight") {
		t.Fatal("in-flight slot was evicted")
	}
	// A waiter arriving now still joins the same execution.
	c2, owner2, hit2 := l.lookup("inflight")
	if owner2 || hit2 || c2 != inflight {
		t.Fatalf("waiter got owner=%v hit=%v same=%v", owner2, hit2, c2 == inflight)
	}
	close(inflight.done)
	l.complete("inflight", 1, true)
	if n, _ := l.stats(); n > 2 {
		t.Fatalf("completed entries = %d over cap 2", n)
	}
}

func TestLRUCompleteWithoutRetainDrops(t *testing.T) {
	var ev atomic.Int64
	l := newLRUCache(10, 1<<20, &ev)
	c, _, _ := l.lookup("drop")
	close(c.done)
	l.complete("drop", 5, false)
	if present(l, "drop") {
		t.Fatal("non-retained entry still cached")
	}
	if n, b := l.stats(); n != 0 || b != 0 {
		t.Fatalf("stats = (%d, %d) after drop", n, b)
	}
	if ev.Load() != 0 {
		t.Fatal("a deliberate drop is not an eviction")
	}
}

func TestLRUOversizedEntryIsNotRetained(t *testing.T) {
	var ev atomic.Int64
	l := newLRUCache(10, 100, &ev)
	fill(t, l, 2, 10)
	c, _, _ := l.lookup("huge")
	close(c.done)
	l.complete("huge", 1000, true)
	// An artifact alone bigger than the cap cannot stay; trimming also
	// takes the older entries below it in LRU order.
	if present(l, "huge") {
		t.Fatal("entry larger than the byte cap was retained")
	}
	if _, b := l.stats(); b > 100 {
		t.Fatalf("bytes = %d over cap", b)
	}
}
