// The vet.Facts side table is a driver-cached artifact like any other:
// content-addressed by (name, source, extension set), computed once,
// and invalidated by an extension-set change — the same source under a
// different grammar is a different AST, so fusion facts proven against
// one must never drive bytecode compiled from the other.
package driver_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/driver"
)

const fusedChainSrc = `
int main() {
	Matrix float <1> a = [0 :: 7] * 1.0;
	Matrix float <1> b = [1 :: 8] * 1.0;
	Matrix float <1> r = a .* b + a - b;
	print(r[end]);
	return 0;
}`

func TestFactsCacheKeysOnExtensionSet(t *testing.T) {
	d := driver.New()
	run := func(exts string) {
		t.Helper()
		o, err := driver.ParseExtensions(exts)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		res, err := d.Run(context.Background(), driver.RunRequest{
			Name: "chain.xc", Source: fusedChainSrc, Exts: o, Threads: 1, Stdout: &out,
		})
		if err != nil || !res.OK {
			t.Fatalf("run(-ext %s): err=%v res=%+v diags=%v", exts, err, res, res.Diagnostics)
		}
		if res.Engine != "vm" {
			t.Fatalf("run(-ext %s): engine = %q, want vm", exts, res.Engine)
		}
	}
	m := d.Metrics()

	run("matrix")
	if got := m.FactsMisses.Load(); got != 1 {
		t.Fatalf("after first run: FactsMisses = %d, want 1", got)
	}
	if got := m.VMFusedSites.Load(); got != 1 {
		t.Fatalf("after first run: VMFusedSites = %d, want 1 (chain must be proven and emitted)", got)
	}

	// Identical request: the facts table (and the compiled program that
	// consumed it) must be reused, not recomputed.
	run("matrix")
	if got := m.FactsMisses.Load(); got != 1 {
		t.Fatalf("after identical rerun: FactsMisses = %d, want 1 (must hit)", got)
	}

	// Same source, different -ext set: different content key, so the
	// facts must be recomputed against the new parse.
	run("all")
	if got := m.FactsMisses.Load(); got != 2 {
		t.Fatalf("after -ext change: FactsMisses = %d, want 2 (must not share across ext sets)", got)
	}
	if got := m.VMFusedSites.Load(); got != 2 {
		t.Fatalf("after -ext change: VMFusedSites = %d, want 2 (recompiled with fresh facts)", got)
	}

	// Note FactsHits stays 0 here: an identical rerun is absorbed by the
	// compiled-program cache one layer up and never re-reads the facts.
	s := d.MetricsSnapshot()
	if s.FactsMisses != 2 {
		t.Errorf("snapshot facts_cache_misses = %d, want 2", s.FactsMisses)
	}
	if s.VMFusedLoops == 0 {
		t.Errorf("snapshot vm_fused_loops = 0, want > 0 (three fused executions ran)")
	}
}
