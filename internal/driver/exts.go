// Extension-set and flag parsing shared by every entry point (cmc,
// cmrun, cmserved): one place turns the user-facing
// "-ext matrix,transform,rc,cilk" syntax into parser.Options and back
// into the canonical form used in cache keys.
package driver

import (
	"fmt"
	"strings"

	"repro/internal/cgen"
	"repro/internal/parser"
)

// ParseExtensions parses a comma-separated extension list into
// parser.Options. Recognized names are matrix, transform, rc and cilk;
// "all" selects every extension and "none" (or the empty string)
// selects only the host language.
func ParseExtensions(s string) (parser.Options, error) {
	var o parser.Options
	for _, e := range strings.Split(s, ",") {
		switch strings.TrimSpace(e) {
		case "matrix":
			o.Matrix = true
		case "transform":
			o.Transform = true
		case "rc":
			o.Rc = true
		case "cilk":
			o.Cilk = true
		case "all":
			o = parser.AllExtensions()
		case "", "none":
		default:
			return o, fmt.Errorf("unknown extension %q (have: matrix, transform, rc, cilk, all, none)", e)
		}
	}
	return o, nil
}

// FormatExtensions renders o in the canonical composition order, the
// inverse of ParseExtensions. The result is stable and is what the
// content-addressed cache keys on.
func FormatExtensions(o parser.Options) string {
	var parts []string
	if o.Matrix {
		parts = append(parts, "matrix")
	}
	if o.Transform {
		parts = append(parts, "transform")
	}
	if o.Rc {
		parts = append(parts, "rc")
	}
	if o.Cilk {
		parts = append(parts, "cilk")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseParMode validates a -par flag value.
func ParseParMode(s string) (cgen.ParMode, error) {
	switch m := cgen.ParMode(s); m {
	case cgen.ParPthread, cgen.ParOMP, cgen.ParNone:
		return m, nil
	default:
		return "", fmt.Errorf("unknown -par mode %q (have: pthread, omp, none)", s)
	}
}
