package lexer

import (
	"strings"
	"testing"

	"repro/internal/grammar"
	"repro/internal/source"
)

func testGrammar(t *testing.T) *grammar.Grammar {
	t.Helper()
	host := &grammar.Spec{
		Name: grammar.HostOwner,
		Terminals: append(StandardSkips(grammar.HostOwner),
			grammar.Pat("Id", "[a-zA-Z_][a-zA-Z0-9_]*", grammar.HostOwner),
			grammar.Pat("Num", "[0-9]+", grammar.HostOwner),
			grammar.Lit("=", "=", grammar.HostOwner),
			grammar.Lit("==", "==", grammar.HostOwner),
			grammar.Lit(";", ";", grammar.HostOwner),
		),
		Nonterminals: []*grammar.Nonterminal{{Name: "S"}},
		Productions: []*grammar.Production{
			grammar.Rule(grammar.HostOwner, "S", []string{"Id", "=", "Num", ";"}, nil),
		},
	}
	// The extension keyword "fold" is only valid after '=', so host
	// code may freely use "fold" as an identifier elsewhere — the
	// context-aware scanner resolves it per LR state.
	ext := &grammar.Spec{
		Name:      "m",
		Terminals: []*grammar.Terminal{grammar.Lit("fold", "fold", "m")},
		Productions: []*grammar.Production{
			grammar.Rule("m", "S", []string{"Id", "=", "fold", "Num", ";"}, nil),
		},
	}
	g, err := grammar.New("S", host, ext)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func scan(t *testing.T, g *grammar.Grammar, src string) []grammar.Token {
	t.Helper()
	s := New(g, source.NewFile("t.xc", src))
	toks, err := s.ScanAll()
	if err != nil {
		t.Fatalf("scan %q: %v", src, err)
	}
	return toks
}

func kinds(toks []grammar.Token) string {
	var parts []string
	for _, t := range toks {
		parts = append(parts, t.Terminal)
	}
	return strings.Join(parts, " ")
}

func TestBasicScan(t *testing.T) {
	g := testGrammar(t)
	toks := scan(t, g, "x = 42;")
	if got := kinds(toks); got != "Id = Num ;" {
		t.Errorf("kinds = %q", got)
	}
	if toks[2].Text != "42" {
		t.Errorf("num text = %q", toks[2].Text)
	}
}

func TestMaximalMunch(t *testing.T) {
	g := testGrammar(t)
	toks := scan(t, g, "a == b")
	if got := kinds(toks); got != "Id == Id" {
		t.Errorf("== should win over =: %q", got)
	}
	// keyword prefix of identifier: maximal munch picks the identifier
	toks = scan(t, g, "folder")
	if got := kinds(toks); got != "Id" {
		t.Errorf("folder should scan as Id, got %q", got)
	}
}

func TestKeywordPriorityAtTie(t *testing.T) {
	g := testGrammar(t)
	// context-free scan: both "fold" (kw) and Id match 4 chars; the
	// keyword's priority 1 wins.
	toks := scan(t, g, "fold")
	if got := kinds(toks); got != "fold" {
		t.Errorf("keyword should win tie: %q", got)
	}
}

func TestContextAwareKeyword(t *testing.T) {
	g := testGrammar(t)
	s := New(g, source.NewFile("t.xc", "fold = 1;"))
	// Simulate a host context where the extension keyword is NOT valid:
	// the scanner must deliver an identifier instead.
	valid := map[string]bool{"Id": true, "Num": true, "=": true, ";": true}
	tok, err := s.NextToken(valid)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Terminal != "Id" || tok.Text != "fold" {
		t.Errorf("in host context, 'fold' should scan as Id: %v", tok)
	}
	// And in an extension context it scans as the keyword.
	s2 := New(g, source.NewFile("t.xc", "fold 3;"))
	valid2 := map[string]bool{"Num": true, "fold": true}
	tok2, err := s2.NextToken(valid2)
	if err != nil {
		t.Fatal(err)
	}
	if tok2.Terminal != "fold" {
		t.Errorf("in extension context, 'fold' should scan as keyword: %v", tok2)
	}
}

func TestSkipsCommentsAndWhitespace(t *testing.T) {
	g := testGrammar(t)
	src := "// line comment\n  x /* block\ncomment */ = 7 ; "
	toks := scan(t, g, src)
	if got := kinds(toks); got != "Id = Num ;" {
		t.Errorf("kinds = %q", got)
	}
	// spans survive skipping
	if toks[0].Span.Start.Line != 2 {
		t.Errorf("x should be on line 2: %v", toks[0].Span)
	}
}

func TestScanErrorOnBadChar(t *testing.T) {
	g := testGrammar(t)
	s := New(g, source.NewFile("t.xc", "x = @;"))
	_, err := s.ScanAll()
	if err == nil || !strings.Contains(err.Error(), "@") {
		t.Errorf("expected scan error mentioning @, got %v", err)
	}
}

func TestEOFToken(t *testing.T) {
	g := testGrammar(t)
	s := New(g, source.NewFile("t.xc", "  \n// nothing\n"))
	tok, err := s.NextToken(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Terminal != grammar.EOFName {
		t.Errorf("empty input should yield eof, got %v", tok)
	}
}

// End-to-end: parse through the table so valid sets come from real LR
// states; "with" used as an identifier in host syntax must parse.
func TestEndToEndContextAware(t *testing.T) {
	g := testGrammar(t)
	tab, err := grammar.BuildTable(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Conflicts) != 0 {
		t.Fatalf("conflicts: %v", tab.Conflicts)
	}
	// "fold = 3;" uses the extension keyword spelling as a host
	// identifier (valid: 'fold' terminal is not legal at statement
	// start); "x = fold 3;" uses it as the extension keyword.
	for _, src := range []string{"fold = 3;", "x = 1;", "x = fold 3;"} {
		s := New(g, source.NewFile("t.xc", src))
		var d source.Diagnostics
		_, ok := tab.Parse(s, &d)
		if !ok {
			t.Errorf("parse %q failed: %s", src, d.String())
		}
	}
}

func TestSpanOffsets(t *testing.T) {
	g := testGrammar(t)
	toks := scan(t, g, "ab = 12;")
	if toks[0].Span.Start.Offset != 0 || toks[0].Span.End.Offset != 2 {
		t.Errorf("Id span = %v", toks[0].Span)
	}
	if toks[2].Span.Start.Offset != 5 || toks[2].Span.End.Offset != 7 {
		t.Errorf("Num span = %v", toks[2].Span)
	}
}
