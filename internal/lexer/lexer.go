// Package lexer implements a Copper-style context-aware scanner. The
// parser passes in the set of terminals that are valid in its current
// LR state, and the scanner matches only those (plus skip terminals
// such as whitespace and comments). This is what lets language
// extensions introduce keywords like "with" or "genarray" without
// stealing them from host-language code that uses the same spellings
// as identifiers: the keyword only exists where the grammar allows it.
//
// Disambiguation among valid terminals follows maximal munch: the
// longest match wins; at equal length the higher-priority terminal
// wins (keywords are declared with priority 1, identifier-class
// terminals with 0); remaining ties go to declaration order.
package lexer

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/source"
)

// Scanner scans one source file against a grammar's terminal set.
type Scanner struct {
	file  *source.File
	terms []*grammar.Terminal // non-skip terminals, declaration order
	skips []*grammar.Terminal
	first []([256]bool) // per non-skip terminal: possible first bytes
	pos   int
}

// New creates a scanner for file using g's terminals.
func New(g *grammar.Grammar, file *source.File) *Scanner {
	s := &Scanner{file: file}
	for _, t := range g.Terminals() {
		if t.Skip {
			s.skips = append(s.skips, t)
		} else {
			s.terms = append(s.terms, t)
			s.first = append(s.first, t.Pattern.FirstBytes())
		}
	}
	return s
}

// Pos returns the current byte offset, for tests.
func (s *Scanner) Pos() int { return s.pos }

// skipIgnorable consumes whitespace and comments.
func (s *Scanner) skipIgnorable() {
	for {
		advanced := false
		for _, t := range s.skips {
			if n := t.Pattern.MatchPrefix(s.file.Content, s.pos); n > 0 {
				s.pos += n
				advanced = true
			}
		}
		if !advanced {
			return
		}
	}
}

// NextToken implements grammar.TokenSource. Terminals not in valid are
// invisible to the match, which is the context-aware behaviour.
func (s *Scanner) NextToken(valid map[string]bool) (grammar.Token, error) {
	s.skipIgnorable()
	if s.pos >= len(s.file.Content) {
		return grammar.Token{
			Terminal: grammar.EOFName,
			Span:     s.file.SpanAt(s.pos, s.pos),
		}, nil
	}
	b := s.file.Content[s.pos]
	bestLen := -1
	var best *grammar.Terminal
	for i, t := range s.terms {
		if valid != nil && !valid[t.Name] {
			continue
		}
		if !s.first[i][b] {
			continue
		}
		n := t.Pattern.MatchPrefix(s.file.Content, s.pos)
		if n <= 0 {
			continue
		}
		if n > bestLen || (n == bestLen && best != nil && t.Priority > best.Priority) {
			bestLen = n
			best = t
		}
	}
	if best == nil {
		span := s.file.SpanAt(s.pos, s.pos+1)
		return grammar.Token{Terminal: "", Text: string(b), Span: span},
			fmt.Errorf("%s: no valid token can start with %q", span, string(b))
	}
	tok := grammar.Token{
		Terminal: best.Name,
		Text:     s.file.Content[s.pos : s.pos+bestLen],
		Span:     s.file.SpanAt(s.pos, s.pos+bestLen),
	}
	s.pos += bestLen
	return tok, nil
}

// ScanAll scans the whole file context-free (all terminals valid).
// Used for tests and tooling; real parsing uses NextToken with the
// parser's valid sets.
func (s *Scanner) ScanAll() ([]grammar.Token, error) {
	var out []grammar.Token
	for {
		t, err := s.NextToken(nil)
		if err != nil {
			return out, err
		}
		if t.Terminal == grammar.EOFName {
			return out, nil
		}
		out = append(out, t)
	}
}

// StandardSkips returns the usual C whitespace and comment skip
// terminals, shared by the host language spec.
func StandardSkips(owner string) []*grammar.Terminal {
	ws := grammar.Pat("WS", "[ \t\r\n]+", owner)
	ws.Skip = true
	line := grammar.Pat("LineComment", "//[^\n]*", owner)
	line.Skip = true
	block := grammar.Pat("BlockComment", "/\\*([^*]|\\*+[^*/])*\\*+/", owner)
	block.Skip = true
	return []*grammar.Terminal{ws, line, block}
}
