package matio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func roundTrip(t *testing.T, m *matrix.Matrix) *matrix.Matrix {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

func TestRoundTripFloat(t *testing.T) {
	m := matrix.FromFloats([]float64{1.5, -2, 3e10, 0.25}, 2, 2)
	if !matrix.Equal(m, roundTrip(t, m)) {
		t.Fatal("float round trip mismatch")
	}
}

func TestRoundTripInt(t *testing.T) {
	m := matrix.FromInts([]int64{1, -9, 1 << 40}, 3)
	if !matrix.Equal(m, roundTrip(t, m)) {
		t.Fatal("int round trip mismatch")
	}
}

func TestRoundTripBool(t *testing.T) {
	m := matrix.FromBools([]bool{true, false, true, true, false, false}, 2, 3)
	if !matrix.Equal(m, roundTrip(t, m)) {
		t.Fatal("bool round trip mismatch")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.data")
	m := matrix.FromFloats([]float64{9, 8, 7, 6, 5, 4}, 3, 2)
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(m, out) {
		t.Fatal("file round trip mismatch")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE1234567890"),
		"truncated": append([]byte("CMXM"), 1, 0, 0),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// corrupt rank
	var buf bytes.Buffer
	m := matrix.FromFloats([]float64{1}, 1)
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[12] = 200 // rank field
	if _, err := Read(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "rank") {
		t.Errorf("corrupt rank error = %v", err)
	}
}

func TestMissingFile(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.data")); err == nil {
		t.Error("missing file should error")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(3)
		shape := make([]int, rank)
		for d := range shape {
			shape[d] = 1 + r.Intn(5)
		}
		m := matrix.New(matrix.Float, shape...)
		fl := m.Floats()
		for i := range fl {
			fl[i] = r.NormFloat64()
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		return matrix.Equal(m, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
