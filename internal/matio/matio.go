// Package matio reads and writes the binary matrix file format used
// by the readMatrix/writeMatrix builtins (Figs 1, 4, 8 read
// "ssh.data"-style files). The format is self-describing — magic,
// element kind, rank, dimension sizes, then row-major data — which is
// what lets readMatrix return a matrix whose element type and rank
// are checked against the declared variable type at run time.
package matio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/matrix"
)

// magic identifies the file format.
var magic = [4]byte{'C', 'M', 'X', 'M'}

const maxRank = 32

// Write serializes m to w.
func Write(w io.Writer, m *matrix.Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	head := []int64{int64(m.Elem()), int64(m.Rank())}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, d := range m.Shape() {
		if err := binary.Write(bw, binary.LittleEndian, int64(d)); err != nil {
			return err
		}
	}
	var err error
	switch m.Elem() {
	case matrix.Float:
		err = binary.Write(bw, binary.LittleEndian, m.Floats())
	case matrix.Int:
		err = binary.Write(bw, binary.LittleEndian, m.Ints())
	case matrix.Bool:
		bs := make([]byte, m.Size())
		for i, v := range m.Bools() {
			if v {
				bs[i] = 1
			}
		}
		_, err = bw.Write(bs)
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a matrix from r.
func Read(r io.Reader) (*matrix.Matrix, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("matio: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("matio: bad magic %q (not a matrix file)", got)
	}
	var elemI, rank int64
	if err := binary.Read(br, binary.LittleEndian, &elemI); err != nil {
		return nil, fmt.Errorf("matio: reading element kind: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
		return nil, fmt.Errorf("matio: reading rank: %w", err)
	}
	if elemI < 0 || elemI > int64(matrix.Bool) {
		return nil, fmt.Errorf("matio: invalid element kind %d", elemI)
	}
	if rank < 1 || rank > maxRank {
		return nil, fmt.Errorf("matio: invalid rank %d", rank)
	}
	shape := make([]int, rank)
	total := 1
	for d := range shape {
		var v int64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("matio: reading shape: %w", err)
		}
		if v < 0 || v > 1<<31 {
			return nil, fmt.Errorf("matio: invalid dimension size %d", v)
		}
		shape[d] = int(v)
		total *= int(v)
	}
	m := matrix.New(matrix.Elem(elemI), shape...)
	var err error
	switch m.Elem() {
	case matrix.Float:
		err = binary.Read(br, binary.LittleEndian, m.Floats())
	case matrix.Int:
		err = binary.Read(br, binary.LittleEndian, m.Ints())
	case matrix.Bool:
		bs := make([]byte, total)
		if _, err = io.ReadFull(br, bs); err == nil {
			bools := m.Bools()
			for i, b := range bs {
				bools[i] = b != 0
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("matio: reading %d element(s): %w", total, err)
	}
	return m, nil
}

// WriteFile writes m to the named file.
func WriteFile(name string, m *matrix.Matrix) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a matrix from the named file.
func ReadFile(name string) (*matrix.Matrix, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
