// Handlers for the non-arithmetic opcodes: indexing, allocation,
// tuples, calls, builtins, with-loops, matrixMap and Cilk spawn/sync.
// Split out of the dispatch loop to keep the hot switch small.
package vm

import (
	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/rc"
)

func (mc *Machine) execSlow(fr *frame, in *instr) error {
	regs := fr.regs
	switch in.op {
	case opIdxCheck:
		m, ok := regs[in.a].r.(*matrix.Matrix)
		if !ok || m == nil {
			if in.c != 0 {
				return interp.Errorf(in.nd, "cannot index-assign into a non-matrix or unassigned matrix")
			}
			return interp.Errorf(in.nd, "cannot index a non-matrix or unassigned matrix")
		}
		if int(in.b) != m.Rank() {
			return interp.Errorf(in.nd, "matrix of rank %d requires %d index expression(s), got %d",
				m.Rank(), m.Rank(), int(in.b))
		}

	case opDimEnd:
		m := regs[in.b].r.(*matrix.Matrix)
		size, err := m.DimSize(int(in.c))
		if err != nil {
			return interp.WrapError(in.nd, err)
		}
		regs[in.a].i = int64(size - 1)

	case opIndex:
		d := in.aux.(*indexDesc)
		m := regs[in.b].r.(*matrix.Matrix)
		specs, err := fr.buildSpecs(d.plans)
		if err != nil {
			return err
		}
		v, err := m.Index(specs...)
		if err != nil {
			return interp.WrapError(in.nd, err)
		}
		return fr.store(in.a, class(in.c), v, in.nd)

	case opSetIndex:
		d := in.aux.(*setIndexDesc)
		m := regs[in.a].r.(*matrix.Matrix)
		specs, err := fr.buildSpecs(d.plans)
		if err != nil {
			return err
		}
		return interp.WrapError(in.nd, m.SetIndex(fr.box(d.val), specs...))

	case opIdx1F:
		m := regs[in.b].r.(*matrix.Matrix)
		i := regs[in.c].i
		if raw := m.Floats(); i >= 0 && int(i) < len(raw) {
			regs[in.a].f = raw[i]
			break
		}
		v, err := m.Index(matrix.Scalar(int(i)))
		if err != nil {
			return interp.WrapError(in.nd, err)
		}
		return fr.store(in.a, clF, v, in.nd)
	case opIdx1I:
		m := regs[in.b].r.(*matrix.Matrix)
		i := regs[in.c].i
		if raw := m.Ints(); i >= 0 && int(i) < len(raw) {
			regs[in.a].i = raw[i]
			break
		}
		v, err := m.Index(matrix.Scalar(int(i)))
		if err != nil {
			return interp.WrapError(in.nd, err)
		}
		return fr.store(in.a, clI, v, in.nd)
	case opIdx1B:
		m := regs[in.b].r.(*matrix.Matrix)
		i := regs[in.c].i
		if raw := m.Bools(); i >= 0 && int(i) < len(raw) {
			regs[in.a].i = b2i(raw[i])
			break
		}
		v, err := m.Index(matrix.Scalar(int(i)))
		if err != nil {
			return interp.WrapError(in.nd, err)
		}
		return fr.store(in.a, clB, v, in.nd)

	case opSetIdx1F:
		m := regs[in.a].r.(*matrix.Matrix)
		i := regs[in.b].i
		if raw := m.Floats(); i >= 0 && int(i) < len(raw) {
			raw[i] = regs[in.c].f
			break
		}
		return interp.WrapError(in.nd, m.SetIndex(regs[in.c].f, matrix.Scalar(int(i))))
	case opSetIdx1I:
		m := regs[in.a].r.(*matrix.Matrix)
		i := regs[in.b].i
		if raw := m.Ints(); i >= 0 && int(i) < len(raw) {
			raw[i] = regs[in.c].i
			break
		}
		return interp.WrapError(in.nd, m.SetIndex(regs[in.c].i, matrix.Scalar(int(i))))
	case opSetIdx1B:
		m := regs[in.a].r.(*matrix.Matrix)
		i := regs[in.b].i
		if raw := m.Bools(); i >= 0 && int(i) < len(raw) {
			raw[i] = regs[in.c].i != 0
			break
		}
		return interp.WrapError(in.nd, m.SetIndex(regs[in.c].i != 0, matrix.Scalar(int(i))))

	case opRange:
		lo, hi := regs[in.b].i, regs[in.c].i
		if hi >= lo {
			if err := mc.in.ChargeCells(in.nd, hi-lo+1); err != nil {
				return err
			}
		}
		regs[in.a].r = matrix.Range(lo, hi)

	case opCheckDim:
		if n := regs[in.a].i; n < 0 {
			return interp.Errorf(in.nd, "init dimension %d is negative (%d)", int(in.b), n)
		}

	case opInit:
		d := in.aux.(*initDesc)
		dims := make([]int, len(d.dims))
		for k, r := range d.dims {
			dims[k] = int(regs[r].i)
		}
		m, err := matrix.NewBudgeted(mc.in.Budget(), d.elem, dims...)
		if err != nil {
			return interp.WrapError(in.nd, err)
		}
		regs[in.a].r = m

	case opTuple:
		ds := in.aux.([]argDesc)
		out := make([]any, len(ds))
		for k, d := range ds {
			out[k] = fr.box(d)
		}
		regs[in.a].r = out

	case opTupCheck:
		tup, ok := regs[in.a].r.([]any)
		if !ok || len(tup) != int(in.b) {
			return interp.Errorf(in.nd, "destructuring assignment requires a %d-tuple", int(in.b))
		}

	case opTupGet:
		regs[in.a].r = regs[in.b].r.([]any)[in.c]

	case opCall:
		d := in.aux.(*callDesc)
		args := make([]any, len(d.args))
		for k, ad := range d.args {
			args[k] = fr.box(ad)
		}
		v, err := mc.callProto(d.proto, args, in.nd, fr.depth, fr.pool, &fr.pending)
		if err != nil {
			return err
		}
		if in.a >= 0 {
			return fr.store(in.a, d.retCl, v, in.nd)
		}

	case opPrint:
		mc.in.PrintValue(fr.box(in.aux.(argDesc)))

	case opDimSize:
		ds := in.aux.([]argDesc)
		m, ok := fr.box(ds[0]).(*matrix.Matrix)
		if !ok || m == nil {
			return interp.Errorf(in.nd, "dimSize of a non-matrix or unassigned matrix")
		}
		dv, ok := fr.box(ds[1]).(int64)
		if !ok {
			return interp.Errorf(in.nd, "dimSize dimension must be int")
		}
		n, err := m.DimSize(int(dv))
		if err != nil {
			return interp.WrapError(in.nd, err)
		}
		regs[in.a].i = int64(n)

	case opReadM:
		name, ok := fr.box(in.aux.(argDesc)).(string)
		if !ok {
			return interp.Errorf(in.nd, "readMatrix expects a file name string")
		}
		m, err := mc.in.ReadMatrixFile(in.nd, name)
		if err != nil {
			return err
		}
		regs[in.a].r = m

	case opWriteM:
		ds := in.aux.([]argDesc)
		name, _ := fr.box(ds[0]).(string)
		m, ok := fr.box(ds[1]).(*matrix.Matrix)
		if !ok || m == nil {
			return interp.Errorf(in.nd, "writeMatrix of a non-matrix or unassigned matrix")
		}
		return mc.in.WriteMatrixFile(in.nd, name, m)

	case opRcNew:
		cell, h := mc.in.RcNew(fr.box(in.aux.(argDesc)))
		fr.pending = append(fr.pending, h)
		regs[in.a].r = cell

	case opRcGet:
		v, err := mc.in.RcGet(in.nd, fr.box(in.aux.(argDesc)))
		if err != nil {
			return err
		}
		return fr.store(in.a, class(in.c), v, in.nd)

	case opRcSet:
		d := in.aux.(*rcSetDesc)
		return mc.in.RcSet(in.nd, fr.box(d.cell), fr.box(d.val), d.elem)

	case opRcRel:
		return mc.in.RcRelease(in.nd, fr.box(in.aux.(argDesc)))

	case opWith:
		return mc.execWith(fr, in)

	case opWithGen, opWithFold:
		if handled, err := mc.execWithFlat(fr, in); handled {
			return err
		}
		return mc.execWith(fr, in)

	case opMatMap:
		return mc.execMatMap(fr, in)

	case opSpawn:
		return mc.execSpawnOp(fr, in)

	case opSync:
		return mc.syncFrame(fr)

	default:
		return interp.Errorf(in.nd, "internal error: unknown opcode %d", in.op)
	}
	return nil
}

// buildSpecs materializes per-dimension index specs from compiled
// plans, mirroring the tree walker's oneIndexSpec.
func (fr *frame) buildSpecs(plans []specPlan) ([]matrix.IndexSpec, error) {
	specs := make([]matrix.IndexSpec, len(plans))
	for k, p := range plans {
		switch p.kind {
		case spScalar:
			specs[k] = matrix.Scalar(int(fr.regs[p.r1].i))
		case spMask:
			specs[k] = matrix.Mask(maskMatrix(fr.regs[p.r1].r))
		case spRange:
			specs[k] = matrix.Span(int(fr.regs[p.r1].i), int(fr.regs[p.r2].i))
		case spAll:
			specs[k] = matrix.All()
		case spDyn:
			switch x := fr.regs[p.r1].r.(type) {
			case int64:
				specs[k] = matrix.Scalar(int(x))
			case *matrix.Matrix:
				specs[k] = matrix.Mask(x)
			default:
				return nil, interp.Errorf(p.nd, "index must be an int or a bool matrix, got %T", x)
			}
		}
	}
	return specs, nil
}

// execWith runs a with-loop: bounds and shape/base come in registers;
// the body proto runs once per generated index in a child frame with
// parallelism disabled (nests distribute the outermost construct
// only, exactly like the tree walker).
func (mc *Machine) execWith(fr *frame, in *instr) error {
	d := in.aux.(*withDesc)
	if d.staticFail != nil {
		return d.staticFail
	}
	lower := make([]int, len(d.lower))
	upper := make([]int, len(d.upper))
	for k := range d.lower {
		lower[k] = int(fr.regs[d.lower[k]].i)
		upper[k] = int(fr.regs[d.upper[k]].i)
	}
	bp := mc.p.protos[d.body]
	template := make([]value, bp.nregs)
	for _, cp := range d.captures {
		template[cp.to] = fr.regs[cp.from]
	}
	bodyNode := bodyExprOf(d.w)
	body := func(idx []int) (any, error) {
		if err := mc.in.CheckCancel(bodyNode); err != nil {
			return nil, err
		}
		bf := &frame{regs: make([]value, bp.nregs), depth: fr.depth + 1}
		copy(bf.regs, template)
		for k := range idx {
			bf.regs[k].i = int64(idx[k])
		}
		err := mc.exec(bf, bp)
		mc.flush(bf)
		if err != nil {
			return nil, err
		}
		return bf.ret, nil
	}
	x := mc.in.Exec(fr.pool)
	if d.fold {
		base := fr.box(d.foldInit)
		if d.promote {
			if iv, ok := base.(int64); ok {
				base = float64(iv)
			}
		}
		out, err := matrix.FoldExec(d.foldKind, base, lower, upper, body, x)
		if err != nil {
			return interp.WrapError(in.nd, err)
		}
		return fr.store(in.a, d.resCl, out, in.nd)
	}
	shape := make([]int, len(d.shape))
	for k, r := range d.shape {
		shape[k] = int(fr.regs[r].i)
	}
	out, err := matrix.GenArrayExec(d.elem, lower, upper, shape, body, x)
	if err != nil {
		return interp.WrapError(in.nd, err)
	}
	fr.regs[in.a].r = out
	return nil
}

// execWithFlat attempts a facts-compiled with-loop on the flat engine.
// handled=false means the admission declined — a leaf register holds
// an unexpected value, or the flat engine itself declined (infeasible
// indices, element mismatch) — with nothing observable done: no hook
// firings, no budget charges. The caller then falls back to the
// closure engine, which reproduces any error byte-identically.
func (mc *Machine) execWithFlat(fr *frame, in *instr) (bool, error) {
	d := in.aux.(*withDesc)
	fp := d.flat
	if fp == nil || d.staticFail != nil {
		return false, nil
	}
	lower := make([]int, len(d.lower))
	upper := make([]int, len(d.upper))
	for k := range d.lower {
		lower[k] = int(fr.regs[d.lower[k]].i)
		upper[k] = int(fr.regs[d.upper[k]].i)
	}
	env := &matrix.WithEnv{Code: fp.code, Float: fp.float}
	if len(fp.mats) > 0 {
		env.Mats = make([]*matrix.Matrix, len(fp.mats))
		for k, r := range fp.mats {
			m, ok := fr.regs[r].r.(*matrix.Matrix)
			if !ok || m == nil || m.Elem() != fp.matEl[k] {
				return false, nil
			}
			env.Mats[k] = m
		}
	}
	if len(fp.sI) > 0 {
		env.ScalarI = make([]int64, len(fp.sI))
		for k, r := range fp.sI {
			env.ScalarI[k] = fr.regs[r].i
		}
	}
	if len(fp.sF) > 0 {
		env.ScalarF = make([]float64, len(fp.sF))
		for k, r := range fp.sF {
			env.ScalarF[k] = fr.regs[r].f
		}
	}
	x := mc.in.Exec(fr.pool)
	if d.fold {
		base := fr.box(d.foldInit)
		if d.promote {
			if iv, ok := base.(int64); ok {
				base = float64(iv)
			}
		}
		out, handled, err := matrix.FoldFlat(d.foldKind, base, lower, upper, env, x)
		if !handled {
			return false, nil
		}
		withFlatRun.Add(1)
		if err != nil {
			return true, interp.WrapError(in.nd, err)
		}
		return true, fr.store(in.a, d.resCl, out, in.nd)
	}
	shape := make([]int, len(d.shape))
	for k, r := range d.shape {
		shape[k] = int(fr.regs[r].i)
	}
	out, handled, err := matrix.GenArrayFlat(d.elem, lower, upper, shape, env, x)
	if !handled {
		return false, nil
	}
	withFlatRun.Add(1)
	if err != nil {
		return true, interp.WrapError(in.nd, err)
	}
	fr.regs[in.a].r = out
	return true, nil
}

// bodyExprOf returns the with-loop's body expression node (the node
// the tree walker attributes per-element cancellation to).
func bodyExprOf(w *ast.WithLoop) ast.Node {
	switch op := w.Op.(type) {
	case *ast.GenArrayOp:
		return op.Body
	case *ast.FoldOp:
		return op.Body
	}
	return w
}

// execMatMap runs matrixMap / matrixMapG, calling the mapped function
// through callProto per sub-matrix.
func (mc *Machine) execMatMap(fr *frame, in *instr) error {
	d := in.aux.(*mapDesc)
	m, ok := fr.box(d.arg).(*matrix.Matrix)
	if !ok || m == nil {
		return interp.Errorf(d.e, "matrixMap requires a matrix argument")
	}
	if d.badDim != nil {
		return interp.Errorf(d.badDim, "matrixMap dimensions must be integer literals")
	}
	if d.fnMissing {
		return interp.Errorf(d.e, "undeclared function %q", d.e.Fun)
	}
	if d.elemFail != nil {
		return d.elemFail
	}
	mapF := func(sub *matrix.Matrix) (*matrix.Matrix, error) {
		var pend []*rc.Header
		release := func() {
			for _, h := range pend {
				h.DecRef()
			}
		}
		v, err := mc.callProto(d.proto, []any{sub}, d.e, fr.depth+1, nil, &pend)
		if err != nil {
			release()
			return nil, err
		}
		res, ok := v.(*matrix.Matrix)
		if !ok || res == nil {
			release()
			return nil, interp.Errorf(d.e, "matrixMap function %q returned %T, want a matrix", d.e.Fun, v)
		}
		// The result is copied into the output before its escape
		// reference is dropped, so the release is safe.
		out := res.Copy()
		release()
		return out, nil
	}
	x := mc.in.Exec(fr.pool)
	var out *matrix.Matrix
	var err error
	if d.general {
		out, err = matrix.MatrixMapGExec(m, d.dims, d.elem, mapF, x)
	} else {
		out, err = matrix.MatrixMapExec(m, d.dims, d.elem, mapF, x)
	}
	if err != nil {
		return interp.WrapError(d.e, err)
	}
	fr.regs[in.a].r = out
	return nil
}

// execSpawnOp launches a Cilk spawn: arguments were evaluated into
// registers by preceding instructions; here they are bound for the
// goroutine's lifetime, the (statically resolved) target is checked,
// and the callee runs in its own goroutine with parallelism disabled.
func (mc *Machine) execSpawnOp(fr *frame, in *instr) error {
	d := in.aux.(*spawnDesc)
	args := make([]any, len(d.args))
	for k, ad := range d.args {
		v := fr.box(ad)
		mc.in.BindValue(v)
		args[k] = v
	}
	if d.target.kind == tgUndeclared {
		return interp.Errorf(d.s, "spawn target %q is not declared", d.name)
	}
	fut := &vmFuture{done: make(chan struct{}), node: d.s, args: args, target: d.target}
	go func() {
		defer close(fut.done)
		defer func() {
			if r := recover(); r != nil {
				fut.err = interp.Recovered(d.s, r)
			}
		}()
		fut.val, fut.err = mc.callProto(d.proto, args, d.s, fr.depth, nil, &fut.pending)
	}()
	fr.futures = append(fr.futures, fut)
	return nil
}
