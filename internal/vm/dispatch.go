// The switch-dispatch execution loop. Every instruction that can trap
// attributes the error to its span-table node (instr.nd) through the
// interp engine's error constructors, so trap codes, texts and spans
// are byte-identical to the tree walker's.
package vm

import (
	"errors"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/matrix"
)

// fusedLoopsRun counts opFused executions across all machines, for the
// driver's vm_fused_loops metric.
var fusedLoopsRun atomic.Int64

// FusedLoopsRun reports the number of fused chain loops executed by
// the VM process-wide.
func FusedLoopsRun() int64 { return fusedLoopsRun.Load() }

// withFlatRun counts with-loops executed on the flat engine (rather
// than falling back to the per-element closure path) across all
// machines, for the driver's vm_with_flat_loops metric.
var withFlatRun atomic.Int64

// WithFlatLoopsRun reports the number of with-loops the VM executed on
// the flat engine process-wide.
func WithFlatLoopsRun() int64 { return withFlatRun.Load() }

// fusedArg resolves one compiled fused operand against the frame's
// registers. A boxed register holding a non-matrix (only possible via
// unchecked programs) resolves to a nil matrix, which FusedExec rejects
// like the unfused engine's nil check.
func (fr *frame) fusedArg(p fusedArgPlan, elem matrix.Elem) matrix.FusedArg {
	switch p.kind {
	case matrix.FusedStageArg:
		return matrix.FusedArg{Kind: matrix.FusedStageArg, Stage: p.stage}
	case matrix.FusedMatrixArg:
		m, _ := fr.regs[p.reg].r.(*matrix.Matrix)
		return matrix.FusedArg{Kind: matrix.FusedMatrixArg, Mat: m}
	}
	if elem == matrix.Int {
		return matrix.FusedArg{Kind: matrix.FusedScalarArg, I: fr.regs[p.reg].i}
	}
	return matrix.FusedArg{Kind: matrix.FusedScalarArg, F: fr.regs[p.reg].f}
}

func (mc *Machine) exec(fr *frame, p *proto) error {
	code := p.code
	regs := fr.regs
	for pc := 0; pc < len(code); {
		in := &code[pc]
		switch in.op {
		case opNop:

		case opStep:
			// Statement boundary: the previous statement's pending rc
			// references die, then the new statement ticks the budget.
			if len(fr.pending) > 0 {
				mc.flush(fr)
			}
			if err := mc.in.StepTick(in.nd); err != nil {
				return err
			}

		case opFlush:
			mc.flush(fr)

		case opJmp:
			pc = int(in.c)
			continue
		case opBrFalse:
			if regs[in.a].i == 0 {
				pc = int(in.c)
				continue
			}
		case opBrTrue:
			if regs[in.a].i != 0 {
				pc = int(in.c)
				continue
			}

		case opRet:
			fr.hasRet = true
			if in.a >= 0 {
				fr.ret = fr.box(argDesc{reg: in.a, cl: class(in.b)})
			}
			return nil

		case opFail:
			return in.aux.(error)

		// Fused branch-if-false compare-and-branch forms: jump when
		// the source comparison does NOT hold.
		case opBrLtI:
			if !(regs[in.a].i < regs[in.b].i) {
				pc = int(in.c)
				continue
			}
		case opBrLeI:
			if !(regs[in.a].i <= regs[in.b].i) {
				pc = int(in.c)
				continue
			}
		case opBrGtI:
			if !(regs[in.a].i > regs[in.b].i) {
				pc = int(in.c)
				continue
			}
		case opBrGeI:
			if !(regs[in.a].i >= regs[in.b].i) {
				pc = int(in.c)
				continue
			}
		case opBrEqI:
			if regs[in.a].i != regs[in.b].i {
				pc = int(in.c)
				continue
			}
		case opBrNeI:
			if regs[in.a].i == regs[in.b].i {
				pc = int(in.c)
				continue
			}
		case opBrLtIK:
			if !(regs[in.a].i < int64(in.b)) {
				pc = int(in.c)
				continue
			}
		case opBrLeIK:
			if !(regs[in.a].i <= int64(in.b)) {
				pc = int(in.c)
				continue
			}
		case opBrGtIK:
			if !(regs[in.a].i > int64(in.b)) {
				pc = int(in.c)
				continue
			}
		case opBrGeIK:
			if !(regs[in.a].i >= int64(in.b)) {
				pc = int(in.c)
				continue
			}
		case opBrEqIK:
			if regs[in.a].i != int64(in.b) {
				pc = int(in.c)
				continue
			}
		case opBrNeIK:
			if regs[in.a].i == int64(in.b) {
				pc = int(in.c)
				continue
			}

		case opConstI:
			regs[in.a].i = int64(in.b)
		case opLoadK:
			regs[in.a] = mc.p.consts[in.b]
		case opMove:
			regs[in.a] = regs[in.b]

		case opGLoad:
			regs[in.a] = mc.globals[in.b]
		case opGStore:
			mc.globals[in.a] = regs[in.b]
		case opGBindR:
			v := regs[in.b].r
			mc.in.BindValue(v)
			mc.in.ReleaseValue(mc.globals[in.a].r)
			mc.globals[in.a].r = v

		case opAddI:
			regs[in.a].i = regs[in.b].i + regs[in.c].i
		case opSubI:
			regs[in.a].i = regs[in.b].i - regs[in.c].i
		case opMulI:
			regs[in.a].i = regs[in.b].i * regs[in.c].i
		case opDivI:
			d := regs[in.c].i
			if d == 0 {
				return interp.Errorf(in.nd, "matrix: integer division by zero")
			}
			regs[in.a].i = regs[in.b].i / d
		case opModI:
			d := regs[in.c].i
			if d == 0 {
				return interp.Errorf(in.nd, "matrix: integer modulo by zero")
			}
			regs[in.a].i = regs[in.b].i % d
		case opNegI:
			regs[in.a].i = -regs[in.b].i
		case opAddIK:
			regs[in.a].i = regs[in.b].i + int64(in.c)

		case opAddF:
			regs[in.a].f = regs[in.b].f + regs[in.c].f
		case opSubF:
			regs[in.a].f = regs[in.b].f - regs[in.c].f
		case opMulF:
			regs[in.a].f = regs[in.b].f * regs[in.c].f
		case opDivF:
			regs[in.a].f = regs[in.b].f / regs[in.c].f
		case opNegF:
			regs[in.a].f = -regs[in.b].f

		case opLtI:
			regs[in.a].i = b2i(regs[in.b].i < regs[in.c].i)
		case opLeI:
			regs[in.a].i = b2i(regs[in.b].i <= regs[in.c].i)
		case opGtI:
			regs[in.a].i = b2i(regs[in.b].i > regs[in.c].i)
		case opGeI:
			regs[in.a].i = b2i(regs[in.b].i >= regs[in.c].i)
		case opEqI:
			regs[in.a].i = b2i(regs[in.b].i == regs[in.c].i)
		case opNeI:
			regs[in.a].i = b2i(regs[in.b].i != regs[in.c].i)
		case opLtF:
			regs[in.a].i = b2i(regs[in.b].f < regs[in.c].f)
		case opLeF:
			regs[in.a].i = b2i(regs[in.b].f <= regs[in.c].f)
		case opGtF:
			regs[in.a].i = b2i(regs[in.b].f > regs[in.c].f)
		case opGeF:
			regs[in.a].i = b2i(regs[in.b].f >= regs[in.c].f)
		case opEqF:
			regs[in.a].i = b2i(regs[in.b].f == regs[in.c].f)
		case opNeF:
			regs[in.a].i = b2i(regs[in.b].f != regs[in.c].f)
		case opEqB:
			regs[in.a].i = b2i(regs[in.b].i == regs[in.c].i)
		case opNeB:
			regs[in.a].i = b2i(regs[in.b].i != regs[in.c].i)
		case opNotB:
			regs[in.a].i = 1 - regs[in.b].i

		case opI2F:
			regs[in.a].f = float64(regs[in.b].i)
		case opF2I:
			regs[in.a].i = int64(regs[in.b].f)
		case opB2I:
			regs[in.a].i = regs[in.b].i
		case opI2B:
			regs[in.a].i = b2i(regs[in.b].i != 0)
		case opF2B:
			regs[in.a].i = b2i(regs[in.b].f != 0)
		case opB2F:
			regs[in.a].f = float64(regs[in.b].i)

		case opUnboxI:
			regs[in.a].i = regs[in.b].r.(int64)
		case opUnboxF:
			regs[in.a].f = regs[in.b].r.(float64)
		case opUnboxB:
			regs[in.a].i = b2i(regs[in.b].r.(bool))
		case opToBool:
			b, ok := regs[in.b].r.(bool)
			if !ok {
				return interp.Errorf(in.nd, "condition evaluated to %T, not bool", regs[in.b].r)
			}
			regs[in.a].i = b2i(b)
		case opToInt:
			n, ok := regs[in.b].r.(int64)
			if !ok {
				return interp.Errorf(in.nd, "expected an int value, got %T", regs[in.b].r)
			}
			regs[in.a].i = n
		case opCoerce:
			v, err := interp.CoerceValue(in.nd, in.aux.(*typeAux).ty, fr.box(in.aux.(*typeAux).src))
			if err != nil {
				return err
			}
			regs[in.a].r = v
		case opPromote:
			regs[in.a].r = interp.PromoteScalar(in.aux.(*typeAux).ty, fr.box(in.aux.(*typeAux).src))
		case opBindR:
			v := regs[in.b].r
			mc.in.BindValue(v)
			mc.in.ReleaseValue(regs[in.a].r)
			regs[in.a].r = v
		case opSCBool:
			ta := in.aux.(*typeAux)
			b, ok := fr.box(ta.src).(bool)
			if !ok {
				return interp.Errorf(in.nd, "operator %s requires bool operands", ta.op)
			}
			regs[in.a].r = b

		case opBinM:
			d := in.aux.(*binDesc)
			v, err := interp.EvalBinary(d.e, fr.box(d.l), fr.box(d.r), mc.in.Exec(fr.pool))
			if err != nil {
				return err
			}
			if err := fr.store(in.a, class(in.b), v, in.nd); err != nil {
				return err
			}
		case opFused:
			d := in.aux.(*fusedDesc)
			stages := make([]matrix.FusedStage, len(d.stages))
			for i := range d.stages {
				sp := &d.stages[i]
				stages[i] = matrix.FusedStage{
					Op: sp.op,
					L:  fr.fusedArg(sp.l, d.elem),
					R:  fr.fusedArg(sp.r, d.elem),
				}
			}
			out, failed, err := matrix.FusedExec(stages, d.elem, mc.in.Exec(fr.pool))
			if err != nil {
				nd := ast.Node(d.e)
				if failed >= 0 && failed < len(d.stages) {
					nd = d.stages[failed].node
				}
				if errors.Is(err, matrix.ErrUnassignedOperand) {
					return interp.Errorf(nd, "use of unassigned matrix")
				}
				return interp.WrapError(nd, err)
			}
			fusedLoopsRun.Add(1)
			if err := fr.store(in.a, clR, out, in.nd); err != nil {
				return err
			}

		case opUnM:
			d := in.aux.(*unDesc)
			v, err := interp.EvalUnary(d.e, fr.box(d.x), mc.in.Exec(fr.pool))
			if err != nil {
				return err
			}
			if err := fr.store(in.a, class(in.b), v, in.nd); err != nil {
				return err
			}
		case opCastD:
			d := in.aux.(*castAux)
			v, err := interp.CastScalar(in.nd, d.to, fr.box(d.x))
			if err != nil {
				return err
			}
			if err := fr.store(in.a, class(in.b), v, in.nd); err != nil {
				return err
			}

		default:
			if err := mc.execSlow(fr, in); err != nil {
				return err
			}
		}
		pc++
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// maskMatrix converts a boxed mask operand, tolerating the nil-matrix
// case exactly like the tree walker (a nil *Matrix reaches
// matrix.Mask and panics inside the kernel, recovered as trap:panic).
func maskMatrix(v any) *matrix.Matrix {
	m, _ := v.(*matrix.Matrix)
	return m
}
