// The bytecode compiler: lowers a checked AST to Program protos. The
// lowering is conservative — every construct whose exact tree-walker
// semantics (evaluation order, error text, error position) cannot be
// reproduced in bytecode aborts compilation with an error, and the
// driver falls back to the tree engine for that program.
package vm

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/sem"
	"repro/internal/types"
	"repro/internal/vet"
)

// compileError aborts compilation (recovered in Compile).
type compileError struct{ err error }

func bail(format string, args ...any) {
	panic(compileError{fmt.Errorf("vm: "+format, args...)})
}

// Compile lowers a checked program to bytecode. A nil error means the
// compiled Program reproduces the tree walker's observable behavior
// (stdout, traps, exit code, budget accounting) exactly; any construct
// the compiler cannot pin down returns an error instead.
func Compile(prog *ast.Program, info *sem.Info) (p *Program, err error) {
	return CompileWithFacts(prog, info, vet.ComputeFacts(prog, info))
}

// CompileWithFacts is Compile with a precomputed vet.Facts side table
// (the driver caches Facts content-addressed and passes them in so the
// analysis runs once per source, not once per compile). facts may be
// nil: the program compiles without fusion.
func CompileWithFacts(prog *ast.Program, info *sem.Info, facts *vet.Facts) (p *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			ce, ok := r.(compileError)
			if !ok {
				panic(r)
			}
			p, err = nil, ce.err
		}
	}()
	c := &compiler{
		prog:     prog,
		info:     info,
		facts:    facts,
		protoIdx: map[string]int{},
		globIdx:  map[string]int{},
		kInt:     map[int64]int32{},
		kFloat:   map[float64]int32{},
		kStr:     map[string]int32{},
	}
	// Pass 1: assign slots so bodies can reference any function or (in
	// function bodies) any global regardless of declaration order.
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if _, dup := c.protoIdx[d.Name]; dup {
				bail("duplicate function %q", d.Name)
			}
			c.protoIdx[d.Name] = len(c.protos)
			c.protos = append(c.protos, &proto{name: d.Name, decl: d})
		case *ast.GlobalVarDecl:
			if _, dup := c.globIdx[d.Name]; dup {
				bail("duplicate global %q", d.Name)
			}
			ty, terr := types.FromAST(d.Type)
			if terr != nil {
				// The tree walker diagnoses this before running anything;
				// keep the exact wrapped error as the first ginit op.
				ty = types.InvalidT
			}
			c.globIdx[d.Name] = len(c.globals)
			c.globals = append(c.globals, globalDef{name: d.Name, ty: ty, cl: classOf(ty)})
		}
	}
	// Pass 2: function bodies.
	for _, d := range prog.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			c.compileFunc(c.protoIdx[fd.Name], fd)
		}
	}
	c.compileGinit()
	main := -1
	if sig, ok := info.Funcs["main"]; ok {
		mi, ok := c.protoIdx[sig.Decl.Name]
		if !ok {
			bail("main signature has no compiled proto")
		}
		main = mi
	}
	return &Program{
		prog:       prog,
		info:       info,
		protos:     c.protos,
		consts:     c.consts,
		globals:    c.globals,
		ginit:      c.ginit,
		main:       main,
		fusedSites: c.fusedSites,
		withSites:  c.withSites,
	}, nil
}

type compiler struct {
	prog       *ast.Program
	info       *sem.Info
	facts      *vet.Facts
	fusedSites int
	withSites  int
	protos     []*proto
	protoIdx   map[string]int
	globals    []globalDef
	globIdx    map[string]int
	ginit      *proto
	// ginitDeclared limits global visibility while compiling global
	// initializers: the tree walker binds globals one at a time, so an
	// initializer referencing a later global fails "undeclared".
	inGinit       bool
	ginitDeclared int

	consts []value
	kInt   map[int64]int32
	kFloat map[float64]int32
	kStr   map[string]int32
}

func (c *compiler) constVal(v value) int32 {
	c.consts = append(c.consts, v)
	return int32(len(c.consts) - 1)
}

func (c *compiler) constInt(n int64) int32 {
	if k, ok := c.kInt[n]; ok {
		return k
	}
	k := c.constVal(value{i: n})
	c.kInt[n] = k
	return k
}

func (c *compiler) constFloat(f float64) int32 {
	if k, ok := c.kFloat[f]; ok {
		return k
	}
	k := c.constVal(value{f: f})
	c.kFloat[f] = k
	return k
}

func (c *compiler) constBoxed(v any) int32 {
	if s, ok := v.(string); ok {
		if k, ok := c.kStr[s]; ok {
			return k
		}
		k := c.constVal(value{r: v})
		c.kStr[s] = k
		return k
	}
	return c.constVal(value{r: v})
}

// varSlot is one compile-time variable binding.
type varSlot struct {
	reg int32
	ty  *types.Type
	cl  class
}

// cscope is one lexical block's bindings; names keeps declaration
// order so capture lists (and therefore compiled programs) are
// deterministic.
type cscope struct {
	parent *cscope
	names  []string
	vars   map[string]varSlot
}

func (s *cscope) bind(name string, slot varSlot) {
	if _, ok := s.vars[name]; !ok {
		s.names = append(s.names, name)
	}
	s.vars[name] = slot
}

// fnc compiles one proto.
type fnc struct {
	c       *compiler
	code    []instr
	nreg    int
	scope   *cscope
	refRegs []int32
	// endStack tracks enclosing index dimensions for 'end'.
	endStack []*endEntry
	// breaks/continues are per-enclosing-loop patch lists.
	breaks    [][]int
	continues [][]int
	// epilogue collects jumps to the function end (break/continue with
	// no enclosing loop, matching the tree walker's silent unwinding).
	epilogue []int
}

type endEntry struct {
	base     int32 // base matrix R register
	dim      int32
	node     ast.Node // the enclosing IndexExpr (error attribution)
	reg      int32
	computed bool
}

func (f *fnc) emit(i instr) int {
	f.code = append(f.code, i)
	return len(f.code) - 1
}

func (f *fnc) reg() int32 {
	r := f.nreg
	f.nreg++
	if r > 1<<20 {
		bail("function needs more than %d registers", 1<<20)
	}
	return int32(r)
}

func (f *fnc) patch(sites []int) {
	to := int32(len(f.code))
	for _, s := range sites {
		f.code[s].c = to
	}
}

func (f *fnc) pushScope() { f.scope = &cscope{parent: f.scope, vars: map[string]varSlot{}} }
func (f *fnc) popScope()  { f.scope = f.scope.parent }

func (f *fnc) resolve(name string) (varSlot, bool) {
	for s := f.scope; s != nil; s = s.parent {
		if slot, ok := s.vars[name]; ok {
			return slot, true
		}
	}
	return varSlot{}, false
}

// resolveGlobal respects the tree walker's one-at-a-time global
// binding order inside the global initializer.
func (f *fnc) resolveGlobal(name string) (int, *globalDef, bool) {
	gi, ok := f.c.globIdx[name]
	if !ok {
		return 0, nil, false
	}
	if f.c.inGinit && gi >= f.c.ginitDeclared {
		return 0, nil, false
	}
	return gi, &f.c.globals[gi], true
}

func (f *fnc) declare(name string, ty *types.Type) varSlot {
	slot := varSlot{reg: f.reg(), ty: ty, cl: classOf(ty)}
	f.scope.bind(name, slot)
	if slot.cl == clR {
		f.refRegs = append(f.refRegs, slot.reg)
	}
	return slot
}

// compileFunc lowers one function declaration into its pre-assigned
// proto slot.
func (c *compiler) compileFunc(pi int, fd *ast.FuncDecl) {
	sig, ok := c.info.Funcs[fd.Name]
	if !ok || sig.Decl != fd {
		bail("function %q missing from checker info", fd.Name)
	}
	f := &fnc{c: c}
	f.pushScope()
	params := make([]paramDef, len(fd.Params))
	for k, p := range fd.Params {
		ty, err := types.FromAST(p.Type)
		if err != nil {
			// The tree walker re-derives parameter types per call and
			// errors at call time; too exotic to mirror in bytecode.
			bail("parameter %q of %q has an invalid type: %v", p.Name, fd.Name, err)
		}
		slot := f.declare(p.Name, ty)
		params[k] = paramDef{reg: slot.reg, ty: ty, cl: slot.cl}
	}
	f.compileStmt(fd.Body)
	f.patch(f.epilogue)
	pr := c.protos[pi]
	pr.code = f.code
	pr.nregs = f.nreg
	pr.params = params
	pr.refRegs = f.refRegs
	pr.retTy = sig.Type.Ret
}

// compileGinit lowers the global initializers: no step ticks (the tree
// walker's run loop calls evalExpr directly, not execStmt), a pending
// flush after every global, and bind-into-slot semantics identical to
// the tree's global frame.
func (c *compiler) compileGinit() {
	c.inGinit = true
	c.ginitDeclared = 0
	f := &fnc{c: c}
	f.pushScope()
	gi := 0
	for _, d := range c.prog.Decls {
		g, ok := d.(*ast.GlobalVarDecl)
		if !ok {
			continue
		}
		def := &c.globals[gi]
		if _, terr := types.FromAST(g.Type); terr != nil {
			f.emit(instr{op: opFail, nd: g, aux: interp.WrapError(g, terr)})
			break
		}
		var reg int32
		var cl class
		if g.Init != nil {
			r0, c0 := f.compileExpr(g.Init)
			reg, cl = f.coerceTo(g, def.ty, r0, c0)
		} else {
			reg, cl = f.zeroOf(g.Type, def.ty)
		}
		if def.cl == clR {
			if cl != clR {
				bail("global %q: class mismatch %d vs %d", g.Name, def.cl, cl)
			}
			f.emit(instr{op: opGBindR, a: int32(gi), b: reg, nd: g})
		} else {
			f.emit(instr{op: opGStore, a: int32(gi), b: reg, nd: g})
		}
		f.emit(instr{op: opFlush})
		gi++
		c.ginitDeclared = gi
	}
	c.inGinit = false
	c.ginit = &proto{name: "<globals>", code: f.code, nregs: f.nreg}
}

// zeroOf emits the declared type's zero value (tree: zeroValue(te)).
func (f *fnc) zeroOf(te ast.TypeExpr, ty *types.Type) (int32, class) {
	switch classOf(ty) {
	case clI:
		r := f.reg()
		f.emit(instr{op: opConstI, a: r, b: 0})
		return r, clI
	case clF:
		r := f.reg()
		f.emit(instr{op: opLoadK, a: r, b: f.c.constFloat(0)})
		return r, clF
	case clB:
		r := f.reg()
		f.emit(instr{op: opConstI, a: r, b: 0})
		return r, clB
	}
	r := f.reg()
	f.emit(instr{op: opLoadK, a: r, b: f.c.constBoxed(zeroBoxed(te))})
	return r, clR
}

// zeroBoxed mirrors the tree walker's AST-driven zeroValue for boxed
// classes (matrices nil, tuples elementwise, rc pointers null).
func zeroBoxed(te ast.TypeExpr) any {
	switch t := te.(type) {
	case *ast.PrimType:
		switch t.Kind {
		case ast.PrimInt:
			return int64(0)
		case ast.PrimFloat:
			return float64(0)
		case ast.PrimBool:
			return false
		}
		return nil
	case *ast.MatrixType:
		return (*matrix.Matrix)(nil)
	case *ast.TupleType:
		out := make([]any, len(t.Elems))
		for k, e := range t.Elems {
			out[k] = zeroBoxed(e)
		}
		return out
	case *ast.RcPtrType:
		return interp.ZeroValue(types.RcPtrOf(types.IntT))
	}
	return nil
}

// coerceTo emits the binding-time coercion of (reg, cl) to declared
// type ty at node nd (tree: coerceToType), returning a register of
// ty's class.
func (f *fnc) coerceTo(nd ast.Node, ty *types.Type, reg int32, cl class) (int32, class) {
	tcl := classOf(ty)
	switch {
	case tcl == cl && cl != clR:
		return reg, cl
	case tcl == clF && cl == clI:
		r := f.reg()
		f.emit(instr{op: opI2F, a: r, b: reg})
		return r, clF
	case tcl == clR:
		r := f.reg()
		f.emit(instr{op: opCoerce, a: r, nd: nd,
			aux: &typeAux{ty: ty, src: argDesc{reg: reg, cl: cl}}})
		return r, clR
	case cl == clR:
		// Dynamic value into a scalar slot: coerce (validates / promotes)
		// then unbox. Unreachable in checked programs for anything but
		// Invalid statics, where the tree walker would store the boxed
		// value; keep the conservative runtime check.
		r := f.reg()
		f.emit(instr{op: opCoerce, a: r, nd: nd,
			aux: &typeAux{ty: ty, src: argDesc{reg: reg, cl: cl}}})
		out := f.reg()
		switch tcl {
		case clI:
			f.emit(instr{op: opToInt, a: out, b: r, nd: nd})
		case clF:
			f.emit(instr{op: opUnboxF, a: out, b: r, nd: nd})
		default:
			f.emit(instr{op: opToBool, a: out, b: r, nd: nd})
		}
		return out, tcl
	}
	// Statically impossible scalar/scalar mismatch (e.g. bool into int):
	// the checker rejects these programs before execution.
	bail("unassignable scalar classes %d -> %d at %s", cl, tcl, nd.Span())
	return 0, tcl
}

// step emits the statement-entry opcode (flush + cancel poll + step
// budget tick): the one-tick-per-executed-statement contract.
func (f *fnc) step(s ast.Stmt) {
	var nd ast.Node
	if s != nil {
		nd = s
	}
	f.emit(instr{op: opStep, nd: nd})
}

func (f *fnc) compileStmt(s ast.Stmt) {
	f.step(s)
	f.compileStmtInner(s)
}

func (f *fnc) compileStmtInner(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
		return

	case *ast.BlockStmt:
		f.pushScope()
		for _, st := range s.Stmts {
			f.compileStmt(st)
		}
		f.popScope()

	case *ast.DeclStmt:
		ty, err := types.FromAST(s.Type)
		if err != nil {
			f.emit(instr{op: opFail, nd: s, aux: interp.WrapError(s, err)})
			// Keep scopes coherent for the (unreachable) rest.
			ty = types.InvalidT
		}
		var reg int32
		var cl class
		if s.Init != nil {
			r0, c0 := f.compileExpr(s.Init)
			reg, cl = f.coerceTo(s, ty, r0, c0)
		} else {
			reg, cl = f.zeroOf(s.Type, ty)
		}
		slot := f.declare(s.Name, ty)
		f.storeVar(slot, reg, cl)

	case *ast.AssignStmt:
		rr, rc := f.compileExpr(s.RHS)
		if len(s.LHS) == 1 {
			f.compileAssign(s.LHS[0], rr, rc)
			return
		}
		if rc != clR {
			// Statically a non-tuple: the tree walker fails the runtime
			// tuple check with this exact text.
			f.emit(instr{op: opFail, nd: s,
				aux: interp.Errorf(s, "destructuring assignment requires a %d-tuple", len(s.LHS))})
			return
		}
		f.emit(instr{op: opTupCheck, a: rr, b: int32(len(s.LHS)), nd: s})
		for k, l := range s.LHS {
			t := f.reg()
			f.emit(instr{op: opTupGet, a: t, b: rr, c: int32(k)})
			f.compileAssign(l, t, clR)
		}

	case *ast.IfStmt:
		fall := f.condFalse(s.Cond)
		f.compileStmt(s.Then)
		if s.Else != nil {
			out := f.emit(instr{op: opJmp})
			f.patch(fall)
			f.compileStmt(s.Else)
			f.patch([]int{out})
		} else {
			f.patch(fall)
		}

	case *ast.WhileStmt:
		f.breaks = append(f.breaks, nil)
		f.continues = append(f.continues, nil)
		top := len(f.code)
		exit := f.condFalse(s.Cond)
		f.compileStmt(s.Body)
		f.emit(instr{op: opJmp, c: int32(top)})
		n := len(f.breaks) - 1
		for _, site := range f.continues[n] {
			f.code[site].c = int32(top)
		}
		f.patch(f.breaks[n])
		f.patch(exit)
		f.breaks = f.breaks[:n]
		f.continues = f.continues[:n]

	case *ast.ForStmt:
		f.pushScope()
		if s.Init != nil {
			f.compileStmt(s.Init)
		}
		f.breaks = append(f.breaks, nil)
		f.continues = append(f.continues, nil)
		top := len(f.code)
		var exit []int
		if s.Cond != nil {
			exit = f.condFalse(s.Cond)
		}
		f.compileStmt(s.Body)
		post := len(f.code)
		if s.Post != nil {
			f.compileStmt(s.Post)
		}
		f.emit(instr{op: opJmp, c: int32(top)})
		n := len(f.breaks) - 1
		for _, site := range f.continues[n] {
			f.code[site].c = int32(post)
		}
		f.patch(f.breaks[n])
		f.patch(exit)
		f.breaks = f.breaks[:n]
		f.continues = f.continues[:n]
		f.popScope()

	case *ast.ReturnStmt:
		if s.Value == nil {
			f.emit(instr{op: opRet, a: -1, nd: s})
			return
		}
		r, cl := f.compileExpr(s.Value)
		f.emit(instr{op: opRet, a: r, b: int32(cl), nd: s})

	case *ast.ExprStmt:
		f.compileExpr(s.X)

	case *ast.BreakStmt:
		site := f.emit(instr{op: opJmp, nd: s})
		if n := len(f.breaks); n > 0 {
			f.breaks[n-1] = append(f.breaks[n-1], site)
		} else {
			// No enclosing loop: the tree walker unwinds to the function
			// end silently (ctlBreak reaches callFunction as a no-op).
			f.epilogue = append(f.epilogue, site)
		}
	case *ast.ContinueStmt:
		site := f.emit(instr{op: opJmp, nd: s})
		if n := len(f.continues); n > 0 {
			f.continues[n-1] = append(f.continues[n-1], site)
		} else {
			f.epilogue = append(f.epilogue, site)
		}

	case *ast.SpawnStmt:
		f.compileSpawn(s)

	case *ast.SyncStmt:
		f.emit(instr{op: opSync, nd: s})

	default:
		f.emit(instr{op: opFail, nd: s, aux: interp.Errorf(s, "unknown statement %T", s)})
	}
}

// storeVar writes an already-coerced value into a variable slot
// (bind-new-release-old for boxed classes).
func (f *fnc) storeVar(slot varSlot, reg int32, cl class) {
	if slot.cl != cl {
		bail("slot class mismatch %d vs %d", slot.cl, cl)
	}
	if slot.cl == clR {
		f.emit(instr{op: opBindR, a: slot.reg, b: reg})
	} else {
		f.emit(instr{op: opMove, a: slot.reg, b: reg})
	}
}

// compileAssign stores an evaluated RHS into an lvalue, mirroring the
// tree walker's assignTo.
func (f *fnc) compileAssign(lhs ast.Expr, reg int32, cl class) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if slot, ok := f.resolve(l.Name); ok {
			r, c := f.coerceTo(l, slot.ty, reg, cl)
			f.storeVar(slot, r, c)
			return
		}
		if gi, def, ok := f.resolveGlobal(l.Name); ok {
			r, c := f.coerceTo(l, def.ty, reg, cl)
			if def.cl != c {
				bail("global %q assign class mismatch", l.Name)
			}
			if def.cl == clR {
				f.emit(instr{op: opGBindR, a: int32(gi), b: r, nd: l})
			} else {
				f.emit(instr{op: opGStore, a: int32(gi), b: r, nd: l})
			}
			return
		}
		f.emit(instr{op: opFail, nd: l, aux: interp.Errorf(l, "undeclared variable %q", l.Name)})

	case *ast.IndexExpr:
		base, bcl := f.compileExpr(l.X)
		if bcl != clR {
			f.emit(instr{op: opFail, nd: l,
				aux: interp.Errorf(l, "cannot index-assign into a non-matrix or unassigned matrix")})
			return
		}
		f.emit(instr{op: opIdxCheck, a: base, b: int32(len(l.Args)), c: 1, nd: l})
		if f.fusedSet(l, base, reg, cl) {
			return
		}
		plans := f.compilePlans(l, base)
		f.emit(instr{op: opSetIndex, a: base, nd: l,
			aux: &setIndexDesc{e: l, plans: plans, val: argDesc{reg: reg, cl: cl}}})

	default:
		f.emit(instr{op: opFail, nd: lhs,
			aux: interp.Errorf(lhs, "cannot assign to %s", ast.ExprString(lhs))})
	}
}

// compileSpawn lowers spawn f(args) [into target]: the static checks
// come first (before argument evaluation, like the tree walker), then
// the arguments, then the spawn op with a statically resolved target.
func (f *fnc) compileSpawn(s *ast.SpawnStmt) {
	call, ok := s.Call.(*ast.CallExpr)
	if !ok {
		f.emit(instr{op: opFail, nd: s, aux: interp.Errorf(s, "spawn requires a function call")})
		return
	}
	sig, ok := f.c.info.Funcs[call.Fun]
	if !ok {
		f.emit(instr{op: opFail, nd: s,
			aux: interp.Errorf(s, "spawn requires a user-defined function, %q is not one", call.Fun)})
		return
	}
	pi, ok := f.c.protoIdx[sig.Decl.Name]
	if !ok {
		bail("spawned function %q has no proto", call.Fun)
	}
	args := make([]argDesc, len(call.Args))
	for k, a := range call.Args {
		r, cl := f.compileExpr(a)
		args[k] = argDesc{reg: r, cl: cl}
	}
	d := &spawnDesc{s: s, proto: pi, args: args, name: s.Target}
	if s.Target == "" {
		d.target = targetRef{kind: tgNone}
	} else if slot, ok := f.resolve(s.Target); ok {
		d.target = targetRef{kind: tgLocal, reg: slot.reg, cl: slot.cl, ty: slot.ty}
	} else if gi, def, ok := f.resolveGlobal(s.Target); ok {
		d.target = targetRef{kind: tgGlobal, reg: int32(gi), cl: def.cl, ty: def.ty}
	} else {
		d.target = targetRef{kind: tgUndeclared}
	}
	f.emit(instr{op: opSpawn, nd: s, aux: d})
}

// condFalse compiles a statement condition and returns the patch sites
// of the branch taken when it is false. Integer comparisons fuse into
// compare-and-branch forms; everything else evaluates to a bool
// register (with the tree walker's runtime check for non-bool statics).
func (f *fnc) condFalse(cond ast.Expr) []int {
	if be, ok := cond.(*ast.BinaryExpr); ok {
		if neg, ok := fusableIntCmp[be.Op]; ok &&
			f.c.info.TypeOf(be.L).Kind == types.Int &&
			f.c.info.TypeOf(be.R).Kind == types.Int {
			if k, ok := smallIntLit(be.R); ok {
				l := f.operand(be.L, clI)
				return []int{f.emit(instr{op: neg.kform, a: l, b: k, nd: be})}
			}
			if k, ok := smallIntLit(be.L); ok {
				r := f.operand(be.R, clI)
				return []int{f.emit(instr{op: swapCmp[neg.kform], a: r, b: k, nd: be})}
			}
			l := f.operand(be.L, clI)
			r := f.operand(be.R, clI)
			return []int{f.emit(instr{op: neg.rform, a: l, b: r, nd: be})}
		}
	}
	b := f.compileBool(cond)
	return []int{f.emit(instr{op: opBrFalse, a: b, nd: cond})}
}

// compileBool evaluates cond into a bool register, mirroring evalBool.
func (f *fnc) compileBool(cond ast.Expr) int32 {
	r, cl := f.compileExpr(cond)
	switch cl {
	case clB:
		return r
	case clR:
		out := f.reg()
		f.emit(instr{op: opToBool, a: out, b: r, nd: cond})
		return out
	case clI:
		f.emit(instr{op: opFail, nd: cond,
			aux: interp.Errorf(cond, "condition evaluated to %T, not bool", int64(0))})
	case clF:
		f.emit(instr{op: opFail, nd: cond,
			aux: interp.Errorf(cond, "condition evaluated to %T, not bool", float64(0))})
	}
	return f.reg()
}

// compileInt evaluates e into an int register, mirroring evalInt.
func (f *fnc) compileInt(e ast.Expr) int32 {
	r, cl := f.compileExpr(e)
	switch cl {
	case clI:
		return r
	case clR:
		out := f.reg()
		f.emit(instr{op: opToInt, a: out, b: r, nd: e})
		return out
	case clF:
		f.emit(instr{op: opFail, nd: e,
			aux: interp.Errorf(e, "expected an int value, got %T", float64(0))})
	case clB:
		f.emit(instr{op: opFail, nd: e,
			aux: interp.Errorf(e, "expected an int value, got %T", false)})
	}
	return f.reg()
}

// operand evaluates e and asserts its static class.
func (f *fnc) operand(e ast.Expr, want class) int32 {
	r, cl := f.compileExpr(e)
	if cl != want {
		bail("operand %s has class %d, want %d", ast.ExprString(e), cl, want)
	}
	return r
}

type cmpForms struct{ rform, kform opcode }

// fusableIntCmp maps a comparison operator to its branch-if-FALSE
// opcodes (the branch is taken when the comparison does not hold).
var fusableIntCmp = map[ast.BinOp]cmpForms{
	ast.OpLt: {opBrLtI, opBrLtIK},
	ast.OpLe: {opBrLeI, opBrLeIK},
	ast.OpGt: {opBrGtI, opBrGtIK},
	ast.OpGe: {opBrGeI, opBrGeIK},
	ast.OpEq: {opBrEqI, opBrEqIK},
	ast.OpNe: {opBrNeI, opBrNeIK},
}

// swapCmp mirrors a K-form comparison when the literal is on the left:
// K op x  ==  x op' K.
var swapCmp = map[opcode]opcode{
	opBrLtIK: opBrGtIK,
	opBrLeIK: opBrGeIK,
	opBrGtIK: opBrLtIK,
	opBrGeIK: opBrLeIK,
	opBrEqIK: opBrEqIK,
	opBrNeIK: opBrNeIK,
}

// smallIntLit reports e as an int literal fitting an int32 immediate.
func smallIntLit(e ast.Expr) (int32, bool) {
	lit, ok := e.(*ast.IntLit)
	if !ok || lit.Value < -1<<31 || lit.Value >= 1<<31 {
		return 0, false
	}
	return int32(lit.Value), true
}
