// White-box tests for vet.Facts-driven with-loop compilation: proven
// genarray/fold bodies must lower to opWithGen/opWithFold and run on
// the flat engine; everything the legality rules exclude must keep the
// closure lowering. Behavioral equivalence is covered by the
// dual-engine differential suite at the repository root.
package vm

import (
	"strings"
	"testing"

	"repro/internal/interp"
)

func TestCompileWithFlatSites(t *testing.T) {
	p := compile(t, `
int main() {
	int n = 8;
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], (float)i * 2.0 + j);
	Matrix float <2> tr;
	tr = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], m[j, i]);
	float s = with ([0, 0] <= [i, j] < [n, n]) fold(+, 0.0, m[i, j] * tr[j, i]);
	print(s);
	return 0;
}`)
	if got := p.WithCompiled(); got != 3 {
		t.Fatalf("WithCompiled = %d, want 3", got)
	}
	ops := countOps(p)
	if ops[opWithGen] != 2 || ops[opWithFold] != 1 {
		t.Errorf("opWithGen = %d, opWithFold = %d, want 2 and 1: %v",
			ops[opWithGen], ops[opWithFold], ops)
	}
	if ops[opWith] != 0 {
		t.Errorf("opWith emitted %d times, want 0 (all sites proven)", ops[opWith])
	}
}

func TestCompileDeclinesUnprovenWithBodies(t *testing.T) {
	for _, tc := range []struct {
		name, src string
	}{
		{"call_in_body", `
float f(int i) { return (float)i; }
int main() {
	Matrix float <1> m;
	m = with ([0] <= [i] < [4]) genarray([4], f(i));
	print(m[0]);
	return 0;
}`},
		{"global_matrix_leaf", `
Matrix float <1> g = [0 :: 3] * 1.0;
int main() {
	Matrix float <1> m;
	m = with ([0] <= [i] < [4]) genarray([4], g[i] + 1.0);
	print(m[0]);
	return 0;
}`},
		{"modulo_body", `
int main() {
	Matrix int <1> m;
	m = with ([0] <= [i] < [4]) genarray([4], i % 3);
	print(m[0]);
	return 0;
}`},
		{"int_division_body", `
int main() {
	Matrix int <1> m;
	m = with ([0] <= [i] < [4]) genarray([4], i / 2);
	print(m[0]);
	return 0;
}`},
		{"nested_with_body", `
int main() {
	Matrix float <1> m;
	m = with ([0] <= [i] < [4])
		genarray([4], with ([0] <= [k] < [3]) fold(+, 0.0, (float)(i + k)) / 3.0);
	print(m[0]);
	return 0;
}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := compile(t, tc.src)
			ops := countOps(p)
			switch tc.name {
			case "nested_with_body":
				// The outer genarray keeps the closure path, but the inner
				// fold compiles flat inside the body proto (its leaves are
				// the outer ids, plain int locals there).
				if p.WithCompiled() != 1 || ops[opWith] != 1 || ops[opWithFold] != 1 {
					t.Errorf("WithCompiled = %d, opWith = %d, opWithFold = %d, want 1/1/1",
						p.WithCompiled(), ops[opWith], ops[opWithFold])
				}
			default:
				if p.WithCompiled() != 0 {
					t.Errorf("WithCompiled = %d, want 0 (body must not be proven)", p.WithCompiled())
				}
				if ops[opWithGen]+ops[opWithFold] != 0 {
					t.Errorf("flat opcodes emitted for an unproven body: %v", ops)
				}
			}
		})
	}
}

func TestWithFlatRunsCorrectly(t *testing.T) {
	p := compile(t, `
int main() {
	int n = 6;
	Matrix int <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], i * 10 + j);
	Matrix int <2> tr;
	tr = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], m[j, i]);
	print(tr[1, 4]);
	int s = with ([0, 0] <= [i, j] < [n, n]) fold(+, 0, m[i, j]);
	print(s);
	float shifted = with ([1] <= [i] < [5])
		fold(+, 0.0, (float)(m[0, i] - m[0, i - 1]));
	print(shifted);
	return 0;
}`)
	if got := p.WithCompiled(); got != 4 {
		t.Fatalf("WithCompiled = %d, want 4", got)
	}
	before := WithFlatLoopsRun()
	var out strings.Builder
	i := interp.New(p.prog, p.info, interp.Options{Stdout: &out})
	defer i.Close()
	if _, err := NewMachine(p, i).Run(); err != nil {
		t.Fatal(err)
	}
	// tr[1,4] = m[4,1] = 41; sum of i*10+j over 6x6 = 990; the
	// telescoping shifted sum over row 0 is m[0,4]-m[0,0] = 4.
	want := "41\n990\n4\n"
	if out.String() != want {
		t.Errorf("stdout = %q, want %q", out.String(), want)
	}
	if got := WithFlatLoopsRun() - before; got != 4 {
		t.Errorf("WithFlatLoopsRun advanced by %d, want 4", got)
	}
}

func TestWithFlatScalarLeaves(t *testing.T) {
	p := compile(t, `
int main() {
	int bias = 7;
	float scale = 0.5;
	Matrix float <1> m;
	m = with ([0] <= [i] < [8]) genarray([8], (float)(i + bias) * scale);
	print(m[0]);
	print(m[7]);
	return 0;
}`)
	if got := p.WithCompiled(); got != 1 {
		t.Fatalf("WithCompiled = %d, want 1", got)
	}
	var out strings.Builder
	i := interp.New(p.prog, p.info, interp.Options{Stdout: &out})
	defer i.Close()
	if _, err := NewMachine(p, i).Run(); err != nil {
		t.Fatal(err)
	}
	if want := "3.5\n7\n"; out.String() != want {
		t.Errorf("stdout = %q, want %q", out.String(), want)
	}
}
