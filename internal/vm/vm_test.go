// White-box compiler tests: the fused opcode forms the whole exercise
// is about must actually be emitted for the shapes they target, and
// the compiler must decline (never panic on) programs it cannot prove
// lowerable. Behavioral equivalence with the tree walker is covered by
// the dual-engine differential suite at the repository root.
package vm

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func compile(t *testing.T, src string) *Program {
	t.Helper()
	var d source.Diagnostics
	p := parser.ParseFile("t.xc", src, parser.AllExtensions(), &d)
	if p == nil {
		t.Fatalf("parse failed:\n%s", d.String())
	}
	info := sem.Check(p, &d)
	if d.HasErrors() {
		t.Fatalf("check failed:\n%s", d.String())
	}
	prog, err := Compile(p, info)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

// countOps tallies opcodes across all protos (ginit included).
func countOps(p *Program) map[opcode]int {
	n := map[opcode]int{}
	for _, pr := range p.protos {
		for _, in := range pr.code {
			n[in.op]++
		}
	}
	for _, in := range p.ginit.code {
		n[in.op]++
	}
	return n
}

func TestCompileFusesScalarLoop(t *testing.T) {
	p := compile(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 100; i++) { s = s + i; }
	while (s > 10) { s = s - 3; }
	return s;
}`)
	ops := countOps(p)
	if ops[opBrLtIK]+ops[opBrGtIK] == 0 {
		t.Errorf("no fused compare-and-branch-with-immediate emitted: %v", ops)
	}
	if ops[opAddIK] == 0 {
		t.Errorf("no fused add-immediate emitted (i++ / s - 3): %v", ops)
	}
	if ops[opBinM] != 0 {
		t.Errorf("scalar-only program fell back to the dynamic operator %d times", ops[opBinM])
	}
}

func TestCompileFusesRank1Indexing(t *testing.T) {
	p := compile(t, `
int main() {
	Matrix float <1> a = init(Matrix float <1>, 8);
	for (int i = 0; i < 8; i++) { a[i] = (float)i; }
	float s = 0.0;
	for (int i = 0; i < 8; i++) { s = s + a[i]; }
	return (int)s;
}`)
	ops := countOps(p)
	if ops[opSetIdx1F] == 0 {
		t.Errorf("no fused rank-1 store emitted: %v", ops)
	}
	if ops[opIdx1F] == 0 {
		t.Errorf("no fused rank-1 load emitted: %v", ops)
	}
}

func TestCompileStepPerStatement(t *testing.T) {
	// One opStep per statement: main has exactly 3 statements (decl,
	// expression statement, return) plus the body block entry.
	p := compile(t, `
int main() {
	int x = 1;
	print(x);
	return 0;
}`)
	mp := p.protos[p.main]
	steps := 0
	for _, in := range mp.code {
		if in.op == opStep {
			steps++
		}
	}
	if steps != 4 {
		t.Errorf("main compiled with %d step ticks, want 4 (block + 3 statements)", steps)
	}
	// Global initializers never tick.
	for _, in := range p.ginit.code {
		if in.op == opStep {
			t.Error("ginit must not tick the step budget")
		}
	}
}

func TestMachineRunsCompiledProgram(t *testing.T) {
	p := compile(t, `
int main() {
	int s = 0;
	for (int i = 1; i <= 10; i++) { s = s + i; }
	print(s);
	return s % 7;
}`)
	var out strings.Builder
	i := interp.New(p.prog, p.info, interp.Options{Stdout: &out})
	defer i.Close()
	code, err := NewMachine(p, i).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "55\n" {
		t.Errorf("stdout = %q, want %q", out.String(), "55\n")
	}
	if code != 55%7 {
		t.Errorf("exit code = %d, want %d", code, 55%7)
	}
}

func TestCompileSharesProgramAcrossMachines(t *testing.T) {
	// One compiled Program must be reusable by concurrent machines
	// (the driver caches it); run it twice and from two goroutines.
	p := compile(t, `
int g = 3;
int main() { g = g + 1; return g; }`)
	done := make(chan int, 2)
	for k := 0; k < 2; k++ {
		go func() {
			i := interp.New(p.prog, p.info, interp.Options{Stdout: &strings.Builder{}})
			defer i.Close()
			code, err := NewMachine(p, i).Run()
			if err != nil {
				t.Error(err)
			}
			done <- code
		}()
	}
	for k := 0; k < 2; k++ {
		if code := <-done; code != 4 {
			t.Errorf("exit code = %d, want 4 (each machine owns its globals)", code)
		}
	}
}
