// The bytecode machine: a switch-dispatch loop over proto code, plus
// the call, with-loop, matrixMap and spawn runners. All resource
// policy (budgets, cancellation, rc bookkeeping, I/O) is delegated to
// the interp engine surface so both engines share one semantics.
package vm

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/par"
	"repro/internal/rc"
	"repro/internal/types"
)

// Machine executes a compiled Program against one interpreter's
// runtime services (budget, heap, pool, I/O). One Machine runs one
// program once; the Program itself is immutable and shareable.
type Machine struct {
	p       *Program
	in      *interp.Interp
	globals []value
}

// NewMachine pairs a compiled program with an interpreter instance
// (which supplies budgets, the worker pool, rc heap and I/O).
func NewMachine(p *Program, in *interp.Interp) *Machine {
	return &Machine{p: p, in: in}
}

// frame is one function activation: its registers, its statement-
// scoped pending rc releases, and its outstanding Cilk spawns.
type frame struct {
	regs    []value
	pending []*rc.Header
	futures []*vmFuture
	pool    *par.Pool
	depth   int
	ret     any
	hasRet  bool
}

// vmFuture is one outstanding spawned call (mirrors interp's
// spawnFuture).
type vmFuture struct {
	done    chan struct{}
	val     any
	err     error
	pending []*rc.Header
	args    []any
	target  targetRef
	node    ast.Node
}

// box reads an operand register as a boxed value.
func (fr *frame) box(d argDesc) any {
	switch d.cl {
	case clI:
		return fr.regs[d.reg].i
	case clF:
		return fr.regs[d.reg].f
	case clB:
		return fr.regs[d.reg].i != 0
	default:
		return fr.regs[d.reg].r
	}
}

// store writes a boxed value into a typed register. The checks are
// tolerant: a mismatch is unreachable in a checked program (binding
// coercion and return promotion pin runtime representations to static
// types), and int→float promotion covers the one dynamic seam the
// tree walker also papers over.
func (fr *frame) store(reg int32, cl class, v any, nd ast.Node) error {
	switch cl {
	case clI:
		n, ok := v.(int64)
		if !ok {
			return interp.Errorf(nd, "expected an int value, got %T", v)
		}
		fr.regs[reg].i = n
	case clF:
		switch x := v.(type) {
		case float64:
			fr.regs[reg].f = x
		case int64:
			fr.regs[reg].f = float64(x)
		default:
			return interp.Errorf(nd, "expected a float value, got %T", v)
		}
	case clB:
		b, ok := v.(bool)
		if !ok {
			return interp.Errorf(nd, "condition evaluated to %T, not bool", v)
		}
		if b {
			fr.regs[reg].i = 1
		} else {
			fr.regs[reg].i = 0
		}
	default:
		fr.regs[reg].r = v
	}
	return nil
}

// flush releases the frame's pending rc references (the engine-shared
// statement-boundary discipline).
func (mc *Machine) flush(fr *frame) {
	for _, h := range fr.pending {
		h.DecRef()
	}
	fr.pending = fr.pending[:0]
}

// Run executes the program: globals in declaration order, then main.
// Like the tree walker it never panics; anything recovered becomes a
// classified *interp.RuntimeError.
func (mc *Machine) Run() (code int, err error) {
	defer func() {
		if r := recover(); r != nil {
			code, err = 0, interp.Recovered(mc.p.prog, r)
		}
	}()
	return mc.run()
}

func (mc *Machine) run() (int, error) {
	if mc.p.main < 0 {
		return 0, fmt.Errorf("interp: program has no main function")
	}
	mc.globals = make([]value, len(mc.p.globals))
	gfr := &frame{regs: make([]value, mc.p.ginit.nregs), pool: mc.in.Pool()}
	if err := mc.exec(gfr, mc.p.ginit); err != nil {
		// Globals are deliberately not released on error (tree parity).
		return 0, err
	}
	mp := mc.p.protos[mc.p.main]
	var rootPending []*rc.Header
	ret, err := mc.callProto(mc.p.main, nil, mp.decl, 0, mc.in.Pool(), &rootPending)
	if err != nil {
		return 0, err
	}
	for _, h := range rootPending {
		h.DecRef()
	}
	for gi, g := range mc.p.globals {
		if g.cl == clR {
			mc.in.ReleaseValue(mc.globals[gi].r)
		}
	}
	code := 0
	if n, ok := ret.(int64); ok {
		code = int(n)
	}
	return code, nil
}

// callProto invokes a compiled function: depth check, parameter
// coercion and binding, execution, implicit sync, return promotion /
// fall-off zero substitution, escape of the return value into the
// caller's pending list, and frame teardown — each step mirroring the
// tree walker's callFunction exactly, including its error-path
// ordering.
func (mc *Machine) callProto(pi int, args []any, site ast.Node, callerDepth int, pool *par.Pool, callerPending *[]*rc.Header) (any, error) {
	p := mc.p.protos[pi]
	if callerDepth > 512 {
		return nil, interp.Trapf(site, interp.TrapDepth, "call stack exceeded 512 frames (infinite recursion in %q?)", p.name)
	}
	fr := &frame{regs: make([]value, p.nregs), pool: pool, depth: callerDepth + 1}
	for k, pd := range p.params {
		v, err := interp.CoerceValue(site, pd.ty, args[k])
		if err != nil {
			// Earlier parameters stay bound (tree parity: callFunction
			// returns without popping the half-built frame).
			return nil, err
		}
		mc.in.BindValue(v)
		if err := fr.store(pd.reg, pd.cl, v, site); err != nil {
			return nil, err
		}
	}
	err := mc.exec(fr, p)
	if serr := mc.syncFrame(fr); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		mc.flush(fr)
		mc.releaseRefRegs(fr, p)
		return nil, err
	}
	ret := fr.ret
	if p.retTy != nil && p.retTy.Kind != types.Void && p.retTy.Kind != types.Invalid {
		if fr.hasRet && ret != nil {
			ret = interp.PromoteScalar(p.retTy, ret)
		} else if !fr.hasRet {
			ret = interp.ZeroValue(p.retTy)
		}
	}
	if fr.hasRet && ret != nil {
		mc.in.EscapeRef(ret, callerPending)
	}
	mc.flush(fr)
	mc.releaseRefRegs(fr, p)
	return ret, nil
}

// releaseRefRegs drops the binding references of the frame's boxed
// variable registers (block-scoped variables included: the VM frees
// them at function exit rather than block exit, which the cumulative
// cell budget cannot observe).
func (mc *Machine) releaseRefRegs(fr *frame, p *proto) {
	for _, r := range p.refRegs {
		mc.in.ReleaseValue(fr.regs[r].r)
	}
}

// syncFrame joins the frame's outstanding spawns: the semantics of
// `sync;` and of the implicit sync at function exit.
func (mc *Machine) syncFrame(fr *frame) error {
	var firstErr error
	for _, fut := range fr.futures {
		<-fut.done
		if fut.err != nil {
			if firstErr == nil {
				firstErr = fut.err
			}
		} else if fut.target.kind != tgNone {
			cv, err := interp.CoerceValue(fut.node, fut.target.ty, fut.val)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				mc.in.BindValue(cv)
				if fut.target.kind == tgGlobal {
					mc.in.ReleaseValue(mc.globals[fut.target.reg].r)
					if err := storeInto(mc.globals, fut.target.reg, fut.target.cl, cv); err != nil && firstErr == nil {
						firstErr = interp.WrapError(fut.node, err)
					}
				} else {
					if fut.target.cl == clR {
						mc.in.ReleaseValue(fr.regs[fut.target.reg].r)
					}
					if err := storeInto(fr.regs, fut.target.reg, fut.target.cl, cv); err != nil && firstErr == nil {
						firstErr = interp.WrapError(fut.node, err)
					}
				}
			}
		}
		for _, h := range fut.pending {
			h.DecRef()
		}
		for _, a := range fut.args {
			mc.in.ReleaseValue(a)
		}
	}
	fr.futures = nil
	return firstErr
}

// storeInto writes a boxed value into a register slice slot.
func storeInto(regs []value, reg int32, cl class, v any) error {
	switch cl {
	case clI:
		n, ok := v.(int64)
		if !ok {
			return fmt.Errorf("expected an int value, got %T", v)
		}
		regs[reg].i = n
	case clF:
		switch x := v.(type) {
		case float64:
			regs[reg].f = x
		case int64:
			regs[reg].f = float64(x)
		default:
			return fmt.Errorf("expected a float value, got %T", v)
		}
	case clB:
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("expected a bool value, got %T", v)
		}
		if b {
			regs[reg].i = 1
		} else {
			regs[reg].i = 0
		}
	default:
		regs[reg].r = v
	}
	return nil
}
