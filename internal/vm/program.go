// Package vm executes type-checked extended-CMINUS programs on a
// compact register bytecode instead of walking the AST. The compiler
// (compile.go) lowers each checked function to a proto — typed
// registers for int/float/bool plus a boxed register class for
// matrices, tuples, strings and rc pointers; a constant pool; and
// fused opcode forms for add-immediate, compare-and-branch loop
// headers and rank-1 load/store indexing — and the machine (exec.go)
// runs protos on a switch-dispatch loop.
//
// The VM is an alternate engine behind the tree-walking interpreter's
// contract: every runtime policy — step budgets, cell budgets, typed
// traps with stable codes and source spans, context cancellation, rc
// semantics, kernel and free-list fast paths — is delegated to the
// exported interp engine surface (internal/interp/engine.go), and the
// tree walker remains the differential oracle (vmdiff_test.go at the
// repository root runs every program under both engines).
package vm

import (
	"repro/internal/ast"
	"repro/internal/matrix"
	"repro/internal/sem"
	"repro/internal/types"
)

// class is a register's compile-time storage class, derived from the
// checker's static types: sem guarantees every expression's runtime
// representation matches its static type (the interp-side return and
// rcset promotions close the only historical gaps), which is what
// makes unboxed int/float/bool registers sound.
type class uint8

const (
	clI class = iota // int64 in value.i
	clF              // float64 in value.f
	clB              // bool in value.i (0/1)
	clR              // boxed any in value.r: matrix, tuple, string, rc cell
)

// classOf maps a static type to a register class.
func classOf(ty *types.Type) class {
	if ty == nil {
		return clR
	}
	switch ty.Kind {
	case types.Int:
		return clI
	case types.Float:
		return clF
	case types.Bool:
		return clB
	}
	return clR
}

// value is one register: a 3-word unboxed slot. Exactly one field is
// meaningful per register, fixed at compile time by the class.
type value struct {
	i int64
	f float64
	r any
}

// opcode enumerates the instruction set. See DESIGN.md §11 for the
// full table.
type opcode uint8

const (
	opNop opcode = iota

	// Administration.
	opStep  // statement entry: flush pending refs, poll cancel, tick step budget (nd = statement)
	opFlush // release the frame's pending refs (global-initializer statement boundary)
	opJmp   // pc = c
	opBrFalse
	opBrTrue
	opRet  // return boxed reg a (class b), or nothing when a < 0
	opFail // fail with the prebuilt error in aux (deferred compile-time diagnosis)

	// Fused compare-and-branch loop headers: jump to c when the
	// *negated* source condition holds (i.e. branch-if-false forms).
	opBrLtI
	opBrLeI
	opBrGtI
	opBrGeI
	opBrEqI
	opBrNeI
	opBrLtIK // b is an int32 immediate
	opBrLeIK
	opBrGtIK
	opBrGeIK
	opBrEqIK
	opBrNeIK

	// Constants and moves.
	opConstI // a = int32 immediate b (also bool constants, b in {0,1})
	opLoadK  // a = consts[b]
	opMove   // a = b (whole-value copy, class-agnostic)

	// Globals.
	opGLoad  // a = globals[b]
	opGStore // globals[a] = b (scalar)
	opGBindR // globals[a] = b with rc bind/release (boxed class)

	// Int arithmetic.
	opAddI
	opSubI
	opMulI
	opDivI // traps on zero divisor with the scalar-op error text
	opModI
	opNegI
	opAddIK // a = b + int32 immediate c (fused add-const)

	// Float arithmetic (IEEE, like the scalar ops).
	opAddF
	opSubF
	opMulF
	opDivF
	opNegF

	// Comparisons into bool registers.
	opLtI
	opLeI
	opGtI
	opGeI
	opEqI
	opNeI
	opLtF
	opLeF
	opGtF
	opGeF
	opEqF
	opNeF
	opEqB
	opNeB
	opNotB

	// Scalar conversions (casts and static int→float promotion).
	opI2F
	opF2I
	opB2I
	opI2B
	opF2B
	opB2F
	opCastD // dynamic cast of a boxed operand, aux *castAux
	opToInt // a(I) = b.r with a runtime int check (evalInt parity)

	// Boxed-register traffic.
	opUnboxI // a = b.r.(int64)
	opUnboxF
	opUnboxB
	opToBool  // a(B) = b.r with a runtime bool check (condition parity)
	opCoerce  // a = CoerceValue(nd, aux.(*types.Type), b.r)
	opPromote // a = PromoteScalar(aux.(*types.Type), b.r)
	opBindR   // rebind boxed var reg a to b.r (bind new, release old)
	opSCBool  // a = b.r checked bool (short-circuit RHS with non-bool static type)

	// Matrix / dynamic operators (delegate to interp's exported
	// evaluators so kernel selection and temp recycling are shared).
	opBinM // aux *binDesc
	opUnM  // aux *ast.UnaryExpr; b operand (boxed via desc)

	// Indexing.
	opIdxCheck // base a non-nil matrix of rank b (c = 1 for lvalue error text)
	opDimEnd   // a(I) = base b's DimSize(c) - 1  ('end')
	opIndex    // a = base b indexed per aux *indexDesc
	opSetIndex // base a set per aux *setIndexDesc
	opIdx1F    // fused rank-1 scalar load: a(F) = b[c]
	opIdx1I
	opIdx1B
	opSetIdx1F // fused rank-1 scalar store: a[b] = c
	opSetIdx1I
	opSetIdx1B

	// Allocation.
	opRange    // a = lo b :: hi c (budget-charged)
	opCheckDim // init dimension b (reg a) must be non-negative
	opInit     // a = zeroed matrix, aux *initDesc
	opTuple    // a = []any per aux []argDesc
	opTupCheck // a must be a []any of len b (destructuring)
	opTupGet   // a(R) = b.r.([]any)[c]

	// Calls and builtins.
	opCall    // a = call aux *callDesc
	opPrint   // print aux argDesc
	opDimSize // a(I) = dimSize(b, c)
	opReadM   // a = readMatrix(b)
	opWriteM  // writeMatrix(a, b)
	opRcNew   // a = rcnew(aux argDesc)
	opRcGet   // a(R) = rcget(b)
	opRcSet   // rcset(a, aux *rcSetDesc)
	opRcRel   // rcrelease(a)

	// Parallel constructs.
	opWith   // a = with-loop per aux *withDesc
	opMatMap // a = matrixMap per aux *mapDesc
	opSpawn  // spawn per aux *spawnDesc
	opSync

	// Fused elementwise chain (vet.Facts-proven legality), aux *fusedDesc.
	opFused

	// Flat-compiled with-loops (vet.Facts-proven bodies): aux is the
	// same *withDesc as opWith with a non-nil flat plan. The handler
	// tries the flat engine and falls back to opWith semantics when the
	// runtime admission declines.
	opWithGen
	opWithFold
)

// instr is one instruction. nd is the span-table entry: the source
// node every trap raised by this instruction is attributed to.
type instr struct {
	op      opcode
	a, b, c int32
	nd      ast.Node
	aux     any
}

// argDesc locates an operand that must be boxed at execution time.
type argDesc struct {
	reg int32
	cl  class
}

// binDesc drives opBinM.
type binDesc struct {
	e    *ast.BinaryExpr
	l, r argDesc
}

// unDesc drives opUnM.
type unDesc struct {
	e *ast.UnaryExpr
	x argDesc
}

// specPlan is one dimension of a compiled index expression. nd is the
// argument's source node (for the dynamic plan's error).
type specPlan struct {
	kind   uint8
	r1, r2 int32
	nd     ast.Node
}

const (
	spScalar uint8 = iota // r1: I register
	spMask                // r1: R register holding a bool matrix
	spRange               // r1, r2: I registers (inclusive)
	spAll
	spDyn // r1: R register, runtime-dispatched int64 / *Matrix
)

// typeAux carries a static type plus a boxed operand for opCoerce /
// opPromote / opSCBool (op is the operator for the short-circuit
// error text).
type typeAux struct {
	ty  *types.Type
	src argDesc
	op  ast.BinOp
}

// castAux drives opCastD.
type castAux struct {
	to ast.PrimKind
	x  argDesc
}

// indexDesc drives opIndex.
type indexDesc struct {
	e     *ast.IndexExpr
	plans []specPlan
}

// setIndexDesc drives opSetIndex.
type setIndexDesc struct {
	e     *ast.IndexExpr
	plans []specPlan
	val   argDesc
}

// initDesc drives opInit.
type initDesc struct {
	elem matrix.Elem
	dims []int32
}

// callDesc drives opCall.
type callDesc struct {
	proto int
	args  []argDesc
	retCl class
}

// rcSetDesc drives opRcSet.
type rcSetDesc struct {
	cell argDesc
	val  argDesc
	elem *types.Type // declared cell element type (nil when unrecorded)
}

// capture copies an enclosing frame's register into a with-loop body
// frame before the loop runs (bodies only read enclosing locals).
type capture struct {
	from, to int32
}

// withDesc drives opWith.
type withDesc struct {
	w          *ast.WithLoop
	fold       bool
	lower      []int32 // I regs
	upper      []int32
	shape      []int32 // genarray
	elem       matrix.Elem
	foldKind   matrix.FoldKind
	foldInit   argDesc
	promote    bool // fold base int→float when the loop's type is float
	body       int  // body proto index
	captures   []capture
	ids        int // w.Ids occupy body regs [0, ids)
	resCl      class
	staticFail error     // deferred "internal error" diagnosis, nil normally
	flat       *flatPlan // non-nil for opWithGen/opWithFold sites
}

// flatPlan binds a vet.WithPlan's leaf names to registers so the flat
// with-loop engine (matrix.GenArrayFlat / matrix.FoldFlat) can build
// its WithEnv from the frame at run time. Leaves resolve to locals
// only: a global leaf keeps the closure path so a racy global rebind
// stays observable per element.
type flatPlan struct {
	code  []matrix.WithInstr
	mats  []int32       // R regs, by WLoad* slot
	matEl []matrix.Elem // proven element type per matrix leaf
	sI    []int32       // I regs, by WPushScalarI slot
	sF    []int32       // F regs, by WPushScalarF slot
	float bool          // body's static type is float
}

// mapDesc drives opMatMap.
type mapDesc struct {
	e         *ast.MatrixMap
	arg       argDesc
	dims      []int
	badDim    ast.Node // first non-literal dimension (checked after the nil check)
	proto     int
	fnMissing bool
	elem      matrix.Elem
	elemFail  error
	general   bool
}

// targetRef resolves a spawn target at compile time.
type targetRef struct {
	kind uint8 // 0 none, 1 local, 2 global, 3 undeclared
	reg  int32 // local reg or global index
	cl   class
	ty   *types.Type
}

const (
	tgNone uint8 = iota
	tgLocal
	tgGlobal
	tgUndeclared
)

// spawnDesc drives opSpawn.
type spawnDesc struct {
	s      *ast.SpawnStmt
	proto  int
	args   []argDesc
	target targetRef
	name   string // target name for the undeclared error
}

// fusedArgPlan locates one operand of a fused stage at compile time:
// an earlier stage's block scratch, a matrix leaf register, or a
// scalar register already converted to the chain's element type.
type fusedArgPlan struct {
	kind  matrix.FusedArgKind
	stage int
	reg   int32
	cl    class
}

// fusedStagePlan is one compiled stage; node anchors any error this
// stage's admission or execution raises, matching the span the tree
// walker would report for the same stage.
type fusedStagePlan struct {
	node ast.Node
	op   matrix.Op
	l, r fusedArgPlan
}

// fusedDesc drives opFused.
type fusedDesc struct {
	e      *ast.BinaryExpr
	elem   matrix.Elem
	stages []fusedStagePlan
}

// paramDef is one compiled parameter.
type paramDef struct {
	reg int32
	ty  *types.Type
	cl  class
}

// proto is one compiled function (or with-loop body, or the global
// initializer).
type proto struct {
	name    string
	decl    *ast.FuncDecl // nil for with-loop bodies and the global init
	code    []instr
	nregs   int
	params  []paramDef
	refRegs []int32 // boxed variable registers released at teardown
	retTy   *types.Type
}

// globalDef is one compiled global variable slot.
type globalDef struct {
	name string
	ty   *types.Type
	cl   class
}

// Program is a compiled program: immutable after Compile, shareable
// across concurrent runs (the driver caches it content-addressed by
// source, alongside the artifact caches).
type Program struct {
	prog       *ast.Program
	info       *sem.Info
	protos     []*proto
	consts     []value
	globals    []globalDef
	ginit      *proto
	main       int // proto index of main, -1 when absent
	fusedSites int // opFused sites emitted (facts-proven chains)
	withSites  int // opWithGen/opWithFold sites emitted (facts-proven with-loops)
}

// Funcs reports the number of compiled function protos (for tests).
func (p *Program) Funcs() int { return len(p.protos) }

// FusedSites reports the number of fused-chain sites the compiler
// emitted (each replaces two or more opBinM kernel passes).
func (p *Program) FusedSites() int { return p.fusedSites }

// WithCompiled reports the number of with-loop sites compiled to the
// flat engine (each replaces a per-element body closure with a flat
// kernel loop).
func (p *Program) WithCompiled() int { return p.withSites }
