// White-box tests for vet.Facts-driven chain fusion: proven chains
// must lower to opFused (replacing the per-stage opBinM kernels), and
// everything the legality rules exclude must keep the generic
// lowering. Behavioral equivalence is covered by the dual-engine
// differential suite at the repository root.
package vm

import (
	"strings"
	"testing"

	"repro/internal/interp"
)

func TestCompileFusesElementwiseChain(t *testing.T) {
	p := compile(t, `
int main() {
	Matrix float <1> a = [0 :: 7] * 1.0;
	Matrix float <1> b = [1 :: 8] * 1.0;
	Matrix float <1> r = a .* b + a - b * 0.5;
	print(r[end]);
	return 0;
}`)
	if p.FusedSites() != 1 {
		t.Fatalf("FusedSites = %d, want 1", p.FusedSites())
	}
	ops := countOps(p)
	if ops[opFused] != 1 {
		t.Errorf("opFused emitted %d times, want 1: %v", ops[opFused], ops)
	}
	// The three binary ops of the chain all fold into the one opFused;
	// the remaining opBinM sites are the two range-scaling initializers.
	if ops[opBinM] != 2 {
		t.Errorf("opBinM emitted %d times, want 2 (initializers only): %v", ops[opBinM], ops)
	}
}

func TestCompileFusedIntScalarOnFloatChainConverts(t *testing.T) {
	// The int literal 2 broadcast onto a float chain converts at compile
	// time (opI2F), mirroring BroadcastExec's charge-free conversion.
	p := compile(t, `
int main() {
	Matrix float <1> a = [0 :: 7] * 1.0;
	Matrix float <1> r = a * 2 + a;
	print(r[0]);
	return 0;
}`)
	if p.FusedSites() != 1 {
		t.Fatalf("FusedSites = %d, want 1", p.FusedSites())
	}
}

func TestCompileDeclinesUnprovenChains(t *testing.T) {
	for _, tc := range []struct {
		name, src string
	}{
		{"matmul_stage", `
int main() {
	Matrix float <2> a = init(Matrix float <2>, 2, 2);
	Matrix float <2> r = a * a + a;
	print(r[0, 0]);
	return 0;
}`},
		{"int_division", `
int main() {
	Matrix int <1> a = [1 :: 4];
	Matrix int <1> r = a / 2 + a;
	print(r[0]);
	return 0;
}`},
		{"single_stage", `
int main() {
	Matrix float <1> a = [0 :: 3] * 1.0;
	Matrix float <1> r = a + a;
	print(r[0]);
	return 0;
}`},
		{"call_leaf", `
Matrix float <1> mk() { return [0 :: 3] * 1.0; }
int main() {
	Matrix float <1> a = [0 :: 3] * 1.0;
	Matrix float <1> r = mk() + a - a;
	print(r[0]);
	return 0;
}`},
		{"comparison_root", `
int main() {
	Matrix int <1> a = [1 :: 4];
	Matrix bool <1> r = a + a > a;
	print(r[0]);
	return 0;
}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := compile(t, tc.src)
			if p.FusedSites() != 0 {
				t.Errorf("FusedSites = %d, want 0 (chain must not be proven)", p.FusedSites())
			}
		})
	}
}

func TestFusedChainRunsCorrectly(t *testing.T) {
	p := compile(t, `
int main() {
	Matrix float <1> a = [0 :: 4] * 1.0;
	Matrix float <1> b = [10 :: 14] * 1.0;
	Matrix float <1> r = a .* b + b - a * 2.0;
	print(r[0]);
	print(r[end]);
	Matrix int <1> u = [1 :: 5];
	Matrix int <1> w = u .* u + u - u .* 2;
	print(w[0]);
	print(w[end]);
	return 0;
}`)
	if p.FusedSites() != 2 {
		t.Fatalf("FusedSites = %d, want 2", p.FusedSites())
	}
	before := FusedLoopsRun()
	var out strings.Builder
	i := interp.New(p.prog, p.info, interp.Options{Stdout: &out})
	defer i.Close()
	if _, err := NewMachine(p, i).Run(); err != nil {
		t.Fatal(err)
	}
	// a=[0..4], b=[10..14]: r[0]=0*10+10-0=10, r[4]=4*14+14-8=62.
	// u=[1..5]: w[0]=1+1-2=0, w[4]=25+5-10=20.
	want := "10\n62\n0\n20\n"
	if out.String() != want {
		t.Errorf("stdout = %q, want %q", out.String(), want)
	}
	if got := FusedLoopsRun() - before; got != 2 {
		t.Errorf("FusedLoopsRun advanced by %d, want 2", got)
	}
}
