// Expression lowering. Every case mirrors the tree walker's evalExpr:
// same evaluation order, same error texts, same error nodes. Scalar
// int/float/bool expressions compile to typed-register opcodes; matrix
// and dynamically typed expressions compile to boxed operations that
// delegate to interp's exported evaluators.
package vm

import (
	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/types"
	"repro/internal/vet"
)

func (f *fnc) compileExpr(e ast.Expr) (int32, class) {
	switch e := e.(type) {
	case *ast.IntLit:
		r := f.reg()
		if k, ok := smallIntLit(e); ok {
			f.emit(instr{op: opConstI, a: r, b: k})
		} else {
			f.emit(instr{op: opLoadK, a: r, b: f.c.constInt(e.Value)})
		}
		return r, clI

	case *ast.FloatLit:
		r := f.reg()
		f.emit(instr{op: opLoadK, a: r, b: f.c.constFloat(e.Value)})
		return r, clF

	case *ast.BoolLit:
		r := f.reg()
		b := int32(0)
		if e.Value {
			b = 1
		}
		f.emit(instr{op: opConstI, a: r, b: b})
		return r, clB

	case *ast.StrLit:
		r := f.reg()
		f.emit(instr{op: opLoadK, a: r, b: f.c.constBoxed(e.Value)})
		return r, clR

	case *ast.Ident:
		if slot, ok := f.resolve(e.Name); ok {
			// Locals are stable for the duration of an expression (only
			// statements assign), so the variable register is read
			// directly.
			return slot.reg, slot.cl
		}
		if gi, def, ok := f.resolveGlobal(e.Name); ok {
			// Globals can change mid-expression (a call may assign one),
			// so they are loaded into a temporary at this exact point in
			// the evaluation order.
			r := f.reg()
			f.emit(instr{op: opGLoad, a: r, b: int32(gi)})
			return r, def.cl
		}
		f.emit(instr{op: opFail, nd: e, aux: interp.Errorf(e, "undeclared variable %q", e.Name)})
		return f.reg(), classOf(f.c.info.TypeOf(e))

	case *ast.BinaryExpr:
		if e.Op == ast.OpAnd || e.Op == ast.OpOr {
			return f.compileLogical(e)
		}
		return f.compileBinary(e)

	case *ast.UnaryExpr:
		return f.compileUnary(e)

	case *ast.CastExpr:
		return f.compileCast(e)

	case *ast.CallExpr:
		return f.compileCall(e)

	case *ast.IndexExpr:
		return f.compileIndexR(e)

	case *ast.EndExpr:
		if len(f.endStack) == 0 {
			f.emit(instr{op: opFail, nd: e,
				aux: interp.Errorf(e, "'end' used outside an index expression")})
			return f.reg(), clI
		}
		return f.endStack[len(f.endStack)-1].reg, clI

	case *ast.RangeExpr:
		lo := f.compileInt(e.Lo)
		hi := f.compileInt(e.Hi)
		r := f.reg()
		f.emit(instr{op: opRange, a: r, b: lo, c: hi, nd: e})
		return r, clR

	case *ast.TupleExpr:
		ds := make([]argDesc, len(e.Elems))
		for k, el := range e.Elems {
			r, cl := f.compileExpr(el)
			ds[k] = argDesc{reg: r, cl: cl}
		}
		r := f.reg()
		f.emit(instr{op: opTuple, a: r, aux: ds})
		return r, clR

	case *ast.WithLoop:
		return f.compileWith(e)

	case *ast.MatrixMap:
		return f.compileMatMap(e)

	case *ast.InitExpr:
		dims := make([]int32, len(e.Dims))
		for k, d := range e.Dims {
			dims[k] = f.compileInt(d)
			f.emit(instr{op: opCheckDim, a: dims[k], b: int32(k), nd: e})
		}
		ty, terr := types.FromAST(e.Type)
		if terr != nil {
			bail("init type: %v", terr)
		}
		elem, eerr := vmElemOf(e, ty)
		if eerr != nil {
			f.emit(instr{op: opFail, nd: e, aux: eerr})
			return f.reg(), clR
		}
		r := f.reg()
		f.emit(instr{op: opInit, a: r, nd: e, aux: &initDesc{elem: elem, dims: dims}})
		return r, clR
	}
	f.emit(instr{op: opFail, nd: e, aux: interp.Errorf(e, "unknown expression %T", e)})
	return f.reg(), classOf(f.c.info.TypeOf(e))
}

// compileLogical lowers && / || with the tree walker's short-circuit
// rule: a bool left operand short-circuits; any other left operand
// evaluates both sides into the dynamic binary evaluator.
func (f *fnc) compileLogical(e *ast.BinaryExpr) (int32, class) {
	lk := f.c.info.TypeOf(e.L).Kind
	rk := f.c.info.TypeOf(e.R).Kind
	switch lk {
	case types.Bool:
		if rk == types.Bool {
			l := f.operand(e.L, clB)
			dst := f.reg()
			f.emit(instr{op: opMove, a: dst, b: l})
			br := opBrFalse // && with a false left yields the left value
			if e.Op == ast.OpOr {
				br = opBrTrue
			}
			site := f.emit(instr{op: br, a: dst})
			r := f.operand(e.R, clB)
			f.emit(instr{op: opMove, a: dst, b: r})
			f.patch([]int{site})
			return dst, clB
		}
		// Bool left, non-bool right: a short-circuit yields the boxed
		// bool constant; otherwise the right side must be bool at run
		// time (the tree walker's "requires bool operands" error).
		l := f.operand(e.L, clB)
		dst := f.reg()
		br, shortVal := opBrTrue, any(false) // && short-circuits on false
		if e.Op == ast.OpOr {
			br, shortVal = opBrFalse, any(true)
		}
		toEval := f.emit(instr{op: br, a: l})
		f.emit(instr{op: opLoadK, a: dst, b: f.c.constBoxed(shortVal)})
		out := f.emit(instr{op: opJmp})
		f.patch([]int{toEval})
		r, cl := f.compileExpr(e.R)
		f.emit(instr{op: opSCBool, a: dst, nd: e,
			aux: &typeAux{src: argDesc{reg: r, cl: cl}, op: e.Op}})
		f.patch([]int{out})
		return dst, clR
	case types.Invalid:
		bail("logical operand with unrecorded type at %s", e.Span())
	}
	// Statically non-bool left: both sides evaluate, then the dynamic
	// operator (which also produces the elementwise matrix forms).
	l, lcl := f.compileExpr(e.L)
	r, rcl := f.compileExpr(e.R)
	dst := f.reg()
	cl := classOf(f.c.info.TypeOf(e))
	f.emit(instr{op: opBinM, a: dst, b: int32(cl), nd: e,
		aux: &binDesc{e: e, l: argDesc{reg: l, cl: lcl}, r: argDesc{reg: r, cl: rcl}}})
	return dst, cl
}

var intArith = map[ast.BinOp]opcode{
	ast.OpAdd: opAddI, ast.OpSub: opSubI, ast.OpMul: opMulI,
	ast.OpDiv: opDivI, ast.OpMod: opModI,
}

var intCmp = map[ast.BinOp]opcode{
	ast.OpLt: opLtI, ast.OpLe: opLeI, ast.OpGt: opGtI,
	ast.OpGe: opGeI, ast.OpEq: opEqI, ast.OpNe: opNeI,
}

var floatArith = map[ast.BinOp]opcode{
	ast.OpAdd: opAddF, ast.OpSub: opSubF, ast.OpMul: opMulF, ast.OpDiv: opDivF,
}

var floatCmp = map[ast.BinOp]opcode{
	ast.OpLt: opLtF, ast.OpLe: opLeF, ast.OpGt: opGtF,
	ast.OpGe: opGeF, ast.OpEq: opEqF, ast.OpNe: opNeF,
}

func (f *fnc) compileBinary(e *ast.BinaryExpr) (int32, class) {
	// A vet.Facts-proven fusable chain compiles to one opFused loop
	// instead of a kernel pass per stage. Chains are matrix-typed, so
	// the scalar fast paths below never compete with this.
	if ch := f.c.facts.ChainAt(e); ch != nil {
		if r, cl, ok := f.compileFused(e, ch); ok {
			return r, cl
		}
	}

	lk := f.c.info.TypeOf(e.L).Kind
	rk := f.c.info.TypeOf(e.R).Kind

	if lk == types.Int && rk == types.Int {
		if op, ok := intArith[e.Op]; ok {
			// Fused add-immediate forms (i + 1, i - 1, 1 + i).
			if e.Op == ast.OpAdd {
				if k, ok := smallIntLit(e.R); ok {
					l := f.operand(e.L, clI)
					dst := f.reg()
					f.emit(instr{op: opAddIK, a: dst, b: l, c: k})
					return dst, clI
				}
				if k, ok := smallIntLit(e.L); ok {
					r := f.operand(e.R, clI)
					dst := f.reg()
					f.emit(instr{op: opAddIK, a: dst, b: r, c: k})
					return dst, clI
				}
			}
			if e.Op == ast.OpSub {
				if k, ok := smallIntLit(e.R); ok && k != -1<<31 {
					l := f.operand(e.L, clI)
					dst := f.reg()
					f.emit(instr{op: opAddIK, a: dst, b: l, c: -k})
					return dst, clI
				}
			}
			l := f.operand(e.L, clI)
			r := f.operand(e.R, clI)
			dst := f.reg()
			f.emit(instr{op: op, a: dst, b: l, c: r, nd: e})
			return dst, clI
		}
		if op, ok := intCmp[e.Op]; ok {
			l := f.operand(e.L, clI)
			r := f.operand(e.R, clI)
			dst := f.reg()
			f.emit(instr{op: op, a: dst, b: l, c: r})
			return dst, clB
		}
	}

	numeric := func(k types.Kind) bool { return k == types.Int || k == types.Float }
	if numeric(lk) && numeric(rk) && (lk == types.Float || rk == types.Float) {
		// Mixed / float scalars promote to float (scalarOp); % has no
		// float form and falls through to the dynamic evaluator for its
		// exact error.
		if op, ok := floatArith[e.Op]; ok {
			l := f.floatOperand(e.L, lk)
			r := f.floatOperand(e.R, rk)
			dst := f.reg()
			f.emit(instr{op: op, a: dst, b: l, c: r})
			return dst, clF
		}
		if op, ok := floatCmp[e.Op]; ok {
			l := f.floatOperand(e.L, lk)
			r := f.floatOperand(e.R, rk)
			dst := f.reg()
			f.emit(instr{op: op, a: dst, b: l, c: r})
			return dst, clB
		}
	}

	if lk == types.Bool && rk == types.Bool && (e.Op == ast.OpEq || e.Op == ast.OpNe) {
		l := f.operand(e.L, clB)
		r := f.operand(e.R, clB)
		dst := f.reg()
		op := opEqB
		if e.Op == ast.OpNe {
			op = opNeB
		}
		f.emit(instr{op: op, a: dst, b: l, c: r})
		return dst, clB
	}

	// Matrix operands, broadcasts, and every remaining combination go
	// through the shared dynamic evaluator (kernel selection, temp
	// recycling, exact scalarOp error texts).
	l, lcl := f.compileExpr(e.L)
	r, rcl := f.compileExpr(e.R)
	dst := f.reg()
	cl := classOf(f.c.info.TypeOf(e))
	f.emit(instr{op: opBinM, a: dst, b: int32(cl), nd: e,
		aux: &binDesc{e: e, l: argDesc{reg: l, cl: lcl}, r: argDesc{reg: r, cl: rcl}}})
	return dst, cl
}

// binToKernelOp mirrors interp's binToMatrixOp for the fusable
// operators (vet's legality rules exclude the rest).
var binToKernelOp = map[ast.BinOp]matrix.Op{
	ast.OpAdd: matrix.OpAdd, ast.OpSub: matrix.OpSub,
	ast.OpMul: matrix.OpMul, ast.OpElemMul: matrix.OpMul,
	ast.OpDiv: matrix.OpDiv,
}

// compileFused lowers a proven chain to one opFused instruction. Leaf
// expressions (identifiers and literals only, per the legality rules)
// compile in tree evaluation order, so an undeclared-global error in a
// global initializer still surfaces at the right leaf. Returns ok =
// false to fall back to the generic opBinM lowering when a leaf does
// not resolve to the expected register class (unreachable in checked
// programs; the few dead leaf loads already emitted are side-effect
// free).
func (f *fnc) compileFused(e *ast.BinaryExpr, ch *vet.Chain) (int32, class, bool) {
	elem := matrix.Float
	if ch.Elem == types.Int {
		elem = matrix.Int
	}
	d := &fusedDesc{e: e, elem: elem, stages: make([]fusedStagePlan, len(ch.Stages))}
	for i, st := range ch.Stages {
		op, ok := binToKernelOp[st.Op]
		if !ok {
			return 0, 0, false
		}
		be, ok := st.Node.(*ast.BinaryExpr)
		if !ok {
			return 0, 0, false
		}
		l, ok := f.fusedArg(st.L, elem)
		if !ok {
			return 0, 0, false
		}
		r, ok := f.fusedArg(st.R, elem)
		if !ok {
			return 0, 0, false
		}
		d.stages[i] = fusedStagePlan{node: be, op: op, l: l, r: r}
	}
	dst := f.reg()
	f.emit(instr{op: opFused, a: dst, nd: e, aux: d})
	f.c.fusedSites++
	return dst, clR, true
}

// fusedArg compiles one chain operand into its runtime plan. Scalars
// convert to the chain's element type at compile time, mirroring the
// charge-free int→float scalar conversion BroadcastExec performs.
func (f *fnc) fusedArg(a vet.ChainArg, elem matrix.Elem) (fusedArgPlan, bool) {
	switch a.Kind {
	case vet.ArgStage:
		return fusedArgPlan{kind: matrix.FusedStageArg, stage: a.Stage}, true
	case vet.ArgMatrix:
		r, cl := f.compileExpr(a.X)
		if cl != clR {
			return fusedArgPlan{}, false
		}
		return fusedArgPlan{kind: matrix.FusedMatrixArg, reg: r, cl: cl}, true
	case vet.ArgScalar:
		r, cl := f.compileExpr(a.X)
		switch {
		case elem == matrix.Float && cl == clI:
			out := f.reg()
			f.emit(instr{op: opI2F, a: out, b: r})
			r, cl = out, clF
		case elem == matrix.Float && cl == clF:
		case elem == matrix.Int && cl == clI:
		default:
			return fusedArgPlan{}, false
		}
		return fusedArgPlan{kind: matrix.FusedScalarArg, reg: r, cl: cl}, true
	}
	return fusedArgPlan{}, false
}

// floatOperand evaluates a statically numeric operand into a float
// register (ints promoted, like scalarOp's toFloat).
func (f *fnc) floatOperand(e ast.Expr, k types.Kind) int32 {
	if k == types.Int {
		r := f.operand(e, clI)
		out := f.reg()
		f.emit(instr{op: opI2F, a: out, b: r})
		return out
	}
	return f.operand(e, clF)
}

func (f *fnc) compileUnary(e *ast.UnaryExpr) (int32, class) {
	x, cl := f.compileExpr(e.X)
	switch {
	case cl == clI && e.Op == ast.OpNeg:
		dst := f.reg()
		f.emit(instr{op: opNegI, a: dst, b: x})
		return dst, clI
	case cl == clF && e.Op == ast.OpNeg:
		dst := f.reg()
		f.emit(instr{op: opNegF, a: dst, b: x})
		return dst, clF
	case cl == clB && e.Op == ast.OpNot:
		dst := f.reg()
		f.emit(instr{op: opNotB, a: dst, b: x})
		return dst, clB
	}
	dst := f.reg()
	rcl := classOf(f.c.info.TypeOf(e))
	f.emit(instr{op: opUnM, a: dst, b: int32(rcl), nd: e,
		aux: &unDesc{e: e, x: argDesc{reg: x, cl: cl}}})
	return dst, rcl
}

// scalar cast conversions: [from class][to PrimKind] -> opcode
// (opNop marks identity).
var castOps = map[class]map[ast.PrimKind]opcode{
	clI: {ast.PrimInt: opNop, ast.PrimFloat: opI2F, ast.PrimBool: opI2B},
	clF: {ast.PrimInt: opF2I, ast.PrimFloat: opNop, ast.PrimBool: opF2B},
	clB: {ast.PrimInt: opB2I, ast.PrimFloat: opB2F, ast.PrimBool: opNop},
}

func (f *fnc) compileCast(e *ast.CastExpr) (int32, class) {
	x, cl := f.compileExpr(e.X)
	if forms, ok := castOps[cl]; ok {
		if op, ok := forms[e.To]; ok {
			if op == opNop {
				return x, cl
			}
			dst := f.reg()
			f.emit(instr{op: op, a: dst, b: x})
			switch e.To {
			case ast.PrimInt:
				return dst, clI
			case ast.PrimFloat:
				return dst, clF
			default:
				return dst, clB
			}
		}
	}
	// Boxed operand or non-scalar target: the dynamic castScalar path
	// carries the tree walker's "cannot cast %T to %s" error.
	dst := f.reg()
	rcl := classOf(f.c.info.TypeOf(e))
	f.emit(instr{op: opCastD, a: dst, b: int32(rcl), nd: e,
		aux: &castAux{to: e.To, x: argDesc{reg: x, cl: cl}}})
	return dst, rcl
}

func (f *fnc) compileCall(e *ast.CallExpr) (int32, class) {
	args := make([]argDesc, len(e.Args))
	for k, a := range e.Args {
		r, cl := f.compileExpr(a)
		args[k] = argDesc{reg: r, cl: cl}
	}
	if sig, ok := f.c.info.Funcs[e.Fun]; ok {
		pi, ok := f.c.protoIdx[sig.Decl.Name]
		if !ok {
			bail("called function %q has no proto", e.Fun)
		}
		ret := sig.Type.Ret
		if ret == nil || ret.Kind == types.Void || ret.Kind == types.Invalid {
			f.emit(instr{op: opCall, a: -1, nd: e,
				aux: &callDesc{proto: pi, args: args, retCl: clR}})
			// The tree walker's void-call value is nil; a never-written
			// boxed register reads as exactly that.
			return f.reg(), clR
		}
		retCl := classOf(ret)
		dst := f.reg()
		f.emit(instr{op: opCall, a: dst, nd: e,
			aux: &callDesc{proto: pi, args: args, retCl: retCl}})
		return dst, retCl
	}
	need := func(n int) {
		if len(args) != n {
			// The tree walker would fault on args[k]; no exact bytecode
			// analogue, so hand such (checker-rejected) programs back.
			bail("builtin %q called with %d args, want %d", e.Fun, len(args), n)
		}
	}
	switch e.Fun {
	case "print":
		need(1)
		f.emit(instr{op: opPrint, nd: e, aux: args[0]})
		return f.reg(), clR
	case "dimSize":
		need(2)
		dst := f.reg()
		f.emit(instr{op: opDimSize, a: dst, nd: e, aux: args})
		return dst, clI
	case "readMatrix":
		need(1)
		dst := f.reg()
		f.emit(instr{op: opReadM, a: dst, nd: e, aux: args[0]})
		return dst, clR
	case "writeMatrix":
		need(2)
		f.emit(instr{op: opWriteM, nd: e, aux: args})
		return f.reg(), clR
	case "rcnew":
		need(1)
		dst := f.reg()
		f.emit(instr{op: opRcNew, a: dst, nd: e, aux: args[0]})
		return dst, clR
	case "rcget":
		need(1)
		retCl := classOf(f.c.info.TypeOf(e))
		dst := f.reg()
		f.emit(instr{op: opRcGet, a: dst, c: int32(retCl), nd: e, aux: args[0]})
		return dst, retCl
	case "rcset":
		need(2)
		var elem *types.Type
		if ty := f.c.info.TypeOf(e.Args[0]); ty.Kind == types.RcPtr {
			elem = ty.Elem
		}
		f.emit(instr{op: opRcSet, nd: e, aux: &rcSetDesc{cell: args[0], val: args[1], elem: elem}})
		return f.reg(), clR
	case "rcrelease":
		need(1)
		f.emit(instr{op: opRcRel, nd: e, aux: args[0]})
		return f.reg(), clR
	}
	f.emit(instr{op: opFail, nd: e, aux: interp.Errorf(e, "undeclared function %q", e.Fun)})
	return f.reg(), classOf(f.c.info.TypeOf(e))
}

// trustedMatrixBase reports the element class of a rank-1 matrix base
// whose runtime representation is pinned by binding coercion: only
// identifier bases qualify (locals, params and globals are coerced on
// every bind, so their element kind and rank match the static type).
func (f *fnc) trustedMatrixBase(base ast.Expr) (class, bool) {
	id, ok := base.(*ast.Ident)
	if !ok {
		return 0, false
	}
	var ty *types.Type
	if slot, ok := f.resolve(id.Name); ok {
		ty = slot.ty
	} else if _, def, ok := f.resolveGlobal(id.Name); ok {
		ty = def.ty
	} else {
		return 0, false
	}
	if ty == nil || ty.Kind != types.Matrix || ty.Rank != 1 {
		return 0, false
	}
	return classOf(ty.Elem), true
}

// pushDim opens index dimension d of base: the 'end' value is computed
// eagerly (the tree walker calls DimSize per dimension regardless).
func (f *fnc) pushDim(base int32, d int, nd ast.Node) {
	entry := &endEntry{base: base, dim: int32(d), node: nd, reg: f.reg()}
	f.emit(instr{op: opDimEnd, a: entry.reg, b: base, c: int32(d), nd: nd})
	f.endStack = append(f.endStack, entry)
}

func (f *fnc) popDim() {
	f.endStack = f.endStack[:len(f.endStack)-1]
}

// compilePlans lowers the index arguments of e (rank already checked).
func (f *fnc) compilePlans(e *ast.IndexExpr, base int32) []specPlan {
	plans := make([]specPlan, len(e.Args))
	for d, arg := range e.Args {
		f.pushDim(base, d, e)
		switch a := arg.(type) {
		case *ast.IdxScalar:
			k := f.c.info.TypeOf(a.X).Kind
			switch {
			case k == types.Int:
				plans[d] = specPlan{kind: spScalar, r1: f.operand(a.X, clI)}
			case k == types.Matrix || k == types.AnyMatrix:
				plans[d] = specPlan{kind: spMask, r1: f.operand(a.X, clR)}
			case k == types.Invalid:
				r, cl := f.compileExpr(a.X)
				if cl != clR {
					bail("invalid-typed index with scalar class at %s", a.Span())
				}
				plans[d] = specPlan{kind: spDyn, r1: r, nd: a}
			default:
				// Statically never an index: evaluate for effect, then
				// fail with the runtime type the static type dictates.
				f.compileExpr(a.X)
				var sample any
				switch k {
				case types.Float:
					sample = float64(0)
				case types.Bool:
					sample = false
				case types.String:
					sample = ""
				case types.Tuple:
					sample = []any{}
				default:
					bail("unindexable static type kind %d at %s", k, a.Span())
				}
				f.emit(instr{op: opFail, nd: a,
					aux: interp.Errorf(a, "index must be an int or a bool matrix, got %T", sample)})
				plans[d] = specPlan{kind: spAll}
			}
		case *ast.IdxRange:
			lo := f.compileInt(a.Lo)
			hi := f.compileInt(a.Hi)
			plans[d] = specPlan{kind: spRange, r1: lo, r2: hi}
		case *ast.IdxAll:
			plans[d] = specPlan{kind: spAll}
		default:
			f.emit(instr{op: opFail, nd: arg,
				aux: interp.Errorf(arg, "unknown index argument %T", arg)})
			plans[d] = specPlan{kind: spAll}
		}
		f.popDim()
	}
	return plans
}

// fusedScalarArg reports a single static-int scalar index argument.
func fusedScalarArg(e *ast.IndexExpr, info interface {
	TypeOf(ast.Expr) *types.Type
}) (ast.Expr, bool) {
	if len(e.Args) != 1 {
		return nil, false
	}
	sc, ok := e.Args[0].(*ast.IdxScalar)
	if !ok || info.TypeOf(sc.X).Kind != types.Int {
		return nil, false
	}
	return sc.X, true
}

func (f *fnc) compileIndexR(e *ast.IndexExpr) (int32, class) {
	base, bcl := f.compileExpr(e.X)
	retCl := classOf(f.c.info.TypeOf(e))
	if bcl != clR {
		f.emit(instr{op: opFail, nd: e,
			aux: interp.Errorf(e, "cannot index a non-matrix or unassigned matrix")})
		return f.reg(), retCl
	}
	f.emit(instr{op: opIdxCheck, a: base, b: int32(len(e.Args)), nd: e})
	if elemCl, ok := f.trustedMatrixBase(e.X); ok && elemCl == retCl {
		if ix, ok := fusedScalarArg(e, f.c.info); ok {
			f.pushDim(base, 0, e)
			idx := f.operand(ix, clI)
			f.popDim()
			dst := f.reg()
			op := map[class]opcode{clF: opIdx1F, clI: opIdx1I, clB: opIdx1B}[elemCl]
			f.emit(instr{op: op, a: dst, b: base, c: idx, nd: e})
			return dst, retCl
		}
	}
	plans := f.compilePlans(e, base)
	dst := f.reg()
	f.emit(instr{op: opIndex, a: dst, b: base, c: int32(retCl), nd: e,
		aux: &indexDesc{e: e, plans: plans}})
	return dst, retCl
}

// fusedSet lowers m[i] = v for trusted rank-1 bases with a static-int
// index and a value of (or promotable to) the element class.
func (f *fnc) fusedSet(l *ast.IndexExpr, base, vreg int32, vcl class) bool {
	elemCl, ok := f.trustedMatrixBase(l.X)
	if !ok {
		return false
	}
	ix, ok := fusedScalarArg(l, f.c.info)
	if !ok {
		return false
	}
	if elemCl == clF && vcl == clI {
		p := f.reg()
		f.emit(instr{op: opI2F, a: p, b: vreg})
		vreg, vcl = p, clF
	}
	if vcl != elemCl {
		return false
	}
	f.pushDim(base, 0, l)
	idx := f.operand(ix, clI)
	f.popDim()
	op := map[class]opcode{clF: opSetIdx1F, clI: opSetIdx1I, clB: opSetIdx1B}[elemCl]
	f.emit(instr{op: op, a: base, b: idx, c: vreg, nd: l})
	return true
}

func (f *fnc) compileWith(w *ast.WithLoop) (int32, class) {
	if len(w.Ids) != len(w.Lower) || len(w.Lower) != len(w.Upper) {
		bail("with-loop bound/id arity mismatch at %s", w.Span())
	}
	lower := make([]int32, len(w.Lower))
	upper := make([]int32, len(w.Upper))
	for k := range w.Lower {
		lower[k] = f.compileInt(w.Lower[k])
		upper[k] = f.compileInt(w.Upper[k])
	}
	d := &withDesc{w: w, lower: lower, upper: upper, ids: len(w.Ids)}
	var bodyExpr ast.Expr
	switch op := w.Op.(type) {
	case *ast.GenArrayOp:
		shape := make([]int32, len(op.Shape))
		for k, se := range op.Shape {
			shape[k] = f.compileInt(se)
		}
		d.shape = shape
		elem, eerr := vmElemOf(w, f.c.info.TypeOf(w))
		if eerr != nil {
			d.staticFail = eerr
		} else {
			d.elem = elem
		}
		d.resCl = clR
		bodyExpr = op.Body
	case *ast.FoldOp:
		d.fold = true
		d.foldKind = map[ast.FoldKind]matrix.FoldKind{
			ast.FoldAdd: matrix.FoldAdd, ast.FoldMul: matrix.FoldMul,
			ast.FoldMin: matrix.FoldMin, ast.FoldMax: matrix.FoldMax,
		}[op.Kind]
		ir, ic := f.compileExpr(op.Init)
		d.foldInit = argDesc{reg: ir, cl: ic}
		d.promote = f.c.info.TypeOf(w).Kind == types.Float
		d.resCl = classOf(f.c.info.TypeOf(w))
		bodyExpr = op.Body
	default:
		f.emit(instr{op: opFail, nd: w,
			aux: interp.Errorf(w, "unknown with-loop operation %T", w.Op)})
		return f.reg(), classOf(f.c.info.TypeOf(w))
	}
	d.body, d.captures = f.compileWithBody(w, bodyExpr)
	op := opWith
	if d.staticFail == nil {
		if fp := f.flatWithPlan(w, d); fp != nil {
			d.flat = fp
			f.c.withSites++
			if d.fold {
				op = opWithFold
			} else {
				op = opWithGen
			}
		}
	}
	dst := f.reg()
	f.emit(instr{op: op, a: dst, nd: w, aux: d})
	return dst, d.resCl
}

// flatWithPlan binds a vet-proven flat plan's leaf names to this
// function's local registers. Every leaf must be a local of the proven
// class (globals decline: a mid-run global rebind from a spawned task
// must keep per-element closure semantics), and the proven fold kind
// must match the compiled one. Any mismatch keeps the closure path.
func (f *fnc) flatWithPlan(w *ast.WithLoop, d *withDesc) *flatPlan {
	wp := f.c.facts.WithAt(w)
	if wp == nil || wp.Fold != d.fold {
		return nil
	}
	if d.fold && wp.Kind != d.foldKind {
		return nil
	}
	fp := &flatPlan{code: wp.Code, matEl: wp.MatElem, float: wp.Float}
	for _, name := range wp.Mats {
		vs, ok := f.resolve(name)
		if !ok || vs.cl != clR || vs.ty == nil || vs.ty.Kind != types.Matrix {
			return nil
		}
		fp.mats = append(fp.mats, vs.reg)
	}
	for _, name := range wp.ScalarI {
		vs, ok := f.resolve(name)
		if !ok || vs.cl != clI {
			return nil
		}
		fp.sI = append(fp.sI, vs.reg)
	}
	for _, name := range wp.ScalarF {
		vs, ok := f.resolve(name)
		if !ok || vs.cl != clF {
			return nil
		}
		fp.sF = append(fp.sF, vs.reg)
	}
	return fp
}

// compileWithBody lowers the with-loop body expression as a proto of
// its own: registers [0,len(ids)) hold the index variables, enclosing
// locals are copied in via the capture list (with-loop bodies are
// expressions — they read but never assign enclosing locals), and
// globals resolve through the shared global slots.
func (f *fnc) compileWithBody(w *ast.WithLoop, body ast.Expr) (int, []capture) {
	bf := &fnc{c: f.c}
	idRegs := make([]int32, len(w.Ids))
	for k := range w.Ids {
		idRegs[k] = bf.reg()
	}
	// Outer scope: captured enclosing locals, in deterministic
	// declaration order, innermost shadowing outermost.
	bf.pushScope()
	var captures []capture
	seen := map[string]bool{}
	for _, id := range w.Ids {
		seen[id] = true // ids shadow enclosing locals of the same name
	}
	for s := f.scope; s != nil; s = s.parent {
		for _, name := range s.names {
			if seen[name] {
				continue
			}
			seen[name] = true
			outer := s.vars[name]
			creg := bf.reg()
			bf.scope.bind(name, varSlot{reg: creg, ty: outer.ty, cl: outer.cl})
			captures = append(captures, capture{from: outer.reg, to: creg})
		}
	}
	// Inner scope: the index identifiers.
	bf.pushScope()
	for k, id := range w.Ids {
		bf.scope.bind(id, varSlot{reg: idRegs[k], ty: types.IntT, cl: clI})
	}
	r, cl := bf.compileExpr(body)
	bf.emit(instr{op: opRet, a: r, b: int32(cl), nd: body})
	pi := len(f.c.protos)
	f.c.protos = append(f.c.protos, &proto{
		name:  "<with-body>",
		code:  bf.code,
		nregs: bf.nreg,
	})
	return pi, captures
}

func (f *fnc) compileMatMap(e *ast.MatrixMap) (int32, class) {
	ar, ac := f.compileExpr(e.Arg)
	d := &mapDesc{e: e, arg: argDesc{reg: ar, cl: ac}, general: e.General}
	dims := make([]int, 0, len(e.Dims))
	for _, de := range e.Dims {
		lit, ok := de.(*ast.IntLit)
		if !ok {
			d.badDim = de
			break
		}
		dims = append(dims, int(lit.Value))
	}
	d.dims = dims
	if sig, ok := f.c.info.Funcs[e.Fun]; ok {
		pi, ok := f.c.protoIdx[sig.Decl.Name]
		if !ok {
			bail("matrixMap function %q has no proto", e.Fun)
		}
		d.proto = pi
	} else {
		d.fnMissing = true
	}
	if elem, eerr := vmElemOf(e, f.c.info.TypeOf(e)); eerr != nil {
		d.elemFail = eerr
	} else {
		d.elem = elem
	}
	dst := f.reg()
	f.emit(instr{op: opMatMap, a: dst, nd: e, aux: d})
	return dst, clR
}

// vmElemOf mirrors the tree walker's matrixElemOf (same error texts
// and nodes).
func vmElemOf(n ast.Node, ty *types.Type) (matrix.Elem, error) {
	if ty == nil || ty.Kind != types.Matrix {
		return 0, interp.Errorf(n, "internal error: expected a matrix type, have %s", ty)
	}
	switch ty.Elem.Kind {
	case types.Float:
		return matrix.Float, nil
	case types.Int:
		return matrix.Int, nil
	case types.Bool:
		return matrix.Bool, nil
	}
	return 0, interp.Errorf(n, "internal error: bad matrix element type %s", ty.Elem)
}
