// Package source provides source positions, spans and diagnostic
// reporting shared by the scanner, parser and semantic analysis.
package source

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Pos is a position in a source file. Line and Col are 1-based;
// Offset is the 0-based byte offset.
type Pos struct {
	Offset int `json:"offset"`
	Line   int `json:"line"`
	Col    int `json:"col"`
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// NoPos is the zero position, used for synthesized nodes.
var NoPos = Pos{}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Span is a half-open region [Start, End) of a file.
type Span struct {
	File  string `json:"file,omitempty"`
	Start Pos    `json:"start"`
	End   Pos    `json:"end"`
}

// String renders the span as "file:line:col".
func (s Span) String() string {
	if s.File == "" {
		return s.Start.String()
	}
	return fmt.Sprintf("%s:%s", s.File, s.Start)
}

// Severity classifies a diagnostic.
type Severity int

// Severity levels, in increasing order of badness.
const (
	Note Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Note:
		return "note"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "unknown"
}

// MarshalJSON renders a Severity as its name, so JSON consumers see
// "error"/"warning"/"note" rather than an enum ordinal.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the name form produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "note":
		*s = Note
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("unknown severity %q", name)
	}
	return nil
}

// Related is a secondary source location attached to a diagnostic —
// e.g. the release site of a use-after-release report.
type Related struct {
	Span    Span   `json:"span"`
	Message string `json:"message"`
}

// Diagnostic is one reported problem. Code is an optional stable
// machine-readable identifier (e.g. "shape-mismatch"); phase-era
// diagnostics that predate codes leave it empty and render exactly as
// before.
type Diagnostic struct {
	Code     string    `json:"code,omitempty"`
	Severity Severity  `json:"severity"`
	Span     Span      `json:"span"`
	Message  string    `json:"message"`
	Related  []Related `json:"related,omitempty"`
}

func (d Diagnostic) String() string {
	if d.Code != "" {
		return fmt.Sprintf("%s: %s[%s]: %s", d.Span, d.Severity, d.Code, d.Message)
	}
	return fmt.Sprintf("%s: %s: %s", d.Span, d.Severity, d.Message)
}

// Diagnostics collects problems found during a compiler phase.
type Diagnostics struct {
	list []Diagnostic
}

// Errorf records an error at span.
func (d *Diagnostics) Errorf(span Span, format string, args ...any) {
	d.list = append(d.list, Diagnostic{Severity: Error, Span: span, Message: fmt.Sprintf(format, args...)})
}

// Warnf records a warning at span.
func (d *Diagnostics) Warnf(span Span, format string, args ...any) {
	d.list = append(d.list, Diagnostic{Severity: Warning, Span: span, Message: fmt.Sprintf(format, args...)})
}

// Notef records a note at span.
func (d *Diagnostics) Notef(span Span, format string, args ...any) {
	d.list = append(d.list, Diagnostic{Severity: Note, Span: span, Message: fmt.Sprintf(format, args...)})
}

// Add appends a prebuilt diagnostic.
func (d *Diagnostics) Add(diag Diagnostic) { d.list = append(d.list, diag) }

// Merge appends all diagnostics from other.
func (d *Diagnostics) Merge(other *Diagnostics) {
	if other != nil {
		d.list = append(d.list, other.list...)
	}
}

// HasErrors reports whether any Error-severity diagnostic was recorded.
func (d *Diagnostics) HasErrors() bool {
	for _, diag := range d.list {
		if diag.Severity == Error {
			return true
		}
	}
	return false
}

// ErrorCount returns the number of Error-severity diagnostics.
func (d *Diagnostics) ErrorCount() int {
	n := 0
	for _, diag := range d.list {
		if diag.Severity == Error {
			n++
		}
	}
	return n
}

// All returns the recorded diagnostics sorted by file then offset.
func (d *Diagnostics) All() []Diagnostic {
	out := make([]Diagnostic, len(d.list))
	copy(out, d.list)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Span.File != out[j].Span.File {
			return out[i].Span.File < out[j].Span.File
		}
		return out[i].Span.Start.Offset < out[j].Span.Start.Offset
	})
	return out
}

// Len returns the total number of diagnostics.
func (d *Diagnostics) Len() int { return len(d.list) }

// String renders all diagnostics one per line.
func (d *Diagnostics) String() string {
	var b strings.Builder
	for _, diag := range d.All() {
		b.WriteString(diag.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Err returns an error summarizing the diagnostics, or nil if there
// are no errors.
func (d *Diagnostics) Err() error {
	if !d.HasErrors() {
		return nil
	}
	return fmt.Errorf("%d error(s):\n%s", d.ErrorCount(), strings.TrimRight(d.String(), "\n"))
}

// File maps byte offsets to line/column positions for one source file.
type File struct {
	Name    string
	Content string
	lines   []int // byte offset of the start of each line
}

// NewFile indexes content for position lookup.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// PosAt converts a byte offset into a Pos.
func (f *File) PosAt(offset int) Pos {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Content) {
		offset = len(f.Content)
	}
	// Binary search for the line containing offset.
	lo, hi := 0, len(f.lines)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.lines[mid] <= offset {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return Pos{Offset: offset, Line: lo + 1, Col: offset - f.lines[lo] + 1}
}

// SpanAt builds a Span for the byte range [start, end).
func (f *File) SpanAt(start, end int) Span {
	return Span{File: f.Name, Start: f.PosAt(start), End: f.PosAt(end)}
}

// LineText returns the text of the given 1-based line, without the
// trailing newline. It returns "" for out-of-range lines.
func (f *File) LineText(line int) string {
	if line < 1 || line > len(f.lines) {
		return ""
	}
	start := f.lines[line-1]
	end := len(f.Content)
	if line < len(f.lines) {
		end = f.lines[line] - 1
	}
	return f.Content[start:end]
}
