package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPosAt(t *testing.T) {
	f := NewFile("t.c", "int main() {\n  return 0;\n}\n")
	cases := []struct {
		off       int
		line, col int
	}{
		{0, 1, 1},
		{4, 1, 5},
		{12, 1, 13}, // the newline itself
		{13, 2, 1},
		{15, 2, 3},
		{25, 3, 1},
	}
	for _, c := range cases {
		p := f.PosAt(c.off)
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("PosAt(%d) = %d:%d, want %d:%d", c.off, p.Line, p.Col, c.line, c.col)
		}
	}
}

func TestPosAtClamps(t *testing.T) {
	f := NewFile("t.c", "ab")
	if p := f.PosAt(-5); p.Offset != 0 {
		t.Error("negative offset should clamp to 0")
	}
	if p := f.PosAt(99); p.Offset != 2 {
		t.Error("overlong offset should clamp to len")
	}
}

func TestLineText(t *testing.T) {
	f := NewFile("t.c", "one\ntwo\nthree")
	if got := f.LineText(2); got != "two" {
		t.Errorf("LineText(2) = %q", got)
	}
	if got := f.LineText(3); got != "three" {
		t.Errorf("LineText(3) = %q", got)
	}
	if got := f.LineText(0); got != "" {
		t.Errorf("LineText(0) = %q", got)
	}
	if got := f.LineText(9); got != "" {
		t.Errorf("LineText(9) = %q", got)
	}
}

func TestDiagnosticsSortingAndCounts(t *testing.T) {
	var d Diagnostics
	f := NewFile("a.c", "xxx\nyyy\n")
	d.Warnf(f.SpanAt(5, 6), "later warning")
	d.Errorf(f.SpanAt(1, 2), "early error")
	d.Notef(f.SpanAt(3, 4), "middle note")
	if !d.HasErrors() || d.ErrorCount() != 1 || d.Len() != 3 {
		t.Fatalf("counts wrong: %v %d %d", d.HasErrors(), d.ErrorCount(), d.Len())
	}
	all := d.All()
	if all[0].Message != "early error" || all[2].Message != "later warning" {
		t.Errorf("diagnostics not sorted by offset: %v", all)
	}
	if d.Err() == nil {
		t.Error("Err should be non-nil when errors present")
	}
}

func TestDiagnosticsMergeAndNoErrors(t *testing.T) {
	var a, b Diagnostics
	b.Warnf(Span{}, "just a warning")
	a.Merge(&b)
	a.Merge(nil)
	if a.HasErrors() {
		t.Error("warnings are not errors")
	}
	if a.Err() != nil {
		t.Error("Err should be nil without errors")
	}
	if a.Len() != 1 {
		t.Errorf("merge lost diagnostics: %d", a.Len())
	}
}

func TestDiagnosticString(t *testing.T) {
	f := NewFile("m.xc", "abc")
	var d Diagnostics
	d.Errorf(f.SpanAt(1, 2), "bad thing")
	s := d.String()
	if !strings.Contains(s, "m.xc:1:2") || !strings.Contains(s, "error") || !strings.Contains(s, "bad thing") {
		t.Errorf("diagnostic string missing parts: %q", s)
	}
}

// Property: for any content and any valid offset, PosAt returns a
// position whose line's start offset plus col-1 equals the offset.
func TestQuickPosAtRoundTrip(t *testing.T) {
	f := func(raw []byte, offU uint16) bool {
		content := strings.ReplaceAll(string(raw), "\r", "")
		file := NewFile("q", content)
		off := int(offU)
		if off > len(content) {
			off = len(content)
		}
		p := file.PosAt(off)
		// Recompute: count newlines before off.
		line := 1
		lineStart := 0
		for i := 0; i < off; i++ {
			if content[i] == '\n' {
				line++
				lineStart = i + 1
			}
		}
		return p.Line == line && p.Col == off-lineStart+1 && p.Offset == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
