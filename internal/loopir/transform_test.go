package loopir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// meanNest builds the Fig 3 loop nest: the expanded temporal-mean
// with-loops (means[i*n+j] = sum_k mat[(i*n+j)*p+k] / p).
func meanNest(m, n, p int64) []Stmt {
	kLoop := &Loop{Index: "k", Lo: IC(0), Hi: IC(p), Body: []Stmt{
		&AssignStmt{V("tmp"), B("+", V("tmp"), Ld("mat", B("+", B("*", B("+", B("*", V("i"), IC(n)), V("j")), IC(p)), V("k"))))},
	}}
	jLoop := &Loop{Index: "j", Lo: IC(0), Hi: IC(n), Body: []Stmt{
		&DeclStmt{"float", "tmp", FC(0)},
		kLoop,
		&AssignStmt{Ld("means", B("+", B("*", V("i"), IC(n)), V("j"))), B("/", V("tmp"), FC(float64(p)))},
	}}
	iLoop := &Loop{Index: "i", Lo: IC(0), Hi: IC(m), Body: []Stmt{jLoop}}
	return []Stmt{iLoop}
}

func meanEnv(m, n, p int64, seed int64) *Env {
	env := NewEnv()
	r := rand.New(rand.NewSource(seed))
	mat := make([]float64, m*n*p)
	for i := range mat {
		mat[i] = r.Float64() * 10
	}
	env.Arrays["mat"] = mat
	env.Arrays["means"] = make([]float64, m*n)
	return env
}

func runNest(t *testing.T, nest []Stmt, env *Env) []float64 {
	t.Helper()
	if err := env.Exec(nest); err != nil {
		t.Fatalf("exec: %v", err)
	}
	return env.Arrays["means"]
}

func almostSame(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < -1e-9 || d > 1e-9 {
			return false
		}
	}
	return true
}

func TestMeanNestReference(t *testing.T) {
	const m, n, p = 3, 4, 5
	env := meanEnv(m, n, p, 1)
	mat := env.Arrays["mat"]
	got := runNest(t, meanNest(m, n, p), env)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for k := 0; k < p; k++ {
				acc += mat[(i*n+j)*p+k]
			}
			want := acc / p
			d := got[i*n+j] - want
			if d < -1e-9 || d > 1e-9 {
				t.Fatalf("means[%d,%d] = %v, want %v", i, j, got[i*n+j], want)
			}
		}
	}
}

// Fig 9 → Fig 10: split j by 4 produces jout/jin loops with the
// substituted index, and preserves results.
func TestSplitMatchesFig10(t *testing.T) {
	const m, n, p = 3, 8, 5
	ref := runNest(t, meanNest(m, n, p), meanEnv(m, n, p, 2))

	nest := meanNest(m, n, p)
	nest, err := Split(nest, "j", 4, "jin", "jout")
	if err != nil {
		t.Fatal(err)
	}
	src := Print(nest)
	for _, want := range []string{
		"for (int jout = 0; jout < (8 / 4); jout++)",
		"for (int jin = 0; jin < 4; jin++)",
		"((jout * 4) + jin)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("split output missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "int j =") {
		t.Error("original j loop should be gone")
	}
	got := runNest(t, nest, meanEnv(m, n, p, 2))
	if !almostSame(ref, got) {
		t.Fatal("split changed results")
	}
}

func TestSplitErrors(t *testing.T) {
	nest := meanNest(2, 4, 3)
	if _, err := Split(nest, "q", 4, "a", "b"); err == nil {
		t.Error("split of unknown index should error")
	}
	if _, err := Split(nest, "j", 0, "a", "b"); err == nil {
		t.Error("zero factor should error")
	}
}

// Fig 10 → Fig 11: vectorize jin and parallelize i.
func TestVectorizeAndParallelize(t *testing.T) {
	nest := meanNest(3, 8, 5)
	nest, err := Split(nest, "j", 4, "jin", "jout")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Vectorize(nest, "jout"); err == nil {
		t.Error("vectorizing a loop with a non-constant trip count should error")
	}
	// The Fig 9 schedule: vectorize jin, whose body still contains the
	// scalar k loop (Fig 11 keeps the time loop scalar over vector
	// accumulators). jin's trip count is the split factor 4.
	if _, err := Vectorize(nest, "jin"); err != nil {
		t.Fatalf("vectorize jin (the Fig 9 schedule): %v", err)
	}
	if FindLoop(nest, "jin").VectorLanes != 4 {
		t.Error("jin should be marked 4-lane")
	}
	if _, err := Parallelize(nest, "i"); err != nil {
		t.Fatal(err)
	}
	if !FindLoop(nest, "i").Parallel {
		t.Error("i should be marked parallel")
	}
	src := Print(nest)
	if !strings.Contains(src, "#pragma omp parallel for") {
		t.Errorf("printed nest missing pragma:\n%s", src)
	}
}

func TestReorderPreservesSemantics(t *testing.T) {
	// Perfect 2-deep nest writing out[i*n+j] = i*10 + j.
	const m, n = 4, 5
	build := func() []Stmt {
		j := &Loop{Index: "j", Lo: IC(0), Hi: IC(n), Body: []Stmt{
			&AssignStmt{Ld("out", B("+", B("*", V("i"), IC(n)), V("j"))),
				B("+", B("*", V("i"), IC(10)), V("j"))},
		}}
		return []Stmt{&Loop{Index: "i", Lo: IC(0), Hi: IC(m), Body: []Stmt{j}}}
	}
	envA := NewEnv()
	envA.Arrays["out"] = make([]float64, m*n)
	if err := envA.Exec(build()); err != nil {
		t.Fatal(err)
	}
	nest := build()
	nest, err := Reorder(nest, []string{"j", "i"})
	if err != nil {
		t.Fatal(err)
	}
	// j must now be outermost
	outer := nest[0].(*Loop)
	if outer.Index != "j" {
		t.Fatalf("outer loop = %q, want j", outer.Index)
	}
	envB := NewEnv()
	envB.Arrays["out"] = make([]float64, m*n)
	if err := envB.Exec(nest); err != nil {
		t.Fatal(err)
	}
	if !almostSame(envA.Arrays["out"], envB.Arrays["out"]) {
		t.Fatal("reorder changed results")
	}
}

func TestReorderErrors(t *testing.T) {
	nest := meanNest(2, 4, 3)
	// i-j-k is not perfect between j and k (decl + trailing assign)
	if _, err := Reorder(nest, []string{"k", "j"}); err == nil {
		t.Error("reorder of imperfect nest should error")
	}
	if _, err := Reorder(nest, []string{"i"}); err == nil {
		t.Error("reorder with one index should error")
	}
	if _, err := Reorder(nest, []string{"a", "b"}); err == nil {
		t.Error("reorder of unknown loops should error")
	}
}

// Tile = split + split + reorder (§V), semantics preserved.
func TestTile(t *testing.T) {
	const m, n = 8, 8
	build := func() []Stmt {
		j := &Loop{Index: "j", Lo: IC(0), Hi: IC(n), Body: []Stmt{
			&AssignStmt{Ld("out", B("+", B("*", V("i"), IC(n)), V("j"))),
				B("*", B("+", V("i"), IC(1)), B("+", V("j"), IC(2)))},
		}}
		return []Stmt{&Loop{Index: "i", Lo: IC(0), Hi: IC(m), Body: []Stmt{j}}}
	}
	ref := NewEnv()
	ref.Arrays["out"] = make([]float64, m*n)
	if err := ref.Exec(build()); err != nil {
		t.Fatal(err)
	}
	nest, err := Tile(build(), "i", 4, "j", 4)
	if err != nil {
		t.Fatal(err)
	}
	src := Print(nest)
	// outermost-to-innermost: iout, jout, iin, jin
	iOut := strings.Index(src, "int iout")
	jOut := strings.Index(src, "int jout")
	iIn := strings.Index(src, "int iin")
	jIn := strings.Index(src, "int jin")
	if !(iOut < jOut && jOut < iIn && iIn < jIn) || iOut < 0 {
		t.Fatalf("tile order wrong:\n%s", src)
	}
	env := NewEnv()
	env.Arrays["out"] = make([]float64, m*n)
	if err := env.Exec(nest); err != nil {
		t.Fatal(err)
	}
	if !almostSame(ref.Arrays["out"], env.Arrays["out"]) {
		t.Fatal("tile changed results")
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	build := func() []Stmt {
		return []Stmt{&Loop{Index: "i", Lo: IC(0), Hi: IC(12), Body: []Stmt{
			&AssignStmt{Ld("out", V("i")), B("*", V("i"), V("i"))},
		}}}
	}
	ref := NewEnv()
	ref.Arrays["out"] = make([]float64, 12)
	if err := ref.Exec(build()); err != nil {
		t.Fatal(err)
	}
	nest, err := Unroll(build(), "i", 4)
	if err != nil {
		t.Fatal(err)
	}
	l := nest[0].(*Loop)
	if hi := l.Hi.(*IntConst).V; hi != 3 {
		t.Errorf("unrolled trip count = %d, want 3", hi)
	}
	if len(l.Body) != 4 {
		t.Errorf("unrolled body stmts = %d, want 4", len(l.Body))
	}
	env := NewEnv()
	env.Arrays["out"] = make([]float64, 12)
	if err := env.Exec(nest); err != nil {
		t.Fatal(err)
	}
	if !almostSame(ref.Arrays["out"], env.Arrays["out"]) {
		t.Fatal("unroll changed results")
	}
	if _, err := Unroll(build(), "i", 5); err == nil {
		t.Error("non-divisible unroll should error")
	}
}

// Property: split with random divisible factors preserves the temporal
// mean result for random sizes and data.
func TestQuickSplitPreserves(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := int64(1 + r.Intn(4))
		factor := int64(1 + r.Intn(4))
		blocks := int64(1 + r.Intn(4))
		n := factor * blocks
		p := int64(1 + r.Intn(5))
		ref := runNoT(meanNest(m, n, p), meanEnv(m, n, p, seed))
		nest := meanNest(m, n, p)
		nest, err := Split(nest, "j", factor, "jin", "jout")
		if err != nil {
			return false
		}
		got := runNoT(nest, meanEnv(m, n, p, seed))
		return ref != nil && got != nil && almostSame(ref, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func runNoT(nest []Stmt, env *Env) []float64 {
	if err := env.Exec(nest); err != nil {
		return nil
	}
	return env.Arrays["means"]
}

func TestSubstShadowing(t *testing.T) {
	// substitution must not descend into loops that rebind the name
	inner := &Loop{Index: "i", Lo: IC(0), Hi: IC(3), Body: []Stmt{
		&AssignStmt{Ld("a", V("i")), V("i")},
	}}
	out := SubstStmt(inner, "i", IC(99)).(*Loop)
	if out.Body[0].(*AssignStmt).RHS.(*VarRef).Name != "i" {
		t.Error("substitution descended into a shadowing loop")
	}
}

func TestExecErrors(t *testing.T) {
	env := NewEnv()
	if err := env.Exec([]Stmt{&AssignStmt{Ld("ghost", IC(0)), IC(1)}}); err == nil {
		t.Error("store to unknown array should error")
	}
	if _, err := env.EvalExpr(V("nope")); err == nil {
		t.Error("unbound variable should error")
	}
	env.Arrays["a"] = make([]float64, 2)
	if err := env.Exec([]Stmt{&AssignStmt{Ld("a", IC(5)), IC(1)}}); err == nil {
		t.Error("out-of-range store should error")
	}
}
