// Package loopir is the loop-nest intermediate representation that
// with-loops and matrixMap lower to, and on which both the high-level
// optimizations of §III-A.4 and the user-directed transformations of
// §V (split, vectorize, parallelize, reorder, tile, unroll) operate.
// The transformations are tree-to-tree rewrites in the style of the
// paper's higher-order attributes: they extract loop bodies, rewrite
// index variables, and rebuild the nest.
package loopir

import (
	"fmt"
	"strings"
)

// Expr is a scalar expression in the IR.
type Expr interface {
	exprNode()
	// String renders the expression as C source.
	String() string
}

// IntConst is an integer literal.
type IntConst struct{ V int64 }

// FloatConst is a floating literal.
type FloatConst struct{ V float64 }

// VarRef references a scalar variable (including loop indices).
type VarRef struct{ Name string }

// Bin is a binary operation, emitted as (L op R).
type Bin struct {
	Op   string
	L, R Expr
}

// Un is a unary operation.
type Un struct {
	Op string
	X  Expr
}

// Load reads one element of a flattened array: Array[Idx].
type Load struct {
	Array string
	Idx   Expr
}

// CallE is a call expression.
type CallE struct {
	Fun  string
	Args []Expr
}

// Cond is a C conditional expression (c ? t : f).
type Cond struct {
	C, T, F Expr
}

func (*IntConst) exprNode()   {}
func (*FloatConst) exprNode() {}
func (*VarRef) exprNode()     {}
func (*Bin) exprNode()        {}
func (*Un) exprNode()         {}
func (*Load) exprNode()       {}
func (*CallE) exprNode()      {}
func (*Cond) exprNode()       {}

func (e *IntConst) String() string { return fmt.Sprintf("%d", e.V) }
func (e *FloatConst) String() string {
	s := fmt.Sprintf("%g", e.V)
	if !strings.ContainsAny(s, ".einf") {
		s += ".0"
	}
	return s + "f"
}
func (e *VarRef) String() string { return e.Name }
func (e *Bin) String() string    { return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")" }
func (e *Un) String() string     { return "(" + e.Op + e.X.String() + ")" }
func (e *Load) String() string   { return e.Array + "[" + e.Idx.String() + "]" }
func (e *CallE) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Fun + "(" + strings.Join(parts, ", ") + ")"
}
func (e *Cond) String() string {
	return "(" + e.C.String() + " ? " + e.T.String() + " : " + e.F.String() + ")"
}

// Convenience constructors.
func IC(v int64) *IntConst               { return &IntConst{v} }
func FC(v float64) *FloatConst           { return &FloatConst{v} }
func V(name string) *VarRef              { return &VarRef{name} }
func B(op string, l, r Expr) *Bin        { return &Bin{op, l, r} }
func Ld(arr string, idx Expr) *Load      { return &Load{arr, idx} }
func Call(f string, args ...Expr) *CallE { return &CallE{f, args} }

// Stmt is a statement in the IR.
type Stmt interface {
	stmtNode()
}

// Loop is a counted for-loop over [Lo, Hi) with unit step.
type Loop struct {
	Index string
	Lo    Expr
	Hi    Expr
	Body  []Stmt
	// Parallel marks the loop for parallel execution ("parallelize").
	Parallel bool
	// VectorLanes > 0 marks the loop for SSE-style vectorization
	// ("vectorize"); the emitter strip-mines it into vector ops.
	VectorLanes int
}

// DeclStmt declares a scalar: CType Name = Init.
type DeclStmt struct {
	CType string
	Name  string
	Init  Expr // may be nil
}

// AssignStmt stores into a scalar variable or array element.
type AssignStmt struct {
	LHS Expr // VarRef or Load
	RHS Expr
}

// Comment is a freeform comment line in the emitted code.
type Comment struct{ Text string }

// Raw is a raw C statement (used by the code generator for pieces
// outside the loop-transformation fragment).
type Raw struct{ Code string }

func (*Loop) stmtNode()       {}
func (*DeclStmt) stmtNode()   {}
func (*AssignStmt) stmtNode() {}
func (*Comment) stmtNode()    {}
func (*Raw) stmtNode()        {}

// --- expression utilities ---

// SubstExpr replaces every reference to name with repl.
func SubstExpr(e Expr, name string, repl Expr) Expr {
	switch e := e.(type) {
	case *VarRef:
		if e.Name == name {
			return repl
		}
		return e
	case *Bin:
		return &Bin{e.Op, SubstExpr(e.L, name, repl), SubstExpr(e.R, name, repl)}
	case *Un:
		return &Un{e.Op, SubstExpr(e.X, name, repl)}
	case *Load:
		return &Load{e.Array, SubstExpr(e.Idx, name, repl)}
	case *CallE:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = SubstExpr(a, name, repl)
		}
		return &CallE{e.Fun, args}
	case *Cond:
		return &Cond{SubstExpr(e.C, name, repl), SubstExpr(e.T, name, repl), SubstExpr(e.F, name, repl)}
	default:
		return e
	}
}

// SubstStmt replaces references to name with repl throughout a
// statement tree. Loops that rebind name shadow the substitution.
func SubstStmt(s Stmt, name string, repl Expr) Stmt {
	switch s := s.(type) {
	case *Loop:
		out := &Loop{Index: s.Index, Lo: SubstExpr(s.Lo, name, repl), Hi: SubstExpr(s.Hi, name, repl),
			Parallel: s.Parallel, VectorLanes: s.VectorLanes}
		if s.Index == name {
			out.Body = s.Body // shadowed
			return out
		}
		out.Body = SubstBlock(s.Body, name, repl)
		return out
	case *DeclStmt:
		var init Expr
		if s.Init != nil {
			init = SubstExpr(s.Init, name, repl)
		}
		return &DeclStmt{s.CType, s.Name, init}
	case *AssignStmt:
		return &AssignStmt{SubstExpr(s.LHS, name, repl), SubstExpr(s.RHS, name, repl)}
	default:
		return s
	}
}

// SubstBlock maps SubstStmt over a statement list.
func SubstBlock(body []Stmt, name string, repl Expr) []Stmt {
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = SubstStmt(s, name, repl)
	}
	return out
}

// findLoop locates the loop with the given index anywhere in the nest,
// returning the containing slice and position.
func findLoop(body []Stmt, index string) (container []Stmt, pos int, loop *Loop) {
	for i, s := range body {
		l, ok := s.(*Loop)
		if !ok {
			continue
		}
		if l.Index == index {
			return body, i, l
		}
		if c, p, found := findLoop(l.Body, index); found != nil {
			return c, p, found
		}
	}
	return nil, 0, nil
}

// FindLoop returns the loop with the given index, or nil.
func FindLoop(body []Stmt, index string) *Loop {
	_, _, l := findLoop(body, index)
	return l
}

// Print renders a statement list as indented C-like source; used by
// golden tests and cmd/cmc -emit loopir.
func Print(body []Stmt) string {
	var b strings.Builder
	printBlock(&b, body, 0)
	return b.String()
}

func printBlock(b *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch s := s.(type) {
		case *Loop:
			if s.Parallel {
				fmt.Fprintf(b, "%s#pragma omp parallel for\n", ind)
			}
			if s.VectorLanes > 0 {
				fmt.Fprintf(b, "%s/* vectorized x%d */\n", ind, s.VectorLanes)
			}
			fmt.Fprintf(b, "%sfor (int %s = %s; %s < %s; %s++) {\n",
				ind, s.Index, s.Lo, s.Index, s.Hi, s.Index)
			printBlock(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *DeclStmt:
			if s.Init != nil {
				fmt.Fprintf(b, "%s%s %s = %s;\n", ind, s.CType, s.Name, s.Init)
			} else {
				fmt.Fprintf(b, "%s%s %s;\n", ind, s.CType, s.Name)
			}
		case *AssignStmt:
			fmt.Fprintf(b, "%s%s = %s;\n", ind, s.LHS, s.RHS)
		case *Comment:
			fmt.Fprintf(b, "%s/* %s */\n", ind, s.Text)
		case *Raw:
			fmt.Fprintf(b, "%s%s\n", ind, s.Code)
		}
	}
}
