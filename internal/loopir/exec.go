// A reference evaluator for the loop IR, used by tests to verify that
// every transformation preserves the semantics of the nest it
// rewrites (the essential property of §V's user-directed
// transformations: they change the loop structure, not the result).
package loopir

import "fmt"

// Value is a scalar IR value: an int or a float.
type Value struct {
	F     float64
	I     int64
	IsInt bool
}

// IV and FV build values.
func IV(i int64) Value   { return Value{I: i, IsInt: true} }
func FV(f float64) Value { return Value{F: f} }

func (v Value) asFloat() float64 {
	if v.IsInt {
		return float64(v.I)
	}
	return v.F
}

// Env is the evaluation environment: scalar variables and flat arrays.
type Env struct {
	Vars   map[string]Value
	Arrays map[string][]float64
}

// NewEnv builds an empty environment.
func NewEnv() *Env {
	return &Env{Vars: map[string]Value{}, Arrays: map[string][]float64{}}
}

// Clone deep-copies the environment.
func (e *Env) Clone() *Env {
	out := NewEnv()
	for k, v := range e.Vars {
		out.Vars[k] = v
	}
	for k, a := range e.Arrays {
		out.Arrays[k] = append([]float64(nil), a...)
	}
	return out
}

// EvalExpr evaluates an IR expression in the environment.
func (e *Env) EvalExpr(x Expr) (Value, error) {
	switch x := x.(type) {
	case *IntConst:
		return IV(x.V), nil
	case *FloatConst:
		return FV(x.V), nil
	case *VarRef:
		v, ok := e.Vars[x.Name]
		if !ok {
			return Value{}, fmt.Errorf("loopir eval: unbound variable %q", x.Name)
		}
		return v, nil
	case *Load:
		idx, err := e.EvalExpr(x.Idx)
		if err != nil {
			return Value{}, err
		}
		arr, ok := e.Arrays[x.Array]
		if !ok {
			return Value{}, fmt.Errorf("loopir eval: unknown array %q", x.Array)
		}
		if !idx.IsInt || idx.I < 0 || idx.I >= int64(len(arr)) {
			return Value{}, fmt.Errorf("loopir eval: index %v out of range for %q (len %d)", idx, x.Array, len(arr))
		}
		return FV(arr[idx.I]), nil
	case *Un:
		v, err := e.EvalExpr(x.X)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "-" {
			if v.IsInt {
				return IV(-v.I), nil
			}
			return FV(-v.F), nil
		}
		return Value{}, fmt.Errorf("loopir eval: unary %q unsupported", x.Op)
	case *Bin:
		l, err := e.EvalExpr(x.L)
		if err != nil {
			return Value{}, err
		}
		r, err := e.EvalExpr(x.R)
		if err != nil {
			return Value{}, err
		}
		if l.IsInt && r.IsInt {
			switch x.Op {
			case "+":
				return IV(l.I + r.I), nil
			case "-":
				return IV(l.I - r.I), nil
			case "*":
				return IV(l.I * r.I), nil
			case "/":
				if r.I == 0 {
					return Value{}, fmt.Errorf("loopir eval: division by zero")
				}
				return IV(l.I / r.I), nil
			case "%":
				if r.I == 0 {
					return Value{}, fmt.Errorf("loopir eval: modulo by zero")
				}
				return IV(l.I % r.I), nil
			}
		}
		lf, rf := l.asFloat(), r.asFloat()
		switch x.Op {
		case "+":
			return FV(lf + rf), nil
		case "-":
			return FV(lf - rf), nil
		case "*":
			return FV(lf * rf), nil
		case "/":
			return FV(lf / rf), nil
		}
		return Value{}, fmt.Errorf("loopir eval: operator %q unsupported", x.Op)
	}
	return Value{}, fmt.Errorf("loopir eval: expression %T unsupported", x)
}

// Exec runs a statement list, mutating the environment. Parallel and
// vector annotations are ignored — they must not change semantics,
// which is exactly what the tests assert.
func (e *Env) Exec(body []Stmt) error {
	for _, s := range body {
		switch s := s.(type) {
		case *Loop:
			lo, err := e.EvalExpr(s.Lo)
			if err != nil {
				return err
			}
			hi, err := e.EvalExpr(s.Hi)
			if err != nil {
				return err
			}
			if !lo.IsInt || !hi.IsInt {
				return fmt.Errorf("loopir eval: non-integer loop bounds for %q", s.Index)
			}
			saved, had := e.Vars[s.Index]
			for i := lo.I; i < hi.I; i++ {
				e.Vars[s.Index] = IV(i)
				if err := e.Exec(s.Body); err != nil {
					return err
				}
			}
			if had {
				e.Vars[s.Index] = saved
			} else {
				delete(e.Vars, s.Index)
			}
		case *DeclStmt:
			v := Value{}
			if s.Init != nil {
				var err error
				v, err = e.EvalExpr(s.Init)
				if err != nil {
					return err
				}
			}
			if s.CType == "int" {
				if !v.IsInt {
					v = IV(int64(v.F))
				}
			} else if v.IsInt {
				v = FV(float64(v.I))
			}
			e.Vars[s.Name] = v
		case *AssignStmt:
			rhs, err := e.EvalExpr(s.RHS)
			if err != nil {
				return err
			}
			switch lhs := s.LHS.(type) {
			case *VarRef:
				old, ok := e.Vars[lhs.Name]
				if ok && old.IsInt && !rhs.IsInt {
					rhs = IV(int64(rhs.F))
				}
				if ok && !old.IsInt && rhs.IsInt {
					rhs = FV(float64(rhs.I))
				}
				e.Vars[lhs.Name] = rhs
			case *Load:
				idx, err := e.EvalExpr(lhs.Idx)
				if err != nil {
					return err
				}
				arr, ok := e.Arrays[lhs.Array]
				if !ok {
					return fmt.Errorf("loopir eval: unknown array %q", lhs.Array)
				}
				if !idx.IsInt || idx.I < 0 || idx.I >= int64(len(arr)) {
					return fmt.Errorf("loopir eval: store index out of range for %q", lhs.Array)
				}
				arr[idx.I] = rhs.asFloat()
			default:
				return fmt.Errorf("loopir eval: cannot assign to %T", s.LHS)
			}
		case *Comment, *Raw:
			// no effect
		}
	}
	return nil
}
