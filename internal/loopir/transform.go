// The user-directed transformations of §V. Each rewrites the loop
// nest in place of the targeted loop, exactly as described in the
// paper: split produces the Fig 10 structure (two nested loops with
// j → jout*K + jin substituted), vectorize and parallelize mark loops
// for the Fig 11 emission, reorder permutes a perfect nest, tile is
// the derived transformation (two splits and a reorder), and unroll
// replicates the body.
package loopir

import "fmt"

// Split replaces the loop indexed by index with an outer loop of
// name outer and an inner loop of name inner with trip count factor,
// substituting outer*factor + inner for the original index (Fig 10).
// As in the paper's example, the trip count is assumed to be a
// multiple of factor; EmitGuard adds a remainder check when false is
// not acceptable.
func Split(body []Stmt, index string, factor int64, inner, outer string) ([]Stmt, error) {
	if factor < 1 {
		return nil, fmt.Errorf("loopir: split factor must be positive, got %d", factor)
	}
	container, pos, l := findLoop(body, index)
	if l == nil {
		return nil, fmt.Errorf("loopir: split: no loop with index %q", index)
	}
	if ic, ok := l.Lo.(*IntConst); !ok || ic.V != 0 {
		return nil, fmt.Errorf("loopir: split requires a zero-based loop, %q starts at %s", index, l.Lo)
	}
	// j -> jout*factor + jin
	repl := B("+", B("*", V(outer), IC(factor)), V(inner))
	newBody := SubstBlock(l.Body, index, repl)
	innerLoop := &Loop{Index: inner, Lo: IC(0), Hi: IC(factor), Body: newBody,
		VectorLanes: 0}
	outerLoop := &Loop{Index: outer, Lo: IC(0), Hi: B("/", l.Hi, IC(factor)),
		Body: []Stmt{innerLoop}, Parallel: l.Parallel}
	container[pos] = outerLoop
	return body, nil
}

// Vectorize marks the loop for 4-lane single-precision SSE emission
// (Fig 11). The loop must have a constant trip count divisible by the
// lane width — split provides exactly that.
func Vectorize(body []Stmt, index string) ([]Stmt, error) {
	l := FindLoop(body, index)
	if l == nil {
		return nil, fmt.Errorf("loopir: vectorize: no loop with index %q", index)
	}
	if n, ok := l.Hi.(*IntConst); !ok || n.V%4 != 0 {
		return nil, fmt.Errorf("loopir: vectorize requires a constant trip count divisible by 4; split %q by 4 first", index)
	}
	// Inner loops are allowed — they stay scalar over vector state, as
	// in Fig 11's time loop — but their bounds must not depend on the
	// vectorized index.
	var checkInner func(ss []Stmt) error
	checkInner = func(ss []Stmt) error {
		for _, s := range ss {
			if il, ok := s.(*Loop); ok {
				if exprUses(il.Lo, index) || exprUses(il.Hi, index) {
					return fmt.Errorf("loopir: vectorize: inner loop %q bounds depend on %q", il.Index, index)
				}
				if err := checkInner(il.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := checkInner(l.Body); err != nil {
		return nil, err
	}
	l.VectorLanes = 4
	return body, nil
}

// Parallelize marks the loop for parallel execution (OpenMP pragma or
// pthread-pool dispatch in the emitted C).
func Parallelize(body []Stmt, index string) ([]Stmt, error) {
	l := FindLoop(body, index)
	if l == nil {
		return nil, fmt.Errorf("loopir: parallelize: no loop with index %q", index)
	}
	l.Parallel = true
	return body, nil
}

// Reorder permutes a perfectly nested chain of loops so that their
// indices appear in the given order, outermost first. The loops must
// form a perfect nest (each loop's body is exactly the next loop).
func Reorder(body []Stmt, order []string) ([]Stmt, error) {
	if len(order) < 2 {
		return nil, fmt.Errorf("loopir: reorder needs at least two indices")
	}
	// The outermost loop of the nest is whichever named loop appears
	// first in a pre-order walk (the names form one nest).
	named := map[string]bool{}
	for _, n := range order {
		named[n] = true
	}
	container, pos, outer := findFirstNamed(body, named)
	if outer == nil {
		return nil, fmt.Errorf("loopir: reorder: no loop with any of the indices %v", order)
	}
	var chain []*Loop
	cur := outer
	for {
		if !named[cur.Index] {
			return nil, fmt.Errorf("loopir: reorder: loop %q is not in the reorder list but sits inside the nest", cur.Index)
		}
		chain = append(chain, cur)
		if len(chain) == len(order) {
			break
		}
		if len(cur.Body) != 1 {
			return nil, fmt.Errorf("loopir: reorder requires a perfect loop nest; %q has %d statements", cur.Index, len(cur.Body))
		}
		next, ok := cur.Body[0].(*Loop)
		if !ok {
			return nil, fmt.Errorf("loopir: reorder requires a perfect loop nest under %q", cur.Index)
		}
		cur = next
	}
	byName := map[string]*Loop{}
	for _, l := range chain {
		if !named[l.Index] {
			return nil, fmt.Errorf("loopir: reorder: nest contains unnamed loop %q", l.Index)
		}
		byName[l.Index] = l
	}
	for _, n := range order {
		if byName[n] == nil {
			return nil, fmt.Errorf("loopir: reorder: no loop with index %q in the nest", n)
		}
	}
	innermostBody := chain[len(chain)-1].Body
	// Rebuild in the requested order, preserving each loop's own
	// bounds and flags.
	var rebuilt *Loop
	for k := len(order) - 1; k >= 0; k-- {
		src := byName[order[k]]
		nl := &Loop{Index: src.Index, Lo: src.Lo, Hi: src.Hi,
			Parallel: src.Parallel, VectorLanes: src.VectorLanes}
		if rebuilt == nil {
			nl.Body = innermostBody
		} else {
			nl.Body = []Stmt{rebuilt}
		}
		rebuilt = nl
	}
	container[pos] = rebuilt
	return body, nil
}

// exprUses reports whether e references name.
func exprUses(e Expr, name string) bool {
	switch e := e.(type) {
	case *VarRef:
		return e.Name == name
	case *Bin:
		return exprUses(e.L, name) || exprUses(e.R, name)
	case *Un:
		return exprUses(e.X, name)
	case *Load:
		return exprUses(e.Idx, name)
	case *CallE:
		for _, a := range e.Args {
			if exprUses(a, name) {
				return true
			}
		}
	case *Cond:
		return exprUses(e.C, name) || exprUses(e.T, name) || exprUses(e.F, name)
	}
	return false
}

// findFirstNamed returns the first loop (pre-order) whose index is in
// the named set — the outermost loop of the nest being reordered.
func findFirstNamed(body []Stmt, named map[string]bool) ([]Stmt, int, *Loop) {
	for i, s := range body {
		l, ok := s.(*Loop)
		if !ok {
			continue
		}
		if named[l.Index] {
			return body, i, l
		}
		if c, p, found := findFirstNamed(l.Body, named); found != nil {
			return c, p, found
		}
	}
	return nil, 0, nil
}

// Tile is the derived transformation of §V: "a transformation
// specification to tile two nested loops indexed by x and y can be
// specified as two splits and a reorder": split x into xin/xout,
// split y into yin/yout, then reorder to xout, yout, xin, yin.
func Tile(body []Stmt, x string, fx int64, y string, fy int64) ([]Stmt, error) {
	xin, xout := x+"in", x+"out"
	yin, yout := y+"in", y+"out"
	b, err := Split(body, x, fx, xin, xout)
	if err != nil {
		return nil, fmt.Errorf("loopir: tile: %w", err)
	}
	b, err = Split(b, y, fy, yin, yout)
	if err != nil {
		return nil, fmt.Errorf("loopir: tile: %w", err)
	}
	b, err = Reorder(b, []string{xout, yout, xin, yin})
	if err != nil {
		return nil, fmt.Errorf("loopir: tile: %w", err)
	}
	return b, nil
}

// Unroll replicates the loop body factor times, advancing the index;
// the trip count must be a constant multiple of the factor.
func Unroll(body []Stmt, index string, factor int64) ([]Stmt, error) {
	if factor < 1 {
		return nil, fmt.Errorf("loopir: unroll factor must be positive")
	}
	container, pos, l := findLoop(body, index)
	if l == nil {
		return nil, fmt.Errorf("loopir: unroll: no loop with index %q", index)
	}
	hi, ok := l.Hi.(*IntConst)
	if !ok || hi.V%factor != 0 {
		return nil, fmt.Errorf("loopir: unroll requires a constant trip count divisible by %d", factor)
	}
	lo, ok := l.Lo.(*IntConst)
	if !ok || lo.V != 0 {
		return nil, fmt.Errorf("loopir: unroll requires a zero-based loop")
	}
	base := B("*", V(index), IC(factor))
	var newBody []Stmt
	for k := int64(0); k < factor; k++ {
		idxExpr := Expr(base)
		if k > 0 {
			idxExpr = B("+", base, IC(k))
		}
		newBody = append(newBody, SubstBlock(l.Body, index, idxExpr)...)
	}
	container[pos] = &Loop{Index: index, Lo: IC(0), Hi: IC(hi.V / factor),
		Body: newBody, Parallel: l.Parallel}
	return body, nil
}
