package rc

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicLifecycle(t *testing.T) {
	h := NewHeap()
	hd := h.Alloc(64)
	if hd.Count() != 1 {
		t.Fatalf("fresh count = %d", hd.Count())
	}
	hd.IncRef()
	if hd.Count() != 2 {
		t.Fatalf("after inc = %d", hd.Count())
	}
	if hd.DecRef() {
		t.Fatal("decref with remaining refs should not free")
	}
	if !hd.DecRef() {
		t.Fatal("last decref should free")
	}
	if !hd.Freed() {
		t.Fatal("header should be marked freed")
	}
	if err := h.CheckLeaks(); err != nil {
		t.Fatalf("leak check: %v", err)
	}
}

func TestLeakDetection(t *testing.T) {
	h := NewHeap()
	h.Alloc(128)
	if err := h.CheckLeaks(); err == nil {
		t.Fatal("expected leak to be reported")
	}
	if s := h.Stats(); s.Live != 1 || s.LiveBytes != 128 || s.Allocs != 1 || s.Frees != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	h := NewHeap()
	hd := h.Alloc(8)
	hd.DecRef()
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	hd.DecRef()
}

func TestUseAfterFreePanics(t *testing.T) {
	h := NewHeap()
	hd := h.Alloc(8)
	hd.DecRef()
	defer func() {
		if recover() == nil {
			t.Error("IncRef after free should panic")
		}
	}()
	hd.IncRef()
}

func TestNilHeaderSafe(t *testing.T) {
	var hd *Header
	hd.IncRef()
	if hd.DecRef() {
		t.Error("nil decref should be a no-op")
	}
}

func TestConcurrentRefCounting(t *testing.T) {
	h := NewHeap()
	hd := h.Alloc(1)
	const goroutines = 8
	const rounds = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				hd.IncRef()
				hd.DecRef()
			}
		}()
	}
	wg.Wait()
	if hd.Count() != 1 {
		t.Fatalf("count after concurrent inc/dec = %d", hd.Count())
	}
	hd.DecRef()
	if err := h.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestOnFreeHook(t *testing.T) {
	h := NewHeap()
	freedBytes := 0
	h.OnFree = func(size int) { freedBytes += size }
	hd := h.Alloc(96)
	hd.DecRef()
	if freedBytes != 96 {
		t.Errorf("OnFree saw %d bytes", freedBytes)
	}
}

// Property: a random sequence of incs followed by matching decs frees
// exactly once at the end and never leaks.
func TestQuickBalancedOps(t *testing.T) {
	f := func(seed int64, incsU uint8) bool {
		incs := int(incsU % 50)
		h := NewHeap()
		hd := h.Alloc(16)
		for i := 0; i < incs; i++ {
			hd.IncRef()
		}
		for i := 0; i < incs; i++ {
			if hd.DecRef() {
				return false // must not free early
			}
		}
		if !hd.DecRef() {
			return false // final ref must free
		}
		return h.CheckLeaks() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testAllocator(t *testing.T, a Allocator) {
	t.Helper()
	// Allocate and free under concurrency; verify ids never collide
	// while live.
	const goroutines = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	liveIDs := map[int]bool{}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			var mine []int
			for i := 0; i < 300; i++ {
				if len(mine) > 0 && r.Intn(2) == 0 {
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					mu.Lock()
					delete(liveIDs, id)
					mu.Unlock()
					a.Free(id)
				} else {
					id := a.Allocate(32)
					mu.Lock()
					if liveIDs[id] {
						t.Errorf("%s: id %d double-allocated", a.Name(), id)
					}
					liveIDs[id] = true
					mu.Unlock()
					mine = append(mine, id)
				}
			}
			for _, id := range mine {
				mu.Lock()
				delete(liveIDs, id)
				mu.Unlock()
				a.Free(id)
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestGlobalLockAllocator(t *testing.T) { testAllocator(t, NewGlobalLock(10)) }
func TestArenaAllocator(t *testing.T)      { testAllocator(t, NewArena(8, 10)) }

func TestArenaFreeReuse(t *testing.T) {
	a := NewArena(4, 0)
	id1 := a.Allocate(8)
	a.Free(id1)
	// freed blocks are reused within their arena
	seen := false
	for i := 0; i < 16; i++ {
		id := a.Allocate(8)
		if id == id1 {
			seen = true
		}
	}
	if !seen {
		t.Error("freed block was never reused")
	}
}

func TestSetOnFreeFiresOnLastDecRef(t *testing.T) {
	h := NewHeap()
	hd := h.Alloc(64)
	fired := 0
	hd.SetOnFree(func() { fired++ })
	hd.IncRef()
	if hd.DecRef() || fired != 0 {
		t.Fatalf("hook fired before the count reached zero (fired=%d)", fired)
	}
	if !hd.DecRef() || fired != 1 {
		t.Fatalf("hook did not fire exactly once on release (fired=%d)", fired)
	}
}

func TestSetOnFreeSkippedOnForceFree(t *testing.T) {
	h := NewHeap()
	hd := h.Alloc(64)
	fired := 0
	hd.SetOnFree(func() { fired++ })
	hd.IncRef() // a stale automatic reference survives the explicit release
	if !hd.ForceFree() {
		t.Fatal("ForceFree failed")
	}
	hd.DecRef()
	hd.DecRef()
	if fired != 0 {
		t.Fatalf("onFree ran after ForceFree (fired=%d); stale aliases could observe a recycled buffer", fired)
	}
}

func TestSetOnFreeNilHeader(t *testing.T) {
	var hd *Header
	hd.SetOnFree(func() { t.Fatal("hook on nil header ran") }) // must not panic
	hd.DecRef()
}
