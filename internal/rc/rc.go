// Package rc models the reference-counting memory management of
// §III-B: every allocation carries a (4-byte, in the paper) reference
// count header; copies increment it, scope exits and reassignments
// decrement it, and the data is freed when the count reaches zero.
// The package also models the allocator-scalability discussion of
// §III-C — a global-lock allocator versus a sharded per-thread arena
// allocator — for benchmark E9.
//
// The matrix runtime (internal/matrix) and the interpreter use this
// package so that RC invariant violations (double free, use after
// free, leaks) become detectable test failures rather than silent
// corruption.
package rc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Violation is the panic value raised when the reference-counting
// discipline is broken (double free, use after free, negative count).
// It is a typed error so execution layers that recover it can classify
// the failure (the interpreter maps it to the "rc" trap) instead of
// string-matching panic text.
type Violation struct{ Msg string }

func (v *Violation) Error() string { return "rc: " + v.Msg }

// Header is the per-allocation reference count record — the "extra 4
// bytes attached to every piece of memory" of §III-B.
type Header struct {
	count int32
	freed atomic.Bool
	// forced marks an explicit early release (ForceFree): the
	// allocation is already returned to the heap, so the automatic
	// scope-exit DecRefs that still hold stale references become
	// no-ops instead of double-free violations.
	forced atomic.Bool
	size   int
	heap   *Heap
	// onFree is an optional per-allocation release hook (see SetOnFree);
	// the matrix runtime uses it to return backing storage to its
	// kernel free list the moment the last reference is dropped.
	onFree func()
}

// SetOnFree registers f to run when the allocation is released by
// DecRef reaching zero. It must be called before the header is shared
// across goroutines (typically right after Alloc). ForceFree — the
// explicit early release — deliberately does NOT run f: after a forced
// release, stale automatic references may still dereference the
// storage (their misuse is detected via Freed, not prevented), so a
// recycler must not hand the buffer to a new owner.
func (hd *Header) SetOnFree(f func()) {
	if hd == nil {
		return
	}
	hd.onFree = f
}

// Heap tracks live allocations for leak accounting.
type Heap struct {
	live      atomic.Int64
	liveBytes atomic.Int64
	allocs    atomic.Int64
	frees     atomic.Int64
	// OnFree, if set, observes each release (used by arena models).
	OnFree func(size int)
}

// NewHeap creates an empty heap.
func NewHeap() *Heap { return &Heap{} }

// DefaultHeap is used by package-level helpers and the matrix runtime.
var DefaultHeap = NewHeap()

// Alloc records a new allocation with reference count 1.
func (h *Heap) Alloc(size int) *Header {
	h.live.Add(1)
	h.liveBytes.Add(int64(size))
	h.allocs.Add(1)
	return &Header{count: 1, size: size, heap: h}
}

// IncRef increments the reference count ("another variable also
// becomes a reference for that same piece of data").
func (hd *Header) IncRef() {
	if hd == nil {
		return
	}
	if hd.freed.Load() {
		if hd.forced.Load() {
			return // stale alias of an explicitly released cell; caught at use
		}
		panic(&Violation{Msg: "IncRef on freed allocation (use after free)"})
	}
	atomic.AddInt32(&hd.count, 1)
}

// DecRef decrements the count; at zero the allocation is freed.
// Returns true if this call freed the data.
func (hd *Header) DecRef() bool {
	if hd == nil {
		return false
	}
	if hd.freed.Load() {
		if hd.forced.Load() {
			return false // scope-exit release after an explicit ForceFree
		}
		panic(&Violation{Msg: "DecRef on freed allocation (double free)"})
	}
	n := atomic.AddInt32(&hd.count, -1)
	if n < 0 {
		panic(&Violation{Msg: "reference count went negative"})
	}
	if n == 0 {
		hd.freed.Store(true)
		hd.heap.live.Add(-1)
		hd.heap.liveBytes.Add(-int64(hd.size))
		hd.heap.frees.Add(1)
		if hd.heap.OnFree != nil {
			hd.heap.OnFree(hd.size)
		}
		if hd.onFree != nil {
			hd.onFree()
		}
		return true
	}
	return false
}

// ForceFree releases the allocation immediately regardless of its
// count — the semantics of an explicit release operation (rcrelease).
// It returns false if the allocation was already freed (an explicit
// double release; callers report it as an rc violation). After a
// successful ForceFree the outstanding automatic references become
// inert: their IncRef/DecRef calls are no-ops, and any dereference is
// the caller's use-after-free to detect via Freed.
func (hd *Header) ForceFree() bool {
	if hd == nil {
		return false
	}
	// forced is set before freed so a concurrent DecRef that observes
	// freed==true also observes forced==true and no-ops.
	hd.forced.Store(true)
	if !hd.freed.CompareAndSwap(false, true) {
		return false
	}
	hd.heap.live.Add(-1)
	hd.heap.liveBytes.Add(-int64(hd.size))
	hd.heap.frees.Add(1)
	if hd.heap.OnFree != nil {
		hd.heap.OnFree(hd.size)
	}
	return true
}

// Count returns the current reference count.
func (hd *Header) Count() int32 { return atomic.LoadInt32(&hd.count) }

// Freed reports whether the allocation was released.
func (hd *Header) Freed() bool { return hd.freed.Load() }

// Size returns the allocation size recorded at Alloc.
func (hd *Header) Size() int { return hd.size }

// Stats is a snapshot of heap accounting.
type Stats struct {
	Live      int64
	LiveBytes int64
	Allocs    int64
	Frees     int64
}

// Stats returns the current counters.
func (h *Heap) Stats() Stats {
	return Stats{
		Live:      h.live.Load(),
		LiveBytes: h.liveBytes.Load(),
		Allocs:    h.allocs.Load(),
		Frees:     h.frees.Load(),
	}
}

// CheckLeaks returns an error when live allocations remain — used by
// tests to enforce the RC discipline end to end.
func (h *Heap) CheckLeaks() error {
	if s := h.Stats(); s.Live != 0 {
		return fmt.Errorf("rc: %d allocation(s) (%d bytes) leaked", s.Live, s.LiveBytes)
	}
	return nil
}

// --- Allocator contention models (§III-C, benchmark E9) ---

// Allocator is the interface both contention models implement.
type Allocator interface {
	Allocate(size int) int // returns a block id
	Free(id int)
	Name() string
}

// GlobalLockAllocator models "some implementations of malloc [...]
// naively implemented using a mutex lock to deal with contention over
// the heap": one free list guarded by one mutex.
type GlobalLockAllocator struct {
	mu       sync.Mutex
	nextID   int
	freeList []int
	sizes    map[int]int
	// HoldWork simulates per-operation critical-section work
	// (bookkeeping walks); larger values model slower allocators.
	HoldWork int
}

// NewGlobalLock creates the global-lock model.
func NewGlobalLock(holdWork int) *GlobalLockAllocator {
	return &GlobalLockAllocator{sizes: map[int]int{}, HoldWork: holdWork}
}

// Name implements Allocator.
func (g *GlobalLockAllocator) Name() string { return "global-lock" }

// Allocate implements Allocator.
func (g *GlobalLockAllocator) Allocate(size int) int {
	g.mu.Lock()
	spin(g.HoldWork)
	var id int
	if n := len(g.freeList); n > 0 {
		id = g.freeList[n-1]
		g.freeList = g.freeList[:n-1]
	} else {
		g.nextID++
		id = g.nextID
	}
	g.sizes[id] = size
	g.mu.Unlock()
	return id
}

// Free implements Allocator.
func (g *GlobalLockAllocator) Free(id int) {
	g.mu.Lock()
	spin(g.HoldWork)
	delete(g.sizes, id)
	g.freeList = append(g.freeList, id)
	g.mu.Unlock()
}

// ArenaAllocator models the per-thread arena design ("more recent
// implementations separate the heap into arenas as soon as contention
// is detected"): allocations hash to one of N independently locked
// arenas, so threads rarely contend.
type ArenaAllocator struct {
	arenas   []arena
	next     atomic.Int64
	HoldWork int
}

type arena struct {
	mu       sync.Mutex
	freeList []int
	sizes    map[int]int
	nextID   int
	_        [40]byte // padding to keep arenas off the same cache line
}

// NewArena creates an arena allocator with n shards.
func NewArena(n, holdWork int) *ArenaAllocator {
	a := &ArenaAllocator{arenas: make([]arena, n), HoldWork: holdWork}
	for i := range a.arenas {
		a.arenas[i].sizes = map[int]int{}
	}
	return a
}

// Name implements Allocator.
func (a *ArenaAllocator) Name() string { return "sharded-arena" }

// Allocate implements Allocator. Block ids encode the arena index so
// Free returns the block to its own arena without a global lookup.
func (a *ArenaAllocator) Allocate(size int) int {
	shard := int(a.next.Add(1)) % len(a.arenas)
	ar := &a.arenas[shard]
	ar.mu.Lock()
	spin(a.HoldWork)
	var local int
	if n := len(ar.freeList); n > 0 {
		local = ar.freeList[n-1]
		ar.freeList = ar.freeList[:n-1]
	} else {
		ar.nextID++
		local = ar.nextID
	}
	ar.sizes[local] = size
	ar.mu.Unlock()
	return local*len(a.arenas) + shard
}

// Free implements Allocator.
func (a *ArenaAllocator) Free(id int) {
	shard := id % len(a.arenas)
	local := id / len(a.arenas)
	ar := &a.arenas[shard]
	ar.mu.Lock()
	spin(a.HoldWork)
	delete(ar.sizes, local)
	ar.freeList = append(ar.freeList, local)
	ar.mu.Unlock()
}

// spin burns a deterministic amount of CPU inside a critical section.
func spin(n int) {
	x := 1
	for i := 0; i < n; i++ {
		x = x*1103515245 + 12345
	}
	_ = x
}
