// Package ast defines the abstract syntax of the CMINUS host language
// and the matrix, tuple, reference-counting and transform extensions.
// Extension nodes live in the same tree as host nodes — exactly as in
// the paper, where extension abstract syntax is composed with the host
// grammar's — and carry an Owner tag naming the extension that
// contributed them, which the attribute-grammar engine's modular
// well-definedness analysis uses.
package ast

import "repro/internal/source"

// Node is any syntax-tree node.
type Node interface {
	Span() source.Span
}

// Base carries the source span common to all nodes.
type Base struct {
	Loc source.Span
}

// Span returns the node's source span.
func (b *Base) Span() source.Span { return b.Loc }

// SetSpan records the node's span if it has none yet. The parser
// driver calls this on each freshly built node at reduce time;
// set-once semantics keep pass-through nodes' tighter spans intact.
func (b *Base) SetSpan(s source.Span) {
	if !b.Loc.Start.IsValid() {
		b.Loc = s
	}
}

// --- Types (syntactic) ---

// TypeExpr is a syntactic type.
type TypeExpr interface {
	Node
	typeNode()
}

// PrimKind enumerates primitive types.
type PrimKind int

// Primitive type kinds.
const (
	PrimInt PrimKind = iota
	PrimFloat
	PrimBool
	PrimVoid
	PrimString // for readMatrix("...") style literals only
)

func (k PrimKind) String() string {
	switch k {
	case PrimInt:
		return "int"
	case PrimFloat:
		return "float"
	case PrimBool:
		return "bool"
	case PrimVoid:
		return "void"
	case PrimString:
		return "string"
	}
	return "?"
}

// PrimType is a primitive type expression: int, float, bool, void.
type PrimType struct {
	Base
	Kind PrimKind
}

// MatrixType is the matrix extension's type expression:
// Matrix <elem> '<' rank '>'.
type MatrixType struct {
	Base
	Elem PrimKind
	Rank int
}

// TupleType is the tuple extension's type expression: (T1, T2, ...).
type TupleType struct {
	Base
	Elems []TypeExpr
}

// RcPtrType is the reference-counting extension's pointer type:
// refcounted T *.
type RcPtrType struct {
	Base
	Elem TypeExpr
}

func (*PrimType) typeNode()   {}
func (*MatrixType) typeNode() {}
func (*TupleType) typeNode()  {}
func (*RcPtrType) typeNode()  {}

// --- Declarations ---

// Program is a translation unit.
type Program struct {
	Base
	File  string
	Decls []Decl
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// Param is one function parameter.
type Param struct {
	Base
	Type TypeExpr
	Name string
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Base
	Ret    TypeExpr
	Name   string
	Params []*Param
	Body   *BlockStmt
}

// GlobalVarDecl is a file-scope variable declaration.
type GlobalVarDecl struct {
	Base
	Type TypeExpr
	Name string
	Init Expr // may be nil
}

func (*FuncDecl) declNode()      {}
func (*GlobalVarDecl) declNode() {}

// --- Statements ---

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is { ... }.
type BlockStmt struct {
	Base
	Stmts []Stmt
}

// DeclStmt declares (and optionally initializes) a local variable.
type DeclStmt struct {
	Base
	Type TypeExpr
	Name string
	Init Expr // may be nil
}

// AssignStmt assigns RHS to one or more lvalues. Multiple LHS targets
// come from the tuple extension's destructuring form (a, b, c) = f().
type AssignStmt struct {
	Base
	LHS []Expr // Ident or IndexExpr lvalues
	RHS Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Base
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Base
	Cond Expr
	Body Stmt
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Base
	Init Stmt // DeclStmt or AssignStmt or nil
	Cond Expr // may be nil
	Post Stmt // AssignStmt or nil
	Body Stmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	Base
	Value Expr // may be nil
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	Base
	X Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Base }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Base }

// SpawnStmt is the Cilk extension's spawn (§VIII future work,
// implemented here): run Call asynchronously; if Target is non-empty
// the named variable receives the result at the next sync.
type SpawnStmt struct {
	Base
	Target string // "" for fire-and-forget
	Call   Expr
}

// SyncStmt waits for all spawns of the enclosing function.
type SyncStmt struct{ Base }

func (*SpawnStmt) stmtNode()    {}
func (*SyncStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// --- Expressions ---

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Base
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Base
	Value float64
}

// BoolLit is true or false.
type BoolLit struct {
	Base
	Value bool
}

// StrLit is a string literal (only used as file-name arguments to the
// matrix I/O builtins).
type StrLit struct {
	Base
	Value string
}

// Ident is a variable reference.
type Ident struct {
	Base
	Name string
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators. MatMul is '*' applied to two matrices (linear
// algebra product); ElemMul is the extension's '.*' elementwise
// product, following the paper's MATLAB-style split.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul // scalar mul, or matrix*: resolved to MatMul in type checking
	OpElemMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpElemMul: ".*", OpDiv: "/",
	OpMod: "%", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAnd: "&&", OpOr: "||",
}

func (o BinOp) String() string { return binOpNames[o] }

// BinaryExpr is L op R. The matrix extension overloads every operator
// elementwise over matrices and matrix/scalar pairs (§III-A.2).
type BinaryExpr struct {
	Base
	Op   BinOp
	L, R Expr
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota
	OpNot
)

func (o UnOp) String() string {
	if o == OpNeg {
		return "-"
	}
	return "!"
}

// UnaryExpr is op X.
type UnaryExpr struct {
	Base
	Op UnOp
	X  Expr
}

// CallExpr is a function call or builtin (dimSize, readMatrix,
// writeMatrix).
type CallExpr struct {
	Base
	Fun  string
	Args []Expr
}

// CastExpr is a C-style cast (float) x.
type CastExpr struct {
	Base
	To PrimKind
	X  Expr
}

// --- Matrix extension expressions ---

// IndexArg is one dimension's index inside m[...]: a scalar
// expression, an inclusive range, a whole-dimension ':', or (resolved
// during type checking from a bool-matrix scalar arg) a logical mask.
type IndexArg interface {
	Node
	indexArgNode()
}

// IdxScalar indexes one position — or, if the expression has boolean
// matrix type, selects by logical mask (§III-A.3(d)).
type IdxScalar struct {
	Base
	X Expr
}

// IdxRange is lo:hi (inclusive, MATLAB-style: data[0:4] is 5 cells).
// Lo or Hi may contain EndExpr.
type IdxRange struct {
	Base
	Lo, Hi Expr
}

// IdxAll is ':' — the whole dimension.
type IdxAll struct{ Base }

func (*IdxScalar) indexArgNode() {}
func (*IdxRange) indexArgNode()  {}
func (*IdxAll) indexArgNode()    {}

// IndexExpr is base[args...]; legal on both sides of assignment.
type IndexExpr struct {
	Base
	X    Expr
	Args []IndexArg
}

// EndExpr is the matrix extension's 'end': the last index of the
// dimension being indexed. Only valid inside IndexArg expressions.
type EndExpr struct{ Base }

// RangeExpr is the vector-building range (lo :: hi), producing the
// one-dimensional int matrix [lo, lo+1, ..., hi] (Fig 8, line 27).
type RangeExpr struct {
	Base
	Lo, Hi Expr
}

// WithLoop is the SAC-style with-loop (§III-A.4):
//
//	with ([l...] <= [ids...] < [u...]) genarray([shape...], body)
//	with ([l...] <= [ids...] < [u...]) fold(op, base, body)
//
// optionally followed by the transform extension's clause list (§V).
type WithLoop struct {
	Base
	Lower      []Expr
	Ids        []string
	Upper      []Expr
	Op         WithOp
	Transforms []TransformClause
}

// WithOp is the with-loop's operation part.
type WithOp interface {
	Node
	withOpNode()
}

// GenArrayOp builds a new matrix of the given shape, with body at each
// generated index and 0 elsewhere.
type GenArrayOp struct {
	Base
	Shape []Expr
	Body  Expr
}

// FoldKind enumerates fold operators.
type FoldKind int

// Fold operators.
const (
	FoldAdd FoldKind = iota
	FoldMul
	FoldMin
	FoldMax
)

func (k FoldKind) String() string {
	switch k {
	case FoldAdd:
		return "+"
	case FoldMul:
		return "*"
	case FoldMin:
		return "min"
	case FoldMax:
		return "max"
	}
	return "?"
}

// FoldOp reduces body over the generated indices with the operator,
// starting from Base.
type FoldOp struct {
	Base
	Kind FoldKind
	Init Expr
	Body Expr
}

func (*GenArrayOp) withOpNode() {}
func (*FoldOp) withOpNode()     {}

// MatrixMap is matrixMap(f, m, [dims...]) (§III-A.5): apply f to the
// sub-matrices of m spanned by dims, iterating the other dimensions.
// General marks the matrixMapG form — the generalization §III-A.5
// says is "being developed", implemented here — which lets f change
// the mapped dimensions' sizes (discovered at run time).
type MatrixMap struct {
	Base
	Fun     string
	Arg     Expr
	Dims    []Expr
	General bool
}

// InitExpr is init(MatrixType, d0, d1, ...): a zeroed matrix with the
// given dimension sizes.
type InitExpr struct {
	Base
	Type *MatrixType
	Dims []Expr
}

// TupleExpr is the tuple extension's anonymous construction (a, b, c).
type TupleExpr struct {
	Base
	Elems []Expr
}

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BoolLit) exprNode()    {}
func (*StrLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*CastExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*EndExpr) exprNode()    {}
func (*RangeExpr) exprNode()  {}
func (*WithLoop) exprNode()   {}
func (*MatrixMap) exprNode()  {}
func (*InitExpr) exprNode()   {}
func (*TupleExpr) exprNode()  {}

// --- Transform extension (§V) ---

// TransformClause is one user-directed loop transformation attached to
// a with-loop.
type TransformClause interface {
	Node
	transformNode()
}

// SplitClause is "split i by K, iin, iout": loop i becomes an outer
// loop iout and an inner loop iin of trip count K, with i rewritten to
// iout*K+iin (Fig 10).
type SplitClause struct {
	Base
	Index  string
	Factor Expr
	Inner  string
	Outer  string
}

// VectorizeClause is "vectorize i": the loop is strip-executed with
// SSE-style 4-lane single-precision vectors (Fig 11).
type VectorizeClause struct {
	Base
	Index string
}

// ParallelizeClause is "parallelize i": the loop is annotated for
// parallel execution (OpenMP pragma in emitted C, worker pool in the
// interpreter).
type ParallelizeClause struct {
	Base
	Index string
}

// ReorderClause is "reorder i, j, k": reorders the perfectly nested
// loops to the given order, outermost first.
type ReorderClause struct {
	Base
	Indices []string
}

// TileClause is "tile i by K, j by L": the derived transformation the
// paper describes — two splits plus a reorder.
type TileClause struct {
	Base
	IndexA  string
	FactorA Expr
	IndexB  string
	FactorB Expr
}

// UnrollClause is "unroll i by K": replicates the loop body K times.
type UnrollClause struct {
	Base
	Index  string
	Factor Expr
}

func (*SplitClause) transformNode()       {}
func (*VectorizeClause) transformNode()   {}
func (*ParallelizeClause) transformNode() {}
func (*ReorderClause) transformNode()     {}
func (*TileClause) transformNode()        {}
func (*UnrollClause) transformNode()      {}
