package ast

import (
	"strings"
	"testing"
)

func TestExprString(t *testing.T) {
	e := &BinaryExpr{Op: OpAdd,
		L: &BinaryExpr{Op: OpMul, L: &Ident{Name: "a"}, R: &IntLit{Value: 2}},
		R: &FloatLit{Value: 1.5}}
	if got := ExprString(e); got != "((a * 2) + 1.5)" {
		t.Errorf("ExprString = %q", got)
	}
}

func TestExprStringFloatAlwaysHasPoint(t *testing.T) {
	if got := ExprString(&FloatLit{Value: 3}); got != "3.0" {
		t.Errorf("float literal = %q", got)
	}
}

func TestIndexAndRangePrinting(t *testing.T) {
	e := &IndexExpr{
		X: &Ident{Name: "data"},
		Args: []IndexArg{
			&IdxScalar{X: &IntLit{Value: 0}},
			&IdxRange{Lo: &BinaryExpr{Op: OpSub, L: &EndExpr{}, R: &IntLit{Value: 4}}, Hi: &EndExpr{}},
			&IdxAll{},
		},
	}
	got := ExprString(e)
	if got != "data[0, (end - 4):end, :]" {
		t.Errorf("index print = %q", got)
	}
	r := &RangeExpr{Lo: &IntLit{Value: 1}, Hi: &Ident{Name: "n"}}
	if got := ExprString(r); got != "(1 :: n)" {
		t.Errorf("range print = %q", got)
	}
}

func TestWithLoopPrinting(t *testing.T) {
	w := &WithLoop{
		Lower: []Expr{&IntLit{Value: 0}},
		Ids:   []string{"i"},
		Upper: []Expr{&Ident{Name: "n"}},
		Op: &FoldOp{Kind: FoldAdd, Init: &FloatLit{Value: 0},
			Body: &Ident{Name: "x"}},
		Transforms: []TransformClause{
			&SplitClause{Index: "i", Factor: &IntLit{Value: 4}, Inner: "iin", Outer: "iout"},
			&VectorizeClause{Index: "iin"},
		},
	}
	got := ExprString(w)
	for _, want := range []string{"with ([0] <= [i] < [n])", "fold(+, 0.0, x)",
		"split i by 4, iin, iout", "vectorize iin"} {
		if !strings.Contains(got, want) {
			t.Errorf("with-loop print %q missing %q", got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := map[TypeExpr]string{
		&PrimType{Kind: PrimInt}:                   "int",
		&MatrixType{Elem: PrimFloat, Rank: 3}:      "Matrix float <3>",
		&RcPtrType{Elem: &PrimType{Kind: PrimInt}}: "refcounted int *",
	}
	for te, want := range cases {
		if got := TypeString(te); got != want {
			t.Errorf("TypeString = %q, want %q", got, want)
		}
	}
	tt := &TupleType{Elems: []TypeExpr{&PrimType{Kind: PrimInt}, &PrimType{Kind: PrimBool}}}
	if got := TypeString(tt); got != "(int, bool)" {
		t.Errorf("tuple TypeString = %q", got)
	}
}

func TestProgramPrinting(t *testing.T) {
	p := &Program{
		File: "t.xc",
		Decls: []Decl{
			&GlobalVarDecl{Type: &PrimType{Kind: PrimInt}, Name: "g", Init: &IntLit{Value: 1}},
			&FuncDecl{
				Ret: &PrimType{Kind: PrimInt}, Name: "main",
				Body: &BlockStmt{Stmts: []Stmt{
					&DeclStmt{Type: &PrimType{Kind: PrimInt}, Name: "x", Init: &IntLit{Value: 2}},
					&IfStmt{Cond: &BoolLit{Value: true},
						Then: &ReturnStmt{Value: &Ident{Name: "x"}},
						Else: &ReturnStmt{Value: &Ident{Name: "g"}}},
				}},
			},
		},
	}
	out := Print(p)
	for _, want := range []string{"(program t.xc", "(global int g = 1)",
		"(func int main", "(decl int x = 2)", "(if true", "(return x)"} {
		if !strings.Contains(out, want) {
			t.Errorf("program print missing %q:\n%s", want, out)
		}
	}
}

func TestStatementPrinting(t *testing.T) {
	stmts := []Stmt{
		&WhileStmt{Cond: &BoolLit{Value: false}, Body: &BreakStmt{}},
		&ForStmt{Cond: &BoolLit{Value: true}, Body: &ContinueStmt{}},
		&AssignStmt{LHS: []Expr{&Ident{Name: "a"}, &Ident{Name: "b"}},
			RHS: &CallExpr{Fun: "f", Args: nil}},
		&ExprStmt{X: &CallExpr{Fun: "g", Args: []Expr{&IntLit{Value: 9}}}},
		&ReturnStmt{},
	}
	out := Print(&BlockStmt{Stmts: stmts})
	for _, want := range []string{"(while false", "(break)", "(continue)",
		"(assign a, b = f())", "(expr g(9))", "(return)"} {
		if !strings.Contains(out, want) {
			t.Errorf("stmt print missing %q:\n%s", want, out)
		}
	}
}

func TestSetSpanOnce(t *testing.T) {
	n := &IntLit{Value: 1}
	s1 := n.Span()
	if s1.Start.IsValid() {
		t.Fatal("fresh node should have no span")
	}
}

func TestBinOpAndFoldStrings(t *testing.T) {
	if OpElemMul.String() != ".*" || OpNe.String() != "!=" {
		t.Error("operator names wrong")
	}
	if FoldMin.String() != "min" || FoldMax.String() != "max" {
		t.Error("fold names wrong")
	}
	if TransformString(&ReorderClause{Indices: []string{"i", "j"}}) != "reorder i, j" {
		t.Error("reorder print wrong")
	}
	if TransformString(&UnrollClause{Index: "i", Factor: &IntLit{Value: 2}}) != "unroll i by 2" {
		t.Error("unroll print wrong")
	}
	if TransformString(&TileClause{IndexA: "i", FactorA: &IntLit{Value: 4},
		IndexB: "j", FactorB: &IntLit{Value: 8}}) != "tile i by 4, j by 8" {
		t.Error("tile print wrong")
	}
}
