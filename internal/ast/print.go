// AST pretty-printer. Produces a stable, indented S-expression-style
// rendering used by cmd/cmc -emit ast and by golden tests.
package ast

import (
	"fmt"
	"strings"
)

// Print renders any AST node.
func Print(n Node) string {
	var p printer
	p.node(n)
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) in()  { p.indent++ }
func (p *printer) out() { p.indent-- }

// TypeString renders a syntactic type on one line.
func TypeString(t TypeExpr) string {
	switch t := t.(type) {
	case *PrimType:
		return t.Kind.String()
	case *MatrixType:
		return fmt.Sprintf("Matrix %s <%d>", t.Elem, t.Rank)
	case *TupleType:
		parts := make([]string, len(t.Elems))
		for i, e := range t.Elems {
			parts[i] = TypeString(e)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case *RcPtrType:
		return "refcounted " + TypeString(t.Elem) + " *"
	case nil:
		return "<nil>"
	}
	return "?type"
}

// ExprString renders an expression on one line.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *FloatLit:
		s := fmt.Sprintf("%g", e.Value)
		if !strings.ContainsAny(s, ".e") {
			s += ".0"
		}
		return s
	case *BoolLit:
		return fmt.Sprintf("%t", e.Value)
	case *StrLit:
		return fmt.Sprintf("%q", e.Value)
	case *Ident:
		return e.Name
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(e.L), e.Op, ExprString(e.R))
	case *UnaryExpr:
		return fmt.Sprintf("(%s%s)", e.Op, ExprString(e.X))
	case *CallExpr:
		return fmt.Sprintf("%s(%s)", e.Fun, exprList(e.Args))
	case *CastExpr:
		return fmt.Sprintf("(%s)%s", e.To, ExprString(e.X))
	case *IndexExpr:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = indexArgString(a)
		}
		return fmt.Sprintf("%s[%s]", ExprString(e.X), strings.Join(parts, ", "))
	case *EndExpr:
		return "end"
	case *RangeExpr:
		return fmt.Sprintf("(%s :: %s)", ExprString(e.Lo), ExprString(e.Hi))
	case *WithLoop:
		var op string
		switch o := e.Op.(type) {
		case *GenArrayOp:
			op = fmt.Sprintf("genarray([%s], %s)", exprList(o.Shape), ExprString(o.Body))
		case *FoldOp:
			op = fmt.Sprintf("fold(%s, %s, %s)", o.Kind, ExprString(o.Init), ExprString(o.Body))
		}
		s := fmt.Sprintf("with ([%s] <= [%s] < [%s]) %s",
			exprList(e.Lower), strings.Join(e.Ids, ", "), exprList(e.Upper), op)
		if len(e.Transforms) > 0 {
			var cs []string
			for _, c := range e.Transforms {
				cs = append(cs, TransformString(c))
			}
			s += " transform " + strings.Join(cs, ". ")
		}
		return s
	case *MatrixMap:
		return fmt.Sprintf("matrixMap(%s, %s, [%s])", e.Fun, ExprString(e.Arg), exprList(e.Dims))
	case *InitExpr:
		return fmt.Sprintf("init(%s, %s)", TypeString(e.Type), exprList(e.Dims))
	case *TupleExpr:
		return fmt.Sprintf("(%s)", exprList(e.Elems))
	case nil:
		return "<nil>"
	}
	return "?expr"
}

func indexArgString(a IndexArg) string {
	switch a := a.(type) {
	case *IdxScalar:
		return ExprString(a.X)
	case *IdxRange:
		return ExprString(a.Lo) + ":" + ExprString(a.Hi)
	case *IdxAll:
		return ":"
	}
	return "?idx"
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = ExprString(e)
	}
	return strings.Join(parts, ", ")
}

// TransformString renders one transform clause.
func TransformString(c TransformClause) string {
	switch c := c.(type) {
	case *SplitClause:
		return fmt.Sprintf("split %s by %s, %s, %s", c.Index, ExprString(c.Factor), c.Inner, c.Outer)
	case *VectorizeClause:
		return "vectorize " + c.Index
	case *ParallelizeClause:
		return "parallelize " + c.Index
	case *ReorderClause:
		return "reorder " + strings.Join(c.Indices, ", ")
	case *TileClause:
		return fmt.Sprintf("tile %s by %s, %s by %s", c.IndexA, ExprString(c.FactorA), c.IndexB, ExprString(c.FactorB))
	case *UnrollClause:
		return fmt.Sprintf("unroll %s by %s", c.Index, ExprString(c.Factor))
	}
	return "?transform"
}

func (p *printer) node(n Node) {
	switch n := n.(type) {
	case *Program:
		p.line("(program %s", n.File)
		p.in()
		for _, d := range n.Decls {
			p.node(d)
		}
		p.out()
		p.line(")")
	case *FuncDecl:
		var params []string
		for _, pa := range n.Params {
			params = append(params, TypeString(pa.Type)+" "+pa.Name)
		}
		p.line("(func %s %s (%s)", TypeString(n.Ret), n.Name, strings.Join(params, ", "))
		p.in()
		p.node(n.Body)
		p.out()
		p.line(")")
	case *GlobalVarDecl:
		if n.Init != nil {
			p.line("(global %s %s = %s)", TypeString(n.Type), n.Name, ExprString(n.Init))
		} else {
			p.line("(global %s %s)", TypeString(n.Type), n.Name)
		}
	case *BlockStmt:
		p.line("(block")
		p.in()
		for _, s := range n.Stmts {
			p.node(s)
		}
		p.out()
		p.line(")")
	case *DeclStmt:
		if n.Init != nil {
			p.line("(decl %s %s = %s)", TypeString(n.Type), n.Name, ExprString(n.Init))
		} else {
			p.line("(decl %s %s)", TypeString(n.Type), n.Name)
		}
	case *AssignStmt:
		var lhs []string
		for _, l := range n.LHS {
			lhs = append(lhs, ExprString(l))
		}
		p.line("(assign %s = %s)", strings.Join(lhs, ", "), ExprString(n.RHS))
	case *IfStmt:
		p.line("(if %s", ExprString(n.Cond))
		p.in()
		p.node(n.Then)
		if n.Else != nil {
			p.out()
			p.line(" else")
			p.in()
			p.node(n.Else)
		}
		p.out()
		p.line(")")
	case *WhileStmt:
		p.line("(while %s", ExprString(n.Cond))
		p.in()
		p.node(n.Body)
		p.out()
		p.line(")")
	case *ForStmt:
		p.line("(for")
		p.in()
		if n.Init != nil {
			p.node(n.Init)
		}
		p.line("(cond %s)", ExprString(n.Cond))
		if n.Post != nil {
			p.node(n.Post)
		}
		p.node(n.Body)
		p.out()
		p.line(")")
	case *ReturnStmt:
		if n.Value != nil {
			p.line("(return %s)", ExprString(n.Value))
		} else {
			p.line("(return)")
		}
	case *ExprStmt:
		p.line("(expr %s)", ExprString(n.X))
	case *BreakStmt:
		p.line("(break)")
	case *ContinueStmt:
		p.line("(continue)")
	default:
		if e, ok := n.(Expr); ok {
			p.line("%s", ExprString(e))
			return
		}
		p.line("?node %T", n)
	}
}
