// Package core is the public face of the extensible CMINUS translator
// — the paper's primary contribution assembled from its parts: the
// composable grammars (internal/parser, internal/grammar), the
// attribute-grammar semantic analysis (internal/sem, internal/attr),
// the C back end with the §III-A.4 optimizations, §III-C parallel code
// generation and §V user-directed transformations (internal/cgen), and
// the parallel interpreter (internal/interp).
//
// Typical use:
//
//	res := core.Compile("prog.xc", src, core.Config{})
//	if res.Diags.HasErrors() { ... }
//	fmt.Println(res.C)            // translated parallel C
//
//	code, err := core.Run("prog.xc", src, core.Config{}, interp.Options{})
package core

import (
	"repro/internal/ast"
	"repro/internal/cgen"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// Config selects extensions and code-generation options.
type Config struct {
	// Extensions composed into the translator; zero value means all
	// (the paper's configuration).
	Extensions *parser.Options
	// Codegen options; zero value means cgen.DefaultOptions().
	Codegen *cgen.Options
}

func (c Config) exts() parser.Options {
	if c.Extensions != nil {
		return *c.Extensions
	}
	return parser.AllExtensions()
}

func (c Config) cg() cgen.Options {
	if c.Codegen != nil {
		return *c.Codegen
	}
	return cgen.DefaultOptions()
}

// Result is the outcome of a Compile.
type Result struct {
	Program *ast.Program
	Info    *sem.Info
	C       string // translated C (empty if errors)
	Diags   source.Diagnostics
}

// Check parses and type-checks without generating code.
func Check(name, src string, cfg Config) *Result {
	res := &Result{}
	res.Program = parser.ParseFile(name, src, cfg.exts(), &res.Diags)
	if res.Program == nil {
		return res
	}
	res.Info = sem.Check(res.Program, &res.Diags)
	return res
}

// Compile runs the full translation pipeline: parse with the composed
// extension grammars, check with the composed attribute-grammar
// semantics, and translate to plain parallel C.
func Compile(name, src string, cfg Config) *Result {
	res := Check(name, src, cfg)
	if res.Diags.HasErrors() || res.Program == nil {
		return res
	}
	c, err := cgen.Generate(res.Program, res.Info, cfg.cg())
	if err != nil {
		res.Diags.Errorf(res.Program.Span(), "code generation: %v", err)
		return res
	}
	res.C = c
	return res
}

// Run parses, checks and executes a program with the interpreter.
func Run(name, src string, cfg Config, opts interp.Options) (int, *Result, error) {
	res := Check(name, src, cfg)
	if res.Diags.HasErrors() || res.Program == nil {
		return 0, res, res.Diags.Err()
	}
	i := interp.New(res.Program, res.Info, opts)
	defer i.Close()
	code, err := i.Run()
	return code, res, err
}
