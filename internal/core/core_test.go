package core

import (
	"strings"
	"testing"

	"repro/internal/cgen"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/parser"
)

const prog = `
int add(int a, int b) { return a + b; }
int main() {
	Matrix int <1> v = [1 :: 4];
	int s = with ([0] <= [i] < [4]) fold(+, 0, v[i]);
	return add(s, 32);
}
`

func TestCheckCompileRun(t *testing.T) {
	res := Check("p.xc", prog, Config{})
	if res.Diags.HasErrors() {
		t.Fatal(res.Diags.String())
	}
	if res.Info == nil || res.Info.Funcs["add"] == nil {
		t.Fatal("info missing")
	}

	cres := Compile("p.xc", prog, Config{})
	if cres.Diags.HasErrors() || !strings.Contains(cres.C, "u_main") {
		t.Fatalf("compile failed:\n%s", cres.Diags.String())
	}

	code, _, err := Run("p.xc", prog, Config{}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 { // 1+2+3+4 + 32
		t.Fatalf("exit = %d, want 42", code)
	}
}

func TestCompileReportsParseErrors(t *testing.T) {
	res := Compile("bad.xc", "int main() { return }", Config{})
	if !res.Diags.HasErrors() {
		t.Fatal("expected parse errors")
	}
	if res.C != "" {
		t.Fatal("no C should be produced on errors")
	}
}

func TestCompileReportsSemErrors(t *testing.T) {
	res := Compile("bad.xc", "int main() { return zzz; }", Config{})
	if !res.Diags.HasErrors() {
		t.Fatal("expected semantic errors")
	}
	if !strings.Contains(res.Diags.String(), "undeclared") {
		t.Fatalf("diags = %s", res.Diags.String())
	}
}

func TestRunReportsErrorsWithoutPanic(t *testing.T) {
	_, res, err := Run("bad.xc", "int main() { return 1 / 0; }", Config{}, interp.Options{})
	if err == nil && !res.Diags.HasErrors() {
		t.Fatal("division by zero should surface as an error")
	}
}

func TestConfigSelectsExtensions(t *testing.T) {
	// Without the matrix extension, with-loops are a syntax error.
	exts := parser.Options{}
	res := Check("p.xc", prog, Config{Extensions: &exts})
	if !res.Diags.HasErrors() {
		t.Fatal("matrix syntax should not parse without the matrix extension")
	}
}

func TestConfigCodegenOptions(t *testing.T) {
	cg := cgen.Options{Par: cgen.ParOMP, Optimize: true}
	src := `
int main() {
	Matrix float <1> v;
	v = with ([0] <= [i] < [8]) genarray([8], 1.0);
	return dimSize(v, 0);
}`
	res := Compile("p.xc", src, Config{Codegen: &cg})
	if res.Diags.HasErrors() {
		t.Fatal(res.Diags.String())
	}
	if !strings.Contains(res.C, "#pragma omp parallel for") {
		t.Fatal("omp mode should emit pragmas")
	}
}

func TestRunWithFiles(t *testing.T) {
	files := map[string]*matrix.Matrix{
		"in.data": matrix.FromFloats([]float64{1, 2, 3}, 3),
	}
	src := `
int main() {
	Matrix float <1> v = readMatrix("in.data");
	writeMatrix("out.data", v * 2.0);
	return 0;
}`
	_, _, err := Run("p.xc", src, Config{}, interp.Options{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	out := files["out.data"]
	if out == nil || out.Floats()[2] != 6 {
		t.Fatalf("out = %v", out)
	}
}
