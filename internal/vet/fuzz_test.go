package vet_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/vet"
)

// FuzzVet drives the whole static-analysis front half — parse, check,
// vet — over arbitrary program text. The analyzer must never panic and
// every finding it produces must carry a well-formed span into the
// input (so editors and the JSON pipeline can trust them blindly).
func FuzzVet(f *testing.F) {
	for _, dir := range []string{
		filepath.Join("..", "..", "testdata"),
		filepath.Join("..", "..", "testdata", "vet_golden"),
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			f.Fatal(err)
		}
		for _, e := range entries {
			ext := filepath.Ext(e.Name())
			if e.IsDir() || (ext != ".xc" && ext != ".cm") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	// Hand-picked seeds aimed at the analyzer's own corners: loops,
	// joins, rc state, end-indexing, huge ranks, destructuring.
	for _, s := range []string{
		"int main() { Matrix float <2> a = init(Matrix float <2>, 3, 4); print(a[end, 1:end]); return 0; }",
		"int main() { refcounted int * p = rcnew(1); while (p) { rcrelease(p); } return 0; }",
		"int main() { Matrix float <64> z; print(z); return 0; }",
		"int f() {} int main() { int a; int b; a, b = g(); return a + b; }",
		"Matrix int <1> g; void h() { g = init(Matrix int <1>, 9); } int main() { h(); return g[8]; }",
		// Cilk spawn regions: races through globals, params and aliases,
		// targets read before sync, spawns in loops and branches.
		"int g = 0; int w() { g = g + 1; return g; } int main() { int a = 0; spawn a = w(); print(g); sync; return a; }",
		"int w(int n) { return n; } int main() { int a = 0; spawn a = w(1); int b = a; sync; return b; }",
		"void f(Matrix float <1> m, float v) { m[0] = v; return; } int main() { Matrix float <1> m = init(Matrix float <1>, 2); Matrix float <1> alias = m; spawn f(m, 1.0); spawn f(alias, 2.0); sync; return 0; }",
		"int w(int n) { return n; } int main() { int a = 0; for (int i = 0; i < 3; i++) { spawn a = w(i); } sync; return a; }",
		"int w(int n) { return n; } int main() { int a = 0; if (1 < 2) { spawn a = w(1); } print(a); sync; return a; }",
		"int p(int n) { return n * 2; } int main() { spawn p(3); sync; return 0; }",
		// Chained elementwise expressions at the fusion-legality
		// boundary: legal chains, matmul stages, int division, mixed
		// element types, unassigned leaves.
		"int main() { Matrix float <1> a = [0 :: 7] * 1.0; Matrix float <1> b = [1 :: 8] * 1.0; Matrix float <1> r = a .* b + a - b / 2.0; print(r[end]); return 0; }",
		"int main() { Matrix int <1> u = [1 :: 6]; Matrix int <1> w = u .* 2 + u - u .* u; print(w[end]); return 0; }",
		"int main() { Matrix float <2> a = init(Matrix float <2>, 2, 2); Matrix float <2> r = a * a + a .* a; print(r[0, 0]); return 0; }",
		"int main() { Matrix int <1> u = [1 :: 4]; Matrix int <1> r = u / 2 + u; print(r[0]); return 0; }",
		"int main() { Matrix float <1> a = [0 :: 3] * 1.0; Matrix float <1> b; Matrix float <1> r = a + b - a; print(r[0]); return 0; }",
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		var diags source.Diagnostics
		prog := parser.ParseFile("fuzz.xc", src, parser.AllExtensions(), &diags)
		if prog == nil {
			return
		}
		info := sem.Check(prog, &diags)
		findings := vet.Check(prog, info)
		for _, fd := range findings {
			checkSpan(t, "finding", fd.Code, fd.Span, len(src))
			for _, rel := range fd.Related {
				checkSpan(t, "related note", fd.Code, rel.Span, len(src))
			}
			if fd.Code == "" || fd.Message == "" {
				t.Errorf("finding with empty code or message: %+v", fd)
			}
			if fd.Severity != source.Error && fd.Severity != source.Warning {
				t.Errorf("finding %s has severity %v", fd.Code, fd.Severity)
			}
		}
	})
}

func checkSpan(t *testing.T, what, code string, sp source.Span, srcLen int) {
	t.Helper()
	if sp.File != "fuzz.xc" {
		t.Errorf("%s %s points at file %q", what, code, sp.File)
	}
	if sp.Start.Offset < 0 || sp.Start.Offset > srcLen {
		t.Errorf("%s %s start offset %d outside source of %d bytes", what, code, sp.Start.Offset, srcLen)
	}
	if sp.End.Offset < sp.Start.Offset || sp.End.Offset > srcLen {
		t.Errorf("%s %s end offset %d invalid (start %d, source %d bytes)", what, code, sp.End.Offset, sp.Start.Offset, srcLen)
	}
	if sp.Start.Line < 1 || sp.Start.Col < 1 {
		t.Errorf("%s %s has non-positive line/col %d:%d", what, code, sp.Start.Line, sp.Start.Col)
	}
}
