// Tests for the with-loop compilation proofs: bodies inside the flat
// language must produce plans with the right leaf slots and fold
// kinds, and every construct the legality rules exclude must prove
// nothing.
package vet

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// factsFor parses + checks src and computes the facts side table.
func factsFor(t *testing.T, src string) *Facts {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.ParseFile("test.xc", src, parser.AllExtensions(), &diags)
	if prog == nil {
		t.Fatalf("parse failed: %v", diags.All())
	}
	info := sem.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("unexpected sem errors: %v", diags.All())
	}
	return ComputeFacts(prog, info)
}

// onlyPlan asserts exactly one with-loop was proven and returns its plan.
func onlyPlan(t *testing.T, f *Facts) *WithPlan {
	t.Helper()
	if f.WithCount() != 1 {
		t.Fatalf("WithCount = %d, want 1", f.WithCount())
	}
	for _, wp := range f.withs {
		return wp
	}
	panic("unreachable")
}

func TestWithPlanGenarrayBody(t *testing.T) {
	f := factsFor(t, `
int main() {
	int n = 8;
	int bias = 2;
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], (float)(i * n + j + bias) * 0.5);
	print(m[0, 0]);
	return 0;
}`)
	wp := onlyPlan(t, f)
	if wp.Fold {
		t.Fatal("genarray proven as fold")
	}
	if !wp.Float {
		t.Fatal("float body not marked Float")
	}
	// Scalar leaves n and bias intern into distinct int slots; n appears
	// twice in the source but once in the slot list.
	if len(wp.ScalarI) != 2 || wp.ScalarI[0] != "n" || wp.ScalarI[1] != "bias" {
		t.Fatalf("ScalarI = %v, want [n bias]", wp.ScalarI)
	}
	if len(wp.Mats) != 0 || len(wp.ScalarF) != 0 {
		t.Fatalf("unexpected leaves: mats %v floats %v", wp.Mats, wp.ScalarF)
	}
}

func TestWithPlanFoldKindsAndLoads(t *testing.T) {
	for name, kind := range map[string]matrix.FoldKind{
		"+": matrix.FoldAdd, "*": matrix.FoldMul,
		"min": matrix.FoldMin, "max": matrix.FoldMax,
	} {
		f := factsFor(t, `
int main() {
	int n = 4;
	Matrix int <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], i + j);
	int s = with ([0, 0] <= [i, j] < [n, n]) fold(`+name+`, 1, m[i, j]);
	print(s);
	return 0;
}`)
		if f.WithCount() != 2 {
			t.Fatalf("%s: WithCount = %d, want 2", name, f.WithCount())
		}
		var fold *WithPlan
		for _, wp := range f.withs {
			if wp.Fold {
				fold = wp
			}
		}
		if fold == nil || fold.Kind != kind {
			t.Fatalf("%s: fold plan %+v, want kind %v", name, fold, kind)
		}
		if len(fold.Mats) != 1 || fold.Mats[0] != "m" ||
			len(fold.MatElem) != 1 || fold.MatElem[0] != matrix.Int {
			t.Fatalf("%s: matrix leaves %v / %v", name, fold.Mats, fold.MatElem)
		}
	}
}

func TestWithPlanShiftedLoadIndices(t *testing.T) {
	f := factsFor(t, `
int main() {
	int n = 8;
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], 1.0);
	float s = with ([1, 1] <= [i, j] < [7, 7])
		fold(+, 0.0, m[i - 1, j] + m[i + 1, j] + m[i, j - 1] + m[i, j + 1]);
	print(s);
	return 0;
}`)
	if f.WithCount() != 2 {
		t.Fatalf("WithCount = %d, want 2 (stencil indices are in the index language)", f.WithCount())
	}
}

func TestWithPlanDeclines(t *testing.T) {
	for name, body := range map[string]string{
		"modulo":       "i % 3",
		"int_division": "i / 2",
		"comparison":   "i", // placeholder; replaced below
		"call":         "f(i)",
		"float_index":  "g[(int)(0.5 * i)] ", // cast inside index language
		"end_keyword":  "g[end - i]",
	} {
		src := `
float f(int i) { return (float)i; }
int main() {
	Matrix float <1> g = [0 :: 7] * 1.0;
	Matrix float <1> m;
	m = with ([0] <= [i] < [8]) genarray([8], 0.0 + ` + body + `);
	print(m[0] + g[0]);
	return 0;
}`
		if name == "comparison" {
			src = `
int main() {
	Matrix bool <1> m;
	m = with ([0] <= [i] < [8]) genarray([8], i < 4);
	print(1);
	return 0;
}`
		}
		if name == "modulo" || name == "int_division" {
			src = `
int main() {
	Matrix int <1> m;
	m = with ([0] <= [i] < [8]) genarray([8], ` + body + `);
	print(m[0]);
	return 0;
}`
		}
		t.Run(name, func(t *testing.T) {
			f := factsFor(t, src)
			for _, wp := range f.withs {
				if !wp.Fold {
					t.Errorf("body %q proved a genarray plan: %+v", body, wp)
				}
			}
		})
	}
}

func TestWithPlanTransformsDecline(t *testing.T) {
	f := factsFor(t, `
int main() {
	int n = 4;
	Matrix float <2> m;
	m = with ([0, 0] <= [i, j] < [n, n])
		genarray([n, n], (float)(i + j))
		transform
			parallelize i;
	print(m[0, 0]);
	return 0;
}`)
	if f.WithCount() != 0 {
		t.Fatalf("WithCount = %d, want 0 (transform clauses keep the closure path)", f.WithCount())
	}
}

func TestWithPlanVerifyRoundTrip(t *testing.T) {
	// Every proven plan must pass the flat engine's own verifier — the
	// two layers implement the same language.
	f := factsFor(t, `
int main() {
	int n = 6;
	Matrix int <2> a;
	a = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], i * 10 + j);
	Matrix int <2> tr;
	tr = with ([0, 0] <= [i, j] < [n, n]) genarray([n, n], a[j, i]);
	int s = with ([0, 0] <= [i, j] < [n, n]) fold(+, 0, a[i, j] * tr[j, i]);
	print(s);
	return 0;
}`)
	if f.WithCount() != 3 {
		t.Fatalf("WithCount = %d, want 3", f.WithCount())
	}
	for w, wp := range f.withs {
		env := &matrix.WithEnv{
			Code:    wp.Code,
			Mats:    make([]*matrix.Matrix, len(wp.Mats)),
			ScalarI: make([]int64, len(wp.ScalarI)),
			ScalarF: make([]float64, len(wp.ScalarF)),
			Float:   wp.Float,
		}
		for k, el := range wp.MatElem {
			env.Mats[k] = matrix.New(el, 6, 6)
		}
		if !env.Verify(len(w.Ids)) {
			t.Errorf("proven plan fails the flat engine verifier: %+v", wp)
		}
	}
}
