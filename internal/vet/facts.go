// vet.Facts — proven program facts exported for consumers outside the
// diagnostics pipeline. The first (and so far only) fact family is
// fusion legality: chained elementwise matrix expressions whose every
// stage is effect-free, whose intermediates are provably unaliased
// (kernel results are fresh allocations and never observable), and
// whose per-stage semantics are total after admission, so the VM may
// execute the whole chain as one loop with block-local temporaries
// instead of materializing a full matrix per stage (the paper's
// §III-A.4 "no extraneous copy" fusion).
//
// Legality is deliberately strict so the fused loop can replay the
// unfused engine's observable behavior exactly — same error, same
// error site, same allocation-budget consumption:
//
//   - stage ops: .+ .- .* always; * only with a scalar operand
//     (matrix*matrix is matmul); / only on float chains (int division
//     can trap per element mid-loop); never %, comparisons or logical
//     ops (comparisons change the element type, % traps);
//   - every interior stage and matrix leaf has the chain's element
//     type exactly — no int→float promotion inside the chain, because
//     promotion allocates conversion scratch the unfused engine
//     charges for;
//   - matrix leaves are plain identifiers of concrete matrix type
//     (binding-time coercion pins the runtime element type; AnyMatrix
//     readMatrix results are excluded), scalar leaves are literals or
//     scalar identifiers — no calls, no indexing, nothing that could
//     observe or modify state mid-expression;
//   - float scalar leaves only on float chains (an int chain with a
//     float scalar promotes).
//
// A chain needs at least two stages to be worth fusing; nested stages
// of a recorded chain are consumed by it and not re-recorded.
package vet

import (
	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/types"
)

// ChainArgKind classifies one operand of a fused stage.
type ChainArgKind int

const (
	// ArgStage: the operand is the result of an earlier stage in the
	// same chain (an intermediate that will never be materialized).
	ArgStage ChainArgKind = iota
	// ArgMatrix: a matrix-typed identifier leaf.
	ArgMatrix
	// ArgScalar: a scalar literal or scalar identifier leaf.
	ArgScalar
)

// ChainArg is one operand of a fused stage.
type ChainArg struct {
	Kind  ChainArgKind
	Stage int      // ArgStage: index of the producing stage
	X     ast.Expr // ArgMatrix / ArgScalar: the leaf expression
}

// ChainStage is one elementwise operation of a fused chain.
type ChainStage struct {
	Node ast.Node // the BinaryExpr — error spans anchor here
	Op   ast.BinOp
	L, R ChainArg
}

// Chain is a maximal fusable elementwise expression tree, stages in
// post-order (operands of stage i always have index < i; the last
// stage is the root).
type Chain struct {
	Elem   types.Kind // element type of every stage: Float or Int
	Stages []ChainStage
}

// Facts is the proven-facts side table computed once per checked
// program and cached content-addressed by the driver.
type Facts struct {
	chains map[ast.Expr]*Chain
	withs  map[*ast.WithLoop]*WithPlan
}

// ChainAt returns the fusable chain rooted at e, or nil.
func (f *Facts) ChainAt(e ast.Expr) *Chain {
	if f == nil {
		return nil
	}
	return f.chains[e]
}

// ChainCount reports how many fusable chains were proven.
func (f *Facts) ChainCount() int {
	if f == nil {
		return 0
	}
	return len(f.chains)
}

// ComputeFacts proves fusion-legality facts over a checked program.
// Safe on partially-checked programs (missing type info simply proves
// nothing).
func ComputeFacts(prog *ast.Program, info *sem.Info) *Facts {
	f := &Facts{chains: map[ast.Expr]*Chain{}, withs: map[*ast.WithLoop]*WithPlan{}}
	if prog == nil || info == nil {
		return f
	}
	ff := &factFinder{info: info, facts: f}
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			ff.stmt(d.Body)
		case *ast.GlobalVarDecl:
			ff.expr(d.Init)
		}
	}
	return f
}

type factFinder struct {
	info  *sem.Info
	facts *Facts
}

func (ff *factFinder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.Stmts {
			ff.stmt(st)
		}
	case *ast.DeclStmt:
		ff.expr(s.Init)
	case *ast.AssignStmt:
		for _, l := range s.LHS {
			ff.expr(l)
		}
		ff.expr(s.RHS)
	case *ast.IfStmt:
		ff.expr(s.Cond)
		ff.stmt(s.Then)
		ff.stmt(s.Else)
	case *ast.WhileStmt:
		ff.expr(s.Cond)
		ff.stmt(s.Body)
	case *ast.ForStmt:
		ff.stmt(s.Init)
		ff.expr(s.Cond)
		ff.stmt(s.Body)
		ff.stmt(s.Post)
	case *ast.ReturnStmt:
		ff.expr(s.Value)
	case *ast.ExprStmt:
		ff.expr(s.X)
	case *ast.SpawnStmt:
		ff.expr(s.Call)
	}
}

// expr records the maximal fusable chain rooted at x, or recurses into
// subexpressions looking for nested roots.
func (ff *factFinder) expr(x ast.Expr) {
	if x == nil {
		return
	}
	if b, ok := x.(*ast.BinaryExpr); ok {
		if c := ff.buildChain(b); c != nil {
			ff.facts.chains[x] = c
			// Leaves of a recorded chain hold no further chains:
			// they are identifiers and literals by construction.
			return
		}
	}
	switch x := x.(type) {
	case *ast.UnaryExpr:
		ff.expr(x.X)
	case *ast.BinaryExpr:
		ff.expr(x.L)
		ff.expr(x.R)
	case *ast.CastExpr:
		ff.expr(x.X)
	case *ast.CallExpr:
		for _, a := range x.Args {
			ff.expr(a)
		}
	case *ast.IndexExpr:
		ff.expr(x.X)
		for _, a := range x.Args {
			switch a := a.(type) {
			case *ast.IdxScalar:
				ff.expr(a.X)
			case *ast.IdxRange:
				ff.expr(a.Lo)
				ff.expr(a.Hi)
			}
		}
	case *ast.RangeExpr:
		ff.expr(x.Lo)
		ff.expr(x.Hi)
	case *ast.TupleExpr:
		for _, el := range x.Elems {
			ff.expr(el)
		}
	case *ast.WithLoop:
		for _, b := range x.Lower {
			ff.expr(b)
		}
		for _, b := range x.Upper {
			ff.expr(b)
		}
		switch op := x.Op.(type) {
		case *ast.GenArrayOp:
			for _, sx := range op.Shape {
				ff.expr(sx)
			}
			ff.expr(op.Body)
		case *ast.FoldOp:
			ff.expr(op.Init)
			ff.expr(op.Body)
		}
		// Bodies and bounds keep their own facts (a nested with-loop
		// inside a non-flat body can still get its own plan).
		if wp := proveWith(ff.info, x); wp != nil {
			ff.facts.withs[x] = wp
		}
	case *ast.MatrixMap:
		ff.expr(x.Arg)
		for _, d := range x.Dims {
			ff.expr(d)
		}
	case *ast.InitExpr:
		for _, d := range x.Dims {
			ff.expr(d)
		}
	}
}

// buildChain proves the expression tree rooted at root fusable and
// linearizes it, or returns nil.
func (ff *factFinder) buildChain(root *ast.BinaryExpr) *Chain {
	t := ff.info.TypeOf(root)
	if t == nil || t.Kind != types.Matrix || t.Elem == nil {
		return nil
	}
	elem := t.Elem.Kind
	if elem != types.Float && elem != types.Int {
		return nil
	}
	c := &Chain{Elem: elem}
	if _, ok := ff.stage(c, root); !ok || len(c.Stages) < 2 {
		return nil
	}
	return c
}

// stage linearizes one interior node, appending its operands' stages
// first (post-order), and returns the operand describing it.
func (ff *factFinder) stage(c *Chain, x ast.Expr) (ChainArg, bool) {
	t := ff.info.TypeOf(x)
	if t == nil {
		return ChainArg{}, false
	}
	switch t.Kind {
	case types.Int, types.Float:
		if t.Kind == types.Float && c.Elem != types.Float {
			return ChainArg{}, false // float scalar promotes an int chain
		}
		switch x.(type) {
		case *ast.IntLit, *ast.FloatLit, *ast.Ident:
			return ChainArg{Kind: ArgScalar, X: x}, true
		}
		return ChainArg{}, false

	case types.Matrix:
		if t.Elem == nil || t.Elem.Kind != c.Elem {
			return ChainArg{}, false
		}
		switch x := x.(type) {
		case *ast.Ident:
			return ChainArg{Kind: ArgMatrix, X: x}, true
		case *ast.BinaryExpr:
			if !ff.legalOp(x) {
				return ChainArg{}, false
			}
			l, ok := ff.stage(c, x.L)
			if !ok {
				return ChainArg{}, false
			}
			r, ok := ff.stage(c, x.R)
			if !ok {
				return ChainArg{}, false
			}
			c.Stages = append(c.Stages, ChainStage{Node: x, Op: x.Op, L: l, R: r})
			return ChainArg{Kind: ArgStage, Stage: len(c.Stages) - 1}, true
		}
		return ChainArg{}, false
	}
	return ChainArg{}, false
}

// legalOp reports whether a matrix-typed binary node's operator is
// fusable (see the package comment for the rationale per operator).
func (ff *factFinder) legalOp(x *ast.BinaryExpr) bool {
	switch x.Op {
	case ast.OpAdd, ast.OpSub, ast.OpElemMul:
		return true
	case ast.OpMul:
		// Matrix * matrix is matmul; only scalar scaling is elementwise.
		lt, rt := ff.info.TypeOf(x.L), ff.info.TypeOf(x.R)
		lScalar := lt != nil && (lt.Kind == types.Int || lt.Kind == types.Float)
		rScalar := rt != nil && (rt.Kind == types.Int || rt.Kind == types.Float)
		return lScalar != rScalar
	case ast.OpDiv:
		// Int division traps per element; only float chains fuse it.
		t := ff.info.TypeOf(x)
		return t != nil && t.Elem != nil && t.Elem.Kind == types.Float
	}
	return false
}
