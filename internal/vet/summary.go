// Interprocedural effect and alias analysis — vet v2's foundation.
//
// Every function gets an effect summary: which globals it reads or
// writes, which of its reference-like parameters (matrices and
// refcounted cells — scalars pass by value and cannot carry effects
// across a call) it reads or writes through, whether it performs I/O,
// and which parameters or globals its return value may alias.
// Summaries are computed bottom-up over the call graph with a whole-
// program fixpoint, so mutual recursion converges (all sets only ever
// grow) and an unknown callee degrades to a conservative havoc.
//
// Aliasing inside a function body is tracked with small alias sets:
// every reference-like expression value is described by the parameter
// bits, global names and local allocation atoms it may alias. Ident-
// to-ident assignment unifies, kernels/slices/init/genarray allocate
// fresh atoms, calls map through the callee's return-alias summary,
// and rcset(p, v) folds v's aliases into p (values escape into heap
// cells). The same walker drives both summary computation and the
// determinacy-race scan in race.go via the access callback.
package vet

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/types"
)

// aset is a may-alias set: which caller-visible atoms a value may
// reference. The zero value is the empty set (a fresh, unshared
// value). unknown poisons the set: it may alias anything.
type aset struct {
	params  uint64          // bitmask over the function's ref-like params
	globals map[string]bool // global variables
	atoms   map[int]bool    // function-local allocation sites
	unknown bool
}

func (s aset) empty() bool {
	return !s.unknown && s.params == 0 && len(s.globals) == 0 && len(s.atoms) == 0
}

func (s aset) clone() aset {
	out := aset{params: s.params, unknown: s.unknown}
	if len(s.globals) > 0 {
		out.globals = make(map[string]bool, len(s.globals))
		for k := range s.globals {
			out.globals[k] = true
		}
	}
	if len(s.atoms) > 0 {
		out.atoms = make(map[int]bool, len(s.atoms))
		for k := range s.atoms {
			out.atoms[k] = true
		}
	}
	return out
}

// union folds o into s, reporting whether s changed.
func (s *aset) union(o aset) bool {
	changed := false
	if o.unknown && !s.unknown {
		s.unknown = true
		changed = true
	}
	if o.params&^s.params != 0 {
		s.params |= o.params
		changed = true
	}
	for k := range o.globals {
		if !s.globals[k] {
			if s.globals == nil {
				s.globals = map[string]bool{}
			}
			s.globals[k] = true
			changed = true
		}
	}
	for k := range o.atoms {
		if !s.atoms[k] {
			if s.atoms == nil {
				s.atoms = map[int]bool{}
			}
			s.atoms[k] = true
			changed = true
		}
	}
	return changed
}

// overlapDesc reports whether two alias sets can refer to the same
// storage, and a human-readable name for one overlapping atom (used
// both as the diagnostic text and the dedup key).
func (s aset) overlapDesc(o aset, w *walker) (string, bool) {
	if s.unknown && !o.empty() || o.unknown && !s.empty() {
		return "shared state", true
	}
	if m := s.params & o.params; m != 0 {
		for bit := 0; bit < 64; bit++ {
			if m&(1<<bit) != 0 {
				return fmt.Sprintf("parameter %q", w.paramName[bit]), true
			}
		}
	}
	var names []string
	for g := range s.globals {
		if o.globals[g] {
			names = append(names, fmt.Sprintf("global %q", g))
		}
	}
	for a := range s.atoms {
		if o.atoms[a] {
			names = append(names, fmt.Sprintf("%q", w.atomName[a]))
		}
	}
	if len(names) == 0 {
		return "", false
	}
	sort.Strings(names)
	return names[0], true
}

// summary is one function's interprocedural effect summary.
type summary struct {
	gRead, gWrite map[string]bool
	pRead, pWrite uint64 // bitmasks over ref-like params
	io            bool   // print / readMatrix / writeMatrix
	havoc         bool   // calls something the analysis cannot see
	retParams     uint64 // return value may alias these params
	retGlobals    map[string]bool
}

func newSummary() *summary {
	return &summary{
		gRead: map[string]bool{}, gWrite: map[string]bool{},
		retGlobals: map[string]bool{},
	}
}

// pure reports whether a call to the function has no observable effect
// beyond its return value.
func (s *summary) pure() bool {
	return !s.io && !s.havoc && s.pWrite == 0 && len(s.gWrite) == 0
}

func setUnion(dst, src map[string]bool) bool {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return changed
}

// merge folds o into s, reporting whether s changed (fixpoint test).
func (s *summary) merge(o *summary) bool {
	changed := setUnion(s.gRead, o.gRead)
	changed = setUnion(s.gWrite, o.gWrite) || changed
	changed = setUnion(s.retGlobals, o.retGlobals) || changed
	if o.pRead&^s.pRead != 0 {
		s.pRead |= o.pRead
		changed = true
	}
	if o.pWrite&^s.pWrite != 0 {
		s.pWrite |= o.pWrite
		changed = true
	}
	if o.retParams&^s.retParams != 0 {
		s.retParams |= o.retParams
		changed = true
	}
	if o.io && !s.io {
		s.io = true
		changed = true
	}
	if o.havoc && !s.havoc {
		s.havoc = true
		changed = true
	}
	return changed
}

// refLike reports whether a type is passed by reference (shared
// storage observable across a spawn).
func refLike(t *types.Type) bool {
	return t != nil && (t.Kind == types.Matrix || t.Kind == types.RcPtr || t.Kind == types.AnyMatrix)
}

// usesSpawn reports whether any function body contains a SpawnStmt.
func usesSpawn(prog *ast.Program) bool {
	found := false
	for _, d := range prog.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			scanSpawn(fd.Body, &found)
		}
	}
	return found
}

func scanSpawn(s ast.Stmt, found *bool) {
	if *found {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.Stmts {
			scanSpawn(st, found)
		}
	case *ast.IfStmt:
		scanSpawn(s.Then, found)
		scanSpawn(s.Else, found)
	case *ast.WhileStmt:
		scanSpawn(s.Body, found)
	case *ast.ForStmt:
		scanSpawn(s.Init, found)
		scanSpawn(s.Post, found)
		scanSpawn(s.Body, found)
	case *ast.SpawnStmt:
		*found = true
	}
}

// computeSummaries runs the whole-program effect fixpoint. The result
// maps function names to their stable summaries.
func computeSummaries(prog *ast.Program, info *sem.Info) map[string]*summary {
	sums := map[string]*summary{}
	var fns []*ast.FuncDecl
	for _, d := range prog.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fns = append(fns, fd)
			sums[fd.Name] = newSummary()
		}
	}
	// Sets grow monotonically, so iterating until nothing changes
	// terminates; the cap is a safety net, after which everything
	// left unstable degrades to havoc.
	for iter := 0; iter < 2*len(fns)+4; iter++ {
		changed := false
		for _, fd := range fns {
			w := newWalker(prog, info, sums)
			got := w.summarize(fd)
			if sums[fd.Name].merge(got) {
				changed = true
			}
		}
		if !changed {
			return sums
		}
	}
	for _, s := range sums {
		s.havoc = true
	}
	return sums
}

// walker evaluates a function body in the alias domain. One walker
// analyzes one function; the access callback observes every atomic
// read/write so summary computation and race scanning share the
// traversal.
type walker struct {
	prog      *ast.Program
	info      *sem.Info
	sums      map[string]*summary
	params    map[string]int // ref-like param name -> bit
	paramName []string       // bit -> name
	env       map[string]aset
	scopes    []map[string]*aset // saved bindings per block (nil = unbound)
	nextAtom  int
	atomName  map[int]string
	cur       *summary // summary being built (nil in race mode)
	race      *raceScan
}

func newWalker(prog *ast.Program, info *sem.Info, sums map[string]*summary) *walker {
	return &walker{
		prog: prog, info: info, sums: sums,
		params:   map[string]int{},
		env:      map[string]aset{},
		atomName: map[int]string{},
	}
}

func (w *walker) bindParams(fd *ast.FuncDecl) {
	for _, p := range fd.Params {
		t, err := types.FromAST(p.Type)
		if err != nil {
			continue
		}
		if refLike(t) && len(w.paramName) < 64 {
			bit := len(w.paramName)
			w.params[p.Name] = bit
			w.paramName = append(w.paramName, p.Name)
			w.env[p.Name] = aset{params: 1 << bit}
		}
	}
}

func (w *walker) summarize(fd *ast.FuncDecl) *summary {
	w.cur = newSummary()
	w.bindParams(fd)
	w.stmt(fd.Body)
	return w.cur
}

func (w *walker) atom(name string) aset {
	id := w.nextAtom
	w.nextAtom++
	w.atomName[id] = name
	return aset{atoms: map[int]bool{id: true}}
}

// --- access events ---

// access records one atomic read or write of the storage named by s.
func (w *walker) access(n ast.Node, write bool, s aset) {
	if s.empty() {
		return
	}
	if w.cur != nil {
		if write {
			w.cur.pWrite |= s.params
			setUnion(w.cur.gWrite, s.globals)
		} else {
			w.cur.pRead |= s.params
			setUnion(w.cur.gRead, s.globals)
		}
		if s.unknown {
			w.cur.havoc = true
		}
	}
	if w.race != nil {
		w.race.access(n, write, s)
	}
}

func (w *walker) ioEvent() {
	if w.cur != nil {
		w.cur.io = true
	}
}

func (w *walker) havocEvent(n ast.Node) {
	if w.cur != nil {
		w.cur.havoc = true
	}
	if w.race != nil {
		w.race.access(n, true, aset{unknown: true})
	}
}

// --- environment scoping ---

func (w *walker) pushScope() { w.scopes = append(w.scopes, map[string]*aset{}) }

func (w *walker) popScope() {
	top := w.scopes[len(w.scopes)-1]
	w.scopes = w.scopes[:len(w.scopes)-1]
	for name, prev := range top {
		if prev == nil {
			delete(w.env, name)
		} else {
			w.env[name] = *prev
		}
	}
}

func (w *walker) bind(name string, s aset) {
	if len(w.scopes) > 0 {
		top := w.scopes[len(w.scopes)-1]
		if _, saved := top[name]; !saved {
			if prev, ok := w.env[name]; ok {
				p := prev
				top[name] = &p
			} else {
				top[name] = nil
			}
		}
	}
	w.env[name] = s
}

func (w *walker) isGlobal(name string) bool {
	if _, local := w.env[name]; local {
		return false
	}
	_, ok := w.info.GlobalTypes[name]
	return ok
}

func (w *walker) snapshotEnv() map[string]aset {
	out := make(map[string]aset, len(w.env))
	for k, v := range w.env {
		out[k] = v.clone()
	}
	return out
}

// joinEnv unions other into the current env (branch join).
func (w *walker) joinEnv(other map[string]aset) {
	for k, v := range other {
		cur, ok := w.env[k]
		if !ok {
			w.env[k] = v
			continue
		}
		cur.union(v)
		w.env[k] = cur
	}
}

func envEqual(a, b map[string]aset) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.unknown != vb.unknown || va.params != vb.params ||
			len(va.globals) != len(vb.globals) || len(va.atoms) != len(vb.atoms) {
			return false
		}
		for g := range va.globals {
			if !vb.globals[g] {
				return false
			}
		}
		for at := range va.atoms {
			if !vb.atoms[at] {
				return false
			}
		}
	}
	return true
}

// --- statements ---

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.pushScope()
		for _, st := range s.Stmts {
			w.stmt(st)
		}
		w.popScope()

	case *ast.DeclStmt:
		var v aset
		if s.Init != nil {
			v = w.expr(s.Init)
		}
		t, _ := types.FromAST(s.Type)
		if refLike(t) {
			if v.empty() {
				v = w.atom(s.Name)
			}
			w.bind(s.Name, v)
		} else {
			w.bind(s.Name, aset{})
		}

	case *ast.AssignStmt:
		rs := w.expr(s.RHS)
		for _, lhs := range s.LHS {
			w.assignTo(lhs, rs)
		}

	case *ast.IfStmt:
		w.expr(s.Cond)
		saved := w.snapshotEnv()
		var savedRace *raceScan
		if w.race != nil {
			savedRace = w.race.snapshot()
		}
		w.stmt(s.Then)
		thenEnv := w.env
		var thenRace *raceScan
		if w.race != nil {
			thenRace = w.race
		}
		w.env = saved
		if w.race != nil {
			w.race = savedRace
		}
		w.stmt(s.Else)
		w.joinEnv(thenEnv)
		if w.race != nil {
			w.race.join(thenRace)
		}

	case *ast.WhileStmt:
		w.loop(func() {
			w.expr(s.Cond)
			w.stmt(s.Body)
		})

	case *ast.ForStmt:
		w.pushScope()
		w.stmt(s.Init)
		w.loop(func() {
			w.expr(s.Cond)
			w.stmt(s.Body)
			w.stmt(s.Post)
		})
		w.popScope()

	case *ast.ReturnStmt:
		if s.Value != nil {
			v := w.expr(s.Value)
			if w.cur != nil {
				w.cur.retParams |= v.params
				setUnion(w.cur.retGlobals, v.globals)
				if v.unknown {
					w.cur.havoc = true
				}
			}
		}
		// The runtime evaluates the return value, then joins all
		// outstanding spawns (implicit sync at function exit).
		if w.race != nil {
			w.race.sync()
		}

	case *ast.ExprStmt:
		w.expr(s.X)

	case *ast.SpawnStmt:
		w.spawn(s)

	case *ast.SyncStmt:
		if w.race != nil {
			w.race.sync()
		}

	case *ast.BreakStmt, *ast.ContinueStmt:
	}
}

// loop runs a loop body iteratively until the alias environment (and
// active-spawn state) stabilizes, joining with the pre-loop state so
// the zero-iteration path survives. Accesses and spawn checks fire on
// every pass; race.go dedups repeated findings.
func (w *walker) loop(body func()) {
	entry := w.snapshotEnv()
	var entryRace *raceScan
	if w.race != nil {
		entryRace = w.race.snapshot()
	}
	for i := 0; i < 8; i++ {
		before := w.snapshotEnv()
		var beforeActive map[*spawnInfo]bool
		if w.race != nil {
			beforeActive = w.race.activeKey()
		}
		body()
		w.joinEnv(entry)
		raceStable := true
		if w.race != nil {
			w.race.join(entryRace)
			raceStable = activeEqual(beforeActive, w.race.activeKey())
		}
		if envEqual(before, w.env) && raceStable {
			break
		}
	}
}

func (w *walker) assignTo(lhs ast.Expr, rs aset) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if w.race != nil {
			w.race.targetAssigned(l.Name)
		}
		if w.isGlobal(l.Name) {
			// Rebinding a global is a write to shared state, and the
			// global now may alias whatever the RHS aliased.
			w.access(l, true, aset{globals: map[string]bool{l.Name: true}})
			return
		}
		t := w.info.TypeOf(l)
		if t == nil || t.Kind == types.Invalid {
			// Fall back to the declared local binding type if any.
			if _, ok := w.env[l.Name]; !ok {
				return
			}
		}
		if _, ok := w.env[l.Name]; ok || refLike(t) {
			if rs.empty() {
				rs = w.atom(l.Name)
			}
			w.bind(l.Name, rs)
		}
	case *ast.IndexExpr:
		base := w.expr(l.X)
		for _, a := range l.Args {
			w.idxArgExpr(a)
		}
		w.access(l, true, base)
	default:
		w.expr(lhs)
	}
}

func (w *walker) idxArgExpr(a ast.IndexArg) {
	switch a := a.(type) {
	case *ast.IdxScalar:
		w.expr(a.X)
	case *ast.IdxRange:
		w.expr(a.Lo)
		w.expr(a.Hi)
	}
}

// --- expressions ---

// expr walks an expression, firing access events, and returns the
// alias set of the resulting value (empty for scalars and fresh
// allocations).
func (w *walker) expr(x ast.Expr) aset {
	switch x := x.(type) {
	case nil:
		return aset{}
	case *ast.IntLit, *ast.FloatLit, *ast.BoolLit, *ast.StrLit, *ast.EndExpr:
		return aset{}

	case *ast.Ident:
		if w.race != nil {
			w.race.identRead(x)
		}
		if w.isGlobal(x.Name) {
			w.access(x, false, aset{globals: map[string]bool{x.Name: true}})
			if refLike(w.info.GlobalTypes[x.Name]) {
				return aset{globals: map[string]bool{x.Name: true}}
			}
			return aset{}
		}
		if s, ok := w.env[x.Name]; ok && !s.empty() {
			// Using a reference-like local reads the storage it names.
			w.access(x, false, s)
			return s.clone()
		}
		return aset{}

	case *ast.UnaryExpr:
		w.expr(x.X)
		return aset{}

	case *ast.BinaryExpr:
		w.expr(x.L)
		w.expr(x.R)
		return aset{} // kernel results are freshly allocated

	case *ast.CastExpr:
		w.expr(x.X)
		return aset{}

	case *ast.CallExpr:
		return w.call(x)

	case *ast.IndexExpr:
		w.expr(x.X)
		for _, a := range x.Args {
			w.idxArgExpr(a)
		}
		return aset{} // slices copy (§III-A.3): results are fresh

	case *ast.RangeExpr:
		w.expr(x.Lo)
		w.expr(x.Hi)
		return aset{}

	case *ast.TupleExpr:
		var out aset
		for _, el := range x.Elems {
			out.union(w.expr(el))
		}
		return out

	case *ast.WithLoop:
		for _, b := range x.Lower {
			w.expr(b)
		}
		for _, b := range x.Upper {
			w.expr(b)
		}
		w.pushScope()
		for _, id := range x.Ids {
			w.bind(id, aset{})
		}
		switch op := x.Op.(type) {
		case *ast.GenArrayOp:
			for _, sx := range op.Shape {
				w.expr(sx)
			}
			w.expr(op.Body)
		case *ast.FoldOp:
			w.expr(op.Init)
			w.expr(op.Body)
		}
		w.popScope()
		return aset{}

	case *ast.MatrixMap:
		arg := w.expr(x.Arg)
		for _, d := range x.Dims {
			w.expr(d)
		}
		if sum, ok := w.sums[x.Fun]; ok {
			w.applyCallee(x, sum, []aset{arg})
		} else {
			w.havocEvent(x)
		}
		return aset{}

	case *ast.InitExpr:
		for _, d := range x.Dims {
			w.expr(d)
		}
		return aset{}
	}
	return aset{}
}

func (w *walker) call(x *ast.CallExpr) aset {
	switch x.Fun {
	case "print", "writeMatrix":
		for _, a := range x.Args {
			w.expr(a)
		}
		w.ioEvent()
		return aset{}
	case "readMatrix":
		for _, a := range x.Args {
			w.expr(a)
		}
		w.ioEvent()
		return aset{}
	case "dimSize":
		for _, a := range x.Args {
			w.expr(a)
		}
		return aset{}
	case "rcnew":
		var v aset
		for _, a := range x.Args {
			v.union(w.expr(a))
		}
		// A fresh cell whose content aliases the stored value.
		out := w.atom("rcnew cell")
		out.union(v)
		return out
	case "rcget":
		var p aset
		for _, a := range x.Args {
			p.union(w.expr(a))
		}
		w.access(x, false, p)
		// The fetched value may alias anything reachable through the
		// cell, which the cell's own alias set approximates.
		return p
	case "rcset":
		if len(x.Args) != 2 {
			for _, a := range x.Args {
				w.expr(a)
			}
			return aset{}
		}
		p := w.expr(x.Args[0])
		v := w.expr(x.Args[1])
		w.access(x, true, p)
		// The stored value escapes into the cell: fold it into the
		// cell variable's alias set so later accesses through the
		// cell conflict with direct accesses to the value.
		if id, ok := x.Args[0].(*ast.Ident); ok {
			if cur, bound := w.env[id.Name]; bound {
				cur.union(v)
				w.env[id.Name] = cur
			}
		}
		return aset{}
	case "rcrelease":
		var p aset
		for _, a := range x.Args {
			p.union(w.expr(a))
		}
		w.access(x, true, p)
		return aset{}
	}

	args := make([]aset, len(x.Args))
	for k, a := range x.Args {
		args[k] = w.expr(a)
	}
	sum, ok := w.sums[x.Fun]
	if !ok {
		if _, declared := w.info.Funcs[x.Fun]; declared {
			// Known function without a summary (race mode over a
			// partial program): havoc conservatively.
			w.havocEvent(x)
		}
		return aset{}
	}
	return w.applyCallee(x, sum, args)
}

// applyCallee maps a callee summary into the caller's alias frame:
// parameter effects land on the argument alias sets, global effects
// land on the globals, and the return value aliases what the summary
// says it can.
func (w *walker) applyCallee(n ast.Node, sum *summary, args []aset) aset {
	sig := w.calleeSig(n)
	for bit := 0; bit < 64; bit++ {
		m := uint64(1) << bit
		if sum.pRead&m == 0 && sum.pWrite&m == 0 && sum.retParams&m == 0 {
			continue
		}
		a, ok := w.calleeArg(sig, bit, args)
		if !ok {
			continue
		}
		if sum.pRead&m != 0 {
			w.access(n, false, a)
		}
		if sum.pWrite&m != 0 {
			w.access(n, true, a)
		}
	}
	for g := range sum.gRead {
		w.access(n, false, aset{globals: map[string]bool{g: true}})
	}
	for g := range sum.gWrite {
		w.access(n, true, aset{globals: map[string]bool{g: true}})
	}
	if sum.io {
		w.ioEvent()
	}
	if sum.havoc {
		w.havocEvent(n)
	}
	var ret aset
	for bit := 0; bit < 64; bit++ {
		if sum.retParams&(1<<bit) != 0 {
			if a, ok := w.calleeArg(sig, bit, args); ok {
				ret.union(a)
			}
		}
	}
	for g := range sum.retGlobals {
		ret.union(aset{globals: map[string]bool{g: true}})
	}
	return ret
}

// calleeSig returns the callee's declaration for a call or matrixMap
// node, so ref-param bits can be mapped back to argument positions.
func (w *walker) calleeSig(n ast.Node) *ast.FuncDecl {
	switch n := n.(type) {
	case *ast.CallExpr:
		if sig, ok := w.info.Funcs[n.Fun]; ok && sig != nil {
			return sig.Decl
		}
	case *ast.MatrixMap:
		if sig, ok := w.info.Funcs[n.Fun]; ok && sig != nil {
			return sig.Decl
		}
	}
	return nil
}

// calleeArg resolves the callee's ref-param bit to the caller-side
// alias set of the corresponding argument.
func (w *walker) calleeArg(decl *ast.FuncDecl, bit int, args []aset) (aset, bool) {
	if decl == nil {
		return aset{}, false
	}
	refIdx := 0
	for k, p := range decl.Params {
		t, err := types.FromAST(p.Type)
		if err != nil || !refLike(t) {
			continue
		}
		if refIdx == bit {
			if k < len(args) {
				return args[k], true
			}
			return aset{}, false
		}
		refIdx++
	}
	return aset{}, false
}

// spawn handles a SpawnStmt: the arguments are evaluated eagerly in
// the caller (so their reads belong to the continuation relative to
// older spawns), then the callee's effects run concurrently until the
// next sync.
func (w *walker) spawn(s *ast.SpawnStmt) {
	call, ok := s.Call.(*ast.CallExpr)
	if !ok {
		w.expr(s.Call)
		return
	}
	args := make([]aset, len(call.Args))
	for k, a := range call.Args {
		args[k] = w.expr(a)
	}
	sum := w.sums[call.Fun]
	if w.race != nil {
		w.race.spawned(s, call, sum, args)
	}
	if w.cur != nil {
		// The spawned effects are the function's effects (joined at
		// the implicit sync at the latest).
		if sum != nil {
			w.applyCallee(call, sum, args)
		} else if _, declared := w.info.Funcs[call.Fun]; declared {
			w.havocEvent(call)
		}
	}
	if s.Target == "" {
		return
	}
	var ret aset
	if sum != nil {
		ret = w.applyTargetAlias(call, sum, args)
	}
	if w.isGlobal(s.Target) {
		// The sync-time store rebinds the global. It runs serially in
		// the joining frame, so in race mode it is not a concurrent
		// access — only the summary records it as a global write.
		if w.cur != nil {
			w.cur.gWrite[s.Target] = true
		}
		return
	}
	if _, bound := w.env[s.Target]; bound {
		if ret.empty() {
			ret = w.atom(s.Target)
		}
		w.bind(s.Target, ret)
	}
}

// applyTargetAlias computes only the return-alias part of a callee
// summary (effects were already applied).
func (w *walker) applyTargetAlias(call *ast.CallExpr, sum *summary, args []aset) aset {
	sig := w.calleeSig(call)
	var ret aset
	for bit := 0; bit < 64; bit++ {
		if sum.retParams&(1<<bit) != 0 {
			if a, ok := w.calleeArg(sig, bit, args); ok {
				ret.union(a)
			}
		}
	}
	for g := range sum.retGlobals {
		ret.union(aset{globals: map[string]bool{g: true}})
	}
	return ret
}
