package vet

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// vetSrc parses + checks src with all extensions and runs the vet
// analyses. Semantic errors fail the test unless allowSemErrors.
func vetSrc(t *testing.T, src string) []source.Diagnostic {
	t.Helper()
	var diags source.Diagnostics
	prog := parser.ParseFile("test.xc", src, parser.AllExtensions(), &diags)
	if prog == nil {
		t.Fatalf("parse failed: %v", diags.All())
	}
	info := sem.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("unexpected sem errors: %v", diags.All())
	}
	return Check(prog, info)
}

// codes extracts the finding codes in order.
func codes(findings []source.Diagnostic) []string {
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.Code
	}
	return out
}

// wantCodes asserts the exact sequence of finding codes.
func wantCodes(t *testing.T, findings []source.Diagnostic, want ...string) {
	t.Helper()
	got := codes(findings)
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %v\nfindings: %v", len(got), got, want, findings)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding %d: got code %q, want %q\nfindings: %v", i, got[i], want[i], findings)
		}
	}
}

func TestMatmulInnerDimMismatch(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    Matrix float <2> a = init(Matrix float <2>, 3, 4);
    Matrix float <2> b = init(Matrix float <2>, 5, 6);
    Matrix float <2> c = a * b;
    print(c);
    return 0;
}`)
	wantCodes(t, findings, CodeShapeMismatch)
	f := findings[0]
	if f.Severity != source.Error {
		t.Errorf("severity = %v, want error", f.Severity)
	}
	if !strings.Contains(f.Message, "4 columns") || !strings.Contains(f.Message, "5 rows") {
		t.Errorf("message %q should name both inner dimensions", f.Message)
	}
	if f.Span.Start.Line != 5 {
		t.Errorf("span %v, want line 5 (the a * b expression)", f.Span)
	}
}

func TestMatmulCompatibleDimsClean(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    Matrix float <2> a = init(Matrix float <2>, 3, 4);
    Matrix float <2> b = init(Matrix float <2>, 4, 6);
    Matrix float <2> c = a * b;
    print(c);
    return 0;
}`)
	wantCodes(t, findings)
}

func TestElementwiseMismatchAndResultShape(t *testing.T) {
	// The first mismatch is reported; the result of a correct
	// elementwise op keeps the shape, so the chained second op is
	// checked against the propagated extents.
	findings := vetSrc(t, `
int main() {
    Matrix float <1> a = init(Matrix float <1>, 4);
    Matrix float <1> b = init(Matrix float <1>, 4);
    Matrix float <1> c = init(Matrix float <1>, 7);
    Matrix float <1> d = (a + b) .* c;
    print(d);
    return 0;
}`)
	wantCodes(t, findings, CodeShapeMismatch)
	if !strings.Contains(findings[0].Message, "4 vs 7") {
		t.Errorf("message %q should carry the propagated extents 4 vs 7", findings[0].Message)
	}
}

func TestShapeThroughDimSizeSymbols(t *testing.T) {
	// dimSize introduces a symbolic fact: rows of m are unknown but
	// self-equal, so building two matrices from the same dimSize and
	// adding them must not warn.
	findings := vetSrc(t, `
Matrix float <2> m;
int main() {
    m = init(Matrix float <2>, 8, 9);
    int n = dimSize(m, 0);
    Matrix float <1> a = with ([0] <= [i] < [n]) genarray([n], 1.0);
    Matrix float <1> b = with ([0] <= [i] < [n]) genarray([n], 2.0);
    print(a + b);
    return 0;
}`)
	wantCodes(t, findings)
}

func TestConstIndexOutOfRange(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    Matrix float <2> a = init(Matrix float <2>, 3, 4);
    print(a[2, 4]);
    return 0;
}`)
	wantCodes(t, findings, CodeIndexOutOfRange)
	if findings[0].Span.Start.Line != 4 {
		t.Errorf("span %v, want line 4", findings[0].Span)
	}
}

func TestEndResolvesToLastIndex(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    Matrix float <1> a = init(Matrix float <1>, 4);
    print(a[end]);
    print(a[1:end]);
    print(a[end + 1]);
    return 0;
}`)
	// a[end] and a[1:end] are fine; a[end + 1] is index 4 of a size-4
	// dimension.
	wantCodes(t, findings, CodeIndexOutOfRange)
	if findings[0].Span.Start.Line != 6 {
		t.Errorf("span %v, want line 6", findings[0].Span)
	}
}

func TestRangeChecks(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    Matrix float <1> a = init(Matrix float <1>, 10);
    Matrix float <1> b = a[2:5];
    Matrix float <1> c = init(Matrix float <1>, 4);
    print(b + c);
    print(a[5:2]);
    return 0;
}`)
	// b has inferred length 4 (inclusive range), so b + c is clean;
	// a[5:2] is a reversed range.
	wantCodes(t, findings, CodeIndexOutOfRange)
	if !strings.Contains(findings[0].Message, "reversed") {
		t.Errorf("message %q should flag the reversed range", findings[0].Message)
	}
}

func TestSliceStoreExtentMismatch(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    Matrix int <1> a = init(Matrix int <1>, 10);
    a[0:4] = [0 :: 9];
    print(a);
    return 0;
}`)
	wantCodes(t, findings, CodeShapeMismatch)
	if !strings.Contains(findings[0].Message, "length 10") || !strings.Contains(findings[0].Message, "length 5") {
		t.Errorf("message %q should carry both extents", findings[0].Message)
	}
}

func TestGenarrayBoundsAndNegativeDim(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    Matrix float <1> a = with ([0] <= [i] < [10]) genarray([5], 1.0);
    int n = 2 - 6;
    Matrix float <1> b = init(Matrix float <1>, n);
    print(a);
    print(b);
    return 0;
}`)
	wantCodes(t, findings, CodeGenarrayBounds, CodeNegativeDim)
}

func TestGenarrayEmptyRegionClean(t *testing.T) {
	// Upper <= lower generates nothing, so the out-of-shape bound can
	// never produce an index.
	findings := vetSrc(t, `
int main() {
    Matrix float <1> a = with ([3] <= [i] < [3]) genarray([2], 1.0);
    print(a);
    return 0;
}`)
	wantCodes(t, findings)
}

func TestRCUseAfterReleaseAndDoubleRelease(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    refcounted float * p = rcnew(1.0);
    rcrelease(p);
    rcset(p, 2.0);
    rcrelease(p);
    return 0;
}`)
	wantCodes(t, findings, CodeRCUseAfterRelease, CodeRCDoubleRelease)
	for _, f := range findings {
		if f.Severity != source.Error {
			t.Errorf("%s severity = %v, want error (release is definite)", f.Code, f.Severity)
		}
		if len(f.Related) != 1 || !strings.Contains(f.Related[0].Message, "released here") {
			t.Errorf("%s should carry a released-here note, got %v", f.Code, f.Related)
		}
	}
}

func TestRCMayReleaseIsWarning(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    refcounted float * p = rcnew(1.0);
    int c = 1;
    if (c > 0) {
        rcrelease(p);
    }
    print(rcget(p));
    rcrelease(p);
    return 0;
}`)
	// rcget after a conditional release: may-released, warning. The
	// final rcrelease may double-release: warning. No leak (released on
	// all paths by the end).
	wantCodes(t, findings, CodeRCUseAfterRelease, CodeRCDoubleRelease)
	for _, f := range findings {
		if f.Severity != source.Warning {
			t.Errorf("%s severity = %v, want warning (release is conditional)", f.Code, f.Severity)
		}
	}
}

func TestRCLeakOnSomePaths(t *testing.T) {
	findings := vetSrc(t, `
int f(int c) {
    refcounted float * p = rcnew(1.0);
    if (c > 0) {
        rcrelease(p);
        return 1;
    }
    return 0;
}
int main() {
    return f(1);
}`)
	wantCodes(t, findings, CodeRCLeak)
	if findings[0].Severity != source.Warning {
		t.Errorf("severity = %v, want warning", findings[0].Severity)
	}
}

func TestRCReleasedOnAllPathsClean(t *testing.T) {
	findings := vetSrc(t, `
int f(int c) {
    refcounted float * p = rcnew(1.0);
    if (c > 0) {
        rcrelease(p);
        return 1;
    }
    rcrelease(p);
    return 0;
}
int main() {
    return f(1);
}`)
	wantCodes(t, findings)
}

func TestRCNeverReleasedClean(t *testing.T) {
	// Automatic reference counting reclaims unreleased cells; only
	// inconsistent explicit release is a smell.
	findings := vetSrc(t, `
int main() {
    refcounted float * p = rcnew(1.0);
    print(rcget(p));
    return 0;
}`)
	wantCodes(t, findings)
}

func TestRCReleaseInLoopWidensToMay(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    refcounted float * p = rcnew(1.0);
    int i = 0;
    while (i < 3) {
        rcrelease(p);
        i = i + 1;
    }
    return 0;
}`)
	// Inside the loop body iteration N>=2 re-releases: may-released →
	// double-release warning at the loop's rcrelease; at scope end p is
	// may-but-not-must released → leak warning.
	wantCodes(t, findings, CodeRCLeak, CodeRCDoubleRelease)
	for _, f := range findings {
		if f.Severity != source.Warning {
			t.Errorf("%s severity = %v, want warning", f.Code, f.Severity)
		}
	}
}

func TestUseBeforeAssignAndJoin(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    int x;
    int c = 1;
    if (c > 0) {
        x = 1;
    }
    print(x);
    return 0;
}`)
	// Assigned on one branch only: still may-unassigned after the join.
	wantCodes(t, findings, CodeUseBeforeAssign)
}

func TestAssignedOnBothBranchesClean(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    int x;
    int c = 1;
    if (c > 0) {
        x = 1;
    } else {
        x = 2;
    }
    print(x);
    return 0;
}`)
	wantCodes(t, findings)
}

func TestUnusedVarSkipsParams(t *testing.T) {
	findings := vetSrc(t, `
int f(int unusedParam) {
    return 1;
}
int main() {
    int dead = 3;
    return f(2);
}`)
	wantCodes(t, findings, CodeUnusedVar)
	if !strings.Contains(findings[0].Message, "dead") {
		t.Errorf("message %q should name the local, not the parameter", findings[0].Message)
	}
}

func TestUnreachableAfterReturnAndBreak(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    int i = 0;
    while (i < 3) {
        break;
        i = i + 1;
    }
    return 0;
    print(i);
}`)
	wantCodes(t, findings, CodeUnreachable, CodeUnreachable)
}

func TestMissingReturn(t *testing.T) {
	findings := vetSrc(t, `
int f(int c) {
    if (c > 0) {
        return 1;
    }
}
int main() {
    return f(0);
}`)
	wantCodes(t, findings, CodeMissingReturn)
}

func TestVoidAndInfiniteLoopNoMissingReturn(t *testing.T) {
	findings := vetSrc(t, `
void log(int x) {
    print(x);
}
int spin() {
    while (true) {
        print(1);
    }
}
int main() {
    log(3);
    return 0;
}`)
	wantCodes(t, findings)
}

func TestLoopWideningKillsStaleConstants(t *testing.T) {
	// n is reassigned in the loop, so its constant fact must not
	// survive into the index check after the loop.
	findings := vetSrc(t, `
int main() {
    Matrix float <1> a = init(Matrix float <1>, 4);
	int n = 2;
    int i = 0;
    while (i < 3) {
        n = n + 10;
        i = i + 1;
    }
    print(a[n]);
    return 0;
}`)
	wantCodes(t, findings)
}

func TestCallHavocsGlobals(t *testing.T) {
	// grow() reassigns the global, so the post-call index check must
	// not use the stale constant extent.
	findings := vetSrc(t, `
Matrix float <1> g;
void grow() {
    g = init(Matrix float <1>, 100);
}
int main() {
    g = init(Matrix float <1>, 2);
    grow();
    print(g[50]);
    return 0;
}`)
	wantCodes(t, findings)
}

func TestLogicalMaskLengthMismatch(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    Matrix float <1> a = init(Matrix float <1>, 4);
    Matrix float <1> b = init(Matrix float <1>, 7);
    Matrix bool <1> mask = b > 1.0;
    print(a[mask]);
    return 0;
}`)
	wantCodes(t, findings, CodeShapeMismatch)
	if !strings.Contains(findings[0].Message, "mask") {
		t.Errorf("message %q should mention the mask", findings[0].Message)
	}
}

func TestDimSizeConstDimOutOfRange(t *testing.T) {
	findings := vetSrc(t, `
int main() {
    Matrix float <2> a = init(Matrix float <2>, 3, 4);
    print(dimSize(a, 2));
    return 0;
}`)
	wantCodes(t, findings, CodeIndexOutOfRange)
}

func TestFindingsAreSortedAndDeterministic(t *testing.T) {
	src := `
int main() {
    int dead = 1;
    Matrix float <1> a = init(Matrix float <1>, 2);
    print(a[5]);
    refcounted float * p = rcnew(1.0);
    rcrelease(p);
    rcrelease(p);
    return 0;
}`
	first := vetSrc(t, src)
	for i := 0; i < 10; i++ {
		again := vetSrc(t, src)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d findings, want %d", i, len(again), len(first))
		}
		for j := range first {
			if again[j].String() != first[j].String() {
				t.Fatalf("run %d finding %d: %q != %q", i, j, again[j], first[j])
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i].Span.Start.Offset < first[i-1].Span.Start.Offset {
			t.Errorf("findings not sorted by offset: %v before %v", first[i-1], first[i])
		}
	}
}

func TestTrapForCoversEveryCode(t *testing.T) {
	all := []string{
		CodeShapeMismatch, CodeIndexOutOfRange, CodeNegativeDim,
		CodeGenarrayBounds, CodeRCUseAfterRelease, CodeRCDoubleRelease,
		CodeRCLeak, CodeUnusedVar, CodeUseBeforeAssign, CodeUnreachable,
		CodeMissingReturn, CodeRace, CodeSyncMissing, CodeSpawnDead,
	}
	for _, code := range all {
		if _, ok := TrapFor[code]; !ok {
			t.Errorf("TrapFor missing entry for %q", code)
		}
	}
	if len(TrapFor) != len(all) {
		t.Errorf("TrapFor has %d entries, want %d", len(TrapFor), len(all))
	}
	// The runtime counterparts must be real interp trap codes.
	for code, trap := range TrapFor {
		switch trap {
		case "", "shape", "rc":
		default:
			t.Errorf("TrapFor[%q] = %q is not a known trap code", code, trap)
		}
	}
}

func TestCheckNilSafe(t *testing.T) {
	if got := Check(nil, nil); got != nil {
		t.Errorf("Check(nil, nil) = %v, want nil", got)
	}
}
