package vet_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/driver"
	"repro/internal/parser"
	"repro/internal/vet"
)

var update = flag.Bool("update", false, "rewrite the vet golden .json files")

// TestGolden runs the full driver vet pipeline over every program in
// testdata/vet_golden and compares the JSON report byte-for-byte with
// the committed sibling .json file. Regenerate with:
//
//	go test ./internal/vet -run TestGolden -update
func TestGolden(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "vet_golden")
	files, err := filepath.Glob(filepath.Join(dir, "*.cm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no golden programs in %s", dir)
	}

	d := driver.New()
	seen := map[string]bool{}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			// Use the base name so spans in the committed goldens are
			// independent of where the repo is checked out.
			res := d.Vet(driver.VetRequest{
				Name:   filepath.Base(file),
				Source: string(src),
				Exts:   parser.AllExtensions(),
			})
			for _, f := range res.Findings {
				seen[f.Code] = true
			}
			report := vet.NewFileReport(filepath.Base(file), res.OK, res.Diagnostics, res.Findings)
			got, err := report.RenderJSON()
			if err != nil {
				t.Fatal(err)
			}

			goldenPath := file[:len(file)-len(".cm")] + ".json"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}

	// The acceptance bar: the golden corpus exercises at least ten
	// distinct diagnostic codes spanning all three analysis families.
	if *update {
		return
	}
	if len(seen) < 10 {
		t.Errorf("golden corpus covers %d distinct codes, want >= 10: %v", len(seen), seen)
	}
	for _, family := range [][]string{
		{vet.CodeShapeMismatch, vet.CodeIndexOutOfRange, vet.CodeNegativeDim, vet.CodeGenarrayBounds},
		{vet.CodeRCUseAfterRelease, vet.CodeRCDoubleRelease, vet.CodeRCLeak},
		{vet.CodeUnusedVar, vet.CodeUseBeforeAssign, vet.CodeUnreachable, vet.CodeMissingReturn},
	} {
		any := false
		for _, code := range family {
			any = any || seen[code]
		}
		if !any {
			t.Errorf("golden corpus misses the whole family %v", family)
		}
	}
}
