// Expression evaluation for the vet checker: constant folding over
// int scalars, per-dimension shape inference through the overloaded
// operators, index checking with 'end' bound to the indexed
// dimension, and the rc must/may release checks.
package vet

import (
	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/types"
)

func (c *checker) expr(x ast.Expr, e env) exprVal {
	switch x := x.(type) {
	case nil:
		return exprVal{}

	case *ast.IntLit:
		return exprVal{fact: constFact(x.Value)}

	case *ast.FloatLit, *ast.BoolLit, *ast.StrLit:
		return exprVal{}

	case *ast.Ident:
		return c.identRead(x, e)

	case *ast.UnaryExpr:
		v := c.expr(x.X, e)
		if x.Op == ast.OpNeg && v.fact.kind == fConst {
			return exprVal{fact: constFact(-v.fact.c)}
		}
		// Elementwise unary ops preserve shape.
		return exprVal{dims: v.dims}

	case *ast.BinaryExpr:
		return c.binary(x, e)

	case *ast.CallExpr:
		return c.call(x, e)

	case *ast.CastExpr:
		v := c.expr(x.X, e)
		if x.To == ast.PrimInt && v.fact.kind == fConst {
			return exprVal{fact: v.fact}
		}
		return exprVal{dims: v.dims}

	case *ast.IndexExpr:
		return c.indexExpr(x, e)

	case *ast.EndExpr:
		if n := len(c.endDims); n > 0 {
			if d := c.endDims[n-1]; d.kind == fConst {
				return exprVal{fact: constFact(d.c - 1)}
			}
		}
		return exprVal{}

	case *ast.RangeExpr:
		lo := c.expr(x.Lo, e)
		hi := c.expr(x.Hi, e)
		if lo.fact.kind == fConst && hi.fact.kind == fConst && hi.fact.c >= lo.fact.c {
			return exprVal{dims: []fact{constFact(hi.fact.c - lo.fact.c + 1)}}
		}
		return exprVal{dims: []fact{{}}}

	case *ast.WithLoop:
		return c.withLoop(x, e)

	case *ast.MatrixMap:
		v := c.expr(x.Arg, e)
		for _, d := range x.Dims {
			c.expr(d, e)
		}
		if x.General {
			// matrixMapG may resize the mapped dimensions.
			return exprVal{dims: unknownDims(len(v.dims))}
		}
		return exprVal{dims: v.dims}

	case *ast.InitExpr:
		var dims []fact
		for _, d := range x.Dims {
			v := c.expr(d, e)
			if v.fact.kind == fConst && v.fact.c < 0 {
				c.report(CodeNegativeDim, source.Error, d, nil,
					"init dimension size is negative (%d)", v.fact.c)
			}
			dims = append(dims, v.fact)
		}
		if len(dims) > maxRank {
			dims = nil
		}
		return exprVal{dims: dims}

	case *ast.TupleExpr:
		for _, el := range x.Elems {
			c.expr(el, e)
		}
		return exprVal{}
	}
	return exprVal{}
}

func (c *checker) identRead(x *ast.Ident, e env) exprVal {
	st, ok := e[x.Name]
	if !ok {
		return exprVal{}
	}
	if st.decl != nil {
		st.decl.used = true
	}
	if !st.assigned {
		if st.decl != nil && !st.decl.ubaReported {
			st.decl.ubaReported = true
			var rel []source.Related
			if sp := st.decl.node.Span(); sp.Start.IsValid() {
				rel = []source.Related{{Span: sp, Message: "declared here without an initial value"}}
			}
			c.report(CodeUseBeforeAssign, source.Warning, x, rel,
				"%q may be used before it is assigned", x.Name)
		}
		st.assigned = true // suppress cascades along this path
	}
	return exprVal{
		fact:   st.fact,
		dims:   append([]fact(nil), st.dims...),
		rcMay:  st.rcMay,
		rcMust: st.rcMust,
		rcSite: st.rcSite,
	}
}

func (c *checker) binary(x *ast.BinaryExpr, e env) exprVal {
	l := c.expr(x.L, e)
	r := c.expr(x.R, e)
	lt, rt := c.info.TypeOf(x.L), c.info.TypeOf(x.R)
	lm, rm := isMatrixT(lt), isMatrixT(rt)

	switch {
	case x.Op == ast.OpMul && lm && rm:
		// Linear-algebra product: lhs columns must equal rhs rows.
		if len(l.dims) == 2 && len(r.dims) == 2 {
			if factsConflict(l.dims[1], r.dims[0]) {
				c.report(CodeShapeMismatch, source.Error, x, nil,
					"matrix multiplication inner dimensions disagree: lhs has %s columns but rhs has %s rows",
					factStr(l.dims[1]), factStr(r.dims[0]))
			}
			return exprVal{dims: []fact{l.dims[0], r.dims[1]}}
		}
		return exprVal{dims: unknownDims(2)}

	case lm && rm:
		// Elementwise (and comparison) operators require equal shapes.
		if len(l.dims) == len(r.dims) {
			out := make([]fact, len(l.dims))
			for i := range l.dims {
				if factsConflict(l.dims[i], r.dims[i]) {
					c.report(CodeShapeMismatch, source.Error, x, nil,
						"elementwise %s operands disagree in dimension %d: %s vs %s",
						x.Op, i, factStr(l.dims[i]), factStr(r.dims[i]))
				}
				out[i] = mergeFact(l.dims[i], r.dims[i])
			}
			return exprVal{dims: out}
		}
		return exprVal{}

	case lm:
		// Matrix–scalar broadcasting preserves the matrix shape.
		return exprVal{dims: l.dims}

	case rm:
		return exprVal{dims: r.dims}
	}

	// Scalar constant folding over int operands.
	if l.fact.kind == fConst && r.fact.kind == fConst {
		if t := c.info.TypeOf(x); t != nil && t.Kind == types.Int {
			a, b := l.fact.c, r.fact.c
			switch x.Op {
			case ast.OpAdd:
				return exprVal{fact: constFact(a + b)}
			case ast.OpSub:
				return exprVal{fact: constFact(a - b)}
			case ast.OpMul:
				return exprVal{fact: constFact(a * b)}
			case ast.OpDiv:
				if b != 0 {
					return exprVal{fact: constFact(a / b)}
				}
			case ast.OpMod:
				if b != 0 {
					return exprVal{fact: constFact(a % b)}
				}
			}
		}
	}
	return exprVal{}
}

func (c *checker) call(x *ast.CallExpr, e env) exprVal {
	switch x.Fun {
	case "dimSize":
		if len(x.Args) != 2 {
			break
		}
		m := c.expr(x.Args[0], e)
		d := c.expr(x.Args[1], e)
		mt := c.info.TypeOf(x.Args[0])
		if d.fact.kind == fConst && isMatrixT(mt) {
			if d.fact.c < 0 || d.fact.c >= int64(mt.Rank) {
				c.report(CodeIndexOutOfRange, source.Error, x.Args[1], nil,
					"dimSize dimension %d out of range for a rank-%d matrix", d.fact.c, mt.Rank)
			} else if int(d.fact.c) < len(m.dims) {
				return exprVal{fact: m.dims[d.fact.c]}
			}
		}
		return exprVal{}

	case "rcget", "rcset", "rcrelease":
		return c.rcCall(x, e)
	}

	for _, a := range x.Args {
		c.expr(a, e)
	}
	if sig, ok := c.info.Funcs[x.Fun]; ok {
		// A user call may mutate any global through the callee.
		c.havocGlobals(e)
		if sig != nil && sig.Type != nil && isMatrixT(sig.Type.Ret) {
			return exprVal{dims: c.freshDims(sig.Type.Ret.Rank)}
		}
	}
	return exprVal{}
}

func (c *checker) rcCall(x *ast.CallExpr, e env) exprVal {
	if len(x.Args) == 0 {
		return exprVal{}
	}
	p := c.expr(x.Args[0], e)
	for _, a := range x.Args[1:] {
		c.expr(a, e)
	}
	if x.Fun == "rcrelease" {
		if p.rcMust {
			c.report(CodeRCDoubleRelease, source.Error, x, releasedHere(p.rcSite),
				"refcounted pointer is released twice")
		} else if p.rcMay {
			c.report(CodeRCDoubleRelease, source.Warning, x, releasedHere(p.rcSite),
				"refcounted pointer may already be released on some path")
		}
		if id, ok := x.Args[0].(*ast.Ident); ok {
			if st, ok := e[id.Name]; ok {
				st.rcMay, st.rcMust, st.rcSite = true, true, x.Span()
			}
		}
		return exprVal{}
	}
	if p.rcMust {
		c.report(CodeRCUseAfterRelease, source.Error, x, releasedHere(p.rcSite),
			"%s of a released refcounted pointer", x.Fun)
	} else if p.rcMay {
		c.report(CodeRCUseAfterRelease, source.Warning, x, releasedHere(p.rcSite),
			"%s of a refcounted pointer that may be released on some path", x.Fun)
	}
	return exprVal{}
}

func (c *checker) havocGlobals(e env) {
	for _, g := range c.globals {
		st, ok := e[g.name]
		if !ok || !st.global {
			continue
		}
		st.fact = fact{}
		if isMatrixT(st.ty) {
			st.dims = c.freshDims(st.ty.Rank)
		}
	}
}

// --- indexing ---

func (c *checker) indexExpr(x *ast.IndexExpr, e env) exprVal {
	base := c.expr(x.X, e)
	bt := c.info.TypeOf(x.X)
	if !isMatrixT(bt) || len(x.Args) != bt.Rank {
		// Wrong arity or non-matrix base: sem reports it; still walk
		// the index expressions for liveness with 'end' unknown.
		for _, a := range x.Args {
			c.idxArg(a, fact{}, e)
		}
		return exprVal{}
	}
	dims := base.dims
	if len(dims) != bt.Rank {
		dims = unknownDims(bt.Rank)
	}
	var kept []fact
	for i, a := range x.Args {
		k, keep := c.idxArg(a, dims[i], e)
		if keep {
			kept = append(kept, k)
		}
	}
	return exprVal{dims: kept}
}

// idxArg analyzes one index argument against the size fact of the
// dimension it indexes. It returns the selected extent along this
// dimension and whether the argument keeps the dimension in the
// result (ranges, ':' and masks do; scalars consume it).
func (c *checker) idxArg(a ast.IndexArg, dim fact, e env) (fact, bool) {
	switch a := a.(type) {
	case *ast.IdxAll:
		return dim, true

	case *ast.IdxScalar:
		at := c.info.TypeOf(a.X)
		if isMatrixT(at) && at.Elem != nil && at.Elem.Kind == types.Bool {
			// Logical mask: its length must match the dimension.
			mv := c.evalIndexArgExpr(a.X, dim, e)
			if len(mv.dims) == 1 && factsConflict(mv.dims[0], dim) {
				c.report(CodeShapeMismatch, source.Error, a, nil,
					"logical index mask has length %s but the dimension has size %s",
					factStr(mv.dims[0]), factStr(dim))
			}
			// Mask selection count is unknown at compile time.
			return fact{}, true
		}
		v := c.evalIndexArgExpr(a.X, dim, e)
		if v.fact.kind == fConst {
			if v.fact.c < 0 {
				c.report(CodeIndexOutOfRange, source.Error, a, nil,
					"index %d is negative", v.fact.c)
			} else if dim.kind == fConst && v.fact.c >= dim.c {
				c.report(CodeIndexOutOfRange, source.Error, a, nil,
					"index %d out of range for a dimension of size %d", v.fact.c, dim.c)
			}
		}
		return fact{}, false

	case *ast.IdxRange:
		lo := c.evalIndexArgExpr(a.Lo, dim, e)
		hi := c.evalIndexArgExpr(a.Hi, dim, e)
		if lo.fact.kind == fConst && lo.fact.c < 0 {
			c.report(CodeIndexOutOfRange, source.Error, a, nil,
				"range start %d is negative", lo.fact.c)
		}
		if hi.fact.kind == fConst && dim.kind == fConst && hi.fact.c >= dim.c {
			c.report(CodeIndexOutOfRange, source.Error, a, nil,
				"range end %d out of range for a dimension of size %d (ranges are inclusive)", hi.fact.c, dim.c)
		}
		if lo.fact.kind == fConst && hi.fact.kind == fConst {
			if lo.fact.c > hi.fact.c {
				c.report(CodeIndexOutOfRange, source.Error, a, nil,
					"range %d:%d is reversed (inclusive ranges require start <= end)", lo.fact.c, hi.fact.c)
				return fact{}, true
			}
			return constFact(hi.fact.c - lo.fact.c + 1), true
		}
		return fact{}, true
	}
	return fact{}, true
}

// evalIndexArgExpr evaluates an index-argument expression with 'end'
// bound to the indexed dimension's size fact.
func (c *checker) evalIndexArgExpr(x ast.Expr, dim fact, e env) exprVal {
	c.endDims = append(c.endDims, dim)
	v := c.expr(x, e)
	c.endDims = c.endDims[:len(c.endDims)-1]
	return v
}

// --- with-loops ---

func (c *checker) withLoop(w *ast.WithLoop, e env) exprVal {
	lower := make([]exprVal, len(w.Lower))
	for i, b := range w.Lower {
		lower[i] = c.expr(b, e)
	}
	upper := make([]exprVal, len(w.Upper))
	for i, b := range w.Upper {
		upper[i] = c.expr(b, e)
	}

	type saved struct {
		name string
		prev *vstate
		had  bool
	}
	var scope []saved
	for _, id := range w.Ids {
		prev, had := e[id]
		scope = append(scope, saved{id, prev, had})
		e[id] = &vstate{ty: types.IntT, assigned: true}
	}

	var out exprVal
	switch op := w.Op.(type) {
	case *ast.GenArrayOp:
		shape := make([]fact, 0, len(op.Shape))
		for _, sx := range op.Shape {
			v := c.expr(sx, e)
			if v.fact.kind == fConst && v.fact.c < 0 {
				c.report(CodeNegativeDim, source.Error, sx, nil,
					"genarray dimension size is negative (%d)", v.fact.c)
			}
			shape = append(shape, v.fact)
		}
		c.genBounds(w, lower, upper, shape)
		c.expr(op.Body, e)
		if len(shape) > maxRank {
			shape = nil
		}
		out = exprVal{dims: shape}
	case *ast.FoldOp:
		c.expr(op.Init, e)
		c.expr(op.Body, e)
		out = exprVal{} // folds reduce to a scalar
	}

	for i := len(scope) - 1; i >= 0; i-- {
		sv := scope[i]
		if sv.had {
			e[sv.name] = sv.prev
		} else {
			delete(e, sv.name)
		}
	}
	return out
}

// genBounds checks a genarray generator region against the declared
// shape: constant upper bounds must not generate indices past the
// extent (bounds are exclusive, so upper > extent means index
// upper-1 lands out of range) and constant lower bounds must not be
// negative — unless the region is provably empty and generates
// nothing at all.
func (c *checker) genBounds(w *ast.WithLoop, lower, upper []exprVal, shape []fact) {
	for i := range upper {
		if i < len(lower) &&
			lower[i].fact.kind == fConst && upper[i].fact.kind == fConst &&
			upper[i].fact.c <= lower[i].fact.c {
			return // empty region: no indices are generated
		}
	}
	for i := range upper {
		if i >= len(shape) {
			break
		}
		if u := upper[i].fact; u.kind == fConst && shape[i].kind == fConst && u.c > shape[i].c {
			c.report(CodeGenarrayBounds, source.Error, w.Upper[i], nil,
				"generator upper bound %d exceeds genarray dimension size %d (indices reach %d)",
				u.c, shape[i].c, u.c-1)
		}
		if i < len(lower) {
			if lo := lower[i].fact; lo.kind == fConst && lo.c < 0 {
				c.report(CodeGenarrayBounds, source.Error, w.Lower[i], nil,
					"generator lower bound %d is negative", lo.c)
			}
		}
	}
}
