// Package vet implements cmvet: compile-time static analysis over the
// checked AST, run as an optional cached driver stage between check
// and emit. It turns a class of runtime traps into span-accurate
// compile-time diagnostics:
//
//   - matrix shape inference — a lattice of per-dimension facts
//     (unknown / known constant / symbolic-equal-to) propagated through
//     declarations, assignments, genarray/fold, indexing (scalar,
//     range, 'end', whole-dim) and the overloaded operators, flagging
//     provably-mismatched matmul/elementwise operands and out-of-range
//     constant indices that would otherwise only fail at run time;
//   - RC misuse detection — a forward must/may analysis over the
//     reference-counting extension's rcnew/rcget/rcset/rcrelease
//     calls reporting use-after-release, double-release and
//     inconsistently-released (leaked) pointers, mirroring the dynamic
//     rc.Violation checks;
//   - liveness lints — unused variables, definite assignment,
//     unreachable statements and missing returns.
//
// The analysis is a branch-joining abstract interpretation over the
// structured AST: if/else joins per-variable facts, loops widen every
// variable the body can assign (and mark every pointer it can release)
// before a single body pass, so the pass is linear in program size and
// never diverges. Findings are source.Diagnostics carrying a stable
// Code; errors are reserved for programs the analysis can prove will
// trap, warnings for suspicious-but-runnable code.
package vet

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/source"
)

// Diagnostic codes. Stable API: the server, the golden tests and the
// README's code table all key off these strings.
const (
	// CodeShapeMismatch: two matrix operands have provably incompatible
	// shapes (matmul inner dimensions, elementwise operand shapes,
	// logical-mask length, slice-store extents).
	CodeShapeMismatch = "shape-mismatch"
	// CodeIndexOutOfRange: a constant scalar index, range endpoint or
	// dimSize dimension falls outside the (constant) valid range.
	CodeIndexOutOfRange = "index-out-of-range"
	// CodeNegativeDim: a constant negative dimension size in init() or
	// genarray().
	CodeNegativeDim = "negative-dim"
	// CodeGenarrayBounds: a with-loop generator provably produces
	// indices outside the genarray shape.
	CodeGenarrayBounds = "genarray-bounds"
	// CodeRCUseAfterRelease: rcget/rcset on a pointer that was (or may
	// have been) explicitly released.
	CodeRCUseAfterRelease = "rc-use-after-release"
	// CodeRCDoubleRelease: rcrelease on a pointer that was (or may have
	// been) already released.
	CodeRCDoubleRelease = "rc-double-release"
	// CodeRCLeak: a pointer released on some paths through its scope
	// but not on all of them.
	CodeRCLeak = "rc-leak"
	// CodeUnusedVar: a variable declared but never read.
	CodeUnusedVar = "unused-var"
	// CodeUseBeforeAssign: a variable read on a path where it was never
	// assigned.
	CodeUseBeforeAssign = "use-before-assign"
	// CodeUnreachable: statements that no execution path reaches.
	CodeUnreachable = "unreachable-code"
	// CodeMissingReturn: a non-void function whose body can fall off
	// the end.
	CodeMissingReturn = "missing-return"
	// CodeRace: a cilk determinacy race — a spawned call's write set
	// overlaps state the parallel continuation (or a sibling spawn)
	// reads or writes before the joining sync.
	CodeRace = "CM-RACE"
	// CodeSyncMissing: the target variable of an outstanding spawn is
	// read before any sync; the spawned result is only stored at the
	// sync, so the read observes the stale pre-spawn value.
	CodeSyncMissing = "CM-SYNC-MISSING"
	// CodeSpawnDead: a fire-and-forget spawn of a provably effect-free
	// function — the call computes a value nobody can ever observe.
	CodeSpawnDead = "CM-SPAWN-DEAD"
)

// TrapFor maps a vet diagnostic code to the runtime trap code
// (internal/interp.TrapCode) the same defect raises when it is not
// caught statically. Codes that surface as ordinary runtime errors
// (not trap-classed) or have no runtime counterpart map to "".
var TrapFor = map[string]string{
	CodeShapeMismatch:     "shape",
	CodeNegativeDim:       "shape",
	CodeGenarrayBounds:    "shape",
	CodeIndexOutOfRange:   "",
	CodeRCUseAfterRelease: "rc",
	CodeRCDoubleRelease:   "rc",
	CodeRCLeak:            "",
	CodeUnusedVar:         "",
	CodeUseBeforeAssign:   "",
	CodeUnreachable:       "",
	CodeMissingReturn:     "",
	CodeRace:              "",
	CodeSyncMissing:       "",
	CodeSpawnDead:         "",
}

// Check runs all vet analyses over a checked program and returns the
// findings sorted by position. It is safe to call on a program whose
// semantic check reported errors (the fuzzer does); findings on such
// programs are best-effort.
func Check(prog *ast.Program, info *sem.Info) []source.Diagnostic {
	if prog == nil || info == nil {
		return nil
	}
	c := &checker{info: info}
	c.program(prog)
	if usesSpawn(prog) {
		raceCheck(c, prog, computeSummaries(prog, info))
	}
	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if a.Span.File != b.Span.File {
			return a.Span.File < b.Span.File
		}
		if a.Span.Start.Offset != b.Span.Start.Offset {
			return a.Span.Start.Offset < b.Span.Start.Offset
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
	return c.diags
}

// ErrorCount returns the number of error-severity findings.
func ErrorCount(findings []source.Diagnostic) int {
	n := 0
	for _, f := range findings {
		if f.Severity == source.Error {
			n++
		}
	}
	return n
}
