// Syntactic pre-scan of loop bodies: before analyzing a loop body the
// checker widens every variable the body can assign (its facts become
// unknown — the loop may run any number of times) and marks every
// refcounted pointer the body can release as may-released. This keeps
// the analysis single-pass while staying sound for loops.
package vet

import "repro/internal/ast"

type loopEffects struct {
	assigned map[string]bool // idents assigned anywhere in the body
	released map[string]bool // idents passed to rcrelease in the body
	calls    bool            // body calls a user function (globals havocked)
}

func (c *checker) widenLoop(e env, body, post ast.Stmt) {
	fx := &loopEffects{assigned: map[string]bool{}, released: map[string]bool{}}
	stmtEffects(body, fx)
	stmtEffects(post, fx)
	for _, name := range sortedKeys(fx.assigned) {
		st, ok := e[name]
		if !ok {
			continue
		}
		st.fact = fact{}
		if isMatrixT(st.ty) {
			st.dims = c.freshDims(st.ty.Rank)
		} else {
			st.dims = nil
		}
		// Reassignment may replace a released pointer with a fresh one:
		// no longer definitely released, but "may" sticks.
		st.rcMust = false
	}
	for _, name := range sortedKeys(fx.released) {
		if st, ok := e[name]; ok {
			st.rcMay = true
			st.rcMust = false // released only if the body actually ran
		}
	}
	if fx.calls {
		c.havocGlobals(e)
	}
}

func sortedKeys(m map[string]bool) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func stmtEffects(s ast.Stmt, fx *loopEffects) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.Stmts {
			stmtEffects(st, fx)
		}
	case *ast.DeclStmt:
		// The declared name is block-scoped; an outer variable of the
		// same name is shadowed, not assigned. Conservatively treating
		// it as assigned would only lose precision, so skip the name
		// but keep the initializer's effects.
		exprEffects(s.Init, fx)
	case *ast.AssignStmt:
		exprEffects(s.RHS, fx)
		for _, lhs := range s.LHS {
			switch t := lhs.(type) {
			case *ast.Ident:
				fx.assigned[t.Name] = true
			case *ast.IndexExpr:
				exprEffects(t, fx)
			default:
				exprEffects(lhs, fx)
			}
		}
	case *ast.IfStmt:
		exprEffects(s.Cond, fx)
		stmtEffects(s.Then, fx)
		stmtEffects(s.Else, fx)
	case *ast.WhileStmt:
		exprEffects(s.Cond, fx)
		stmtEffects(s.Body, fx)
	case *ast.ForStmt:
		stmtEffects(s.Init, fx)
		exprEffects(s.Cond, fx)
		stmtEffects(s.Post, fx)
		stmtEffects(s.Body, fx)
	case *ast.ReturnStmt:
		exprEffects(s.Value, fx)
	case *ast.ExprStmt:
		exprEffects(s.X, fx)
	case *ast.SpawnStmt:
		exprEffects(s.Call, fx)
		if s.Target != "" {
			fx.assigned[s.Target] = true
		}
	}
}

func exprEffects(x ast.Expr, fx *loopEffects) {
	switch x := x.(type) {
	case nil:
	case *ast.UnaryExpr:
		exprEffects(x.X, fx)
	case *ast.BinaryExpr:
		exprEffects(x.L, fx)
		exprEffects(x.R, fx)
	case *ast.CallExpr:
		if x.Fun == "rcrelease" && len(x.Args) == 1 {
			if id, ok := x.Args[0].(*ast.Ident); ok {
				fx.released[id.Name] = true
			}
		}
		if !isBuiltin(x.Fun) {
			fx.calls = true
		}
		for _, a := range x.Args {
			exprEffects(a, fx)
		}
	case *ast.CastExpr:
		exprEffects(x.X, fx)
	case *ast.IndexExpr:
		exprEffects(x.X, fx)
		for _, a := range x.Args {
			switch a := a.(type) {
			case *ast.IdxScalar:
				exprEffects(a.X, fx)
			case *ast.IdxRange:
				exprEffects(a.Lo, fx)
				exprEffects(a.Hi, fx)
			}
		}
	case *ast.RangeExpr:
		exprEffects(x.Lo, fx)
		exprEffects(x.Hi, fx)
	case *ast.WithLoop:
		for _, b := range x.Lower {
			exprEffects(b, fx)
		}
		for _, b := range x.Upper {
			exprEffects(b, fx)
		}
		switch op := x.Op.(type) {
		case *ast.GenArrayOp:
			for _, s := range op.Shape {
				exprEffects(s, fx)
			}
			exprEffects(op.Body, fx)
		case *ast.FoldOp:
			exprEffects(op.Init, fx)
			exprEffects(op.Body, fx)
		}
	case *ast.MatrixMap:
		fx.calls = true // the mapped function runs per sub-matrix
		exprEffects(x.Arg, fx)
		for _, d := range x.Dims {
			exprEffects(d, fx)
		}
	case *ast.InitExpr:
		for _, d := range x.Dims {
			exprEffects(d, fx)
		}
	case *ast.TupleExpr:
		for _, el := range x.Elems {
			exprEffects(el, fx)
		}
	}
}

func isBuiltin(name string) bool {
	switch name {
	case "dimSize", "readMatrix", "writeMatrix", "print",
		"rcnew", "rcget", "rcset", "rcrelease":
		return true
	}
	return false
}

// hasLoopBreak reports whether the statement (a loop body) contains a
// break that would exit this loop — breaks inside nested loops don't
// count.
func hasLoopBreak(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BreakStmt:
		return true
	case *ast.BlockStmt:
		for _, st := range s.Stmts {
			if hasLoopBreak(st) {
				return true
			}
		}
	case *ast.IfStmt:
		return hasLoopBreak(s.Then) || hasLoopBreak(s.Else)
	}
	return false
}
