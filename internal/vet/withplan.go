// With-loop compilation proofs — the second Facts family. A
// genarray/fold body that is an effect-free scalar index expression
// (ids, literals, scalar and matrix identifier leaves, +,-,*, float /,
// negation, int↔float casts, and matrix loads whose indices are int
// affine-ish expressions) is compiled here to the flat postfix
// instruction set of matrix.WithInstr. The VM resolves the leaf names
// against its registers and runs the loop through
// matrix.GenArrayFlat/FoldFlat instead of a per-element closure.
//
// Legality is strict for the same reason chain fusion is: the flat
// engine must replay the closure engine's observables exactly.
// Excluded on principle: `%` and int `/` (trap per element mid-loop),
// comparisons and logicals (bool bodies), calls (effects, recursion),
// `end` (needs the enclosing indexing context), nested with-loops
// (inner loops get their own plans), transform clauses, and any leaf
// that is not a plain identifier or literal. A float-typed `/` is
// total (IEEE), so it is allowed on float bodies.
package vet

import (
	"repro/internal/ast"
	"repro/internal/matrix"
	"repro/internal/sem"
	"repro/internal/types"
)

// WithPlan is a proven flat-compilable with-loop body. Leaves are
// recorded by name; the VM resolves them against local registers at
// compile time (globals decline — a racy global rebind must keep
// closure semantics) and re-verifies elements at run time.
type WithPlan struct {
	Fold    bool
	Kind    matrix.FoldKind // Fold only
	Code    []matrix.WithInstr
	Mats    []string      // matrix leaf names, by WLoad* slot
	MatElem []matrix.Elem // proven element type per matrix leaf
	ScalarI []string      // int scalar leaf names, by WPushScalarI slot
	ScalarF []string      // float scalar leaf names, by WPushScalarF slot
	Float   bool          // body's static type is float
}

// WithAt returns the flat plan proven for w, or nil.
func (f *Facts) WithAt(w *ast.WithLoop) *WithPlan {
	if f == nil {
		return nil
	}
	return f.withs[w]
}

// WithCount reports how many with-loops were proven flat-compilable.
func (f *Facts) WithCount() int {
	if f == nil {
		return 0
	}
	return len(f.withs)
}

// proveWith compiles w's body to a flat plan, or returns nil if any
// part of it falls outside the flat language.
func proveWith(info *sem.Info, w *ast.WithLoop) *WithPlan {
	if len(w.Transforms) != 0 || len(w.Ids) == 0 ||
		len(w.Lower) != len(w.Ids) || len(w.Upper) != len(w.Ids) {
		return nil
	}
	b := &withBuilder{
		info:  info,
		ids:   map[string]int{},
		plan:  &WithPlan{},
		mats:  map[string]int{},
		sInts: map[string]int{},
		sFlts: map[string]int{},
	}
	for k, name := range w.Ids {
		b.ids[name] = k // a repeated name shadows: the last binding wins
	}
	var body ast.Expr
	switch op := w.Op.(type) {
	case *ast.GenArrayOp:
		body = op.Body
	case *ast.FoldOp:
		body = op.Body
		b.plan.Fold = true
		switch op.Kind {
		case ast.FoldAdd:
			b.plan.Kind = matrix.FoldAdd
		case ast.FoldMul:
			b.plan.Kind = matrix.FoldMul
		case ast.FoldMin:
			b.plan.Kind = matrix.FoldMin
		case ast.FoldMax:
			b.plan.Kind = matrix.FoldMax
		default:
			return nil
		}
	default:
		return nil
	}
	k, ok := b.build(body)
	if !ok {
		return nil
	}
	b.plan.Float = k == types.Float
	return b.plan
}

type withBuilder struct {
	info  *sem.Info
	ids   map[string]int
	plan  *WithPlan
	mats  map[string]int
	sInts map[string]int
	sFlts map[string]int
}

func (b *withBuilder) emit(in matrix.WithInstr) {
	b.plan.Code = append(b.plan.Code, in)
}

// kindOf returns the checker's scalar kind for e (Invalid when e is
// untyped or not a scalar).
func (b *withBuilder) kindOf(e ast.Expr) types.Kind {
	t := b.info.TypeOf(e)
	if t == nil || (t.Kind != types.Int && t.Kind != types.Float) {
		return types.Invalid
	}
	return t.Kind
}

// build compiles e, returning its scalar kind. The emitted code's
// value is bit-identical to tree evaluation of e: promotions are
// emitted exactly where scalarOp would promote, casts truncate the
// same way, and operand order is preserved.
func (b *withBuilder) build(e ast.Expr) (types.Kind, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		b.emit(matrix.WithInstr{Op: matrix.WPushInt, K: e.Value})
		return types.Int, true
	case *ast.FloatLit:
		b.emit(matrix.WithInstr{Op: matrix.WPushFloat, F: e.Value})
		return types.Float, true
	case *ast.Ident:
		if k, ok := b.ids[e.Name]; ok {
			b.emit(matrix.WithInstr{Op: matrix.WPushID, A: int32(k)})
			return types.Int, true
		}
		switch b.kindOf(e) {
		case types.Int:
			b.emit(matrix.WithInstr{Op: matrix.WPushScalarI, A: int32(b.slot(b.sInts, &b.plan.ScalarI, e.Name))})
			return types.Int, true
		case types.Float:
			b.emit(matrix.WithInstr{Op: matrix.WPushScalarF, A: int32(b.slot(b.sFlts, &b.plan.ScalarF, e.Name))})
			return types.Float, true
		}
		return 0, false
	case *ast.UnaryExpr:
		if e.Op != ast.OpNeg {
			return 0, false
		}
		k, ok := b.build(e.X)
		if !ok {
			return 0, false
		}
		if k == types.Float {
			b.emit(matrix.WithInstr{Op: matrix.WNegF})
		} else {
			b.emit(matrix.WithInstr{Op: matrix.WNegI})
		}
		return k, true
	case *ast.CastExpr:
		k, ok := b.build(e.X)
		if !ok {
			return 0, false
		}
		switch {
		case e.To == ast.PrimFloat && k == types.Int:
			b.emit(matrix.WithInstr{Op: matrix.WI2F})
			return types.Float, true
		case e.To == ast.PrimFloat && k == types.Float:
			return types.Float, true
		case e.To == ast.PrimInt && k == types.Float:
			b.emit(matrix.WithInstr{Op: matrix.WF2I})
			return types.Int, true
		case e.To == ast.PrimInt && k == types.Int:
			return types.Int, true
		}
		return 0, false
	case *ast.BinaryExpr:
		return b.binary(e)
	case *ast.IndexExpr:
		return b.load(e)
	}
	return 0, false
}

func (b *withBuilder) binary(e *ast.BinaryExpr) (types.Kind, bool) {
	switch e.Op {
	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv:
	default:
		return 0, false
	}
	// Promotion sites must be known before the right operand's code is
	// emitted (the int value to convert would otherwise be buried under
	// it on the wrong stack), so kinds come from the checker up front.
	lk, rk := b.kindOf(e.L), b.kindOf(e.R)
	if lk == types.Invalid || rk == types.Invalid {
		return 0, false
	}
	res := types.Int
	if lk == types.Float || rk == types.Float {
		res = types.Float
	}
	if e.Op == ast.OpDiv && res != types.Float {
		return 0, false // int division traps per element
	}
	gotL, ok := b.build(e.L)
	if !ok || gotL != lk {
		return 0, false
	}
	if lk == types.Int && res == types.Float {
		b.emit(matrix.WithInstr{Op: matrix.WI2F})
	}
	gotR, ok := b.build(e.R)
	if !ok || gotR != rk {
		return 0, false
	}
	if rk == types.Int && res == types.Float {
		b.emit(matrix.WithInstr{Op: matrix.WI2F})
	}
	var op matrix.WithOp
	switch e.Op {
	case ast.OpAdd:
		if res == types.Float {
			op = matrix.WAddF
		} else {
			op = matrix.WAddI
		}
	case ast.OpSub:
		if res == types.Float {
			op = matrix.WSubF
		} else {
			op = matrix.WSubI
		}
	case ast.OpMul:
		if res == types.Float {
			op = matrix.WMulF
		} else {
			op = matrix.WMulI
		}
	case ast.OpDiv:
		op = matrix.WDivF
	}
	b.emit(matrix.WithInstr{Op: op})
	return res, true
}

// load compiles a matrix element access m[i, j, ...]: a plain matrix
// identifier (not AnyMatrix — the element type must be pinned), every
// index a scalar int expression from the restricted index language.
func (b *withBuilder) load(e *ast.IndexExpr) (types.Kind, bool) {
	id, ok := e.X.(*ast.Ident)
	if !ok {
		return 0, false
	}
	if _, isID := b.ids[id.Name]; isID {
		return 0, false
	}
	t := b.info.TypeOf(id)
	if t == nil || t.Kind != types.Matrix || t.Elem == nil || t.Rank != len(e.Args) {
		return 0, false
	}
	var elem matrix.Elem
	switch t.Elem.Kind {
	case types.Int:
		elem = matrix.Int
	case types.Float:
		elem = matrix.Float
	default:
		return 0, false
	}
	if len(e.Args) == 0 {
		return 0, false
	}
	// Index language first (no partial emission on failure matters: a
	// failed plan is discarded whole).
	for _, a := range e.Args {
		s, ok := a.(*ast.IdxScalar)
		if !ok || !b.index(s.X) {
			return 0, false
		}
	}
	slot := b.slot(b.mats, &b.plan.Mats, id.Name)
	for len(b.plan.MatElem) <= slot {
		b.plan.MatElem = append(b.plan.MatElem, elem)
	}
	if b.plan.MatElem[slot] != elem {
		return 0, false
	}
	var op matrix.WithOp
	k := types.Int
	if elem == matrix.Float {
		op = matrix.WLoadF
		k = types.Float
	} else {
		op = matrix.WLoadI
	}
	b.emit(matrix.WithInstr{Op: op, A: int32(slot), B: int32(len(e.Args))})
	return k, true
}

// index compiles one index subexpression: ids, int literals, int
// scalar identifiers, +, -, *, and negation — the language the flat
// engine's interval analysis can bound.
func (b *withBuilder) index(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit:
		b.emit(matrix.WithInstr{Op: matrix.WPushInt, K: e.Value})
		return true
	case *ast.Ident:
		if k, ok := b.ids[e.Name]; ok {
			b.emit(matrix.WithInstr{Op: matrix.WPushID, A: int32(k)})
			return true
		}
		if b.kindOf(e) == types.Int {
			b.emit(matrix.WithInstr{Op: matrix.WPushScalarI, A: int32(b.slot(b.sInts, &b.plan.ScalarI, e.Name))})
			return true
		}
		return false
	case *ast.UnaryExpr:
		if e.Op != ast.OpNeg || !b.index(e.X) {
			return false
		}
		b.emit(matrix.WithInstr{Op: matrix.WNegI})
		return true
	case *ast.BinaryExpr:
		var op matrix.WithOp
		switch e.Op {
		case ast.OpAdd:
			op = matrix.WAddI
		case ast.OpSub:
			op = matrix.WSubI
		case ast.OpMul:
			op = matrix.WMulI
		default:
			return false
		}
		if b.kindOf(e) != types.Int || !b.index(e.L) || !b.index(e.R) {
			return false
		}
		b.emit(matrix.WithInstr{Op: op})
		return true
	}
	return false
}

// slot interns a leaf name into its slot list.
func (b *withBuilder) slot(m map[string]int, names *[]string, name string) int {
	if s, ok := m[name]; ok {
		return s
	}
	s := len(*names)
	m[name] = s
	*names = append(*names, name)
	return s
}
