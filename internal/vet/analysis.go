// The vet checker: a forward abstract interpretation over the checked
// AST. Each variable carries a vstate (scalar constant fact, per-
// dimension shape facts, definite-assignment bit, rc may/must-released
// bits); if/else clones and joins the environment, loops are widened
// by a syntactic pre-scan of the body's assignments and releases
// before a single body pass.
package vet

import (
	"fmt"
	"strconv"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/types"
)

// maxRank caps the rank for which per-dimension facts are tracked, so
// fuzzed programs declaring absurd ranks cannot make vet allocate
// proportionally. Beyond the cap shapes are simply unknown.
const maxRank = 64

// --- dimension/scalar facts ---

type factKind uint8

const (
	fUnknown factKind = iota
	fConst            // value/extent is the compile-time constant c
	fSym              // unknown but equal to every other fact with this sym
)

type fact struct {
	kind factKind
	c    int64
	sym  int
}

func constFact(c int64) fact { return fact{kind: fConst, c: c} }

// factsConflict reports whether two facts are provably different.
func factsConflict(a, b fact) bool {
	return a.kind == fConst && b.kind == fConst && a.c != b.c
}

// joinFact is the lattice join: keep a fact only if both sides agree.
func joinFact(a, b fact) fact {
	if a.kind == fConst && b.kind == fConst && a.c == b.c {
		return a
	}
	if a.kind == fSym && b.kind == fSym && a.sym == b.sym {
		return a
	}
	return fact{}
}

// mergeFact refines two facts known to describe the same value (e.g.
// the two operands of an elementwise op): prefer the more precise one.
func mergeFact(a, b fact) fact {
	if a.kind == fConst {
		return a
	}
	if b.kind == fConst {
		return b
	}
	if a.kind == fSym {
		return a
	}
	return b
}

func factStr(f fact) string {
	if f.kind == fConst {
		return strconv.FormatInt(f.c, 10)
	}
	return "?"
}

func joinDims(a, b []fact) []fact {
	if len(a) != len(b) {
		return nil
	}
	out := make([]fact, len(a))
	for i := range a {
		out[i] = joinFact(a[i], b[i])
	}
	return out
}

// --- per-variable state ---

// declInfo is the per-declaration record, shared by every vstate (and
// every branch clone) referring to the same declaration. It
// accumulates whole-lifetime facts: was the variable ever read, was a
// use-before-assign already reported, and the rc release state merged
// over every point where the variable's scope ends.
type declInfo struct {
	name        string
	node        ast.Node
	ty          *types.Type
	global      bool
	used        bool
	ubaReported bool

	rcSeen    bool // lifetime-end state merged at least once
	rcMayAcc  bool // released on at least one lifetime-ending path
	rcMustAcc bool // released on every lifetime-ending path
	rcSite    source.Span
}

// vstate is the abstract value of one variable on one path.
type vstate struct {
	ty       *types.Type
	decl     *declInfo // nil for parameters and with-loop ids
	global   bool
	assigned bool
	fact     fact   // scalar constant fact (ints only)
	dims     []fact // per-dimension extents when ty is a matrix
	rcMay    bool   // may have been rcreleased on this path
	rcMust   bool   // definitely rcreleased on this path
	rcSite   source.Span
}

type env map[string]*vstate

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		c := *v
		c.dims = append([]fact(nil), v.dims...)
		out[k] = &c
	}
	return out
}

func joinStates(a, b *vstate) *vstate {
	out := *a
	out.assigned = a.assigned && b.assigned
	out.fact = joinFact(a.fact, b.fact)
	out.dims = joinDims(a.dims, b.dims)
	out.rcMay = a.rcMay || b.rcMay
	out.rcMust = a.rcMust && b.rcMust
	if !out.rcSite.Start.IsValid() {
		out.rcSite = b.rcSite
	}
	return &out
}

// exprVal is the abstract value of an expression.
type exprVal struct {
	fact   fact
	dims   []fact
	rcMay  bool
	rcMust bool
	rcSite source.Span
}

// --- the checker ---

type globalBind struct {
	name string
	ty   *types.Type
	di   *declInfo
}

type checker struct {
	info    *sem.Info
	diags   []source.Diagnostic
	decls   []*declInfo
	globals []*globalBind
	nextSym int
	endDims []fact // 'end' binding stack, one per nested index argument
}

func (c *checker) freshFact() fact {
	c.nextSym++
	return fact{kind: fSym, sym: c.nextSym}
}

func (c *checker) freshDims(n int) []fact {
	if n <= 0 || n > maxRank {
		return nil
	}
	out := make([]fact, n)
	for i := range out {
		out[i] = c.freshFact()
	}
	return out
}

func unknownDims(n int) []fact {
	if n <= 0 || n > maxRank {
		return nil
	}
	return make([]fact, n)
}

func typeOf(te ast.TypeExpr) *types.Type {
	if te == nil {
		return types.InvalidT
	}
	return types.MustFrom(te)
}

func isMatrixT(t *types.Type) bool { return t != nil && t.Kind == types.Matrix }
func isRcT(t *types.Type) bool     { return t != nil && t.Kind == types.RcPtr }

func (c *checker) report(code string, sev source.Severity, n ast.Node, rel []source.Related, format string, args ...any) {
	if n == nil {
		return
	}
	sp := n.Span()
	if !sp.Start.IsValid() {
		return
	}
	if !sp.End.IsValid() || sp.End.Offset < sp.Start.Offset {
		sp.End = sp.Start
	}
	var related []source.Related
	for _, r := range rel {
		if r.Span.Start.IsValid() {
			related = append(related, r)
		}
	}
	c.diags = append(c.diags, source.Diagnostic{
		Code:     code,
		Severity: sev,
		Span:     sp,
		Message:  fmt.Sprintf(format, args...),
		Related:  related,
	})
}

func releasedHere(site source.Span) []source.Related {
	if !site.Start.IsValid() {
		return nil
	}
	return []source.Related{{Span: site, Message: "released here"}}
}

// --- program / function level ---

func (c *checker) program(prog *ast.Program) {
	// Global initializers are analyzed once, in declaration order, with
	// earlier globals' facts visible to later initializers.
	ge := env{}
	for _, d := range prog.Decls {
		g, ok := d.(*ast.GlobalVarDecl)
		if !ok {
			continue
		}
		var val exprVal
		if g.Init != nil {
			val = c.expr(g.Init, ge)
		}
		ty := c.info.GlobalTypes[g.Name]
		if ty == nil {
			ty = typeOf(g.Type)
		}
		di := &declInfo{name: g.Name, node: g, ty: ty, global: true}
		c.decls = append(c.decls, di)
		c.globals = append(c.globals, &globalBind{name: g.Name, ty: ty, di: di})
		st := &vstate{ty: ty, decl: di, global: true, assigned: true}
		if isMatrixT(ty) {
			if g.Init != nil && len(val.dims) == ty.Rank {
				st.dims = val.dims
			} else {
				st.dims = c.freshDims(ty.Rank)
			}
		}
		if g.Init != nil {
			st.fact = val.fact
		}
		ge[g.Name] = st
	}

	for _, d := range prog.Decls {
		fn, ok := d.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		c.function(fn)
	}

	for _, di := range c.decls {
		if di.used {
			continue
		}
		kind := "variable"
		if di.global {
			kind = "global variable"
		}
		c.report(CodeUnusedVar, source.Warning, di.node, nil, "%s %q declared but never used", kind, di.name)
	}
	for _, di := range c.decls {
		if di.global || !isRcT(di.ty) || !di.rcSeen {
			continue
		}
		if di.rcMayAcc && !di.rcMustAcc {
			c.report(CodeRCLeak, source.Warning, di.node, releasedHere(di.rcSite),
				"refcounted pointer %q is released on some paths but not on all of them", di.name)
		}
	}
}

func (c *checker) function(fn *ast.FuncDecl) {
	e := env{}
	// Globals enter every function with unknown values: any call chain
	// may have mutated them since initialization.
	for _, g := range c.globals {
		st := &vstate{ty: g.ty, decl: g.di, global: true, assigned: true}
		if isMatrixT(g.ty) {
			st.dims = c.freshDims(g.ty.Rank)
		}
		e[g.name] = st
	}
	for _, p := range fn.Params {
		if p == nil || p.Name == "" {
			continue
		}
		ty := typeOf(p.Type)
		st := &vstate{ty: ty, assigned: true}
		if isMatrixT(ty) {
			st.dims = c.freshDims(ty.Rank)
		}
		e[p.Name] = st
	}

	reach := c.stmt(fn.Body, e)
	if reach {
		var ret *types.Type
		if sig := c.info.Funcs[fn.Name]; sig != nil && sig.Type != nil {
			ret = sig.Type.Ret
		} else {
			ret = typeOf(fn.Ret)
		}
		if ret != nil && ret.Kind != types.Void && ret.Kind != types.Invalid {
			c.report(CodeMissingReturn, source.Warning, fn, nil,
				"function %q may reach the end of its body without returning a value", fn.Name)
		}
	}
}

// mergeRcExit folds a variable's path state into its declaration's
// lifetime accumulator. Called wherever the variable's scope can end:
// at each return statement and when its block is popped.
func (c *checker) mergeRcExit(st *vstate) {
	di := st.decl
	if di == nil || di.global || !isRcT(di.ty) {
		return
	}
	if !di.rcSeen {
		di.rcSeen = true
		di.rcMustAcc = true
	}
	di.rcMayAcc = di.rcMayAcc || st.rcMay
	di.rcMustAcc = di.rcMustAcc && st.rcMust
	if st.rcSite.Start.IsValid() {
		di.rcSite = st.rcSite
	}
}

// --- statements ---

// stmt analyzes one statement and reports whether the statement can
// complete normally (i.e. the following statement is reachable).
func (c *checker) stmt(s ast.Stmt, e env) bool {
	switch s := s.(type) {
	case nil:
		return true

	case *ast.BlockStmt:
		return c.block(s, e)

	case *ast.DeclStmt:
		c.declStmt(s, e)
		return true

	case *ast.AssignStmt:
		c.assignStmt(s, e)
		return true

	case *ast.IfStmt:
		return c.ifStmt(s, e)

	case *ast.WhileStmt:
		c.expr(s.Cond, e)
		c.widenLoop(e, s.Body, nil)
		be := e.clone()
		c.stmt(s.Body, be)
		if isConstTrue(s.Cond) && !hasLoopBreak(s.Body) {
			return false // while(true) without break never completes
		}
		return true

	case *ast.ForStmt:
		var initDecl *ast.DeclStmt
		var prev *vstate
		var had bool
		if d, ok := s.Init.(*ast.DeclStmt); ok {
			initDecl = d
			prev, had = e[d.Name]
		}
		c.stmt(s.Init, e)
		if s.Cond != nil {
			c.expr(s.Cond, e)
		}
		c.widenLoop(e, s.Body, s.Post)
		be := e.clone()
		if c.stmt(s.Body, be) {
			c.stmt(s.Post, be)
		}
		infinite := s.Cond == nil || isConstTrue(s.Cond)
		if initDecl != nil {
			if st, ok := e[initDecl.Name]; ok {
				c.mergeRcExit(st)
			}
			if had {
				e[initDecl.Name] = prev
			} else {
				delete(e, initDecl.Name)
			}
		}
		return !(infinite && !hasLoopBreak(s.Body))

	case *ast.ReturnStmt:
		if s.Value != nil {
			c.expr(s.Value, e)
		}
		for _, name := range sortedNames(e) {
			c.mergeRcExit(e[name])
		}
		return false

	case *ast.BreakStmt, *ast.ContinueStmt:
		return false

	case *ast.ExprStmt:
		c.expr(s.X, e)
		return true

	case *ast.SpawnStmt:
		c.expr(s.Call, e)
		if s.Target != "" {
			if st, ok := e[s.Target]; ok {
				st.assigned = true
				st.fact = fact{}
				if isMatrixT(st.ty) {
					st.dims = c.freshDims(st.ty.Rank)
				}
			}
		}
		return true

	case *ast.SyncStmt:
		return true
	}
	return true
}

func (c *checker) block(b *ast.BlockStmt, e env) bool {
	type saved struct {
		name string
		prev *vstate
		had  bool
	}
	var scope []saved
	reach := true
	for _, st := range b.Stmts {
		if !reach {
			c.report(CodeUnreachable, source.Warning, st, nil, "unreachable code")
			break
		}
		if d, ok := st.(*ast.DeclStmt); ok {
			prev, had := e[d.Name]
			scope = append(scope, saved{d.Name, prev, had})
		}
		reach = c.stmt(st, e)
	}
	for i := len(scope) - 1; i >= 0; i-- {
		sv := scope[i]
		if cur, ok := e[sv.name]; ok {
			c.mergeRcExit(cur)
		}
		if sv.had {
			e[sv.name] = sv.prev
		} else {
			delete(e, sv.name)
		}
	}
	return reach
}

func (c *checker) declStmt(d *ast.DeclStmt, e env) {
	var val exprVal
	if d.Init != nil {
		val = c.expr(d.Init, e)
	}
	ty := typeOf(d.Type)
	di := &declInfo{name: d.Name, node: d, ty: ty}
	c.decls = append(c.decls, di)
	st := &vstate{ty: ty, decl: di}
	if d.Init != nil {
		st.assigned = true
		st.fact = val.fact
		if isMatrixT(ty) {
			if len(val.dims) == ty.Rank {
				st.dims = val.dims
			} else {
				st.dims = c.freshDims(ty.Rank)
			}
		}
		st.rcMay, st.rcMust, st.rcSite = val.rcMay, val.rcMust, val.rcSite
	}
	e[d.Name] = st
}

func (c *checker) assignStmt(s *ast.AssignStmt, e env) {
	val := c.expr(s.RHS, e)
	single := len(s.LHS) == 1
	for _, lhs := range s.LHS {
		switch t := lhs.(type) {
		case *ast.Ident:
			st, ok := e[t.Name]
			if !ok {
				// Undeclared (sem reports it) — bind loosely so later
				// reads don't cascade.
				e[t.Name] = &vstate{ty: c.info.TypeOf(t), assigned: true}
				continue
			}
			st.assigned = true
			if single {
				st.fact = val.fact
				if isMatrixT(st.ty) {
					if len(val.dims) == st.ty.Rank {
						st.dims = val.dims
					} else {
						st.dims = c.freshDims(st.ty.Rank)
					}
				} else {
					st.dims = nil
				}
				st.rcMay, st.rcMust, st.rcSite = val.rcMay, val.rcMust, val.rcSite
			} else {
				// Tuple destructuring: element values are opaque.
				st.fact = fact{}
				if isMatrixT(st.ty) {
					st.dims = c.freshDims(st.ty.Rank)
				}
				st.rcMay, st.rcMust = false, false
			}
		case *ast.IndexExpr:
			c.indexedStore(t, val, e)
		default:
			c.expr(lhs, e)
		}
	}
}

// indexedStore analyzes m[...] = rhs: the index arguments are checked
// exactly as on the read side, then a sliced store's extents are
// compared against the RHS's.
func (c *checker) indexedStore(ix *ast.IndexExpr, val exprVal, e env) {
	lv := c.indexExpr(ix, e)
	if len(lv.dims) > 0 && len(val.dims) == len(lv.dims) {
		for i := range lv.dims {
			if factsConflict(lv.dims[i], val.dims[i]) {
				c.report(CodeShapeMismatch, source.Error, ix, nil,
					"cannot store a slice of length %s into a destination of length %s (dimension %d)",
					factStr(val.dims[i]), factStr(lv.dims[i]), i)
			}
		}
	}
}

func (c *checker) ifStmt(s *ast.IfStmt, e env) bool {
	c.expr(s.Cond, e)
	et := e.clone()
	rt := c.stmt(s.Then, et)
	ee := e.clone()
	re := true
	if s.Else != nil {
		re = c.stmt(s.Else, ee)
	}
	switch {
	case rt && re:
		for name := range e {
			a, okA := et[name]
			b, okB := ee[name]
			if okA && okB {
				e[name] = joinStates(a, b)
			}
		}
	case rt:
		copyEnv(e, et)
	case re:
		copyEnv(e, ee)
	default:
		copyEnv(e, et) // both branches terminate; state is dead anyway
	}
	return rt || re
}

// copyEnv overwrites dst's entries with src's states for dst's keys.
func copyEnv(dst, src env) {
	for name := range dst {
		if st, ok := src[name]; ok {
			dst[name] = st
		}
	}
}

func sortedNames(e env) []string {
	names := make([]string, 0, len(e))
	for name := range e {
		names = append(names, name)
	}
	// insertion sort: envs are small and this avoids importing sort here
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// isConstTrue reports whether a loop condition is the literal true (or
// a nonzero int literal).
func isConstTrue(x ast.Expr) bool {
	switch x := x.(type) {
	case *ast.BoolLit:
		return x.Value
	case *ast.IntLit:
		return x.Value != 0
	}
	return false
}
