// Report rendering shared by the cmvet CLI, the driver stage and the
// golden tests: one FileReport per vetted file, rendered as stable
// JSON or as compiler-style text lines.
package vet

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/source"
)

// FileReport is the result of vetting one file. OK is false when the
// frontend rejected the program (Diagnostics holds its errors) or when
// vet produced error-severity findings.
type FileReport struct {
	File        string              `json:"file"`
	OK          bool                `json:"ok"`
	Diagnostics []string            `json:"diagnostics,omitempty"`
	Findings    []source.Diagnostic `json:"findings"`
	Errors      int                 `json:"errors"`
}

// NewFileReport assembles a report from a frontend outcome and vet
// findings.
func NewFileReport(file string, frontOK bool, frontDiags []string, findings []source.Diagnostic) *FileReport {
	r := &FileReport{
		File:        file,
		Diagnostics: frontDiags,
		Findings:    findings,
		Errors:      ErrorCount(findings),
	}
	r.OK = frontOK && r.Errors == 0
	if r.Findings == nil {
		r.Findings = []source.Diagnostic{}
	}
	return r
}

// RenderJSON renders the report as indented JSON with a trailing
// newline. The encoding is pinned by the golden tests.
func (r *FileReport) RenderJSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// RenderText renders the report as compiler-style diagnostic lines.
func (r *FileReport) RenderText() string {
	var b strings.Builder
	for _, d := range r.Diagnostics {
		b.WriteString(d)
		b.WriteByte('\n')
	}
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
		for _, rel := range f.Related {
			fmt.Fprintf(&b, "\t%s: note: %s\n", rel.Span, rel.Message)
		}
	}
	return b.String()
}
