package vet

import (
	"strings"
	"testing"

	"repro/internal/source"
)

// --- determinacy-race detector (race.go) ---

func TestRaceSpawnWritesGlobalContinuationReads(t *testing.T) {
	findings := vetSrc(t, `
int ga = 0;
int bump() { ga = ga + 1; return ga; }
int main() {
	int x = 0;
	spawn x = bump();
	print(ga);
	sync;
	return x;
}`)
	wantCodes(t, findings, CodeRace)
	f := findings[0]
	if !strings.Contains(f.Message, `global "ga"`) {
		t.Errorf("message should name the global: %q", f.Message)
	}
	if len(f.Related) != 1 {
		t.Fatalf("want one related span (the spawn), got %v", f.Related)
	}
	if !f.Related[0].Span.Start.IsValid() {
		t.Errorf("related spawn span is invalid: %v", f.Related[0])
	}
	if f.Severity != source.Warning {
		t.Errorf("severity = %v, want warning", f.Severity)
	}
}

func TestRaceSpawnWritesParamContinuationReads(t *testing.T) {
	findings := vetSrc(t, `
void fill(Matrix float <1> m, float v) { m[0] = v; return; }
int main() {
	Matrix float <1> m = init(Matrix float <1>, 4);
	spawn fill(m, 1.0);
	print(m[0]);
	sync;
	return 0;
}`)
	wantCodes(t, findings, CodeRace)
	if !strings.Contains(findings[0].Message, `"m"`) {
		t.Errorf("message should name the matrix: %q", findings[0].Message)
	}
}

func TestRaceContinuationWritesSpawnReads(t *testing.T) {
	findings := vetSrc(t, `
float total(Matrix float <1> m) {
	float s = 0.0;
	for (int i = 0; i < dimSize(m, 0); i = i + 1) { s = s + m[i]; }
	return s;
}
int main() {
	Matrix float <1> m = init(Matrix float <1>, 8);
	float s = 0.0;
	spawn s = total(m);
	m[3] = 7.0;
	sync;
	print(s);
	return 0;
}`)
	wantCodes(t, findings, CodeRace)
}

func TestRaceSpawnVsSpawn(t *testing.T) {
	findings := vetSrc(t, `
int ga = 0;
int bump() { ga = ga + 1; return ga; }
int main() {
	int x = 0;
	int y = 0;
	spawn x = bump();
	spawn y = bump();
	sync;
	return x + y;
}`)
	wantCodes(t, findings, CodeRace)
	if !strings.Contains(findings[0].Message, "spawned calls") {
		t.Errorf("want the spawn-vs-spawn wording, got %q", findings[0].Message)
	}
}

func TestRaceTransitiveThroughHelper(t *testing.T) {
	// The effect reaches the spawn through two call-graph hops, so the
	// detector depends on the interprocedural fixpoint.
	findings := vetSrc(t, `
int ga = 0;
int bump() { ga = ga + 1; return ga; }
int helper() { return bump() * 2; }
int main() {
	int x = 0;
	spawn x = helper();
	print(ga);
	sync;
	return x;
}`)
	wantCodes(t, findings, CodeRace)
}

func TestRaceRecursiveSummaryConverges(t *testing.T) {
	findings := vetSrc(t, `
int ga = 0;
int down(int n) {
	if (n <= 0) { return 0; }
	ga = ga + 1;
	return down(n - 1);
}
int main() {
	int x = 0;
	spawn x = down(5);
	print(ga);
	sync;
	return x;
}`)
	wantCodes(t, findings, CodeRace)
}

func TestRaceCrossIterationInLoop(t *testing.T) {
	// The spawn from iteration i is still outstanding when iteration
	// i+1 writes the global: only the loop re-scan sees this.
	findings := vetSrc(t, `
int ga = 0;
int get() { return ga; }
int main() {
	int x = 0;
	for (int i = 0; i < 4; i = i + 1) {
		spawn x = get();
		ga = ga + 1;
	}
	sync;
	return x;
}`)
	wantCodes(t, findings, CodeRace)
}

func TestRaceFreeSharedReads(t *testing.T) {
	// Two spawns reading the same matrix, plus a continuation read:
	// no writes, no race.
	findings := vetSrc(t, `
float sum2(Matrix float <1> m) { return m[0] + m[1]; }
int main() {
	Matrix float <1> base = init(Matrix float <1>, 4);
	float a = 0.0;
	float b = 0.0;
	spawn a = sum2(base);
	spawn b = sum2(base);
	print(base[2]);
	sync;
	print(a + b);
	return 0;
}`)
	wantCodes(t, findings)
}

func TestRaceFreeDisjointParams(t *testing.T) {
	findings := vetSrc(t, `
void fill(Matrix float <1> m, float v) { m[0] = v; return; }
int main() {
	Matrix float <1> a = init(Matrix float <1>, 4);
	Matrix float <1> b = init(Matrix float <1>, 4);
	spawn fill(a, 1.0);
	spawn fill(b, 2.0);
	sync;
	print(a[0] + b[0]);
	return 0;
}`)
	wantCodes(t, findings)
}

func TestRaceAliasedArgsConflict(t *testing.T) {
	// Same storage passed to both spawns through an alias: the race is
	// only visible to the alias tracking, not the variable names.
	findings := vetSrc(t, `
void fill(Matrix float <1> m, float v) { m[0] = v; return; }
int main() {
	Matrix float <1> a = init(Matrix float <1>, 4);
	Matrix float <1> alias = a;
	spawn fill(a, 1.0);
	spawn fill(alias, 2.0);
	sync;
	print(a[0]);
	return 0;
}`)
	wantCodes(t, findings, CodeRace)
}

func TestRaceClearedBySync(t *testing.T) {
	findings := vetSrc(t, `
int ga = 0;
int bump() { ga = ga + 1; return ga; }
int main() {
	int x = 0;
	spawn x = bump();
	sync;
	ga = ga + 1;
	print(ga);
	return x;
}`)
	wantCodes(t, findings)
}

func TestRaceReportedOnBothBranches(t *testing.T) {
	// The spawn is outstanding on only one path; the conflicting access
	// after the join must still be flagged.
	findings := vetSrc(t, `
int ga = 0;
int bump() { ga = ga + 1; return ga; }
int main(int n) {
	int x = 0;
	if (n > 0) {
		spawn x = bump();
	}
	ga = ga + 1;
	sync;
	return x;
}`)
	wantCodes(t, findings, CodeRace)
}

func TestRaceFibPatternClean(t *testing.T) {
	// The canonical cilk fib: spawned recursion is pure, so no race.
	findings := vetSrc(t, `
int fib(int n) {
	if (n < 2) { return n; }
	int a = 0;
	int b = 0;
	spawn a = fib(n - 1);
	b = fib(n - 2);
	sync;
	return a + b;
}
int main() {
	print(fib(10));
	return 0;
}`)
	wantCodes(t, findings)
}

// --- CM-SYNC-MISSING ---

func TestSyncMissingTargetReadBeforeSync(t *testing.T) {
	findings := vetSrc(t, `
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() {
	int a = 0;
	spawn a = fib(10);
	print(a);
	sync;
	return a;
}`)
	wantCodes(t, findings, CodeSyncMissing)
	if len(findings[0].Related) != 1 {
		t.Fatalf("want the spawn as a related span, got %v", findings[0].Related)
	}
}

func TestSyncMissingClearedByReassignment(t *testing.T) {
	// Deliberately overwriting the target before the sync makes the
	// read deterministic (the sync store still wins afterwards).
	findings := vetSrc(t, `
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() {
	int a = 0;
	spawn a = fib(10);
	a = 5;
	print(a);
	sync;
	return a;
}`)
	wantCodes(t, findings)
}

func TestSyncMissingNotAfterSync(t *testing.T) {
	findings := vetSrc(t, `
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() {
	int a = 0;
	spawn a = fib(10);
	sync;
	print(a);
	return a;
}`)
	wantCodes(t, findings)
}

// --- CM-SPAWN-DEAD ---

func TestSpawnDeadPureFireAndForget(t *testing.T) {
	findings := vetSrc(t, `
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() {
	spawn fib(10);
	sync;
	return 0;
}`)
	wantCodes(t, findings, CodeSpawnDead)
}

func TestSpawnDeadNotForEffectfulSpawn(t *testing.T) {
	findings := vetSrc(t, `
int shout(int n) { print(n); return n; }
int main() {
	spawn shout(3);
	sync;
	return 0;
}`)
	wantCodes(t, findings)
}
